package schedule

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, jobs, want int
	}{
		{0, 0, 1},
		{0, 1, 1},
		{8, 4, 4},
		{3, 100, 3},
		{-1, 2, 2}, // negative falls back to GOMAXPROCS, clamped by jobs
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.jobs); c.requested >= 0 && got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.jobs, got, c.want)
		} else if got < 1 {
			t.Errorf("Workers(%d, %d) = %d < 1", c.requested, c.jobs, got)
		}
	}
}

func TestDeviceWorkers(t *testing.T) {
	if dw := DeviceWorkers(1); dw < 1 {
		t.Errorf("DeviceWorkers(1) = %d", dw)
	}
	if dw := DeviceWorkers(1 << 20); dw != 1 {
		t.Errorf("DeviceWorkers(huge pool) = %d, want 1", dw)
	}
}

func TestMapOrderAndDeterminism(t *testing.T) {
	const n = 100
	job := func(i int) (int, error) { return i * i, nil }
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 7, n} {
		got, err := Map(workers, n, job)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results out of index order", workers)
		}
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	// Several jobs fail; the reported error must be the lowest-index one
	// (what a serial loop would have stopped on), on every pool width.
	job := func(i int) (int, error) {
		if i%3 == 2 { // fails at 2, 5, 8, ...
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	}
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(workers, 20, job)
		if err == nil || err.Error() != "job 2 failed" {
			t.Errorf("workers=%d: err = %v, want job 2's error", workers, err)
		}
	}
}

func TestMapCancelSkipsUnstartedJobs(t *testing.T) {
	var ran int64
	_, err := Map(2, 1000, func(i int) (int, error) {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			return 0, fmt.Errorf("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if r := atomic.LoadInt64(&ran); r == 1000 {
		t.Errorf("cancellation did not skip any of the %d jobs", r)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(4, 0) = %v, %v", out, err)
	}
}

func TestStreamIndexOrder(t *testing.T) {
	const n = 50
	for _, workers := range []int{1, 3, 8} {
		ch := Stream(workers, n, func(i int) (string, error) {
			if i == 7 {
				return "", fmt.Errorf("frame 7 failed")
			}
			return fmt.Sprintf("frame-%d", i), nil
		}, nil)
		i := 0
		for item := range ch {
			if item.Index != i {
				t.Fatalf("workers=%d: item %d arrived at position %d", workers, item.Index, i)
			}
			if i == 7 {
				if item.Err == nil {
					t.Errorf("workers=%d: frame 7 error lost", workers)
				}
			} else if item.Err != nil || item.Value != fmt.Sprintf("frame-%d", i) {
				t.Errorf("workers=%d: item %d = %q, %v", workers, i, item.Value, item.Err)
			}
			i++
		}
		if i != n {
			t.Fatalf("workers=%d: stream delivered %d of %d items", workers, i, n)
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	ch := Stream(4, 0, func(int) (int, error) { return 0, nil }, nil)
	if _, ok := <-ch; ok {
		t.Fatal("empty stream delivered an item")
	}
}

func TestStreamCancel(t *testing.T) {
	// Cancel after consuming a prefix: the channel must close promptly,
	// every goroutine must exit, and not all jobs may have run.
	var ran int64
	done := make(chan struct{})
	ch := Stream(3, 100, func(i int) (int, error) {
		atomic.AddInt64(&ran, 1)
		return i, nil
	}, done)
	for i := 0; i < 5; i++ {
		if item, ok := <-ch; !ok || item.Index != i {
			t.Fatalf("item %d: ok=%v", i, ok)
		}
	}
	close(done)
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				if r := atomic.LoadInt64(&ran); r == 100 {
					t.Error("cancellation did not stop any jobs")
				}
				return
			}
		case <-deadline:
			t.Fatal("stream did not close after cancellation")
		}
	}
}
