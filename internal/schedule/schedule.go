// Package schedule is a bounded worker-pool job scheduler for
// independent simulation jobs.
//
// The simulation kernel (internal/sim) is cooperative: one Env advances
// one process at a time, so a multi-frame animation or a parameter sweep
// executes serially in wall-clock no matter how many host cores exist —
// even though every frame and every sweep cell is an independent
// simulation. The scheduler closes that gap: each job instantiates its
// own cluster (cluster.Params.Instance) bound to a fresh Env, jobs run
// concurrently across real host cores, and the caller stitches per-job
// virtual times back into serial accounting by index order. Because every
// job is a self-contained deterministic simulation and results are
// combined in index order, parallel execution is bit-identical to serial
// execution — see the golden-image and determinism tests at the module
// root.
package schedule

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested pool width: requested > 0 is honored (so
// callers and tests can force real concurrency even on small machines),
// zero means GOMAXPROCS. The result is clamped to [1, jobs].
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DeviceWorkers splits GOMAXPROCS across a pool of the given width: each
// job's simulated devices get this many host cores for kernel-block
// execution, so frame-level and block-level parallelism compose instead
// of oversubscribing the machine. A pool of one (the serial degenerate
// case) keeps full block-level parallelism.
func DeviceWorkers(poolWidth int) int {
	if poolWidth < 1 {
		poolWidth = 1
	}
	dw := runtime.GOMAXPROCS(0) / poolWidth
	if dw < 1 {
		dw = 1
	}
	return dw
}

// Item is one streamed job result.
type Item[T any] struct {
	Index int
	Value T
	Err   error
}

// Map runs job(0..n-1) on a pool of `workers` goroutines and returns the
// results in index order. On failure it returns the error of the
// lowest-index failed job — exactly the error a serial loop would have
// stopped on — and cancels jobs that have not started yet (jobs already
// running complete). workers <= 1 runs the jobs inline in index order,
// stopping at the first error like a plain loop.
func Map[T any](workers, n int, job func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers = Workers(workers, n); workers == 1 {
		for i := 0; i < n; i++ {
			v, err := job(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next, failed int64
	failed = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= n {
					return
				}
				if atomic.LoadInt64(&failed) >= 0 {
					continue // drain remaining indexes without running them
				}
				v, err := job(i)
				if err != nil {
					errs[i] = err
					atomic.StoreInt64(&failed, int64(i))
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	// First error by index: deterministic regardless of which goroutine
	// hit its error first in wall-clock.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Stream runs jobs like Map but delivers every result on the returned
// channel in strict index order, each as soon as it and all its
// predecessors are done — a frame stream. Errors are delivered in-stream
// as items with Err set; all jobs run regardless (consumers that want
// fail-fast semantics use Map). The channel is closed after item n-1.
//
// The stream applies backpressure: workers run at most a small window
// ahead of the consumer (in-flight jobs plus a little lookahead), so a
// slow consumer bounds resident results instead of accumulating all n.
//
// Closing `done` cancels the stream: jobs already running finish (a
// simulation cannot be interrupted mid-event), no new jobs start, every
// goroutine exits, and the output channel closes early. A consumer that
// stops reading MUST cancel (or drain) — otherwise delivery blocks
// forever. nil means not cancellable.
func Stream[T any](workers, n int, job func(int) (T, error), done <-chan struct{}) <-chan Item[T] {
	workers = Workers(workers, n)
	out := make(chan Item[T], workers)
	if n == 0 {
		close(out)
		return out
	}
	go func() {
		defer close(out)
		if workers == 1 {
			for i := 0; i < n; i++ {
				select {
				case <-done:
					return
				default:
				}
				v, err := job(i)
				select {
				case out <- Item[T]{Index: i, Value: v, Err: err}:
				case <-done:
					return
				}
			}
			return
		}
		var mu sync.Mutex
		cond := sync.NewCond(&mu)
		cancelled := false
		ready := make([]*Item[T], n)
		// window bounds how far ahead of the consumer workers may run.
		// Slots are acquired in index order before a job starts and
		// released after its item is delivered, so the lowest undelivered
		// index always holds a slot — progress is guaranteed.
		window := make(chan struct{}, workers+2)
		var next int64
		var wg sync.WaitGroup
		finished := make(chan struct{})
		defer close(finished)
		if done != nil {
			// Wake the delivery loop out of cond.Wait on cancellation.
			go func() {
				select {
				case <-done:
					mu.Lock()
					cancelled = true
					cond.Broadcast()
					mu.Unlock()
				case <-finished:
				}
			}()
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case window <- struct{}{}:
					case <-done: // nil when not cancellable: never ready
						return
					}
					i := int(atomic.AddInt64(&next, 1) - 1)
					if i >= n {
						<-window
						return
					}
					v, err := job(i)
					mu.Lock()
					ready[i] = &Item[T]{Index: i, Value: v, Err: err}
					cond.Broadcast()
					mu.Unlock()
				}
			}()
		}
		for i := 0; i < n; i++ {
			mu.Lock()
			for ready[i] == nil && !cancelled {
				cond.Wait()
			}
			if cancelled {
				mu.Unlock()
				return // workers exit via done; jobs in flight finish
			}
			item := *ready[i]
			ready[i] = nil // release the result once delivered
			mu.Unlock()
			select {
			case out <- item:
			case <-done:
				return
			}
			<-window
		}
		wg.Wait()
	}()
	return out
}
