package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"gvmr/internal/sim"
)

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Add(Span{Name: "x"})
	if l.Len() != 0 || l.Spans() != nil {
		t.Error("nil log should discard")
	}
}

func TestAddAndSort(t *testing.T) {
	l := &Log{}
	l.Add(Span{Name: "b", Lane: "gpu0", Start: 10, End: 20})
	l.Add(Span{Name: "a", Lane: "gpu1", Start: 5, End: 8})
	l.Add(Span{Name: "neg", Start: 9, End: 3}) // rejected
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	spans := l.Spans()
	if spans[0].Name != "a" || spans[1].Name != "b" {
		t.Errorf("spans not sorted by start: %+v", spans)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	l := &Log{}
	l.Add(Span{Name: "kernel", Cat: "map", Lane: "gpu0", Start: sim.Millisecond, End: 3 * sim.Millisecond})
	l.Add(Span{Name: "send", Cat: "net", Lane: "gpu0", Start: 3 * sim.Millisecond, End: 4 * sim.Millisecond})
	var buf bytes.Buffer
	if err := l.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 1 lane metadata + 2 spans.
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	var kernel map[string]any
	for _, e := range events {
		if e["name"] == "kernel" {
			kernel = e
		}
	}
	if kernel == nil {
		t.Fatal("kernel span missing")
	}
	if kernel["ts"].(float64) != 1000 { // 1 ms in µs
		t.Errorf("ts = %v", kernel["ts"])
	}
	if kernel["dur"].(float64) != 2000 {
		t.Errorf("dur = %v", kernel["dur"])
	}
	if kernel["ph"] != "X" {
		t.Errorf("ph = %v", kernel["ph"])
	}
}
