// Package trace collects per-worker activity spans from a MapReduce job
// and exports them in the Chrome trace-event format (chrome://tracing,
// Perfetto), making the paper's overlap story — disk loads, PCIe
// transfers, kernels and network sends proceeding concurrently — directly
// visible on a timeline.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"gvmr/internal/sim"
)

// Span is one closed interval of activity on a (virtual) execution lane.
type Span struct {
	Name  string   // operation, e.g. "kernel:raycast"
	Cat   string   // stage category: map|partition+io|sort|reduce|net
	Lane  string   // execution lane, e.g. "gpu3" or "reducer2"
	Start sim.Time // virtual time
	End   sim.Time
}

// Log accumulates spans. The zero value is ready to use; a nil *Log
// discards everything, so instrumentation can stay unconditional.
type Log struct {
	spans []Span
}

// Add records a span. Nil-safe. Zero-length spans are kept (they still
// mark ordering) but negative ones are rejected.
func (l *Log) Add(s Span) {
	if l == nil {
		return
	}
	if s.End < s.Start {
		return
	}
	l.spans = append(l.spans, s)
}

// Spans returns the recorded spans sorted by start time (stable).
func (l *Log) Spans() []Span {
	if l == nil {
		return nil
	}
	out := append([]Span(nil), l.spans...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len returns the number of recorded spans.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.spans)
}

// chromeEvent is one entry of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteChrome serialises the log as a Chrome trace-event array. Lanes
// become thread IDs with name metadata.
func (l *Log) WriteChrome(w io.Writer) error {
	spans := l.Spans()
	laneIDs := map[string]int{}
	var lanes []string
	for _, s := range spans {
		if _, ok := laneIDs[s.Lane]; !ok {
			laneIDs[s.Lane] = len(lanes)
			lanes = append(lanes, s.Lane)
		}
	}
	var events []any
	for i, lane := range lanes {
		events = append(events, chromeMeta{
			Name: "thread_name", Ph: "M", PID: 0, TID: i,
			Args: map[string]any{"name": lane},
		})
	}
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			PID:  0,
			TID:  laneIDs[s.Lane],
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WriteChromeFile writes the trace to a file.
func (l *Log) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := l.WriteChrome(f); err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return nil
}
