package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// event is a scheduled wake-up for a process at a virtual instant.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Env is a simulation environment: a virtual clock plus the set of live
// processes. The zero value is not usable; construct with NewEnv.
type Env struct {
	now     Time
	seq     uint64
	queue   eventHeap
	live    map[*Proc]struct{}
	current *Proc
	fatal   error
	running bool
}

// NewEnv returns a fresh environment with the clock at zero.
func NewEnv() *Env {
	return &Env{live: make(map[*Proc]struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// schedule enqueues a wake-up for p at time t (clamped to now).
func (e *Env) schedule(t Time, p *Proc) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, proc: p})
}

// Go spawns a process that begins executing fn at the current virtual time.
// It may be called before Run or from inside another process.
func (e *Env) Go(name string, fn func(*Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt spawns a process that begins executing fn at virtual time t.
func (e *Env) GoAt(t Time, name string, fn func(*Proc)) *Proc {
	p := &Proc{
		env:    e,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
		state:  "starting",
	}
	e.live[p] = struct{}{}
	go p.run(fn)
	e.schedule(t, p)
	return p
}

// resumeProc hands control to p and waits for it to park again.
func (e *Env) resumeProc(p *Proc) {
	e.current = p
	p.resume <- struct{}{}
	<-p.parked
	e.current = nil
	if p.done {
		delete(e.live, p)
		if p.err != nil && e.fatal == nil {
			e.fatal = p.err
		}
	}
}

// Run executes events until none remain. It returns an error if a process
// panicked or if live processes remain blocked with an empty event queue
// (deadlock). Run may be called again after it returns to continue a
// simulation extended with new processes.
func (e *Env) Run() error {
	return e.runWhile(func(Time) bool { return true })
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to t.
func (e *Env) RunUntil(t Time) error {
	err := e.runWhile(func(at Time) bool { return at <= t })
	if err == nil && e.now < t {
		e.now = t
	}
	return err
}

func (e *Env) runWhile(keep func(Time) bool) error {
	if e.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		if !keep(e.queue[0].at) {
			return nil
		}
		ev := heap.Pop(&e.queue).(event)
		if ev.proc.done {
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.resumeProc(ev.proc)
		if e.fatal != nil {
			return e.fatal
		}
	}
	if len(e.live) > 0 {
		return e.deadlockError()
	}
	return nil
}

func (e *Env) deadlockError() error {
	names := make([]string, 0, len(e.live))
	for p := range e.live {
		names = append(names, fmt.Sprintf("%s (%s)", p.name, p.state))
	}
	sort.Strings(names)
	return fmt.Errorf("sim: deadlock at %v: %d blocked process(es): %v", e.now, len(names), names)
}

// Proc is a simulation process. All methods must be called from within the
// process's own function.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	parked chan struct{}
	state  string
	done   bool
	err    error

	// blocked-wait delivery slots, used by Chan and Event.
	recvVal any
	recvOK  bool
}

func (p *Proc) run(fn func(*Proc)) {
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			p.err = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
		}
		p.done = true
		p.state = "done"
		p.parked <- struct{}{}
	}()
	fn(p)
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// yield parks the process and transfers control to the scheduler. The
// process resumes when the scheduler pops an event for it (or when another
// process unblocks it).
func (p *Proc) yield(state string) {
	p.state = state
	p.parked <- struct{}{}
	<-p.resume
	p.state = "running"
}

// Sleep advances the process by d in virtual time. Negative durations are
// treated as zero (the process still yields, giving same-time events a
// chance to run first in FIFO order).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p.env.now+d, p)
	p.yield("sleeping")
}

// WaitUntil sleeps until virtual time t. If t is in the past it yields at
// the current time.
func (p *Proc) WaitUntil(t Time) {
	p.env.schedule(t, p)
	p.yield("sleeping")
}

// block parks the process without scheduling a wake-up; some other process
// must call unblock. state describes what the process waits on, used in
// deadlock reports.
func (p *Proc) block(state string) {
	p.yield(state)
}

// unblock schedules other to resume at the current time.
func (p *Proc) unblock(other *Proc) {
	p.env.schedule(p.env.now, other)
}
