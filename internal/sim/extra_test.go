package sim

import (
	"strings"
	"testing"
)

func TestResourceQueueLen(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	env.Go("holder", func(p *Proc) {
		res.Acquire(p)
		p.Sleep(10 * Millisecond)
		if res.QueueLen() != 2 {
			t.Errorf("QueueLen = %d, want 2", res.QueueLen())
		}
		res.Release(p)
	})
	for i := 0; i < 2; i++ {
		env.Go("waiter", func(p *Proc) {
			p.Sleep(Millisecond)
			res.Use(p, Millisecond)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if res.QueueLen() != 0 || res.InUse() != 0 {
		t.Error("resource not drained")
	}
}

func TestChanAccessors(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, "c", 4)
	env.Go("p", func(p *Proc) {
		if ch.Len() != 0 || ch.Closed() {
			t.Error("fresh chan state wrong")
		}
		ch.Send(p, 1)
		ch.Send(p, 2)
		if ch.Len() != 2 {
			t.Errorf("Len = %d", ch.Len())
		}
		ch.Close(p)
		if !ch.Closed() {
			t.Error("Closed false after close")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	env := NewEnv()
	wg := NewWaitGroup(env, "w")
	env.Go("bad", func(p *Proc) {
		wg.Add(p, -1)
	})
	if err := env.Run(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative waitgroup not surfaced: %v", err)
	}
}

func TestDoubleClosePanics(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, "c", 1)
	env.Go("p", func(p *Proc) {
		ch.Close(p)
		ch.Close(p)
	})
	if err := env.Run(); err == nil {
		t.Error("double close not surfaced")
	}
}

func TestZeroCapacityResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-capacity resource accepted")
		}
	}()
	NewResource(NewEnv(), "r", 0)
}

func TestNegativeCapacityChanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative-capacity chan accepted")
		}
	}()
	NewChan[int](NewEnv(), "c", -1)
}

func TestManyProcessesDeterministic(t *testing.T) {
	// A few hundred interleaved processes contending on shared resources
	// finish at exactly the same virtual time on every run.
	run := func() Time {
		env := NewEnv()
		res := NewResource(env, "shared", 3)
		ch := NewChan[int](env, "pipe", 8)
		env.Go("sink", func(p *Proc) {
			for {
				if _, ok := ch.Recv(p); !ok {
					return
				}
				p.Sleep(10 * Microsecond)
			}
		})
		wg := NewWaitGroup(env, "all")
		env.Go("spawner", func(p *Proc) {
			for i := 0; i < 300; i++ {
				i := i
				wg.Add(p, 1)
				env.Go("w", func(q *Proc) {
					q.Sleep(Time(i%17) * Microsecond)
					res.Use(q, Time(50+i%7*13)*Microsecond)
					ch.Send(q, i)
					wg.Done(q)
				})
			}
			wg.Wait(p)
			ch.Close(p)
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return env.Now()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d ended at %v, first at %v", i, got, first)
		}
	}
	if first <= 0 {
		t.Error("empty run")
	}
}

func TestEnvRunAfterCompletion(t *testing.T) {
	env := NewEnv()
	env.Go("a", func(p *Proc) { p.Sleep(Millisecond) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Extend the finished simulation with new work.
	env.Go("b", func(p *Proc) { p.Sleep(Millisecond) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 2*Millisecond {
		t.Errorf("extended run ended at %v", env.Now())
	}
}
