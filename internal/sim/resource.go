package sim

import "fmt"

// Resource is a FIFO server with fixed capacity, modeling contended
// hardware such as a PCIe link, a NIC, a disk arm or a pool of CPU cores.
// It records utilization (busy time integral) for reporting.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  []*Proc

	// accounting
	busySince   Time
	busyTotal   Time // time-integral of (inUse > 0)
	acquires    int64
	waitTotal   Time // total time processes spent queued
	lastChanged Time
	useIntegral float64 // time-integral of inUse, for mean occupancy
}

// NewResource creates a resource with the given capacity (must be >= 1).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{env: env, name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) account() {
	now := r.env.now
	dt := now - r.lastChanged
	if dt > 0 {
		r.useIntegral += float64(r.inUse) * dt.Seconds()
		if r.inUse > 0 {
			r.busyTotal += dt
		}
	}
	r.lastChanged = now
}

// Acquire blocks p until a slot is free, FIFO order.
func (r *Resource) Acquire(p *Proc) {
	start := p.Now()
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.account()
		r.inUse++
		r.acquires++
		return
	}
	r.waiters = append(r.waiters, p)
	p.block("acquiring " + r.name)
	// The releaser incremented inUse on our behalf before unblocking us.
	r.waitTotal += p.Now() - start
	r.acquires++
}

// Release frees one slot and wakes the next waiter, if any. It never
// blocks and may be called by any process.
func (r *Resource) Release(p *Proc) {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	r.account()
	r.inUse--
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.account()
		r.inUse++ // slot transfers directly to the waiter
		p.unblock(next)
	}
}

// Use acquires the resource, holds it for d, then releases: the standard
// FIFO-queueing-server pattern for serialised hardware.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release(p)
}

// BusyTime returns the accumulated time during which at least one slot was
// held, up to the current instant.
func (r *Resource) BusyTime() Time {
	r.account()
	return r.busyTotal
}

// WaitTime returns the total queueing delay experienced by acquirers.
func (r *Resource) WaitTime() Time { return r.waitTotal }

// Acquires returns the number of completed Acquire calls.
func (r *Resource) Acquires() int64 { return r.acquires }

// Utilization returns mean occupancy / capacity over [0, now].
func (r *Resource) Utilization() float64 {
	r.account()
	total := r.env.now.Seconds()
	if total <= 0 {
		return 0
	}
	return r.useIntegral / total / float64(r.capacity)
}
