package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChanBufferedFIFO(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, "c", 4)
	var got []int
	env.Go("producer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			ch.Send(p, i)
		}
		ch.Close(p)
	})
	env.Go("consumer", func(p *Proc) {
		for {
			v, ok := ch.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("received %v, want 0..3 in order", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("received %d values, want 4", len(got))
	}
}

func TestChanRendezvous(t *testing.T) {
	env := NewEnv()
	ch := NewChan[string](env, "c", 0)
	var sendDone, recvDone Time
	env.Go("sender", func(p *Proc) {
		ch.Send(p, "x")
		sendDone = p.Now()
	})
	env.Go("receiver", func(p *Proc) {
		p.Sleep(25 * Millisecond)
		v, ok := ch.Recv(p)
		if !ok || v != "x" {
			t.Errorf("Recv = %q, %v", v, ok)
		}
		recvDone = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != 25*Millisecond {
		t.Errorf("sender completed at %v, want 25ms (blocked until receiver)", sendDone)
	}
	if recvDone != 25*Millisecond {
		t.Errorf("receiver completed at %v", recvDone)
	}
}

func TestChanBlocksWhenFull(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, "c", 1)
	var secondSendAt Time
	env.Go("sender", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2) // blocks: buffer full
		secondSendAt = p.Now()
	})
	env.Go("receiver", func(p *Proc) {
		p.Sleep(40 * Millisecond)
		ch.Recv(p)
		ch.Recv(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if secondSendAt != 40*Millisecond {
		t.Errorf("second send completed at %v, want 40ms", secondSendAt)
	}
}

func TestChanCloseWakesReceivers(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, "c", 0)
	okSeen := true
	env.Go("receiver", func(p *Proc) {
		_, ok := ch.Recv(p)
		okSeen = ok
	})
	env.Go("closer", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		ch.Close(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if okSeen {
		t.Error("Recv on closed chan returned ok=true")
	}
}

func TestChanDrainAfterClose(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, "c", 8)
	var got []int
	env.Go("producer", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		ch.Close(p)
	})
	env.Go("consumer", func(p *Proc) {
		p.Sleep(10 * Millisecond) // arrive after close
		for {
			v, ok := ch.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("drained %v, want [1 2]", got)
	}
}

func TestTrySend(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, "c", 1)
	env.Go("p", func(p *Proc) {
		if !ch.TrySend(p, 1) {
			t.Error("TrySend into empty buffer failed")
		}
		if ch.TrySend(p, 2) {
			t.Error("TrySend into full buffer succeeded")
		}
		ch.Recv(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendOnClosedPanics(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, "c", 1)
	env.Go("p", func(p *Proc) {
		ch.Close(p)
		ch.Send(p, 1)
	})
	if err := env.Run(); err == nil {
		t.Error("send on closed chan should surface an error")
	}
}

func TestEventBroadcast(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env, "go")
	var woke []Time
	for i := 0; i < 3; i++ {
		env.Go("w", func(p *Proc) {
			ev.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	env.Go("firer", func(p *Proc) {
		p.Sleep(12 * Millisecond)
		ev.Fire(p)
		ev.Fire(p) // double fire is a no-op
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if w != 12*Millisecond {
			t.Errorf("waiter woke at %v, want 12ms", w)
		}
	}
	env.Go("late", func(p *Proc) {
		ev.Wait(p) // already fired: returns immediately
		if p.Now() != 12*Millisecond {
			t.Errorf("late waiter at %v", p.Now())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGroup(t *testing.T) {
	env := NewEnv()
	wg := NewWaitGroup(env, "jobs")
	var doneAt Time
	env.Go("spawner", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			i := i
			wg.Add(p, 1)
			p.Env().Go("job", func(j *Proc) {
				j.Sleep(Time(i*10) * Millisecond)
				wg.Done(j)
			})
		}
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 30*Millisecond {
		t.Errorf("WaitGroup released at %v, want 30ms", doneAt)
	}
}

func TestWaitGroupZeroImmediate(t *testing.T) {
	env := NewEnv()
	wg := NewWaitGroup(env, "empty")
	env.Go("p", func(p *Proc) {
		wg.Wait(p) // count 0: returns immediately
		if p.Now() != 0 {
			t.Errorf("Wait on empty group advanced time to %v", p.Now())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: a producer/consumer pair over a random-capacity channel always
// delivers every value exactly once, in order, regardless of the relative
// speeds of the two sides.
func TestChanDeliveryProperty(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	f := func() bool {
		n := 1 + r.Intn(40)
		capacity := r.Intn(5)
		prodDelay := Time(r.Intn(3)) * Millisecond
		consDelay := Time(r.Intn(3)) * Millisecond
		env := NewEnv()
		ch := NewChan[int](env, "c", capacity)
		var got []int
		env.Go("prod", func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(prodDelay)
				ch.Send(p, i)
			}
			ch.Close(p)
		})
		env.Go("cons", func(p *Proc) {
			for {
				v, ok := ch.Recv(p)
				if !ok {
					return
				}
				got = append(got, v)
				p.Sleep(consDelay)
			}
		})
		if err := env.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
