// Package sim is a deterministic discrete-event simulation kernel.
//
// It provides a virtual clock, cooperatively scheduled processes backed by
// goroutines, FIFO resources with utilization accounting, typed channels
// with blocking semantics in virtual time, and one-shot events. The paper's
// hardware — GPUs, PCIe links, NICs, disks — is modeled as processes and
// resources on top of this kernel, so the reported timings are virtual and
// bit-reproducible while the computation they account for is real.
//
// Exactly one process executes at any instant (the scheduler serialises
// them), so process code may mutate simulation state without locking.
// Heavy computation inside a process may still fan out to host cores with
// ordinary goroutines as long as it joins before the process yields.
package sim

import "fmt"

// Time is a point in (or duration of) virtual time, in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a float64 second count to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Micros converts a float64 microsecond count to a Time.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }

// Millis converts a float64 millisecond count to a Time.
func Millis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with a unit chosen by magnitude.
func (t Time) String() string {
	neg := ""
	v := t
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v < Microsecond:
		return fmt.Sprintf("%s%dns", neg, int64(v))
	case v < Millisecond:
		return fmt.Sprintf("%s%.2fµs", neg, float64(v)/float64(Microsecond))
	case v < Second:
		return fmt.Sprintf("%s%.3fms", neg, float64(v)/float64(Millisecond))
	default:
		return fmt.Sprintf("%s%.4fs", neg, float64(v)/float64(Second))
	}
}

// BytesTime returns the serialisation time of n bytes over a link with the
// given bandwidth in bytes per second. Zero or negative bandwidth yields 0.
func BytesTime(n int64, bytesPerSecond float64) Time {
	if bytesPerSecond <= 0 || n <= 0 {
		return 0
	}
	return Time(float64(n) / bytesPerSecond * float64(Second))
}

// WorkTime returns the service time of `work` abstract units at `rate`
// units per second. Zero or negative rate yields 0.
func WorkTime(work float64, rate float64) Time {
	if rate <= 0 || work <= 0 {
		return 0
	}
	return Time(work / rate * float64(Second))
}
