package sim

import "fmt"

// Chan is a typed channel with blocking semantics in virtual time. A
// capacity of zero gives rendezvous semantics: Send completes only when a
// receiver takes the value. All waiter queues are FIFO, preserving
// determinism.
type Chan[T any] struct {
	env    *Env
	name   string
	cap    int
	buf    []T
	sendQ  []sendWaiter[T]
	recvQ  []*Proc
	closed bool
}

type sendWaiter[T any] struct {
	p *Proc
	v T
}

// NewChan creates a channel with the given buffer capacity (>= 0).
func NewChan[T any](env *Env, name string, capacity int) *Chan[T] {
	if capacity < 0 {
		panic(fmt.Sprintf("sim: chan %q capacity %d < 0", name, capacity))
	}
	return &Chan[T]{env: env, name: name, cap: capacity}
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Closed reports whether the channel has been closed.
func (c *Chan[T]) Closed() bool { return c.closed }

// Send delivers v, blocking p in virtual time while the buffer is full (or,
// for capacity 0, until a receiver arrives). Sending on a closed channel
// panics, mirroring Go channel semantics.
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.closed {
		panic(fmt.Sprintf("sim: send on closed chan %q", c.name))
	}
	if len(c.recvQ) > 0 {
		// Direct hand-off to the longest-waiting receiver.
		r := c.recvQ[0]
		c.recvQ = c.recvQ[1:]
		r.recvVal = v
		r.recvOK = true
		p.unblock(r)
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	c.sendQ = append(c.sendQ, sendWaiter[T]{p: p, v: v})
	p.block("sending " + c.name)
}

// TrySend delivers v without blocking; it reports whether the value was
// accepted. It fails when the buffer is full and no receiver waits, or
// when the channel is closed.
func (c *Chan[T]) TrySend(p *Proc, v T) bool {
	if c.closed {
		return false
	}
	if len(c.recvQ) > 0 || len(c.buf) < c.cap {
		c.Send(p, v)
		return true
	}
	return false
}

// Recv takes the next value, blocking p while the channel is empty. It
// returns ok=false when the channel is closed and drained.
func (c *Chan[T]) Recv(p *Proc) (T, bool) {
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		if len(c.sendQ) > 0 {
			// A blocked sender's value now fits in the buffer.
			w := c.sendQ[0]
			c.sendQ = c.sendQ[1:]
			c.buf = append(c.buf, w.v)
			p.unblock(w.p)
		}
		return v, true
	}
	if len(c.sendQ) > 0 { // capacity 0 rendezvous
		w := c.sendQ[0]
		c.sendQ = c.sendQ[1:]
		p.unblock(w.p)
		return w.v, true
	}
	if c.closed {
		var zero T
		return zero, false
	}
	c.recvQ = append(c.recvQ, p)
	p.block("receiving " + c.name)
	if !p.recvOK {
		var zero T
		p.recvVal = nil
		return zero, false
	}
	v := p.recvVal.(T)
	p.recvVal = nil
	p.recvOK = false
	return v, true
}

// Close marks the channel closed. Blocked receivers wake with ok=false.
// Values already buffered (or held by blocked senders) are still delivered
// to future receivers. Closing twice panics.
func (c *Chan[T]) Close(p *Proc) {
	if c.closed {
		panic(fmt.Sprintf("sim: close of closed chan %q", c.name))
	}
	c.closed = true
	for _, r := range c.recvQ {
		r.recvOK = false
		p.unblock(r)
	}
	c.recvQ = nil
}

// Event is a one-shot condition: processes Wait until some process Fires
// it. Waiting on a fired event returns immediately.
type Event struct {
	env     *Env
	name    string
	fired   bool
	waiters []*Proc
}

// NewEvent creates an unfired event.
func NewEvent(env *Env, name string) *Event {
	return &Event{env: env, name: name}
}

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Fire triggers the event, waking all waiters at the current time. Firing
// an already-fired event is a no-op.
func (ev *Event) Fire(p *Proc) {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, w := range ev.waiters {
		p.unblock(w)
	}
	ev.waiters = nil
}

// Wait blocks p until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.block("waiting " + ev.name)
}

// WaitAll blocks p until every event has fired.
func WaitAll(p *Proc, events ...*Event) {
	for _, ev := range events {
		ev.Wait(p)
	}
}

// WaitGroup counts outstanding work items in virtual time, mirroring
// sync.WaitGroup.
type WaitGroup struct {
	env     *Env
	name    string
	count   int
	waiters []*Proc
}

// NewWaitGroup creates a WaitGroup with zero count.
func NewWaitGroup(env *Env, name string) *WaitGroup {
	return &WaitGroup{env: env, name: name}
}

// Add increments the counter by n (n may be negative, like sync.WaitGroup).
func (wg *WaitGroup) Add(p *Proc, n int) {
	wg.count += n
	if wg.count < 0 {
		panic(fmt.Sprintf("sim: waitgroup %q negative count", wg.name))
	}
	if wg.count == 0 {
		for _, w := range wg.waiters {
			p.unblock(w)
		}
		wg.waiters = nil
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done(p *Proc) { wg.Add(p, -1) }

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.block("waiting " + wg.name)
}
