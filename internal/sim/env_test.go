package sim

import (
	"strings"
	"testing"
)

func TestClockAdvances(t *testing.T) {
	env := NewEnv()
	var at1, at2 Time
	env.Go("a", func(p *Proc) {
		p.Sleep(10 * Millisecond)
		at1 = p.Now()
		p.Sleep(5 * Millisecond)
		at2 = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != 10*Millisecond {
		t.Errorf("after first sleep now = %v, want 10ms", at1)
	}
	if at2 != 15*Millisecond {
		t.Errorf("after second sleep now = %v, want 15ms", at2)
	}
	if env.Now() != 15*Millisecond {
		t.Errorf("final env time = %v, want 15ms", env.Now())
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var order []string
		for _, spec := range []struct {
			name  string
			delay Time
		}{{"c", 30}, {"a", 10}, {"b", 20}, {"a2", 10}} {
			spec := spec
			env.Go(spec.name, func(p *Proc) {
				p.Sleep(spec.delay)
				order = append(order, spec.name)
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	want := []string{"a", "a2", "b", "c"}
	for i := 0; i < 20; i++ {
		got := run()
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Fatalf("run %d: order %v, want %v", i, got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	env := NewEnv()
	var order []string
	for _, n := range []string{"p1", "p2", "p3"} {
		n := n
		env.Go(n, func(p *Proc) {
			p.Sleep(5 * Millisecond) // all wake at the same instant
			order = append(order, n)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "p1,p2,p3" {
		t.Errorf("same-time order = %v, want spawn order", order)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	env := NewEnv()
	var childTime Time
	env.Go("parent", func(p *Proc) {
		p.Sleep(7 * Millisecond)
		p.Env().Go("child", func(c *Proc) {
			c.Sleep(3 * Millisecond)
			childTime = c.Now()
		})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 10*Millisecond {
		t.Errorf("child finished at %v, want 10ms", childTime)
	}
}

func TestNegativeSleepClamped(t *testing.T) {
	env := NewEnv()
	env.Go("a", func(p *Proc) {
		p.Sleep(-5 * Millisecond)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced clock to %v", p.Now())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitUntilPast(t *testing.T) {
	env := NewEnv()
	env.Go("a", func(p *Proc) {
		p.Sleep(10 * Millisecond)
		p.WaitUntil(5 * Millisecond) // already past: should not rewind
		if p.Now() != 10*Millisecond {
			t.Errorf("WaitUntil past rewound clock to %v", p.Now())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntil(t *testing.T) {
	env := NewEnv()
	ticks := 0
	env.Go("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10 * Millisecond)
			ticks++
		}
	})
	if err := env.RunUntil(55 * Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Errorf("ticks at t=55ms: %d, want 5", ticks)
	}
	if env.Now() != 55*Millisecond {
		t.Errorf("now = %v, want 55ms", env.Now())
	}
	// Continue to completion.
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 100 {
		t.Errorf("ticks at end: %d, want 100", ticks)
	}
}

func TestProcessPanicBecomesError(t *testing.T) {
	env := NewEnv()
	env.Go("bad", func(p *Proc) {
		p.Sleep(Millisecond)
		panic("boom")
	})
	err := env.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Run err = %v, want panic surfaced", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, "never", 0)
	env.Go("waiter", func(p *Proc) {
		ch.Recv(p)
	})
	err := env.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("Run err = %v, want deadlock", err)
	}
	if err != nil && !strings.Contains(err.Error(), "waiter") {
		t.Errorf("deadlock report %v should name the blocked process", err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{2500 * Nanosecond, "2.50µs"},
		{Millis(1.5), "1.500ms"},
		{Seconds(2.25), "2.2500s"},
		{-Millis(3), "-3.000ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Error("Seconds conversion wrong")
	}
	if Millis(2) != 2*Millisecond {
		t.Error("Millis conversion wrong")
	}
	if Micros(3) != 3*Microsecond {
		t.Error("Micros conversion wrong")
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v", got)
	}
	if got := BytesTime(1<<20, 1<<20); got != Second {
		t.Errorf("BytesTime(1MiB @ 1MiB/s) = %v, want 1s", got)
	}
	if got := BytesTime(100, 0); got != 0 {
		t.Errorf("BytesTime with zero bandwidth = %v, want 0", got)
	}
	if got := WorkTime(70e6, 70e6); got != Second {
		t.Errorf("WorkTime = %v, want 1s", got)
	}
}
