package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResourceSerialises(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "link", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		env.Go("u", func(p *Proc) {
			res.Use(p, 10*Millisecond)
			ends = append(ends, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	for i, w := range want {
		if ends[i] != w {
			t.Errorf("user %d finished at %v, want %v", i, ends[i], w)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "dual", 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		env.Go("u", func(p *Proc) {
			res.Use(p, 10*Millisecond)
			ends = append(ends, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Two run 0-10ms, two run 10-20ms.
	want := []Time{10 * Millisecond, 10 * Millisecond, 20 * Millisecond, 20 * Millisecond}
	for i, w := range want {
		if ends[i] != w {
			t.Errorf("user %d finished at %v, want %v", i, ends[i], w)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Go("u", func(p *Proc) {
			p.Sleep(Time(i) * Millisecond) // arrive in index order
			res.Acquire(p)
			order = append(order, i)
			p.Sleep(20 * Millisecond)
			res.Release(p)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("service order %v, want arrival order", order)
		}
	}
}

func TestResourceAccounting(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "disk", 1)
	env.Go("a", func(p *Proc) {
		res.Use(p, 30*Millisecond)
		p.Sleep(70 * Millisecond) // idle gap
		res.Use(p, 20*Millisecond)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := res.BusyTime(); got != 50*Millisecond {
		t.Errorf("BusyTime = %v, want 50ms", got)
	}
	if got := res.Acquires(); got != 2 {
		t.Errorf("Acquires = %d, want 2", got)
	}
	u := res.Utilization()
	if u < 0.40 || u > 0.45 { // 50ms busy over 120ms total
		t.Errorf("Utilization = %v, want ~0.417", u)
	}
}

func TestResourceWaitTime(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	for i := 0; i < 2; i++ {
		env.Go("u", func(p *Proc) { res.Use(p, 10*Millisecond) })
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := res.WaitTime(); got != 10*Millisecond {
		t.Errorf("WaitTime = %v, want 10ms (second user queued behind first)", got)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	env.Go("bad", func(p *Proc) { res.Release(p) })
	if err := env.Run(); err == nil {
		t.Error("releasing an idle resource should surface an error")
	}
}

// Property: for capacity c and n users each holding the resource for d, the
// makespan is ceil(n/c)*d — the canonical FIFO queueing identity.
func TestResourceMakespanProperty(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	f := func() bool {
		n := 1 + r.Intn(20)
		c := 1 + r.Intn(4)
		d := Time(1+r.Intn(50)) * Millisecond
		env := NewEnv()
		res := NewResource(env, "r", c)
		for i := 0; i < n; i++ {
			env.Go("u", func(p *Proc) { res.Use(p, d) })
		}
		if err := env.Run(); err != nil {
			return false
		}
		waves := (n + c - 1) / c
		return env.Now() == Time(waves)*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
