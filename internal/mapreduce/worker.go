package mapreduce

import (
	"gvmr/internal/cluster"
	"gvmr/internal/gpu"
	"gvmr/internal/sim"
	"gvmr/internal/trace"
	"gvmr/internal/volume"
)

// Ctx is the simulation process a callback runs in.
type Ctx = *sim.Proc

// Worker is one mapper worker: a GPU plus its host-side driver process.
// Mappers perform all device work through the Worker so the engine can
// attribute time to the paper's stages (Map vs Partition+I/O).
type Worker struct {
	Index int
	Dev   *gpu.Device
	Node  *cluster.Node

	tr   *trace.Log
	lane string

	// stage accumulators (virtual time)
	mapTime    sim.Time
	partIOTime sim.Time
	commBusy   sim.Time // transfer busy time across this worker's senders
	kernelTime sim.Time
	chunksDone int
	emitted    int64
	discarded  int64

	// work0 snapshots the device's lifetime kernel-work counters at job
	// start, so WorkerStats.Kernel reports this job's work only — a job's
	// statistics must not depend on what ran on the device before it
	// (multi-frame sessions reuse devices; the parallel frame scheduler
	// gives every frame a fresh one; both must report identically).
	work0 gpu.Stats
}

// span records an activity interval on the worker's trace lane (no-op
// without tracing).
func (w *Worker) span(cat, name string, start, end sim.Time) {
	w.tr.Add(trace.Span{Name: name, Cat: cat, Lane: w.lane, Start: start, End: end})
}

// UploadTexture stages a brick into VRAM, synchronously (the paper was
// forced into synchronous 3D-texture copies), attributed to Partition+I/O
// as a host↔device transfer.
func (w *Worker) UploadTexture(p Ctx, bd *volume.BrickData) (*gpu.Texture3D, error) {
	start := p.Now()
	tex, err := w.Dev.UploadTexture3D(p, bd)
	w.partIOTime += p.Now() - start
	w.span("partition+io", "h2d:texture", start, p.Now())
	return tex, err
}

// RunKernel executes a kernel on the worker's device, attributed to Map.
func (w *Worker) RunKernel(p Ctx, k gpu.Kernel) gpu.Stats {
	start := p.Now()
	st := w.Dev.Execute(p, k, false)
	elapsed := p.Now() - start
	w.mapTime += elapsed
	w.kernelTime += elapsed
	w.span("map", "kernel:"+k.Name(), start, p.Now())
	return st
}

// GPUCompute charges raw modeled kernel work (for mappers that are not
// rendering kernels, e.g. the histogram example), attributed to Map.
func (w *Worker) GPUCompute(p Ctx, stats gpu.Stats) {
	cost := gpu.KernelCost(&w.Dev.Spec, stats, false)
	start := p.Now()
	w.chargeEngine(p, cost)
	elapsed := p.Now() - start
	w.mapTime += elapsed
	w.kernelTime += elapsed
	w.span("map", "compute", start, p.Now())
}

// chargeEngine occupies the device's execution engine for d. It reuses the
// device Execute path with a synthetic zero-work kernel so engine
// contention between workers sharing a device stays modeled.
func (w *Worker) chargeEngine(p Ctx, d sim.Time) {
	// Devices are not shared between workers in this engine (worker i ==
	// GPU i), so a plain sleep is equivalent to engine occupancy.
	p.Sleep(d)
}

// Download charges a device-to-host fragment read-back, attributed to
// Partition+I/O.
func (w *Worker) Download(p Ctx, bytes int64) {
	start := p.Now()
	w.Dev.Download(p, bytes)
	w.partIOTime += p.Now() - start
	w.span("partition+io", "d2h:fragments", start, p.Now())
}

// CPUWork charges host CPU work on the worker's node, attributed to Map
// (mappers that compute on the CPU).
func (w *Worker) CPUWork(p Ctx, work, ratePerCore float64) {
	start := p.Now()
	w.Node.CPUWork(p, work, ratePerCore)
	w.mapTime += p.Now() - start
	w.span("map", "cpu", start, p.Now())
}

// StageTimes is the per-stage decomposition the paper's Figure 3 plots.
type StageTimes struct {
	Map         sim.Time // ray-casting kernels (GPU compute)
	PartitionIO sim.Time // disk loads, PCIe transfers, partition CPU, unhidden network waits
	Sort        sim.Time // counting sort at the reducer
	Reduce      sim.Time // per-key fold (compositing)
}

// Total returns the stacked sum.
func (s StageTimes) Total() sim.Time { return s.Map + s.PartitionIO + s.Sort + s.Reduce }

// add accumulates o into s.
func (s *StageTimes) add(o StageTimes) {
	s.Map += o.Map
	s.PartitionIO += o.PartitionIO
	s.Sort += o.Sort
	s.Reduce += o.Reduce
}

// scale divides every component by n.
func (s StageTimes) scale(n int) StageTimes {
	if n <= 0 {
		return s
	}
	return StageTimes{
		Map:         s.Map / sim.Time(n),
		PartitionIO: s.PartitionIO / sim.Time(n),
		Sort:        s.Sort / sim.Time(n),
		Reduce:      s.Reduce / sim.Time(n),
	}
}

// WorkerStats reports one worker's activity.
type WorkerStats struct {
	Index     int
	Stage     StageTimes
	Chunks    int
	Emitted   int64 // key-value pairs sent to reducers
	Discarded int64 // placeholders dropped during partition
	CommBusy  sim.Time
	Kernel    gpu.Stats
}

// ReducerStats reports one reducer's activity.
type ReducerStats struct {
	Index    int
	Received int64
	Keys     int64
	Sort     sim.Time
	Reduce   sim.Time
}

// JobStats is the full result record of a job run; every figure in the
// evaluation is derived from these numbers.
type JobStats struct {
	Makespan sim.Time
	Workers  []WorkerStats
	Reducers []ReducerStats
	// MeanStage is the mean per-worker stacked decomposition (reducer
	// stages folded onto their co-located worker) — the Figure 3 bars.
	MeanStage StageTimes
	// MapCompute/MapComm decompose the map phase for the §6.3 analysis:
	// kernel time vs all data movement (disk, PCIe, network busy).
	MapCompute sim.Time
	MapComm    sim.Time
	// Wire traffic.
	BytesOnWire   int64
	Messages      int64
	TotalEmitted  int64
	TotalReceived int64
	// Texture-sampling totals across workers. TotalSamplesSkipped counts
	// the samples empty-space skipping proved invisible and never took
	// (the dense path would have taken TotalSamples + TotalSamplesSkipped);
	// TotalCells is the macrocell traversal work the cost model charged
	// for proving it.
	TotalSamples        int64
	TotalSamplesSkipped int64
	TotalCells          int64
}
