package mapreduce

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundRobinPartition(t *testing.T) {
	p := RoundRobin{}
	for k := int32(0); k < 100; k++ {
		if got := p.Partition(k, 7); got != int(k)%7 {
			t.Fatalf("Partition(%d, 7) = %d", k, got)
		}
	}
}

func TestBlockedPartitionRanges(t *testing.T) {
	p := Blocked{KeyRange: 100}
	// 4 reducers: keys [0,25) → 0, [25,50) → 1, etc.
	cases := []struct {
		key  int32
		want int
	}{{0, 0}, {24, 0}, {25, 1}, {49, 1}, {50, 2}, {99, 3}}
	for _, c := range cases {
		if got := p.Partition(c.key, 4); got != c.want {
			t.Errorf("Partition(%d) = %d, want %d", c.key, got, c.want)
		}
	}
	// Degenerate key range routes everything to reducer 0.
	if got := (Blocked{}).Partition(5, 4); got != 0 {
		t.Errorf("degenerate Blocked = %d", got)
	}
}

func TestStripedPartition(t *testing.T) {
	// 8-wide image, stripes of 2 rows: rows 0-1 → reducer 0, 2-3 → 1, ...
	p := Striped{Width: 8, StripeHeight: 2}
	if got := p.Partition(0, 4); got != 0 {
		t.Errorf("row 0 → %d", got)
	}
	if got := p.Partition(2*8, 4); got != 1 {
		t.Errorf("row 2 → %d", got)
	}
	if got := p.Partition(8*8, 4); got != 0 { // row 8: stripe 4 wraps to 0
		t.Errorf("row 8 → %d", got)
	}
	if got := (Striped{}).Partition(5, 4); got != 0 {
		t.Errorf("degenerate Striped = %d", got)
	}
}

func TestCheckerboardPartition(t *testing.T) {
	// 8-wide image, 4-pixel tiles, 2 tiles per row.
	p := Checkerboard{Width: 8, Tile: 4}
	if got := p.Partition(0, 4); got != 0 { // tile (0,0)
		t.Errorf("tile (0,0) → %d", got)
	}
	if got := p.Partition(4, 4); got != 1 { // tile (1,0)
		t.Errorf("tile (1,0) → %d", got)
	}
	if got := p.Partition(4*8, 4); got != 2 { // tile (0,1)
		t.Errorf("tile (0,1) → %d", got)
	}
	if got := (Checkerboard{}).Partition(5, 4); got != 0 {
		t.Errorf("degenerate Checkerboard = %d", got)
	}
}

// Property: every partitioner maps every key into [0, R).
func TestPartitionersInRangeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	parts := []Partitioner{
		RoundRobin{},
		Blocked{KeyRange: 512 * 512},
		Striped{Width: 512, StripeHeight: 8},
		Checkerboard{Width: 512, Tile: 16},
	}
	f := func() bool {
		key := r.Int31n(512 * 512)
		n := 1 + r.Intn(32)
		for _, p := range parts {
			got := p.Partition(key, n)
			if got < 0 || got >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: round robin distributes a dense key range perfectly evenly
// (the reason the paper picked it).
func TestRoundRobinBalanceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(109))
	f := func() bool {
		n := 1 + r.Intn(16)
		keys := int32(n * (10 + r.Intn(100)))
		counts := make([]int, n)
		for k := int32(0); k < keys; k++ {
			counts[RoundRobin{}.Partition(k, n)]++
		}
		for _, c := range counts {
			if c != int(keys)/n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
