package mapreduce

import (
	"fmt"

	"gvmr/internal/cluster"
	"gvmr/internal/gpu"
	"gvmr/internal/sim"
	"gvmr/internal/trace"
)

// reducerState is one reducer process: it collects batches from every
// worker, counting-sorts them by key (θ(n), exploiting the dense integer
// key restriction) and folds each key group through the user Reducer.
type reducerState[V any] struct {
	index int
	host  int // co-located worker index
	node  *cluster.Node
	dev   *gpu.Device
	impl  Reducer[V]
	inbox *sim.Chan[message[V]]
	buf   []KV[V]
	stats ReducerStats
}

func (rs *reducerState[V]) run(p *sim.Proc, cfg *configView) {
	rs.stats.Index = rs.index
	pending := cfg.workers
	for pending > 0 {
		msg, ok := rs.inbox.Recv(p)
		if !ok {
			return
		}
		if msg.done {
			pending--
			continue
		}
		rs.stats.Received += int64(len(msg.kvs))
		rs.buf = append(rs.buf, msg.kvs...)
	}
	n := len(rs.buf)
	if n == 0 {
		return
	}

	// Sort phase: counting sort, charged on CPU or GPU per config. The
	// GPU path pays the PCIe round trip of the raw pairs.
	kvBytes := int64(4 + cfg.valueBytes)
	sortStart := p.Now()
	if cfg.sortOn == OnGPU {
		rs.chargeGPU(p, cfg, float64(n*int(kvBytes)), float64(n), cfg.sortRate)
	} else {
		rs.node.CPUWork(p, float64(n), cfg.sortRate)
	}
	keys, groups := CountingSort(rs.buf, cfg.keyRange)
	rs.stats.Sort = p.Now() - sortStart
	cfg.tr.Add(trace.Span{
		Name: "sort", Cat: "sort",
		Lane: fmt.Sprintf("reducer%d", rs.index), Start: sortStart, End: p.Now(),
	})
	rs.stats.Keys = int64(len(keys))

	// Reduce phase: fold every key group.
	reduceStart := p.Now()
	if cfg.reduceOn == OnGPU {
		rs.chargeGPU(p, cfg, float64(n*int(kvBytes)), float64(n), cfg.reduceRate)
	} else {
		rs.node.CPUWork(p, float64(n), cfg.reduceRate)
	}
	for i, k := range keys {
		rs.impl.Reduce(k, groups[i])
	}
	rs.stats.Reduce = p.Now() - reduceStart
	cfg.tr.Add(trace.Span{
		Name: "reduce", Cat: "reduce",
		Lane: fmt.Sprintf("reducer%d", rs.index), Start: reduceStart, End: p.Now(),
	})
	rs.buf = nil
}

// chargeGPU models running a reduce-side stage on the co-located GPU: a
// host-to-device copy of the data, the data-parallel work at a multiple of
// the single-core CPU rate, and the result read-back. It occupies the
// device engine, contending with any mapping still in flight there.
func (rs *reducerState[V]) chargeGPU(p *sim.Proc, cfg *configView, bytes, work, cpuRate float64) {
	if bytes > 0 {
		t := rs.dev.PCIe.TransferTime(int64(bytes))
		rs.dev.PCIe.Link.Use(p, t)
	}
	rs.dev.Occupy(p, sim.WorkTime(work, cpuRate*cfg.gpuSpeedup))
	if bytes > 0 {
		t := rs.dev.PCIe.TransferTime(int64(bytes) / 4) // results are smaller
		rs.dev.PCIe.Link.Use(p, t)
	}
}

// CountingSort groups pairs by key in θ(n + keyRange): the sort stage the
// paper specialises given that "the library knows the minimum and maximum
// keys for each node". It is stable within a key, preserving arrival
// order, which keeps runs deterministic. Exported because it is a useful
// primitive for library users with the same dense-key restriction.
func CountingSort[V any](kvs []KV[V], keyRange int32) (keys []int32, groups [][]V) {
	counts := make([]int32, keyRange)
	for i := range kvs {
		counts[kvs[i].Key]++
	}
	offsets := make([]int32, keyRange)
	var total, distinct int32
	for k := int32(0); k < keyRange; k++ {
		offsets[k] = total
		total += counts[k]
		if counts[k] > 0 {
			distinct++
		}
	}
	flat := make([]V, len(kvs))
	cursor := make([]int32, keyRange)
	copy(cursor, offsets)
	for i := range kvs {
		k := kvs[i].Key
		flat[cursor[k]] = kvs[i].Val
		cursor[k]++
	}
	keys = make([]int32, 0, distinct)
	groups = make([][]V, 0, distinct)
	for k := int32(0); k < keyRange; k++ {
		if counts[k] == 0 {
			continue
		}
		keys = append(keys, k)
		groups = append(groups, flat[offsets[k]:offsets[k]+counts[k]])
	}
	return keys, groups
}

// configView is the non-generic slice of Config the reducer needs (it
// keeps reducerState monomorphic in V only).
type configView struct {
	tr         *trace.Log
	workers    int
	keyRange   int32
	valueBytes int
	sortOn     Placement
	reduceOn   Placement
	sortRate   float64
	reduceRate float64
	gpuSpeedup float64
}
