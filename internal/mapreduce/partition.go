package mapreduce

// The paper's §6 discusses direct-send compositing "with a checkerboard,
// tiled, or striped distribution" before settling on per-pixel round
// robin as "empirically the most performant method". These partitioners
// implement the alternatives so the choice can be measured (see the
// partitioning ablation); all of them satisfy the dense-integer-key
// restriction.

// Striped assigns horizontal image stripes to reducers cyclically:
// reducer = (key / (Width·StripeHeight)) mod R.
type Striped struct {
	Width        int
	StripeHeight int
}

// Partition implements Partitioner.
func (s Striped) Partition(key int32, numReducers int) int {
	if s.Width <= 0 || s.StripeHeight <= 0 {
		return 0
	}
	stripe := int(key) / (s.Width * s.StripeHeight)
	return stripe % numReducers
}

// Checkerboard assigns square image tiles to reducers cyclically in a 2D
// checkerboard pattern: tile (tx, ty) goes to reducer (ty·tilesPerRow +
// tx) mod R, so neighbouring tiles land on different reducers.
type Checkerboard struct {
	Width int
	Tile  int
}

// Partition implements Partitioner.
func (c Checkerboard) Partition(key int32, numReducers int) int {
	if c.Width <= 0 || c.Tile <= 0 {
		return 0
	}
	x := int(key) % c.Width
	y := int(key) / c.Width
	tx := x / c.Tile
	ty := y / c.Tile
	tilesPerRow := (c.Width + c.Tile - 1) / c.Tile
	return (ty*tilesPerRow + tx) % numReducers
}
