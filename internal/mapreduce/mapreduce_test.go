package mapreduce

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"gvmr/internal/cluster"
	"gvmr/internal/gpu"
	"gvmr/internal/sim"
)

// intChunk is a toy chunk holding raw values.
type intChunk struct {
	id   int
	vals []int32
}

func (c intChunk) ID() int      { return c.id }
func (c intChunk) Bytes() int64 { return int64(len(c.vals)) * 4 }

// histMapper bins values modulo buckets — a dense-integer-key workload
// that satisfies every paper restriction.
type histMapper struct {
	buckets     int32
	emitNegOnce bool // also emit one placeholder per chunk when set
	failChunk   int  // chunk ID whose Map fails (-1: never)
	failStage   int  // chunk ID whose Stage fails (-1: never)
}

func (m *histMapper) Init(Ctx, *Worker) error { return nil }

func (m *histMapper) Stage(p Ctx, w *Worker, c Chunk) ([]int32, error) {
	ic := c.(intChunk)
	if m.failStage == ic.id {
		return nil, fmt.Errorf("synthetic stage failure")
	}
	return ic.vals, nil
}

func (m *histMapper) Map(p Ctx, w *Worker, c Chunk, vals []int32, emit func(KV[int32])) error {
	if m.failChunk == c.ID() {
		return fmt.Errorf("synthetic map failure")
	}
	w.GPUCompute(p, gpu.Stats{Threads: int64(len(vals)), Emitted: int64(len(vals))})
	if m.emitNegOnce {
		emit(KV[int32]{Key: -1})
	}
	for _, v := range vals {
		emit(KV[int32]{Key: v % m.buckets, Val: 1})
	}
	return nil
}

// sumReducer accumulates per-key counts.
type sumReducer struct {
	sums map[int32]int64
}

func (r *sumReducer) Reduce(key int32, vals []int32) {
	for _, v := range vals {
		r.sums[key] += int64(v)
	}
}

func newHistConfig(t *testing.T, gpus, chunks, valsPerChunk int, buckets int32) (Config[int32, []int32], *[]*sumReducer) {
	t.Helper()
	env := sim.NewEnv()
	cl, err := cluster.New(env, cluster.AC(gpus))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(chunks)*1000 + int64(valsPerChunk)))
	var cs []Chunk
	for i := 0; i < chunks; i++ {
		vals := make([]int32, valsPerChunk)
		for j := range vals {
			vals[j] = rng.Int31n(1 << 20)
		}
		cs = append(cs, intChunk{id: i, vals: vals})
	}
	reducers := new([]*sumReducer)
	cfg := Config[int32, []int32]{
		Cluster: cl,
		Mapper:  &histMapper{buckets: buckets, failChunk: -1, failStage: -1},
		MakeReducer: func(r int) Reducer[int32] {
			sr := &sumReducer{sums: map[int32]int64{}}
			*reducers = append(*reducers, sr)
			return sr
		},
		KeyRange:   buckets,
		ValueBytes: 4,
		Chunks:     cs,
	}
	return cfg, reducers
}

// expectedHist computes ground truth for the toy workload.
func expectedHist(cfg Config[int32, []int32], buckets int32) map[int32]int64 {
	want := map[int32]int64{}
	for _, c := range cfg.Chunks {
		for _, v := range c.(intChunk).vals {
			want[v%buckets]++
		}
	}
	return want
}

func mergeSums(reducers []*sumReducer) map[int32]int64 {
	got := map[int32]int64{}
	for _, r := range reducers {
		for k, v := range r.sums {
			got[k] += v
		}
	}
	return got
}

func TestHistogramCorrectness(t *testing.T) {
	cfg, reducers := newHistConfig(t, 4, 10, 500, 64)
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := expectedHist(cfg, 64)
	got := mergeSums(*reducers)
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("bucket %d = %d, want %d", k, got[k], v)
		}
	}
	if stats.TotalEmitted != 10*500 {
		t.Errorf("TotalEmitted = %d", stats.TotalEmitted)
	}
	if stats.TotalReceived != stats.TotalEmitted {
		t.Errorf("received %d != emitted %d", stats.TotalReceived, stats.TotalEmitted)
	}
	if stats.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

func TestRoundRobinKeyRouting(t *testing.T) {
	// With round-robin partitioning, reducer r must only see keys ≡ r (mod R).
	cfg, reducers := newHistConfig(t, 4, 6, 300, 64)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for r, sr := range *reducers {
		for k := range sr.sums {
			if int(k)%len(*reducers) != r {
				t.Errorf("reducer %d saw key %d (mod %d = %d)", r, k, len(*reducers), int(k)%len(*reducers))
			}
		}
	}
}

func TestBlockedPartitioner(t *testing.T) {
	cfg, reducers := newHistConfig(t, 4, 6, 300, 64)
	cfg.Partitioner = Blocked{KeyRange: 64}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for r, sr := range *reducers {
		lo := int32(r * 64 / len(*reducers))
		hi := int32((r + 1) * 64 / len(*reducers))
		for k := range sr.sums {
			if k < lo || k >= hi {
				t.Errorf("reducer %d saw key %d outside [%d,%d)", r, k, lo, hi)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (sim.Time, map[int32]int64) {
		cfg, reducers := newHistConfig(t, 8, 12, 400, 128)
		stats, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Makespan, mergeSums(*reducers)
	}
	m1, h1 := run()
	m2, h2 := run()
	if m1 != m2 {
		t.Errorf("makespans differ: %v vs %v", m1, m2)
	}
	for k, v := range h1 {
		if h2[k] != v {
			t.Fatalf("histograms differ at key %d", k)
		}
	}
}

func TestPlaceholdersDiscarded(t *testing.T) {
	cfg, reducers := newHistConfig(t, 2, 4, 100, 16)
	cfg.Mapper = &histMapper{buckets: 16, emitNegOnce: true, failChunk: -1, failStage: -1}
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var discarded int64
	for _, w := range stats.Workers {
		discarded += w.Discarded
	}
	if discarded != 4 { // one per chunk
		t.Errorf("discarded = %d, want 4", discarded)
	}
	got := mergeSums(*reducers)
	want := expectedHist(cfg, 16)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("bucket %d = %d, want %d (placeholders leaked?)", k, got[k], v)
		}
	}
}

func TestKeyOutOfRangeFails(t *testing.T) {
	cfg, _ := newHistConfig(t, 2, 2, 50, 16)
	cfg.KeyRange = 3 // mapper emits modulo 16: some keys exceed 3
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range key accepted")
	}
}

// overflowMapper emits Key == KeyRange for every value — each emit
// violates the key contract — and counts Map calls and emit attempts.
type overflowMapper struct {
	histMapper
	keyRange int32
	mapCalls int
	emits    int
}

func (m *overflowMapper) Map(p Ctx, w *Worker, c Chunk, vals []int32, emit func(KV[int32])) error {
	m.mapCalls++
	for range vals {
		m.emits++
		emit(KV[int32]{Key: m.keyRange, Val: 1})
	}
	return nil
}

// TestKeyOutOfRangeFailsWorker checks that the first contract violation
// marks the worker failed: it records one error, drains its remaining
// chunks without mapping them, and exits — a buggy mapper must not keep
// mapping every chunk while the error list grows without bound.
func TestKeyOutOfRangeFailsWorker(t *testing.T) {
	cfg, _ := newHistConfig(t, 1, 4, 50, 16)
	m := &overflowMapper{
		histMapper: histMapper{failChunk: -1, failStage: -1},
		keyRange:   cfg.KeyRange,
	}
	cfg.Mapper = m
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("out-of-range key accepted")
	}
	if want := "outside range"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
	if m.mapCalls != 1 {
		t.Errorf("Map called %d times, want 1 (worker must drain after the violation)", m.mapCalls)
	}
	if m.emits != 50 {
		t.Errorf("emit attempts = %d, want 50 (only the first chunk maps)", m.emits)
	}
}

func TestMapFailurePropagates(t *testing.T) {
	cfg, _ := newHistConfig(t, 4, 8, 50, 16)
	cfg.Mapper = &histMapper{buckets: 16, failChunk: 3, failStage: -1}
	if _, err := Run(cfg); err == nil {
		t.Error("map failure not propagated")
	}
}

func TestStageFailurePropagates(t *testing.T) {
	cfg, _ := newHistConfig(t, 4, 8, 50, 16)
	cfg.Mapper = &histMapper{buckets: 16, failChunk: -1, failStage: 5}
	if _, err := Run(cfg); err == nil {
		t.Error("stage failure not propagated")
	}
}

func TestConfigValidation(t *testing.T) {
	base, _ := newHistConfig(t, 2, 2, 10, 8)
	cases := []func(*Config[int32, []int32]){
		func(c *Config[int32, []int32]) { c.Cluster = nil },
		func(c *Config[int32, []int32]) { c.Workers = 99 },
		func(c *Config[int32, []int32]) { c.Mapper = nil },
		func(c *Config[int32, []int32]) { c.MakeReducer = nil },
		func(c *Config[int32, []int32]) { c.KeyRange = 0 },
		func(c *Config[int32, []int32]) { c.ValueBytes = 0 },
		func(c *Config[int32, []int32]) { c.Chunks = nil },
	}
	for i, mut := range cases {
		cfg := base
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestFromDiskChargesIO(t *testing.T) {
	cfgMem, _ := newHistConfig(t, 2, 6, 100000, 16)
	statsMem, err := Run(cfgMem)
	if err != nil {
		t.Fatal(err)
	}
	cfgDisk, _ := newHistConfig(t, 2, 6, 100000, 16)
	cfgDisk.FromDisk = true
	statsDisk, err := Run(cfgDisk)
	if err != nil {
		t.Fatal(err)
	}
	if statsDisk.Makespan <= statsMem.Makespan {
		t.Errorf("disk job %v should be slower than in-core %v",
			statsDisk.Makespan, statsMem.Makespan)
	}
	if statsDisk.MeanStage.PartitionIO <= statsMem.MeanStage.PartitionIO {
		t.Error("disk reads not attributed to Partition+I/O")
	}
}

func TestDynamicAssignmentBalancesSkew(t *testing.T) {
	// One huge chunk plus many small ones: static round-robin strands the
	// small chunks behind the huge one on the same worker in ID order,
	// dynamic pulls them to idle workers.
	build := func(assign AssignMode) sim.Time {
		env := sim.NewEnv()
		cl, err := cluster.New(env, cluster.AC(4))
		if err != nil {
			t.Fatal(err)
		}
		var cs []Chunk
		big := make([]int32, 400000)
		cs = append(cs, intChunk{id: 0, vals: big})
		for i := 1; i <= 12; i++ {
			cs = append(cs, intChunk{id: i, vals: make([]int32, 50000)})
		}
		cfg := Config[int32, []int32]{
			Cluster: cl,
			Mapper:  &histMapper{buckets: 8, failChunk: -1, failStage: -1},
			MakeReducer: func(int) Reducer[int32] {
				return &sumReducer{sums: map[int32]int64{}}
			},
			KeyRange:   8,
			ValueBytes: 4,
			Chunks:     cs,
			Assign:     assign,
		}
		stats, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Makespan
	}
	staticT := build(AssignStatic)
	dynamicT := build(AssignDynamic)
	if dynamicT > staticT {
		t.Errorf("dynamic %v should not be slower than static %v with skew", dynamicT, staticT)
	}
}

func TestGPUReduceSlowerForSmallInputs(t *testing.T) {
	// The paper found CPU compositing faster than GPU compositing because
	// of transfer costs; the model must reproduce that for modest inputs.
	cpuCfg, _ := newHistConfig(t, 2, 4, 2000, 64)
	cpuStats, err := Run(cpuCfg)
	if err != nil {
		t.Fatal(err)
	}
	gpuCfg, _ := newHistConfig(t, 2, 4, 2000, 64)
	gpuCfg.ReduceOn = OnGPU
	gpuCfg.SortOn = OnGPU
	gpuStats, err := Run(gpuCfg)
	if err != nil {
		t.Fatal(err)
	}
	cpuRR := cpuStats.MeanStage.Sort + cpuStats.MeanStage.Reduce
	gpuRR := gpuStats.MeanStage.Sort + gpuStats.MeanStage.Reduce
	if gpuRR <= cpuRR {
		t.Errorf("GPU reduce %v should be slower than CPU %v for small inputs", gpuRR, cpuRR)
	}
}

func TestStreamingFlushProducesMoreMessages(t *testing.T) {
	coarse, _ := newHistConfig(t, 2, 4, 5000, 16)
	coarse.FlushBytes = 0 // flush per chunk only
	sc, err := Run(coarse)
	if err != nil {
		t.Fatal(err)
	}
	fine, _ := newHistConfig(t, 2, 4, 5000, 16)
	fine.FlushBytes = 1024
	sf, err := Run(fine)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Messages <= sc.Messages {
		t.Errorf("threshold flushing sent %d messages, per-chunk %d", sf.Messages, sc.Messages)
	}
	if sf.TotalReceived != sc.TotalReceived {
		t.Errorf("payload differs: %d vs %d", sf.TotalReceived, sc.TotalReceived)
	}
}

func TestFixedOverheadCharged(t *testing.T) {
	a, _ := newHistConfig(t, 2, 2, 100, 8)
	sa, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := newHistConfig(t, 2, 2, 100, 8)
	b.ChargeFixedOverhead = true
	sb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	diff := sb.Makespan - sa.Makespan
	want := cluster.AC(2).JobFixedOverhead
	if diff < want*9/10 || diff > want*11/10 {
		t.Errorf("fixed overhead added %v, want ≈%v", diff, want)
	}
}

func TestCountingSortGroups(t *testing.T) {
	kvs := []KV[string]{
		{Key: 3, Val: "a"}, {Key: 1, Val: "b"}, {Key: 3, Val: "c"},
		{Key: 0, Val: "d"}, {Key: 1, Val: "e"},
	}
	keys, groups := CountingSort(kvs, 5)
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	if keys[0] != 0 || keys[1] != 1 || keys[2] != 3 {
		t.Errorf("keys not ascending: %v", keys)
	}
	if len(groups[2]) != 2 || groups[2][0] != "a" || groups[2][1] != "c" {
		t.Errorf("key 3 group = %v, want stable [a c]", groups[2])
	}
	if groups[1][0] != "b" || groups[1][1] != "e" {
		t.Errorf("key 1 group = %v, want stable [b e]", groups[1])
	}
}

// Property: counting sort produces exactly the same grouping as a generic
// comparison sort, for random inputs.
func TestCountingSortEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	f := func() bool {
		n := r.Intn(200)
		keyRange := int32(1 + r.Intn(50))
		kvs := make([]KV[int32], n)
		for i := range kvs {
			kvs[i] = KV[int32]{Key: r.Int31n(keyRange), Val: int32(i)}
		}
		keys, groups := CountingSort(kvs, keyRange)
		// Reference: stable sort by key.
		ref := append([]KV[int32](nil), kvs...)
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].Key < ref[j].Key })
		var flatKeys []int32
		var flatVals []int32
		for i, k := range keys {
			for _, v := range groups[i] {
				flatKeys = append(flatKeys, k)
				flatVals = append(flatVals, v)
			}
		}
		if len(flatKeys) != len(ref) {
			return false
		}
		for i := range ref {
			if flatKeys[i] != ref[i].Key || flatVals[i] != ref[i].Val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMoreWorkersSpreadWork(t *testing.T) {
	// Pure compute scaling: a compute-heavy job on more GPUs finishes
	// sooner (communication is tiny here).
	run := func(gpus int) sim.Time {
		cfg, _ := newHistConfig(t, gpus, 16, 200000, 8)
		stats, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Makespan
	}
	t1 := run(1)
	t4 := run(4)
	if t4 >= t1 {
		t.Errorf("4 GPUs (%v) not faster than 1 (%v)", t4, t1)
	}
	if t4 > t1/2 {
		t.Errorf("4 GPUs (%v) should be well under half of 1 GPU (%v)", t4, t1)
	}
}

func TestWorkerStatspopulated(t *testing.T) {
	cfg, _ := newHistConfig(t, 4, 8, 1000, 32)
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Workers) != 4 || len(stats.Reducers) != 4 {
		t.Fatalf("stats sizes: %d workers, %d reducers", len(stats.Workers), len(stats.Reducers))
	}
	var chunks int
	for _, w := range stats.Workers {
		chunks += w.Chunks
		if w.Stage.Map <= 0 {
			t.Errorf("worker %d has zero map time", w.Index)
		}
	}
	if chunks != 8 {
		t.Errorf("chunks processed = %d, want 8", chunks)
	}
	if stats.Messages == 0 || stats.BytesOnWire == 0 {
		t.Error("wire stats empty")
	}
	if stats.MeanStage.Sort <= 0 || stats.MeanStage.Reduce <= 0 {
		t.Error("reducer stages not folded into MeanStage")
	}
}

func TestAffinityAssignmentAvoidsHandoff(t *testing.T) {
	// Chunks homed on the workers' nodes: affinity scheduling maps each
	// on its home node, so no interconnect hand-off is charged; the
	// misplaced variant (all chunks homed on node 0) must pay transfers.
	run := func(home func(c Chunk) int) *JobStats {
		cfg, _ := newHistConfig(t, 8, 16, 20000, 16) // 2 nodes
		cfg.Assign = AssignAffinity
		cfg.Home = home
		stats, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	local := run(func(c Chunk) int { return c.ID() % 2 })
	remote := run(func(c Chunk) int { return 0 }) // all on node 0: node 0 overloaded
	if remote.Makespan <= local.Makespan {
		t.Errorf("misplaced data %v should be slower than local %v",
			remote.Makespan, local.Makespan)
	}
}

func TestAffinityRequiresHome(t *testing.T) {
	cfg, _ := newHistConfig(t, 4, 8, 100, 16)
	cfg.Assign = AssignAffinity
	if _, err := Run(cfg); err == nil {
		t.Error("affinity without Home accepted")
	}
}

func TestAffinityFallsBackForUnknownHome(t *testing.T) {
	cfg, reducers := newHistConfig(t, 2, 6, 500, 16)
	cfg.Assign = AssignAffinity
	cfg.Home = func(c Chunk) int { return 99 } // no such node
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var chunks int
	for _, w := range stats.Workers {
		chunks += w.Chunks
	}
	if chunks != 6 {
		t.Errorf("fallback dropped chunks: %d of 6", chunks)
	}
	got := mergeSums(*reducers)
	want := expectedHist(cfg, 16)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("histogram wrong under fallback at key %d", k)
		}
	}
}

func TestHomeChargesHandoffWithStaticAssign(t *testing.T) {
	// Home is honoured even with static assignment: chunks mapped off
	// their home pay the interconnect transfer, slowing the job.
	base, _ := newHistConfig(t, 8, 8, 120000, 16)
	sBase, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	moved, _ := newHistConfig(t, 8, 8, 120000, 16)
	moved.Home = func(c Chunk) int { return 1 } // all data on node 1
	sMoved, err := Run(moved)
	if err != nil {
		t.Fatal(err)
	}
	if sMoved.Makespan <= sBase.Makespan {
		t.Errorf("hand-offs %v should cost more than local data %v",
			sMoved.Makespan, sBase.Makespan)
	}
}

func TestCombinerShrinksWireTraffic(t *testing.T) {
	// The histogram job can merge same-key counts before sending; wire
	// bytes drop while results stay exact — and volume rendering cannot
	// use this, which is why the paper omitted it (§3.1).
	run := func(combine bool) (*JobStats, map[int32]int64) {
		cfg, reducers := newHistConfig(t, 4, 8, 20000, 16)
		if combine {
			cfg.Combine = func(kvs []KV[int32]) []KV[int32] {
				sums := map[int32]int32{}
				for _, kv := range kvs {
					sums[kv.Key] += kv.Val
				}
				out := make([]KV[int32], 0, len(sums))
				for k := int32(0); k < 16; k++ {
					if v, ok := sums[k]; ok {
						out = append(out, KV[int32]{Key: k, Val: v})
					}
				}
				return out
			}
		}
		stats, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats, mergeSums(*reducers)
	}
	plain, histPlain := run(false)
	combined, histCombined := run(true)
	if combined.BytesOnWire >= plain.BytesOnWire/10 {
		t.Errorf("combiner wire bytes %d, want <10%% of %d",
			combined.BytesOnWire, plain.BytesOnWire)
	}
	for k, v := range histPlain {
		if histCombined[k] != v {
			t.Fatalf("combiner changed result at key %d: %d vs %d", k, histCombined[k], v)
		}
	}
}

func TestCombinerToEmptyBatch(t *testing.T) {
	// A combiner that drops everything must not wedge the job.
	cfg, _ := newHistConfig(t, 2, 4, 100, 8)
	cfg.Combine = func(kvs []KV[int32]) []KV[int32] { return nil }
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalReceived != 0 {
		t.Errorf("dropped batches still delivered %d pairs", stats.TotalReceived)
	}
}
