// Package mapreduce is the paper's primary contribution rebuilt in Go: a
// multi-GPU MapReduce library specialised for volume rendering. It keeps
// the paper's restrictions (§3.1.1) — dense four-byte integer keys,
// homogeneous value sizes, per-pixel round-robin partitioning, θ(n)
// counting sort — and its streaming design: intermediate key-value pairs
// never touch disk; they are partitioned as they are produced and sent
// asynchronously to reducer processes while mapping continues, overlapping
// disk I/O, PCIe transfers, kernel execution and network communication.
//
// The library runs on the simulated cluster (internal/cluster): all
// computation is real Go code; all I/O and kernel time is charged to the
// deterministic virtual clock.
package mapreduce

import (
	"fmt"

	"gvmr/internal/cluster"
	"gvmr/internal/trace"
)

// KV is a key-value pair. Keys are four-byte integers (the paper's
// restriction); values are homogeneous fixed-size records described by
// Config.ValueBytes for wire modeling.
type KV[V any] struct {
	Key int32
	Val V
}

// Chunk is a unit of map work (for the renderer: one map unit — a single
// brick by default, or a group of bricks under a non-convex partition).
type Chunk interface {
	// ID is the chunk's index in the job, used for assignment.
	ID() int
	// Bytes is the chunk's payload size, charged on staging I/O and
	// checked against device memory (the paper's restriction that any
	// single map task must fit in GPU memory).
	Bytes() int64
}

// Mapper turns chunks into key-value pairs. S is the staged representation
// produced by Stage and consumed by Map, letting the engine prefetch the
// next chunk's data (disk) while the current chunk maps (the streaming
// overlap in §3).
type Mapper[V, S any] interface {
	// Init runs once per worker before any Map call (static data upload:
	// view matrices and the like).
	Init(p Ctx, w *Worker) error
	// Stage materialises a chunk's payload. It runs in the worker's
	// loader process, overlapped with Map of the previous chunk. The
	// engine charges disk I/O separately when Config.FromDisk is set.
	Stage(p Ctx, w *Worker, c Chunk) (S, error)
	// Map processes one staged chunk, emitting zero or more key-value
	// pairs per key — a key may repeat within a chunk (the renderer's
	// fragment lists: one fragment per ray span through a non-convex
	// unit), and reducers see every occurrence.
	Map(p Ctx, w *Worker, c Chunk, staged S, emit func(KV[V])) error
}

// Reducer folds all values of one key. Implementations accumulate their
// results internally (e.g. an image shard) and are interrogated by the
// caller after the job completes.
type Reducer[V any] interface {
	// Reduce is called once per key present, with all its values, keys
	// ascending. Values arrive in deterministic (arrival) order.
	Reduce(key int32, vals []V)
}

// Partitioner routes a key to a reducer.
type Partitioner interface {
	Partition(key int32, numReducers int) int
}

// RoundRobin is the paper's per-pixel round-robin partitioning: reducer =
// key mod R. "A modulo is sufficient to determine the reducer to which a
// key-value pair must be sent" (§3.1.1).
type RoundRobin struct{}

// Partition implements Partitioner.
func (RoundRobin) Partition(key int32, numReducers int) int {
	return int(key) % numReducers
}

// Blocked assigns contiguous key ranges to reducers (keys [r·K/R, (r+1)·K/R)
// to reducer r). It is the volume/image-block alternative the paper's §6.1
// discusses for swap-style compositing, kept for the partitioning ablation.
type Blocked struct {
	KeyRange int32
}

// Partition implements Partitioner.
func (b Blocked) Partition(key int32, numReducers int) int {
	if b.KeyRange <= 0 {
		return 0
	}
	r := int(int64(key) * int64(numReducers) / int64(b.KeyRange))
	if r >= numReducers {
		r = numReducers - 1
	}
	return r
}

// Placement selects where a stage executes.
type Placement int

// Placement values.
const (
	OnCPU Placement = iota
	OnGPU
)

// String renders the placement.
func (p Placement) String() string {
	if p == OnGPU {
		return "gpu"
	}
	return "cpu"
}

// AssignMode selects how chunks are distributed over workers.
type AssignMode int

// Assignment modes. Static round-robin is what the paper uses ("we
// specifically omitted … advanced scheduling"); the dynamic work queue is
// kept for the scheduling ablation; affinity assignment places each chunk
// on a worker of the node that already holds its data — the in-situ
// pipeline §7 proposes ("the simulation nodes efficiently split the
// volume and transfer it over a high-speed interconnect").
const (
	AssignStatic AssignMode = iota
	AssignDynamic
	AssignAffinity
)

// Config describes a job.
type Config[V, S any] struct {
	Cluster *cluster.Cluster
	// Workers is the number of mapper workers; worker i drives GPU i.
	// Zero means all GPUs.
	Workers int
	// Reducers defaults to Workers; reducer r is co-located with worker
	// r mod Workers.
	Reducers int

	Mapper      Mapper[V, S]
	MakeReducer func(r int) Reducer[V]
	Partitioner Partitioner

	// KeyRange bounds keys to [0, KeyRange). Emitting outside it is an
	// error; keys of -1 are placeholders, discarded during partition.
	KeyRange int32
	// ValueBytes is the wire size of one value (keys add 4 bytes).
	ValueBytes int

	Chunks []Chunk
	Assign AssignMode

	// FlushBytes triggers an asynchronous batch send once a worker has
	// buffered this many bytes for one reducer; the end of every chunk
	// flushes the remainder. Zero means flush only at chunk boundaries.
	FlushBytes int64

	// FromDisk charges a disk read of Chunk.Bytes on staging — the
	// out-of-core path. In-core jobs (data resident in host memory)
	// leave it false, matching the paper's speed-of-light setup.
	FromDisk bool

	// LocalReduce routes every pair a worker emits to its own co-located
	// reducer, ignoring the Partitioner. This is the §6.1 swap-compositing
	// topology: "Every node would consume all generated ray fragments to
	// create its partial image."
	LocalReduce bool

	// ReduceOn places the reduce computation (paper default: CPU, since
	// the required ray-fragment sort makes the GPU round trip not worth
	// it; §3.1.2). SortOn places the counting sort likewise.
	ReduceOn Placement
	SortOn   Placement

	// GPUReduceSpeedup is the modeled throughput multiple a GPU enjoys
	// over one CPU core for the reduce/sort inner loops (data-parallel
	// blending); used only when ReduceOn/SortOn is OnGPU.
	GPUReduceSpeedup float64

	// ChargeFixedOverhead adds the cluster's per-job fixed overhead
	// (process/kernel-context setup, collective start) to the makespan.
	ChargeFixedOverhead bool

	// Home maps a chunk to the node ID that holds its data (the in-situ
	// producer). With AssignAffinity, chunks are scheduled onto workers
	// of their home node when possible; any chunk staged away from its
	// home is charged an interconnect hand-off of Chunk.Bytes.
	Home func(c Chunk) int

	// Combine, when non-nil, is the partial reduce/combine the paper
	// §3.1 "specifically omitted … because it didn't increase
	// performance for our volume renderer": it is applied to each batch
	// just before it goes on the wire and may merge pairs with equal
	// keys (e.g. summing histogram counts). Its CPU cost is charged at
	// the partition rate over the input size. Volume rendering cannot
	// use it safely — fragments of one pixel from different workers may
	// interleave in depth — which is exactly why the paper dropped it;
	// the histogram workload shows the wire-traffic win it gives jobs
	// with mergeable values.
	Combine func(kvs []KV[V]) []KV[V]

	// Trace, when non-nil, records activity spans (kernels, transfers,
	// sorts, reduces) for timeline export; see internal/trace.
	Trace *trace.Log
}

func (c *Config[V, S]) validate() error {
	if c.Cluster == nil {
		return fmt.Errorf("mapreduce: nil cluster")
	}
	if c.Workers == 0 {
		c.Workers = c.Cluster.TotalGPUs()
	}
	if c.Workers < 1 || c.Workers > c.Cluster.TotalGPUs() {
		return fmt.Errorf("mapreduce: %d workers for %d GPUs", c.Workers, c.Cluster.TotalGPUs())
	}
	if c.Reducers == 0 {
		c.Reducers = c.Workers
	}
	if c.Reducers < 1 {
		return fmt.Errorf("mapreduce: %d reducers", c.Reducers)
	}
	if c.Mapper == nil {
		return fmt.Errorf("mapreduce: nil mapper")
	}
	if c.MakeReducer == nil {
		return fmt.Errorf("mapreduce: nil reducer factory")
	}
	if c.Partitioner == nil {
		c.Partitioner = RoundRobin{}
	}
	if c.KeyRange <= 0 {
		return fmt.Errorf("mapreduce: key range %d", c.KeyRange)
	}
	if c.ValueBytes <= 0 {
		return fmt.Errorf("mapreduce: value bytes %d", c.ValueBytes)
	}
	if len(c.Chunks) == 0 {
		return fmt.Errorf("mapreduce: no chunks")
	}
	if c.Assign == AssignAffinity && c.Home == nil {
		return fmt.Errorf("mapreduce: affinity assignment needs a Home function")
	}
	if c.GPUReduceSpeedup == 0 {
		c.GPUReduceSpeedup = 8
	}
	return nil
}
