package mapreduce

import (
	"fmt"

	"gvmr/internal/sim"
)

// message is one batch of key-value pairs in flight from a worker to a
// reducer. done markers piggyback on the message stream to signal that a
// worker has finished flushing.
type message[V any] struct {
	from int
	kvs  []KV[V]
	done bool
}

type stagedChunk[S any] struct {
	chunk  Chunk
	staged S
	err    error
}

// Run executes a job to completion on the cluster's environment and
// returns its statistics. The environment is run until idle; callers
// compose multi-job workflows by invoking Run repeatedly.
func Run[V, S any](cfg Config[V, S]) (*JobStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	env := cfg.Cluster.Env
	t0 := env.Now()
	startAt := t0
	if cfg.ChargeFixedOverhead {
		startAt += cfg.Cluster.Params.JobFixedOverhead
	}

	kvBytes := int64(4 + cfg.ValueBytes)
	workers := make([]*Worker, cfg.Workers)
	for i := range workers {
		workers[i] = &Worker{
			Index: i,
			Dev:   cfg.Cluster.Device(i),
			Node:  cfg.Cluster.NodeOf(i),
			tr:    cfg.Trace,
			lane:  fmt.Sprintf("gpu%d", i),
			work0: cfg.Cluster.Device(i).Stats().Work,
		}
	}
	reducers := make([]*reducerState[V], cfg.Reducers)
	for r := range reducers {
		host := r % cfg.Workers
		reducers[r] = &reducerState[V]{
			index: r,
			node:  cfg.Cluster.NodeOf(host),
			dev:   cfg.Cluster.Device(host),
			host:  host,
			impl:  cfg.MakeReducer(r),
			inbox: sim.NewChan[message[V]](env, fmt.Sprintf("reducer%d.inbox", r), 4096),
		}
	}

	var errs []error
	var totalWire, totalMsgs int64

	// Chunk assignment. Static round-robin is the paper's scheme; the
	// dynamic queue is the scheduling ablation.
	var static [][]Chunk
	var queue *sim.Chan[Chunk]
	switch cfg.Assign {
	case AssignStatic:
		static = make([][]Chunk, cfg.Workers)
		for i, c := range cfg.Chunks {
			w := i % cfg.Workers
			static[w] = append(static[w], c)
		}
	case AssignDynamic:
		queue = sim.NewChan[Chunk](env, "chunk.queue", len(cfg.Chunks)+1)
	case AssignAffinity:
		// Locality-aware: route each chunk to a worker on its home node
		// when one exists, cycling within the node; otherwise fall back
		// to global round-robin.
		static = make([][]Chunk, cfg.Workers)
		byNode := map[int][]int{}
		for i, w := range workers {
			byNode[w.Node.ID] = append(byNode[w.Node.ID], i)
		}
		nodeCursor := map[int]int{}
		fallback := 0
		for _, c := range cfg.Chunks {
			home := cfg.Home(c)
			if cands, ok := byNode[home]; ok {
				w := cands[nodeCursor[home]%len(cands)]
				nodeCursor[home]++
				static[w] = append(static[w], c)
				continue
			}
			static[fallback%cfg.Workers] = append(static[fallback%cfg.Workers], c)
			fallback++
		}
	default:
		return nil, fmt.Errorf("mapreduce: unknown assign mode %d", cfg.Assign)
	}

	workersLeft := cfg.Workers
	for _, w := range workers {
		w := w
		env.Go(fmt.Sprintf("worker%d", w.Index), func(p *sim.Proc) {
			p.WaitUntil(startAt)

			// Loader: stages chunks (disk + materialisation) one ahead of
			// the map loop — the streaming overlap of §3.
			staged := sim.NewChan[stagedChunk[S]](env, fmt.Sprintf("worker%d.staged", w.Index), 1)
			env.Go(fmt.Sprintf("worker%d.loader", w.Index), func(lp *sim.Proc) {
				lp.WaitUntil(startAt)
				next := func() (Chunk, bool) {
					if queue != nil {
						return queue.Recv(lp)
					}
					if len(static[w.Index]) == 0 {
						return nil, false
					}
					c := static[w.Index][0]
					static[w.Index] = static[w.Index][1:]
					return c, true
				}
				for {
					c, ok := next()
					if !ok {
						break
					}
					if cfg.FromDisk {
						ioStart := lp.Now()
						w.Node.ReadDisk(lp, c.Bytes())
						w.partIOTime += lp.Now() - ioStart
						w.span("partition+io", "disk:chunk", ioStart, lp.Now())
					}
					if cfg.Home != nil {
						if home := cfg.Home(c); home != w.Node.ID &&
							home >= 0 && home < len(cfg.Cluster.Nodes) {
							// In-situ hand-off: the producing node ships
							// the chunk over the interconnect.
							hoStart := lp.Now()
							cfg.Cluster.Transfer(lp, cfg.Cluster.Nodes[home], w.Node, c.Bytes())
							w.partIOTime += lp.Now() - hoStart
							w.span("net", "handoff:chunk", hoStart, lp.Now())
						}
					}
					s, err := cfg.Mapper.Stage(lp, w, c)
					staged.Send(lp, stagedChunk[S]{chunk: c, staged: s, err: err})
					if err != nil {
						break
					}
				}
				staged.Close(lp)
			})

			sendWG := sim.NewWaitGroup(env, fmt.Sprintf("worker%d.sends", w.Index))
			buffers := make([][]KV[V], cfg.Reducers)
			bufBytes := make([]int64, cfg.Reducers)

			flush := func(p *sim.Proc, r int) {
				batch := buffers[r]
				if len(batch) == 0 {
					return
				}
				buffers[r] = nil
				bufBytes[r] = 0
				// Partition cost: host CPU scans and bins the batch.
				partStart := p.Now()
				w.Node.CPUWork(p, float64(len(batch)), cfg.Cluster.Params.PartitionRate)
				w.partIOTime += p.Now() - partStart
				if cfg.Combine != nil {
					combStart := p.Now()
					w.Node.CPUWork(p, float64(len(batch)), cfg.Cluster.Params.PartitionRate)
					batch = cfg.Combine(batch)
					w.partIOTime += p.Now() - combStart
					w.span("partition+io", "combine", combStart, p.Now())
					if len(batch) == 0 {
						return
					}
				}

				dst := reducers[r]
				bytes := int64(len(batch)) * kvBytes
				totalWire += bytes
				totalMsgs++
				sendWG.Add(p, 1)
				env.Go(fmt.Sprintf("worker%d.send.r%d", w.Index, r), func(sp *sim.Proc) {
					sendStart := sp.Now()
					elapsed := cfg.Cluster.Transfer(sp, w.Node, dst.node, bytes)
					w.commBusy += elapsed
					w.span("net", fmt.Sprintf("send:r%d", r), sendStart, sp.Now())
					dst.inbox.Send(sp, message[V]{from: w.Index, kvs: batch})
					sendWG.Done(sp)
				})
			}

			// emitFailed is set on the first out-of-range key: the error is
			// recorded once, later emits from the same (buggy) mapper are
			// dropped instead of growing errs without bound, and the map
			// loop below treats the worker as failed so it drains its
			// remaining chunks and exits.
			emitFailed := false
			emit := func(kv KV[V]) {
				if emitFailed {
					return
				}
				if kv.Key < 0 {
					w.discarded++ // placeholder, dropped at partition
					return
				}
				if kv.Key >= cfg.KeyRange {
					errs = append(errs, fmt.Errorf(
						"mapreduce: worker %d emitted key %d outside range %d",
						w.Index, kv.Key, cfg.KeyRange))
					emitFailed = true
					return
				}
				r := w.Index % cfg.Reducers
				if !cfg.LocalReduce {
					r = cfg.Partitioner.Partition(kv.Key, cfg.Reducers)
				}
				buffers[r] = append(buffers[r], kv)
				bufBytes[r] += kvBytes
				w.emitted++
				// Streaming send: once a reducer's buffer crosses the
				// threshold it goes on the wire immediately, overlapping
				// the rest of the map.
				if cfg.FlushBytes > 0 && bufBytes[r] >= cfg.FlushBytes {
					flush(p, r)
				}
			}

			finish := func() {
				// Unhidden communication: waiting for in-flight sends.
				waitStart := p.Now()
				sendWG.Wait(p)
				w.partIOTime += p.Now() - waitStart
				for _, rs := range reducers {
					rs.inbox.Send(p, message[V]{from: w.Index, done: true})
				}
				workersLeft--
			}

			if err := cfg.Mapper.Init(p, w); err != nil {
				errs = append(errs, fmt.Errorf("mapreduce: worker %d init: %w", w.Index, err))
				for range allStaged(p, staged) {
				}
				finish()
				return
			}
			failed := false
			for sc := range allStaged(p, staged) {
				if failed {
					continue // drain so the loader can exit
				}
				if sc.err != nil {
					errs = append(errs, fmt.Errorf(
						"mapreduce: worker %d staging chunk %d: %w", w.Index, sc.chunk.ID(), sc.err))
					failed = true
					continue
				}
				if err := cfg.Mapper.Map(p, w, sc.chunk, sc.staged, emit); err != nil {
					errs = append(errs, fmt.Errorf(
						"mapreduce: worker %d mapping chunk %d: %w", w.Index, sc.chunk.ID(), err))
					failed = true
					continue
				}
				if emitFailed {
					failed = true
					continue
				}
				w.chunksDone++
				// Chunk boundaries flush everything: those sends overlap
				// the next chunk's staging and mapping.
				for r := range buffers {
					flush(p, r)
				}
			}
			// Flush remainders below threshold.
			for r := range buffers {
				flush(p, r)
			}
			finish()
		})
	}

	if queue != nil {
		env.Go("chunk.feeder", func(p *sim.Proc) {
			for _, c := range cfg.Chunks {
				queue.Send(p, c)
			}
			queue.Close(p)
		})
	}

	view := &configView{
		tr:         cfg.Trace,
		workers:    cfg.Workers,
		keyRange:   cfg.KeyRange,
		valueBytes: cfg.ValueBytes,
		sortOn:     cfg.SortOn,
		reduceOn:   cfg.ReduceOn,
		sortRate:   cfg.Cluster.Params.SortRate,
		reduceRate: cfg.Cluster.Params.CompositeRate,
		gpuSpeedup: cfg.GPUReduceSpeedup,
	}
	for _, rs := range reducers {
		rs := rs
		env.Go(fmt.Sprintf("reducer%d", rs.index), func(p *sim.Proc) {
			p.WaitUntil(startAt)
			rs.run(p, view)
		})
	}

	if err := env.Run(); err != nil {
		return nil, fmt.Errorf("mapreduce: simulation failed: %w", err)
	}
	if len(errs) > 0 {
		return nil, errs[0]
	}
	if workersLeft != 0 {
		return nil, fmt.Errorf("mapreduce: %d workers did not finish", workersLeft)
	}
	return assembleStats(cfg, env.Now()-t0, workers, reducers, totalWire, totalMsgs), nil
}

// allStaged adapts a staged-chunk channel to a range-able sequence.
func allStaged[S any](p *sim.Proc, ch *sim.Chan[stagedChunk[S]]) func(func(stagedChunk[S]) bool) {
	return func(yield func(stagedChunk[S]) bool) {
		for {
			sc, ok := ch.Recv(p)
			if !ok {
				return
			}
			if !yield(sc) {
				return
			}
		}
	}
}

func assembleStats[V, S any](cfg Config[V, S], makespan sim.Time,
	workers []*Worker, reducers []*reducerState[V], wire, msgs int64) *JobStats {
	js := &JobStats{
		Makespan:    makespan,
		BytesOnWire: wire,
		Messages:    msgs,
	}
	perWorker := make([]StageTimes, len(workers))
	for i, w := range workers {
		perWorker[i] = StageTimes{Map: w.mapTime, PartitionIO: w.partIOTime}
		work := w.Dev.Stats().Work
		work.Sub(w.work0)
		js.Workers = append(js.Workers, WorkerStats{
			Index:     w.Index,
			Chunks:    w.chunksDone,
			Emitted:   w.emitted,
			Discarded: w.discarded,
			CommBusy:  w.commBusy,
			Kernel:    work,
		})
		js.TotalEmitted += w.emitted
		js.TotalSamples += work.Samples
		js.TotalSamplesSkipped += work.SamplesSkipped
		js.TotalCells += work.Cells
		js.MapCompute += w.kernelTime
		js.MapComm += w.partIOTime + w.commBusy
	}
	for _, rs := range reducers {
		js.Reducers = append(js.Reducers, rs.stats)
		js.TotalReceived += rs.stats.Received
		perWorker[rs.host].Sort += rs.stats.Sort
		perWorker[rs.host].Reduce += rs.stats.Reduce
	}
	var sum StageTimes
	for i := range perWorker {
		js.Workers[i].Stage = perWorker[i]
		sum.add(perWorker[i])
	}
	js.MeanStage = sum.scale(len(workers))
	js.MapCompute /= sim.Time(len(workers))
	js.MapComm /= sim.Time(len(workers))
	return js
}
