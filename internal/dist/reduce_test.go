package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/composite"
	"gvmr/internal/core"
	"gvmr/internal/volume/dataset"
)

// startReduceWorkers spins n 1-GPU worker nodes with the full worker
// surface mounted (map, reduce push, collect). wrap, when non-nil, may
// interpose per endpoint — the fault-injection hook for killing a peer
// mid-exchange.
func startReduceWorkers(t *testing.T, n int, wrap func(i int, path string, h http.Handler) http.Handler) ([]string, []*Worker) {
	t.Helper()
	addrs := make([]string, n)
	workers := make([]*Worker, n)
	for i := 0; i < n; i++ {
		wk, err := NewWorker(WorkerConfig{Spec: cluster.AC(1)})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = wk
		mux := http.NewServeMux()
		for path, h := range map[string]http.Handler{
			MapPath:     wk,
			ReducePath:  http.HandlerFunc(wk.HandleReducePush),
			CollectPath: http.HandlerFunc(wk.HandleCollect),
		} {
			if wrap != nil {
				h = wrap(i, path, h)
			}
			mux.Handle(path, h)
		}
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return addrs, workers
}

// TestDistReduceMatchesDirect is the distributed-reduce contract: with
// the reduce phase on the workers, the frame digests equal to a
// single-process render over 2, 3 and 4 nodes, no fallback taken, and
// the breakdown marks the exchange topology.
func TestDistReduceMatchesDirect(t *testing.T) {
	job := testJob(t, dataset.Skull, 32, 64, 4, 30, true)
	want := directDigest(t, job)
	for _, workers := range []int{2, 3, 4} {
		addrs, nodes := startReduceWorkers(t, workers, nil)
		coord := newTestCoordinator(t, addrs, func(c *CoordinatorConfig) {
			c.DistReduce = true
		})
		res, bd, err := coord.RenderDetailed(context.Background(), job)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if got := res.Image.Digest(); got != want {
			t.Errorf("%d workers: digest %s != direct %s", workers, got, want)
		}
		if !bd.Reduced {
			t.Errorf("%d workers: breakdown not marked reduced: %+v", workers, bd)
		}
		if bd.Map <= 0 || bd.Wire <= 0 || bd.Reduce <= 0 || bd.Map+bd.Wire+bd.Reduce != res.Runtime {
			t.Errorf("%d workers: implausible breakdown %+v (runtime %v)", workers, bd, res.Runtime)
		}
		if bd.CollectBytes <= 0 {
			t.Errorf("%d workers: no collect bytes recorded: %+v", workers, bd)
		}
		st := coord.Stats()
		if st.ReduceJobs < 1 || st.ReduceFallbacks != 0 {
			t.Errorf("%d workers: exchange not recorded: %+v", workers, st)
		}
		collects := int64(0)
		for _, wk := range nodes {
			collects += wk.ExchangeStats().Collects
		}
		if collects != int64(workers) {
			t.Errorf("%d workers: %d collects served, want one per reducer", workers, collects)
		}
	}
}

// TestDistReduceCompressionToggle: the exchange produces identical bits
// with wire compression on and off (it only changes the encoding).
func TestDistReduceCompressionToggle(t *testing.T) {
	job := testJob(t, dataset.Supernova, 24, 48, 2, 75, false)
	want := directDigest(t, job)
	for _, noCompress := range []bool{false, true} {
		addrs, _ := startReduceWorkers(t, 2, nil)
		coord := newTestCoordinator(t, addrs, func(c *CoordinatorConfig) {
			c.DistReduce = true
			c.NoCompress = noCompress
		})
		res, _, err := coord.Render(context.Background(), job)
		if err != nil {
			t.Fatalf("noCompress=%t: %v", noCompress, err)
		}
		if got := res.Image.Digest(); got != want {
			t.Errorf("noCompress=%t: digest %s != direct %s", noCompress, got, want)
		}
	}
}

// TestDistReduceSingleWorkerFallsBack: one eligible node cannot host an
// exchange; the coordinator must use the classic path without counting a
// fallback (the exchange never started).
func TestDistReduceSingleWorkerFallsBack(t *testing.T) {
	job := testJob(t, dataset.Skull, 24, 48, 2, 10, false)
	want := directDigest(t, job)
	addrs, _ := startReduceWorkers(t, 1, nil)
	coord := newTestCoordinator(t, addrs, func(c *CoordinatorConfig) {
		c.DistReduce = true
	})
	res, bd, err := coord.RenderDetailed(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Image.Digest(); got != want {
		t.Errorf("digest %s != direct %s", got, want)
	}
	if bd.Reduced {
		t.Error("single-worker frame claims the exchange topology")
	}
	if st := coord.Stats(); st.ReduceJobs != 0 || st.ReduceFallbacks != 0 {
		t.Errorf("single-worker render touched exchange counters: %+v", st)
	}
}

// TestDistReducePeerDeathFallsBack kills one worker's /reduce endpoint:
// every push to it aborts mid-exchange. The mappers report the failed
// dependency, the coordinator abandons the exchange and the classic path
// must still produce the committed bits — with no node marked down (the
// mappers were healthy; 424 is the peer's fault).
func TestDistReducePeerDeathFallsBack(t *testing.T) {
	job := testJob(t, dataset.Skull, 32, 64, 4, 50, true)
	want := directDigest(t, job)
	addrs, _ := startReduceWorkers(t, 2, func(i int, path string, h http.Handler) http.Handler {
		if i != 1 || path != ReducePath {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			panic(http.ErrAbortHandler) // peer dies mid-exchange
		})
	})
	coord := newTestCoordinator(t, addrs, func(c *CoordinatorConfig) {
		c.DistReduce = true
	})
	res, bd, err := coord.RenderDetailed(context.Background(), job)
	if err != nil {
		t.Fatalf("render with dead reduce peer: %v", err)
	}
	if got := res.Image.Digest(); got != want {
		t.Errorf("digest after peer death %s != direct %s", got, want)
	}
	if bd.Reduced {
		t.Error("fallback frame claims the exchange topology")
	}
	st := coord.Stats()
	if st.ReduceFallbacks < 1 || st.ReduceJobs != 0 {
		t.Errorf("fallback not recorded: %+v", st)
	}
	if st.NodeDowns != 0 {
		t.Errorf("a healthy mapper was marked down over its peer's death: %+v", st)
	}
}

// TestDistReduceCollectDeathFallsBack kills the collect endpoint on one
// reducer after the maps (and all pushes) landed — the latest possible
// failure point. The classic fallback must still reproduce the bits.
func TestDistReduceCollectDeathFallsBack(t *testing.T) {
	job := testJob(t, dataset.Skull, 32, 64, 4, 80, false)
	want := directDigest(t, job)
	addrs, _ := startReduceWorkers(t, 2, func(i int, path string, h http.Handler) http.Handler {
		if i != 0 || path != CollectPath {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			panic(http.ErrAbortHandler)
		})
	})
	coord := newTestCoordinator(t, addrs, func(c *CoordinatorConfig) {
		c.DistReduce = true
	})
	res, _, err := coord.Render(context.Background(), job)
	if err != nil {
		t.Fatalf("render with dead collect endpoint: %v", err)
	}
	if got := res.Image.Digest(); got != want {
		t.Errorf("digest after collect death %s != direct %s", got, want)
	}
	if st := coord.Stats(); st.ReduceFallbacks < 1 {
		t.Errorf("fallback not recorded: %+v", st)
	}
}

// TestDistReduceOldWorkerFallsBack simulates a mixed fleet: one worker
// predates the reduce protocol and rejects any map request carrying a
// reduce plan (DisallowUnknownFields → 400). The coordinator must fall
// back and serve identical bits, without marking the old worker down —
// it is healthy, just older.
func TestDistReduceOldWorkerFallsBack(t *testing.T) {
	job := testJob(t, dataset.Skull, 32, 64, 4, 120, true)
	want := directDigest(t, job)
	addrs, _ := startReduceWorkers(t, 2, func(i int, path string, h http.Handler) http.Handler {
		if i != 0 || path != MapPath {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			body, _ := io.ReadAll(r.Body)
			if bytes.Contains(body, []byte(`"reduce"`)) {
				http.Error(w, `bad map request: json: unknown field "reduce"`, http.StatusBadRequest)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			h.ServeHTTP(w, r)
		})
	})
	coord := newTestCoordinator(t, addrs, func(c *CoordinatorConfig) {
		c.DistReduce = true
	})
	res, _, err := coord.Render(context.Background(), job)
	if err != nil {
		t.Fatalf("render against mixed fleet: %v", err)
	}
	if got := res.Image.Digest(); got != want {
		t.Errorf("mixed-fleet digest %s != direct %s", got, want)
	}
	st := coord.Stats()
	if st.ReduceFallbacks < 1 {
		t.Errorf("old worker did not trigger fallback: %+v", st)
	}
	if st.NodeDowns != 0 {
		t.Errorf("old worker marked down over a 400: %+v", st)
	}
}

// --- map-protocol hardening regressions ---

// TestParseSecondsHeaderRejectsNonFinite pins the NaN/Inf regression:
// the old `v < 0` guard compared false against NaN and accepted it, and
// one hostile worker's NaN would poison every aggregated virtual-time
// stat downstream.
func TestParseSecondsHeaderRejectsNonFinite(t *testing.T) {
	cases := []struct {
		value string
		want  float64
		ok    bool
	}{
		{"", 0, true},
		{"1.5", 1.5, true},
		{"0", 0, true},
		{"NaN", 0, false},
		{"nan", 0, false},
		{"+Inf", 0, false},
		{"Inf", 0, false},
		{"-Inf", 0, false},
		{"-0.001", 0, false},
		{"bogus", 0, false},
	}
	for _, tc := range cases {
		resp := &http.Response{Header: http.Header{}}
		if tc.value != "" {
			resp.Header.Set(HeaderMapSeconds, tc.value)
		}
		v, err := parseSecondsHeader(resp, HeaderMapSeconds)
		if tc.ok && (err != nil || v != tc.want) {
			t.Errorf("%q: got %v, %v; want %v", tc.value, v, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("%q: accepted (got %v)", tc.value, v)
		}
	}
}

// syntheticMapResponse builds the http.Response + payload pair a worker
// would serve for the given stripes, with a correct digest.
func syntheticMapResponse(stripes []core.BrickStripe, mut func(h http.Header)) (*http.Response, []byte) {
	payload := EncodeStripes(stripes)
	h := http.Header{}
	h.Set(HeaderStripeDigest, PayloadDigest(payload))
	h.Set(HeaderMapSeconds, "0.25")
	if mut != nil {
		mut(h)
	}
	return &http.Response{Header: h}, payload
}

// TestVerifyResponseStripeOrder pins the canonical-order regression: the
// wire format documents ascending brick IDs and the compositor's
// depth-tie ordering silently depends on it, but verifyResponse never
// checked — an out-of-order (or duplicated) response must be rejected as
// corrupt, not composited into wrong bits.
func TestVerifyResponseStripeOrder(t *testing.T) {
	job := testJob(t, dataset.Skull, 24, 48, 2, 0, false)
	coord := newTestCoordinator(t, []string{"http://unused:1"}, nil)
	frag := composite.Fragment{Key: 1, A: 0.5, Depth: 1}

	ordered := []core.BrickStripe{{Brick: 0, Frags: []composite.Fragment{frag}}, {Brick: 2}}
	resp, payload := syntheticMapResponse(ordered, nil)
	if _, err := coord.verifyResponse(resp, payload, job, []int{0, 2}, "w"); err != nil {
		t.Fatalf("canonical response rejected: %v", err)
	}

	reversed := []core.BrickStripe{{Brick: 2}, {Brick: 0, Frags: []composite.Fragment{frag}}}
	resp, payload = syntheticMapResponse(reversed, nil)
	if _, err := coord.verifyResponse(resp, payload, job, []int{0, 2}, "w"); err == nil {
		t.Fatal("out-of-order stripes accepted")
	} else if !strings.Contains(err.Error(), "order") {
		t.Fatalf("out-of-order stripes rejected for the wrong reason: %v", err)
	}

	duplicated := []core.BrickStripe{{Brick: 0}, {Brick: 0, Frags: []composite.Fragment{frag}}}
	resp, payload = syntheticMapResponse(duplicated, nil)
	if _, err := coord.verifyResponse(resp, payload, job, []int{0}, "w"); err == nil {
		t.Fatal("duplicated stripe accepted")
	}
}

// TestVerifyResponseRejectsNonFiniteMapSeconds drives the NaN guard
// through the full verification path a real response takes.
func TestVerifyResponseRejectsNonFiniteMapSeconds(t *testing.T) {
	job := testJob(t, dataset.Skull, 24, 48, 2, 0, false)
	coord := newTestCoordinator(t, []string{"http://unused:1"}, nil)
	for _, bad := range []string{"NaN", "+Inf", "-Inf"} {
		resp, payload := syntheticMapResponse([]core.BrickStripe{{Brick: 0}}, func(h http.Header) {
			h.Set(HeaderMapSeconds, bad)
		})
		if _, err := coord.verifyResponse(resp, payload, job, []int{0}, "w"); err == nil {
			t.Errorf("map seconds %q accepted", bad)
		}
	}
}

// TestWorkerMapStatusCodes pins the error-classification contract of
// /map: deterministic request problems are 400 (the node is healthy and
// must not be marked down), peer push failures are 424, and only genuine
// node-side failures — staging, planning, the map computation — are 500.
func TestWorkerMapStatusCodes(t *testing.T) {
	spec := cluster.AC(1)
	job := testJob(t, dataset.Skull, 24, 48, 2, 0, false)
	opt, err := job.Options()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := core.PlanGrid(spec, opt)
	if err != nil {
		t.Fatal(err)
	}

	deadPeer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "peer is sick", http.StatusInternalServerError)
	}))
	t.Cleanup(deadPeer.Close)
	keyRange := int32(job.Width) * int32(job.Height)

	cases := []struct {
		name   string
		body   string
		sick   bool // substitute a failing mapBricks
		status int
	}{
		{name: "garbage json", body: "{", status: http.StatusBadRequest},
		{name: "unknown field", body: `{"job":{},"bricks":[0],"grid_counts":[1,1,1],"nope":1}`, status: http.StatusBadRequest},
		{name: "invalid job", body: mustJSON(t, MapRequest{Bricks: []int{0}}), status: http.StatusBadRequest},
		{name: "empty batch", body: mustJSON(t, MapRequest{Job: job, GridCounts: grid.Counts}), status: http.StatusBadRequest},
		{name: "brick out of range", body: mustJSON(t, MapRequest{Job: job, Bricks: []int{99}, GridCounts: grid.Counts}), status: http.StatusBadRequest},
		{name: "duplicate brick", body: mustJSON(t, MapRequest{Job: job, Bricks: []int{0, 0}, GridCounts: grid.Counts}), status: http.StatusBadRequest},
		{name: "bad reduce plan", body: mustJSON(t, MapRequest{Job: job, Bricks: []int{0}, GridCounts: grid.Counts,
			Reduce: &ReducePlan{Exchange: "", Self: -1, Reducers: []ReduceTarget{{Addr: "x", Hi: 1}}}}), status: http.StatusBadRequest},
		{name: "grid mismatch", body: mustJSON(t, MapRequest{Job: job, Bricks: []int{0}, GridCounts: [3]int{7, 7, 7}}), status: http.StatusInternalServerError},
		{name: "map failure", body: mustJSON(t, MapRequest{Job: job, Bricks: []int{0}, GridCounts: grid.Counts}), sick: true, status: http.StatusInternalServerError},
		{name: "push failure", body: mustJSON(t, MapRequest{Job: job, Bricks: []int{0}, GridCounts: grid.Counts,
			Reduce: &ReducePlan{Exchange: "ex1", Self: -1, Reducers: []ReduceTarget{{Addr: deadPeer.URL, Lo: 0, Hi: keyRange}}}}), status: http.StatusFailedDependency},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wk, err := NewWorker(WorkerConfig{Spec: spec})
			if err != nil {
				t.Fatal(err)
			}
			if tc.sick {
				wk.mapBricks = func(cluster.Spec, core.Options, []int, int) (*core.MapResult, error) {
					return nil, errors.New("injected device failure")
				}
			}
			rec := httptest.NewRecorder()
			wk.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, MapPath, strings.NewReader(tc.body)))
			if rec.Code != tc.status {
				t.Errorf("status %d, want %d (%s)", rec.Code, tc.status, bytes.TrimSpace(rec.Body.Bytes()))
			}
		})
	}
}

func mustJSON(t *testing.T, req MapRequest) string {
	t.Helper()
	body, err := encodeMapRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestCoordinatorDoesNotMarkDownOn4xx: a node answering 400 or 424 is
// alive and healthy — backing it off would degrade placement for every
// following job. Only 5xx marks it down.
func TestCoordinatorDoesNotMarkDownOn4xx(t *testing.T) {
	for _, tc := range []struct {
		status    int
		nodeDowns int64
	}{
		{http.StatusBadRequest, 0},
		{http.StatusFailedDependency, 0},
		{http.StatusTooManyRequests, 0},
		{http.StatusInternalServerError, 1},
	} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "nope", tc.status)
		}))
		coord := newTestCoordinator(t, []string{srv.URL}, nil)
		_, _, err := coord.post(context.Background(), time.Second, srv.URL, MapPath, nil, "application/json", "")
		if err == nil {
			t.Fatalf("status %d produced no error", tc.status)
		}
		if got := coord.Stats().NodeDowns; got != tc.nodeDowns {
			t.Errorf("status %d: %d node-downs, want %d", tc.status, got, tc.nodeDowns)
		}
		srv.Close()
	}
}

// --- exchange-table unit tests ---

// reduceWorker builds a bare worker for exchange handler tests.
func reduceWorker(t *testing.T, mut func(*WorkerConfig)) *Worker {
	t.Helper()
	cfg := WorkerConfig{Spec: cluster.AC(1)}
	if mut != nil {
		mut(&cfg)
	}
	wk, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return wk
}

// pushReq builds a /reduce request for stripes with a correct digest.
func pushReq(exchange string, lo, hi int32, stripes []core.BrickStripe) *http.Request {
	payload := EncodeStripes(stripes)
	u := fmt.Sprintf("%s?ex=%s&lo=%d&hi=%d", ReducePath, url.QueryEscape(exchange), lo, hi)
	r := httptest.NewRequest(http.MethodPost, u, bytes.NewReader(payload))
	r.Header.Set(HeaderStripeDigest, PayloadDigest(payload))
	return r
}

func TestReducePushRejects(t *testing.T) {
	wk := reduceWorker(t, nil)
	frag := composite.Fragment{Key: 5, A: 1}
	good := []core.BrickStripe{{Brick: 0, Frags: []composite.Fragment{frag}}}

	cases := []struct {
		name   string
		req    *http.Request
		status int
	}{
		{"inverted range", pushReq("e", 10, 5, nil), http.StatusBadRequest},
		{"missing exchange", pushReq("", 0, 10, nil), http.StatusBadRequest},
		{"key outside range", pushReq("e", 0, 4, good), http.StatusBadRequest},
		{"duplicate brick in payload", pushReq("e", 0, 10,
			[]core.BrickStripe{{Brick: 1}, {Brick: 1}}), http.StatusBadRequest},
	}
	digestless := pushReq("e", 0, 10, good)
	digestless.Header.Del(HeaderStripeDigest)
	cases = append(cases, struct {
		name   string
		req    *http.Request
		status int
	}{"missing digest", digestless, http.StatusBadRequest})
	corrupt := pushReq("e", 0, 10, good)
	corrupt.Header.Set(HeaderStripeDigest, PayloadDigest([]byte("x")))
	cases = append(cases, struct {
		name   string
		req    *http.Request
		status int
	}{"digest mismatch", corrupt, http.StatusBadRequest})

	for _, tc := range cases {
		rec := httptest.NewRecorder()
		wk.HandleReducePush(rec, tc.req)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, rec.Code, tc.status)
		}
	}
	st := wk.ExchangeStats()
	if st.PushRejects != int64(len(cases)) || st.Pushes != 0 {
		t.Errorf("rejects not counted: %+v", st)
	}

	rec := httptest.NewRecorder()
	wk.HandleReducePush(rec, pushReq("e", 0, 10, good))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("valid push rejected: %d %s", rec.Code, rec.Body.String())
	}
	if st := wk.ExchangeStats(); st.Pushes != 1 || st.Sessions != 1 {
		t.Errorf("push not counted: %+v", st)
	}
}

// TestReducePushRangeConflict: two pushes for one exchange must agree on
// the range — a mismatch is a planning bug, answered 409.
func TestReducePushRangeConflict(t *testing.T) {
	wk := reduceWorker(t, nil)
	rec := httptest.NewRecorder()
	wk.HandleReducePush(rec, pushReq("e", 0, 10, nil))
	if rec.Code != http.StatusNoContent {
		t.Fatal(rec.Code)
	}
	rec = httptest.NewRecorder()
	wk.HandleReducePush(rec, pushReq("e", 0, 20, nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("conflicting range answered %d, want 409", rec.Code)
	}
}

// TestReduceSessionCap: the table refuses new exchanges past the cap so
// a coordinator storm cannot pin unbounded fragment memory.
func TestReduceSessionCap(t *testing.T) {
	wk := reduceWorker(t, func(c *WorkerConfig) { c.MaxExchanges = 1 })
	rec := httptest.NewRecorder()
	wk.HandleReducePush(rec, pushReq("a", 0, 10, nil))
	if rec.Code != http.StatusNoContent {
		t.Fatal(rec.Code)
	}
	rec = httptest.NewRecorder()
	wk.HandleReducePush(rec, pushReq("b", 0, 10, nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-cap exchange answered %d, want 429", rec.Code)
	}
}

// TestReduceSessionTTLSweep: a session whose coordinator died must be
// swept after the TTL, freeing its fragments and its cap slot.
func TestReduceSessionTTLSweep(t *testing.T) {
	wk := reduceWorker(t, func(c *WorkerConfig) { c.ExchangeTTL = time.Minute })
	now := time.Unix(1000, 0)
	wk.ex.now = func() time.Time { return now }

	rec := httptest.NewRecorder()
	wk.HandleReducePush(rec, pushReq("orphan", 0, 10, nil))
	if rec.Code != http.StatusNoContent {
		t.Fatal(rec.Code)
	}
	if st := wk.ExchangeStats(); st.Sessions != 1 {
		t.Fatalf("session not live: %+v", st)
	}
	now = now.Add(2 * time.Minute)
	if st := wk.ExchangeStats(); st.Sessions != 0 || st.Expired != 1 {
		t.Errorf("orphaned session survived the TTL: %+v", st)
	}
}

// TestReduceDuplicateDeliveryFirstWriteWins: a duplicate delivery for a
// brick (a retried or hedged mapper) is dropped. Stripes are canonical
// per brick, so in production the duplicate carries identical bytes —
// the test uses different ones precisely to observe which delivery won.
func TestReduceDuplicateDeliveryFirstWriteWins(t *testing.T) {
	table := newExchangeTable(4, time.Minute)
	s, _, err := table.join("e", 0, 10, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	first := []composite.Fragment{{Key: 1, A: 0.5}}
	second := []composite.Fragment{{Key: 2, A: 0.9}}
	s.deliver([]core.BrickStripe{{Brick: 0, Frags: first}}, 0, 0, time.Unix(1, 0))
	s.deliver([]core.BrickStripe{{Brick: 0, Frags: second}}, 0, 0, time.Unix(2, 0))
	s.mu.Lock()
	got := s.bricks[0]
	s.mu.Unlock()
	if len(got) != 1 || got[0].Key != 1 {
		t.Errorf("second delivery overwrote the first: %+v", got)
	}
}

// collectReq builds a /reduce/collect request.
func collectReq(t *testing.T, job JobSpec, exchange string, lo, hi int32, numBricks int) *http.Request {
	t.Helper()
	body, err := json.Marshal(CollectRequest{
		Exchange: exchange, Lo: lo, Hi: hi, NumBricks: numBricks, Job: job,
	})
	if err != nil {
		t.Fatal(err)
	}
	return httptest.NewRequest(http.MethodPost, CollectPath, bytes.NewReader(body))
}

// TestCollectTimeoutIncomplete: a collect whose exchange never completes
// (a mapper died before pushing) must answer 504 when the request
// context expires, naming the progress — not hang.
func TestCollectTimeoutIncomplete(t *testing.T) {
	wk := reduceWorker(t, nil)
	job := testJob(t, dataset.Skull, 24, 48, 2, 0, false)
	keyRange := int32(job.Width) * int32(job.Height)

	rec := httptest.NewRecorder()
	wk.HandleReducePush(rec, pushReq("e", 0, keyRange, []core.BrickStripe{{Brick: 0}}))
	if rec.Code != http.StatusNoContent {
		t.Fatal(rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req := collectReq(t, job, "e", 0, keyRange, 2).WithContext(ctx)
	rec = httptest.NewRecorder()
	wk.HandleCollect(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("incomplete collect answered %d, want 504", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "1/2") {
		t.Errorf("timeout body does not name progress: %s", rec.Body.String())
	}
}

// TestCollectRejectsOverrun: a session holding bricks outside the
// declared grid is a protocol violation, answered 409 and torn down.
func TestCollectRejectsOverrun(t *testing.T) {
	wk := reduceWorker(t, nil)
	job := testJob(t, dataset.Skull, 24, 48, 2, 0, false)
	keyRange := int32(job.Width) * int32(job.Height)
	rec := httptest.NewRecorder()
	wk.HandleReducePush(rec, pushReq("e", 0, keyRange, []core.BrickStripe{{Brick: 7}}))
	if rec.Code != http.StatusNoContent {
		t.Fatal(rec.Code)
	}
	rec = httptest.NewRecorder()
	wk.HandleCollect(rec, collectReq(t, job, "e", 0, keyRange, 2))
	if rec.Code != http.StatusConflict {
		t.Fatalf("overrun collect answered %d, want 409", rec.Code)
	}
	if st := wk.ExchangeStats(); st.Sessions != 0 {
		t.Errorf("poisoned session survived: %+v", st)
	}
}

// TestCollectRejectsBadParameters: range and brick-count bounds.
func TestCollectRejectsBadParameters(t *testing.T) {
	wk := reduceWorker(t, nil)
	job := testJob(t, dataset.Skull, 24, 48, 2, 0, false)
	keyRange := int32(job.Width) * int32(job.Height)
	for name, req := range map[string]*http.Request{
		"range beyond image": collectReq(t, job, "e", 0, keyRange+1, 1),
		"inverted range":     collectReq(t, job, "e", 10, 5, 1),
		"zero bricks":        collectReq(t, job, "e", 0, keyRange, 0),
		"missing exchange":   collectReq(t, job, "", 0, keyRange, 1),
	} {
		rec := httptest.NewRecorder()
		wk.HandleCollect(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: answered %d, want 400", name, rec.Code)
		}
	}
}

// --- wire codec ---

// TestCompressedWireRoundTrip: the columnar payload is lossless to the
// bit, including non-finite float patterns and non-monotone keys.
func TestCompressedWireRoundTrip(t *testing.T) {
	nan := math.Float32frombits(0x7fc00001) // a specific quiet-NaN payload
	stripes := []core.BrickStripe{
		{Brick: 0, Frags: []composite.Fragment{
			{Key: 3, R: 0.25, G: 0.5, B: 0.125, A: 0.75, Depth: 1.5},
			{Key: 9, R: nan, G: float32(math.Inf(1)), B: float32(math.Inf(-1)), A: 0, Depth: 2.25},
			{Key: 7, R: -0.0, A: 1, Depth: 0.5}, // keys may go backwards; deltas are signed
		}},
		{Brick: 2},
		{Brick: 5, Frags: []composite.Fragment{{Key: 0, A: 1, Depth: 0.5}}},
	}
	payload := CompressStripes(stripes)
	back, err := DecompressStripes(payload, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !stripesBitEqual(stripes, back) {
		t.Fatal("columnar round trip changed fragment bits")
	}
}

// stripesBitEqual compares stripes fragment by fragment on raw float
// bits, so NaN payloads compare correctly.
func stripesBitEqual(a, b []core.BrickStripe) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Brick != b[i].Brick || len(a[i].Frags) != len(b[i].Frags) {
			return false
		}
		for j := range a[i].Frags {
			fa, fb := a[i].Frags[j], b[i].Frags[j]
			if fa.Key != fb.Key ||
				math.Float32bits(fa.R) != math.Float32bits(fb.R) ||
				math.Float32bits(fa.G) != math.Float32bits(fb.G) ||
				math.Float32bits(fa.B) != math.Float32bits(fb.B) ||
				math.Float32bits(fa.A) != math.Float32bits(fb.A) ||
				math.Float32bits(fa.Depth) != math.Float32bits(fb.Depth) {
				return false
			}
		}
	}
	return true
}

// TestDecodePayloadUnknownEncoding: an encoding neither side negotiated
// is an error, never silently misparsed.
func TestDecodePayloadUnknownEncoding(t *testing.T) {
	if _, err := DecodePayload("gzip", []byte{1, 2, 3}, 1<<20); err == nil {
		t.Fatal("unknown encoding accepted")
	}
}

// TestCompressionShrinksRealStripes runs a real map batch and asserts
// the columnar payload is materially smaller than the identity one —
// the wire win the cluster bench records (its guard demands ≥2x; here
// a softer floor keeps the unit test robust at tiny scale).
func TestCompressionShrinksRealStripes(t *testing.T) {
	job := testJob(t, dataset.Skull, 32, 64, 2, 30, true)
	opt, err := job.Options()
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.AC(1)
	grid, err := core.PlanGrid(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	bricks := make([]int, grid.NumBricks())
	for i := range bricks {
		bricks[i] = i
	}
	res, err := core.MapBricks(spec, opt, bricks, 0)
	if err != nil {
		t.Fatal(err)
	}
	identity := EncodeStripes(res.Stripes)
	compressed := CompressStripes(res.Stripes)
	if len(identity) == 0 {
		t.Skip("empty stripes at this view")
	}
	if len(compressed)*3 > len(identity)*2 {
		t.Errorf("columnar payload %d bytes vs identity %d: less than 1.5x", len(compressed), len(identity))
	}
	t.Logf("wire compression: %d -> %d bytes (%.2fx)",
		len(identity), len(compressed), float64(len(identity))/float64(len(compressed)))
	back, err := DecompressStripes(compressed, int64(len(identity))+1024)
	if err != nil {
		t.Fatal(err)
	}
	if !stripesBitEqual(res.Stripes, back) {
		t.Fatal("real stripes changed bits over the columnar wire")
	}
}

// TestAcceptsColumnar covers the negotiation parser.
func TestAcceptsColumnar(t *testing.T) {
	for header, want := range map[string]bool{
		"":                           false,
		"gzip, deflate":              false,
		EncodingColumnar:             true,
		"gzip, " + EncodingColumnar:  true,
		EncodingColumnar + ";q=1":    true,
		" " + EncodingColumnar + " ": true,
		"xgvmr-cf1":                  false,
	} {
		if got := acceptsColumnar(header); got != want {
			t.Errorf("acceptsColumnar(%q) = %t, want %t", header, got, want)
		}
	}
}
