package dist

import (
	"runtime"

	"gvmr/internal/cluster"
	"gvmr/internal/composite"
	"gvmr/internal/core"
	"gvmr/internal/img"
	"gvmr/internal/mapreduce"
	"gvmr/internal/schedule"
	"gvmr/internal/sim"
	"gvmr/internal/vec"
)

// compositeStripes folds the returned stripes into the final image — the
// coordinator-local reduce phase. Two strategies produce byte-identical
// images:
//
//   - direct-send: all fragments, in ascending-brick canonical order, are
//     partitioned into `reducers` shards with the configured partitioner
//     (per-pixel round robin by default, exactly like the in-process
//     engine), each shard counting-sorted by pixel key and composited;
//   - pairwise merge: per-brick partial images are merged two at a time
//     in log₂(bricks) rounds, binary-swap style, then folded once.
//
// Identity of the two: each brick emits at most one fragment per pixel,
// in deterministic emission order; a stable merge that prefers the
// lower-brick side on depth ties yields, per pixel, exactly the stable
// sort by depth of the brick-ordered concatenation — which is what
// CompositePixel computes on the direct path. The pairwise path is used
// when the fragment volume crosses the fallback threshold: it touches
// fragments in brick-sized runs instead of one giant per-shard buffer.
//
// The returned virtual time is the modeled coordinator reduce charge —
// partition scan, counting sort and per-fragment blend at the spec's
// calibrated rates, with sort+reduce parallel across the shards. It is
// computed from fragment counts alone, so it is identical for both
// strategies and independent of placement, faults, and the host machine.
func compositeStripes(stripes []core.BrickStripe, width, height int, bg vec.V4,
	part mapreduce.Partitioner, reducers int, spec cluster.Spec, mergeFallbackBytes int64) (*img.Image, sim.Time) {
	if part == nil {
		part = mapreduce.RoundRobin{}
	}
	if reducers < 1 {
		reducers = 1
	}
	// Pixels no fragment reaches keep the same background the in-process
	// reducers never touch.
	out := img.New(width, height, composite.Finalize(composite.Fragment{}.Color(), bg))

	var total int64
	for _, s := range stripes {
		total += int64(len(s.Frags))
	}
	merge := total*composite.FragmentBytes > mergeFallbackBytes && mergeFallbackBytes > 0 && len(stripes) > 1
	var shardCount []int64
	if total > 0 {
		if merge {
			// The merge path exists to avoid one giant per-shard buffer,
			// so only count shard widths (for the charge), never store.
			shardCount = make([]int64, reducers)
			for _, s := range stripes {
				for _, f := range s.Frags {
					shardCount[part.Partition(f.Key, reducers)]++
				}
			}
			mergeComposite(stripes, bg, out)
		} else {
			shards := make([][]mapreduce.KV[composite.Fragment], reducers)
			for _, s := range stripes {
				for _, f := range s.Frags {
					r := part.Partition(f.Key, reducers)
					shards[r] = append(shards[r], mapreduce.KV[composite.Fragment]{Key: f.Key, Val: f})
				}
			}
			shardCount = make([]int64, reducers)
			for r, shard := range shards {
				shardCount[r] = int64(len(shard))
			}
			directComposite(shards, width, height, bg, out)
		}
	}

	// Reduce charge: one partition scan over everything, then the widest
	// shard's sort and blend (shards run in parallel on the display
	// node, like the engine's co-located reducers). Identical for both
	// strategies — the fallback is a memory/locality choice, not a
	// different cost model.
	var widest int64
	for _, n := range shardCount {
		if n > widest {
			widest = n
		}
	}
	charge := sim.WorkTime(float64(total), spec.PartitionRate) +
		sim.WorkTime(float64(widest), spec.SortRate) +
		sim.WorkTime(float64(widest), spec.CompositeRate)
	return out, charge
}

// directComposite is the direct-send strategy: counting-sort each shard
// and composite. Shards hold disjoint pixel keys, so they fold
// concurrently.
func directComposite(shards [][]mapreduce.KV[composite.Fragment], width, height int, bg vec.V4,
	out *img.Image) {
	reducers := len(shards)
	keyRange := int32(width * height)
	workers := reducers
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	// Shard errors are impossible (pure computation); ignore the error
	// slot of the pool API.
	_, _ = schedule.Map(workers, reducers, func(r int) (struct{}, error) {
		if len(shards[r]) == 0 {
			return struct{}{}, nil
		}
		keys, groups := mapreduce.CountingSort(shards[r], keyRange)
		for i, k := range keys {
			out.SetKey(k, composite.CompositePixel(groups[i], bg))
		}
		return struct{}{}, nil
	})
}

// partialImage is one per-pixel fragment-list partial during pairwise
// merging; lists are depth-sorted with ties in ascending-brick order.
type partialImage map[int32][]composite.Fragment

// mergeComposite is the binary-swap-style strategy: leaves are per-brick
// partials (at most one fragment per pixel, trivially sorted), adjacent
// partials merge pairwise until one remains, then every pixel folds once.
func mergeComposite(stripes []core.BrickStripe, bg vec.V4, out *img.Image) {
	partials := make([]partialImage, 0, len(stripes))
	for _, s := range stripes {
		if len(s.Frags) == 0 {
			continue
		}
		p := make(partialImage, len(s.Frags))
		for _, f := range s.Frags {
			p[f.Key] = append(p[f.Key], f)
		}
		partials = append(partials, p)
	}
	for len(partials) > 1 {
		next := make([]partialImage, 0, (len(partials)+1)/2)
		for i := 0; i+1 < len(partials); i += 2 {
			next = append(next, mergePartials(partials[i], partials[i+1]))
		}
		if len(partials)%2 == 1 {
			next = append(next, partials[len(partials)-1])
		}
		partials = next
	}
	if len(partials) == 1 {
		for k, frags := range partials[0] {
			out.SetKey(k, composite.CompositeSorted(frags, bg))
		}
	}
}

// mergePartials merges b into a pixel by pixel. Both sides are sorted by
// depth; the merge is stable with ties taken from a (the lower-brick
// side), preserving the canonical order.
func mergePartials(a, b partialImage) partialImage {
	for k, fb := range b {
		fa, ok := a[k]
		if !ok {
			a[k] = fb
			continue
		}
		merged := make([]composite.Fragment, 0, len(fa)+len(fb))
		i, j := 0, 0
		for i < len(fa) && j < len(fb) {
			if fb[j].Depth < fa[i].Depth {
				merged = append(merged, fb[j])
				j++
			} else {
				merged = append(merged, fa[i])
				i++
			}
		}
		merged = append(merged, fa[i:]...)
		merged = append(merged, fb[j:]...)
		a[k] = merged
	}
	return a
}
