package dist

import (
	"runtime"
	"sort"

	"gvmr/internal/cluster"
	"gvmr/internal/composite"
	"gvmr/internal/core"
	"gvmr/internal/img"
	"gvmr/internal/mapreduce"
	"gvmr/internal/schedule"
	"gvmr/internal/sim"
	"gvmr/internal/vec"
)

// streamComposite is the coordinator-local reduce phase, fed stripes as
// batch responses arrive instead of barriering on the full set: the
// partition scan of an early batch overlaps the map phase of a slow one.
// Because fragments are bucketed per (shard, brick) and the fold walks
// bricks in ascending order, the final floats are independent of arrival
// order — the determinism the golden digests enforce.
//
// Two fold strategies produce byte-identical images:
//
//   - direct-send: each shard concatenates its buckets in ascending-brick
//     canonical order, counting-sorts by pixel key and composites — the
//     in-process engine's layout, shards folding in parallel;
//   - pairwise merge: per-brick partial images merge two at a time in
//     log₂(bricks) rounds, binary-swap style, then every pixel folds
//     once. Used when the fragment volume crosses the fallback threshold:
//     it touches fragments in brick-sized runs instead of materialising
//     one giant per-shard buffer.
//
// Identity of the two: each unit's per-pixel fragment list arrives in
// deterministic emission order; depth-sorting the leaf lists stably and
// merging with ties taken from the lower-unit side yields, per pixel,
// exactly the stable sort by depth of the unit-ordered concatenation —
// which is what CompositePixel computes on the direct path (DESIGN.md
// §12 runs the argument for non-convex units, where lists are longer
// than one).
type streamComposite struct {
	width, height      int
	bg                 vec.V4
	part               mapreduce.Partitioner
	reducers           int
	spec               cluster.Spec
	mergeFallbackBytes int64
	numBricks          int

	shards []map[int][]composite.Fragment // shard → brick → fragments, emission order
	total  int64
}

func newStreamComposite(width, height int, bg vec.V4, part mapreduce.Partitioner,
	reducers int, spec cluster.Spec, mergeFallbackBytes int64, numBricks int) *streamComposite {
	if part == nil {
		part = mapreduce.RoundRobin{}
	}
	if reducers < 1 {
		reducers = 1
	}
	sc := &streamComposite{
		width: width, height: height, bg: bg,
		part: part, reducers: reducers, spec: spec,
		mergeFallbackBytes: mergeFallbackBytes,
		numBricks:          numBricks,
		shards:             make([]map[int][]composite.Fragment, reducers),
	}
	for r := range sc.shards {
		sc.shards[r] = map[int][]composite.Fragment{}
	}
	return sc
}

// add partitions one brick's stripe into the shard buckets — the
// modeled partition scan, run as responses land.
func (sc *streamComposite) add(s core.BrickStripe) {
	for _, f := range s.Frags {
		r := sc.part.Partition(f.Key, sc.reducers)
		sc.shards[r][s.Brick] = append(sc.shards[r][s.Brick], f)
	}
	sc.total += int64(len(s.Frags))
}

// finish folds the accumulated shards into the final image and returns
// it with the modeled reduce charge: one partition scan over everything,
// then the widest shard's sort and blend (shards run in parallel on the
// display node, like the engine's co-located reducers). The charge is
// computed from fragment counts alone — identical for both strategies
// and independent of placement, faults, and the host machine.
func (sc *streamComposite) finish() (*img.Image, sim.Time) {
	// Pixels no fragment reaches keep the same background the in-process
	// reducers never touch.
	out := img.New(sc.width, sc.height, composite.Finalize(composite.Fragment{}.Color(), sc.bg))

	shardCount := make([]int64, sc.reducers)
	for r, m := range sc.shards {
		for _, frags := range m {
			shardCount[r] += int64(len(frags))
		}
	}
	if sc.total > 0 {
		merge := sc.total*composite.FragmentBytes > sc.mergeFallbackBytes &&
			sc.mergeFallbackBytes > 0 && sc.numBricks > 1
		if merge {
			sc.mergeFold(out)
		} else {
			sc.directFold(out)
		}
	}

	var widest int64
	for _, n := range shardCount {
		if n > widest {
			widest = n
		}
	}
	charge := sim.WorkTime(float64(sc.total), sc.spec.PartitionRate) +
		sim.WorkTime(float64(widest), sc.spec.SortRate) +
		sim.WorkTime(float64(widest), sc.spec.CompositeRate)
	return out, charge
}

// directFold is the direct-send strategy: each shard's buckets are
// concatenated ascending by brick (the canonical order), counting-sorted
// and composited. Shards hold disjoint pixel keys, so they fold
// concurrently.
func (sc *streamComposite) directFold(out *img.Image) {
	keyRange := int32(sc.width * sc.height)
	workers := sc.reducers
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	// Shard errors are impossible (pure computation); ignore the error
	// slot of the pool API.
	_, _ = schedule.Map(workers, sc.reducers, func(r int) (struct{}, error) {
		m := sc.shards[r]
		if len(m) == 0 {
			return struct{}{}, nil
		}
		ids := make([]int, 0, len(m))
		n := 0
		for id, frags := range m {
			ids = append(ids, id)
			n += len(frags)
		}
		sort.Ints(ids)
		shard := make([]mapreduce.KV[composite.Fragment], 0, n)
		for _, id := range ids {
			for _, f := range m[id] {
				shard = append(shard, mapreduce.KV[composite.Fragment]{Key: f.Key, Val: f})
			}
		}
		keys, groups := mapreduce.CountingSort(shard, keyRange)
		for i, k := range keys {
			out.SetKey(k, composite.CompositePixel(groups[i], sc.bg))
		}
		return struct{}{}, nil
	})
}

// partialImage is one per-pixel fragment-list partial during pairwise
// merging; lists are depth-sorted with ties in ascending-unit order.
type partialImage map[int32][]composite.Fragment

// mergeFold is the binary-swap-style strategy: leaves are per-unit
// partials rebuilt from the shard buckets, adjacent partials merge
// pairwise until one remains, then every pixel folds once. A convex
// unit contributes at most one fragment per pixel (trivially sorted);
// a non-convex unit's per-pixel list arrives in emission order —
// ascending brick, not depth — so each leaf list is depth-sorted first.
// The stable sort keeps emission order on ties, so the merged result is
// still exactly the stable depth sort of the unit-ascending
// concatenation, which is what directFold's CompositePixel computes.
func (sc *streamComposite) mergeFold(out *img.Image) {
	perBrick := map[int]partialImage{}
	for _, m := range sc.shards {
		for id, frags := range m {
			p, ok := perBrick[id]
			if !ok {
				p = make(partialImage, len(frags))
				perBrick[id] = p
			}
			for _, f := range frags {
				p[f.Key] = append(p[f.Key], f)
			}
		}
	}
	for _, p := range perBrick {
		for _, frags := range p {
			if len(frags) > 1 {
				composite.SortByDepth(frags)
			}
		}
	}
	ids := make([]int, 0, len(perBrick))
	for id := range perBrick {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	partials := make([]partialImage, 0, len(ids))
	for _, id := range ids {
		partials = append(partials, perBrick[id])
	}
	for len(partials) > 1 {
		next := make([]partialImage, 0, (len(partials)+1)/2)
		for i := 0; i+1 < len(partials); i += 2 {
			next = append(next, mergePartials(partials[i], partials[i+1]))
		}
		if len(partials)%2 == 1 {
			next = append(next, partials[len(partials)-1])
		}
		partials = next
	}
	if len(partials) == 1 {
		for k, frags := range partials[0] {
			out.SetKey(k, composite.CompositeSorted(frags, sc.bg))
		}
	}
}

// mergePartials merges b into a pixel by pixel. Both sides are sorted
// by depth; composite.MergeLists is stable with ties taken from a (the
// lower-unit side), preserving the canonical order.
func mergePartials(a, b partialImage) partialImage {
	for k, fb := range b {
		fa, ok := a[k]
		if !ok {
			a[k] = fb
			continue
		}
		a[k] = composite.MergeLists(fa, fb)
	}
	return a
}
