package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/composite"
	"gvmr/internal/core"
	"gvmr/internal/img"
	"gvmr/internal/mapreduce"
	"gvmr/internal/membership"
	"gvmr/internal/resilience"
	"gvmr/internal/sim"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
)

// ErrNoWorkers means no eligible (alive, non-draining) worker node
// exists right now. Callers with local render capacity may fall back to
// it — the bits are identical either way.
var ErrNoWorkers = errors.New("dist: no eligible worker nodes")

// ErrDeadline marks work abandoned because the request's end-to-end
// deadline expired (a worker's 504, or the job context's own deadline).
// It is a property of the request's budget, not of any node: nothing is
// marked down, nothing is retried (a retry cannot beat an already-spent
// deadline), and the server layer may answer with a brownout frame when
// the operator allowed degraded serving.
var ErrDeadline = errors.New("dist: end-to-end deadline exceeded")

// ErrRetryBudget marks a batch failed fast because the coordinator's
// retry budget is exhausted: the fleet is sick enough that piling on
// more retries would amplify the outage instead of dodging it.
var ErrRetryBudget = errors.New("dist: retry budget exhausted")

// CoordinatorConfig sizes a Coordinator.
type CoordinatorConfig struct {
	// Nodes are static worker addresses ("host:port" or full URLs),
	// seeded into the membership registry as permanent members.
	Nodes []string
	// Registry, when non-nil, is the authoritative membership source:
	// workers join, drain and expire there, and every placement decision
	// consults its current snapshot. Nil builds a private static
	// registry from Nodes.
	Registry *membership.Registry
	// Client is the HTTP client for map requests. The default carries no
	// overall timeout — per-attempt context deadlines (AttemptTimeout)
	// bound each exchange instead, so one hung worker stalls a batch for
	// one attempt budget, not a blanket client timeout.
	Client *http.Client
	// MaxAttempts bounds how many nodes one brick batch may be tried on
	// before the job fails (default 3 — a batch never retries the node
	// that failed it).
	MaxAttempts int
	// AttemptTimeout bounds one map exchange (default 30s). When the job
	// context carries a sooner deadline, the remaining attempts share
	// its remaining budget instead, so retry/hedge always gets its turn
	// inside the job budget. <0 disables the per-attempt bound.
	AttemptTimeout time.Duration
	// HedgeAfter launches a duplicate request to another healthy node
	// when a batch has produced no response for this long; the first
	// response wins and the loser is cancelled (default 0 = off).
	// Responses are bit-identical by construction, so hedging can never
	// change the image.
	HedgeAfter time.Duration
	// Breaker configures the per-worker circuit breakers that gate
	// placement eligibility (closed→open→half-open on a sliding
	// error-rate window; see resilience.BreakerConfig for the defaults).
	// Breakers are a fast-path hint only — membership state (lease
	// expiry, drain) is the authority on who is placeable at all.
	Breaker resilience.BreakerConfig
	// RetryBudget caps cluster-wide retry and hedge amplification: every
	// extra attempt costs a token and only successes mint new ones, so a
	// sick fleet fast-fails instead of melting itself down.
	RetryBudget resilience.BudgetConfig
	// Metrics, when non-nil, receives the resilience events (breaker
	// opens, probes, budget exhaustion, deadline aborts) — the server
	// shares one instance across its admission gate and this
	// coordinator. Nil builds a private one (see Resilience).
	Metrics *resilience.Metrics
	// Reducers is the number of local composite shards (default: the
	// eligible node count at render time); Partitioner routes pixels to
	// shards (default: the paper's per-pixel round robin). Neither
	// changes the image.
	Reducers    int
	Partitioner mapreduce.Partitioner
	// MergeFallbackBytes switches local compositing to the pairwise
	// (binary-swap-style) merge when the returned fragment volume
	// exceeds it (default 8 MiB; <0 disables the fallback).
	MergeFallbackBytes int64
	// Replicas is the virtual-node count per worker on the placement
	// ring (default 64).
	Replicas int
	// MaxResponseBytes bounds one batch response (default 1 GiB).
	MaxResponseBytes int64
	// DistReduce pushes the reduce phase onto the worker fleet: mappers
	// exchange pixel ranges peer-to-peer and the coordinator collects
	// near-final range images instead of every raw fragment. Requires at
	// least two eligible workers; any exchange failure (a peer dying
	// mid-exchange, an old worker that predates the protocol) falls back
	// to the classic coordinator-local composite on a fresh membership
	// view — bits never change, only topology (DESIGN.md §11).
	DistReduce bool
	// NoCompress disables negotiated stripe compression on every hop
	// (map responses, exchange pushes, collects). Compression is
	// otherwise on: workers that don't advertise it simply reply
	// identity, so mixed fleets interoperate.
	NoCompress bool
	// Spec, when non-nil, is the hardware description used for grid
	// planning and the coordinator-side reduce/wire rates — set it when
	// the workers run a non-AC spec (the grid-counts cross-check turns
	// any remaining disagreement into a loud error). Nil uses the
	// calibrated AC cluster sized to each job's GPU count.
	Spec *cluster.Spec
}

// CoordinatorStats counts distributed-layer events; the /stats endpoint
// and the fault-injection tests read them.
type CoordinatorStats struct {
	Jobs      int64 `json:"jobs"`
	Batches   int64 `json:"batches"` // map batches sent (includes retries and hedges)
	Retries   int64 `json:"retries"` // batches re-placed after a failure
	Hedges    int64 `json:"hedges"`  // duplicate requests launched on stragglers
	HedgeWins int64 `json:"hedge_wins"`
	Corrupt   int64 `json:"corrupt"`    // responses failing the digest/shape check
	NodeDowns int64 `json:"node_downs"` // health transitions into backoff
	// ReduceJobs counts frames completed over the distributed-reduce
	// exchange; ReduceFallbacks counts exchanges abandoned for the
	// classic coordinator-local path (peer death, old workers, timeouts).
	ReduceJobs      int64 `json:"reduce_jobs"`
	ReduceFallbacks int64 `json:"reduce_fallbacks"`
}

// Coordinator shards render jobs across remote gvmrd workers and
// composites the results locally. Worker membership is dynamic: every
// placement decision (initial, retry re-placement, hedge) consults the
// registry's current snapshot, so joins take effect on the next
// placement and a drained node receives zero new placements after its
// drain is acknowledged. Safe for concurrent use.
type Coordinator struct {
	cfg    CoordinatorConfig
	reg    *membership.Registry
	budget *resilience.RetryBudget

	mu sync.Mutex
	// breakers are the per-node circuit breakers, keyed by normalized
	// address. They survive membership churn, so a node that rejoins
	// after a crash still starts from its recent failure history.
	breakers map[string]*resilience.Breaker
	// ring cache, keyed by the registry snapshot version: membership
	// changes rebuild it (bounded-load cap is recomputed per render),
	// heartbeats don't.
	ringVer   uint64
	ringAddrs []string
	ringCache *ring

	jobs, batches, retries, hedges, hedgeWins, corrupt, nodeDowns atomic.Int64
	reduceJobs, reduceFallbacks                                   atomic.Int64
}

// NewCoordinator builds a coordinator over the given worker membership:
// a Registry (dynamic), static Nodes, or both (static seeds + joins).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Registry == nil && len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("dist: no worker nodes or membership registry")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = membership.New(membership.Config{})
	}
	if len(cfg.Nodes) > 0 {
		if err := reg.AddStatic(cfg.Nodes); err != nil {
			return nil, err
		}
	}
	if cfg.Client == nil {
		cfg.Client = newClient()
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = 30 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &resilience.Metrics{}
	}
	cfg.Breaker.Metrics = cfg.Metrics
	cfg.RetryBudget.Metrics = cfg.Metrics
	if cfg.Partitioner == nil {
		cfg.Partitioner = mapreduce.RoundRobin{}
	}
	if cfg.MergeFallbackBytes == 0 {
		cfg.MergeFallbackBytes = 8 << 20
	}
	if cfg.MaxResponseBytes == 0 {
		cfg.MaxResponseBytes = 1 << 30
	}
	return &Coordinator{
		cfg:      cfg,
		reg:      reg,
		budget:   resilience.NewRetryBudget(cfg.RetryBudget),
		breakers: map[string]*resilience.Breaker{},
	}, nil
}

// Registry exposes the coordinator's membership authority (the server
// mounts its control-plane endpoints and reports its stats).
func (c *Coordinator) Registry() *membership.Registry { return c.reg }

// Resilience exposes the coordinator's policy-event counters (shared
// with the server when CoordinatorConfig.Metrics was set). Never nil.
func (c *Coordinator) Resilience() *resilience.Metrics { return c.cfg.Metrics }

// Stats snapshots the event counters.
func (c *Coordinator) Stats() CoordinatorStats {
	return CoordinatorStats{
		Jobs:            c.jobs.Load(),
		Batches:         c.batches.Load(),
		Retries:         c.retries.Load(),
		Hedges:          c.hedges.Load(),
		HedgeWins:       c.hedgeWins.Load(),
		Corrupt:         c.corrupt.Load(),
		NodeDowns:       c.nodeDowns.Load(),
		ReduceJobs:      c.reduceJobs.Load(),
		ReduceFallbacks: c.reduceFallbacks.Load(),
	}
}

// Nodes returns the current registered member count (any state).
func (c *Coordinator) Nodes() int { return len(c.reg.Snapshot().Members) }

// clusterView is one placement decision's consistent view of the fleet:
// the eligible members and the consistent-hash ring over exactly them.
type clusterView struct {
	addrs []string                       // eligible (alive) addrs, ring index order
	ring  *ring                          // hash ring over addrs
	nodes map[string]*resilience.Breaker // per-node breakers, shared across views
	// saturated marks nodes whose last heartbeat reported a full
	// admission queue (Load.Pressure ≥ 1): placement prefers anyone
	// else, falling back to them only when no unsaturated node exists —
	// a 429 there is near-certain and costs a retry for nothing.
	saturated map[string]bool
}

// placeable reports whether placement may prefer addr right now: its
// breaker admits traffic and its heartbeat does not report saturation.
func (v clusterView) placeable(a string) bool {
	return v.nodes[a].Placeable() && !v.saturated[a]
}

// view snapshots the registry and returns the placement view, rebuilding
// the cached ring only when membership actually changed. Breakers
// survive membership churn (they are keyed by address), so a node that
// rejoins after a crash still starts from its recent failure history.
func (c *Coordinator) view() (clusterView, error) {
	snap := c.reg.Snapshot()
	eligible := snap.Eligible()
	if len(eligible) == 0 {
		return clusterView{}, ErrNoWorkers
	}
	saturated := map[string]bool{}
	for _, m := range snap.Members {
		if m.State == membership.StateAlive && m.Load.Pressure >= 1 {
			saturated[m.Addr] = true
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ringCache == nil || c.ringVer != snap.Version {
		c.ringCache = newRing(eligible, c.cfg.Replicas)
		c.ringAddrs = eligible
		c.ringVer = snap.Version
	}
	v := clusterView{
		addrs:     c.ringAddrs,
		ring:      c.ringCache,
		nodes:     make(map[string]*resilience.Breaker, len(c.ringAddrs)),
		saturated: saturated,
	}
	for _, a := range c.ringAddrs {
		v.nodes[a] = c.breakerLocked(a)
	}
	return v, nil
}

// markFailure records one node-fault exchange: the breaker counts it
// (and may open) and the node_downs stat ticks. Caller-cancels, deadline
// aborts and 4xx responses never come here — they say nothing about the
// node's health.
func (c *Coordinator) markFailure(b *resilience.Breaker) {
	b.Failure()
	c.nodeDowns.Add(1)
}

// markSuccess records one healthy exchange: the breaker's window gets a
// success and the retry budget earns a credit.
func (c *Coordinator) markSuccess(b *resilience.Breaker) {
	b.Success()
	c.budget.Credit()
}

// place picks the node for one brick: the first placeable, non-excluded
// eligible node on the brick's ring walk; failing that, the first
// non-excluded one (better a likely-dead try than none); "" when every
// eligible node is excluded. Draining and evicted nodes are not in the
// view at all — membership is authoritative, breakers only a hint.
func (v clusterView) place(job JobSpec, brick int, excluded map[string]bool) string {
	seq := v.ring.sequence(brickKey(job, brick))
	firstAlive := ""
	for _, i := range seq {
		a := v.addrs[i]
		if excluded[a] {
			continue
		}
		if firstAlive == "" {
			firstAlive = a
		}
		if v.placeable(a) {
			return a
		}
	}
	return firstAlive
}

// placeBounded is the bounded-load variant of place used for initial
// placement: first placeable node on the brick's ring walk with fewer
// than cap bricks assigned; failing that, the first placeable node;
// failing that, the first node at all.
func (v clusterView) placeBounded(job JobSpec, brick int, loads map[string][]int, cap int) string {
	seq := v.ring.sequence(brickKey(job, brick))
	firstAlive, firstHealthy := "", ""
	for _, i := range seq {
		a := v.addrs[i]
		if firstAlive == "" {
			firstAlive = a
		}
		if !v.placeable(a) {
			continue
		}
		if firstHealthy == "" {
			firstHealthy = a
		}
		if len(loads[a]) < cap {
			return a
		}
	}
	if firstHealthy != "" {
		return firstHealthy
	}
	return firstAlive
}

// alternate picks a placeable hedge target not yet tried for this batch,
// from a fresh membership view: a node that drained or expired since the
// batch launched is never hedged onto.
func (c *Coordinator) alternate(job JobSpec, brick int, tried, excluded map[string]bool) string {
	v, err := c.view()
	if err != nil {
		return ""
	}
	seq := v.ring.sequence(brickKey(job, brick))
	for _, i := range seq {
		a := v.addrs[i]
		if tried[a] || excluded[a] {
			continue
		}
		if v.placeable(a) {
			return a
		}
	}
	return ""
}

// placeInitial runs the initial placement: consistent hash with bounded
// loads. Each brick walks its ring sequence and takes the first healthy
// node still under the per-node cap — affinity when the cluster is
// balanced, guaranteed balance always (no node maps more than
// ⌈bricks/healthy⌉ while others idle, so adding nodes always shrinks
// the map phase). The cap is recomputed from the eligible set on every
// render, which is how a join or drain rebalances the next frame. Brick
// lists come back sorted.
func (c *Coordinator) placeInitial(view clusterView, job JobSpec, numBricks int) (map[string][]int, error) {
	perNode := make(map[string][]int)
	healthyNow := 0
	for _, a := range view.addrs {
		if view.placeable(a) {
			healthyNow++
		}
	}
	if healthyNow == 0 {
		healthyNow = len(view.addrs) // every breaker open: place anyway
	}
	cap := (numBricks + healthyNow - 1) / healthyNow
	for id := 0; id < numBricks; id++ {
		a := view.placeBounded(job, id, perNode, cap)
		if a == "" {
			return nil, fmt.Errorf("dist: no live worker for brick %d", id)
		}
		perNode[a] = append(perNode[a], id)
	}
	for _, bricks := range perNode {
		sort.Ints(bricks)
	}
	return perNode, nil
}

// batchOutcome is one successfully mapped batch.
type batchOutcome struct {
	node       string
	stripes    []core.BrickStripe
	mapSeconds float64
	bytes      int64
}

// Breakdown decomposes a distributed frame's virtual makespan into its
// phases: the slowest node's map time (nodes run in parallel), the
// stripe transfers into the coordinator's NIC, and the local reduce.
// Wire+Reduce relative to the total is the coordinator overhead the
// cluster bench records.
type Breakdown struct {
	Map    sim.Time `json:"map_seconds"`
	Wire   sim.Time `json:"wire_seconds"`
	Reduce sim.Time `json:"reduce_seconds"`

	Batches   int64 `json:"batches"`
	WireBytes int64 `json:"wire_bytes"`
	Fragments int64 `json:"fragments"`

	// Reduced marks a frame that completed over the distributed-reduce
	// exchange; ExchangeBytes crossed the worker-to-worker wire and
	// CollectBytes the collect hop into the coordinator (both already
	// counted in WireBytes).
	Reduced       bool  `json:"reduced,omitempty"`
	ExchangeBytes int64 `json:"exchange_bytes,omitempty"`
	CollectBytes  int64 `json:"collect_bytes,omitempty"`
}

// Render runs one distributed frame: plan, place, fan out, verify,
// composite. The image is byte-identical to a single-process
// core.Render of the same options regardless of node count, placement,
// retries, hedging or membership churn (DESIGN.md §9/§10).
func (c *Coordinator) Render(ctx context.Context, job JobSpec) (*core.Result, sim.Time, error) {
	res, _, err := c.RenderDetailed(ctx, job)
	if err != nil {
		return nil, 0, err
	}
	return res, res.Runtime, nil
}

// RenderDetailed is Render plus the virtual-time breakdown.
func (c *Coordinator) RenderDetailed(ctx context.Context, job JobSpec) (*core.Result, Breakdown, error) {
	c.jobs.Add(1)
	opt, err := job.Options()
	if err != nil {
		return nil, Breakdown{}, err
	}
	planSpec := job.PlanSpec()
	if c.cfg.Spec != nil {
		planSpec = *c.cfg.Spec
	}
	grid, err := core.PlanGrid(planSpec, opt)
	if err != nil {
		return nil, Breakdown{}, err
	}
	// Map tasks are units, not bricks: one per brick in the convex
	// default (counts coincide), the partition's unit count otherwise.
	// Placement, completion counting and stripe validation all run in
	// unit IDs.
	numUnits, err := core.NumUnits(grid, opt.Partition)
	if err != nil {
		return nil, Breakdown{}, err
	}
	view, err := c.view()
	if err != nil {
		return nil, Breakdown{}, err
	}

	// Distributed reduce first when configured and the fleet can carry
	// it: mappers exchange pixel ranges peer-to-peer and the collects
	// return near-final range images. Any exchange failure — a peer
	// dying mid-exchange, a worker predating the protocol, a timeout —
	// abandons the exchange and falls through to the classic path on a
	// fresh membership view: same bits, different topology.
	if c.cfg.DistReduce && len(view.addrs) >= 2 {
		res, bd, rerr := c.renderReduce(ctx, job, opt, planSpec, grid, numUnits, view)
		if rerr == nil {
			c.reduceJobs.Add(1)
			return res, bd, nil
		}
		if ctx.Err() != nil {
			return nil, Breakdown{}, rerr
		}
		c.reduceFallbacks.Add(1)
		if view, err = c.view(); err != nil {
			return nil, Breakdown{}, err
		}
	}

	// Cancelling the job context tears down every in-flight exchange; the
	// buffered event channel lets stragglers deposit their terminal event
	// and exit without a reader.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	perNode, err := c.placeInitial(view, job, numUnits)
	if err != nil {
		return nil, Breakdown{}, err
	}

	type pendingBatch struct {
		bricks   []int
		target   string // node chosen at placement/re-placement time
		excluded map[string]bool
		attempts int
	}
	type event struct {
		out batchOutcome
		err error
	}
	// Every batch emits exactly one terminal event (a success, a hard
	// failure) or re-places itself into child batches, each of which does
	// the same; total events are bounded by bricks × attempts, so the
	// buffer guarantees no sender ever blocks.
	events := make(chan event, numUnits*(c.cfg.MaxAttempts+1)+4)
	var launch func(b pendingBatch)
	launch = func(b pendingBatch) {
		go func() {
			if b.target == "" || b.attempts >= c.cfg.MaxAttempts {
				events <- event{err: fmt.Errorf("dist: bricks %v undeliverable after %d attempts", b.bricks, b.attempts)}
				return
			}
			out, tried, err := c.sendBatch(ctx, job, grid.Counts, b.bricks, b.target, b.excluded, b.attempts)
			if err == nil {
				events <- event{out: out}
				return
			}
			if ctx.Err() != nil {
				events <- event{err: ctx.Err()}
				return
			}
			// A deadline abort is terminal: the budget is spent, and a
			// retry on another node cannot un-spend it. The server layer
			// decides whether to answer with a brownout frame.
			if errors.Is(err, ErrDeadline) {
				events <- event{err: err}
				return
			}
			// Every re-placement costs a retry-budget token; an empty
			// bucket means the fleet is sick fleet-wide, and the job
			// fast-fails instead of amplifying the storm.
			if !c.budget.TryTake() {
				events <- event{err: fmt.Errorf("dist: bricks %v: %w (last error: %v)", b.bricks, ErrRetryBudget, err)}
				return
			}
			c.retries.Add(1)
			excluded := map[string]bool{}
			for n := range b.excluded {
				excluded[n] = true
			}
			for n := range tried {
				excluded[n] = true
			}
			// Re-place the failed bricks over a FRESH membership view: a
			// worker that joined since the job started is a valid retry
			// target, one that drained or expired is not. The batch may
			// split if the ring walks diverge.
			rv, verr := c.view()
			if verr != nil {
				events <- event{err: fmt.Errorf("dist: bricks %v: %w after %v", b.bricks, verr, err)}
				return
			}
			regroup := make(map[string][]int)
			for _, id := range b.bricks {
				a := rv.place(job, id, excluded)
				if a == "" {
					events <- event{err: fmt.Errorf("dist: bricks %v exhausted every worker: %w", b.bricks, err)}
					return
				}
				regroup[a] = append(regroup[a], id)
			}
			for a, bricks := range regroup {
				launch(pendingBatch{bricks: bricks, target: a, excluded: excluded, attempts: b.attempts + 1})
			}
		}()
	}
	for a, bricks := range perNode {
		launch(pendingBatch{bricks: bricks, target: a})
	}

	// Stream responses straight into the composite accumulator: the
	// partition scan of an early batch overlaps slow workers instead of
	// barriering on the full stripe set. Bucketing is per brick and the
	// fold walks bricks ascending, so arrival order never reaches the
	// pixels. A brick already seen (a late duplicate from a raced retry)
	// is dropped — duplicates are bit-identical by canonicality anyway.
	reducers := c.cfg.Reducers
	if reducers == 0 {
		reducers = len(view.addrs)
	}
	acc := newStreamComposite(opt.Width, opt.Height, opt.Background,
		c.cfg.Partitioner, reducers, planSpec, c.cfg.MergeFallbackBytes, numUnits)
	seen := make(map[int]bool, numUnits)
	nodeVirtual := make(map[string]sim.Time)
	var wireBytes int64
	var batches int64
	for len(seen) < numUnits {
		select {
		case ev := <-events:
			if ev.err != nil {
				return nil, Breakdown{}, ev.err
			}
			for _, s := range ev.out.stripes {
				if !seen[s.Brick] {
					seen[s.Brick] = true
					acc.add(s)
				}
			}
			nodeVirtual[ev.out.node] += sim.Seconds(ev.out.mapSeconds)
			wireBytes += ev.out.bytes
			batches++
		case <-ctx.Done():
			return nil, Breakdown{}, ctx.Err()
		}
	}

	out, reduceCharge := acc.finish()

	// Virtual makespan: map phases run node-parallel (max), the stripe
	// transfers serialise into the coordinator's NIC, the local reduce
	// follows. Additive across phases — conservative, no modeled overlap.
	var mapVirtual sim.Time
	for _, v := range nodeVirtual {
		if v > mapVirtual {
			mapVirtual = v
		}
	}
	wireVirtual := sim.Time(batches)*(planSpec.NICLatency+planSpec.MsgOverhead) +
		sim.BytesTime(wireBytes, planSpec.NICBandwidth)
	runtime := mapVirtual + wireVirtual + reduceCharge

	frags := acc.total
	res := &core.Result{
		Image: out,
		Stats: &mapreduce.JobStats{
			Makespan:      runtime,
			BytesOnWire:   wireBytes,
			Messages:      batches,
			TotalEmitted:  frags,
			TotalReceived: frags,
		},
		Grid:    grid,
		GPUs:    job.GPUs,
		Runtime: runtime,
		Voxels:  opt.Source.Dims().Voxels(),
	}
	if runtime > 0 {
		res.FPS = 1 / runtime.Seconds()
		res.VPSMillions = float64(res.Voxels) / runtime.Seconds() / 1e6
	}
	bd := Breakdown{
		Map:       mapVirtual,
		Wire:      wireVirtual,
		Reduce:    reduceCharge,
		Batches:   batches,
		WireBytes: wireBytes,
		Fragments: frags,
	}
	return res, bd, nil
}

// exchangeID mints a session identifier unique enough that a stale
// exchange from a previous frame can never alias a live one.
func exchangeID() string {
	return fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64())
}

// renderReduce runs one frame with the reduce phase on the workers
// (DESIGN.md §11): every eligible worker owns a contiguous pixel-key
// range, mappers push each range to its owner over /reduce (their own
// range never touches the wire), and the coordinator collects one
// sparse composited range image per worker. No retries or hedging
// inside an exchange — a delivered push is not idempotent-free to
// re-place across nodes mid-flight, so any failure aborts the exchange
// and the caller falls back to the classic path, which has both.
func (c *Coordinator) renderReduce(ctx context.Context, job JobSpec, opt core.Options,
	planSpec cluster.Spec, grid *volume.Grid, numUnits int, view clusterView) (*core.Result, Breakdown, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	perNode, err := c.placeInitial(view, job, numUnits)
	if err != nil {
		return nil, Breakdown{}, err
	}
	n := len(view.addrs)
	pixels := int64(opt.Width) * int64(opt.Height)
	targets := make([]ReduceTarget, n)
	selfIdx := make(map[string]int, n)
	for i, a := range view.addrs {
		targets[i] = ReduceTarget{
			Addr: a,
			Lo:   int32(pixels * int64(i) / int64(n)),
			Hi:   int32(pixels * int64(i+1) / int64(n)),
		}
		selfIdx[a] = i
	}
	exID := exchangeID()
	compress := !c.cfg.NoCompress

	// Map fan-out: one batch per node, each carrying the identical
	// reducer plan. All maps must land before any collect can complete,
	// so failures surface here first.
	type mapRes struct {
		node       string
		mapSeconds float64
		frags      int64
		err        error
	}
	mapCh := make(chan mapRes, len(perNode))
	for a, bricks := range perNode {
		plan := &ReducePlan{Exchange: exID, Self: selfIdx[a], Compress: compress, Reducers: targets}
		go func(a string, bricks []int) {
			secs, frags, err := c.postMapReduce(ctx, job, grid.Counts, bricks, a, plan)
			mapCh <- mapRes{node: a, mapSeconds: secs, frags: frags, err: err}
		}(a, bricks)
	}
	var mapVirtual sim.Time
	var frags int64
	var mapErr error
	for range perNode {
		mr := <-mapCh
		if mr.err != nil {
			if mapErr == nil {
				mapErr = mr.err
				cancel() // tear down sibling maps; the exchange is lost
			}
			continue
		}
		if t := sim.Seconds(mr.mapSeconds); t > mapVirtual {
			mapVirtual = t
		}
		frags += mr.frags
	}
	if mapErr != nil {
		return nil, Breakdown{}, mapErr
	}

	// Collect fan-out: by now every range is fully delivered (maps
	// returned only after their pushes landed), so collects are one
	// round trip each.
	type collectRes struct {
		i   int
		out collectOutcome
		err error
	}
	colCh := make(chan collectRes, n)
	for i := range targets {
		go func(i int) {
			out, err := c.postCollect(ctx, job, exID, targets[i], numUnits, opt.Background, compress)
			colCh <- collectRes{i: i, out: out, err: err}
		}(i)
	}
	outs := make([]collectOutcome, n)
	var colErr error
	for range targets {
		cr := <-colCh
		if cr.err != nil {
			if colErr == nil {
				colErr = cr.err
				cancel()
			}
			continue
		}
		outs[cr.i] = cr.out
	}
	if colErr != nil {
		return nil, Breakdown{}, colErr
	}

	// Assemble: untouched pixels keep the same pre-filled background as
	// the classic path; every collected pixel carries its final color.
	out := img.New(opt.Width, opt.Height, composite.Finalize(composite.Fragment{}.Color(), opt.Background))
	var exchBytes, collectBytes, exchMsgs int64
	var exchangeWire, collectWire, reduceVirtual sim.Time
	for _, co := range outs {
		for _, f := range co.frags {
			out.SetKey(f.Key, vec.V4{X: f.R, Y: f.G, Z: f.B, W: f.A})
		}
		// Peer pushes into the reducers' NICs run reducer-parallel (max);
		// the collect responses serialise into the coordinator's NIC.
		w := sim.Time(co.netMsgs)*(planSpec.NICLatency+planSpec.MsgOverhead) +
			sim.BytesTime(co.netBytes, planSpec.NICBandwidth)
		if w > exchangeWire {
			exchangeWire = w
		}
		if t := sim.Seconds(co.reduceSeconds); t > reduceVirtual {
			reduceVirtual = t
		}
		collectWire += planSpec.NICLatency + planSpec.MsgOverhead +
			sim.BytesTime(co.bytes, planSpec.NICBandwidth)
		exchBytes += co.netBytes
		exchMsgs += co.netMsgs
		collectBytes += co.bytes
	}
	mapMsgs := sim.Time(len(perNode)) * (planSpec.NICLatency + planSpec.MsgOverhead)
	wireVirtual := mapMsgs + exchangeWire + collectWire
	wireBytes := exchBytes + collectBytes
	runtime := mapVirtual + wireVirtual + reduceVirtual

	batches := int64(len(perNode)) + int64(n)
	res := &core.Result{
		Image: out,
		Stats: &mapreduce.JobStats{
			Makespan:      runtime,
			BytesOnWire:   wireBytes,
			Messages:      batches,
			TotalEmitted:  frags,
			TotalReceived: frags,
		},
		Grid:    grid,
		GPUs:    job.GPUs,
		Runtime: runtime,
		Voxels:  opt.Source.Dims().Voxels(),
	}
	if runtime > 0 {
		res.FPS = 1 / runtime.Seconds()
		res.VPSMillions = float64(res.Voxels) / runtime.Seconds() / 1e6
	}
	bd := Breakdown{
		Map:           mapVirtual,
		Wire:          wireVirtual,
		Reduce:        reduceVirtual,
		Batches:       batches,
		WireBytes:     wireBytes,
		Fragments:     frags,
		Reduced:       true,
		ExchangeBytes: exchBytes,
		CollectBytes:  collectBytes,
	}
	return res, bd, nil
}

// postMapReduce posts one reduce-mode map batch: the worker pushes its
// stripes into the exchange and answers with an empty body and the
// HeaderReduced marker.
func (c *Coordinator) postMapReduce(ctx context.Context, job JobSpec, counts [3]int,
	bricks []int, addr string, plan *ReducePlan) (mapSeconds float64, frags int64, err error) {
	body, err := encodeMapRequest(MapRequest{Job: job, Bricks: bricks, GridCounts: counts, Reduce: plan})
	if err != nil {
		return 0, 0, err
	}
	c.batches.Add(1)
	b := c.breaker(addr)
	resp, _, err := c.post(ctx, c.attemptTimeout(ctx, 0), addr, MapPath, body, "application/json", "")
	if err != nil {
		return 0, 0, fmt.Errorf("dist: node %s: %w", addr, err)
	}
	if resp.Header.Get(HeaderReduced) != "1" {
		c.corrupt.Add(1)
		c.markFailure(b)
		return 0, 0, fmt.Errorf("dist: node %s: map response lacks %s (stripes went nowhere)", addr, HeaderReduced)
	}
	mapSeconds, err = parseSecondsHeader(resp, HeaderMapSeconds)
	if err != nil {
		c.corrupt.Add(1)
		c.markFailure(b)
		return 0, 0, fmt.Errorf("dist: node %s: %w", addr, err)
	}
	if h := resp.Header.Get(HeaderFragCount); h != "" {
		v, perr := strconv.ParseInt(h, 10, 64)
		if perr != nil || v < 0 {
			c.corrupt.Add(1)
			c.markFailure(b)
			return 0, 0, fmt.Errorf("dist: node %s: bad %s header %q", addr, HeaderFragCount, h)
		}
		frags = v
	}
	return mapSeconds, frags, nil
}

// collectOutcome is one reducer's composited range.
type collectOutcome struct {
	frags         []composite.Fragment // sparse final pixels (Key + RGBA)
	reduceSeconds float64
	netBytes      int64 // exchange bytes the reducer received from peers
	netMsgs       int64
	bytes         int64 // collect response bytes on the coordinator hop
}

// postCollect fetches and verifies one reducer's composited range.
func (c *Coordinator) postCollect(ctx context.Context, job JobSpec, exID string,
	tgt ReduceTarget, numBricks int, bg vec.V4, compress bool) (collectOutcome, error) {
	body, err := json.Marshal(CollectRequest{
		Exchange:   exID,
		Lo:         tgt.Lo,
		Hi:         tgt.Hi,
		NumBricks:  numBricks,
		Background: [4]float32{bg.X, bg.Y, bg.Z, bg.W},
		Job:        job,
	})
	if err != nil {
		return collectOutcome{}, err
	}
	accept := EncodingListV2
	if compress {
		accept = EncodingColumnar2 + ", " + EncodingColumnar
	}
	c.batches.Add(1)
	b := c.breaker(tgt.Addr)
	resp, payload, err := c.post(ctx, c.attemptTimeout(ctx, 0), tgt.Addr, CollectPath, body, "application/json", accept)
	if err != nil {
		return collectOutcome{}, fmt.Errorf("dist: node %s: collect: %w", tgt.Addr, err)
	}
	out, err := c.verifyCollect(resp, payload, tgt)
	if err != nil {
		c.corrupt.Add(1)
		c.markFailure(b)
		return collectOutcome{}, fmt.Errorf("dist: node %s: collect: %w", tgt.Addr, err)
	}
	return out, nil
}

// verifyCollect checks digest, decodes the sparse range image and bounds
// every pixel key to the reducer's range.
func (c *Coordinator) verifyCollect(resp *http.Response, payload []byte, tgt ReduceTarget) (collectOutcome, error) {
	wantDigest := resp.Header.Get(HeaderStripeDigest)
	if wantDigest == "" {
		return collectOutcome{}, fmt.Errorf("missing %s header", HeaderStripeDigest)
	}
	if got := PayloadDigest(payload); got != wantDigest {
		return collectOutcome{}, fmt.Errorf("collect digest mismatch: body %s != header %s (corrupt response)", got, wantDigest)
	}
	stripes, err := DecodePayload(resp.Header.Get("Content-Encoding"), payload, c.cfg.MaxResponseBytes)
	if err != nil {
		return collectOutcome{}, err
	}
	var frags []composite.Fragment
	for _, s := range stripes {
		frags = append(frags, s.Frags...)
	}
	for _, f := range frags {
		if f.Key < tgt.Lo || f.Key >= tgt.Hi {
			return collectOutcome{}, fmt.Errorf("collected pixel %d outside range [%d,%d)", f.Key, tgt.Lo, tgt.Hi)
		}
	}
	if h := resp.Header.Get(HeaderFragCount); h != "" {
		if v, perr := strconv.Atoi(h); perr != nil || v != len(frags) {
			return collectOutcome{}, fmt.Errorf("collect fragment count mismatch: body %d != header %q", len(frags), h)
		}
	}
	out := collectOutcome{frags: frags, bytes: int64(len(payload))}
	if out.reduceSeconds, err = parseSecondsHeader(resp, HeaderReduceSeconds); err != nil {
		return collectOutcome{}, err
	}
	for _, h := range []struct {
		name string
		dst  *int64
	}{{HeaderExchangeBytes, &out.netBytes}, {HeaderExchangeMsgs, &out.netMsgs}} {
		if s := resp.Header.Get(h.name); s != "" {
			v, perr := strconv.ParseInt(s, 10, 64)
			if perr != nil || v < 0 {
				return collectOutcome{}, fmt.Errorf("bad %s header %q", h.name, s)
			}
			*h.dst = v
		}
	}
	return out, nil
}

// attemptTimeout derives the per-attempt deadline for one batch
// exchange: the configured AttemptTimeout, shrunk so the remaining
// attempts share the job context's remaining budget when that is
// tighter. The parent context still bounds everything — the floor only
// prevents a degenerate zero-length attempt.
func (c *Coordinator) attemptTimeout(ctx context.Context, attempt int) time.Duration {
	d := c.cfg.AttemptTimeout
	if d < 0 {
		return 0
	}
	if dl, ok := ctx.Deadline(); ok {
		left := c.cfg.MaxAttempts - attempt
		if left < 1 {
			left = 1
		}
		if share := time.Until(dl) / time.Duration(left); share < d {
			d = share
		}
	}
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// sendBatch posts one map batch to target, hedging a straggler onto an
// alternate node when configured. It validates shape and digest of the
// winning response. On failure, tried names every node the batch was
// attempted on (primary and hedges) so re-placement can exclude them
// all — a batch never retries a node that already failed it.
func (c *Coordinator) sendBatch(ctx context.Context, job JobSpec, counts [3]int,
	bricks []int, target string, excluded map[string]bool, attempt int) (batchOutcome, map[string]bool, error) {
	type result struct {
		out batchOutcome
		err error
	}
	perAttempt := c.attemptTimeout(ctx, attempt)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resCh := make(chan result, len(c.reg.Snapshot().Members)+2)
	post := func(ctx context.Context, addr string) {
		out, err := c.postMap(ctx, perAttempt, job, counts, bricks, addr)
		resCh <- result{out: out, err: err}
	}
	c.batches.Add(1)
	tried := map[string]bool{target: true}
	go post(ctx, target)
	launched := 1
	var timer *time.Timer
	var timerC <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		timer = time.NewTimer(c.cfg.HedgeAfter)
		defer timer.Stop()
		timerC = timer.C
	}
	hedge := func() {
		timerC = nil
		alt := c.alternate(job, bricks[0], tried, excluded)
		if alt == "" {
			return
		}
		// A hedge is an extra attempt like any retry: it costs a budget
		// token, so a straggling fleet cannot double its own load. Shed
		// hedges (the budget counter ticks) rather than fail the batch —
		// the primary is still in flight.
		if !c.budget.TryTake() {
			return
		}
		tried[alt] = true
		c.hedges.Add(1)
		c.batches.Add(1)
		launched++
		// Hedges are speculative by definition: the worker's admission
		// gate sheds them first under pressure, so hedging never starves
		// interactive work fleet-wide.
		go post(resilience.WithPriority(ctx, resilience.Speculative), alt)
	}
	var firstErr error
	for {
		select {
		case a := <-resCh:
			if a.err == nil {
				if a.out.node != target {
					c.hedgeWins.Add(1)
				}
				return a.out, tried, nil
			}
			// A deadline abort dooms every sibling attempt too (they share
			// the budget): tear the batch down now instead of waiting for
			// the straggler to discover the same expiry.
			if errors.Is(a.err, ErrDeadline) {
				return batchOutcome{}, tried, a.err
			}
			if firstErr == nil {
				firstErr = a.err
			}
			launched--
			if launched == 0 {
				return batchOutcome{}, tried, firstErr
			}
			// Attempts remain in flight (e.g. a straggling primary whose
			// hedge just died): don't sit behind the straggler — re-arm
			// the hedge toward the next untried node.
			if timer != nil && timerC == nil {
				timer.Reset(c.cfg.HedgeAfter)
				timerC = timer.C
			}
		case <-timerC:
			hedge()
		case <-ctx.Done():
			return batchOutcome{}, tried, ctx.Err()
		}
	}
}

// breaker returns the circuit breaker for addr, creating it if needed (a
// response may arrive after the member already left the registry).
func (c *Coordinator) breaker(addr string) *resilience.Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breakerLocked(addr)
}

func (c *Coordinator) breakerLocked(addr string) *resilience.Breaker {
	b, ok := c.breakers[addr]
	if !ok {
		b = resilience.NewBreaker(c.cfg.Breaker)
		c.breakers[addr] = b
	}
	return b
}

// BreakerState reports addr's breaker position ("closed" when the node
// has never been exchanged with) — tests and /stats diagnostics.
func (c *Coordinator) BreakerState(addr string) resilience.BreakerState {
	return c.breaker(addr).State()
}

// post performs one HTTP exchange against a node, bounded by the
// per-attempt deadline, with the node health bookkeeping every dist hop
// shares: the node's breaker admits (or refuses) the exchange up front
// and every terminal path resolves it — Success, Failure, or Cancel
// when the outcome says nothing about the node. The job context's own
// deadline rides the request as HeaderDeadline (relative milliseconds,
// immune to clock skew) and the context's priority class as
// HeaderPriority, so the worker's admission gate and deadline checks see
// the same budget this coordinator does. Error bodies are drained
// before close so the keep-alive connection returns to the shared
// transport's pool instead of being torn down — under hedging the same
// worker sees many short exchanges, and re-dialing each one churns TCP
// state for nothing.
func (c *Coordinator) post(parent context.Context, perAttempt time.Duration,
	addr, path string, body []byte, contentType, accept string) (*http.Response, []byte, error) {
	b := c.breaker(addr)
	if !b.Admit() {
		// Not a node fault (no evidence was gathered): the batch re-places
		// elsewhere, bounded by MaxAttempts and the retry budget.
		return nil, nil, fmt.Errorf("dist: circuit breaker open for %s", addr)
	}
	ctx := parent
	if perAttempt > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, perAttempt)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+path, bytes.NewReader(body))
	if err != nil {
		b.Cancel()
		return nil, nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept-Encoding", accept)
	}
	if dl, ok := parent.Deadline(); ok {
		req.Header.Set(resilience.HeaderDeadline, resilience.EncodeDeadline(time.Until(dl)))
	}
	req.Header.Set(resilience.HeaderPriority, resilience.PriorityFrom(parent).String())
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		// Classify before blaming the node. A caller-side cancel (hedge
		// winner, job teardown) or the job's own expired deadline says
		// nothing about the node's health: marking it down would put a
		// healthy straggler into backoff on every hedge win and poison
		// its placement affinity. An expired *per-attempt* deadline while
		// the parent is live, by contrast, IS a node problem (it hung
		// past its budget) and does mark it down.
		switch {
		case parent.Err() != nil:
			b.Cancel()
			if errors.Is(parent.Err(), context.DeadlineExceeded) {
				c.cfg.Metrics.DeadlineAbort()
				return nil, nil, fmt.Errorf("%w: %v", ErrDeadline, err)
			}
		case errors.Is(err, context.Canceled):
			// The attempt's own context was cancelled without the parent
			// being done — teardown racing completion; still no evidence.
			b.Cancel()
		default:
			c.markFailure(b)
		}
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		drainBody(resp.Body)
		switch {
		case resp.StatusCode == http.StatusGatewayTimeout:
			// The worker aborted past the request's end-to-end deadline:
			// a property of the budget, not the node. No retry can help.
			b.Cancel()
			c.cfg.Metrics.DeadlineAbort()
			return nil, nil, fmt.Errorf("%w: node %s: %s", ErrDeadline, addr, bytes.TrimSpace(msg))
		case resp.StatusCode >= 500:
			// Only other 5xx marks the node down.
			c.markFailure(b)
		default:
			// 429 is transient backpressure (the node is alive and telling
			// us so), 400 is a deterministic request problem, and 424 is a
			// reduce push that a *peer* refused — none of those say this
			// node is unhealthy, and opening breakers on healthy nodes
			// would degrade placement for every following job. The
			// response itself is breaker-level evidence of life. The batch
			// still fails here and re-places onto another node (or the
			// exchange falls back), bounded by MaxAttempts.
			b.Success()
		}
		return nil, nil, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxResponseBytes+1))
	if err != nil {
		_ = resp.Body.Close()
		if parent.Err() == nil {
			c.markFailure(b)
		} else {
			b.Cancel()
		}
		return nil, nil, fmt.Errorf("reading response: %w", err)
	}
	_ = resp.Body.Close()
	if int64(len(payload)) > c.cfg.MaxResponseBytes {
		c.markFailure(b)
		return nil, nil, fmt.Errorf("response exceeds %d bytes", c.cfg.MaxResponseBytes)
	}
	// Transport-level success: the breaker window records it and the
	// retry budget earns a credit. Content verification failures after
	// this point add their own Failure — in half-open that re-opens the
	// breaker, which is exactly right for a node answering garbage.
	c.markSuccess(b)
	return resp, payload, nil
}

// postMap performs one HTTP map exchange with full response verification,
// bounded by the per-attempt deadline.
func (c *Coordinator) postMap(parent context.Context, perAttempt time.Duration, job JobSpec,
	counts [3]int, bricks []int, addr string) (batchOutcome, error) {
	body, err := encodeMapRequest(MapRequest{Job: job, Bricks: bricks, GridCounts: counts})
	if err != nil {
		return batchOutcome{}, err
	}
	// Offer both columnar generations: an upgraded worker prefers cf2
	// (explicit per-pixel counts), an old one ignores the unknown token
	// and answers cf1. NoCompress offers the identity v2 list layout
	// instead, which old workers likewise ignore, answering identity v1.
	accept := EncodingListV2
	if !c.cfg.NoCompress {
		accept = EncodingColumnar2 + ", " + EncodingColumnar
	}
	b := c.breaker(addr)
	resp, payload, err := c.post(parent, perAttempt, addr, MapPath, body, "application/json", accept)
	if err != nil {
		return batchOutcome{}, fmt.Errorf("dist: node %s: %w", addr, err)
	}
	out, err := c.verifyResponse(resp, payload, job, bricks, addr)
	if err != nil {
		c.corrupt.Add(1)
		c.markFailure(b)
		return batchOutcome{}, fmt.Errorf("dist: node %s: %w", addr, err)
	}
	return out, nil
}

// verifyResponse checks digest, brick coverage, canonical stripe order,
// fragment counts and per-fragment key bounds, then decodes the stripes.
func (c *Coordinator) verifyResponse(resp *http.Response, payload []byte,
	job JobSpec, bricks []int, addr string) (batchOutcome, error) {
	wantDigest := resp.Header.Get(HeaderStripeDigest)
	if wantDigest == "" {
		return batchOutcome{}, fmt.Errorf("missing %s header", HeaderStripeDigest)
	}
	if got := PayloadDigest(payload); got != wantDigest {
		return batchOutcome{}, fmt.Errorf("stripe digest mismatch: body %s != header %s (corrupt response)", got, wantDigest)
	}
	stripes, err := DecodePayload(resp.Header.Get("Content-Encoding"), payload, c.cfg.MaxResponseBytes)
	if err != nil {
		return batchOutcome{}, err
	}
	want := make(map[int]bool, len(bricks))
	for _, id := range bricks {
		want[id] = true
	}
	keyRange := int32(job.Width) * int32(job.Height)
	frags := 0
	prevBrick := -1
	for _, s := range stripes {
		if !want[s.Brick] {
			return batchOutcome{}, fmt.Errorf("stripe for unrequested brick %d", s.Brick)
		}
		// The wire format documents ascending brick IDs and the
		// compositor's depth-tie ordering silently depends on canonical
		// order — enforce it instead of trusting it (coverage alone
		// already rejects duplicates via the want set).
		if s.Brick <= prevBrick {
			return batchOutcome{}, fmt.Errorf(
				"stripe order violation: brick %d after brick %d (canonical order is ascending)", s.Brick, prevBrick)
		}
		prevBrick = s.Brick
		delete(want, s.Brick)
		frags += len(s.Frags)
		// Bound every pixel key now: compositing indexes shards, the
		// counting sort and the framebuffer by it, and a buggy or
		// version-skewed worker must surface as a retried corrupt
		// response, not a panic (the digest only covers transport).
		for _, f := range s.Frags {
			if f.Key < 0 || f.Key >= keyRange {
				return batchOutcome{}, fmt.Errorf(
					"brick %d fragment key %d outside image of %d pixels", s.Brick, f.Key, keyRange)
			}
		}
	}
	if len(want) > 0 {
		missing := make([]int, 0, len(want))
		for id := range want {
			missing = append(missing, id)
		}
		sort.Ints(missing)
		return batchOutcome{}, fmt.Errorf("response missing bricks %v", missing)
	}
	if h := resp.Header.Get(HeaderFragCount); h != "" {
		if n, err := strconv.Atoi(h); err != nil || n != frags {
			return batchOutcome{}, fmt.Errorf("fragment count mismatch: body %d != header %q", frags, h)
		}
	}
	mapSeconds, err := parseSecondsHeader(resp, HeaderMapSeconds)
	if err != nil {
		return batchOutcome{}, err
	}
	return batchOutcome{node: addr, stripes: stripes, mapSeconds: mapSeconds, bytes: int64(len(payload))}, nil
}

// parseSecondsHeader reads an optional virtual-seconds header. Values
// must be finite and non-negative: NaN compares false against every
// bound (the old `v < 0` guard silently accepted it) and a single NaN
// or +Inf from one hostile worker would poison every aggregated
// virtual-time stat and BENCH record downstream.
func parseSecondsHeader(resp *http.Response, name string) (float64, error) {
	h := resp.Header.Get(name)
	if h == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(h, 64)
	if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad %s header %q", name, h)
	}
	return v, nil
}
