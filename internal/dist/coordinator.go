package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/mapreduce"
	"gvmr/internal/sim"
)

// CoordinatorConfig sizes a Coordinator.
type CoordinatorConfig struct {
	// Nodes are the worker base addresses ("host:port" or full
	// "http://host:port" URLs).
	Nodes []string
	// Client is the HTTP client for map requests (default: a client with
	// a 2-minute overall timeout).
	Client *http.Client
	// MaxAttempts bounds how many nodes one brick batch may be tried on
	// before the job fails (default 3, always capped at the node count —
	// a batch never retries the node that failed it).
	MaxAttempts int
	// HedgeAfter launches a duplicate request to another healthy node
	// when a batch has produced no response for this long; the first
	// response wins and the loser is cancelled (default 0 = off).
	// Responses are bit-identical by construction, so hedging can never
	// change the image.
	HedgeAfter time.Duration
	// Backoff is the base per-node health backoff after a failure,
	// doubling per consecutive failure up to MaxBackoff (defaults 500ms
	// and 15s). A node in backoff is skipped at placement and retry time
	// unless no other node remains.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Reducers is the number of local composite shards (default: node
	// count); Partitioner routes pixels to shards (default: the paper's
	// per-pixel round robin). Neither changes the image.
	Reducers    int
	Partitioner mapreduce.Partitioner
	// MergeFallbackBytes switches local compositing to the pairwise
	// (binary-swap-style) merge when the returned fragment volume
	// exceeds it (default 8 MiB; <0 disables the fallback).
	MergeFallbackBytes int64
	// Replicas is the virtual-node count per worker on the placement
	// ring (default 64).
	Replicas int
	// MaxResponseBytes bounds one batch response (default 1 GiB).
	MaxResponseBytes int64
	// Spec, when non-nil, is the hardware description used for grid
	// planning and the coordinator-side reduce/wire rates — set it when
	// the workers run a non-AC spec (the grid-counts cross-check turns
	// any remaining disagreement into a loud error). Nil uses the
	// calibrated AC cluster sized to each job's GPU count.
	Spec *cluster.Spec
}

// CoordinatorStats counts distributed-layer events; the /stats endpoint
// and the fault-injection tests read them.
type CoordinatorStats struct {
	Jobs      int64 `json:"jobs"`
	Batches   int64 `json:"batches"` // map batches sent (includes retries and hedges)
	Retries   int64 `json:"retries"` // batches re-placed after a failure
	Hedges    int64 `json:"hedges"`  // duplicate requests launched on stragglers
	HedgeWins int64 `json:"hedge_wins"`
	Corrupt   int64 `json:"corrupt"`    // responses failing the digest/shape check
	NodeDowns int64 `json:"node_downs"` // health transitions into backoff
}

// Coordinator shards render jobs across remote gvmrd workers and
// composites the results locally. Safe for concurrent use.
type Coordinator struct {
	cfg   CoordinatorConfig
	ring  *ring
	nodes []*nodeState

	jobs, batches, retries, hedges, hedgeWins, corrupt, nodeDowns atomic.Int64
}

type nodeState struct {
	index int
	base  string // http://host:port

	mu        sync.Mutex
	fails     int
	downUntil time.Time
}

func (n *nodeState) healthy(now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !now.Before(n.downUntil)
}

// NewCoordinator builds a coordinator over the given worker nodes.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("dist: no worker nodes")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 15 * time.Second
	}
	if cfg.Reducers == 0 {
		cfg.Reducers = len(cfg.Nodes)
	}
	if cfg.Partitioner == nil {
		cfg.Partitioner = mapreduce.RoundRobin{}
	}
	if cfg.MergeFallbackBytes == 0 {
		cfg.MergeFallbackBytes = 8 << 20
	}
	if cfg.MaxResponseBytes == 0 {
		cfg.MaxResponseBytes = 1 << 30
	}
	c := &Coordinator{cfg: cfg, ring: newRing(cfg.Nodes, cfg.Replicas)}
	for i, a := range cfg.Nodes {
		base := a
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		c.nodes = append(c.nodes, &nodeState{index: i, base: strings.TrimRight(base, "/")})
	}
	return c, nil
}

// Stats snapshots the event counters.
func (c *Coordinator) Stats() CoordinatorStats {
	return CoordinatorStats{
		Jobs:      c.jobs.Load(),
		Batches:   c.batches.Load(),
		Retries:   c.retries.Load(),
		Hedges:    c.hedges.Load(),
		HedgeWins: c.hedgeWins.Load(),
		Corrupt:   c.corrupt.Load(),
		NodeDowns: c.nodeDowns.Load(),
	}
}

// Nodes returns the configured worker count.
func (c *Coordinator) Nodes() int { return len(c.nodes) }

func (c *Coordinator) markFailure(n *nodeState) {
	n.mu.Lock()
	n.fails++
	backoff := c.cfg.Backoff << uint(n.fails-1)
	if backoff > c.cfg.MaxBackoff || backoff <= 0 {
		backoff = c.cfg.MaxBackoff
	}
	n.downUntil = time.Now().Add(backoff)
	n.mu.Unlock()
	c.nodeDowns.Add(1)
}

func (c *Coordinator) markSuccess(n *nodeState) {
	n.mu.Lock()
	n.fails = 0
	n.downUntil = time.Time{}
	n.mu.Unlock()
}

// place picks the node for one brick: the first healthy, non-excluded
// node on the brick's ring walk; failing that, the first non-excluded
// node (better a likely-dead try than none); -1 when every node is
// excluded.
func (c *Coordinator) place(job JobSpec, brick int, excluded map[int]bool) int {
	seq := c.ring.sequence(brickKey(job, brick))
	now := time.Now()
	firstAlive := -1
	for _, n := range seq {
		if excluded[n] {
			continue
		}
		if firstAlive < 0 {
			firstAlive = n
		}
		if c.nodes[n].healthy(now) {
			return n
		}
	}
	return firstAlive
}

// placeBounded is the bounded-load variant of place used for initial
// placement: first healthy node on the brick's ring walk with fewer than
// cap bricks assigned; failing that, the first healthy node; failing
// that, the first node at all.
func (c *Coordinator) placeBounded(job JobSpec, brick int, loads map[int][]int, cap int) int {
	seq := c.ring.sequence(brickKey(job, brick))
	now := time.Now()
	firstAlive, firstHealthy := -1, -1
	for _, n := range seq {
		if firstAlive < 0 {
			firstAlive = n
		}
		if !c.nodes[n].healthy(now) {
			continue
		}
		if firstHealthy < 0 {
			firstHealthy = n
		}
		if len(loads[n]) < cap {
			return n
		}
	}
	if firstHealthy >= 0 {
		return firstHealthy
	}
	return firstAlive
}

// batchOutcome is one successfully mapped batch.
type batchOutcome struct {
	node       int
	stripes    []core.BrickStripe
	mapSeconds float64
	bytes      int64
}

// Breakdown decomposes a distributed frame's virtual makespan into its
// phases: the slowest node's map time (nodes run in parallel), the
// stripe transfers into the coordinator's NIC, and the local reduce.
// Wire+Reduce relative to the total is the coordinator overhead the
// cluster bench records.
type Breakdown struct {
	Map    sim.Time `json:"map_seconds"`
	Wire   sim.Time `json:"wire_seconds"`
	Reduce sim.Time `json:"reduce_seconds"`

	Batches   int64 `json:"batches"`
	WireBytes int64 `json:"wire_bytes"`
	Fragments int64 `json:"fragments"`
}

// Render runs one distributed frame: plan, place, fan out, verify,
// composite. The image is byte-identical to a single-process
// core.Render of the same options regardless of node count, placement,
// retries or hedging (DESIGN.md §9).
func (c *Coordinator) Render(ctx context.Context, job JobSpec) (*core.Result, sim.Time, error) {
	res, _, err := c.RenderDetailed(ctx, job)
	if err != nil {
		return nil, 0, err
	}
	return res, res.Runtime, nil
}

// RenderDetailed is Render plus the virtual-time breakdown.
func (c *Coordinator) RenderDetailed(ctx context.Context, job JobSpec) (*core.Result, Breakdown, error) {
	c.jobs.Add(1)
	opt, err := job.Options()
	if err != nil {
		return nil, Breakdown{}, err
	}
	planSpec := job.PlanSpec()
	if c.cfg.Spec != nil {
		planSpec = *c.cfg.Spec
	}
	grid, err := core.PlanGrid(planSpec, opt)
	if err != nil {
		return nil, Breakdown{}, err
	}

	// Cancelling the job context tears down every in-flight exchange; the
	// buffered event channel lets stragglers deposit their terminal event
	// and exit without a reader.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Initial placement: consistent hash with bounded loads. Each brick
	// walks its ring sequence and takes the first healthy node still
	// under the per-node cap — affinity when the cluster is balanced,
	// guaranteed balance always (no node maps more than ⌈bricks/healthy⌉
	// while others idle, so adding nodes always shrinks the map phase).
	perNode := make(map[int][]int)
	healthyNow := 0
	now := time.Now()
	for _, n := range c.nodes {
		if n.healthy(now) {
			healthyNow++
		}
	}
	if healthyNow == 0 {
		healthyNow = len(c.nodes) // everyone in backoff: place anyway
	}
	cap := (grid.NumBricks() + healthyNow - 1) / healthyNow
	for id := 0; id < grid.NumBricks(); id++ {
		n := c.placeBounded(job, id, perNode, cap)
		if n < 0 {
			return nil, Breakdown{}, fmt.Errorf("dist: no live worker for brick %d", id)
		}
		perNode[n] = append(perNode[n], id)
	}

	type pendingBatch struct {
		bricks   []int
		target   int // node chosen at placement/re-placement time
		excluded map[int]bool
		attempts int
	}
	type event struct {
		out batchOutcome
		err error
	}
	// Every batch emits exactly one terminal event (a success, a hard
	// failure) or re-places itself into child batches, each of which does
	// the same; total events are bounded by bricks × attempts, so the
	// buffer guarantees no sender ever blocks.
	events := make(chan event, grid.NumBricks()*(c.cfg.MaxAttempts+1)+4)
	var launch func(b pendingBatch)
	launch = func(b pendingBatch) {
		go func() {
			target := b.target
			if target < 0 || b.attempts >= c.cfg.MaxAttempts {
				events <- event{err: fmt.Errorf("dist: bricks %v undeliverable after %d attempts", b.bricks, b.attempts)}
				return
			}
			out, tried, err := c.sendBatch(ctx, job, grid.Counts, b.bricks, target, b.excluded)
			if err == nil {
				events <- event{out: out}
				return
			}
			if ctx.Err() != nil {
				events <- event{err: ctx.Err()}
				return
			}
			c.retries.Add(1)
			excluded := map[int]bool{}
			for n := range b.excluded {
				excluded[n] = true
			}
			for n := range tried {
				excluded[n] = true
			}
			// Re-place the failed bricks over the remaining nodes; the
			// batch may split if the ring walks diverge.
			regroup := make(map[int][]int)
			for _, id := range b.bricks {
				n := c.place(job, id, excluded)
				if n < 0 {
					events <- event{err: fmt.Errorf("dist: bricks %v exhausted every worker: %w", b.bricks, err)}
					return
				}
				regroup[n] = append(regroup[n], id)
			}
			for n, bricks := range regroup {
				launch(pendingBatch{bricks: bricks, target: n, excluded: excluded, attempts: b.attempts + 1})
			}
		}()
	}
	for n, bricks := range perNode {
		sort.Ints(bricks)
		launch(pendingBatch{bricks: bricks, target: n})
	}

	stripes := make(map[int]core.BrickStripe, grid.NumBricks())
	nodeVirtual := make([]sim.Time, len(c.nodes))
	var wireBytes int64
	var batches int64
	for len(stripes) < grid.NumBricks() {
		select {
		case ev := <-events:
			if ev.err != nil {
				return nil, Breakdown{}, ev.err
			}
			for _, s := range ev.out.stripes {
				stripes[s.Brick] = s
			}
			nodeVirtual[ev.out.node] += sim.Seconds(ev.out.mapSeconds)
			wireBytes += ev.out.bytes
			batches++
		case <-ctx.Done():
			return nil, Breakdown{}, ctx.Err()
		}
	}

	ordered := make([]core.BrickStripe, 0, len(stripes))
	for id := 0; id < grid.NumBricks(); id++ {
		ordered = append(ordered, stripes[id])
	}

	out, reduceCharge := compositeStripes(ordered, opt.Width, opt.Height, opt.Background,
		c.cfg.Partitioner, c.cfg.Reducers, planSpec, c.cfg.MergeFallbackBytes)

	// Virtual makespan: map phases run node-parallel (max), the stripe
	// transfers serialise into the coordinator's NIC, the local reduce
	// follows. Additive across phases — conservative, no modeled overlap.
	var mapVirtual sim.Time
	for _, v := range nodeVirtual {
		if v > mapVirtual {
			mapVirtual = v
		}
	}
	wireVirtual := sim.Time(batches)*(planSpec.NICLatency+planSpec.MsgOverhead) +
		sim.BytesTime(wireBytes, planSpec.NICBandwidth)
	runtime := mapVirtual + wireVirtual + reduceCharge

	var frags int64
	for _, s := range ordered {
		frags += int64(len(s.Frags))
	}
	res := &core.Result{
		Image: out,
		Stats: &mapreduce.JobStats{
			Makespan:      runtime,
			BytesOnWire:   wireBytes,
			Messages:      batches,
			TotalEmitted:  frags,
			TotalReceived: frags,
		},
		Grid:    grid,
		GPUs:    job.GPUs,
		Runtime: runtime,
		Voxels:  opt.Source.Dims().Voxels(),
	}
	if runtime > 0 {
		res.FPS = 1 / runtime.Seconds()
		res.VPSMillions = float64(res.Voxels) / runtime.Seconds() / 1e6
	}
	bd := Breakdown{
		Map:       mapVirtual,
		Wire:      wireVirtual,
		Reduce:    reduceCharge,
		Batches:   batches,
		WireBytes: wireBytes,
		Fragments: frags,
	}
	return res, bd, nil
}

// sendBatch posts one map batch to target, hedging a straggler onto an
// alternate node when configured. It validates shape and digest of the
// winning response. On failure, tried names every node the batch was
// attempted on (primary and hedges) so re-placement can exclude them
// all — a batch never retries a node that already failed it.
func (c *Coordinator) sendBatch(ctx context.Context, job JobSpec, counts [3]int,
	bricks []int, target int, excluded map[int]bool) (batchOutcome, map[int]bool, error) {
	type attempt struct {
		out batchOutcome
		err error
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resCh := make(chan attempt, len(c.nodes)+1)
	post := func(node int) {
		out, err := c.postMap(ctx, job, counts, bricks, node)
		resCh <- attempt{out: out, err: err}
	}
	c.batches.Add(1)
	tried := map[int]bool{target: true}
	go post(target)
	launched := 1
	var timer *time.Timer
	var timerC <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		timer = time.NewTimer(c.cfg.HedgeAfter)
		defer timer.Stop()
		timerC = timer.C
	}
	hedge := func() {
		timerC = nil
		if alt := c.alternate(job, bricks[0], tried, excluded); alt >= 0 {
			tried[alt] = true
			c.hedges.Add(1)
			c.batches.Add(1)
			launched++
			go post(alt)
		}
	}
	var firstErr error
	for {
		select {
		case a := <-resCh:
			if a.err == nil {
				if a.out.node != target {
					c.hedgeWins.Add(1)
				}
				return a.out, tried, nil
			}
			if firstErr == nil {
				firstErr = a.err
			}
			launched--
			if launched == 0 {
				return batchOutcome{}, tried, firstErr
			}
			// Attempts remain in flight (e.g. a straggling primary whose
			// hedge just died): don't sit behind the straggler — re-arm
			// the hedge toward the next untried node.
			if timer != nil && timerC == nil {
				timer.Reset(c.cfg.HedgeAfter)
				timerC = timer.C
			}
		case <-timerC:
			hedge()
		case <-ctx.Done():
			return batchOutcome{}, tried, ctx.Err()
		}
	}
}

// alternate picks a healthy hedge target not yet tried for this batch.
func (c *Coordinator) alternate(job JobSpec, brick int, tried, excluded map[int]bool) int {
	seq := c.ring.sequence(brickKey(job, brick))
	now := time.Now()
	for _, n := range seq {
		if tried[n] || excluded[n] {
			continue
		}
		if c.nodes[n].healthy(now) {
			return n
		}
	}
	return -1
}

// postMap performs one HTTP map exchange with full response verification.
func (c *Coordinator) postMap(ctx context.Context, job JobSpec, counts [3]int,
	bricks []int, node int) (batchOutcome, error) {
	body, err := encodeMapRequest(MapRequest{Job: job, Bricks: bricks, GridCounts: counts})
	if err != nil {
		return batchOutcome{}, err
	}
	n := c.nodes[node]
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+MapPath, bytes.NewReader(body))
	if err != nil {
		return batchOutcome{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		// A cancelled exchange says nothing about the node's health: the
		// hedge winner (or job teardown) aborted us. Marking the node down
		// here would put a healthy straggler into backoff on every hedge
		// win and poison its placement affinity.
		if ctx.Err() == nil {
			c.markFailure(n)
		}
		return batchOutcome{}, fmt.Errorf("dist: node %s: %w", n.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		// Only 5xx marks the node down. 429 is transient backpressure
		// (the node is alive and telling us so) and 400 is a
		// deterministic request problem — neither says the node is
		// unhealthy, and backing off healthy nodes would degrade
		// placement for every following job. The batch still fails here
		// and re-places onto another node, bounded by MaxAttempts.
		if resp.StatusCode >= 500 {
			c.markFailure(n)
		}
		return batchOutcome{}, fmt.Errorf("dist: node %s: %s: %s", n.base, resp.Status, bytes.TrimSpace(msg))
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxResponseBytes+1))
	if err != nil {
		c.markFailure(n)
		return batchOutcome{}, fmt.Errorf("dist: node %s: reading stripes: %w", n.base, err)
	}
	if int64(len(payload)) > c.cfg.MaxResponseBytes {
		return batchOutcome{}, fmt.Errorf("dist: node %s: response exceeds %d bytes", n.base, c.cfg.MaxResponseBytes)
	}
	out, err := c.verifyResponse(resp, payload, job, bricks, node)
	if err != nil {
		c.corrupt.Add(1)
		c.markFailure(n)
		return batchOutcome{}, fmt.Errorf("dist: node %s: %w", n.base, err)
	}
	c.markSuccess(n)
	return out, nil
}

// verifyResponse checks digest, brick coverage, fragment counts and
// per-fragment key bounds, then decodes the stripes.
func (c *Coordinator) verifyResponse(resp *http.Response, payload []byte,
	job JobSpec, bricks []int, node int) (batchOutcome, error) {
	wantDigest := resp.Header.Get(HeaderStripeDigest)
	if wantDigest == "" {
		return batchOutcome{}, fmt.Errorf("missing %s header", HeaderStripeDigest)
	}
	if got := PayloadDigest(payload); got != wantDigest {
		return batchOutcome{}, fmt.Errorf("stripe digest mismatch: body %s != header %s (corrupt response)", got, wantDigest)
	}
	stripes, err := DecodeStripes(payload)
	if err != nil {
		return batchOutcome{}, err
	}
	want := make(map[int]bool, len(bricks))
	for _, id := range bricks {
		want[id] = true
	}
	keyRange := int32(job.Width) * int32(job.Height)
	frags := 0
	for _, s := range stripes {
		if !want[s.Brick] {
			return batchOutcome{}, fmt.Errorf("stripe for unrequested brick %d", s.Brick)
		}
		delete(want, s.Brick)
		frags += len(s.Frags)
		// Bound every pixel key now: compositing indexes shards, the
		// counting sort and the framebuffer by it, and a buggy or
		// version-skewed worker must surface as a retried corrupt
		// response, not a panic (the digest only covers transport).
		for _, f := range s.Frags {
			if f.Key < 0 || f.Key >= keyRange {
				return batchOutcome{}, fmt.Errorf(
					"brick %d fragment key %d outside image of %d pixels", s.Brick, f.Key, keyRange)
			}
		}
	}
	if len(want) > 0 {
		missing := make([]int, 0, len(want))
		for id := range want {
			missing = append(missing, id)
		}
		sort.Ints(missing)
		return batchOutcome{}, fmt.Errorf("response missing bricks %v", missing)
	}
	if h := resp.Header.Get(HeaderFragCount); h != "" {
		if n, err := strconv.Atoi(h); err != nil || n != frags {
			return batchOutcome{}, fmt.Errorf("fragment count mismatch: body %d != header %q", frags, h)
		}
	}
	mapSeconds := 0.0
	if h := resp.Header.Get(HeaderMapSeconds); h != "" {
		v, err := strconv.ParseFloat(h, 64)
		if err != nil || v < 0 {
			return batchOutcome{}, fmt.Errorf("bad %s header %q", HeaderMapSeconds, h)
		}
		mapSeconds = v
	}
	return batchOutcome{node: node, stripes: stripes, mapSeconds: mapSeconds, bytes: int64(len(payload))}, nil
}
