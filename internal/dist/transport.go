package dist

import (
	"io"
	"net"
	"net/http"
	"time"
)

// sharedTransport is the tuned transport every dist HTTP client rides.
// http.DefaultTransport caps MaxIdleConnsPerHost at 2, which is exactly
// wrong for this topology: a coordinator holds a handful of workers and
// talks to each over many concurrent batch posts (plus hedges), and a
// worker pushing exchange ranges fans out to every peer at once — the
// third concurrent exchange with the same host tears its connection down
// on completion instead of pooling it, so steady state churns TCP
// handshakes. One process-wide transport also lets the coordinator and
// the worker push client share the same pool on daemons that are both.
var sharedTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   10 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:          256,
	MaxIdleConnsPerHost:   32,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   10 * time.Second,
	ExpectContinueTimeout: time.Second,
	ForceAttemptHTTP2:     true,
}

// newClient returns an HTTP client on the shared tuned transport. No
// blanket timeout — callers bound each exchange with a context deadline.
func newClient() *http.Client { return &http.Client{Transport: sharedTransport} }

// drainBody consumes and closes a response body so the keep-alive
// connection returns to the pool instead of being torn down. Bounded:
// a peer streaming garbage forfeits its connection rather than our time.
func drainBody(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 64<<10))
	_ = body.Close()
}
