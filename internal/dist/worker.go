package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/resilience"
)

// WorkerConfig sizes the worker side of the distributed map endpoint.
type WorkerConfig struct {
	// Spec is the node's local hardware: its bricks run on an instance of
	// this spec. It may be smaller than the job's virtual cluster (a
	// 1-GPU node maps its share of an 8-GPU job's bricks serially); only
	// the GPU model must match the job's planning spec.
	Spec cluster.Spec
	// DevWorkers caps host cores per map job (0 = all of GOMAXPROCS), as
	// in core.RenderOn.
	DevWorkers int
	// MaxEdge and MaxPixels bound requests exactly like the render
	// service's limits (defaults 512 and 4096²).
	MaxEdge   int
	MaxPixels int
	// MaxBody bounds JSON request bodies (default 1 MiB — map and
	// collect requests are small documents).
	MaxBody int64
	// MaxResponseBytes bounds one exchange push payload, on the wire and
	// decompressed (default 1 GiB, mirroring the coordinator's response
	// bound).
	MaxResponseBytes int64
	// PushClient posts exchange ranges to peer reducers (default: a
	// client on the shared tuned transport). PushTimeout bounds one peer
	// push (default 20s).
	PushClient  *http.Client
	PushTimeout time.Duration
	// MaxExchanges caps concurrent reduce sessions (default 64);
	// ExchangeTTL sweeps sessions whose coordinator vanished (default
	// 2 minutes).
	MaxExchanges int
	ExchangeTTL  time.Duration
	// Metrics, when non-nil, receives deadline-abort events (the server
	// shares its node-wide resilience counters).
	Metrics *resilience.Metrics
}

func (c *WorkerConfig) fillDefaults() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.MaxEdge == 0 {
		c.MaxEdge = 512
	}
	if c.MaxPixels == 0 {
		c.MaxPixels = 4096 * 4096
	}
	if c.MaxBody == 0 {
		c.MaxBody = 1 << 20
	}
	if c.MaxResponseBytes == 0 {
		c.MaxResponseBytes = 1 << 30
	}
	if c.PushClient == nil {
		c.PushClient = newClient()
	}
	if c.PushTimeout == 0 {
		c.PushTimeout = 20 * time.Second
	}
	if c.MaxExchanges == 0 {
		c.MaxExchanges = 64
	}
	if c.ExchangeTTL == 0 {
		c.ExchangeTTL = 2 * time.Minute
	}
	return nil
}

// requestError marks a deterministic problem with the request itself —
// the node is healthy, the request can never succeed anywhere as posed.
// Served as 400, which the coordinator deliberately does not treat as a
// node failure.
type requestError struct{ err error }

func (e requestError) Error() string { return e.err.Error() }
func (e requestError) Unwrap() error { return e.err }

// pushError marks a reduce-exchange push that a peer refused or never
// answered. The mapper itself is healthy — served as 424 (failed
// dependency) so the coordinator aborts the exchange without backing
// off the mapper.
type pushError struct{ err error }

func (e pushError) Error() string { return e.err.Error() }
func (e pushError) Unwrap() error { return e.err }

// deadlineError marks map work abandoned because the request's
// propagated end-to-end deadline expired. The node is healthy and the
// request was fine — the *budget* ran out. Served as 504 (gateway
// timeout), the one status the coordinator classifies as a deadline
// abort: no node is marked down and no retry is launched, because a
// retry cannot beat an already-spent deadline.
type deadlineError struct{ err error }

func (e deadlineError) Error() string { return e.err.Error() }
func (e deadlineError) Unwrap() error { return e.err }

// Worker serves MapPath: it decodes a MapRequest, cross-checks the grid
// plan, runs core.MapBricks on the local spec and either writes the
// stripe payload (classic) or pushes each reducer's pixel range into the
// frame's exchange (distributed reduce). Mount it on any mux (cmd/gvmrd
// mounts it on every service, so every daemon is worker-capable out of
// the box).
type Worker struct {
	cfg WorkerConfig
	ex  *exchangeTable

	// stripped counts placeholder fragments SanitizeStripes removed
	// before encoding — always zero unless a mapper bug leaks the
	// kernel-internal sentinel; surfaced in /stats so a leak is visible
	// fleet-wide instead of silently riding the wire.
	stripped atomic.Int64

	// mapBricks is the compute seam; tests substitute it to fault-inject
	// internal failures without a sick GPU model.
	mapBricks func(spec cluster.Spec, opt core.Options, brickIDs []int, devWorkers int) (*core.MapResult, error)
}

// NewWorker validates the config and builds the handler.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	return &Worker{
		cfg:       cfg,
		ex:        newExchangeTable(cfg.MaxExchanges, cfg.ExchangeTTL),
		mapBricks: core.MapBricks,
	}, nil
}

// ExchangeStats snapshots the worker's reduce-exchange counters.
func (wk *Worker) ExchangeStats() ExchangeStats { return wk.ex.stats() }

// PlaceholdersStripped reports how many placeholder fragments the
// worker has stripped from outgoing stripes over its lifetime. Nonzero
// means a mapper bug leaked the kernel-internal sentinel.
func (wk *Worker) PlaceholdersStripped() int64 { return wk.stripped.Load() }

// mapOutcome is one successful map batch, ready to serve.
type mapOutcome struct {
	payload    []byte
	encoding   string // Content-Encoding of payload ("" = identity)
	frags      int
	mapSeconds float64
	reduced    bool // stripes went to the exchange, payload is empty
}

// ServeHTTP implements http.Handler for MapPath. Errors map to status by
// class: deterministic request problems are 400 (retrying elsewhere
// cannot help, the node is fine), failed exchange pushes are 424 (a
// *peer* is sick), and everything else — staging, planning, the map
// computation itself — is 500, which is what lets the coordinator mark
// a sick node down and steer placement away from it.
func (wk *Worker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req MapRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, wk.cfg.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad map request: %v", err), http.StatusBadRequest)
		return
	}
	// The propagated end-to-end deadline bounds this batch's context:
	// work the coordinator can no longer use is abandoned, not finished.
	ctx := r.Context()
	if budget, ok, err := resilience.ParseDeadline(r.Header.Get(resilience.HeaderDeadline)); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	} else if ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	out, err := wk.run(ctx, req, negotiateEncoding(r.Header.Get("Accept-Encoding")))
	if err != nil {
		status := http.StatusInternalServerError
		var reqErr requestError
		var pErr pushError
		var dlErr deadlineError
		switch {
		case errors.As(err, &reqErr):
			status = http.StatusBadRequest
		case errors.As(err, &dlErr):
			status = http.StatusGatewayTimeout
			wk.cfg.Metrics.DeadlineAbort()
		case errors.As(err, &pErr):
			status = http.StatusFailedDependency
		}
		http.Error(w, err.Error(), status)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	if out.encoding != "" {
		h.Set("Content-Encoding", out.encoding)
	}
	h.Set("Content-Length", strconv.Itoa(len(out.payload)))
	h.Set(HeaderFragCount, strconv.Itoa(out.frags))
	h.Set(HeaderMapSeconds, strconv.FormatFloat(out.mapSeconds, 'g', -1, 64))
	h.Set(HeaderStripeDigest, PayloadDigest(out.payload))
	if out.reduced {
		h.Set(HeaderReduced, "1")
	}
	_, _ = w.Write(out.payload) // client hangup; the coordinator will retry
}

// Map is the in-process form of the endpoint: run a map batch and return
// the encoded identity payload, its fragment count and the job's virtual
// seconds. Tests share it.
func (wk *Worker) Map(req MapRequest) ([]byte, int, float64, error) {
	out, err := wk.run(context.Background(), req, "")
	if err != nil {
		return nil, 0, 0, err
	}
	return out.payload, out.frags, out.mapSeconds, nil
}

func (wk *Worker) run(ctx context.Context, req MapRequest, encoding string) (mapOutcome, error) {
	if err := req.Job.Validate(wk.cfg.MaxEdge, wk.cfg.MaxPixels); err != nil {
		return mapOutcome{}, requestError{err}
	}
	if len(req.Bricks) == 0 {
		return mapOutcome{}, requestError{fmt.Errorf("dist: empty brick batch")}
	}
	opt, err := req.Job.Options()
	if err != nil {
		return mapOutcome{}, requestError{err}
	}
	grid, err := core.PlanGrid(wk.cfg.Spec, opt)
	if err != nil {
		return mapOutcome{}, fmt.Errorf("dist: planning grid: %w", err)
	}
	if grid.Counts != req.GridCounts {
		// Not a request error: the request is fine for the rest of the
		// fleet, this node's GPU model or bricking policy diverged. A 500
		// backs the node off so placement stops feeding it batches it can
		// never run.
		return mapOutcome{}, fmt.Errorf(
			"dist: grid plan mismatch: worker %v != coordinator %v (GPU model or bricking policy differs)",
			grid.Counts, req.GridCounts)
	}
	numUnits, err := core.NumUnits(grid, opt.Partition)
	if err != nil {
		return mapOutcome{}, requestError{err}
	}
	seen := make(map[int]bool, len(req.Bricks))
	for _, id := range req.Bricks {
		if id < 0 || id >= numUnits {
			return mapOutcome{}, requestError{fmt.Errorf("dist: unit %d outside job of %d units", id, numUnits)}
		}
		if seen[id] {
			return mapOutcome{}, requestError{fmt.Errorf("dist: duplicate unit %d in batch", id)}
		}
		seen[id] = true
	}
	if req.Reduce != nil {
		if err := validatePlan(req.Reduce, int32(req.Job.Width)*int32(req.Job.Height)); err != nil {
			return mapOutcome{}, requestError{err}
		}
	}
	raw, mapSeconds, err := wk.mapBatch(ctx, opt, req.Bricks)
	if err != nil {
		return mapOutcome{}, err
	}
	rawFrags := 0
	for _, s := range raw {
		rawFrags += len(s.Frags)
	}
	// The wire contract says stripes carry only surviving fragments;
	// strip (and loudly count) any placeholder a buggy mapper leaked
	// rather than shipping the sentinel.
	stripes, stripped := SanitizeStripes(raw)
	if stripped > 0 {
		wk.stripped.Add(int64(stripped))
	}
	out := mapOutcome{frags: rawFrags - stripped, mapSeconds: mapSeconds}
	if req.Reduce != nil {
		if err := wk.pushStripes(ctx, req.Reduce, stripes); err != nil {
			return mapOutcome{}, err
		}
		out.reduced = true
		return out, nil
	}
	out.payload, err = EncodePayloadAs(stripes, encoding)
	if err != nil {
		return mapOutcome{}, err
	}
	out.encoding = encoding
	return out, nil
}

// mapBatch runs the map phase of one batch. Without a deadline the
// whole batch is a single core.MapBricks call — the golden path,
// unchanged. With a propagated deadline the batch is chunked one brick
// at a time with a deadline check between bricks, so a budget that
// expires mid-batch abandons the remaining bricks instead of computing
// results the coordinator can no longer use. Stripes are canonical per
// brick (DESIGN.md §9), so the image bits are identical either way;
// only the modeled virtual seconds can differ on the deadline path
// (per-brick staging is re-charged), and virtual time never reaches a
// frame digest.
func (wk *Worker) mapBatch(ctx context.Context, opt core.Options, bricks []int) ([]core.BrickStripe, float64, error) {
	if _, ok := ctx.Deadline(); !ok {
		res, err := wk.mapBricks(wk.cfg.Spec, opt, bricks, wk.cfg.DevWorkers)
		if err != nil {
			return nil, 0, fmt.Errorf("dist: map phase: %w", err)
		}
		return res.Stripes, res.Runtime.Seconds(), nil
	}
	// The wire contract requires ascending brick order regardless of the
	// request's (already duplicate-free) ordering.
	ids := append([]int(nil), bricks...)
	sort.Ints(ids)
	var stripes []core.BrickStripe
	var seconds float64
	for done, id := range ids {
		if err := ctx.Err(); err != nil {
			return nil, 0, deadlineError{fmt.Errorf(
				"dist: deadline expired after %d/%d bricks: %w", done, len(ids), err)}
		}
		res, err := wk.mapBricks(wk.cfg.Spec, opt, []int{id}, wk.cfg.DevWorkers)
		if err != nil {
			return nil, 0, fmt.Errorf("dist: map phase: %w", err)
		}
		stripes = append(stripes, res.Stripes...)
		seconds += res.Runtime.Seconds()
	}
	return stripes, seconds, nil
}

// validatePlan bounds a reduce plan before any work runs.
func validatePlan(plan *ReducePlan, keyRange int32) error {
	if plan.Exchange == "" || len(plan.Exchange) > maxExchangeID {
		return fmt.Errorf("dist: bad exchange ID %q", plan.Exchange)
	}
	if len(plan.Reducers) < 1 || len(plan.Reducers) > 4096 {
		return fmt.Errorf("dist: %d reducers outside [1, 4096]", len(plan.Reducers))
	}
	if plan.Self < -1 || plan.Self >= len(plan.Reducers) {
		return fmt.Errorf("dist: self index %d outside plan of %d reducers", plan.Self, len(plan.Reducers))
	}
	for i, t := range plan.Reducers {
		if t.Lo < 0 || t.Hi < t.Lo || t.Hi > keyRange {
			return fmt.Errorf("dist: reducer %d range [%d,%d) outside image of %d pixels", i, t.Lo, t.Hi, keyRange)
		}
		if t.Addr == "" && i != plan.Self {
			return fmt.Errorf("dist: reducer %d has no address", i)
		}
	}
	return nil
}

// pushStripes delivers each reducer's pixel range: in-process for the
// mapper's own range (zero wire bytes), POST /reduce for peers. Any peer
// failure aborts the whole exchange with a pushError — the coordinator
// falls back to the classic path, it never composites a partial frame.
func (wk *Worker) pushStripes(ctx context.Context, plan *ReducePlan, stripes []core.BrickStripe) error {
	for i, tgt := range plan.Reducers {
		sub := filterRange(stripes, tgt.Lo, tgt.Hi)
		if i == plan.Self {
			s, _, err := wk.ex.join(plan.Exchange, tgt.Lo, tgt.Hi, wk.ex.now())
			if err != nil {
				return pushError{err}
			}
			s.deliver(sub, 0, 0, wk.ex.now())
			continue
		}
		if err := wk.postPush(ctx, tgt, plan.Exchange, sub, plan.Compress); err != nil {
			return pushError{fmt.Errorf("dist: pushing range [%d,%d) to %s: %w", tgt.Lo, tgt.Hi, tgt.Addr, err)}
		}
	}
	return nil
}

func (wk *Worker) postPush(ctx context.Context, tgt ReduceTarget, exchange string,
	stripes []core.BrickStripe, compress bool) error {
	payload, encoding := EncodePayload(stripes, compress)
	ctx, cancel := context.WithTimeout(ctx, wk.cfg.PushTimeout)
	defer cancel()
	u := fmt.Sprintf("%s%s?ex=%s&lo=%d&hi=%d", tgt.Addr, ReducePath, url.QueryEscape(exchange), tgt.Lo, tgt.Hi)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	req.Header.Set(HeaderStripeDigest, PayloadDigest(payload))
	resp, err := wk.cfg.PushClient.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		drainBody(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	drainBody(resp.Body)
	return nil
}
