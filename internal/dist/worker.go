package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
)

// WorkerConfig sizes the worker side of the distributed map endpoint.
type WorkerConfig struct {
	// Spec is the node's local hardware: its bricks run on an instance of
	// this spec. It may be smaller than the job's virtual cluster (a
	// 1-GPU node maps its share of an 8-GPU job's bricks serially); only
	// the GPU model must match the job's planning spec.
	Spec cluster.Spec
	// DevWorkers caps host cores per map job (0 = all of GOMAXPROCS), as
	// in core.RenderOn.
	DevWorkers int
	// MaxEdge and MaxPixels bound requests exactly like the render
	// service's limits (defaults 512 and 4096²).
	MaxEdge   int
	MaxPixels int
	// MaxBody bounds the request body (default 1 MiB — a map request is
	// a small JSON document).
	MaxBody int64
}

func (c *WorkerConfig) fillDefaults() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.MaxEdge == 0 {
		c.MaxEdge = 512
	}
	if c.MaxPixels == 0 {
		c.MaxPixels = 4096 * 4096
	}
	if c.MaxBody == 0 {
		c.MaxBody = 1 << 20
	}
	return nil
}

// Worker serves MapPath: it decodes a MapRequest, cross-checks the grid
// plan, runs core.MapBricks on the local spec and writes the stripe
// payload. Mount it on any mux (cmd/gvmrd mounts it on every service, so
// every daemon is worker-capable out of the box).
type Worker struct {
	cfg WorkerConfig
}

// NewWorker validates the config and builds the handler.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	return &Worker{cfg: cfg}, nil
}

// ServeHTTP implements http.Handler for MapPath.
func (wk *Worker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req MapRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, wk.cfg.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad map request: %v", err), http.StatusBadRequest)
		return
	}
	payload, frags, mapSeconds, err := wk.run(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(payload)))
	h.Set(HeaderFragCount, strconv.Itoa(frags))
	h.Set(HeaderMapSeconds, strconv.FormatFloat(mapSeconds, 'g', -1, 64))
	h.Set(HeaderStripeDigest, PayloadDigest(payload))
	_, _ = w.Write(payload) // client hangup; the coordinator will retry
}

// Map is the in-process form of the endpoint: run a map batch and return
// the encoded payload, its fragment count and the job's virtual seconds.
// The HTTP handler and tests share it.
func (wk *Worker) Map(req MapRequest) ([]byte, int, float64, error) { return wk.run(req) }

func (wk *Worker) run(req MapRequest) ([]byte, int, float64, error) {
	if err := req.Job.Validate(wk.cfg.MaxEdge, wk.cfg.MaxPixels); err != nil {
		return nil, 0, 0, err
	}
	if len(req.Bricks) == 0 {
		return nil, 0, 0, fmt.Errorf("dist: empty brick batch")
	}
	opt, err := req.Job.Options()
	if err != nil {
		return nil, 0, 0, err
	}
	grid, err := core.PlanGrid(wk.cfg.Spec, opt)
	if err != nil {
		return nil, 0, 0, err
	}
	if grid.Counts != req.GridCounts {
		return nil, 0, 0, fmt.Errorf(
			"dist: grid plan mismatch: worker %v != coordinator %v (GPU model or bricking policy differs)",
			grid.Counts, req.GridCounts)
	}
	res, err := core.MapBricks(wk.cfg.Spec, opt, req.Bricks, wk.cfg.DevWorkers)
	if err != nil {
		return nil, 0, 0, err
	}
	return EncodeStripes(res.Stripes), res.FragmentCount(), res.Runtime.Seconds(), nil
}
