package dist

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gvmr/internal/membership"
	"gvmr/internal/volume/dataset"
)

// Membership chaos battery: joins mid-orbit, drains mid-job, lease
// expiry mid-exchange, delayed vs dead heartbeats, re-registration after
// eviction. The oracle everywhere is bit-identity — fragment stripes are
// canonical per brick (DESIGN.md §9/§10), so membership churn may move
// work between nodes but can never change the image. Runs under -race in
// CI.

// chaosClock is a manually-advanced registry clock.
type chaosClock struct {
	mu sync.Mutex
	t  time.Time
}

func newChaosClock() *chaosClock {
	return &chaosClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *chaosClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *chaosClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// countingWorkers starts n workers whose per-node map-request counts are
// observable — the "zero new placements after drain" assertions hang off
// these counters.
func countingWorkers(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler) ([]string, []*atomic.Int64) {
	t.Helper()
	counts := make([]*atomic.Int64, n)
	for i := range counts {
		counts[i] = &atomic.Int64{}
	}
	addrs := startWorkers(t, n, func(i int, h http.Handler) http.Handler {
		inner := h
		if wrap != nil {
			inner = wrap(i, h)
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			counts[i].Add(1)
			inner.ServeHTTP(w, r)
		})
	})
	return addrs, counts
}

func mustRegister(t *testing.T, reg *membership.Registry, addr, instance string) {
	t.Helper()
	if _, err := reg.Register(membership.RegisterRequest{Addr: addr, Instance: instance}); err != nil {
		t.Fatalf("register %s: %v", addr, err)
	}
}

func mustBeat(t *testing.T, reg *membership.Registry, addr, instance string) {
	t.Helper()
	if _, err := reg.Heartbeat(membership.HeartbeatRequest{Addr: addr, Instance: instance}); err != nil {
		t.Fatalf("heartbeat %s: %v", addr, err)
	}
}

func renderAngle(t *testing.T, coord *Coordinator, degrees float64) string {
	t.Helper()
	job := testJob(t, dataset.Skull, 32, 64, 6, degrees, false)
	res, _, err := coord.Render(context.Background(), job)
	if err != nil {
		t.Fatalf("render at %v°: %v", degrees, err)
	}
	return res.Image.Digest()
}

// TestChaosJoinMidOrbit: a worker joining between frames of an orbit is
// placed on immediately (the ring rebalances on the next placement) and
// the bits never change.
func TestChaosJoinMidOrbit(t *testing.T) {
	reg := membership.New(membership.Config{})
	addrs, counts := countingWorkers(t, 3, nil)
	mustRegister(t, reg, addrs[0], "w0")
	mustRegister(t, reg, addrs[1], "w1")
	coord := newTestCoordinator(t, nil, func(c *CoordinatorConfig) { c.Registry = reg })

	for _, deg := range []float64{0, 40} {
		job := testJob(t, dataset.Skull, 32, 64, 6, deg, false)
		if got, want := renderAngle(t, coord, deg), directDigest(t, job); got != want {
			t.Fatalf("pre-join frame %v°: digest %s != direct %s", deg, got, want)
		}
	}
	if counts[2].Load() != 0 {
		t.Fatal("unjoined worker received traffic")
	}

	// Worker 2 joins mid-orbit.
	mustRegister(t, reg, addrs[2], "w2")
	for _, deg := range []float64{80, 120} {
		job := testJob(t, dataset.Skull, 32, 64, 6, deg, false)
		if got, want := renderAngle(t, coord, deg), directDigest(t, job); got != want {
			t.Fatalf("post-join frame %v°: digest %s != direct %s", deg, got, want)
		}
	}
	// Bounded loads guarantee the join rebalanced: 6 bricks over 3 nodes
	// caps every node at 2, so the newcomer must have mapped.
	if counts[2].Load() == 0 {
		t.Error("joined worker never received a placement")
	}
	if st := reg.Stats(); st.Joins != 3 {
		t.Errorf("joins = %d, want 3", st.Joins)
	}
}

// TestChaosDrainMidOrbit: after the drain acknowledgment, the drained
// node receives ZERO new placements — the acceptance criterion — while
// frames keep rendering identical bits on the survivors.
func TestChaosDrainMidOrbit(t *testing.T) {
	reg := membership.New(membership.Config{})
	addrs, counts := countingWorkers(t, 3, nil)
	for i, a := range addrs {
		mustRegister(t, reg, a, []string{"w0", "w1", "w2"}[i])
	}
	coord := newTestCoordinator(t, nil, func(c *CoordinatorConfig) { c.Registry = reg })

	job0 := testJob(t, dataset.Skull, 32, 64, 6, 0, false)
	if got, want := renderAngle(t, coord, 0), directDigest(t, job0); got != want {
		t.Fatalf("pre-drain digest %s != direct %s", got, want)
	}
	if counts[0].Load() == 0 {
		t.Fatal("node 0 got no pre-drain traffic; drain assertion would be vacuous")
	}

	// Drain returning IS the acknowledgment.
	if err := reg.Drain(addrs[0]); err != nil {
		t.Fatalf("drain: %v", err)
	}
	afterAck := counts[0].Load()

	for _, deg := range []float64{45, 90, 135} {
		job := testJob(t, dataset.Skull, 32, 64, 6, deg, false)
		if got, want := renderAngle(t, coord, deg), directDigest(t, job); got != want {
			t.Fatalf("post-drain frame %v°: digest %s != direct %s", deg, got, want)
		}
	}
	if got := counts[0].Load(); got != afterAck {
		t.Errorf("drained node received %d new placements after ack", got-afterAck)
	}
	st := reg.Stats()
	if st.Drains != 1 || st.Draining != 1 || st.Alive != 2 {
		t.Errorf("registry stats after drain = %+v", st)
	}
}

// TestChaosDrainMidJob drains a node while its map batch is in flight:
// the in-flight batch completes and contributes (drain ≠ kill), and the
// frame's bits are identical.
func TestChaosDrainMidJob(t *testing.T) {
	reg := membership.New(membership.Config{})
	inFlight := make(chan struct{})   // node 0's batch arrived
	drainAcked := make(chan struct{}) // main goroutine drained node 0
	addrs, counts := countingWorkers(t, 3, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		var once sync.Once
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			once.Do(func() {
				close(inFlight)
				<-drainAcked // hold the batch in flight across the drain
			})
			h.ServeHTTP(w, r)
		})
	})
	for i, a := range addrs {
		mustRegister(t, reg, a, []string{"w0", "w1", "w2"}[i])
	}
	coord := newTestCoordinator(t, nil, func(c *CoordinatorConfig) { c.Registry = reg })

	job := testJob(t, dataset.Skull, 32, 64, 6, 20, false)
	want := directDigest(t, job)
	type rendered struct {
		digest string
		err    error
	}
	done := make(chan rendered, 1)
	go func() {
		res, _, err := coord.Render(context.Background(), job)
		if err != nil {
			done <- rendered{err: err}
			return
		}
		done <- rendered{digest: res.Image.Digest()}
	}()

	select {
	case <-inFlight:
	case <-time.After(30 * time.Second):
		t.Fatal("node 0 never received its batch")
	}
	if err := reg.Drain(addrs[0]); err != nil {
		t.Fatalf("drain mid-job: %v", err)
	}
	close(drainAcked)

	r := <-done
	if r.err != nil {
		t.Fatalf("render across mid-job drain: %v", r.err)
	}
	if r.digest != want {
		t.Errorf("digest across mid-job drain %s != direct %s", r.digest, want)
	}
	held := counts[0].Load()
	if held == 0 {
		t.Fatal("in-flight batch never reached node 0")
	}
	// Further frames place nothing on the drained node.
	if got, want := renderAngle(t, coord, 60), directDigest(t, testJob(t, dataset.Skull, 32, 64, 6, 60, false)); got != want {
		t.Fatalf("post-drain frame: digest %s != direct %s", got, want)
	}
	if got := counts[0].Load(); got != held {
		t.Errorf("drained node received %d placements after its in-flight batch", got-held)
	}
}

// TestChaosLeaseExpiryMidExchange: a node dies mid-exchange AND its lease
// expires before the retry. The re-placement consults a fresh membership
// view, so the retry never touches the evicted node and the bits hold.
func TestChaosLeaseExpiryMidExchange(t *testing.T) {
	clk := newChaosClock()
	reg := membership.New(membership.Config{HeartbeatInterval: time.Second, MissLimit: 3, Now: clk.Now})
	var addrs []string
	addrs, counts := countingWorkers(t, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Walk time forward keeping the survivor's lease fresh while our
			// own goes stale past the 3s TTL, then die mid-exchange: the
			// crash and the eviction land together.
			clk.Advance(2 * time.Second)
			_, _ = reg.Heartbeat(membership.HeartbeatRequest{Addr: addrs[1], Instance: "w1"})
			clk.Advance(2 * time.Second)
			panic(http.ErrAbortHandler)
		})
	})
	mustRegister(t, reg, addrs[0], "w0")
	mustRegister(t, reg, addrs[1], "w1")
	coord := newTestCoordinator(t, nil, func(c *CoordinatorConfig) { c.Registry = reg })

	job := testJob(t, dataset.Skull, 32, 64, 6, 75, false)
	want := directDigest(t, job)
	res, _, err := coord.Render(context.Background(), job)
	if err != nil {
		t.Fatalf("render across lease expiry: %v", err)
	}
	if got := res.Image.Digest(); got != want {
		t.Errorf("digest across lease expiry %s != direct %s", got, want)
	}
	if got := counts[0].Load(); got != 1 {
		t.Errorf("evicted node saw %d requests, want exactly the one that killed it", got)
	}
	st := reg.Stats()
	if st.Evictions < 1 {
		t.Errorf("no eviction recorded: %+v", st)
	}
	if st.Alive != 1 {
		t.Errorf("alive = %d after eviction, want 1", st.Alive)
	}
}

// TestChaosHeartbeatDelayedVsDead draws the line the lease defines: a
// beat delayed within the miss budget keeps a node placeable; silence
// past MissLimit × interval evicts it. Both sides render identical bits.
func TestChaosHeartbeatDelayedVsDead(t *testing.T) {
	clk := newChaosClock()
	reg := membership.New(membership.Config{HeartbeatInterval: time.Second, MissLimit: 3, Now: clk.Now})
	addrs, counts := countingWorkers(t, 2, nil)
	mustRegister(t, reg, addrs[0], "w0")
	mustRegister(t, reg, addrs[1], "w1")
	coord := newTestCoordinator(t, nil, func(c *CoordinatorConfig) { c.Registry = reg })

	// 2.5s of silence is two missed beats but inside the 3s lease: node 1
	// is delayed, not dead — still placed on.
	clk.Advance(2500 * time.Millisecond)
	mustBeat(t, reg, addrs[0], "w0")
	job := testJob(t, dataset.Skull, 32, 64, 6, 0, false)
	if got, want := renderAngle(t, coord, 0), directDigest(t, job); got != want {
		t.Fatalf("digest with delayed heartbeat %s != direct %s", got, want)
	}
	if counts[1].Load() == 0 {
		t.Error("delayed-but-live node was not placed on")
	}
	delayed := counts[1].Load()

	// One more second of silence crosses the lease: node 1 is dead.
	clk.Advance(time.Second)
	mustBeat(t, reg, addrs[0], "w0")
	job60 := testJob(t, dataset.Skull, 32, 64, 6, 60, false)
	if got, want := renderAngle(t, coord, 60), directDigest(t, job60); got != want {
		t.Fatalf("digest after eviction %s != direct %s", got, want)
	}
	if got := counts[1].Load(); got != delayed {
		t.Errorf("dead node received %d placements after eviction", got-delayed)
	}
	if st := reg.Stats(); st.Evictions != 1 || st.Alive != 1 {
		t.Errorf("stats after eviction = %+v", st)
	}
}

// TestChaosReRegisterAfterEviction: an evicted worker that comes back
// (new incarnation) rejoins the ring and is placed on again.
func TestChaosReRegisterAfterEviction(t *testing.T) {
	clk := newChaosClock()
	reg := membership.New(membership.Config{HeartbeatInterval: time.Second, MissLimit: 3, Now: clk.Now})
	addrs, counts := countingWorkers(t, 2, nil)
	mustRegister(t, reg, addrs[0], "w0")
	mustRegister(t, reg, addrs[1], "w1-gen1")

	// Node 1 goes silent past its lease and is evicted; node 0 keeps
	// beating inside the miss budget.
	clk.Advance(2 * time.Second)
	mustBeat(t, reg, addrs[0], "w0")
	clk.Advance(2 * time.Second)
	coord := newTestCoordinator(t, nil, func(c *CoordinatorConfig) { c.Registry = reg })
	job := testJob(t, dataset.Skull, 32, 64, 6, 0, false)
	if got, want := renderAngle(t, coord, 0), directDigest(t, job); got != want {
		t.Fatalf("digest on survivor %s != direct %s", got, want)
	}
	if counts[1].Load() != 0 {
		t.Fatal("evicted node was placed on")
	}

	// The worker restarts and re-registers as a fresh incarnation; its
	// old instance ID is fenced, the new one owns the lease.
	mustRegister(t, reg, addrs[1], "w1-gen2")
	if _, err := reg.Heartbeat(membership.HeartbeatRequest{Addr: addrs[1], Instance: "w1-gen1"}); !errors.Is(err, membership.ErrStaleInstance) {
		t.Fatalf("stale incarnation heartbeat = %v, want ErrStaleInstance", err)
	}
	job60 := testJob(t, dataset.Skull, 32, 64, 6, 60, false)
	if got, want := renderAngle(t, coord, 60), directDigest(t, job60); got != want {
		t.Fatalf("digest after rejoin %s != direct %s", got, want)
	}
	if counts[1].Load() == 0 {
		t.Error("rejoined worker never placed on")
	}
	st := reg.Stats()
	if st.Evictions < 1 || st.Rejoins < 1 {
		t.Errorf("stats after rejoin = %+v", st)
	}
}

// TestCoordinatorNoEligibleWorkers: an empty or fully-drained fleet fails
// with ErrNoWorkers (the server's local-fallback trigger), not a hang.
func TestCoordinatorNoEligibleWorkers(t *testing.T) {
	reg := membership.New(membership.Config{})
	coord := newTestCoordinator(t, nil, func(c *CoordinatorConfig) { c.Registry = reg })
	job := testJob(t, dataset.Skull, 24, 48, 2, 0, false)
	if _, _, err := coord.Render(context.Background(), job); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("empty registry render err = %v, want ErrNoWorkers", err)
	}

	addrs, _ := countingWorkers(t, 1, nil)
	mustRegister(t, reg, addrs[0], "w0")
	if _, _, err := coord.Render(context.Background(), job); err != nil {
		t.Fatalf("render with one member: %v", err)
	}
	if err := reg.Drain(addrs[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := coord.Render(context.Background(), job); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("fully-drained render err = %v, want ErrNoWorkers", err)
	}
}
