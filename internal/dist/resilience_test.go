package dist

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gvmr/internal/resilience"
	"gvmr/internal/volume/dataset"
)

// Overload-policy battery: circuit-breaker lifecycle under a wedged
// worker (deterministic via a fake breaker clock), retry-budget
// exhaustion failing fast, and the caller-cancel / deadline-abort
// classifications that must never count as node deaths. The rendering
// oracle everywhere is bit-identity against a direct render. Runs under
// -race in CI.

// TestCoordinatorDoesNotMarkDownOnCallerCancel: the caller abandoning a
// request tells us nothing about the worker's health. The node must not
// be marked down and its breaker must record no failure — otherwise a
// storm of impatient clients would open every breaker in the fleet.
func TestCoordinatorDoesNotMarkDownOnCallerCancel(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // client hung up
		case <-release:
		}
	}))
	defer srv.Close()
	defer close(release)

	coord := newTestCoordinator(t, []string{srv.URL}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, _, err := coord.post(ctx, time.Minute, srv.URL, MapPath, nil, "application/json", "")
	if err == nil {
		t.Fatal("cancelled post succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if got := coord.Stats().NodeDowns; got != 0 {
		t.Errorf("caller cancel marked %d nodes down", got)
	}
	if st := coord.BreakerState(srv.URL); st != resilience.StateClosed {
		t.Errorf("caller cancel moved breaker to %v", st)
	}
}

// TestCoordinatorDeadlineAbortNot504edNodeDown: a worker answering 504
// obeyed the deadline we set — that is the protocol working, not a
// fault. No node-down, no breaker failure, and the error wraps
// ErrDeadline so the render loop stops retrying doomed work.
func TestCoordinatorDeadlineAbortNotNodeDown(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "deadline expired", http.StatusGatewayTimeout)
	}))
	defer srv.Close()

	coord := newTestCoordinator(t, []string{srv.URL}, nil)
	_, _, err := coord.post(context.Background(), time.Second, srv.URL, MapPath, nil, "application/json", "")
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("504 error %v does not wrap ErrDeadline", err)
	}
	if got := coord.Stats().NodeDowns; got != 0 {
		t.Errorf("504 marked %d nodes down", got)
	}
	if st := coord.BreakerState(srv.URL); st != resilience.StateClosed {
		t.Errorf("504 moved breaker to %v", st)
	}
	if snap := coord.Resilience().Snapshot(); snap.DeadlineAborts < 1 {
		t.Errorf("deadline abort not counted: %+v", snap)
	}
}

// TestChaosBreakerLifecycle is the deterministic soak: a wedged worker
// (hard 500s) trips its breaker open; while open it costs nothing — no
// retries, no budget tokens, placement routes around it; after OpenFor
// on the fake clock a half-open probe readmits it and, healthy again,
// the breaker closes. Every surviving render is bit-identical to a
// direct render.
func TestChaosBreakerLifecycle(t *testing.T) {
	const seed = 20260808
	rng := rand.New(rand.NewSource(seed))
	t.Logf("chaos seed %d", seed)

	clk := newChaosClock()
	var wedged atomic.Bool
	wedged.Store(true)
	addrs := startWorkers(t, 3, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if wedged.Load() {
				http.Error(w, "wedged", http.StatusInternalServerError)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	coord := newTestCoordinator(t, addrs, func(c *CoordinatorConfig) {
		c.Breaker = resilience.BreakerConfig{
			MinRequests:  2,
			FailureRatio: 0.5,
			OpenFor:      5 * time.Second,
			CloseAfter:   1,
			Now:          clk.Now,
		}
	})
	render := func() {
		t.Helper()
		deg := float64(rng.Intn(360))
		job := testJob(t, dataset.Skull, 32, 64, 6, deg, false)
		if got, want := renderAngle(t, coord, deg), directDigest(t, job); got != want {
			t.Fatalf("frame at %v°: digest %s != direct %s", deg, got, want)
		}
	}

	// Phase 1 — wedged: renders survive on retries until two failures
	// land in the breaker window and it opens.
	opened := false
	for i := 0; i < 10 && !opened; i++ {
		render()
		opened = coord.BreakerState(addrs[0]) == resilience.StateOpen
	}
	if !opened {
		t.Fatal("breaker never opened on a hard-failing worker")
	}
	if snap := coord.Resilience().Snapshot(); snap.BreakerOpens < 1 {
		t.Fatalf("open not counted: %+v", snap)
	}

	// Phase 2 — open: the wedged worker is not placeable, so renders cost
	// zero retries (and therefore zero retry-budget tokens).
	retriesBefore := coord.Stats().Retries
	for i := 0; i < 3; i++ {
		render()
	}
	if d := coord.Stats().Retries - retriesBefore; d != 0 {
		t.Errorf("open breaker still cost %d retries", d)
	}

	// Phase 3 — recovery: heal the worker, advance past OpenFor; the
	// half-open probe succeeds and one success (CloseAfter=1) closes.
	wedged.Store(false)
	clk.Advance(6 * time.Second)
	if st := coord.BreakerState(addrs[0]); st != resilience.StateHalfOpen {
		t.Fatalf("after OpenFor breaker is %v, want half-open", st)
	}
	render()
	if st := coord.BreakerState(addrs[0]); st != resilience.StateClosed {
		t.Errorf("after healthy probe breaker is %v, want closed", st)
	}
	snap := coord.Resilience().Snapshot()
	if snap.HalfOpenProbes < 1 {
		t.Errorf("no half-open probe counted: %+v", snap)
	}
}

// TestRetryBudgetExhaustionFailsFast: with every worker hard-failing and
// breakers configured out of the way, the retry budget is the only
// backstop — the render must fail quickly with ErrRetryBudget instead of
// grinding through MaxAttempts everywhere.
func TestRetryBudgetExhaustionFailsFast(t *testing.T) {
	addrs := startWorkers(t, 2, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		})
	})
	coord := newTestCoordinator(t, addrs, func(c *CoordinatorConfig) {
		c.MaxAttempts = 100
		c.Breaker = resilience.BreakerConfig{MinRequests: 1 << 20} // never trips
		c.RetryBudget = resilience.BudgetConfig{Capacity: 2}
	})
	job := testJob(t, dataset.Skull, 24, 48, 2, 0, false)
	done := make(chan error, 1)
	go func() {
		_, _, err := coord.Render(context.Background(), job)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrRetryBudget) {
			t.Fatalf("error %v does not wrap ErrRetryBudget", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("budget-capped render hung")
	}
	snap := coord.Resilience().Snapshot()
	if snap.RetryBudgetExhausted < 1 {
		t.Errorf("exhaustion not counted: %+v", snap)
	}
	if retries := coord.Stats().Retries; retries > 2 {
		t.Errorf("%d retries spent against a budget of 2", retries)
	}
}
