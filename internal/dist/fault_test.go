package dist

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gvmr/internal/volume/dataset"
)

// Fault-injection suite: a worker killed mid-job, a straggler, and a
// corrupted response must each leave the rendered bytes untouched — the
// coordinator retries, re-places or hedges, and the final digest equals
// the single-process render's. Runs under -race in CI.

// TestWorkerDeathMidJobRetried kills node 0 at its first map request —
// the connection aborts mid-exchange, exactly like a process crash — and
// keeps it dead. The job must complete on the survivors with identical
// bits.
func TestWorkerDeathMidJobRetried(t *testing.T) {
	job := testJob(t, dataset.Skull, 32, 64, 6, 20, true)
	want := directDigest(t, job)

	var died atomic.Bool
	addrs := startWorkers(t, 3, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			died.Store(true)
			panic(http.ErrAbortHandler) // connection reset, no response
		})
	})
	coord := newTestCoordinator(t, addrs, nil)
	res, _, err := coord.Render(context.Background(), job)
	if err != nil {
		t.Fatalf("render with dead node: %v", err)
	}
	if got := res.Image.Digest(); got != want {
		t.Errorf("digest after node death %s != direct %s", got, want)
	}
	if !died.Load() {
		// 6 bricks over 3 nodes with bounded loads: every node gets 2.
		t.Fatal("placement sent node 0 nothing; nothing was killed")
	}
	st := coord.Stats()
	if st.Retries < 1 || st.NodeDowns < 1 {
		t.Errorf("death not recorded: %+v", st)
	}
}

// TestWorkerDeathMidResponse is the nastier variant: node 0 advertises a
// full response but the body truncates partway (the process died while
// streaming). The digest check catches it; the batch re-places.
func TestWorkerDeathMidResponse(t *testing.T) {
	job := testJob(t, dataset.Skull, 32, 64, 6, 45, false)
	want := directDigest(t, job)

	addrs := startWorkers(t, 3, func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			for k, v := range rec.Header() {
				w.Header()[k] = v
			}
			body := rec.Body.Bytes()
			w.WriteHeader(rec.Code)
			if len(body) > 8 {
				_, _ = w.Write(body[:len(body)/2])
				panic(http.ErrAbortHandler)
			}
			_, _ = w.Write(body)
		})
	})
	coord := newTestCoordinator(t, addrs, nil)
	res, _, err := coord.Render(context.Background(), job)
	if err != nil {
		t.Fatalf("render with truncating node: %v", err)
	}
	if got := res.Image.Digest(); got != want {
		t.Errorf("digest after truncated response %s != direct %s", got, want)
	}
	if st := coord.Stats(); st.Retries < 1 {
		t.Errorf("truncation not retried: %+v", st)
	}
}

// TestDelayedWorkerHedged wires a straggler: node 0 sits on every request
// for far longer than the hedge delay. The coordinator must duplicate the
// batch onto a healthy node, win the race there, and produce identical
// bits.
func TestDelayedWorkerHedged(t *testing.T) {
	job := testJob(t, dataset.Skull, 32, 64, 6, 70, true)
	want := directDigest(t, job)

	addrs := startWorkers(t, 3, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Read the request first (a real worker decodes the JSON
			// before rendering); only then does the server's background
			// read deliver the hedge winner's cancellation.
			body, _ := io.ReadAll(r.Body)
			select {
			case <-time.After(10 * time.Second):
			case <-r.Context().Done():
				return // hedge winner cancelled us
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			h.ServeHTTP(w, r)
		})
	})
	coord := newTestCoordinator(t, addrs, func(c *CoordinatorConfig) {
		c.HedgeAfter = 25 * time.Millisecond
	})
	start := time.Now()
	res, _, err := coord.Render(context.Background(), job)
	if err != nil {
		t.Fatalf("render with straggler: %v", err)
	}
	if got := res.Image.Digest(); got != want {
		t.Errorf("digest with hedging %s != direct %s", got, want)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("hedge did not rescue the straggler: render took %v", elapsed)
	}
	st := coord.Stats()
	if st.Hedges < 1 || st.HedgeWins < 1 {
		t.Errorf("no hedge recorded: %+v", st)
	}
}

// TestCorruptResponseRetried flips one payload byte on node 2's first
// response while keeping the advertised digest. The coordinator must
// detect the corruption, count it, and re-place the batch — bits
// identical.
func TestCorruptResponseRetried(t *testing.T) {
	job := testJob(t, dataset.Skull, 32, 64, 6, 110, false)
	want := directDigest(t, job)

	var corrupted atomic.Int64
	addrs := startWorkers(t, 3, func(i int, h http.Handler) http.Handler {
		if i != 2 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			if corrupted.Add(1) == 1 && len(body) > 10 {
				body[10] ^= 0x40 // silent bit flip, digest header untouched
			}
			for k, v := range rec.Header() {
				w.Header()[k] = v
			}
			w.WriteHeader(rec.Code)
			_, _ = w.Write(body)
		})
	})
	coord := newTestCoordinator(t, addrs, nil)
	res, _, err := coord.Render(context.Background(), job)
	if err != nil {
		t.Fatalf("render with corrupting node: %v", err)
	}
	if got := res.Image.Digest(); got != want {
		t.Errorf("digest after corruption %s != direct %s", got, want)
	}
	if corrupted.Load() >= 1 {
		if st := coord.Stats(); st.Corrupt < 1 || st.Retries < 1 {
			t.Errorf("corruption not detected/retried: %+v", st)
		}
	}
}

// TestAllWorkersDeadFailsFast: when every node is gone the job must fail
// with an error, not hang — the bounded-retry contract.
func TestAllWorkersDeadFailsFast(t *testing.T) {
	addrs := startWorkers(t, 2, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			panic(http.ErrAbortHandler)
		})
	})
	coord := newTestCoordinator(t, addrs, func(c *CoordinatorConfig) {
		c.MaxAttempts = 2
	})
	job := testJob(t, dataset.Skull, 24, 48, 2, 0, false)
	done := make(chan error, 1)
	go func() {
		_, _, err := coord.Render(context.Background(), job)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("render with every node dead succeeded")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("render with every node dead hung")
	}
}
