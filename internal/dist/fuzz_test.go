package dist

import (
	"bytes"
	"math"
	"testing"

	"gvmr/internal/composite"
	"gvmr/internal/core"
)

// FuzzDecodeStripes drives both wire decoders — the identity v1 payload
// and the columnar gvmr-cf1 transform — with arbitrary bytes. Two
// properties, beyond not panicking:
//
//   - v1 is a fixed point: the format has no slack (fixed-size records,
//     no varints), so any payload DecodeStripes accepts must re-encode
//     to the identical bytes;
//   - gvmr-cf1 round-trips semantically: a fuzzer-found payload may use
//     non-minimal varints or a different flate framing, so the invariant
//     is decode → re-compress → decode = the same fragments bit for bit
//     (NaN payloads included).
//
// The decompressed-size bound stays small so a crafted flate bomb costs
// the fuzzer nothing.
func FuzzDecodeStripes(f *testing.F) {
	seed := []core.BrickStripe{
		{Brick: 0, Frags: []composite.Fragment{
			{Key: 3, R: 0.25, G: 0.5, B: 0.125, A: 0.75, Depth: 1.5},
			{Key: 9, R: math.Float32frombits(0x7fc00001), A: 1, Depth: 2.25},
		}},
		{Brick: 2},
		{Brick: 5, Frags: []composite.Fragment{{Key: 0, A: 1, Depth: 0.5}}},
	}
	f.Add(EncodeStripes(seed))
	f.Add(CompressStripes(seed))
	f.Add(EncodeStripes(nil))
	f.Add(CompressStripes(nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 127})

	const maxBytes = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		if stripes, err := DecodeStripes(data); err == nil {
			if got := EncodeStripes(stripes); !bytes.Equal(got, data) {
				t.Fatalf("v1 decode/encode is not a fixed point: %d bytes in, %d out", len(data), len(got))
			}
		}
		if stripes, err := DecompressStripes(data, maxBytes); err == nil {
			back, err := DecompressStripes(CompressStripes(stripes), maxBytes)
			if err != nil {
				t.Fatalf("re-compressed payload failed to decode: %v", err)
			}
			if !stripesBitEqual(stripes, back) {
				t.Fatal("columnar re-compression changed fragment bits")
			}
		}
	})
}
