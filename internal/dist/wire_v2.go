package dist

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"

	"gvmr/internal/composite"
	"gvmr/internal/core"
)

// The list-aware stripe encodings. v1 (and gvmr-cf1) carry one key per
// fragment, which represents fragment lists only implicitly — a pixel
// appearing k times is a k-fragment list. The v2 layouts make per-pixel
// fragment counts explicit: each stripe is a sequence of (key, count)
// runs followed by keyless fragment records, so a reader knows every
// pixel's list length before touching the fragments and repeated keys
// cost 8 bytes per *run* instead of 4 bytes per fragment. Negotiated
// via the existing Accept-/Content-Encoding handshake: new coordinators
// offer v2 alongside the v1 encodings, old workers ignore the unknown
// tokens and answer v1/cf1, old coordinators never offer v2 — both
// directions interoperate.
const (
	// EncodingListV2 is the identity v2 layout.
	EncodingListV2 = "gvmr-v2"
	// EncodingColumnar2 is the columnar flate transform over the v2
	// layout (the cf1 transform with run headers instead of per-fragment
	// keys).
	EncodingColumnar2 = "gvmr-cf2"
)

// v2 identity payload format (all little-endian):
//
//	repeat per stripe, ascending unit ID:
//	  int32  unit ID
//	  int32  run count
//	  runs × (int32 pixel key, int32 fragment count ≥ 1)
//	  Σcounts × 20-byte fragments: float32 R,G,B,A, float32 depth
//
// Runs are maximal: adjacent runs in one stripe never share a key, and
// every count is at least 1. That makes the layout canonical — any
// payload DecodeStripesV2 accepts re-encodes to identical bytes, the
// fixed-point property FuzzDecodeStripesV2 holds.
const (
	v2StripeHeaderBytes = 8
	v2RunBytes          = 8
	v2FragBytes         = composite.FragmentBytes - 4 // keyless record
)

// stripeRuns calls fn for each maximal run of equal consecutive keys in
// frags: the per-pixel (key, count) spans the v2 layouts carry.
func stripeRuns(frags []composite.Fragment, fn func(key int32, count int)) {
	for i := 0; i < len(frags); {
		j := i + 1
		for j < len(frags) && frags[j].Key == frags[i].Key {
			j++
		}
		fn(frags[i].Key, j-i)
		i = j
	}
}

// countRuns returns the number of maximal equal-key runs in frags.
func countRuns(frags []composite.Fragment) int {
	n := 0
	stripeRuns(frags, func(int32, int) { n++ })
	return n
}

// EncodeStripesV2 serialises stripes into the identity v2 payload.
func EncodeStripesV2(stripes []core.BrickStripe) []byte {
	n := 0
	for _, s := range stripes {
		n += v2StripeHeaderBytes + countRuns(s.Frags)*v2RunBytes + len(s.Frags)*v2FragBytes
	}
	buf := make([]byte, n)
	off := 0
	for _, s := range stripes {
		binary.LittleEndian.PutUint32(buf[off:], uint32(int32(s.Brick)))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(int32(countRuns(s.Frags))))
		off += v2StripeHeaderBytes
		stripeRuns(s.Frags, func(key int32, count int) {
			binary.LittleEndian.PutUint32(buf[off:], uint32(key))
			binary.LittleEndian.PutUint32(buf[off+4:], uint32(int32(count)))
			off += v2RunBytes
		})
		for _, f := range s.Frags {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(f.R))
			binary.LittleEndian.PutUint32(buf[off+4:], math.Float32bits(f.G))
			binary.LittleEndian.PutUint32(buf[off+8:], math.Float32bits(f.B))
			binary.LittleEndian.PutUint32(buf[off+12:], math.Float32bits(f.A))
			binary.LittleEndian.PutUint32(buf[off+16:], math.Float32bits(f.Depth))
			off += v2FragBytes
		}
	}
	return buf
}

// DecodeStripesV2 parses an identity v2 payload. Like DecodeStripes it
// validates structure only, but structure here includes canonical form:
// run counts must be positive and adjacent runs must not share a key,
// so accepted payloads are exactly EncodeStripesV2's image.
func DecodeStripesV2(data []byte) ([]core.BrickStripe, error) {
	var stripes []core.BrickStripe
	off := 0
	for off < len(data) {
		if len(data)-off < v2StripeHeaderBytes {
			return nil, fmt.Errorf("dist: truncated v2 stripe header at byte %d", off)
		}
		brick := int32(binary.LittleEndian.Uint32(data[off:]))
		runs := int32(binary.LittleEndian.Uint32(data[off+4:]))
		off += v2StripeHeaderBytes
		if brick < 0 {
			return nil, fmt.Errorf("dist: negative unit ID %d", brick)
		}
		if runs < 0 || int64(runs)*v2RunBytes > int64(len(data)-off) {
			return nil, fmt.Errorf("dist: v2 stripe for unit %d claims %d runs beyond payload", brick, runs)
		}
		var total int64
		keys := make([]int32, runs)
		counts := make([]int32, runs)
		for i := int32(0); i < runs; i++ {
			keys[i] = int32(binary.LittleEndian.Uint32(data[off:]))
			counts[i] = int32(binary.LittleEndian.Uint32(data[off+4:]))
			off += v2RunBytes
			if counts[i] < 1 {
				return nil, fmt.Errorf("dist: v2 run %d of unit %d has count %d", i, brick, counts[i])
			}
			if i > 0 && keys[i] == keys[i-1] {
				return nil, fmt.Errorf("dist: v2 unit %d has non-maximal runs (key %d repeats)", brick, keys[i])
			}
			total += int64(counts[i])
		}
		if total*v2FragBytes > int64(len(data)-off) {
			return nil, fmt.Errorf("dist: v2 stripe for unit %d claims %d fragments beyond payload", brick, total)
		}
		s := core.BrickStripe{Brick: int(brick)}
		if total > 0 {
			s.Frags = make([]composite.Fragment, 0, total)
			for i := int32(0); i < runs; i++ {
				for c := int32(0); c < counts[i]; c++ {
					s.Frags = append(s.Frags, composite.Fragment{
						Key:   keys[i],
						R:     math.Float32frombits(binary.LittleEndian.Uint32(data[off:])),
						G:     math.Float32frombits(binary.LittleEndian.Uint32(data[off+4:])),
						B:     math.Float32frombits(binary.LittleEndian.Uint32(data[off+8:])),
						A:     math.Float32frombits(binary.LittleEndian.Uint32(data[off+12:])),
						Depth: math.Float32frombits(binary.LittleEndian.Uint32(data[off+16:])),
					})
					off += v2FragBytes
				}
			}
		}
		stripes = append(stripes, s)
	}
	return stripes, nil
}

// CompressStripesV2 serialises stripes into the EncodingColumnar2
// payload:
//
//	flate(
//	  uvarint stripe count
//	  repeat per stripe: uvarint unit ID, uvarint run count
//	  repeat per stripe: runs × (varint delta-coded key, uvarint count)
//	  5 channels × 4 byte planes × one byte per fragment
//	)
//
// The transform is cf1 with per-pixel run headers in place of
// per-fragment keys; it is lossless and exact, NaN payloads included.
func CompressStripesV2(stripes []core.BrickStripe) []byte {
	total := 0
	for _, s := range stripes {
		total += len(s.Frags)
	}
	var raw bytes.Buffer
	raw.Grow(len(stripes)*8 + total*(fragChannels*fragPlanes+1))
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { raw.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	putVarint := func(v int64) { raw.Write(tmp[:binary.PutVarint(tmp[:], v)]) }

	putUvarint(uint64(len(stripes)))
	for _, s := range stripes {
		putUvarint(uint64(uint32(int32(s.Brick))))
		putUvarint(uint64(countRuns(s.Frags)))
	}
	for _, s := range stripes {
		prev := int64(0)
		stripeRuns(s.Frags, func(key int32, count int) {
			putVarint(int64(key) - prev)
			prev = int64(key)
			putUvarint(uint64(count))
		})
	}
	planes := make([]byte, total*fragChannels*fragPlanes)
	i := 0
	for _, s := range stripes {
		for _, f := range s.Frags {
			bits := [fragChannels]uint32{
				math.Float32bits(f.R), math.Float32bits(f.G), math.Float32bits(f.B),
				math.Float32bits(f.A), math.Float32bits(f.Depth),
			}
			for c, b := range bits {
				for p := 0; p < fragPlanes; p++ {
					planes[(c*fragPlanes+p)*total+i] = byte(b >> (8 * p))
				}
			}
			i++
		}
	}
	raw.Write(planes)

	var out bytes.Buffer
	zw, _ := flate.NewWriter(&out, flate.BestCompression)
	_, _ = zw.Write(raw.Bytes()) // bytes.Buffer writes cannot fail
	_ = zw.Close()
	return out.Bytes()
}

// DecompressStripesV2 parses an EncodingColumnar2 payload. maxBytes
// bounds the decompressed size (zip-bomb guard); structural violations
// are errors, mirroring DecompressStripes. Canonical-form violations
// (zero counts, split runs) are rejected like DecodeStripesV2.
func DecompressStripesV2(data []byte, maxBytes int64) ([]core.BrickStripe, error) {
	zr := flate.NewReader(bytes.NewReader(data))
	defer zr.Close()
	raw, err := io.ReadAll(io.LimitReader(zr, maxBytes+1))
	if err != nil {
		return nil, fmt.Errorf("dist: %s inflate: %w", EncodingColumnar2, err)
	}
	if int64(len(raw)) > maxBytes {
		return nil, fmt.Errorf("dist: %s payload inflates beyond %d bytes", EncodingColumnar2, maxBytes)
	}
	pos := 0
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(raw[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("dist: %s truncated varint at byte %d", EncodingColumnar2, pos)
		}
		pos += n
		return v, nil
	}
	nStripes, err := uvarint()
	if err != nil {
		return nil, err
	}
	if nStripes > uint64(len(raw)-pos) {
		return nil, fmt.Errorf("dist: %s claims %d stripes in %d bytes", EncodingColumnar2, nStripes, len(raw)-pos)
	}
	stripes := make([]core.BrickStripe, nStripes)
	runCounts := make([]int, nStripes)
	var runTotal int64
	for i := range stripes {
		brick, err := uvarint()
		if err != nil {
			return nil, err
		}
		if brick > math.MaxInt32 {
			return nil, fmt.Errorf("dist: %s unit ID %d overflows int32", EncodingColumnar2, brick)
		}
		runs, err := uvarint()
		if err != nil {
			return nil, err
		}
		// A run costs at least two header bytes (key varint + count
		// uvarint) plus one fragment's plane bytes.
		if runs > uint64(len(raw)-pos)/(fragChannels*fragPlanes+2) {
			return nil, fmt.Errorf("dist: %s stripe for unit %d claims %d runs beyond payload", EncodingColumnar2, brick, runs)
		}
		stripes[i].Brick = int(int32(brick))
		runCounts[i] = int(runs)
		runTotal += int64(runs)
	}
	if runTotal*(fragChannels*fragPlanes+2) > int64(len(raw)-pos) {
		return nil, fmt.Errorf("dist: %s claims %d runs beyond payload", EncodingColumnar2, runTotal)
	}
	var total int64
	type run struct {
		key   int32
		count int64
	}
	runs := make([][]run, nStripes)
	for i := range stripes {
		if runCounts[i] == 0 {
			continue
		}
		rs := make([]run, runCounts[i])
		prev := int64(0)
		for j := range rs {
			d, n := binary.Varint(raw[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("dist: %s truncated key varint at byte %d", EncodingColumnar2, pos)
			}
			pos += n
			k := prev + d
			if k < math.MinInt32 || k > math.MaxInt32 {
				return nil, fmt.Errorf("dist: %s key %d overflows int32", EncodingColumnar2, k)
			}
			if j > 0 && int32(k) == rs[j-1].key {
				return nil, fmt.Errorf("dist: %s unit %d has non-maximal runs (key %d repeats)", EncodingColumnar2, stripes[i].Brick, k)
			}
			count, err := uvarint()
			if err != nil {
				return nil, err
			}
			if count < 1 {
				return nil, fmt.Errorf("dist: %s run %d of unit %d has count 0", EncodingColumnar2, j, stripes[i].Brick)
			}
			// No run can hold more fragments than the plane section could.
			if count > uint64(len(raw))/(fragChannels*fragPlanes)+1 {
				return nil, fmt.Errorf("dist: %s run claims %d fragments beyond payload", EncodingColumnar2, count)
			}
			rs[j] = run{key: int32(k), count: int64(count)}
			prev = k
			total += int64(count)
		}
		runs[i] = rs
	}
	if int64(len(raw)-pos) != total*fragChannels*fragPlanes {
		return nil, fmt.Errorf("dist: %s plane section is %d bytes, want %d", EncodingColumnar2, len(raw)-pos, total*fragChannels*fragPlanes)
	}
	planes := raw[pos:]
	i := 0
	for si := range stripes {
		var frags []composite.Fragment
		for _, r := range runs[si] {
			for c := int64(0); c < r.count; c++ {
				var bits [fragChannels]uint32
				for ch := 0; ch < fragChannels; ch++ {
					for p := 0; p < fragPlanes; p++ {
						bits[ch] |= uint32(planes[(ch*fragPlanes+p)*int(total)+i]) << (8 * p)
					}
				}
				frags = append(frags, composite.Fragment{
					Key:   r.key,
					R:     math.Float32frombits(bits[0]),
					G:     math.Float32frombits(bits[1]),
					B:     math.Float32frombits(bits[2]),
					A:     math.Float32frombits(bits[3]),
					Depth: math.Float32frombits(bits[4]),
				})
				i++
			}
		}
		stripes[si].Frags = frags
	}
	if nStripes == 0 {
		return nil, nil
	}
	return stripes, nil
}

// SanitizeStripes strips placeholder fragments from stripes and returns
// the clean stripes plus the number stripped. Placeholders are a
// kernel-internal sentinel (§3.1.1 cost parity) that every emit path
// already drops before recording stripes, so a placeholder here means a
// bug upstream — the worker strips it rather than shipping it (a NaN
// depth would survive compositing as a no-op, but the wire contract
// says stripes carry only surviving fragments) and surfaces the count
// in /stats. Stripes are only copied when a placeholder is found.
func SanitizeStripes(stripes []core.BrickStripe) ([]core.BrickStripe, int) {
	stripped := 0
	var out []core.BrickStripe
	for i, s := range stripes {
		dirty := false
		for _, f := range s.Frags {
			if f.IsPlaceholder() {
				dirty = true
				break
			}
		}
		if !dirty {
			if out != nil {
				out = append(out, s)
			}
			continue
		}
		if out == nil {
			out = append(out, stripes[:i]...)
		}
		clean := core.BrickStripe{Brick: s.Brick, Frags: make([]composite.Fragment, 0, len(s.Frags))}
		for _, f := range s.Frags {
			if f.IsPlaceholder() {
				stripped++
				continue
			}
			clean.Frags = append(clean.Frags, f)
		}
		out = append(out, clean)
	}
	if out == nil {
		return stripes, 0
	}
	return out, stripped
}

// acceptsEncoding reports whether an Accept-Encoding header value offers
// the named encoding.
func acceptsEncoding(header, name string) bool {
	for _, tok := range strings.Split(header, ",") {
		if n, _, _ := strings.Cut(strings.TrimSpace(tok), ";"); strings.TrimSpace(n) == name {
			return true
		}
	}
	return false
}

// negotiateEncoding picks the stripe encoding for a response given the
// request's Accept-Encoding: the densest mutually-understood layout,
// preferring compressed over identity and v2 (explicit per-pixel
// counts) over v1. An empty result is the identity v1 payload every
// daemon understands.
func negotiateEncoding(acceptHeader string) string {
	for _, enc := range []string{EncodingColumnar2, EncodingColumnar, EncodingListV2} {
		if acceptsEncoding(acceptHeader, enc) {
			return enc
		}
	}
	return ""
}

// EncodePayloadAs serialises stripes in the given negotiated encoding
// ("" = identity v1).
func EncodePayloadAs(stripes []core.BrickStripe, encoding string) ([]byte, error) {
	switch encoding {
	case "", "identity":
		return EncodeStripes(stripes), nil
	case EncodingListV2:
		return EncodeStripesV2(stripes), nil
	case EncodingColumnar:
		return CompressStripes(stripes), nil
	case EncodingColumnar2:
		return CompressStripesV2(stripes), nil
	default:
		return nil, fmt.Errorf("dist: unsupported stripe encoding %q", encoding)
	}
}
