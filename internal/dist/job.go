// Package dist crosses the process boundary: it shards one render job's
// brick map-tasks across remote gvmrd worker nodes over HTTP and
// composites the returned fragment stripes locally — the paper's
// direct-send MapReduce topology stretched over a real network, in the
// mold of Hassan et al.'s distributed GPU framework (brick renderers +
// direct-send compositing on a display node).
//
// The split is exact: a worker node runs core.MapBricks for its assigned
// brick IDs (the map phase, bit-identical per brick to a single-process
// render), ships each brick's surviving fragments back as a depth-tagged
// stripe (raw little-endian float32, like /render's format=raw), and the
// coordinator composites all stripes with internal/composite. Because
// stripes are canonical per brick — emission order, placement-independent
// — the final image is byte-identical to the single-process render no
// matter how bricks are placed, re-placed after a node death, or hedged
// (DESIGN.md §9 gives the argument; the distributed golden tests enforce
// it against the committed digests).
package dist

import (
	"fmt"
	"math"

	"gvmr/internal/camera"
	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/transfer"
	"gvmr/internal/vec"
	"gvmr/internal/volume/dataset"
)

// CameraSpec is an exact wire encoding of a camera: the float32 fields
// round-trip bit-for-bit through JSON (encoding/json emits the shortest
// decimal that reparses to the same bits), so coordinator and worker
// construct identical cameras and therefore identical rays.
type CameraSpec struct {
	Eye    [3]float32 `json:"eye"`
	Center [3]float32 `json:"center"`
	Up     [3]float32 `json:"up"`
	FovY   float64    `json:"fovy"`
}

// CameraFrom captures a camera's defining fields.
func CameraFrom(c *camera.Camera) CameraSpec {
	return CameraSpec{
		Eye:    [3]float32{c.Eye.X, c.Eye.Y, c.Eye.Z},
		Center: [3]float32{c.Center.X, c.Center.Y, c.Center.Z},
		Up:     [3]float32{c.Up.X, c.Up.Y, c.Up.Z},
		FovY:   c.FovY,
	}
}

func v3(a [3]float32) vec.V3 { return vec.V3{X: a[0], Y: a[1], Z: a[2]} }

// Camera reconstructs the camera for a width×height image. camera.New
// derives the basis deterministically from these fields, so the result is
// interchangeable with the original.
func (cs CameraSpec) Camera(width, height int) (*camera.Camera, error) {
	return camera.New(v3(cs.Eye), v3(cs.Center), v3(cs.Up), cs.FovY, width, height)
}

func (cs CameraSpec) validate() error {
	for _, f := range []float32{
		cs.Eye[0], cs.Eye[1], cs.Eye[2],
		cs.Center[0], cs.Center[1], cs.Center[2],
		cs.Up[0], cs.Up[1], cs.Up[2],
	} {
		f64 := float64(f)
		if math.IsNaN(f64) || math.IsInf(f64, 0) {
			return fmt.Errorf("dist: non-finite camera field %v", f)
		}
	}
	if !(cs.FovY > 0 && cs.FovY < math.Pi) {
		return fmt.Errorf("dist: fovY %v outside (0, π)", cs.FovY)
	}
	return nil
}

// JobSpec addresses one distributed frame: a built-in dataset (which also
// selects the transfer-function preset), the image size, the exact
// camera, and the quality knobs — the same identity the render service's
// request key canonicalises, with the camera resolved to explicit floats
// so the wire form renders any view (orbit frames and the golden suite's
// fitted default alike).
type JobSpec struct {
	Dataset string `json:"dataset"`
	Edge    int    `json:"edge"`
	Width   int    `json:"width"`
	Height  int    `json:"height"`
	// GPUs sizes the job's virtual cluster: the brick grid is planned for
	// this many devices, exactly as a single-process render with
	// Options.GPUs would plan it. It is independent of how many GPUs any
	// individual worker node has.
	GPUs    int  `json:"gpus"`
	Shading bool `json:"shading,omitempty"`

	StepVoxels       float32 `json:"step_voxels,omitempty"`
	TerminationAlpha float32 `json:"termination_alpha,omitempty"`

	// BricksPerGPU scales the bricking policy exactly like
	// Options.BricksPerGPU (0 means the default 1). omitempty keeps
	// default jobs decodable by daemons that predate the field —
	// MapRequest decoding disallows unknown fields, so only jobs that
	// actually use the knob require upgraded workers.
	BricksPerGPU int `json:"bricks_per_gpu,omitempty"`

	// Partition, when non-nil, groups the grid's bricks into possibly
	// non-convex map units (map-task IDs become unit IDs and stripes
	// carry per-pixel fragment lists). nil is the convex default and
	// keeps the wire form identical to pre-partition daemons.
	Partition *PartitionSpec `json:"partition,omitempty"`

	Camera CameraSpec `json:"camera"`
}

// PartitionSpec names a registered partition scheme on the wire. Both
// sides build the same core.Partition from it, which is what lets the
// coordinator and its workers agree on unit tables without shipping
// code. Workers that predate partitions reject jobs carrying one with a
// 400 (unknown field) — a loud, safe failure the coordinator surfaces
// without marking the node down.
type PartitionSpec struct {
	// Scheme is a name registered with core.RegisterPartition
	// (builtin: "interleave").
	Scheme string `json:"scheme"`
	// Parts is the requested unit count, in [2, 4096].
	Parts int `json:"parts"`
}

// Build constructs the named partition.
func (p *PartitionSpec) Build() (core.Partition, error) {
	if p == nil {
		return nil, nil
	}
	return core.BuildPartition(p.Scheme, p.Parts)
}

// Validate bounds the job against worker-side limits (mirroring the
// render service's request limits: maxEdge caps the dataset cube edge,
// maxPixels the image area).
func (j JobSpec) Validate(maxEdge, maxPixels int) error {
	known := false
	for _, n := range dataset.Names() {
		if n == j.Dataset {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("dist: unknown dataset %q (have %v)", j.Dataset, dataset.Names())
	}
	if j.Edge < 8 || j.Edge > maxEdge {
		return fmt.Errorf("dist: edge %d outside [8, %d]", j.Edge, maxEdge)
	}
	maxPx := int64(maxPixels)
	if j.Width < 1 || j.Height < 1 ||
		int64(j.Width) > maxPx || int64(j.Height) > maxPx ||
		int64(j.Width)*int64(j.Height) > maxPx {
		return fmt.Errorf("dist: image %dx%d outside (0, %d] pixels", j.Width, j.Height, maxPixels)
	}
	if j.GPUs < 1 || j.GPUs > 1024 {
		return fmt.Errorf("dist: %d GPUs outside [1, 1024]", j.GPUs)
	}
	if !(float64(j.StepVoxels) >= 0.01 && float64(j.StepVoxels) <= 16) {
		return fmt.Errorf("dist: step %v outside [0.01, 16]", j.StepVoxels)
	}
	if !(j.TerminationAlpha > 0 && j.TerminationAlpha <= 1) {
		return fmt.Errorf("dist: termination alpha %v outside (0, 1]", j.TerminationAlpha)
	}
	if j.BricksPerGPU < 0 || j.BricksPerGPU > 64 {
		return fmt.Errorf("dist: bricks-per-gpu %d outside [0, 64]", j.BricksPerGPU)
	}
	if _, err := j.Partition.Build(); err != nil {
		return err
	}
	return j.Camera.validate()
}

// Options builds the render options for this job. Both sides of the wire
// use it, which is what makes the coordinator's grid plan and the
// worker's agree.
func (j JobSpec) Options() (core.Options, error) {
	src, err := dataset.New(j.Dataset, dataset.PaperDims(j.Dataset, j.Edge))
	if err != nil {
		return core.Options{}, err
	}
	tf, err := transfer.Preset(dataset.TFName(j.Dataset))
	if err != nil {
		return core.Options{}, err
	}
	cam, err := j.Camera.Camera(j.Width, j.Height)
	if err != nil {
		return core.Options{}, err
	}
	part, err := j.Partition.Build()
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Source: src, TF: tf,
		Width: j.Width, Height: j.Height,
		Camera:           cam,
		GPUs:             j.GPUs,
		Shading:          j.Shading,
		StepVoxels:       j.StepVoxels,
		TerminationAlpha: j.TerminationAlpha,
		BricksPerGPU:     j.BricksPerGPU,
		Partition:        part,
	}, nil
}

// PlanSpec is the hardware description the job's grid is planned against:
// the calibrated AC cluster sized to the job's GPU count. Coordinator and
// workers both plan with it (workers via their own spec, which must carry
// the same GPU model — the grid-counts cross-check in the map request
// turns any divergence into a loud error instead of silently different
// bricks).
func (j JobSpec) PlanSpec() cluster.Spec { return cluster.AC(j.GPUs) }
