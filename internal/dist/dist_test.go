package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/composite"
	"gvmr/internal/core"
	"gvmr/internal/mapreduce"
	"gvmr/internal/volume/dataset"
)

// testJob builds a JobSpec for a built-in dataset at `degrees` along the
// fitted orbit.
func testJob(t *testing.T, name string, edge, size, gpus int, degrees float64, shading bool) JobSpec {
	t.Helper()
	src, err := dataset.New(name, dataset.PaperDims(name, edge))
	if err != nil {
		t.Fatal(err)
	}
	cam, err := core.OrbitCamera(src, size, size, degrees)
	if err != nil {
		t.Fatal(err)
	}
	return JobSpec{
		Dataset: name, Edge: edge, Width: size, Height: size,
		GPUs: gpus, Shading: shading,
		StepVoxels: 1, TerminationAlpha: 0.98,
		Camera: CameraFrom(cam),
	}
}

// startWorkers spins n in-process worker nodes, each a 1-GPU machine.
func startWorkers(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		wk, err := NewWorker(WorkerConfig{Spec: cluster.AC(1)})
		if err != nil {
			t.Fatal(err)
		}
		var h http.Handler = wk
		if wrap != nil {
			h = wrap(i, h)
		}
		mux := http.NewServeMux()
		mux.Handle(MapPath, h)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return addrs
}

func newTestCoordinator(t *testing.T, addrs []string, mut func(*CoordinatorConfig)) *Coordinator {
	t.Helper()
	cfg := CoordinatorConfig{Nodes: addrs}
	if mut != nil {
		mut(&cfg)
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func directDigest(t *testing.T, job JobSpec) string {
	t.Helper()
	opt, err := job.Options()
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := core.RenderOn(job.PlanSpec(), opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res.Image.Digest()
}

// TestDistributedMatchesDirect is the core contract: for every built-in
// dataset, a render sharded over 1, 2 and 3 worker nodes produces the
// byte-exact image of a single-process render of the same job.
func TestDistributedMatchesDirect(t *testing.T) {
	for _, name := range dataset.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			job := testJob(t, name, 24, 48, 2, 30, name == dataset.Skull)
			want := directDigest(t, job)
			for _, workers := range []int{1, 2, 3} {
				addrs := startWorkers(t, workers, nil)
				coord := newTestCoordinator(t, addrs, nil)
				res, _, err := coord.Render(context.Background(), job)
				if err != nil {
					t.Fatalf("%d workers: %v", workers, err)
				}
				if got := res.Image.Digest(); got != want {
					t.Errorf("%d workers: digest %s != direct %s", workers, got, want)
				}
				if res.Runtime <= 0 {
					t.Errorf("%d workers: non-positive virtual runtime %v", workers, res.Runtime)
				}
			}
		})
	}
}

// TestCompositeStrategiesAndPartitionersAgree locks the coordinator-side
// reduce invariance: every partitioner, any reducer count, and both the
// direct-send and pairwise-merge strategies produce identical bytes.
func TestCompositeStrategiesAndPartitionersAgree(t *testing.T) {
	job := testJob(t, dataset.Skull, 24, 48, 2, 60, true)
	want := directDigest(t, job)
	addrs := startWorkers(t, 2, nil)
	cases := []struct {
		label string
		mut   func(*CoordinatorConfig)
	}{
		{"roundrobin", nil},
		{"striped", func(c *CoordinatorConfig) {
			c.Partitioner = mapreduce.Striped{Width: 48, StripeHeight: 4}
			c.Reducers = 3
		}},
		{"checkerboard", func(c *CoordinatorConfig) {
			c.Partitioner = mapreduce.Checkerboard{Width: 48, Tile: 8}
			c.Reducers = 5
		}},
		{"pairwise-merge", func(c *CoordinatorConfig) {
			c.MergeFallbackBytes = 1 // everything over 1 byte merges pairwise
		}},
		{"merge-disabled", func(c *CoordinatorConfig) {
			c.MergeFallbackBytes = -1
		}},
	}
	for _, tc := range cases {
		coord := newTestCoordinator(t, addrs, tc.mut)
		res, _, err := coord.Render(context.Background(), job)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		if got := res.Image.Digest(); got != want {
			t.Errorf("%s: digest %s != direct %s", tc.label, got, want)
		}
	}
}

// TestVirtualTimeScalesWithWorkers: with 1-GPU nodes, a 4-brick job's
// map phase must get faster in virtual time as nodes are added (the
// distributed scaling claim distbench records). The per-job fixed
// overhead (250ms, paid node-parallel) dwarfs map work at test scale, so
// the assertion is on the map component of the breakdown.
func TestVirtualTimeScalesWithWorkers(t *testing.T) {
	job := testJob(t, dataset.Skull, 32, 64, 4, 0, false)
	mapVirtual := map[int]float64{}
	for _, workers := range []int{1, 2, 4} {
		addrs := startWorkers(t, workers, nil)
		coord := newTestCoordinator(t, addrs, nil)
		res, bd, err := coord.RenderDetailed(context.Background(), job)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if got := bd.Map + bd.Wire + bd.Reduce; got != res.Runtime {
			t.Errorf("%d workers: breakdown sum %v != runtime %v", workers, got, res.Runtime)
		}
		// One batch per node that received bricks; the consistent hash
		// may leave a node empty when bricks are few.
		if bd.Fragments <= 0 || bd.WireBytes <= 0 || bd.Batches < 1 || bd.Batches > int64(workers) {
			t.Errorf("%d workers: implausible breakdown %+v", workers, bd)
		}
		mapVirtual[workers] = bd.Map.Seconds()
	}
	if !(mapVirtual[2] < mapVirtual[1]) {
		t.Errorf("2-worker map virtual %v not faster than 1-worker %v", mapVirtual[2], mapVirtual[1])
	}
	if !(mapVirtual[4] < mapVirtual[2]) {
		t.Errorf("4-worker map virtual %v not faster than 2-worker %v", mapVirtual[4], mapVirtual[2])
	}
}

// TestPlacementAffinity: the same brick of the same job identity maps to
// the same node across frames (staging-cache affinity), and placement
// covers all nodes for a many-brick job.
func TestPlacementAffinity(t *testing.T) {
	r := newRing([]string{"a:1", "b:1", "c:1"}, 0)
	jobA := JobSpec{Dataset: dataset.Skull, Edge: 32, GPUs: 8}
	jobB := jobA
	jobB.Camera.FovY = 1 // different view, same identity fields
	seen := map[int]bool{}
	for brick := 0; brick < 64; brick++ {
		seqA := r.sequence(brickKey(jobA, brick))
		seqB := r.sequence(brickKey(jobB, brick))
		if len(seqA) != 3 || len(seqB) != 3 {
			t.Fatalf("brick %d: sequence lengths %d/%d", brick, len(seqA), len(seqB))
		}
		if seqA[0] != seqB[0] {
			t.Errorf("brick %d: camera changed placement %d -> %d", brick, seqA[0], seqB[0])
		}
		seen[seqA[0]] = true
		// A sequence is a permutation of all nodes.
		perm := map[int]bool{}
		for _, n := range seqA {
			perm[n] = true
		}
		if len(perm) != 3 {
			t.Errorf("brick %d: sequence %v is not a permutation", brick, seqA)
		}
	}
	if len(seen) != 3 {
		t.Errorf("64 bricks landed on %d of 3 nodes", len(seen))
	}
}

func TestWireRoundTrip(t *testing.T) {
	stripes := []core.BrickStripe{
		{Brick: 0, Frags: []composite.Fragment{
			{Key: 3, R: 0.25, G: 0.5, B: 0.125, A: 0.75, Depth: 1.5},
			{Key: 9, R: 0, G: 0, B: 0, A: 0, Depth: 2.25}, // transparent black survives the wire
		}},
		{Brick: 2}, // empty stripe
		{Brick: 5, Frags: []composite.Fragment{{Key: 0, A: 1, Depth: 0.5}}},
	}
	payload := EncodeStripes(stripes)
	back, err := DecodeStripes(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(stripes) {
		t.Fatalf("round trip %d stripes != %d", len(back), len(stripes))
	}
	for i := range stripes {
		if back[i].Brick != stripes[i].Brick || len(back[i].Frags) != len(stripes[i].Frags) {
			t.Fatalf("stripe %d shape mismatch", i)
		}
		for j := range stripes[i].Frags {
			if back[i].Frags[j] != stripes[i].Frags[j] {
				t.Errorf("fragment %d/%d changed: %+v != %+v", i, j, back[i].Frags[j], stripes[i].Frags[j])
			}
		}
	}
	if PayloadDigest(payload) != PayloadDigest(EncodeStripes(back)) {
		t.Error("re-encoding changed the payload bytes")
	}
}

func TestDecodeStripesRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"truncated header":  {1, 2, 3},
		"overlong count":    {0, 0, 0, 0, 255, 255, 255, 127},
		"negative brick id": {255, 255, 255, 255, 0, 0, 0, 0},
	}
	for name, data := range cases {
		if _, err := DecodeStripes(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestGridPlanMismatchRejected: a worker whose plan disagrees must refuse
// the batch loudly.
func TestGridPlanMismatchRejected(t *testing.T) {
	wk, err := NewWorker(WorkerConfig{Spec: cluster.AC(1)})
	if err != nil {
		t.Fatal(err)
	}
	job := testJob(t, dataset.Skull, 24, 48, 2, 0, false)
	_, _, _, err = wk.Map(MapRequest{Job: job, Bricks: []int{0}, GridCounts: [3]int{7, 7, 7}})
	if err == nil {
		t.Fatal("mismatched grid plan accepted")
	}
}

// TestJobValidation exercises the worker-side limits.
func TestJobValidation(t *testing.T) {
	good := testJob(t, dataset.Skull, 24, 48, 2, 0, false)
	if err := good.Validate(512, 4096*4096); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	mutations := map[string]func(*JobSpec){
		"unknown dataset": func(j *JobSpec) { j.Dataset = "nope" },
		"tiny edge":       func(j *JobSpec) { j.Edge = 4 },
		"huge edge":       func(j *JobSpec) { j.Edge = 100000 },
		"zero width":      func(j *JobSpec) { j.Width = 0 },
		"pixel overflow":  func(j *JobSpec) { j.Width = 1 << 30; j.Height = 1 << 30 },
		"zero gpus":       func(j *JobSpec) { j.GPUs = 0 },
		"nan step":        func(j *JobSpec) { j.StepVoxels = float32(nan()) },
		"bad alpha":       func(j *JobSpec) { j.TerminationAlpha = 2 },
		"nan camera":      func(j *JobSpec) { j.Camera.Eye[0] = float32(nan()) },
		"bad fov":         func(j *JobSpec) { j.Camera.FovY = 4 },
	}
	for name, mut := range mutations {
		j := good
		mut(&j)
		if err := j.Validate(512, 4096*4096); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func nan() float64 { var z float64; return z / z }

// TestCoordinatorContextCancel: a cancelled job context fails fast rather
// than hanging on slow workers.
func TestCoordinatorContextCancel(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	addrs := startWorkers(t, 1, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-block:
			case <-r.Context().Done():
			}
			h.ServeHTTP(w, r)
		})
	})
	coord := newTestCoordinator(t, addrs, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	job := testJob(t, dataset.Skull, 24, 48, 2, 0, false)
	if _, _, err := coord.Render(ctx, job); err == nil {
		t.Fatal("cancelled render returned no error")
	}
}
