package dist

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over worker nodes. Placement serves two
// masters: staging-cache affinity (the same brick of the same dataset
// lands on the same node frame after frame, so the node's staging cache
// and macrocell grids stay hot) and stability under membership change (a
// node death moves only that node's arc, not every brick). Each node
// projects `replicas` virtual points onto the ring; a key walks clockwise
// from its hash and takes nodes in the order their points appear — that
// walk is also the deterministic re-placement order when the first choice
// is down.
type ring struct {
	points []ringPoint
	nodes  int
}

type ringPoint struct {
	hash uint64
	node int
}

func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	// FNV-1a alone avalanches poorly for short keys differing only in
	// their trailing characters (the last byte gets a single multiply),
	// which clusters a node's virtual points — and similar brick keys —
	// into contiguous arcs. The Murmur3 finalizer spreads them.
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func newRing(addrs []string, replicas int) *ring {
	if replicas < 1 {
		replicas = 64
	}
	r := &ring{nodes: len(addrs)}
	for i, a := range addrs {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", a, v)), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// sequence returns every node exactly once, in the order their virtual
// points appear walking clockwise from key's hash: element 0 is the
// primary placement, the rest the failover order.
func (r *ring) sequence(key string) []int {
	if r.nodes == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= hash64(key)
	})
	seq := make([]int, 0, r.nodes)
	seen := make([]bool, r.nodes)
	for i := 0; i < len(r.points) && len(seq) < r.nodes; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			seq = append(seq, p.node)
		}
	}
	return seq
}

// brickKey is the placement key of one brick of one job identity. It
// hashes the dataset identity and brick ID but NOT the camera: every
// frame of an orbit places brick i on the same node, which is exactly the
// staging-cache affinity the ring exists for.
func brickKey(j JobSpec, brick int) string {
	return fmt.Sprintf("%s|e%d|g%d|b%d", j.Dataset, j.Edge, j.GPUs, brick)
}
