package dist

import (
	"bytes"
	"math"
	"testing"

	"gvmr/internal/composite"
	"gvmr/internal/core"
)

// listStripes is a fixture with per-pixel fragment lists: pixel 7 of
// unit 1 appears three times (a ray re-entering a non-convex unit), a
// NaN payload channel rides along, and one stripe is empty.
func listStripes() []core.BrickStripe {
	return []core.BrickStripe{
		{Brick: 1, Frags: []composite.Fragment{
			{Key: 7, R: 0.25, G: 0.5, B: 0.125, A: 0.75, Depth: 1.5},
			{Key: 7, R: 0.1, A: 0.5, Depth: 2.5},
			{Key: 7, G: math.Float32frombits(0x7fc00001), A: 1, Depth: 3.5},
			{Key: 9, A: 1, Depth: 0.5},
			{Key: 7, B: 0.375, A: 0.25, Depth: 4.5}, // second run of key 7
		}},
		{Brick: 3},
		{Brick: 4, Frags: []composite.Fragment{{Key: 0, A: 1, Depth: 0.25}}},
	}
}

func TestStripesV2RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name    string
		stripes []core.BrickStripe
	}{
		{"lists", listStripes()},
		{"nil", nil},
		{"empty-stripe", []core.BrickStripe{{Brick: 0}}},
	} {
		payload := EncodeStripesV2(tc.stripes)
		back, err := DecodeStripesV2(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if !stripesBitEqual(tc.stripes, back) && !(len(tc.stripes) == 0 && len(back) == 0) {
			t.Fatalf("%s: v2 round trip changed stripes", tc.name)
		}
		// Canonical form: re-encoding the decode is the identity.
		if again := EncodeStripesV2(back); !bytes.Equal(again, payload) {
			t.Fatalf("%s: v2 re-encode is not a fixed point", tc.name)
		}
	}
}

func TestStripesV2RunHeadersCompact(t *testing.T) {
	// 64 fragments of one pixel = one run: v2 spends 8 bytes on keys
	// where v1 spends 4 per fragment.
	frags := make([]composite.Fragment, 64)
	for i := range frags {
		frags[i] = composite.Fragment{Key: 42, A: 1, Depth: float32(i)}
	}
	s := []core.BrickStripe{{Brick: 0, Frags: frags}}
	v1 := EncodeStripes(s)
	v2 := EncodeStripesV2(s)
	if len(v2) >= len(v1) {
		t.Fatalf("v2 (%d bytes) not denser than v1 (%d bytes) on a long run", len(v2), len(v1))
	}
	wantV2 := v2StripeHeaderBytes + v2RunBytes + 64*v2FragBytes
	if len(v2) != wantV2 {
		t.Fatalf("v2 payload is %d bytes, want %d", len(v2), wantV2)
	}
}

func TestCompressStripesV2RoundTrip(t *testing.T) {
	s := listStripes()
	payload := CompressStripesV2(s)
	back, err := DecompressStripesV2(payload, 1<<20)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !stripesBitEqual(s, back) {
		t.Fatal("cf2 round trip changed fragment bits")
	}
	if got, err := DecompressStripesV2(CompressStripesV2(nil), 1<<20); err != nil || got != nil {
		t.Fatalf("empty cf2 payload: got %v, %v", got, err)
	}
}

func TestDecodeStripesV2Rejects(t *testing.T) {
	good := EncodeStripesV2(listStripes())
	cases := map[string][]byte{
		"truncated header":  good[:5],
		"truncated runs":    good[:v2StripeHeaderBytes+3],
		"truncated payload": good[:len(good)-1],
	}
	// Zero-count run: unit 0, 1 run, (key 5, count 0).
	zero := make([]byte, v2StripeHeaderBytes+v2RunBytes)
	zero[4] = 1 // run count 1
	zero[8] = 5 // key 5, count stays 0
	cases["zero-count run"] = zero
	// Non-maximal runs: two adjacent runs with the same key.
	split := append([]byte(nil), EncodeStripesV2([]core.BrickStripe{{Brick: 0, Frags: []composite.Fragment{
		{Key: 5, A: 1, Depth: 1},
		{Key: 5, A: 1, Depth: 2},
	}}})...)
	// Rewrite the single (key 5, count 2) run as two (key 5, count 1) runs.
	nonMax := make([]byte, 0, len(split)+v2RunBytes)
	nonMax = append(nonMax, split[:4]...)
	nonMax = append(nonMax, 2, 0, 0, 0) // run count 2
	nonMax = append(nonMax, 5, 0, 0, 0, 1, 0, 0, 0)
	nonMax = append(nonMax, 5, 0, 0, 0, 1, 0, 0, 0)
	nonMax = append(nonMax, split[v2StripeHeaderBytes+v2RunBytes:]...)
	cases["non-maximal runs"] = nonMax
	// Negative unit ID.
	neg := append([]byte(nil), good...)
	neg[3] = 0x80
	cases["negative unit"] = neg

	for name, data := range cases {
		if _, err := DecodeStripesV2(data); err == nil {
			t.Errorf("%s: decode accepted a malformed payload", name)
		}
	}
}

func TestNegotiateEncoding(t *testing.T) {
	for header, want := range map[string]string{
		"":                         "",
		"gzip, br":                 "",
		EncodingColumnar:           EncodingColumnar,
		EncodingListV2:             EncodingListV2,
		EncodingColumnar2:          EncodingColumnar2,
		"gvmr-cf2, gvmr-cf1":       EncodingColumnar2,
		"gvmr-cf1, gvmr-cf2":       EncodingColumnar2, // preference, not order
		"gvmr-v2, gvmr-cf1":        EncodingColumnar,  // compressed beats identity
		" gvmr-cf2 ;q=0.5 , gzip":  EncodingColumnar2,
		"gvmr-cf3, gvmr-cf1;q=0.9": EncodingColumnar,
		"gvmr-cf2junk, gvmr-v2":    EncodingListV2,
	} {
		if got := negotiateEncoding(header); got != want {
			t.Errorf("negotiateEncoding(%q) = %q, want %q", header, got, want)
		}
	}
}

func TestEncodePayloadAsRoundTrips(t *testing.T) {
	s := listStripes()
	for _, enc := range []string{"", "identity", EncodingListV2, EncodingColumnar, EncodingColumnar2} {
		payload, err := EncodePayloadAs(s, enc)
		if err != nil {
			t.Fatalf("%q: encode: %v", enc, err)
		}
		back, err := DecodePayload(enc, payload, 1<<20)
		if err != nil {
			t.Fatalf("%q: decode: %v", enc, err)
		}
		if !stripesBitEqual(s, back) {
			t.Fatalf("%q: payload round trip changed stripes", enc)
		}
	}
	if _, err := EncodePayloadAs(s, "gvmr-cf9"); err == nil {
		t.Fatal("unknown encoding accepted")
	}
}

func TestSanitizeStripes(t *testing.T) {
	clean := listStripes()
	got, n := SanitizeStripes(clean)
	if n != 0 {
		t.Fatalf("clean stripes stripped %d", n)
	}
	if &got[0].Frags[0] != &clean[0].Frags[0] {
		t.Fatal("clean stripes were copied")
	}

	dirty := []core.BrickStripe{
		{Brick: 0, Frags: []composite.Fragment{
			{Key: 1, A: 1, Depth: 0.5},
			composite.Placeholder(2),
			{Key: 3, A: 1, Depth: 1.5},
		}},
		{Brick: 2, Frags: []composite.Fragment{composite.Placeholder(4)}},
		{Brick: 5, Frags: []composite.Fragment{{Key: 6, A: 1, Depth: 2.5}}},
	}
	got, n = SanitizeStripes(dirty)
	if n != 2 {
		t.Fatalf("stripped %d placeholders, want 2", n)
	}
	want := []core.BrickStripe{
		{Brick: 0, Frags: []composite.Fragment{
			{Key: 1, A: 1, Depth: 0.5},
			{Key: 3, A: 1, Depth: 1.5},
		}},
		{Brick: 2, Frags: []composite.Fragment{}},
		{Brick: 5, Frags: []composite.Fragment{{Key: 6, A: 1, Depth: 2.5}}},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d stripes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Brick != want[i].Brick || len(got[i].Frags) != len(want[i].Frags) {
			t.Fatalf("stripe %d: got %+v, want %+v", i, got[i], want[i])
		}
		for j := range want[i].Frags {
			if got[i].Frags[j] != want[i].Frags[j] {
				t.Fatalf("stripe %d frag %d: got %+v, want %+v", i, j, got[i].Frags[j], want[i].Frags[j])
			}
		}
	}
}
