package dist

import (
	"bytes"
	"testing"

	"gvmr/internal/cluster"
	"gvmr/internal/composite"
	"gvmr/internal/core"
	"gvmr/internal/volume/dataset"
)

// TestWorkerStripsPlaceholders is the regression test for the sanitize
// seam: a mapper that leaks the kernel-internal placeholder sentinel
// must never put it on the wire. The stub stands in for such a buggy
// mapper; the assertions pin the payload placeholder-free, the fragment
// count net of the strip, and the /stats counter equal to the leak.
func TestWorkerStripsPlaceholders(t *testing.T) {
	spec := cluster.AC(1)
	job := testJob(t, dataset.Skull, 24, 48, 1, 0, false)
	opt, err := job.Options()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := core.PlanGrid(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	wk, err := NewWorker(WorkerConfig{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	wk.mapBricks = func(cluster.Spec, core.Options, []int, int) (*core.MapResult, error) {
		return &core.MapResult{Stripes: []core.BrickStripe{
			{Brick: 0, Frags: []composite.Fragment{
				{Key: 1, A: 1, Depth: 0.5},
				composite.Placeholder(2),
				composite.Placeholder(3),
				{Key: 4, A: 1, Depth: 1.5},
			}},
		}}, nil
	}
	payload, frags, _, err := wk.Map(MapRequest{Job: job, Bricks: []int{0}, GridCounts: grid.Counts})
	if err != nil {
		t.Fatal(err)
	}
	if frags != 2 {
		t.Errorf("reported %d fragments, want 2 survivors", frags)
	}
	stripes, err := DecodeStripes(payload)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stripes {
		for _, f := range s.Frags {
			if f.IsPlaceholder() {
				t.Fatalf("placeholder for key %d crossed the wire", f.Key)
			}
		}
	}
	if got := wk.PlaceholdersStripped(); got != 2 {
		t.Errorf("PlaceholdersStripped() = %d, want 2", got)
	}
}

// FuzzDecodeStripesV2 drives the fragment-list wire decoders — the
// identity gvmr-v2 payload and the columnar gvmr-cf2 transform — with
// arbitrary bytes. Mirrors FuzzDecodeStripes, with the same two
// properties beyond not panicking:
//
//   - gvmr-v2 is a fixed point: decode enforces canonical form (maximal
//     runs, positive counts), so any payload DecodeStripesV2 accepts
//     must re-encode to the identical bytes;
//   - gvmr-cf2 round-trips semantically: decode → re-compress → decode
//     reproduces the same fragments bit for bit (NaN payloads included),
//     even when the fuzzer finds a non-minimal varint or flate framing.
func FuzzDecodeStripesV2(f *testing.F) {
	seed := listStripes()
	deep := []core.BrickStripe{{Brick: 0, Frags: func() []composite.Fragment {
		var frags []composite.Fragment
		for i := 0; i < 40; i++ {
			frags = append(frags, composite.Fragment{Key: int32(i % 3), A: 0.5, Depth: float32(i)})
		}
		return frags
	}()}}
	f.Add(EncodeStripesV2(seed))
	f.Add(CompressStripesV2(seed))
	f.Add(EncodeStripesV2(deep))
	f.Add(CompressStripesV2(deep))
	f.Add(EncodeStripesV2(nil))
	f.Add(CompressStripesV2(nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 127})

	const maxBytes = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		if stripes, err := DecodeStripesV2(data); err == nil {
			if got := EncodeStripesV2(stripes); !bytes.Equal(got, data) {
				t.Fatalf("v2 decode/encode is not a fixed point: %d bytes in, %d out", len(data), len(got))
			}
		}
		if stripes, err := DecompressStripesV2(data, maxBytes); err == nil {
			back, err := DecompressStripesV2(CompressStripesV2(stripes), maxBytes)
			if err != nil {
				t.Fatalf("re-compressed cf2 payload failed to decode: %v", err)
			}
			if !stripesBitEqual(stripes, back) {
				t.Fatal("cf2 re-compression changed fragment bits")
			}
		}
	})
}
