package dist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"gvmr/internal/composite"
	"gvmr/internal/core"
)

// HTTP surface of the distributed map endpoint.
const (
	// MapPath is the worker endpoint: POST a JSON MapRequest, receive the
	// binary stripe payload.
	MapPath = "/map"
	// HeaderFragCount is the total fragment count across all stripes in
	// the response body.
	HeaderFragCount = "X-Gvmr-Frag-Count"
	// HeaderMapSeconds is the virtual duration of the worker's map job
	// (its simulated makespan, not wall time), in seconds.
	HeaderMapSeconds = "X-Gvmr-Map-Seconds"
	// HeaderStripeDigest is the SHA-256 of the exact response body. The
	// coordinator recomputes it; any corruption in flight (or a buggy
	// worker) turns into a retry on another node instead of wrong bits.
	HeaderStripeDigest = "X-Gvmr-Stripe-Digest"
)

// MapRequest asks a worker to run the map phase for a batch of bricks.
type MapRequest struct {
	Job    JobSpec `json:"job"`
	Bricks []int   `json:"bricks"`
	// GridCounts is the coordinator's planned brick-grid factorisation.
	// The worker plans its own grid from Job and refuses the batch when
	// the factorisations differ — a configuration mismatch (different
	// GPU model, different bricking policy version) must fail loudly,
	// never render different bricks.
	GridCounts [3]int `json:"grid_counts"`
}

// Stripe payload format (all little-endian):
//
//	repeat per stripe, ascending brick ID:
//	  int32  brick ID
//	  int32  fragment count
//	  count × 24-byte fragments: int32 key, float32 R,G,B,A, float32 depth
//
// Fragment floats are raw IEEE-754 bit patterns — the renderer's exact
// bits, like /render?format=raw.
const stripeHeaderBytes = 8

// EncodeStripes serialises stripes into the wire payload.
func EncodeStripes(stripes []core.BrickStripe) []byte {
	n := 0
	for _, s := range stripes {
		n += stripeHeaderBytes + len(s.Frags)*composite.FragmentBytes
	}
	buf := make([]byte, n)
	off := 0
	for _, s := range stripes {
		binary.LittleEndian.PutUint32(buf[off:], uint32(int32(s.Brick)))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(int32(len(s.Frags))))
		off += stripeHeaderBytes
		for _, f := range s.Frags {
			binary.LittleEndian.PutUint32(buf[off:], uint32(f.Key))
			binary.LittleEndian.PutUint32(buf[off+4:], math.Float32bits(f.R))
			binary.LittleEndian.PutUint32(buf[off+8:], math.Float32bits(f.G))
			binary.LittleEndian.PutUint32(buf[off+12:], math.Float32bits(f.B))
			binary.LittleEndian.PutUint32(buf[off+16:], math.Float32bits(f.A))
			binary.LittleEndian.PutUint32(buf[off+20:], math.Float32bits(f.Depth))
			off += composite.FragmentBytes
		}
	}
	return buf
}

// DecodeStripes parses a wire payload back into stripes. It validates
// structure only (framing, counts); semantic checks — do the brick IDs
// match the request — are the coordinator's job.
func DecodeStripes(data []byte) ([]core.BrickStripe, error) {
	var stripes []core.BrickStripe
	off := 0
	for off < len(data) {
		if len(data)-off < stripeHeaderBytes {
			return nil, fmt.Errorf("dist: truncated stripe header at byte %d", off)
		}
		brick := int32(binary.LittleEndian.Uint32(data[off:]))
		count := int32(binary.LittleEndian.Uint32(data[off+4:]))
		off += stripeHeaderBytes
		if brick < 0 {
			return nil, fmt.Errorf("dist: negative brick ID %d", brick)
		}
		if count < 0 || int64(count)*composite.FragmentBytes > int64(len(data)-off) {
			return nil, fmt.Errorf("dist: stripe for brick %d claims %d fragments beyond payload", brick, count)
		}
		s := core.BrickStripe{Brick: int(brick)}
		if count > 0 {
			s.Frags = make([]composite.Fragment, count)
			for i := range s.Frags {
				s.Frags[i] = composite.Fragment{
					Key:   int32(binary.LittleEndian.Uint32(data[off:])),
					R:     math.Float32frombits(binary.LittleEndian.Uint32(data[off+4:])),
					G:     math.Float32frombits(binary.LittleEndian.Uint32(data[off+8:])),
					B:     math.Float32frombits(binary.LittleEndian.Uint32(data[off+12:])),
					A:     math.Float32frombits(binary.LittleEndian.Uint32(data[off+16:])),
					Depth: math.Float32frombits(binary.LittleEndian.Uint32(data[off+20:])),
				}
				off += composite.FragmentBytes
			}
		}
		stripes = append(stripes, s)
	}
	return stripes, nil
}

// PayloadDigest is the hex SHA-256 of a stripe payload — the value of
// HeaderStripeDigest.
func PayloadDigest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// encodeMapRequest marshals the request body.
func encodeMapRequest(req MapRequest) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding map request: %w", err)
	}
	return body, nil
}
