package dist

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"gvmr/internal/composite"
	"gvmr/internal/core"
)

// HTTP surface of the distributed map endpoint.
const (
	// MapPath is the worker endpoint: POST a JSON MapRequest, receive the
	// binary stripe payload.
	MapPath = "/map"
	// ReducePath is the worker-to-worker exchange endpoint: a mapper
	// POSTs the stripe payload filtered to one reducer's pixel range
	// (query: ?ex=<exchange>&lo=<lo>&hi=<hi>).
	ReducePath = "/reduce"
	// CollectPath is the coordinator-facing end of an exchange: POST a
	// JSON CollectRequest, receive the reducer's composited pixel range
	// as a sparse result stripe.
	CollectPath = "/reduce/collect"
	// HeaderFragCount is the total fragment count across all stripes in
	// the response body.
	HeaderFragCount = "X-Gvmr-Frag-Count"
	// HeaderMapSeconds is the virtual duration of the worker's map job
	// (its simulated makespan, not wall time), in seconds.
	HeaderMapSeconds = "X-Gvmr-Map-Seconds"
	// HeaderStripeDigest is the SHA-256 of the exact response body (the
	// bytes as sent, compressed when compression was negotiated). The
	// coordinator recomputes it; any corruption in flight (or a buggy
	// worker) turns into a retry on another node instead of wrong bits.
	HeaderStripeDigest = "X-Gvmr-Stripe-Digest"
	// HeaderReduced marks a map response whose stripes went to the
	// exchange's reducers instead of the response body ("1").
	HeaderReduced = "X-Gvmr-Reduced"
	// HeaderReduceSeconds is the reducer's modeled composite charge for
	// its pixel range, in virtual seconds (collect responses).
	HeaderReduceSeconds = "X-Gvmr-Reduce-Seconds"
	// HeaderExchangeBytes and HeaderExchangeMsgs are the bytes and
	// messages a reducer received over the peer exchange (collect
	// responses) — in-process self-deliveries count zero.
	HeaderExchangeBytes = "X-Gvmr-Exchange-Bytes"
	HeaderExchangeMsgs  = "X-Gvmr-Exchange-Msgs"
)

// EncodingColumnar names the negotiated stripe compression: a columnar
// transform (varint stripe headers, per-stripe delta-zigzag pixel keys,
// byte-plane-split float channels) under stdlib flate. Advertised via
// Accept-Encoding and confirmed via Content-Encoding, so either side may
// be older and the exchange degrades to the identity v1 payload.
const EncodingColumnar = "gvmr-cf1"

// MapRequest asks a worker to run the map phase for a batch of bricks.
type MapRequest struct {
	Job    JobSpec `json:"job"`
	Bricks []int   `json:"bricks"`
	// GridCounts is the coordinator's planned brick-grid factorisation.
	// The worker plans its own grid from Job and refuses the batch when
	// the factorisations differ — a configuration mismatch (different
	// GPU model, different bricking policy version) must fail loudly,
	// never render different bricks.
	GridCounts [3]int `json:"grid_counts"`
	// Reduce, when non-nil, turns the batch into one leg of a
	// distributed reduce: instead of returning stripes, the worker
	// pushes each reducer's pixel range to its /reduce endpoint (its own
	// range is delivered in-process) and returns an empty body with
	// HeaderReduced set. Workers predating the field reject the request
	// (DisallowUnknownFields), which the coordinator treats as a reduce
	// failure and falls back to the classic path — mixed fleets degrade,
	// never diverge.
	Reduce *ReducePlan `json:"reduce,omitempty"`
}

// ReduceTarget is one reducer in an exchange: the worker owning the
// half-open pixel-key range [Lo, Hi).
type ReduceTarget struct {
	Addr string `json:"addr"`
	Lo   int32  `json:"lo"`
	Hi   int32  `json:"hi"`
}

// ReducePlan tells a mapper where every reducer in its exchange lives.
// All mappers in one exchange receive the identical Reducers slice
// (contiguous ranges ordered by reducer index, covering the image).
type ReducePlan struct {
	// Exchange identifies the session; reducers keep per-exchange state
	// until the coordinator collects or the session expires.
	Exchange string `json:"exchange"`
	// Self is the index in Reducers of the mapper itself, or -1 when the
	// mapper is not a reducer; its own range skips the wire entirely.
	Self int `json:"self"`
	// Compress applies EncodingColumnar to the pushed payloads.
	Compress bool `json:"compress,omitempty"`

	Reducers []ReduceTarget `json:"reducers"`
}

// Stripe payload format (all little-endian):
//
//	repeat per stripe, ascending brick ID:
//	  int32  brick ID
//	  int32  fragment count
//	  count × 24-byte fragments: int32 key, float32 R,G,B,A, float32 depth
//
// Fragment floats are raw IEEE-754 bit patterns — the renderer's exact
// bits, like /render?format=raw.
const stripeHeaderBytes = 8

// EncodeStripes serialises stripes into the wire payload.
func EncodeStripes(stripes []core.BrickStripe) []byte {
	n := 0
	for _, s := range stripes {
		n += stripeHeaderBytes + len(s.Frags)*composite.FragmentBytes
	}
	buf := make([]byte, n)
	off := 0
	for _, s := range stripes {
		binary.LittleEndian.PutUint32(buf[off:], uint32(int32(s.Brick)))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(int32(len(s.Frags))))
		off += stripeHeaderBytes
		for _, f := range s.Frags {
			binary.LittleEndian.PutUint32(buf[off:], uint32(f.Key))
			binary.LittleEndian.PutUint32(buf[off+4:], math.Float32bits(f.R))
			binary.LittleEndian.PutUint32(buf[off+8:], math.Float32bits(f.G))
			binary.LittleEndian.PutUint32(buf[off+12:], math.Float32bits(f.B))
			binary.LittleEndian.PutUint32(buf[off+16:], math.Float32bits(f.A))
			binary.LittleEndian.PutUint32(buf[off+20:], math.Float32bits(f.Depth))
			off += composite.FragmentBytes
		}
	}
	return buf
}

// DecodeStripes parses a wire payload back into stripes. It validates
// structure only (framing, counts); semantic checks — do the brick IDs
// match the request — are the coordinator's job.
func DecodeStripes(data []byte) ([]core.BrickStripe, error) {
	var stripes []core.BrickStripe
	off := 0
	for off < len(data) {
		if len(data)-off < stripeHeaderBytes {
			return nil, fmt.Errorf("dist: truncated stripe header at byte %d", off)
		}
		brick := int32(binary.LittleEndian.Uint32(data[off:]))
		count := int32(binary.LittleEndian.Uint32(data[off+4:]))
		off += stripeHeaderBytes
		if brick < 0 {
			return nil, fmt.Errorf("dist: negative brick ID %d", brick)
		}
		if count < 0 || int64(count)*composite.FragmentBytes > int64(len(data)-off) {
			return nil, fmt.Errorf("dist: stripe for brick %d claims %d fragments beyond payload", brick, count)
		}
		s := core.BrickStripe{Brick: int(brick)}
		if count > 0 {
			s.Frags = make([]composite.Fragment, count)
			for i := range s.Frags {
				s.Frags[i] = composite.Fragment{
					Key:   int32(binary.LittleEndian.Uint32(data[off:])),
					R:     math.Float32frombits(binary.LittleEndian.Uint32(data[off+4:])),
					G:     math.Float32frombits(binary.LittleEndian.Uint32(data[off+8:])),
					B:     math.Float32frombits(binary.LittleEndian.Uint32(data[off+12:])),
					A:     math.Float32frombits(binary.LittleEndian.Uint32(data[off+16:])),
					Depth: math.Float32frombits(binary.LittleEndian.Uint32(data[off+20:])),
				}
				off += composite.FragmentBytes
			}
		}
		stripes = append(stripes, s)
	}
	return stripes, nil
}

// fragChannels and fragPlanes shape the columnar transform: five float32
// channels (R,G,B,A,Depth), each split into its four little-endian byte
// planes so flate sees long runs of structurally similar bytes (sign and
// exponent planes of neighbouring fragments are near-constant).
const (
	fragChannels = 5
	fragPlanes   = 4
)

// CompressStripes serialises stripes into the EncodingColumnar payload:
//
//	flate(
//	  uvarint stripe count
//	  repeat per stripe: uvarint brick ID, uvarint fragment count
//	  repeat per stripe: varint delta-coded pixel keys (reset per stripe)
//	  5 channels × 4 byte planes × one byte per fragment
//	)
//
// Keys inside a stripe ascend (the caster emits pixels in scan order),
// so deltas are small positive varints; the float planes compress on the
// smoothness of adjacent rays. The transform is lossless and exact: the
// decoded fragments carry the same bit patterns, NaNs included.
func CompressStripes(stripes []core.BrickStripe) []byte {
	total := 0
	for _, s := range stripes {
		total += len(s.Frags)
	}
	var raw bytes.Buffer
	raw.Grow(len(stripes)*8 + total*(fragChannels*fragPlanes+2))
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { raw.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	putVarint := func(v int64) { raw.Write(tmp[:binary.PutVarint(tmp[:], v)]) }

	putUvarint(uint64(len(stripes)))
	for _, s := range stripes {
		putUvarint(uint64(uint32(int32(s.Brick))))
		putUvarint(uint64(len(s.Frags)))
	}
	for _, s := range stripes {
		prev := int64(0)
		for _, f := range s.Frags {
			putVarint(int64(f.Key) - prev)
			prev = int64(f.Key)
		}
	}
	planes := make([]byte, total*fragChannels*fragPlanes)
	i := 0
	for _, s := range stripes {
		for _, f := range s.Frags {
			bits := [fragChannels]uint32{
				math.Float32bits(f.R), math.Float32bits(f.G), math.Float32bits(f.B),
				math.Float32bits(f.A), math.Float32bits(f.Depth),
			}
			for c, b := range bits {
				for p := 0; p < fragPlanes; p++ {
					planes[(c*fragPlanes+p)*total+i] = byte(b >> (8 * p))
				}
			}
			i++
		}
	}
	raw.Write(planes)

	var out bytes.Buffer
	// BestCompression: stripe payloads are sub-megabyte and encoded once
	// per hop, so the deeper match search is wall-clock noise, and the
	// wire model charges every byte it saves.
	zw, _ := flate.NewWriter(&out, flate.BestCompression)
	_, _ = zw.Write(raw.Bytes()) // bytes.Buffer writes cannot fail
	_ = zw.Close()
	return out.Bytes()
}

// DecompressStripes parses an EncodingColumnar payload. maxBytes bounds
// the decompressed size (zip-bomb guard); structural violations —
// truncation, counts beyond the payload, out-of-range bricks or keys,
// trailing garbage — are errors, mirroring DecodeStripes.
func DecompressStripes(data []byte, maxBytes int64) ([]core.BrickStripe, error) {
	zr := flate.NewReader(bytes.NewReader(data))
	defer zr.Close()
	raw, err := io.ReadAll(io.LimitReader(zr, maxBytes+1))
	if err != nil {
		return nil, fmt.Errorf("dist: %s inflate: %w", EncodingColumnar, err)
	}
	if int64(len(raw)) > maxBytes {
		return nil, fmt.Errorf("dist: %s payload inflates beyond %d bytes", EncodingColumnar, maxBytes)
	}
	pos := 0
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(raw[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("dist: %s truncated varint at byte %d", EncodingColumnar, pos)
		}
		pos += n
		return v, nil
	}
	nStripes, err := uvarint()
	if err != nil {
		return nil, err
	}
	// Each stripe costs at least two header bytes; anything claiming more
	// is corrupt, and bounding here keeps allocations honest.
	if nStripes > uint64(len(raw)-pos) {
		return nil, fmt.Errorf("dist: %s claims %d stripes in %d bytes", EncodingColumnar, nStripes, len(raw)-pos)
	}
	stripes := make([]core.BrickStripe, nStripes)
	var total64 int64
	counts := make([]int, nStripes)
	for i := range stripes {
		brick, err := uvarint()
		if err != nil {
			return nil, err
		}
		if brick > math.MaxInt32 {
			return nil, fmt.Errorf("dist: %s brick ID %d overflows int32", EncodingColumnar, brick)
		}
		count, err := uvarint()
		if err != nil {
			return nil, err
		}
		// A fragment costs at least one key byte plus its 20 plane bytes,
		// so any count past that density is corrupt — checked before the
		// fragment slices are allocated.
		if count > uint64(len(raw)-pos)/(fragChannels*fragPlanes+1) {
			return nil, fmt.Errorf("dist: %s stripe for brick %d claims %d fragments beyond payload", EncodingColumnar, brick, count)
		}
		stripes[i].Brick = int(int32(brick))
		counts[i] = int(count)
		total64 += int64(count)
	}
	if total64*(fragChannels*fragPlanes+1) > int64(len(raw)-pos) {
		return nil, fmt.Errorf("dist: %s claims %d fragments beyond payload", EncodingColumnar, total64)
	}
	total := int(total64)
	for i := range stripes {
		if counts[i] == 0 {
			continue
		}
		frags := make([]composite.Fragment, counts[i])
		prev := int64(0)
		for j := range frags {
			d, n := binary.Varint(raw[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("dist: %s truncated key varint at byte %d", EncodingColumnar, pos)
			}
			pos += n
			k := prev + d
			if k < math.MinInt32 || k > math.MaxInt32 {
				return nil, fmt.Errorf("dist: %s key %d overflows int32", EncodingColumnar, k)
			}
			frags[j].Key = int32(k)
			prev = k
		}
		stripes[i].Frags = frags
	}
	if len(raw)-pos != total*fragChannels*fragPlanes {
		return nil, fmt.Errorf("dist: %s plane section is %d bytes, want %d", EncodingColumnar, len(raw)-pos, total*fragChannels*fragPlanes)
	}
	planes := raw[pos:]
	i := 0
	for si := range stripes {
		for j := range stripes[si].Frags {
			var bits [fragChannels]uint32
			for c := 0; c < fragChannels; c++ {
				for p := 0; p < fragPlanes; p++ {
					bits[c] |= uint32(planes[(c*fragPlanes+p)*total+i]) << (8 * p)
				}
			}
			f := &stripes[si].Frags[j]
			f.R = math.Float32frombits(bits[0])
			f.G = math.Float32frombits(bits[1])
			f.B = math.Float32frombits(bits[2])
			f.A = math.Float32frombits(bits[3])
			f.Depth = math.Float32frombits(bits[4])
			i++
		}
	}
	if nStripes == 0 {
		return nil, nil
	}
	return stripes, nil
}

// EncodePayload serialises stripes for the wire, compressed when the
// peer negotiated it. The returned encoding is the Content-Encoding
// value ("" = identity v1).
func EncodePayload(stripes []core.BrickStripe, compress bool) ([]byte, string) {
	if compress {
		return CompressStripes(stripes), EncodingColumnar
	}
	return EncodeStripes(stripes), ""
}

// DecodePayload parses a wire payload according to its Content-Encoding.
// maxBytes bounds the decompressed size of compressed payloads.
func DecodePayload(encoding string, data []byte, maxBytes int64) ([]core.BrickStripe, error) {
	switch encoding {
	case "", "identity":
		return DecodeStripes(data)
	case EncodingListV2:
		return DecodeStripesV2(data)
	case EncodingColumnar:
		return DecompressStripes(data, maxBytes)
	case EncodingColumnar2:
		return DecompressStripesV2(data, maxBytes)
	default:
		return nil, fmt.Errorf("dist: unsupported content encoding %q", encoding)
	}
}

// acceptsColumnar reports whether an Accept-Encoding header value offers
// EncodingColumnar.
func acceptsColumnar(header string) bool {
	return acceptsEncoding(header, EncodingColumnar)
}

// PayloadDigest is the hex SHA-256 of a stripe payload — the value of
// HeaderStripeDigest.
func PayloadDigest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// encodeMapRequest marshals the request body.
func encodeMapRequest(req MapRequest) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding map request: %w", err)
	}
	return body, nil
}
