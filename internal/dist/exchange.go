package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"gvmr/internal/composite"
	"gvmr/internal/core"
	"gvmr/internal/sim"
	"gvmr/internal/vec"
)

// The worker side of a distributed reduce. One exchange is one frame's
// reduce phase: every mapper pushes each reducer's pixel range to that
// reducer's /reduce endpoint (its own range is delivered in-process),
// the reducer accumulates per-brick fragment runs until it has seen all
// bricks, and the coordinator's /reduce/collect call composites the
// range and returns it as a sparse result stripe. Duplicate deliveries
// for a brick (a retried mapper, a hedged batch) are dropped: stripes
// are canonical per brick, so any duplicate carries identical bytes and
// first-write-wins cannot change the image.

// maxExchangeID bounds the exchange identifier length.
const maxExchangeID = 128

// CollectRequest asks a reducer for its composited pixel range.
type CollectRequest struct {
	Exchange string `json:"exchange"`
	// Lo and Hi restate the reducer's half-open pixel-key range; they
	// must match what the mappers pushed (a mismatch is a planning bug
	// and fails the exchange loudly).
	Lo int32 `json:"lo"`
	Hi int32 `json:"hi"`
	// NumBricks is the frame's map-unit count — the brick count in the
	// convex default, the partition's unit count otherwise: the reducer
	// is complete when it has a delivery from every unit.
	NumBricks int `json:"num_bricks"`
	// Background is the coordinator's composite background, passed
	// explicitly so both sides fold the exact same floats.
	Background [4]float32 `json:"background"`
	// Job rebinds the collect to the frame (request bounds, plan spec
	// for the modeled reduce charge).
	Job JobSpec `json:"job"`
}

// ExchangeStats counts exchange events for /stats.
type ExchangeStats struct {
	Pushes      int64 `json:"pushes"`       // peer payloads accepted
	PushRejects int64 `json:"push_rejects"` // payloads refused (bad range, digest, session cap)
	Collects    int64 `json:"collects"`     // ranges composited and returned
	Expired     int64 `json:"expired"`      // sessions swept by TTL
	Sessions    int   `json:"sessions"`     // live sessions right now
}

// exchangeTable holds a worker's live exchange sessions.
type exchangeTable struct {
	maxSessions int
	ttl         time.Duration
	now         func() time.Time // test seam

	mu       sync.Mutex
	sessions map[string]*exchangeSession

	pushes, pushRejects, collects, expired int64
}

type exchangeSession struct {
	lo, hi int32

	mu       sync.Mutex
	bricks   map[int][]composite.Fragment
	netBytes int64
	netMsgs  int64
	updated  time.Time
	arrived  chan struct{} // closed and replaced on every new delivery
}

func newExchangeTable(maxSessions int, ttl time.Duration) *exchangeTable {
	return &exchangeTable{
		maxSessions: maxSessions,
		ttl:         ttl,
		now:         time.Now,
		sessions:    map[string]*exchangeSession{},
	}
}

// sweep drops sessions idle past the TTL (an exchange whose coordinator
// died mid-job must not pin fragment memory forever). Callers hold t.mu.
func (t *exchangeTable) sweep(now time.Time) {
	for id, s := range t.sessions {
		s.mu.Lock()
		stale := now.Sub(s.updated) > t.ttl
		s.mu.Unlock()
		if stale {
			delete(t.sessions, id)
			t.expired++
		}
	}
}

// join returns the session for an exchange ID, creating it on first
// contact (push and collect may arrive in any order). A range mismatch
// against an existing session is a planning bug, reported loudly.
func (t *exchangeTable) join(id string, lo, hi int32, now time.Time) (*exchangeSession, int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.sessions[id]; ok {
		if s.lo != lo || s.hi != hi {
			return nil, http.StatusConflict, fmt.Errorf("dist: exchange %q range [%d,%d) conflicts with session [%d,%d)", id, lo, hi, s.lo, s.hi)
		}
		return s, 0, nil
	}
	if len(t.sessions) >= t.maxSessions {
		t.sweep(now)
	}
	if len(t.sessions) >= t.maxSessions {
		return nil, http.StatusTooManyRequests, fmt.Errorf("dist: %d exchange sessions in flight", len(t.sessions))
	}
	s := &exchangeSession{
		lo: lo, hi: hi,
		bricks:  map[int][]composite.Fragment{},
		updated: now,
		arrived: make(chan struct{}),
	}
	t.sessions[id] = s
	return s, 0, nil
}

func (t *exchangeTable) remove(id string) {
	t.mu.Lock()
	delete(t.sessions, id)
	t.mu.Unlock()
}

func (t *exchangeTable) stats() ExchangeStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweep(t.now())
	return ExchangeStats{
		Pushes:      t.pushes,
		PushRejects: t.pushRejects,
		Collects:    t.collects,
		Expired:     t.expired,
		Sessions:    len(t.sessions),
	}
}

// deliver merges one mapper's stripes into the session,
// first-write-wins per brick, and wakes any waiting collect.
func (s *exchangeSession) deliver(stripes []core.BrickStripe, bytes, msgs int64, now time.Time) {
	s.mu.Lock()
	for _, st := range stripes {
		if _, ok := s.bricks[st.Brick]; !ok {
			s.bricks[st.Brick] = st.Frags
		}
	}
	s.netBytes += bytes
	s.netMsgs += msgs
	s.updated = now
	close(s.arrived)
	s.arrived = make(chan struct{})
	s.mu.Unlock()
}

// validateRangeStripes checks a delivery against the session's range:
// no duplicate bricks inside one payload, every key inside [lo, hi).
func validateRangeStripes(stripes []core.BrickStripe, lo, hi int32) error {
	seen := make(map[int]bool, len(stripes))
	for _, s := range stripes {
		if seen[s.Brick] {
			return fmt.Errorf("dist: duplicate stripe for brick %d in one push", s.Brick)
		}
		seen[s.Brick] = true
		for _, f := range s.Frags {
			if f.Key < lo || f.Key >= hi {
				return fmt.Errorf("dist: brick %d fragment key %d outside range [%d,%d)", s.Brick, f.Key, lo, hi)
			}
		}
	}
	return nil
}

// filterRange projects stripes onto one reducer's pixel range,
// preserving brick order and per-brick emission order. Every brick stays
// present — an empty stripe is the reducer's proof the brick contributed
// nothing, which is what lets it count distinct bricks to completion.
func filterRange(stripes []core.BrickStripe, lo, hi int32) []core.BrickStripe {
	out := make([]core.BrickStripe, len(stripes))
	for i, s := range stripes {
		sub := core.BrickStripe{Brick: s.Brick}
		for _, f := range s.Frags {
			if f.Key >= lo && f.Key < hi {
				sub.Frags = append(sub.Frags, f)
			}
		}
		out[i] = sub
	}
	return out
}

// HandleReducePush serves ReducePath: one mapper's range payload.
func (wk *Worker) HandleReducePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	id := q.Get("ex")
	lo64, errLo := strconv.ParseInt(q.Get("lo"), 10, 32)
	hi64, errHi := strconv.ParseInt(q.Get("hi"), 10, 32)
	if id == "" || len(id) > maxExchangeID || errLo != nil || errHi != nil || lo64 < 0 || hi64 < lo64 {
		wk.rejectPush(w, http.StatusBadRequest, fmt.Errorf("dist: bad push parameters ex=%q lo=%q hi=%q", id, q.Get("lo"), q.Get("hi")))
		return
	}
	lo, hi := int32(lo64), int32(hi64)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wk.cfg.MaxResponseBytes))
	if err != nil {
		wk.rejectPush(w, http.StatusBadRequest, fmt.Errorf("dist: reading push payload: %w", err))
		return
	}
	if want := r.Header.Get(HeaderStripeDigest); want == "" || PayloadDigest(body) != want {
		wk.rejectPush(w, http.StatusBadRequest, fmt.Errorf("dist: push digest mismatch"))
		return
	}
	stripes, err := DecodePayload(r.Header.Get("Content-Encoding"), body, wk.cfg.MaxResponseBytes)
	if err != nil {
		wk.rejectPush(w, http.StatusBadRequest, err)
		return
	}
	if err := validateRangeStripes(stripes, lo, hi); err != nil {
		wk.rejectPush(w, http.StatusBadRequest, err)
		return
	}
	now := wk.ex.now()
	s, status, err := wk.ex.join(id, lo, hi, now)
	if err != nil {
		wk.rejectPush(w, status, err)
		return
	}
	s.deliver(stripes, int64(len(body)), 1, now)
	wk.ex.mu.Lock()
	wk.ex.pushes++
	wk.ex.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (wk *Worker) rejectPush(w http.ResponseWriter, status int, err error) {
	wk.ex.mu.Lock()
	wk.ex.pushRejects++
	wk.ex.mu.Unlock()
	http.Error(w, err.Error(), status)
}

// HandleCollect serves CollectPath: wait until every brick's range
// delivery arrived, composite the range, return it as a sparse result
// stripe (pixel key + final RGBA; untouched pixels are omitted — the
// coordinator pre-fills the background). The request context bounds the
// wait: a dead mapper means the coordinator's per-attempt deadline
// cancels the collect and the job falls back to the classic path.
func (wk *Worker) HandleCollect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req CollectRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, wk.cfg.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad collect request: %v", err), http.StatusBadRequest)
		return
	}
	if err := req.Job.Validate(wk.cfg.MaxEdge, wk.cfg.MaxPixels); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	keyRange := int32(req.Job.Width) * int32(req.Job.Height)
	if req.Exchange == "" || len(req.Exchange) > maxExchangeID ||
		req.Lo < 0 || req.Hi < req.Lo || req.Hi > keyRange ||
		req.NumBricks < 1 || req.NumBricks > 1<<20 {
		http.Error(w, "bad collect parameters", http.StatusBadRequest)
		return
	}
	s, status, err := wk.ex.join(req.Exchange, req.Lo, req.Hi, wk.ex.now())
	if err != nil {
		http.Error(w, err.Error(), status)
		return
	}
	for {
		s.mu.Lock()
		n := len(s.bricks)
		ch := s.arrived
		overrun := n > req.NumBricks
		if !overrun {
			for id := range s.bricks {
				if id >= req.NumBricks {
					overrun = true
					break
				}
			}
		}
		s.mu.Unlock()
		if overrun {
			wk.ex.remove(req.Exchange)
			http.Error(w, fmt.Sprintf("dist: exchange %q holds bricks outside grid of %d", req.Exchange, req.NumBricks), http.StatusConflict)
			return
		}
		if n == req.NumBricks {
			break
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			http.Error(w, fmt.Sprintf("dist: exchange %q incomplete: %d/%d bricks", req.Exchange, n, req.NumBricks), http.StatusGatewayTimeout)
			return
		}
	}

	frags, total, netBytes, netMsgs := s.compositeRange(req)
	spec := req.Job.PlanSpec()
	charge := sim.WorkTime(float64(total), spec.PartitionRate) +
		sim.WorkTime(float64(total), spec.SortRate) +
		sim.WorkTime(float64(total), spec.CompositeRate)
	encoding := negotiateEncoding(r.Header.Get("Accept-Encoding"))
	payload, err := EncodePayloadAs([]core.BrickStripe{{Brick: 0, Frags: frags}}, encoding)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	wk.ex.remove(req.Exchange)
	wk.ex.mu.Lock()
	wk.ex.collects++
	wk.ex.mu.Unlock()

	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	if encoding != "" {
		h.Set("Content-Encoding", encoding)
	}
	h.Set("Content-Length", strconv.Itoa(len(payload)))
	h.Set(HeaderFragCount, strconv.Itoa(len(frags)))
	h.Set(HeaderStripeDigest, PayloadDigest(payload))
	h.Set(HeaderReduceSeconds, strconv.FormatFloat(charge.Seconds(), 'g', -1, 64))
	h.Set(HeaderExchangeBytes, strconv.FormatInt(netBytes, 10))
	h.Set(HeaderExchangeMsgs, strconv.FormatInt(netMsgs, 10))
	_, _ = w.Write(payload) // client hangup; the coordinator falls back
}

// compositeRange folds the session's fragments into one final color per
// touched pixel, in the canonical order: bricks ascending, emission
// order within a brick — exactly the concatenation CompositePixel sees
// on the coordinator-local path, so the folded floats are bit-identical.
func (s *exchangeSession) compositeRange(req CollectRequest) (frags []composite.Fragment, total int64, netBytes, netMsgs int64) {
	s.mu.Lock()
	ids := make([]int, 0, len(s.bricks))
	for id := range s.bricks {
		ids = append(ids, id)
	}
	runs := make([][]composite.Fragment, 0, len(ids))
	sort.Ints(ids)
	for _, id := range ids {
		runs = append(runs, s.bricks[id])
	}
	netBytes, netMsgs = s.netBytes, s.netMsgs
	s.mu.Unlock()

	width := req.Hi - req.Lo
	buckets := make([][]composite.Fragment, width)
	touched := 0
	for _, run := range runs {
		for _, f := range run {
			i := f.Key - req.Lo
			if buckets[i] == nil {
				touched++
			}
			buckets[i] = append(buckets[i], f)
			total++
		}
	}
	bg := vec.V4{X: req.Background[0], Y: req.Background[1], Z: req.Background[2], W: req.Background[3]}
	frags = make([]composite.Fragment, 0, touched)
	for i, b := range buckets {
		if b == nil {
			continue
		}
		c := composite.CompositePixel(b, bg)
		frags = append(frags, composite.Fragment{
			Key: req.Lo + int32(i), R: c.X, G: c.Y, B: c.Z, A: c.W,
		})
	}
	return frags, total, netBytes, netMsgs
}
