package vec

// Ray is a parametric ray Origin + t*Dir.
type Ray struct {
	Origin V3
	Dir    V3
}

// At returns the point at parameter t along the ray.
func (r Ray) At(t float32) V3 { return r.Origin.Add(r.Dir.Scale(t)) }

// AABB is an axis-aligned bounding box described by its two corners.
type AABB struct {
	Min, Max V3
}

// Center returns the box center.
func (b AABB) Center() V3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box extent per axis.
func (b AABB) Size() V3 { return b.Max.Sub(b.Min) }

// Contains reports whether p lies inside the box (inclusive).
func (b AABB) Contains(p V3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	return AABB{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// Corners returns the eight corner points of the box.
func (b AABB) Corners() [8]V3 {
	return [8]V3{
		{b.Min.X, b.Min.Y, b.Min.Z},
		{b.Max.X, b.Min.Y, b.Min.Z},
		{b.Min.X, b.Max.Y, b.Min.Z},
		{b.Max.X, b.Max.Y, b.Min.Z},
		{b.Min.X, b.Min.Y, b.Max.Z},
		{b.Max.X, b.Min.Y, b.Max.Z},
		{b.Min.X, b.Max.Y, b.Max.Z},
		{b.Max.X, b.Max.Y, b.Max.Z},
	}
}

// Intersect computes the parametric interval [tNear, tFar] over which the
// ray overlaps the box, using the slab method. It reports ok=false when the
// ray misses the box entirely. tNear may be negative when the origin is
// inside the box; callers that march forward should clamp it to zero.
func (b AABB) Intersect(r Ray) (tNear, tFar float32, ok bool) {
	tNear = -3.4e38
	tFar = 3.4e38
	mins := [3]float32{b.Min.X, b.Min.Y, b.Min.Z}
	maxs := [3]float32{b.Max.X, b.Max.Y, b.Max.Z}
	org := [3]float32{r.Origin.X, r.Origin.Y, r.Origin.Z}
	dir := [3]float32{r.Dir.X, r.Dir.Y, r.Dir.Z}
	for a := 0; a < 3; a++ {
		if dir[a] == 0 {
			if org[a] < mins[a] || org[a] > maxs[a] {
				return 0, 0, false
			}
			continue
		}
		inv := 1 / dir[a]
		t0 := (mins[a] - org[a]) * inv
		t1 := (maxs[a] - org[a]) * inv
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tNear {
			tNear = t0
		}
		if t1 < tFar {
			tFar = t1
		}
		if tNear > tFar {
			return 0, 0, false
		}
	}
	return tNear, tFar, true
}
