// Package vec provides the small linear-algebra substrate used by the
// renderer: 3- and 4-component float32 vectors, 4×4 matrices, rays and
// axis-aligned bounding boxes.
//
// Everything operates on float32 to mirror the GPU kernels the paper
// describes; helper constructors accept float64 literals for convenience.
package vec

import "math"

// V3 is a 3-component float32 vector.
type V3 struct {
	X, Y, Z float32
}

// V4 is a 4-component float32 vector (used for homogeneous coordinates and
// RGBA colors).
type V4 struct {
	X, Y, Z, W float32
}

// New3 builds a V3 from float64 components.
func New3(x, y, z float64) V3 { return V3{float32(x), float32(y), float32(z)} }

// New4 builds a V4 from float64 components.
func New4(x, y, z, w float64) V4 {
	return V4{float32(x), float32(y), float32(z), float32(w)}
}

// Add returns a + b.
func (a V3) Add(b V3) V3 { return V3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V3) Sub(b V3) V3 { return V3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Mul returns the component-wise product a * b.
func (a V3) Mul(b V3) V3 { return V3{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Scale returns a scaled by s.
func (a V3) Scale(s float32) V3 { return V3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product of a and b.
func (a V3) Dot(b V3) float32 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a × b.
func (a V3) Cross(b V3) V3 {
	return V3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean length of a.
func (a V3) Len() float32 { return float32(math.Sqrt(float64(a.Dot(a)))) }

// Norm returns a normalised to unit length. The zero vector is returned
// unchanged.
func (a V3) Norm() V3 {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Min returns the component-wise minimum of a and b.
func (a V3) Min(b V3) V3 {
	return V3{min(a.X, b.X), min(a.Y, b.Y), min(a.Z, b.Z)}
}

// Max returns the component-wise maximum of a and b.
func (a V3) Max(b V3) V3 {
	return V3{max(a.X, b.X), max(a.Y, b.Y), max(a.Z, b.Z)}
}

// Lerp linearly interpolates between a and b by t in [0,1].
func (a V3) Lerp(b V3, t float32) V3 {
	return V3{
		a.X + (b.X-a.X)*t,
		a.Y + (b.Y-a.Y)*t,
		a.Z + (b.Z-a.Z)*t,
	}
}

// Add returns a + b.
func (a V4) Add(b V4) V4 { return V4{a.X + b.X, a.Y + b.Y, a.Z + b.Z, a.W + b.W} }

// Scale returns a scaled by s.
func (a V4) Scale(s float32) V4 { return V4{a.X * s, a.Y * s, a.Z * s, a.W * s} }

// XYZ returns the first three components of a as a V3.
func (a V4) XYZ() V3 { return V3{a.X, a.Y, a.Z} }

// Lerp linearly interpolates between a and b by t in [0,1].
func (a V4) Lerp(b V4, t float32) V4 {
	return V4{
		a.X + (b.X-a.X)*t,
		a.Y + (b.Y-a.Y)*t,
		a.Z + (b.Z-a.Z)*t,
		a.W + (b.W-a.W)*t,
	}
}
