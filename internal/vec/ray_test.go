package vec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAABBIntersectHit(t *testing.T) {
	box := AABB{Min: New3(0, 0, 0), Max: New3(1, 1, 1)}
	r := Ray{Origin: New3(-1, 0.5, 0.5), Dir: New3(1, 0, 0)}
	tn, tf, ok := box.Intersect(r)
	if !ok {
		t.Fatal("ray should hit the box")
	}
	if !approx(tn, 1, 1e-6) || !approx(tf, 2, 1e-6) {
		t.Errorf("interval = [%v, %v], want [1, 2]", tn, tf)
	}
}

func TestAABBIntersectMiss(t *testing.T) {
	box := AABB{Min: New3(0, 0, 0), Max: New3(1, 1, 1)}
	r := Ray{Origin: New3(-1, 2, 0.5), Dir: New3(1, 0, 0)}
	if _, _, ok := box.Intersect(r); ok {
		t.Error("ray parallel above the box should miss")
	}
	// Pointing away.
	r = Ray{Origin: New3(-1, 0.5, 0.5), Dir: New3(-1, 0, 0)}
	tn, tf, ok := box.Intersect(r)
	if ok && tf >= 0 {
		t.Errorf("ray pointing away reported forward hit [%v %v]", tn, tf)
	}
}

func TestAABBIntersectInside(t *testing.T) {
	box := AABB{Min: New3(0, 0, 0), Max: New3(1, 1, 1)}
	r := Ray{Origin: New3(0.5, 0.5, 0.5), Dir: New3(0, 0, 1)}
	tn, tf, ok := box.Intersect(r)
	if !ok {
		t.Fatal("ray from inside should hit")
	}
	if tn > 0 {
		t.Errorf("tNear = %v, want <= 0 for interior origin", tn)
	}
	if !approx(tf, 0.5, 1e-6) {
		t.Errorf("tFar = %v, want 0.5", tf)
	}
}

func TestAABBIntersectZeroDirComponent(t *testing.T) {
	box := AABB{Min: New3(0, 0, 0), Max: New3(1, 1, 1)}
	// Dir.Y == 0 and origin outside the Y slab: must miss.
	r := Ray{Origin: New3(0.5, 2, -1), Dir: New3(0, 0, 1)}
	if _, _, ok := box.Intersect(r); ok {
		t.Error("ray outside Y slab with Dir.Y=0 should miss")
	}
	// Dir.Y == 0 and origin inside the Y slab: must hit.
	r = Ray{Origin: New3(0.5, 0.5, -1), Dir: New3(0, 0, 1)}
	if _, _, ok := box.Intersect(r); !ok {
		t.Error("ray inside Y slab with Dir.Y=0 should hit")
	}
}

func TestAABBUnionContains(t *testing.T) {
	a := AABB{Min: New3(0, 0, 0), Max: New3(1, 1, 1)}
	b := AABB{Min: New3(2, -1, 0), Max: New3(3, 0.5, 2)}
	u := a.Union(b)
	for _, c := range a.Corners() {
		if !u.Contains(c) {
			t.Errorf("union does not contain corner %v of a", c)
		}
	}
	for _, c := range b.Corners() {
		if !u.Contains(c) {
			t.Errorf("union does not contain corner %v of b", c)
		}
	}
}

func TestAABBCenterSize(t *testing.T) {
	b := AABB{Min: New3(0, 2, 4), Max: New3(2, 4, 8)}
	if got := b.Center(); got != (V3{1, 3, 6}) {
		t.Errorf("Center = %v", got)
	}
	if got := b.Size(); got != (V3{2, 2, 4}) {
		t.Errorf("Size = %v", got)
	}
}

// Property: points sampled inside the interval reported by Intersect lie
// inside (a slightly inflated) box, and tNear <= tFar always holds.
func TestIntersectIntervalProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	box := AABB{Min: New3(-1, -1, -1), Max: New3(1, 1, 1)}
	f := func() bool {
		ray := Ray{Origin: genV3(r), Dir: genV3(r).Norm()}
		if ray.Dir.Len() == 0 {
			return true
		}
		tn, tf, ok := box.Intersect(ray)
		if !ok {
			return true
		}
		if tn > tf {
			return false
		}
		inflated := AABB{Min: New3(-1.001, -1.001, -1.001), Max: New3(1.001, 1.001, 1.001)}
		mid := ray.At((tn + tf) / 2)
		return inflated.Contains(mid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: ray/box intersection is symmetric under box translation — moving
// both box and ray origin by the same offset preserves the interval.
func TestIntersectTranslationInvarianceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	f := func() bool {
		box := AABB{Min: New3(-1, -1, -1), Max: New3(1, 1, 1)}
		ray := Ray{Origin: genV3(r), Dir: genV3(r).Norm()}
		if ray.Dir.Len() == 0 {
			return true
		}
		off := genV3(r)
		boxT := AABB{Min: box.Min.Add(off), Max: box.Max.Add(off)}
		rayT := Ray{Origin: ray.Origin.Add(off), Dir: ray.Dir}
		tn1, tf1, ok1 := box.Intersect(ray)
		tn2, tf2, ok2 := boxT.Intersect(rayT)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return approx(tn1, tn2, 2e-3) && approx(tf1, tf2, 2e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
