package vec

import "math"

// M4 is a 4×4 matrix in row-major order: M[row][col].
type M4 [4][4]float32

// Identity returns the identity matrix.
func Identity() M4 {
	var m M4
	m[0][0], m[1][1], m[2][2], m[3][3] = 1, 1, 1, 1
	return m
}

// MulM returns the matrix product a * b.
func (a M4) MulM(b M4) M4 {
	var r M4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float32
			for k := 0; k < 4; k++ {
				s += a[i][k] * b[k][j]
			}
			r[i][j] = s
		}
	}
	return r
}

// MulV returns the matrix-vector product a * v.
func (a M4) MulV(v V4) V4 {
	return V4{
		a[0][0]*v.X + a[0][1]*v.Y + a[0][2]*v.Z + a[0][3]*v.W,
		a[1][0]*v.X + a[1][1]*v.Y + a[1][2]*v.Z + a[1][3]*v.W,
		a[2][0]*v.X + a[2][1]*v.Y + a[2][2]*v.Z + a[2][3]*v.W,
		a[3][0]*v.X + a[3][1]*v.Y + a[3][2]*v.Z + a[3][3]*v.W,
	}
}

// MulPoint transforms the point p (w=1) by a and performs the perspective
// divide.
func (a M4) MulPoint(p V3) V3 {
	v := a.MulV(V4{p.X, p.Y, p.Z, 1})
	if v.W != 0 && v.W != 1 {
		inv := 1 / v.W
		return V3{v.X * inv, v.Y * inv, v.Z * inv}
	}
	return V3{v.X, v.Y, v.Z}
}

// Translate returns a translation matrix by t.
func Translate(t V3) M4 {
	m := Identity()
	m[0][3], m[1][3], m[2][3] = t.X, t.Y, t.Z
	return m
}

// ScaleM returns a scaling matrix by s.
func ScaleM(s V3) M4 {
	var m M4
	m[0][0], m[1][1], m[2][2], m[3][3] = s.X, s.Y, s.Z, 1
	return m
}

// RotateY returns a rotation matrix about the Y axis by angle radians.
func RotateY(angle float64) M4 {
	c := float32(math.Cos(angle))
	s := float32(math.Sin(angle))
	m := Identity()
	m[0][0], m[0][2] = c, s
	m[2][0], m[2][2] = -s, c
	return m
}

// RotateX returns a rotation matrix about the X axis by angle radians.
func RotateX(angle float64) M4 {
	c := float32(math.Cos(angle))
	s := float32(math.Sin(angle))
	m := Identity()
	m[1][1], m[1][2] = c, -s
	m[2][1], m[2][2] = s, c
	return m
}

// LookAt builds a right-handed view matrix with the camera at eye, looking
// at center, with the given up vector.
func LookAt(eye, center, up V3) M4 {
	f := center.Sub(eye).Norm()
	s := f.Cross(up.Norm()).Norm()
	u := s.Cross(f)
	m := Identity()
	m[0][0], m[0][1], m[0][2] = s.X, s.Y, s.Z
	m[1][0], m[1][1], m[1][2] = u.X, u.Y, u.Z
	m[2][0], m[2][1], m[2][2] = -f.X, -f.Y, -f.Z
	m[0][3] = -s.Dot(eye)
	m[1][3] = -u.Dot(eye)
	m[2][3] = f.Dot(eye)
	return m
}

// Perspective builds a right-handed perspective projection matrix.
// fovY is the vertical field of view in radians.
func Perspective(fovY, aspect, near, far float64) M4 {
	f := float32(1 / math.Tan(fovY/2))
	var m M4
	m[0][0] = f / float32(aspect)
	m[1][1] = f
	m[2][2] = float32((far + near) / (near - far))
	m[2][3] = float32(2 * far * near / (near - far))
	m[3][2] = -1
	return m
}

// Inverse returns the inverse of a and whether a was invertible, using
// Gauss-Jordan elimination with partial pivoting in float64.
func (a M4) Inverse() (M4, bool) {
	var aug [4][8]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			aug[i][j] = float64(a[i][j])
		}
		aug[i][4+i] = 1
	}
	for col := 0; col < 4; col++ {
		pivot := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-12 {
			return M4{}, false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		p := aug[col][col]
		for j := 0; j < 8; j++ {
			aug[col][j] /= p
		}
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 8; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	var inv M4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			inv[i][j] = float32(aug[i][4+j])
		}
	}
	return inv, true
}
