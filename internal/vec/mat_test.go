package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func m4Approx(a, b M4, eps float32) bool {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !approx(a[i][j], b[i][j], eps) {
				return false
			}
		}
	}
	return true
}

func genM4(r *rand.Rand) M4 {
	var m M4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m[i][j] = float32(r.Float64()*4 - 2)
		}
	}
	return m
}

func TestIdentity(t *testing.T) {
	id := Identity()
	v := New4(1, 2, 3, 4)
	if got := id.MulV(v); got != v {
		t.Errorf("I*v = %v, want %v", got, v)
	}
	m := genM4(rand.New(rand.NewSource(7)))
	if !m4Approx(id.MulM(m), m, 0) || !m4Approx(m.MulM(id), m, 0) {
		t.Error("identity is not a multiplicative identity")
	}
}

func TestTranslateScale(t *testing.T) {
	tr := Translate(New3(1, 2, 3))
	p := tr.MulPoint(New3(0, 0, 0))
	if p != (V3{1, 2, 3}) {
		t.Errorf("translate origin = %v", p)
	}
	sc := ScaleM(New3(2, 3, 4))
	p = sc.MulPoint(New3(1, 1, 1))
	if p != (V3{2, 3, 4}) {
		t.Errorf("scale = %v", p)
	}
}

func TestRotations(t *testing.T) {
	ry := RotateY(math.Pi / 2)
	p := ry.MulPoint(New3(1, 0, 0))
	if !v3Approx(p, New3(0, 0, -1), 1e-6) {
		t.Errorf("RotateY(90°) of x-axis = %v, want (0,0,-1)", p)
	}
	rx := RotateX(math.Pi / 2)
	p = rx.MulPoint(New3(0, 1, 0))
	if !v3Approx(p, New3(0, 0, 1), 1e-6) {
		t.Errorf("RotateX(90°) of y-axis = %v, want (0,0,1)", p)
	}
}

func TestLookAt(t *testing.T) {
	// Camera at +Z looking at origin: origin should map in front of the
	// camera (negative view-space z), and the eye to view-space origin.
	view := LookAt(New3(0, 0, 5), New3(0, 0, 0), New3(0, 1, 0))
	p := view.MulPoint(New3(0, 0, 0))
	if !v3Approx(p, New3(0, 0, -5), 1e-5) {
		t.Errorf("LookAt maps target to %v, want (0,0,-5)", p)
	}
	eye := view.MulPoint(New3(0, 0, 5))
	if !v3Approx(eye, New3(0, 0, 0), 1e-5) {
		t.Errorf("LookAt maps eye to %v, want origin", eye)
	}
}

func TestPerspectiveDepthRange(t *testing.T) {
	proj := Perspective(math.Pi/3, 1, 1, 100)
	// A point on the near plane maps to NDC z = -1, far plane to +1.
	near := proj.MulPoint(New3(0, 0, -1))
	far := proj.MulPoint(New3(0, 0, -100))
	if !approx(near.Z, -1, 1e-4) {
		t.Errorf("near plane NDC z = %v, want -1", near.Z)
	}
	if !approx(far.Z, 1, 1e-4) {
		t.Errorf("far plane NDC z = %v, want 1", far.Z)
	}
}

func TestInverse(t *testing.T) {
	m := Translate(New3(1, 2, 3)).MulM(RotateY(0.7)).MulM(ScaleM(New3(2, 2, 2)))
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("matrix should be invertible")
	}
	if !m4Approx(m.MulM(inv), Identity(), 1e-5) {
		t.Errorf("m * m^-1 != I:\n%v", m.MulM(inv))
	}
	var singular M4 // zero matrix
	if _, ok := singular.Inverse(); ok {
		t.Error("zero matrix reported invertible")
	}
}

// Property: (A*B)*v == A*(B*v) — matrix multiplication is consistent with
// successive transformation.
func TestMulAssociativityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		a, b := genM4(r), genM4(r)
		v := V4{float32(r.Float64()), float32(r.Float64()), float32(r.Float64()), 1}
		lhs := a.MulM(b).MulV(v)
		rhs := a.MulV(b.MulV(v))
		return approx(lhs.X, rhs.X, 1e-3) && approx(lhs.Y, rhs.Y, 1e-3) &&
			approx(lhs.Z, rhs.Z, 1e-3) && approx(lhs.W, rhs.W, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: for random well-conditioned matrices built from rigid pieces,
// inverse(M) * M ≈ I.
func TestInverseProperty(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func() bool {
		m := Translate(genV3(r)).
			MulM(RotateY(r.Float64() * 6)).
			MulM(RotateX(r.Float64() * 6)).
			MulM(ScaleM(New3(1+r.Float64(), 1+r.Float64(), 1+r.Float64())))
		inv, ok := m.Inverse()
		if !ok {
			return false
		}
		return m4Approx(inv.MulM(m), Identity(), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
