package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func v3Approx(a, b V3, eps float32) bool {
	return approx(a.X, b.X, eps) && approx(a.Y, b.Y, eps) && approx(a.Z, b.Z, eps)
}

// genV3 draws a bounded random vector so float32 round-off stays predictable.
func genV3(r *rand.Rand) V3 {
	return New3(r.Float64()*20-10, r.Float64()*20-10, r.Float64()*20-10)
}

func TestAddSub(t *testing.T) {
	a := New3(1, 2, 3)
	b := New3(4, 5, 6)
	if got := a.Add(b); got != (V3{5, 7, 9}) {
		t.Errorf("Add = %v, want {5 7 9}", got)
	}
	if got := b.Sub(a); got != (V3{3, 3, 3}) {
		t.Errorf("Sub = %v, want {3 3 3}", got)
	}
}

func TestDotCross(t *testing.T) {
	x := New3(1, 0, 0)
	y := New3(0, 1, 0)
	z := New3(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := x.Dot(y); got != 0 {
		t.Errorf("x dot y = %v, want 0", got)
	}
	if got := x.Dot(x); got != 1 {
		t.Errorf("x dot x = %v, want 1", got)
	}
}

func TestNorm(t *testing.T) {
	v := New3(3, 4, 0)
	n := v.Norm()
	if !approx(n.Len(), 1, 1e-6) {
		t.Errorf("Norm length = %v, want 1", n.Len())
	}
	zero := V3{}
	if zero.Norm() != zero {
		t.Errorf("Norm of zero vector should stay zero")
	}
}

func TestLerp(t *testing.T) {
	a := New3(0, 0, 0)
	b := New3(2, 4, 8)
	if got := a.Lerp(b, 0.5); got != (V3{1, 2, 4}) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v, want a", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v, want b", got)
	}
}

func TestMinMax(t *testing.T) {
	a := New3(1, 5, 3)
	b := New3(2, 4, 3)
	if got := a.Min(b); got != (V3{1, 4, 3}) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != (V3{2, 5, 3}) {
		t.Errorf("Max = %v", got)
	}
}

// Property: cross product is orthogonal to both operands.
func TestCrossOrthogonalProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := genV3(r), genV3(r)
		c := a.Cross(b)
		// Tolerance scaled by magnitudes involved.
		tol := (a.Len()*b.Len() + 1) * 1e-4
		return approx(c.Dot(a), 0, tol) && approx(c.Dot(b), 0, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: dot product is commutative and bilinear in the first argument.
func TestDotBilinearProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b, c := genV3(r), genV3(r), genV3(r)
		lhs := a.Add(b).Dot(c)
		rhs := a.Dot(c) + b.Dot(c)
		return approx(lhs, rhs, 1e-2) && approx(a.Dot(b), b.Dot(a), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Lagrange identity |a×b|² = |a|²|b|² − (a·b)².
func TestCrossLagrangeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := genV3(r), genV3(r)
		c := a.Cross(b)
		lhs := float64(c.Dot(c))
		rhs := float64(a.Dot(a))*float64(b.Dot(b)) - float64(a.Dot(b))*float64(a.Dot(b))
		return math.Abs(lhs-rhs) <= 1e-2*(math.Abs(rhs)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestV4Ops(t *testing.T) {
	a := New4(1, 2, 3, 4)
	b := New4(4, 3, 2, 1)
	if got := a.Add(b); got != (V4{5, 5, 5, 5}) {
		t.Errorf("V4 Add = %v", got)
	}
	if got := a.Scale(2); got != (V4{2, 4, 6, 8}) {
		t.Errorf("V4 Scale = %v", got)
	}
	if got := a.XYZ(); got != (V3{1, 2, 3}) {
		t.Errorf("XYZ = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (V4{2.5, 2.5, 2.5, 2.5}) {
		t.Errorf("V4 Lerp = %v", got)
	}
}
