// Package img provides the float framebuffer the renderer composites
// into, PNG/PPM encoding, and image comparison helpers for tests.
package img

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"

	"gvmr/internal/vec"
)

// Image is a W×H framebuffer of linear RGBA colors.
type Image struct {
	W, H int
	Pix  []vec.V4
}

// New allocates an image filled with the given color.
func New(w, h int, fill vec.V4) *Image {
	im := &Image{W: w, H: h, Pix: make([]vec.V4, w*h)}
	for i := range im.Pix {
		im.Pix[i] = fill
	}
	return im
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) vec.V4 { return im.Pix[y*im.W+x] }

// Set stores the pixel at (x, y).
func (im *Image) Set(x, y int, c vec.V4) { im.Pix[y*im.W+x] = c }

// SetKey stores a pixel addressed by its MapReduce key (y*W + x).
func (im *Image) SetKey(key int32, c vec.V4) { im.Pix[key] = c }

// clamp8 converts a linear channel to 8-bit with clamping.
func clamp8(v float32) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}

// ToNRGBA converts to an 8-bit stdlib image.
func (im *Image) ToNRGBA() *image.NRGBA {
	out := image.NewNRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			c := im.At(x, y)
			out.SetNRGBA(x, y, color.NRGBA{
				R: clamp8(c.X), G: clamp8(c.Y), B: clamp8(c.Z), A: 255,
			})
		}
	}
	return out
}

// EncodePNG writes the image as PNG.
func (im *Image) EncodePNG(w io.Writer) error {
	return png.Encode(w, im.ToNRGBA())
}

// WritePNG writes the image to a PNG file.
func (im *Image) WritePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := im.EncodePNG(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// WritePPM writes the image as a binary PPM (P6), handy for eyeballing
// without a PNG decoder.
func (im *Image) WritePPM(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	for _, c := range im.Pix {
		if _, err := w.Write([]byte{clamp8(c.X), clamp8(c.Y), clamp8(c.Z)}); err != nil {
			return err
		}
	}
	return w.Flush()
}

// EncodeRaw writes the framebuffer as raw little-endian float32 RGBA —
// W·H·16 bytes, row-major, the exact bits the renderer composited. The
// render service's format=raw responses use it so clients (and the CI
// smoke test) can compare served bits against a direct render.
func (im *Image) EncodeRaw(w io.Writer) error {
	buf := make([]byte, 16<<10)
	n := 0
	for _, c := range im.Pix {
		binary.LittleEndian.PutUint32(buf[n:], math.Float32bits(c.X))
		binary.LittleEndian.PutUint32(buf[n+4:], math.Float32bits(c.Y))
		binary.LittleEndian.PutUint32(buf[n+8:], math.Float32bits(c.Z))
		binary.LittleEndian.PutUint32(buf[n+12:], math.Float32bits(c.W))
		n += 16
		if n == len(buf) {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			n = 0
		}
	}
	if n > 0 {
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// RawBytes returns the number of bytes EncodeRaw produces for a w×h image.
func RawBytes(w, h int) int64 { return int64(w) * int64(h) * 16 }

// DecodeRaw reads a raw float32 RGBA framebuffer (EncodeRaw's format) of
// the given dimensions.
func DecodeRaw(r io.Reader, w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("img: invalid raw size %dx%d", w, h)
	}
	data := make([]byte, RawBytes(w, h))
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("img: raw framebuffer: %w", err)
	}
	im := &Image{W: w, H: h, Pix: make([]vec.V4, w*h)}
	for i := range im.Pix {
		n := i * 16
		im.Pix[i] = vec.V4{
			X: math.Float32frombits(binary.LittleEndian.Uint32(data[n:])),
			Y: math.Float32frombits(binary.LittleEndian.Uint32(data[n+4:])),
			Z: math.Float32frombits(binary.LittleEndian.Uint32(data[n+8:])),
			W: math.Float32frombits(binary.LittleEndian.Uint32(data[n+12:])),
		}
	}
	return im, nil
}

// Diff compares two images and returns the maximum and mean absolute
// channel error (RGB only). Mismatched sizes return max error 2.
func Diff(a, b *Image) (maxErr, meanErr float64) {
	if a.W != b.W || a.H != b.H {
		return 2, 2
	}
	var sum float64
	for i := range a.Pix {
		for _, d := range []float32{
			a.Pix[i].X - b.Pix[i].X,
			a.Pix[i].Y - b.Pix[i].Y,
			a.Pix[i].Z - b.Pix[i].Z,
		} {
			v := float64(d)
			if v < 0 {
				v = -v
			}
			sum += v
			if v > maxErr {
				maxErr = v
			}
		}
	}
	meanErr = sum / float64(3*len(a.Pix))
	return maxErr, meanErr
}

// Digest returns a SHA-256 hex digest over the image dimensions and the
// exact float32 bit patterns of every pixel. Two images digest equal iff
// they are bit-identical — the golden-image regression tests and the
// serial-vs-parallel determinism tests compare renders through it.
func (im *Image) Digest() string {
	h := sha256.New()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(im.W))
	binary.LittleEndian.PutUint64(buf[8:], uint64(im.H))
	h.Write(buf[:])
	for _, c := range im.Pix {
		binary.LittleEndian.PutUint32(buf[0:], math.Float32bits(c.X))
		binary.LittleEndian.PutUint32(buf[4:], math.Float32bits(c.Y))
		binary.LittleEndian.PutUint32(buf[8:], math.Float32bits(c.Z))
		binary.LittleEndian.PutUint32(buf[12:], math.Float32bits(c.W))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// MeanLuminance returns the average of (R+G+B)/3 over all pixels: a cheap
// perceptual statistic used by tests to assert an image is non-empty.
func (im *Image) MeanLuminance() float64 {
	var sum float64
	for _, c := range im.Pix {
		sum += float64(c.X+c.Y+c.Z) / 3
	}
	return sum / float64(len(im.Pix))
}
