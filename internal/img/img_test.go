package img

import (
	"bytes"
	"image/png"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gvmr/internal/vec"
)

func TestNewFill(t *testing.T) {
	fill := vec.New4(0.25, 0.5, 0.75, 1)
	im := New(4, 3, fill)
	if im.W != 4 || im.H != 3 || len(im.Pix) != 12 {
		t.Fatalf("geometry wrong: %dx%d, %d pixels", im.W, im.H, len(im.Pix))
	}
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			if im.At(x, y) != fill {
				t.Fatalf("pixel (%d,%d) not filled", x, y)
			}
		}
	}
}

func TestSetAtKey(t *testing.T) {
	im := New(5, 4, vec.V4{})
	c := vec.New4(1, 0, 0, 1)
	im.Set(3, 2, c)
	if im.At(3, 2) != c {
		t.Error("Set/At mismatch")
	}
	if im.Pix[2*5+3] != c {
		t.Error("Set wrote wrong linear index")
	}
	im.SetKey(int32(1*5+4), c)
	if im.At(4, 1) != c {
		t.Error("SetKey wrote wrong pixel")
	}
}

func TestClampAndEncodePNG(t *testing.T) {
	im := New(2, 2, vec.V4{})
	im.Set(0, 0, vec.New4(2, -1, 0.5, 1)) // out-of-range channels clamp
	var buf bytes.Buffer
	if err := im.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, g, b, _ := decoded.At(0, 0).RGBA()
	if r>>8 != 255 {
		t.Errorf("over-range red = %d, want 255", r>>8)
	}
	if g>>8 != 0 {
		t.Errorf("negative green = %d, want 0", g>>8)
	}
	if b>>8 != 128 {
		t.Errorf("half blue = %d, want 128", b>>8)
	}
}

func TestWritePNGAndPPM(t *testing.T) {
	dir := t.TempDir()
	im := New(3, 3, vec.New4(0.2, 0.4, 0.6, 1))
	pngPath := filepath.Join(dir, "x.png")
	if err := im.WritePNG(pngPath); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(pngPath); err != nil || fi.Size() == 0 {
		t.Errorf("png not written: %v", err)
	}
	ppmPath := filepath.Join(dir, "x.ppm")
	if err := im.WritePPM(ppmPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ppmPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("P6\n3 3\n255\n")) {
		t.Errorf("ppm header wrong: %q", data[:12])
	}
	if len(data) != 11+3*3*3 {
		t.Errorf("ppm payload size %d", len(data))
	}
}

func TestDiff(t *testing.T) {
	a := New(2, 2, vec.V4{})
	b := New(2, 2, vec.V4{})
	if mx, mn := Diff(a, b); mx != 0 || mn != 0 {
		t.Errorf("identical images differ: %v %v", mx, mn)
	}
	b.Set(1, 1, vec.New4(0.5, 0, 0, 1))
	mx, mean := Diff(a, b)
	if mx < 0.49 || mx > 0.51 {
		t.Errorf("max diff = %v, want 0.5", mx)
	}
	if mean <= 0 || mean > mx {
		t.Errorf("mean diff = %v", mean)
	}
	c := New(3, 2, vec.V4{})
	if mx, _ := Diff(a, c); mx != 2 {
		t.Errorf("size mismatch should return sentinel 2, got %v", mx)
	}
}

func TestMeanLuminance(t *testing.T) {
	im := New(2, 1, vec.V4{})
	im.Set(0, 0, vec.New4(1, 1, 1, 1))
	got := im.MeanLuminance()
	if got < 0.49 || got > 0.51 {
		t.Errorf("MeanLuminance = %v, want 0.5", got)
	}
}

func TestDigest(t *testing.T) {
	a := New(4, 3, vec.V4{X: 0.25, W: 1})
	b := New(4, 3, vec.V4{X: 0.25, W: 1})
	if a.Digest() != b.Digest() {
		t.Error("identical images digest differently")
	}
	if len(a.Digest()) != 64 {
		t.Errorf("digest length %d, want 64 hex chars", len(a.Digest()))
	}
	// A one-ULP change in one channel of one pixel must change the digest.
	c := New(4, 3, vec.V4{X: 0.25, W: 1})
	px := c.At(2, 1)
	px.Y = math.Float32frombits(math.Float32bits(px.Y) + 1)
	c.Set(2, 1, px)
	if a.Digest() == c.Digest() {
		t.Error("one-ULP pixel change not reflected in digest")
	}
	// Same pixel data at different dims must digest differently.
	d := New(3, 4, vec.V4{X: 0.25, W: 1})
	if a.Digest() == d.Digest() {
		t.Error("dims not part of the digest")
	}
}

// TestRawRoundTrip checks EncodeRaw/DecodeRaw preserve every bit,
// including NaN payloads and negative zeros.
func TestRawRoundTrip(t *testing.T) {
	im := New(33, 7, vec.V4{})
	for i := range im.Pix {
		im.Pix[i] = vec.V4{
			X: float32(i) * 0.013, Y: -float32(i),
			Z: float32(math.Inf(1)), W: float32(math.Copysign(0, -1)),
		}
	}
	im.Pix[5].X = float32(math.NaN())
	var buf bytes.Buffer
	if err := im.EncodeRaw(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != RawBytes(im.W, im.H) {
		t.Fatalf("raw size %d != %d", buf.Len(), RawBytes(im.W, im.H))
	}
	back, err := DecodeRaw(&buf, im.W, im.H)
	if err != nil {
		t.Fatal(err)
	}
	if back.Digest() != im.Digest() {
		t.Error("raw round trip changed bits")
	}
	if _, err := DecodeRaw(bytes.NewReader(nil), 2, 2); err == nil {
		t.Error("truncated raw accepted")
	}
	if _, err := DecodeRaw(bytes.NewReader(nil), 0, 2); err == nil {
		t.Error("zero-size raw accepted")
	}
}
