// Package resilience is the cluster-wide failure and overload policy
// layer (DESIGN.md §13): end-to-end deadline propagation, per-worker
// circuit breakers, retry budgets, and priority classes for load
// shedding. The mechanisms are deliberately dependency-free and
// clock-injectable so the dist and server layers can share one policy
// vocabulary and the chaos tests can drive every state transition
// deterministically.
package resilience

import (
	"context"
	"fmt"
)

// Wire headers of the policy layer. They ride every hop (client →
// coordinator → worker) so policy decisions compose across the fleet
// without being part of any frame identity.
const (
	// HeaderDeadline carries the request's remaining end-to-end budget in
	// integer milliseconds. Relative rather than absolute so clock skew
	// between nodes cannot corrupt the budget; each hop re-encodes its
	// own remaining time.
	HeaderDeadline = "X-Gvmr-Deadline"
	// HeaderPriority names the request's priority class ("interactive",
	// "batch", "speculative"). Absent means interactive.
	HeaderPriority = "X-Gvmr-Priority"
	// HeaderDegraded marks a brownout response: the frame was rendered at
	// reduced quality to meet a deadline ("1"). Only ever set when the
	// operator opted in via -allow-degraded.
	HeaderDegraded = "X-Gvmr-Degraded"
)

// Priority is a request's load-shedding class. Higher values are more
// important: under pressure admission sheds the lowest class first, so
// speculative work (hedges) dies before batch work, and batch before
// interactive.
type Priority int

// Priority classes, lowest (shed first) to highest.
const (
	Speculative Priority = iota
	Batch
	Interactive
)

// String returns the canonical wire spelling.
func (p Priority) String() string {
	switch p {
	case Speculative:
		return "speculative"
	case Batch:
		return "batch"
	case Interactive:
		return "interactive"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// ParsePriority decodes a wire spelling. Empty means interactive (the
// default class: an unannotated client is a human waiting on a frame).
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	case "speculative":
		return Speculative, nil
	}
	return Interactive, fmt.Errorf("resilience: unknown priority %q (interactive|batch|speculative)", s)
}

// priorityKey is the context key for the request's priority class.
type priorityKey struct{}

// WithPriority annotates a context with the request's priority class.
// Priority is policy, not identity: it never reaches a cache key or a
// frame digest, so it travels the context, not the request.
func WithPriority(ctx context.Context, p Priority) context.Context {
	return context.WithValue(ctx, priorityKey{}, p)
}

// PriorityFrom extracts the priority class, defaulting to interactive.
func PriorityFrom(ctx context.Context) Priority {
	if p, ok := ctx.Value(priorityKey{}).(Priority); ok {
		return p
	}
	return Interactive
}
