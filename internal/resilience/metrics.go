package resilience

import "sync/atomic"

// Metrics aggregates the policy layer's event counters. One instance is
// shared by a node's breakers, retry budget, admission gate and brownout
// path, and surfaces as the `resilience` block in /stats. All methods
// are safe on a nil receiver so optional wiring stays unconditional at
// the call sites.
type Metrics struct {
	breakerOpens         atomic.Int64
	halfOpenProbes       atomic.Int64
	shedSpeculative      atomic.Int64
	shedBatch            atomic.Int64
	shedInteractive      atomic.Int64
	retryBudgetExhausted atomic.Int64
	degradedFrames       atomic.Int64
	deadlineAborts       atomic.Int64
}

// BreakerOpened records a closed→open (or half-open→open) transition.
func (m *Metrics) BreakerOpened() {
	if m != nil {
		m.breakerOpens.Add(1)
	}
}

// HalfOpenProbe records one trial request admitted while half-open.
func (m *Metrics) HalfOpenProbe() {
	if m != nil {
		m.halfOpenProbes.Add(1)
	}
}

// Shed records one request rejected by priority shedding.
func (m *Metrics) Shed(p Priority) {
	if m == nil {
		return
	}
	switch p {
	case Speculative:
		m.shedSpeculative.Add(1)
	case Batch:
		m.shedBatch.Add(1)
	default:
		m.shedInteractive.Add(1)
	}
}

// BudgetExhausted records a retry or hedge denied by the retry budget.
func (m *Metrics) BudgetExhausted() {
	if m != nil {
		m.retryBudgetExhausted.Add(1)
	}
}

// DegradedFrame records one brownout frame served at reduced quality.
func (m *Metrics) DegradedFrame() {
	if m != nil {
		m.degradedFrames.Add(1)
	}
}

// DeadlineAbort records work abandoned because its end-to-end deadline
// expired (a worker's 504, or a coordinator-side expiry).
func (m *Metrics) DeadlineAbort() {
	if m != nil {
		m.deadlineAborts.Add(1)
	}
}

// Snapshot is the JSON form of the counters (the /stats `resilience`
// block).
type Snapshot struct {
	BreakerOpens         int64            `json:"breaker_opens"`
	HalfOpenProbes       int64            `json:"half_open_probes"`
	ShedsByClass         map[string]int64 `json:"sheds_by_class"`
	RetryBudgetExhausted int64            `json:"retry_budget_exhausted"`
	DegradedFrames       int64            `json:"degraded_frames"`
	DeadlineAborts       int64            `json:"deadline_aborts"`
}

// Snapshot captures the counters. Safe on nil (all-zero snapshot).
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{ShedsByClass: map[string]int64{}}
	if m == nil {
		return s
	}
	s.BreakerOpens = m.breakerOpens.Load()
	s.HalfOpenProbes = m.halfOpenProbes.Load()
	s.ShedsByClass[Speculative.String()] = m.shedSpeculative.Load()
	s.ShedsByClass[Batch.String()] = m.shedBatch.Load()
	s.ShedsByClass[Interactive.String()] = m.shedInteractive.Load()
	s.RetryBudgetExhausted = m.retryBudgetExhausted.Load()
	s.DegradedFrames = m.degradedFrames.Load()
	s.DeadlineAborts = m.deadlineAborts.Load()
	return s
}
