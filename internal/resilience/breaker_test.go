package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is the deterministic clock the breaker tests drive.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBreakerLifecycle drives closed→open→half-open→closed entirely on
// the fake clock: the full lifecycle is a pure function of outcomes and
// time, which is what makes the chaos suite deterministic.
func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	var m Metrics
	b := NewBreaker(BreakerConfig{
		Window: 10 * time.Second, Buckets: 5, MinRequests: 4, FailureRatio: 0.5,
		OpenFor: 5 * time.Second, CloseAfter: 2, Now: clk.Now, Metrics: &m,
	})
	if got := b.State(); got != StateClosed {
		t.Fatalf("new breaker state = %v, want closed", got)
	}

	// Below MinRequests the ratio can never trip, even at 100% failure.
	b.Failure()
	b.Failure()
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 3 failures (MinRequests=4) = %v, want closed", got)
	}
	if !b.Placeable() {
		t.Fatal("closed breaker must be placeable")
	}

	// The fourth outcome reaches MinRequests at 100% failure: open.
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 4/4 failures = %v, want open", got)
	}
	if b.Placeable() || b.Admit() {
		t.Fatal("open breaker must refuse placement and admission")
	}
	if got := m.Snapshot().BreakerOpens; got != 1 {
		t.Fatalf("breaker_opens = %d, want 1", got)
	}

	// Stragglers from before the open change nothing.
	b.Success()
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after stragglers = %v, want open", got)
	}

	// Not yet: one nanosecond before OpenFor elapses it is still open.
	clk.Advance(5*time.Second - time.Nanosecond)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state before OpenFor elapsed = %v, want open", got)
	}
	clk.Advance(time.Nanosecond)
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after OpenFor = %v, want half-open", got)
	}

	// One probe slot: the first Admit takes it, the second is refused.
	if !b.Admit() {
		t.Fatal("half-open breaker must admit the first probe")
	}
	if b.Admit() || b.Placeable() {
		t.Fatal("half-open breaker must refuse a second concurrent probe")
	}
	if got := m.Snapshot().HalfOpenProbes; got != 1 {
		t.Fatalf("half_open_probes = %d, want 1", got)
	}

	// First probe succeeds: still half-open (CloseAfter=2), slot free.
	b.Success()
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", got)
	}
	if !b.Admit() {
		t.Fatal("half-open breaker must admit another probe after success")
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after %d probe successes = %v, want closed", 2, got)
	}

	// The close reset the window: one failure cannot re-trip it.
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after close + 1 failure = %v, want closed", got)
	}
}

// TestBreakerProbeFailureReopens: any half-open probe failure re-opens
// the breaker for a full OpenFor.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	var m Metrics
	b := NewBreaker(BreakerConfig{
		MinRequests: 2, OpenFor: 3 * time.Second, Now: clk.Now, Metrics: &m,
	})
	b.Failure()
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	clk.Advance(3 * time.Second)
	if !b.Admit() {
		t.Fatal("half-open breaker must admit a probe")
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	clk.Advance(3*time.Second - time.Millisecond)
	if b.Placeable() {
		t.Fatal("re-opened breaker must stay open a full OpenFor")
	}
	if got := m.Snapshot().BreakerOpens; got != 2 {
		t.Fatalf("breaker_opens = %d, want 2 (open + re-open)", got)
	}
}

// TestBreakerWindowAges: failures older than the window stop counting,
// so a brief historic blip can never combine with fresh noise to trip
// the breaker.
func TestBreakerWindowAges(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		Window: 10 * time.Second, Buckets: 5, MinRequests: 4, FailureRatio: 0.5, Now: clk.Now,
	})
	b.Failure()
	b.Failure()
	b.Failure()
	clk.Advance(11 * time.Second) // the whole window ages out
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state = %v, want closed (old failures aged out)", got)
	}
	// Fresh volume with a healthy majority stays closed...
	b.Success()
	b.Success()
	b.Success()
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state at 2/6 failures = %v, want closed", got)
	}
	// ...until failures reach the ratio.
	b.Failure()
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state at 4/8 failures = %v, want open", got)
	}
}

// TestBreakerDefaultsAndRealClock: the zero config works against the
// real clock (the production path).
func TestBreakerDefaultsAndRealClock(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if !b.Placeable() || !b.Admit() {
		t.Fatal("fresh breaker must place and admit")
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}
