package resilience

import (
	"fmt"
	"strconv"
	"time"
)

// MaxDeadline bounds any propagated deadline: a budget beyond an hour is
// not a deadline, and a hostile header must not be able to pin huge
// timers.
const MaxDeadline = time.Hour

// EncodeDeadline formats a remaining budget as the HeaderDeadline value:
// integer milliseconds, rounded up so a sub-millisecond remainder still
// propagates as a positive budget instead of silently vanishing.
func EncodeDeadline(remaining time.Duration) string {
	ms := (remaining + time.Millisecond - 1) / time.Millisecond
	if ms < 1 {
		ms = 1
	}
	return strconv.FormatInt(int64(ms), 10)
}

// ParseDeadline decodes a HeaderDeadline value. Absent ("") means no
// deadline. Values must be a positive integer millisecond count within
// MaxDeadline — a zero, negative, huge or malformed budget is rejected
// rather than clamped, so a corrupt header surfaces as a 400 instead of
// an arbitrarily-timed abort.
func ParseDeadline(s string) (time.Duration, bool, error) {
	if s == "" {
		return 0, false, nil
	}
	ms, err := strconv.ParseInt(s, 10, 64)
	if err != nil || ms < 1 || time.Duration(ms)*time.Millisecond > MaxDeadline {
		return 0, false, fmt.Errorf("resilience: bad %s header %q (want integer ms in [1, %d])",
			HeaderDeadline, s, int64(MaxDeadline/time.Millisecond))
	}
	return time.Duration(ms) * time.Millisecond, true, nil
}
