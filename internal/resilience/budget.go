package resilience

import "sync"

// BudgetConfig sizes a RetryBudget. The zero value takes every default.
type BudgetConfig struct {
	// Capacity is the bucket size in tokens (default 16). Each retry or
	// hedge costs one token, so Capacity bounds the burst of extra
	// attempts a sick fleet can generate before fast-failing.
	Capacity float64
	// Refill is the tokens credited per successful exchange (default
	// 0.1): sustained retry amplification is capped at Refill extra
	// attempts per success, ~10% with the default — a meltdown-proof
	// ceiling rather than a tuning knob.
	Refill float64
	// Metrics, when non-nil, receives exhaustion events.
	Metrics *Metrics
}

func (c *BudgetConfig) fillDefaults() {
	if c.Capacity <= 0 {
		c.Capacity = 16
	}
	if c.Refill <= 0 {
		c.Refill = 0.1
	}
}

// RetryBudget is a token bucket capping cluster-wide retry and hedge
// amplification: every extra attempt (anything beyond a batch's first
// placement) costs a token, and only successes mint new ones. When the
// bucket is empty the caller fast-fails instead of piling retries onto a
// fleet that is already sick. Safe for concurrent use.
type RetryBudget struct {
	mu     sync.Mutex
	cfg    BudgetConfig
	tokens float64
}

// NewRetryBudget builds a full bucket.
func NewRetryBudget(cfg BudgetConfig) *RetryBudget {
	cfg.fillDefaults()
	return &RetryBudget{cfg: cfg, tokens: cfg.Capacity}
}

// TryTake spends one token for a retry or hedge. False means the budget
// is exhausted — the caller must not launch the extra attempt.
func (b *RetryBudget) TryTake() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.cfg.Metrics.BudgetExhausted()
		return false
	}
	b.tokens--
	return true
}

// Credit refills Refill tokens after a successful exchange, up to
// Capacity.
func (b *RetryBudget) Credit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.cfg.Refill
	if b.tokens > b.cfg.Capacity {
		b.tokens = b.cfg.Capacity
	}
}

// Tokens reports the current balance (tests and stats).
func (b *RetryBudget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
