package resilience

import (
	"context"
	"testing"
	"time"
)

func TestRetryBudget(t *testing.T) {
	var m Metrics
	b := NewRetryBudget(BudgetConfig{Capacity: 2, Refill: 0.5, Metrics: &m})
	if !b.TryTake() || !b.TryTake() {
		t.Fatal("a full bucket must grant Capacity tokens")
	}
	if b.TryTake() {
		t.Fatal("an empty bucket must refuse")
	}
	if got := m.Snapshot().RetryBudgetExhausted; got != 1 {
		t.Fatalf("retry_budget_exhausted = %d, want 1", got)
	}
	// Two successes mint one token (Refill=0.5)...
	b.Credit()
	if b.TryTake() {
		t.Fatal("half a token must not grant a retry")
	}
	b.Credit()
	if !b.TryTake() {
		t.Fatal("two credits at Refill=0.5 must mint one token")
	}
	// ...and the balance never exceeds Capacity.
	for i := 0; i < 100; i++ {
		b.Credit()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens after overfill = %v, want Capacity=2", got)
	}
}

func TestPriorityOrderAndParse(t *testing.T) {
	if !(Speculative < Batch && Batch < Interactive) {
		t.Fatal("priority order must be speculative < batch < interactive")
	}
	for _, tc := range []struct {
		in   string
		want Priority
		ok   bool
	}{
		{"", Interactive, true},
		{"interactive", Interactive, true},
		{"batch", Batch, true},
		{"speculative", Speculative, true},
		{"INTERACTIVE", Interactive, false},
		{"hedge", Interactive, false},
	} {
		got, err := ParsePriority(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParsePriority(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParsePriority(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Round trip through the canonical spelling.
	for _, p := range []Priority{Speculative, Batch, Interactive} {
		back, err := ParsePriority(p.String())
		if err != nil || back != p {
			t.Fatalf("ParsePriority(%v.String()) = %v, %v", p, back, err)
		}
	}
}

func TestPriorityContext(t *testing.T) {
	if got := PriorityFrom(context.Background()); got != Interactive {
		t.Fatalf("default priority = %v, want interactive", got)
	}
	ctx := WithPriority(context.Background(), Speculative)
	if got := PriorityFrom(ctx); got != Speculative {
		t.Fatalf("priority = %v, want speculative", got)
	}
}

func TestDeadlineCodec(t *testing.T) {
	for _, tc := range []struct {
		in   time.Duration
		want string
	}{
		{time.Second, "1000"},
		{1500 * time.Microsecond, "2"}, // rounds up
		{time.Nanosecond, "1"},         // sub-ms budgets survive as 1ms
		{0, "1"},
		{-time.Second, "1"},
	} {
		if got := EncodeDeadline(tc.in); got != tc.want {
			t.Fatalf("EncodeDeadline(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
	d, ok, err := ParseDeadline("250")
	if err != nil || !ok || d != 250*time.Millisecond {
		t.Fatalf("ParseDeadline(250) = %v, %v, %v", d, ok, err)
	}
	if _, ok, err := ParseDeadline(""); ok || err != nil {
		t.Fatalf("empty header must mean no deadline, got ok=%v err=%v", ok, err)
	}
	for _, bad := range []string{"0", "-5", "abc", "1.5", "1e3", "99999999999999999999",
		"3600001" /* > MaxDeadline */} {
		if _, _, err := ParseDeadline(bad); err == nil {
			t.Fatalf("ParseDeadline(%q) accepted, want error", bad)
		}
	}
}

func TestMetricsSnapshot(t *testing.T) {
	var m Metrics
	m.Shed(Speculative)
	m.Shed(Speculative)
	m.Shed(Batch)
	m.Shed(Interactive)
	m.DegradedFrame()
	m.DeadlineAbort()
	s := m.Snapshot()
	if s.ShedsByClass["speculative"] != 2 || s.ShedsByClass["batch"] != 1 || s.ShedsByClass["interactive"] != 1 {
		t.Fatalf("sheds_by_class = %v", s.ShedsByClass)
	}
	if s.DegradedFrames != 1 || s.DeadlineAborts != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	// Nil receivers are inert, not panics: optional wiring stays simple.
	var nilM *Metrics
	nilM.BreakerOpened()
	nilM.Shed(Batch)
	if got := nilM.Snapshot(); got.BreakerOpens != 0 {
		t.Fatalf("nil metrics snapshot = %+v", got)
	}
}
