package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states.
const (
	// StateClosed: requests flow, outcomes feed the sliding error window.
	StateClosed BreakerState = iota
	// StateOpen: the node is ineligible for placement until OpenFor
	// elapses.
	StateOpen
	// StateHalfOpen: a bounded number of trial requests probe the node;
	// consecutive successes close the breaker, any failure re-opens it.
	StateHalfOpen
)

// String names the state for stats and logs.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig sizes a circuit breaker. The zero value takes every
// default, so callers configure only what they need.
type BreakerConfig struct {
	// Window is the sliding error-rate window (default 10s), divided into
	// Buckets count buckets (default 5) so old outcomes age out smoothly
	// instead of all at once.
	Window  time.Duration
	Buckets int
	// MinRequests is the minimum window volume before the ratio can trip
	// the breaker (default 5): two failures out of two requests is noise,
	// not evidence.
	MinRequests int
	// FailureRatio trips the breaker when failures/total reaches it over
	// a window with at least MinRequests outcomes (default 0.5).
	FailureRatio float64
	// OpenFor is how long an open breaker refuses placement before
	// half-opening (default 5s).
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent trial requests while half-open
	// (default 1): a recovering node gets a trickle, not the full load.
	HalfOpenProbes int
	// CloseAfter is the consecutive half-open successes required to close
	// (default 2).
	CloseAfter int
	// Now is the clock seam (default time.Now); the chaos tests inject a
	// fake clock to drive every transition deterministically.
	Now func() time.Time
	// Metrics, when non-nil, receives open and probe events.
	Metrics *Metrics
}

func (c *BreakerConfig) fillDefaults() {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 5
	}
	if c.MinRequests <= 0 {
		c.MinRequests = 5
	}
	if c.FailureRatio <= 0 || c.FailureRatio > 1 {
		c.FailureRatio = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// bucket is one slice of the sliding window.
type bucket struct {
	start      time.Time
	succ, fail int
}

// Breaker is a per-node circuit breaker: closed→open on a sliding
// error-rate window, open→half-open after OpenFor, half-open→closed on
// consecutive probe successes (any probe failure re-opens). Safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu         sync.Mutex
	state      BreakerState
	buckets    []bucket
	cur        int       // index of the active bucket
	openUntil  time.Time // open: when to half-open
	probes     int       // half-open: trial requests in flight
	consecSucc int       // half-open: consecutive successes so far
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.fillDefaults()
	b := &Breaker{cfg: cfg, buckets: make([]bucket, cfg.Buckets)}
	b.buckets[0].start = cfg.Now()
	return b
}

// advance lazily performs time-driven work under b.mu: bucket rotation
// and the open→half-open transition.
func (b *Breaker) advance(now time.Time) {
	if b.state == StateOpen && !now.Before(b.openUntil) {
		b.state = StateHalfOpen
		b.probes = 0
		b.consecSucc = 0
	}
	if b.state != StateClosed {
		return
	}
	per := b.cfg.Window / time.Duration(len(b.buckets))
	for now.Sub(b.buckets[b.cur].start) >= per {
		next := (b.cur + 1) % len(b.buckets)
		b.buckets[next] = bucket{start: b.buckets[b.cur].start.Add(per)}
		b.cur = next
		// A long quiet gap would loop here once per bucket width; cap the
		// catch-up by restarting the window at now.
		if now.Sub(b.buckets[b.cur].start) >= b.cfg.Window {
			for i := range b.buckets {
				b.buckets[i] = bucket{}
			}
			b.buckets[b.cur].start = now
		}
	}
}

// State reports the breaker's current position (performing any due
// open→half-open transition first).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(b.cfg.Now())
	return b.state
}

// Placeable reports whether placement may choose this node right now:
// closed always, open never, half-open only while a probe slot is free.
// It does not consume a probe slot — Admit does, at request time.
func (b *Breaker) Placeable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(b.cfg.Now())
	switch b.state {
	case StateOpen:
		return false
	case StateHalfOpen:
		return b.probes < b.cfg.HalfOpenProbes
	}
	return true
}

// Admit records the start of one exchange against the breaker. False
// means the breaker refuses (open, or half-open with every probe slot
// taken) and the caller must place elsewhere. A true return must be
// followed by exactly one Success or Failure.
func (b *Breaker) Admit() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(b.cfg.Now())
	switch b.state {
	case StateOpen:
		return false
	case StateHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		b.cfg.Metrics.HalfOpenProbe()
	}
	return true
}

// Cancel releases an admitted exchange without recording evidence: the
// caller cancelled (hedge win, teardown) or the end-to-end deadline
// expired, and neither outcome says anything about the node's health. In
// half-open this frees the probe slot so the next job can probe again.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(b.cfg.Now())
	if b.state == StateHalfOpen && b.probes > 0 {
		b.probes--
	}
}

// Success records a healthy exchange.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	b.advance(now)
	switch b.state {
	case StateClosed:
		b.buckets[b.cur].succ++
	case StateHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		b.consecSucc++
		if b.consecSucc >= b.cfg.CloseAfter {
			b.state = StateClosed
			for i := range b.buckets {
				b.buckets[i] = bucket{}
			}
			b.cur = 0
			b.buckets[0].start = now
		}
	case StateOpen:
		// A straggling success from before the breaker opened proves
		// nothing about the node now; drop it.
	}
}

// Failure records a node-fault exchange (never a caller cancel, a
// deadline abort, or a 4xx — the caller classifies first).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	b.advance(now)
	switch b.state {
	case StateClosed:
		b.buckets[b.cur].fail++
		succ, fail := 0, 0
		for _, bk := range b.buckets {
			succ += bk.succ
			fail += bk.fail
		}
		total := succ + fail
		if total >= b.cfg.MinRequests && float64(fail) >= b.cfg.FailureRatio*float64(total) {
			b.open(now)
		}
	case StateHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		b.open(now)
	case StateOpen:
		// Already open; a straggler changes nothing.
	}
}

// open transitions to StateOpen (caller holds b.mu).
func (b *Breaker) open(now time.Time) {
	b.state = StateOpen
	b.openUntil = now.Add(b.cfg.OpenFor)
	b.consecSucc = 0
	b.probes = 0
	b.cfg.Metrics.BreakerOpened()
}
