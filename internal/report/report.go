// Package report renders aligned plain-text tables for the benchmark
// harness: the rows and series the paper's figures plot, printed the way
// the original evaluation would have tabulated them.
package report

import (
	"fmt"
	"strings"

	"gvmr/internal/sim"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New creates a table.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cells beyond the header width are kept.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted values.
func (t *Table) Addf(format string, args ...any) {
	t.Add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Ms formats a sim duration in milliseconds.
func Ms(t sim.Time) string { return fmt.Sprintf("%.1f", t.Millis()) }

// Sec formats a sim duration in seconds.
func Sec(t sim.Time) string { return fmt.Sprintf("%.3f", t.Seconds()) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F0 formats a float with no decimals.
func F0(v float64) string { return fmt.Sprintf("%.0f", v) }
