package report

import (
	"strings"
	"testing"

	"gvmr/internal/sim"
)

func TestTableAlignment(t *testing.T) {
	tb := New("title", "col", "longer-column")
	tb.Add("a", "b")
	tb.Add("wiiide-row", "c")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "col") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line = %q", lines[2])
	}
	// Columns align: "b" and "c" start at the same offset.
	bIdx := strings.Index(lines[3], "b")
	cIdx := strings.Index(lines[4], "c")
	if bIdx != cIdx {
		t.Errorf("columns misaligned: %d vs %d\n%s", bIdx, cIdx, out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.Add("1")
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("untitled table should not start with a blank line")
	}
	if !strings.HasPrefix(out, "a") {
		t.Errorf("out = %q", out)
	}
}

func TestAddf(t *testing.T) {
	tb := New("t", "x", "y")
	tb.Addf("%d|%s", 7, "hi")
	if len(tb.Rows) != 1 || tb.Rows[0][0] != "7" || tb.Rows[0][1] != "hi" {
		t.Errorf("Addf rows = %v", tb.Rows)
	}
}

func TestFormatters(t *testing.T) {
	if got := Ms(1500 * sim.Microsecond); got != "1.5" {
		t.Errorf("Ms = %q", got)
	}
	if got := Sec(sim.Millis(2500)); got != "2.500" {
		t.Errorf("Sec = %q", got)
	}
	if got := F2(3.14159); got != "3.14" {
		t.Errorf("F2 = %q", got)
	}
	if got := F0(2.71); got != "3" {
		t.Errorf("F0 = %q", got)
	}
}

func TestRowsWiderThanHeader(t *testing.T) {
	tb := New("t", "only")
	tb.Add("a", "extra", "cells")
	out := tb.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "cells") {
		t.Errorf("extra cells dropped:\n%s", out)
	}
}
