package server

import (
	"fmt"
	"testing"

	"gvmr/internal/img"
	"gvmr/internal/vec"
)

// mkFrame builds a committed-size test frame (raw bytes + a fake PNG).
func mkFrame(key string, w, h, pngLen int) *Frame {
	return &Frame{
		Key: key, Width: w, Height: h,
		Image: img.New(w, h, vec.V4{}),
		PNG:   make([]byte, pngLen),
	}
}

// renderInto reserves, "renders" and commits one frame, the way the
// service does.
func renderInto(c *FrameCache, key string, w, h int) bool {
	if !c.Reserve(key, img.RawBytes(w, h)) {
		return false
	}
	c.Commit(key, mkFrame(key, w, h, 100))
	return true
}

// TestFrameCacheLRUAndBudget mirrors the staging cache's bounded-memory
// policy: LRU frames are evicted to fit the budget and the newest
// survive.
func TestFrameCacheLRUAndBudget(t *testing.T) {
	w, h := 16, 16
	per := img.RawBytes(w, h) + 100
	c := NewFrameCache(3 * per)
	for i := 0; i < 5; i++ {
		if !renderInto(c, fmt.Sprintf("f%d", i), w, h) {
			t.Fatalf("frame %d did not cache", i)
		}
	}
	st := c.Stats()
	if st.BytesInUse > c.Capacity() {
		t.Errorf("bytes in use %d over capacity %d", st.BytesInUse, c.Capacity())
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if _, ok := c.Get("f4"); !ok {
		t.Error("most recent frame was evicted")
	}
	if _, ok := c.Get("f0"); ok {
		t.Error("oldest frame survived a full wrap")
	}
}

// TestFrameCacheReserveFallback mirrors TestCacheFallbackWhenBudgetInFlight
// for the frame cache: when the whole budget is held by an in-flight
// reservation, a further Reserve declines (the render proceeds uncached)
// instead of evicting or overshooting.
func TestFrameCacheReserveFallback(t *testing.T) {
	w, h := 16, 16
	c := NewFrameCache(img.RawBytes(w, h) + 200) // room for ~one frame
	if !c.Reserve("inflight", img.RawBytes(w, h)) {
		t.Fatal("first reservation declined")
	}
	if c.Reserve("victim", img.RawBytes(w, h)) {
		t.Fatal("second reservation accepted while the budget is held in flight")
	}
	if st := c.Stats(); st.Bypassed != 1 {
		t.Errorf("bypassed = %d, want 1", st.Bypassed)
	}
	c.Commit("inflight", mkFrame("inflight", w, h, 100))
	// Ready entries are evictable: the same reservation now succeeds.
	if !c.Reserve("victim", img.RawBytes(w, h)) {
		t.Fatal("reservation still declined after the in-flight frame committed")
	}
	if _, ok := c.Get("inflight"); ok {
		t.Error("committed frame should have been evicted for the new reservation")
	}
	c.Release("victim")
	if st := c.Stats(); st.BytesInUse != 0 {
		t.Errorf("bytes in use = %d after release, want 0", st.BytesInUse)
	}
}

// TestFrameCacheFailedRenderNotCached mirrors the staging cache's
// failures-are-not-cached policy.
func TestFrameCacheFailedRenderNotCached(t *testing.T) {
	w, h := 8, 8
	c := NewFrameCache(1 << 20)
	if !c.Reserve("fail", img.RawBytes(w, h)) {
		t.Fatal("reservation declined")
	}
	c.Release("fail")
	if st := c.Stats(); st.BytesInUse != 0 || st.Inserts != 0 {
		t.Errorf("failed render left state: %+v", st)
	}
	if _, ok := c.Get("fail"); ok {
		t.Error("failed render served from cache")
	}
	if !renderInto(c, "fail", w, h) {
		t.Error("re-render after failure did not cache")
	}
}

// TestFrameCacheBypassAndDisable covers over-budget frames, duplicate
// reservations and the disabled cache.
func TestFrameCacheBypassAndDisable(t *testing.T) {
	c := NewFrameCache(1 << 10)
	if c.Reserve("huge", 1<<20) {
		t.Error("over-budget reservation accepted")
	}
	if !c.Reserve("dup", 512) {
		t.Fatal("reservation declined")
	}
	if c.Reserve("dup", 512) {
		t.Error("duplicate reservation accepted")
	}
	var disabled *FrameCache
	if _, ok := disabled.Get("x"); ok {
		t.Error("nil cache hit")
	}
	if disabled.Reserve("x", 1) {
		t.Error("nil cache reserved")
	}
	z := NewFrameCache(0)
	if z.Reserve("x", 1) {
		t.Error("zero-capacity cache reserved")
	}
	if _, ok := z.Get("x"); ok {
		t.Error("zero-capacity cache hit")
	}
}

// TestFrameCacheCommitAdjustsCharge: the reservation is an estimate (raw
// bytes); Commit adjusts to the actual frame size (raw + PNG) and evicts
// if the adjustment pushed the cache over budget.
func TestFrameCacheCommitAdjustsCharge(t *testing.T) {
	w, h := 8, 8
	raw := img.RawBytes(w, h)
	c := NewFrameCache(2*raw + 150)
	renderInto(c, "a", w, h) // raw+100
	if !c.Reserve("b", raw) {
		t.Fatal("second reservation declined")
	}
	// Commit with a PNG that pushes past the budget: LRU ("a") must go.
	c.Commit("b", mkFrame("b", w, h, 200))
	st := c.Stats()
	if st.BytesInUse != raw+200 {
		t.Errorf("bytes in use = %d, want %d", st.BytesInUse, raw+200)
	}
	if _, ok := c.Get("a"); ok {
		t.Error("LRU frame survived the commit adjustment")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("committed frame missing")
	}
}

// TestFrameCacheFlush drops ready frames but leaves reservations.
func TestFrameCacheFlush(t *testing.T) {
	w, h := 8, 8
	c := NewFrameCache(1 << 20)
	renderInto(c, "ready", w, h)
	c.Reserve("pending", img.RawBytes(w, h))
	c.Flush()
	if _, ok := c.Get("ready"); ok {
		t.Error("flushed frame still served")
	}
	st := c.Stats()
	if st.BytesInUse != img.RawBytes(w, h) {
		t.Errorf("bytes in use = %d, want the pending reservation only", st.BytesInUse)
	}
	c.Commit("pending", mkFrame("pending", w, h, 10))
	if _, ok := c.Get("pending"); !ok {
		t.Error("reservation did not survive the flush")
	}
}
