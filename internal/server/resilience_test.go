package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gvmr/internal/dist"
	"gvmr/internal/resilience"
)

// Overload-policy tests for the service layer: shed ordering by priority
// class, the brownout gate (degraded frames only ever exist behind
// AllowDegraded, and never enter the cache), and the Retry-After /
// deadline / degraded HTTP surface.

// TestAdmitShedsByPriority: with cap(queue)=4 (2 workers + 2 waiters),
// speculative work sheds at half full, batch at three quarters, and only
// interactive may fill the queue — lowest class first, each shed counted
// under its own class.
func TestAdmitShedsByPriority(t *testing.T) {
	s := newTestService(t, Config{GPUs: 2, Workers: 2, MaxQueue: 2})
	// Fill the queue halfway (as two admitted-and-waiting renders would).
	s.queue <- struct{}{}
	s.queue <- struct{}{}

	if _, err := s.admit(resilience.Speculative); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("speculative at half full: %v, want ErrOverloaded", err)
	}
	rel1, err := s.admit(resilience.Batch)
	if err != nil {
		t.Fatalf("batch below three quarters: %v", err)
	}
	if _, err := s.admit(resilience.Batch); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("batch at three quarters: %v, want ErrOverloaded", err)
	}
	rel2, err := s.admit(resilience.Interactive)
	if err != nil {
		t.Fatalf("interactive below full: %v", err)
	}
	if _, err := s.admit(resilience.Interactive); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("interactive at full: %v, want ErrOverloaded", err)
	}

	snap := s.res.Snapshot()
	want := map[string]int64{"speculative": 1, "batch": 1, "interactive": 1}
	for class, n := range want {
		if snap.ShedsByClass[class] != n {
			t.Errorf("sheds[%s] = %d, want %d (%+v)", class, snap.ShedsByClass[class], n, snap.ShedsByClass)
		}
	}
	rel1()
	rel2()
	<-s.queue
	<-s.queue
}

// wedgedWorker is a /map endpoint that never answers: it parks until the
// coordinator gives up (deadline) and the client connection drops.
func wedgedWorker(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: only then does the server's background
		// read run, which is what delivers the client's deadline
		// disconnect as a context cancellation here.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestBrownoutUnreachableWithoutFlag: under a wedged fleet and a missed
// deadline, a service WITHOUT AllowDegraded returns the deadline error —
// no frame, no degraded render, nothing cached. The brownout path must
// be provably dead when the flag is off.
func TestBrownoutUnreachableWithoutFlag(t *testing.T) {
	s := newTestService(t, Config{
		GPUs: 2, Workers: 1,
		WorkerAddrs:     []string{wedgedWorker(t)},
		DefaultDeadline: 100 * time.Millisecond,
	})
	req := Request{Dataset: "skull", Edge: 16, Width: 32, Height: 32}
	_, _, err := s.Render(context.Background(), req)
	if err == nil {
		t.Fatal("deadline miss with flag off returned a frame")
	}
	if !errors.Is(err, dist.ErrDeadline) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v is not deadline-class", err)
	}
	snap := s.res.Snapshot()
	if snap.DegradedFrames != 0 {
		t.Errorf("flag off but %d degraded frames rendered", snap.DegradedFrames)
	}
	nReq := req
	if err := nReq.normalize(s); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.cache.Get(nReq.key()); ok {
		t.Error("failed render left a cached frame")
	}
}

// TestBrownoutServesDegradedUncached: the same wedged fleet with
// AllowDegraded set serves a coarser local frame, marks it Degraded,
// counts it, and does NOT commit it to the cache — the full-quality key
// stays honest for the next healthy render.
func TestBrownoutServesDegradedUncached(t *testing.T) {
	s := newTestService(t, Config{
		GPUs: 2, Workers: 1,
		WorkerAddrs:     []string{wedgedWorker(t)},
		DefaultDeadline: 100 * time.Millisecond,
		AllowDegraded:   true,
	})
	req := Request{Dataset: "skull", Edge: 16, Width: 32, Height: 32}
	f, via, err := s.Render(context.Background(), req)
	if err != nil {
		t.Fatalf("brownout render: %v", err)
	}
	if !f.Degraded {
		t.Error("brownout frame not marked Degraded")
	}
	if via != ViaRender {
		t.Errorf("brownout served via %q, want render", via)
	}
	snap := s.res.Snapshot()
	if snap.DegradedFrames != 1 {
		t.Errorf("degraded frames = %d, want 1", snap.DegradedFrames)
	}
	nReq := req
	if err := nReq.normalize(s); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.cache.Get(nReq.key()); ok {
		t.Error("degraded frame was committed to the cache")
	}
}

// TestRenderHTTPDeadlineSurface: the HTTP layer's half of the deadline
// contract — a missed deadline is 504 without the flag and a degraded
// 200 (X-Gvmr-Degraded: 1) with it; malformed deadline headers and
// priorities are 400s, not defaults.
func TestRenderHTTPDeadlineSurface(t *testing.T) {
	get := func(s *Service, deadline string) *http.Response {
		t.Helper()
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/render?dataset=skull&edge=16&size=32", nil)
		if deadline != "" {
			req.Header.Set(resilience.HeaderDeadline, deadline)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	strict := newTestService(t, Config{GPUs: 2, Workers: 1, WorkerAddrs: []string{wedgedWorker(t)}})
	if resp := get(strict, "100"); resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("deadline miss: HTTP %d, want 504", resp.StatusCode)
	}
	if resp := get(strict, "bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad deadline header: HTTP %d, want 400", resp.StatusCode)
	}

	soft := newTestService(t, Config{
		GPUs: 2, Workers: 1,
		WorkerAddrs: []string{wedgedWorker(t)}, AllowDegraded: true,
	})
	resp := get(soft, "100")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("brownout: HTTP %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get(resilience.HeaderDegraded) != "1" {
		t.Error("brownout response missing X-Gvmr-Degraded: 1")
	}

	srv := httptest.NewServer(soft.Handler())
	defer srv.Close()
	badPri, err := http.Get(srv.URL + "/render?dataset=skull&edge=16&size=32&priority=urgent")
	if err != nil {
		t.Fatal(err)
	}
	badPri.Body.Close()
	if badPri.StatusCode != http.StatusBadRequest {
		t.Errorf("bad priority: HTTP %d, want 400", badPri.StatusCode)
	}
}

// TestRetryAfterOnOverloadAndDrain: every 429 and 503 the admission and
// drain paths emit carries Retry-After, so well-behaved clients back off
// instead of hammering.
func TestRetryAfterOnOverloadAndDrain(t *testing.T) {
	s := newTestService(t, Config{GPUs: 2, Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/render?dataset=skull&edge=16&size=32")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining render: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}

	mresp, err := http.Post(srv.URL+dist.MapPath, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining map: HTTP %d, want 503", mresp.StatusCode)
	}
	if mresp.Header.Get("Retry-After") == "" {
		t.Error("draining /map 503 missing Retry-After")
	}
}
