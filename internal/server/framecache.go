package server

import (
	"container/list"
	"fmt"
	"os"
	"sync"
	"time"

	"gvmr/internal/img"
	"gvmr/internal/sim"
	"gvmr/internal/volume"
)

// Frame is one rendered, encoded frame: the float framebuffer the
// renderer composited, its PNG encoding (done once, served many times),
// and the virtual-time figures of merit. Frames are immutable once built;
// the cache and every response share them.
type Frame struct {
	Key           string
	Width, Height int
	Image         *img.Image
	PNG           []byte
	// Digest is the SHA-256 of the exact float32 framebuffer bits
	// (img.Image.Digest) — responses carry it so clients can verify
	// served bits against a direct render.
	Digest string
	// Runtime is the frame's virtual duration on the simulated cluster;
	// FPS/VPSMillions are the paper's figures of merit for it.
	Runtime     sim.Time
	FPS         float64
	VPSMillions float64
	// RenderWall is the host wall-clock the render cost (zero for frames
	// served from cache).
	RenderWall time.Duration
	// Degraded marks a brownout frame: the distributed render missed its
	// deadline and the service (with Config.AllowDegraded) served a
	// coarser local render instead. Degraded frames are never cached —
	// the full-quality key must stay honest.
	Degraded bool
}

// Bytes is the cache charge of a frame: raw framebuffer plus PNG.
func (f *Frame) Bytes() int64 {
	return img.RawBytes(f.Width, f.Height) + int64(len(f.PNG))
}

// DefaultFrameCacheBytes is the rendered-frame cache budget when neither
// Config.FrameCacheBytes nor GVMR_FRAME_BYTES says otherwise.
const DefaultFrameCacheBytes = 256 << 20

// frameCacheBytesFromEnv resolves the frame-cache budget: an explicit
// config value wins, else GVMR_FRAME_BYTES (same grammar as
// GVMR_STAGING_BYTES; "0"/"off" disables, unparsable disables fail-safe),
// else the default.
func frameCacheBytesFromEnv(configured int64) int64 {
	if configured != 0 {
		return configured
	}
	s := os.Getenv("GVMR_FRAME_BYTES")
	if s == "" {
		return DefaultFrameCacheBytes
	}
	n, ok := volume.ParseBytes(s)
	if !ok {
		fmt.Fprintf(os.Stderr, "gvmr: unparsable GVMR_FRAME_BYTES=%q; frame cache disabled\n", s)
		return 0
	}
	return n
}

// FrameCacheStats is a snapshot of frame-cache activity.
type FrameCacheStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Inserts    int64 `json:"inserts"`
	Evictions  int64 `json:"evictions"`
	Bypassed   int64 `json:"bypassed"` // renders that could not reserve budget
	BytesInUse int64 `json:"bytes_in_use"`
	Capacity   int64 `json:"capacity"`
}

// FrameCache is a bounded, concurrency-safe LRU cache of rendered frames,
// modeled on volume.StagingCache: bytes are reserved while a render is in
// flight so concurrent renders cannot overshoot the budget, and when the
// budget is entirely held by reservations a further render proceeds
// uncached instead of evicting frames other requests are about to reuse.
// Unlike the staging cache it holds no ready-wait machinery — the
// request coalescer already guarantees one render per key.
type FrameCache struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	reserved int64 // bytes held by in-flight reservations (subset of inUse)
	entries  map[string]*frameEntry
	lru      *list.List // front = most recently used; ready entries only

	hits, misses, inserts, evictions, bypassed int64
}

type frameEntry struct {
	key   string
	elem  *list.Element // nil while the entry is a bare reservation
	frame *Frame
	bytes int64
}

// NewFrameCache builds a cache bounded to capacity bytes of frame data.
// capacity <= 0 yields a disabled cache: Get always misses, Reserve
// always declines.
func NewFrameCache(capacity int64) *FrameCache {
	return &FrameCache{
		capacity: capacity,
		entries:  map[string]*frameEntry{},
		lru:      list.New(),
	}
}

// Capacity returns the byte budget.
func (c *FrameCache) Capacity() int64 { return c.capacity }

// Get returns the cached frame for key, if ready.
func (c *FrameCache) Get(key string) (*Frame, bool) {
	return c.lookup(key, true)
}

// peek is Get without touching the hit/miss counters — for double-check
// lookups that already counted themselves (recency is still refreshed; a
// hit is a hit for LRU purposes).
func (c *FrameCache) peek(key string) (*Frame, bool) {
	return c.lookup(key, false)
}

func (c *FrameCache) lookup(key string, count bool) (*Frame, bool) {
	if c == nil || c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.frame == nil {
		if count {
			c.misses++
		}
		return nil, false
	}
	if count {
		c.hits++
	}
	c.lru.MoveToFront(e.elem)
	return e.frame, true
}

// Reserve claims est bytes for an in-flight render of key. It returns
// false — the caller should render uncached — when the cache is disabled,
// est exceeds the whole capacity, the key is already present (reserved or
// ready), or the budget is held by reservations that cannot be evicted.
// Ready LRU entries are evicted as needed. A successful Reserve must be
// paired with Commit or Release.
func (c *FrameCache) Reserve(key string, est int64) bool {
	if c == nil || c.capacity <= 0 || est > c.capacity {
		if c != nil {
			c.mu.Lock()
			c.bypassed++
			c.mu.Unlock()
		}
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.bypassed++
		return false
	}
	// Could evicting every ready entry fit the reservation? Everything
	// except other reservations is evictable, so the budget is
	// insufficient only when the reservations alone exceed it — O(1),
	// this runs on every render.
	if c.reserved+est > c.capacity {
		c.bypassed++
		return false
	}
	c.inUse += est
	c.reserved += est
	c.evictLocked()
	c.entries[key] = &frameEntry{key: key, bytes: est}
	return true
}

// Commit fills a reservation with the rendered frame, adjusting the
// charge from the estimate to the frame's actual size.
func (c *FrameCache) Commit(key string, f *Frame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.frame != nil {
		return
	}
	c.inUse += f.Bytes() - e.bytes
	c.reserved -= e.bytes
	e.bytes = f.Bytes()
	e.frame = f
	e.elem = c.lru.PushFront(e)
	c.inserts++
	c.evictLocked()
}

// Release drops a reservation whose render failed.
func (c *FrameCache) Release(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.frame != nil {
		return
	}
	c.inUse -= e.bytes
	c.reserved -= e.bytes
	delete(c.entries, key)
}

// evictLocked drops least-recently-used ready frames until the cache fits
// its capacity. Reservations hold their bytes and are never evicted. The
// entry just committed may itself be evicted if it is the only ready
// entry and still over budget; Commit pushes it to the front first, so
// that happens only when nothing else can make room.
func (c *FrameCache) evictLocked() {
	for el := c.lru.Back(); el != nil && c.inUse > c.capacity; {
		prev := el.Prev()
		e := el.Value.(*frameEntry)
		c.inUse -= e.bytes
		c.lru.Remove(e.elem)
		delete(c.entries, e.key)
		c.evictions++
		el = prev
	}
}

// Flush drops every ready frame; reservations in flight are left to
// commit or release themselves.
func (c *FrameCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.frame == nil {
			continue
		}
		c.inUse -= e.bytes
		c.lru.Remove(e.elem)
		delete(c.entries, e.key)
	}
}

// Stats returns a snapshot of the counters.
func (c *FrameCache) Stats() FrameCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return FrameCacheStats{
		Hits:       c.hits,
		Misses:     c.misses,
		Inserts:    c.inserts,
		Evictions:  c.evictions,
		Bypassed:   c.bypassed,
		BytesInUse: c.inUse,
		Capacity:   c.capacity,
	}
}
