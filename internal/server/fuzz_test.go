package server

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzRequestKey drives the canonical request-key codec: any accepted
// string must be the exact encoding of its parse (idempotence), so two
// distinct normalized requests can never collide on a key, and the cache
// and coalescer identities stay sound. Seeds cover every field's
// canonical spelling plus near-miss corruptions.
func FuzzRequestKey(f *testing.F) {
	f.Add("skull|e64|256x256|o0|g4|shfalse|st1|ta0.98")
	f.Add("supernova|e432|512x512|o123.456|g8|shtrue|st0.25|ta1")
	f.Add("plume|e64|1024x768|o-90|g1|shfalse|st16|ta0.5")
	f.Add("skull|e8|1x1|o1e-09|g1|shtrue|st0.01|ta0.0001")
	f.Add("skull|e64|256x256|o0|g4|shfalse|st1|ta0.98|extra")
	f.Add("skull|e064|256x256|o0|g4|shfalse|st1|ta0.98") // non-canonical int
	f.Add("skull|e64|256x256|o+0|g4|shfalse|st1|ta0.98") // non-canonical float
	f.Add("|e0|0x0|o0|g0|shfalse|st0|ta0")
	f.Add("")
	f.Add("||||||||")
	f.Fuzz(func(t *testing.T, k string) {
		r, ok := parseKey(k)
		if !ok {
			return
		}
		if got := r.key(); got != k {
			t.Fatalf("accepted key %q re-encodes to %q", k, got)
		}
		again, ok := parseKey(r.key())
		if !ok || again != r {
			t.Fatalf("round trip unstable for %q: %+v vs %+v (ok=%v)", k, r, again, ok)
		}
	})
}

// TestKeyCodecRoundTripsNormalizedRequests drives the other direction
// with randomized normalized requests: every request the service would
// actually serve survives the codec.
func TestKeyCodecRoundTripsNormalizedRequests(t *testing.T) {
	s := newTestService(t, Config{GPUs: 8})
	rng := rand.New(rand.NewSource(42))
	datasets := []string{"skull", "supernova", "plume"}
	for i := 0; i < 2000; i++ {
		r := Request{
			Dataset: datasets[rng.Intn(len(datasets))],
			Edge:    8 + rng.Intn(64),
			Width:   1 + rng.Intn(512),
			Height:  1 + rng.Intn(512),
			Orbit:   (rng.Float64() - 0.5) * 1e4,
			GPUs:    1 + rng.Intn(8),
			Shading: rng.Intn(2) == 0,
			// Random float32 bit patterns inside the valid ranges.
			StepVoxels:       0.01 + float32(rng.Float64())*15.9,
			TerminationAlpha: float32(math.Nextafter(0, 1)) + float32(rng.Float64())*0.9999,
		}
		if err := r.normalize(s); err != nil {
			t.Fatalf("case %d: normalize: %v", i, err)
		}
		if err := mustKeyRoundTrip(r); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}
