package server

import (
	"context"
	"sync"
)

// flightGroup is a singleflight: concurrent calls with the same key share
// one execution of fn. It is the request coalescer — a storm of identical
// render requests costs one render; everyone gets the same frame (or the
// same error; failures are not cached, so the next request re-renders).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done    chan struct{} // closed when frame/err are set
	waiters int           // followers currently sharing this call
	frame   *Frame
	err     error
}

// do runs fn once per in-flight key. The first caller (shared == false)
// starts fn; followers (shared == true) share its result. fn executes in
// its own goroutine, detached from any caller's context: every caller —
// the initiator included — waits on its own ctx, so one impatient client
// abandons only its response, never the shared render (which completes
// and commits to the cache for whoever asks next).
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Frame, error)) (f *Frame, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.frame, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	go func() {
		c.frame, c.err = fn()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	select {
	case <-c.done:
		return c.frame, false, c.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// waiting reports how many followers are currently blocked on key's
// in-flight call (0 when the key is idle). Tests use it to arrange
// deterministic coalescing without racing the leader.
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiters
	}
	return 0
}
