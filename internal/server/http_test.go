package server

import (
	"bytes"
	"context"
	"encoding/json"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"gvmr/internal/core"
	"gvmr/internal/img"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := newTestService(t, Config{GPUs: 2, Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

const testQuery = "dataset=skull&edge=16&size=32&orbit=30&shading=1&gpus=2"

// TestHTTPRenderPNGAndCache: /render serves a decodable PNG with the
// digest header, and a repeat is a cache hit with identical bits.
func TestHTTPRenderPNGAndCache(t *testing.T) {
	_, ts := newTestServer(t)
	get := func() (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/render?" + testQuery)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
		return resp, body
	}
	r1, b1 := get()
	if ct := r1.Header.Get("Content-Type"); ct != "image/png" {
		t.Errorf("content type %q", ct)
	}
	if r1.Header.Get(HeaderServed) != string(ViaRender) {
		t.Errorf("first request served via %q", r1.Header.Get(HeaderServed))
	}
	cfgImg, err := png.Decode(bytes.NewReader(b1))
	if err != nil {
		t.Fatalf("served PNG does not decode: %v", err)
	}
	if b := cfgImg.Bounds(); b.Dx() != 32 || b.Dy() != 32 {
		t.Errorf("PNG is %dx%d, want 32x32", b.Dx(), b.Dy())
	}
	r2, b2 := get()
	if r2.Header.Get(HeaderServed) != string(ViaCache) {
		t.Errorf("repeat served via %q, want cache", r2.Header.Get(HeaderServed))
	}
	if string(b1) != string(b2) {
		t.Error("cached PNG differs from rendered PNG")
	}
	if r1.Header.Get(HeaderDigest) == "" ||
		r1.Header.Get(HeaderDigest) != r2.Header.Get(HeaderDigest) {
		t.Error("digest headers missing or inconsistent")
	}
}

// TestHTTPRawMatchesDirectRender is the CI smoke contract as a tier-1
// test: the raw framebuffer served over HTTP is bit-identical to a
// direct core render of the same request, and the digest header matches.
func TestHTTPRawMatchesDirectRender(t *testing.T) {
	s, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/render?" + testQuery + "&format=raw")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type %q", ct)
	}
	served, err := img.DecodeRaw(resp.Body, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s.options(Request{Dataset: "skull", Edge: 16, Width: 32, Height: 32,
		Orbit: 30, Shading: true, GPUs: 2, StepVoxels: 1, TerminationAlpha: 0.98})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := core.RenderOn(s.spec, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	direct := res.Image.Digest()
	if served.Digest() != direct {
		t.Error("served raw bits differ from direct render")
	}
	if resp.Header.Get(HeaderDigest) != direct {
		t.Error("digest header differs from direct render")
	}
}

// TestHTTPStats: /stats returns a JSON snapshot whose counters reflect
// the requests made.
func TestHTTPStats(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/render?" + testQuery)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 || st.Renders != 1 || st.Cache.Hits != 2 {
		t.Errorf("stats = requests %d renders %d hits %d, want 3/1/2",
			st.Requests, st.Renders, st.Cache.Hits)
	}
	if st.Latency.Count != 3 {
		t.Errorf("latency count = %d, want 3", st.Latency.Count)
	}
	if st.Workers != 2 {
		t.Errorf("workers = %d", st.Workers)
	}
}

// TestHTTPErrors: bad requests are 400s, bad methods 405, health 200.
func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/render?dataset=nonesuch", http.StatusBadRequest},
		{"/render?" + testQuery + "&format=gif", http.StatusBadRequest},
		{"/render?edge=banana", http.StatusBadRequest},
		{"/render?size=64&w=32", http.StatusBadRequest},
		{"/render?shading=maybe", http.StatusBadRequest},
		{"/healthz", http.StatusOK},
		{"/stats", http.StatusOK},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("GET %s = %d, want %d", c.path, resp.StatusCode, c.want)
		}
	}
	resp, err := http.Post(ts.URL+"/render", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /render = %d, want 405", resp.StatusCode)
	}
}

// TestHTTPDrainStatus: a draining service 503s /render and /readyz (no
// new traffic) while /healthz stays 200 (the process is alive and must
// not be restarted out from under its in-flight work).
func TestHTTPDrainStatus(t *testing.T) {
	s, ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /readyz before drain = %d, want 200", resp.StatusCode)
	}

	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]int{
		"/render?" + testQuery: http.StatusServiceUnavailable,
		"/readyz":              http.StatusServiceUnavailable,
		"/healthz":             http.StatusOK,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s while draining = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestHTTPPartitionParams: a non-convex partition requested over HTTP
// (?partition=scheme:parts) must serve the same bits as the same render
// with convex bricks — the §12 identity at the service boundary — and
// malformed partition parameters are clean 400s.
func TestHTTPPartitionParams(t *testing.T) {
	_, ts := newTestServer(t)
	digest := func(q string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/render?" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d for %q", resp.StatusCode, q)
		}
		return resp.Header.Get(HeaderDigest)
	}
	base := "dataset=skull&edge=16&size=32&shading=1&gpus=2&bricks-per-gpu=8"
	convex := digest(base)
	if part := digest(base + "&partition=interleave:2"); part != convex {
		t.Errorf("interleave:2 digest %s != convex %s", part, convex)
	}
	for _, q := range []string{
		base + "&partition=interleave",                    // missing parts
		base + "&partition=interleave:zero",               // non-numeric parts
		base + "&partition=interleave:1",                  // below the [2,4096] floor
		base + "&partition=nonesuch:2",                    // unregistered scheme
		"dataset=skull&edge=16&size=32&bricks-per-gpu=65", // over cap
	} {
		resp, err := http.Get(ts.URL + "/render?" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %q = %d, want 400", q, resp.StatusCode)
		}
	}
}
