package server

import (
	"fmt"
	"strconv"
	"strings"
)

// The canonical request key is the identity the frame cache and the
// request coalescer share: requests with equal keys MUST address
// bit-identical frames, and distinct normalized requests MUST produce
// distinct keys (a collision would serve one client another client's
// frame). parseKey is the decoder that makes the second property
// checkable: it inverts Request.key and accepts exactly the canonical
// spellings, so `parseKey(k).key() == k` for every key it accepts and
// `parseKey(r.key()) == r` for every normalized request — the round-trip
// the fuzz target (FuzzRequestKey) drives.

// parseKey decodes a canonical request key produced by Request.key. It
// is strict: any string that is not the canonical encoding of its parse
// is rejected, so accepted keys re-encode to themselves byte for byte.
func parseKey(k string) (Request, bool) {
	parts := strings.Split(k, "|")
	if len(parts) != 10 {
		return Request{}, false
	}
	var r Request
	r.Dataset = parts[0]

	cut := func(s, prefix string) (string, bool) { return strings.CutPrefix(s, prefix) }

	if v, ok := cut(parts[1], "e"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return Request{}, false
		}
		r.Edge = n
	} else {
		return Request{}, false
	}

	dims := strings.SplitN(parts[2], "x", 2)
	if len(dims) != 2 {
		return Request{}, false
	}
	w, errW := strconv.Atoi(dims[0])
	h, errH := strconv.Atoi(dims[1])
	if errW != nil || errH != nil {
		return Request{}, false
	}
	r.Width, r.Height = w, h

	if v, ok := cut(parts[3], "o"); ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Request{}, false
		}
		r.Orbit = f
	} else {
		return Request{}, false
	}

	if v, ok := cut(parts[4], "g"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return Request{}, false
		}
		r.GPUs = n
	} else {
		return Request{}, false
	}

	if v, ok := cut(parts[5], "sh"); ok {
		switch v {
		case "true":
			r.Shading = true
		case "false":
			r.Shading = false
		default:
			return Request{}, false
		}
	} else {
		return Request{}, false
	}

	if v, ok := cut(parts[6], "st"); ok {
		f, err := strconv.ParseFloat(v, 32)
		if err != nil {
			return Request{}, false
		}
		r.StepVoxels = float32(f)
	} else {
		return Request{}, false
	}

	if v, ok := cut(parts[7], "ta"); ok {
		f, err := strconv.ParseFloat(v, 32)
		if err != nil {
			return Request{}, false
		}
		r.TerminationAlpha = float32(f)
	} else {
		return Request{}, false
	}

	if v, ok := cut(parts[8], "b"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return Request{}, false
		}
		r.BricksPerGPU = n
	} else {
		return Request{}, false
	}

	if v, ok := cut(parts[9], "p"); ok {
		if v != "" {
			colon := strings.LastIndex(v, ":")
			if colon <= 0 {
				return Request{}, false
			}
			n, err := strconv.Atoi(v[colon+1:])
			if err != nil {
				return Request{}, false
			}
			r.Partition, r.Parts = v[:colon], n
		}
	} else {
		return Request{}, false
	}

	// Canonical-form check: reject non-canonical spellings ("e007",
	// "o+3", "st1.50") so accepted keys are exactly the image of key().
	if r.key() != k {
		return Request{}, false
	}
	return r, true
}

// mustKeyRoundTrip panics when a normalized request does not survive the
// key codec — used by tests as the single statement of the contract.
func mustKeyRoundTrip(r Request) error {
	k := r.key()
	back, ok := parseKey(k)
	if !ok {
		return fmt.Errorf("key %q not parseable", k)
	}
	if back != r {
		return fmt.Errorf("key %q decoded to %+v, want %+v", k, back, r)
	}
	return nil
}
