package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/img"
	"gvmr/internal/sim"
	"gvmr/internal/vec"
)

// Stress suite: the frame cache and the coalescer under concurrent
// Get/Reserve/Commit/Release/Flush and concurrent Render/Flush/Close with
// randomized interleavings. Run under -race in CI (the server race leg);
// the per-run seed is logged so a failing schedule can be chased.

func stressSeed(t *testing.T) int64 {
	seed := time.Now().UnixNano()
	t.Logf("stress seed %d", seed)
	return seed
}

// TestFrameCacheStress hammers one small cache from many goroutines with
// every operation the service performs, against a deliberately tiny
// budget so reservations, bypasses and evictions all trigger constantly.
// Invariants: accounting never goes negative, never exceeds capacity
// after settling, and every reservation is eventually paired.
func TestFrameCacheStress(t *testing.T) {
	seed := stressSeed(t)
	frame := func(key string, w, h int) *Frame {
		return &Frame{Key: key, Width: w, Height: h, PNG: []byte("png")}
	}
	const workers = 8
	cache := NewFrameCache(20 * frame("x", 8, 8).Bytes() / 10) // ~2 frames' worth
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)))
			for i := 0; i < 3000; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(6))
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // lookups dominate in production
					cache.Get(key)
				case 4, 5, 6:
					f := frame(key, 8, 8)
					if cache.Reserve(key, f.Bytes()) {
						if rng.Intn(4) == 0 {
							cache.Release(key)
						} else {
							cache.Commit(key, f)
						}
					}
				case 7:
					cache.Flush()
				case 8:
					cache.Stats()
				case 9:
					// Oversized reservation: must decline, never wedge.
					if cache.Reserve(key, cache.Capacity()+1) {
						t.Error("over-capacity reservation accepted")
						cache.Release(key)
					}
				}
			}
		}()
	}
	wg.Wait()
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if cache.inUse < 0 || cache.reserved < 0 {
		t.Fatalf("negative accounting: inUse %d reserved %d", cache.inUse, cache.reserved)
	}
	if cache.reserved != 0 {
		t.Fatalf("unpaired reservations: %d bytes still reserved", cache.reserved)
	}
	if cache.inUse > cache.capacity {
		t.Fatalf("settled cache over budget: %d > %d", cache.inUse, cache.capacity)
	}
}

// TestServiceStress runs the full request path — cache, coalescer,
// admission — under concurrent randomized load with cache flushes mixed
// in, then closes the service mid-traffic. Every response must be a
// frame or one of the declared errors; afterwards the service must be
// drained with nothing in flight.
func TestServiceStress(t *testing.T) {
	seed := stressSeed(t)
	s := newTestService(t, Config{GPUs: 2, Workers: 4, MaxQueue: 8})
	var renders sync.Map // key → true, to vary timing per key
	s.renderOn = func(spec cluster.Spec, opt core.Options, devWorkers int) (*core.Result, sim.Time, error) {
		renders.Store(opt.Width, true)
		time.Sleep(time.Duration(opt.Width%5) * time.Millisecond) // vary interleavings
		im := img.New(opt.Width, opt.Height, vec.V4{X: 0.5, W: 1})
		return &core.Result{Image: im, Runtime: sim.Second}, sim.Second, nil
	}

	const workers = 12
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var unexpected sync.Map
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed ^ int64(g)<<32))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(12) {
				case 0:
					s.Cache().Flush()
				case 1:
					s.Stats()
				default:
					req := Request{
						Dataset: "skull", Edge: 16,
						Width:  16 + rng.Intn(4), // small key space → real coalescing
						Height: 16,
						Orbit:  float64(rng.Intn(3)) * 10,
					}
					_, _, err := s.Render(context.Background(), req)
					switch {
					case err == nil:
					case errors.Is(err, ErrOverloaded), errors.Is(err, ErrDraining):
					default:
						unexpected.Store(err.Error(), true)
					}
				}
			}
		}()
	}

	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close under load: %v", err)
	}
	close(stop)
	wg.Wait()

	unexpected.Range(func(k, _ any) bool {
		t.Errorf("unexpected render error under stress: %v", k)
		return true
	})
	st := s.Stats()
	if st.InFlight != 0 {
		t.Errorf("renders still in flight after drain: %d", st.InFlight)
	}
	if !st.Draining {
		t.Error("service not marked draining after Close")
	}
	if st.Renders == 0 {
		t.Error("stress run performed no renders")
	}
}
