package server

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/img"
	"gvmr/internal/sim"
	"gvmr/internal/vec"
)

// gatedRender stubs core.RenderOn with a gate the test controls: every
// call signals entered and blocks until release closes.
type gatedRender struct {
	mu      sync.Mutex
	calls   int
	entered chan struct{} // buffered; one token per call
	release chan struct{}
	fail    error
}

func newGatedRender() *gatedRender {
	return &gatedRender{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *gatedRender) fn(spec cluster.Spec, opt core.Options, devWorkers int) (*core.Result, sim.Time, error) {
	g.mu.Lock()
	g.calls++
	g.mu.Unlock()
	g.entered <- struct{}{}
	<-g.release
	if g.fail != nil {
		return nil, 0, g.fail
	}
	im := img.New(opt.Width, opt.Height, vec.V4{X: 0.5, W: 1})
	return &core.Result{Image: im, Runtime: sim.Second}, sim.Second, nil
}

func (g *gatedRender) count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServiceCoalesces arranges a deterministic storm: a leader blocked
// inside the render plus N followers on the same key — exactly one
// render happens and everyone shares its frame.
func TestServiceCoalesces(t *testing.T) {
	g := newGatedRender()
	s := newTestService(t, Config{GPUs: 2, Workers: 1})
	s.renderOn = g.fn
	req := Request{Dataset: "skull", Edge: 16, Width: 32, Height: 32}
	nReq := req
	if err := nReq.normalize(s); err != nil {
		t.Fatal(err)
	}
	key := nReq.key()

	type out struct {
		f   *Frame
		via ServedVia
		err error
	}
	results := make(chan out, 5)
	render := func() {
		f, via, err := s.Render(context.Background(), req)
		results <- out{f, via, err}
	}
	go render()
	<-g.entered // leader is inside the render
	for i := 0; i < 4; i++ {
		go render()
	}
	waitFor(t, "4 followers", func() bool { return s.flight.waiting(key) == 4 })
	close(g.release)

	vias := map[ServedVia]int{}
	var digest string
	for i := 0; i < 5; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		vias[r.via]++
		if digest == "" {
			digest = r.f.Digest
		} else if r.f.Digest != digest {
			t.Error("coalesced frames differ")
		}
	}
	if g.count() != 1 {
		t.Errorf("render called %d times, want 1", g.count())
	}
	if vias[ViaRender] != 1 || vias[ViaCoalesced] != 4 {
		t.Errorf("served vias = %v, want 1 render + 4 coalesced", vias)
	}
	st := s.Stats()
	if st.Renders != 1 || st.Coalesced != 4 || st.Requests != 5 {
		t.Errorf("stats = %+v", st)
	}
}

// TestServiceCacheHit: a repeated request is served from the frame cache
// without a second render; a distinct request renders again.
func TestServiceCacheHit(t *testing.T) {
	g := newGatedRender()
	close(g.release) // never block
	s := newTestService(t, Config{GPUs: 2, Workers: 1})
	s.renderOn = g.fn
	req := Request{Dataset: "skull", Edge: 16, Width: 32, Height: 32}
	f1, via1, err := s.Render(context.Background(), req)
	if err != nil || via1 != ViaRender {
		t.Fatalf("first render: via=%v err=%v", via1, err)
	}
	f2, via2, err := s.Render(context.Background(), req)
	if err != nil || via2 != ViaCache {
		t.Fatalf("second render: via=%v err=%v", via2, err)
	}
	if f1 != f2 {
		t.Error("cache hit returned a different frame")
	}
	req.Orbit = 90
	if _, via3, err := s.Render(context.Background(), req); err != nil || via3 != ViaRender {
		t.Fatalf("distinct request: via=%v err=%v", via3, err)
	}
	if g.count() != 2 {
		t.Errorf("render called %d times, want 2", g.count())
	}
	if st := s.Stats(); st.Cache.Hits != 1 {
		t.Errorf("cache hits = %d, want 1", st.Cache.Hits)
	}
}

// TestServiceDisabledCacheStillCoalesces: with the cache off, sequential
// duplicates re-render but the coalescer still dedupes concurrent ones.
func TestServiceDisabledCacheStillCoalesces(t *testing.T) {
	g := newGatedRender()
	close(g.release)
	s := newTestService(t, Config{GPUs: 2, Workers: 1, FrameCacheBytes: -1})
	s.renderOn = g.fn
	req := Request{Dataset: "skull", Edge: 16, Width: 32, Height: 32}
	for i := 0; i < 2; i++ {
		if _, via, err := s.Render(context.Background(), req); err != nil || via != ViaRender {
			t.Fatalf("render %d: via=%v err=%v", i, via, err)
		}
	}
	if g.count() != 2 {
		t.Errorf("render called %d times, want 2 (cache disabled)", g.count())
	}
}

// TestServiceAdmission429: with one worker and a one-slot queue, a third
// distinct render is rejected immediately with ErrOverloaded.
func TestServiceAdmission429(t *testing.T) {
	g := newGatedRender()
	s := newTestService(t, Config{GPUs: 2, Workers: 1, MaxQueue: 1})
	s.renderOn = g.fn
	mkReq := func(orbit float64) Request {
		return Request{Dataset: "skull", Edge: 16, Width: 32, Height: 32, Orbit: orbit}
	}
	errs := make(chan error, 2)
	go func() { _, _, err := s.Render(context.Background(), mkReq(1)); errs <- err }()
	<-g.entered // A holds the worker slot
	go func() { _, _, err := s.Render(context.Background(), mkReq(2)); errs <- err }()
	waitFor(t, "B admitted and queued", func() bool { return len(s.queue) == 2 })

	_, _, err := s.Render(context.Background(), mkReq(3))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third render: %v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Rejected != 1 || st.QueueDepth != 1 || st.InFlight != 1 {
		t.Errorf("stats = %+v", st)
	}
	close(g.release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Capacity freed: a new render is admitted again.
	if _, _, err := s.Render(context.Background(), mkReq(4)); err != nil {
		t.Fatal(err)
	}
}

// TestServiceDrain: Close rejects new renders, waits for the in-flight
// one, and unblocks queued waiters with ErrDraining.
func TestServiceDrain(t *testing.T) {
	g := newGatedRender()
	s := newTestService(t, Config{GPUs: 2, Workers: 1, MaxQueue: 4})
	s.renderOn = g.fn
	mkReq := func(orbit float64) Request {
		return Request{Dataset: "skull", Edge: 16, Width: 32, Height: 32, Orbit: orbit}
	}
	inflightErr := make(chan error, 1)
	go func() { _, _, err := s.Render(context.Background(), mkReq(1)); inflightErr <- err }()
	<-g.entered
	queuedErr := make(chan error, 1)
	go func() { _, _, err := s.Render(context.Background(), mkReq(2)); queuedErr <- err }()
	waitFor(t, "queued waiter", func() bool { return len(s.queue) == 2 })

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- s.Close(ctx)
	}()
	// The queued waiter is kicked out by the drain.
	if err := <-queuedErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued render: %v, want ErrDraining", err)
	}
	// New renders are rejected while draining.
	if _, _, err := s.Render(context.Background(), mkReq(3)); !errors.Is(err, ErrDraining) {
		t.Fatalf("new render during drain: %v, want ErrDraining", err)
	}
	close(g.release)
	if err := <-inflightErr; err != nil {
		t.Fatalf("in-flight render during drain: %v", err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := s.Render(context.Background(), mkReq(4)); !errors.Is(err, ErrDraining) {
		t.Fatalf("render after Close: %v, want ErrDraining", err)
	}
}

// TestServiceAbandonedRequestStillCaches: a caller whose context is
// cancelled gets its own ctx error immediately, but the detached render
// completes and commits to the cache for the next request.
func TestServiceAbandonedRequestStillCaches(t *testing.T) {
	g := newGatedRender()
	s := newTestService(t, Config{GPUs: 2, Workers: 1})
	s.renderOn = g.fn
	req := Request{Dataset: "skull", Edge: 16, Width: 32, Height: 32}
	nReq := req
	if err := nReq.normalize(s); err != nil {
		t.Fatal(err)
	}
	key := nReq.key()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { _, _, err := s.Render(ctx, req); errc <- err }()
	<-g.entered // the render is in flight
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned request: %v, want context.Canceled", err)
	}
	close(g.release)
	waitFor(t, "detached render to commit", func() bool {
		_, ok := s.cache.Get(key)
		return ok
	})
	if _, via, err := s.Render(context.Background(), req); err != nil || via != ViaCache {
		t.Fatalf("post-abandon request: via=%v err=%v", via, err)
	}
	if g.count() != 1 {
		t.Errorf("render called %d times, want 1", g.count())
	}
	if st := s.Stats(); st.Errors != 0 {
		t.Errorf("errors = %d, want 0 (client cancellation is not a server error)", st.Errors)
	}
}

// TestServiceRenderFailure: render errors propagate, are not cached, and
// followers share them.
func TestServiceRenderFailure(t *testing.T) {
	g := newGatedRender()
	g.fail = errors.New("synthetic render failure")
	close(g.release)
	s := newTestService(t, Config{GPUs: 2, Workers: 1})
	s.renderOn = g.fn
	req := Request{Dataset: "skull", Edge: 16, Width: 32, Height: 32}
	if _, _, err := s.Render(context.Background(), req); err == nil {
		t.Fatal("render failure not propagated")
	}
	st := s.Stats()
	if st.Errors != 1 {
		t.Errorf("errors = %d, want 1", st.Errors)
	}
	if st.Cache.BytesInUse != 0 {
		t.Errorf("failed render left %d cache bytes reserved", st.Cache.BytesInUse)
	}
	// Recovery: a later request re-renders.
	g.fail = nil
	if _, via, err := s.Render(context.Background(), req); err != nil || via != ViaRender {
		t.Fatalf("recovery render: via=%v err=%v", via, err)
	}
}

// TestServiceValidation: bad requests fail fast with ErrInvalid.
func TestServiceValidation(t *testing.T) {
	s := newTestService(t, Config{GPUs: 2})
	cases := []Request{
		{Dataset: "nonesuch"},
		{Dataset: "skull", Edge: 4},
		{Dataset: "skull", Edge: 9999},
		{Dataset: "skull", Width: 100000, Height: 100000},
		// w*h overflows int64? No — but it overflows int32 and wraps a
		// naive int product; must be rejected, not panic the renderer.
		{Dataset: "skull", Width: 3037000500, Height: 3037000500},
		{Dataset: "skull", GPUs: 99},
		{Dataset: "skull", StepVoxels: -3},
		{Dataset: "skull", StepVoxels: float32(math.NaN())},
		{Dataset: "skull", Orbit: math.NaN()},
		{Dataset: "skull", Orbit: math.Inf(1)},
		{Dataset: "skull", TerminationAlpha: 2},
		{Dataset: "skull", TerminationAlpha: float32(math.NaN())},
	}
	for i, req := range cases {
		if _, _, err := s.Render(context.Background(), req); !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d (%+v): err = %v, want ErrInvalid", i, req, err)
		}
	}
}

// TestRequestKeyNormalization: different spellings of the same frame
// share a key; different frames do not.
func TestRequestKeyNormalization(t *testing.T) {
	s := newTestService(t, Config{GPUs: 2})
	keyOf := func(r Request) string {
		t.Helper()
		if err := r.normalize(s); err != nil {
			t.Fatal(err)
		}
		return r.key()
	}
	imp := keyOf(Request{Dataset: "skull", Edge: 64, Width: 256})
	exp := keyOf(Request{Dataset: "skull", Edge: 64, Width: 256, Height: 256,
		GPUs: 2, StepVoxels: 1, TerminationAlpha: 0.98})
	if imp != exp {
		t.Errorf("defaulted key %q != explicit key %q", imp, exp)
	}
	if keyOf(Request{Dataset: "skull", Edge: 64, Width: 256, Orbit: 1}) == imp {
		t.Error("different cameras share a key")
	}
	if keyOf(Request{Dataset: "skull", Edge: 64, Width: 256, Shading: true}) == imp {
		t.Error("different quality shares a key")
	}
}

// TestServiceRealRenderMatchesDirect drives the real render path (no
// stub) and checks the served frame is bit-identical to a direct
// core.RenderOn of the same request — the serving stack must not perturb
// the renderer's output.
func TestServiceRealRenderMatchesDirect(t *testing.T) {
	s := newTestService(t, Config{GPUs: 2, Workers: 2})
	req := Request{Dataset: "skull", Edge: 16, Width: 32, Height: 32, Shading: true}
	f, via, err := s.Render(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if via != ViaRender {
		t.Fatalf("served via %v", via)
	}
	if f.Image.MeanLuminance() <= 0 {
		t.Error("served a black frame")
	}
	opt, err := s.options(Request{Dataset: "skull", Edge: 16, Width: 32, Height: 32,
		Shading: true, GPUs: 2, StepVoxels: 1, TerminationAlpha: 0.98})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := core.RenderOn(s.spec, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Image.Digest() != f.Digest {
		t.Error("served frame differs from a direct render")
	}
	if len(f.PNG) == 0 {
		t.Error("no PNG encoded")
	}
}
