// Package server turns the gvmr library into a multi-tenant render
// service: an embeddable RenderService (and, via Handler, an HTTP API —
// cmd/gvmrd is the daemon around it) that serves rendered frames off the
// simulated multi-GPU cluster under concurrent load.
//
// Three mechanisms compose per request, in order:
//
//  1. a rendered-frame LRU cache (FrameCache, byte-budgeted like the
//     volume staging cache, GVMR_FRAME_BYTES) — repeated views are a
//     map lookup;
//  2. a request coalescer (singleflight keyed by dataset + dims + camera
//     + transfer function + quality) — a storm of identical requests
//     costs exactly one render;
//  3. admission control — a bounded queue in front of a fixed-width
//     render-worker pool; when the queue is full new renders are
//     rejected immediately (HTTP 429) instead of piling up, and Close
//     drains gracefully.
//
// Underneath, every admitted request is one core.RenderOn job: an
// independent deterministic simulation on a fresh instance of the
// service's cluster spec, so identical requests produce bit-identical
// frames whether served from cache, coalesced, or re-rendered — the
// property the loadtest and the CI smoke test assert end to end.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/dist"
	"gvmr/internal/img"
	"gvmr/internal/membership"
	"gvmr/internal/resilience"
	"gvmr/internal/schedule"
	"gvmr/internal/sim"
	"gvmr/internal/transfer"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

// Service errors, mapped to HTTP statuses by the handler.
var (
	// ErrOverloaded means the admission queue is full; retry later (429).
	ErrOverloaded = errors.New("server: overloaded, admission queue full")
	// ErrDraining means the service is shutting down (503).
	ErrDraining = errors.New("server: draining")
	// ErrInvalid marks request-validation failures (400).
	ErrInvalid = errors.New("server: invalid request")
)

// invalidRequestError keeps the specific validation message while
// matching errors.Is(err, ErrInvalid).
type invalidRequestError struct{ err error }

func (e invalidRequestError) Error() string { return e.err.Error() }
func (e invalidRequestError) Unwrap() error { return ErrInvalid }

// Config sizes a Service.
type Config struct {
	// GPUs is the simulated cluster size each render runs on (default 4).
	// Ignored when Spec is non-nil.
	GPUs int
	// Spec overrides the default calibrated cluster.AC(GPUs) hardware.
	Spec *cluster.Spec
	// Workers is the number of renders executing concurrently (0 =
	// GOMAXPROCS, resolved through the schedule pool policy; device-level
	// host cores are split across workers the same way RenderFrames
	// splits them).
	Workers int
	// MaxQueue bounds how many admitted renders may wait for a worker
	// (default 64). Beyond Workers+MaxQueue, Render fails fast with
	// ErrOverloaded.
	MaxQueue int
	// FrameCacheBytes budgets the rendered-frame cache (0 = honor
	// GVMR_FRAME_BYTES, else 256 MiB; negative disables).
	FrameCacheBytes int64
	// MaxPixels caps Width*Height per request (default 4096²).
	MaxPixels int
	// MaxEdge caps the dataset cube edge per request (default 512).
	MaxEdge int

	// WorkerAddrs turns the service into a distributed coordinator:
	// every admitted render fans its brick map-tasks out to these remote
	// gvmrd workers (their /map endpoint) and composites the returned
	// fragment stripes locally, instead of rendering in-process. Served
	// bits are identical either way — the distributed golden suite pins
	// that down. Empty means render locally.
	WorkerAddrs []string
	// HedgeAfter duplicates a straggling map batch onto another healthy
	// worker after this delay (0 = no hedging). Coordinator mode only.
	HedgeAfter time.Duration
	// AttemptTimeout bounds one map exchange with a worker (0 = the
	// coordinator default, 30s). Short values make a wedged worker's
	// circuit breaker trip quickly. Coordinator mode only.
	AttemptTimeout time.Duration
	// DistReduce moves the reduce phase onto the worker fleet: mappers
	// exchange fragment stripes peer-to-peer per pixel partition and the
	// coordinator collects near-final pixels instead of raw stripes.
	// Bits are identical either way; any exchange failure falls back to
	// the classic coordinator-local composite. Coordinator mode only.
	DistReduce bool
	// NoWireCompress disables columnar stripe compression on the wire
	// (it is negotiated per request, so mixed fleets interoperate either
	// way). Coordinator mode only.
	NoWireCompress bool

	// DefaultDeadline bounds every render that arrives without its own
	// deadline (0 = unbounded, the historical behavior). The effective
	// deadline propagates to workers as a relative-millisecond
	// X-Gvmr-Deadline header, so a doomed frame stops consuming fleet
	// capacity at every layer at once.
	DefaultDeadline time.Duration
	// AllowDegraded opts the service into brownout mode: when a
	// distributed render misses its deadline, serve a coarser local frame
	// (larger ray step) marked Degraded instead of failing. Off by
	// default — golden and test paths must never see a degraded frame.
	AllowDegraded bool

	// AcceptJoins opens the membership control plane: workers may join
	// the fleet at runtime (POST /register + heartbeats), drain, and be
	// evicted on lease expiry. Static WorkerAddrs and joined workers mix
	// freely; with AcceptJoins and no WorkerAddrs the service starts as a
	// coordinator with an empty fleet and renders locally until the first
	// worker joins.
	AcceptJoins bool
	// HeartbeatEvery is the lease heartbeat interval assigned to joining
	// workers (default 2s); LeaseMisses is how many missed beats expire a
	// lease (default 3).
	HeartbeatEvery time.Duration
	LeaseMisses    int
}

// Request addresses one frame: a built-in dataset (which also selects its
// transfer-function preset), the image size, a camera on the fitted
// orbit, and the quality knobs. Its canonical key drives both the
// coalescer and the frame cache.
type Request struct {
	Dataset string  // built-in dataset + TF preset name
	Edge    int     // dataset cube edge (paper aspect for plume)
	Width   int     // image width (pixels)
	Height  int     // image height
	Orbit   float64 // camera: degrees along the fitted orbit
	GPUs    int     // devices used (0 = whole cluster)
	Shading bool

	StepVoxels       float32 // 0 = 1.0
	TerminationAlpha float32 // 0 = 0.98

	// BricksPerGPU scales the bricking policy (0 = the default 1, the
	// paper's regime). Partition and Parts name a registered brick
	// partition scheme ("" = the convex one-unit-per-brick default):
	// e.g. "interleave" with 2 parts groups bricks into two non-convex
	// checkerboard units. All three are part of the frame identity —
	// partitioned frames are byte-identical to convex ones by the §12
	// argument, but the fleet topology and stats differ, and aliasing
	// them in the cache would mask exactly the equality the golden
	// battery is meant to prove.
	BricksPerGPU int
	Partition    string
	Parts        int
}

// normalize fills defaults and validates against the service limits, so
// that two spellings of the same frame produce the same key.
func (r *Request) normalize(s *Service) error {
	if r.Dataset == "" {
		r.Dataset = dataset.Skull
	}
	known := false
	for _, n := range dataset.Names() {
		if n == r.Dataset {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("server: unknown dataset %q (have %v)", r.Dataset, dataset.Names())
	}
	if d, ok := dataset.NativeDims(r.Dataset); ok {
		// File-backed volumes have fixed on-disk dims; canonicalize the
		// edge to the largest one so every spelling of a request against
		// the same file shares one frame-cache identity.
		r.Edge = max(d.X, max(d.Y, d.Z))
	} else if r.Edge == 0 {
		r.Edge = 64
	}
	if r.Edge < 8 || r.Edge > s.cfg.MaxEdge {
		return fmt.Errorf("server: edge %d outside [8, %d]", r.Edge, s.cfg.MaxEdge)
	}
	if r.Width == 0 {
		r.Width = 256
	}
	if r.Height == 0 {
		r.Height = r.Width
	}
	// Each dimension is bounded before the product so a crafted w*h can
	// overflow neither this check nor the slice allocation in the
	// renderer.
	maxPx := int64(s.cfg.MaxPixels)
	if r.Width < 1 || r.Height < 1 ||
		int64(r.Width) > maxPx || int64(r.Height) > maxPx ||
		int64(r.Width)*int64(r.Height) > maxPx {
		return fmt.Errorf("server: image %dx%d outside (0, %d] pixels", r.Width, r.Height, s.cfg.MaxPixels)
	}
	if r.GPUs == 0 {
		r.GPUs = s.spec.Nodes * s.spec.GPUsPerNode
	}
	if r.GPUs < 1 || r.GPUs > s.spec.Nodes*s.spec.GPUsPerNode {
		return fmt.Errorf("server: %d GPUs requested, cluster has %d", r.GPUs, s.spec.Nodes*s.spec.GPUsPerNode)
	}
	if math.IsNaN(r.Orbit) || math.IsInf(r.Orbit, 0) {
		return fmt.Errorf("server: orbit %v is not a finite angle", r.Orbit)
	}
	if r.StepVoxels == 0 {
		r.StepVoxels = 1
	}
	// Written as a positive-range check so NaN fails it too.
	if !(r.StepVoxels >= 0.01 && r.StepVoxels <= 16) {
		return fmt.Errorf("server: step %v outside [0.01, 16]", r.StepVoxels)
	}
	if r.TerminationAlpha == 0 {
		r.TerminationAlpha = 0.98
	}
	if !(r.TerminationAlpha > 0 && r.TerminationAlpha <= 1) {
		return fmt.Errorf("server: termination alpha %v outside (0, 1]", r.TerminationAlpha)
	}
	if r.BricksPerGPU == 0 {
		r.BricksPerGPU = 1
	}
	if r.BricksPerGPU < 1 || r.BricksPerGPU > 64 {
		return fmt.Errorf("server: bricks-per-gpu %d outside [1, 64]", r.BricksPerGPU)
	}
	if r.Partition == "" {
		if r.Parts != 0 {
			return fmt.Errorf("server: parts=%d without a partition scheme", r.Parts)
		}
	} else if _, err := core.BuildPartition(r.Partition, r.Parts); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return nil
}

// key is the canonical identity of the frame this request addresses:
// dataset preset (data + transfer function) + dims + camera + quality.
// Requests with equal keys render bit-identical frames.
func (r *Request) key() string {
	part := ""
	if r.Partition != "" {
		part = fmt.Sprintf("%s:%d", r.Partition, r.Parts)
	}
	return fmt.Sprintf("%s|e%d|%dx%d|o%g|g%d|sh%t|st%g|ta%g|b%d|p%s",
		r.Dataset, r.Edge, r.Width, r.Height, r.Orbit, r.GPUs,
		r.Shading, r.StepVoxels, r.TerminationAlpha, r.BricksPerGPU, part)
}

// ServedVia says how a request was satisfied.
type ServedVia string

// ServedVia values.
const (
	ViaCache     ServedVia = "cache"     // frame cache hit
	ViaCoalesced ServedVia = "coalesced" // shared an in-flight render
	ViaRender    ServedVia = "render"    // rendered fresh
)

// Service is the embeddable render service. Create with New, serve with
// Render (or the HTTP Handler), stop with Close.
type Service struct {
	cfg        Config
	spec       cluster.Spec
	workers    int
	devWorkers int

	sem   chan struct{} // render-worker slots
	queue chan struct{} // admission: workers + MaxQueue tokens

	cache  *FrameCache
	flight flightGroup
	lat    *latencyRing

	// res aggregates overload-policy counters (breaker opens, sheds,
	// degraded frames, …) across this service, its coordinator and its
	// worker half — one truth for /stats.
	res *resilience.Metrics

	// renderOn is core.RenderOn; tests stub it to control timing.
	renderOn func(spec cluster.Spec, opt core.Options, devWorkers int) (*core.Result, sim.Time, error)

	// worker serves the /map endpoint (every gvmrd is worker-capable);
	// coord, when non-nil, fans admitted renders out to remote workers.
	// registry (non-nil iff coord is) is the membership authority the
	// coordinator places against; in AcceptJoins mode its control-plane
	// endpoints are mounted on the HTTP handler.
	worker   *dist.Worker
	coord    *dist.Coordinator
	registry *membership.Registry

	mu         sync.Mutex
	draining   bool
	inflight   int
	drained    chan struct{} // closed when draining && inflight == 0
	closed     chan struct{} // closed on Close, kicks queued waiters
	readyProbe func() (bool, string)

	start                                  time.Time
	requests, renders, coalesced, rejected int64
	errored, drainRejected, mapJobs        int64
	localFallbacks                         int64
	renderWall                             time.Duration
}

// New builds a Service from cfg.
func New(cfg Config) (*Service, error) {
	if cfg.GPUs == 0 {
		cfg.GPUs = 4
	}
	spec := cluster.AC(cfg.GPUs)
	if cfg.Spec != nil {
		spec = *cfg.Spec
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 64
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.MaxPixels == 0 {
		cfg.MaxPixels = 4096 * 4096
	}
	if cfg.MaxEdge == 0 {
		cfg.MaxEdge = 512
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cacheBytes := cfg.FrameCacheBytes
	if cacheBytes < 0 {
		cacheBytes = 0
	} else {
		cacheBytes = frameCacheBytesFromEnv(cacheBytes)
	}
	s := &Service{
		cfg:        cfg,
		spec:       spec,
		workers:    workers,
		devWorkers: schedule.DeviceWorkers(workers),
		sem:        make(chan struct{}, workers),
		queue:      make(chan struct{}, workers+cfg.MaxQueue),
		cache:      NewFrameCache(cacheBytes),
		lat:        newLatencyRing(8192),
		renderOn:   core.RenderOn,
		res:        &resilience.Metrics{},
		drained:    make(chan struct{}),
		closed:     make(chan struct{}),
		start:      time.Now(),
	}
	wk, err := dist.NewWorker(dist.WorkerConfig{
		Spec:       spec,
		DevWorkers: s.devWorkers,
		MaxEdge:    cfg.MaxEdge,
		MaxPixels:  cfg.MaxPixels,
		Metrics:    s.res,
	})
	if err != nil {
		return nil, err
	}
	s.worker = wk
	if len(cfg.WorkerAddrs) > 0 || cfg.AcceptJoins {
		s.registry = membership.New(membership.Config{
			HeartbeatInterval: cfg.HeartbeatEvery,
			MissLimit:         cfg.LeaseMisses,
		})
		coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
			Nodes:          cfg.WorkerAddrs, // static seeds; joins arrive live
			Registry:       s.registry,
			HedgeAfter:     cfg.HedgeAfter,
			AttemptTimeout: cfg.AttemptTimeout,
			DistReduce:     cfg.DistReduce,
			NoCompress:     cfg.NoWireCompress,
			Metrics:        s.res,
			// Plan grids with this service's spec, so a custom Spec works
			// as long as the workers run the same hardware description
			// (the grid-counts cross-check catches anything else).
			Spec: &spec,
		})
		if err != nil {
			return nil, err
		}
		s.coord = coord
		if cfg.AcceptJoins {
			// Placement sweeps leases inline; this only bounds how long a
			// dead node lingers in /stats between renders.
			go s.sweepLoop()
		}
	}
	return s, nil
}

// sweepLoop evicts expired leases in the background until Close.
func (s *Service) sweepLoop() {
	interval, _ := s.registry.Lease()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.registry.Sweep()
		case <-s.closed:
			return
		}
	}
}

// Registry exposes the membership authority (nil when the service is
// neither a static coordinator nor accepting joins).
func (s *Service) Registry() *membership.Registry { return s.registry }

// LoadSnapshot is the /stats-style load a worker's membership heartbeats
// carry to its coordinator.
func (s *Service) LoadSnapshot() membership.Load {
	s.mu.Lock()
	mapJobs := s.mapJobs
	s.mu.Unlock()
	inFlight := len(s.sem)
	depth := len(s.queue) - inFlight
	if depth < 0 {
		depth = 0
	}
	// Pressure is the admission-queue fill fraction: at 1 the next /map
	// this node receives is near-certain to be shed, so a coordinator
	// reading the heartbeat places there only as a last resort.
	var pressure float64
	if c := cap(s.queue); c > 0 {
		pressure = float64(len(s.queue)) / float64(c)
		if pressure > 1 {
			pressure = 1
		}
	}
	return membership.Load{InFlight: inFlight, QueueDepth: depth, MapJobs: mapJobs, Pressure: pressure}
}

// SetReadinessProbe installs an extra readiness input (the daemon wires
// the membership agent's state in: a worker that lost its lease or is
// draining reports not-ready while staying live).
func (s *Service) SetReadinessProbe(fn func() (ok bool, reason string)) {
	s.mu.Lock()
	s.readyProbe = fn
	s.mu.Unlock()
}

// Ready reports whether this node should receive new traffic. Liveness
// (/healthz) is separate and unconditional: a draining node is alive —
// restarting it would kill the in-flight work the drain exists to
// protect — it just must not be routed new requests.
func (s *Service) Ready() (bool, string) {
	s.mu.Lock()
	draining, probe := s.draining, s.readyProbe
	s.mu.Unlock()
	if draining {
		return false, "draining"
	}
	if probe != nil {
		if ok, reason := probe(); !ok {
			return false, reason
		}
	}
	return true, ""
}

// RenderOptions carries the per-request overload policy. It is policy,
// not identity: two requests that differ only here share one cache entry
// and one coalesced render, which is exactly why it must never leak into
// Request.key().
type RenderOptions struct {
	// Priority is the admission class this request sheds at (zero value
	// is Speculative, the first to go; interactive callers must say so).
	Priority resilience.Priority
	// Deadline bounds the render end to end (0 = Config.DefaultDeadline;
	// 0 there too = unbounded).
	Deadline time.Duration
}

// Render serves one frame: cache, then coalescer, then an admitted
// render. It is safe for any number of concurrent callers. The returned
// Frame is shared and immutable. via reports how the request was served.
// Render is the plain-priority path: interactive class, default deadline.
func (s *Service) Render(ctx context.Context, req Request) (f *Frame, via ServedVia, err error) {
	return s.RenderWith(ctx, req, RenderOptions{Priority: resilience.Interactive})
}

// RenderWith is Render with an explicit overload policy.
func (s *Service) RenderWith(ctx context.Context, req Request, po RenderOptions) (f *Frame, via ServedVia, err error) {
	if err := req.normalize(s); err != nil {
		return nil, "", invalidRequestError{err}
	}
	key := req.key()
	start := time.Now()
	s.mu.Lock()
	s.requests++
	s.mu.Unlock()
	defer func() {
		if err == nil {
			s.lat.add(time.Since(start))
		} else if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrDraining) &&
			!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			s.mu.Lock()
			s.errored++
			s.mu.Unlock()
		}
	}()

	if f, ok := s.cache.Get(key); ok {
		return f, ViaCache, nil
	}
	initiatorVia := ViaRender
	f, shared, err := s.flight.do(ctx, key, func() (*Frame, error) {
		// Re-check under the flight: a previous leader may have committed
		// between our miss and this call (peek: the outer Get already
		// counted this request). The write to initiatorVia is published
		// to the initiator by the flight's done-channel close.
		if f, ok := s.cache.peek(key); ok {
			initiatorVia = ViaCache
			return f, nil
		}
		return s.renderLeader(req, key, po)
	})
	if err != nil {
		return nil, "", err
	}
	if shared {
		s.mu.Lock()
		s.coalesced++
		s.mu.Unlock()
		return f, ViaCoalesced, nil
	}
	return f, initiatorVia, nil
}

// renderLeader is the coalescer leader's path: admission, then one
// core.RenderOn job, then PNG encoding and cache commit. It runs
// detached from any request context (the flight goroutine), so an
// abandoned request never wastes the render — the frame still commits
// to the cache; only Close interrupts the wait for a worker slot. The
// policy's deadline is enforced here (not from the caller's context):
// abandoning a request must not abort a shared render, but blowing its
// end-to-end budget must.
func (s *Service) renderLeader(req Request, key string, po RenderOptions) (*Frame, error) {
	if err := s.beginJob(); err != nil {
		return nil, err
	}
	defer s.endJob()

	release, err := s.admit(po.Priority)
	if err != nil {
		return nil, err
	}
	defer release()

	opt, err := s.options(req)
	if err != nil {
		return nil, err
	}
	// Reserve cache budget while the render is in flight; when the
	// budget is held by other in-flight renders, render uncached.
	est := img.RawBytes(req.Width, req.Height)
	reserved := s.cache.Reserve(key, est)

	deadline := po.Deadline
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}

	wallStart := time.Now()
	var res *core.Result
	var dur sim.Time
	degraded := false
	if s.coord != nil {
		job := dist.JobSpec{
			Dataset: req.Dataset, Edge: req.Edge,
			Width: req.Width, Height: req.Height,
			GPUs: req.GPUs, Shading: req.Shading,
			StepVoxels: req.StepVoxels, TerminationAlpha: req.TerminationAlpha,
			Camera: dist.CameraFrom(opt.Camera),
		}
		// The default bricking (1 per GPU) is spelled as the absent field
		// so default jobs stay decodable by workers that predate it.
		if req.BricksPerGPU != 1 {
			job.BricksPerGPU = req.BricksPerGPU
		}
		if req.Partition != "" {
			job.Partition = &dist.PartitionSpec{Scheme: req.Partition, Parts: req.Parts}
		}
		// The render context carries the policy, detached from the caller:
		// priority rides to workers as a header, and the deadline (when
		// set) both times out the coordinator and propagates the shrinking
		// remainder to every map batch.
		ctx := resilience.WithPriority(context.Background(), po.Priority)
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		res, dur, err = s.coord.Render(ctx, job)
		if errors.Is(err, dist.ErrNoWorkers) {
			// The whole fleet drained or expired: render locally rather
			// than fail. Bits are identical either way, so the fallback is
			// invisible except in the stats.
			s.mu.Lock()
			s.localFallbacks++
			s.mu.Unlock()
			res, dur, err = s.renderOn(s.spec, opt, s.devWorkers)
		}
		if err != nil && s.cfg.AllowDegraded &&
			(errors.Is(err, dist.ErrDeadline) || errors.Is(err, context.DeadlineExceeded)) {
			// Brownout: the fleet blew the deadline, but the caller opted
			// into a coarser answer over no answer. Quadruple the ray step
			// (within the validated range) and render locally — typically
			// an order of magnitude cheaper. The frame is marked and never
			// cached: a later healthy render must not find degraded bits
			// under the full-quality key.
			dopt := opt
			dopt.StepVoxels *= 4
			if dopt.StepVoxels > 16 {
				dopt.StepVoxels = 16
			}
			res, dur, err = s.renderOn(s.spec, dopt, s.devWorkers)
			if err == nil {
				degraded = true
				s.res.DegradedFrame()
			}
		}
	} else {
		res, dur, err = s.renderOn(s.spec, opt, s.devWorkers)
	}
	wall := time.Since(wallStart)
	if err != nil {
		if reserved {
			s.cache.Release(key)
		}
		return nil, err
	}
	var png bytes.Buffer
	if err := res.Image.EncodePNG(&png); err != nil {
		if reserved {
			s.cache.Release(key)
		}
		return nil, err
	}
	f := &Frame{
		Key:         key,
		Width:       req.Width,
		Height:      req.Height,
		Image:       res.Image,
		PNG:         png.Bytes(),
		Digest:      res.Image.Digest(),
		Runtime:     dur,
		FPS:         res.FPS,
		VPSMillions: res.VPSMillions,
		RenderWall:  wall,
		Degraded:    degraded,
	}
	if reserved {
		if degraded {
			s.cache.Release(key)
		} else {
			s.cache.Commit(key, f)
		}
	}
	s.mu.Lock()
	s.renders++
	s.renderWall += wall
	s.mu.Unlock()
	return f, nil
}

// beginJob admits one unit of work against the drain state; every
// successful beginJob must be paired with endJob.
func (s *Service) beginJob() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.drainRejected++
		return ErrDraining
	}
	s.inflight++
	return nil
}

func (s *Service) endJob() {
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 {
		close(s.drained)
	}
	s.mu.Unlock()
}

// admit enforces the backpressure contract for one unit of work (a local
// render or a /map batch): claim a queue token immediately or fail with
// ErrOverloaded, then wait for a render-worker slot (Close interrupts the
// wait with ErrDraining). The token covers waiting AND working; the
// returned release frees slot then token.
//
// Shedding is by priority, lowest class first: speculative work (hedge
// duplicates) is refused once the queue is half full, batch at three
// quarters, and only interactive work may fill it — so under overload the
// capacity that remains serves the humans. The fill reads are racy
// against concurrent admits, which is fine: the thresholds are pressure
// valves, not invariants, and the queue send below is the hard bound.
func (s *Service) admit(pri resilience.Priority) (release func(), err error) {
	fill, capQ := len(s.queue), cap(s.queue)
	shed := false
	switch pri {
	case resilience.Speculative:
		shed = fill >= capQ/2
	case resilience.Batch:
		shed = fill >= capQ*3/4
	}
	if shed {
		s.res.Shed(pri)
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return nil, ErrOverloaded
	}
	select {
	case s.queue <- struct{}{}:
	default:
		s.res.Shed(pri)
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return nil, ErrOverloaded
	}
	select {
	case s.sem <- struct{}{}:
	case <-s.closed:
		<-s.queue
		return nil, ErrDraining
	}
	return func() {
		<-s.sem
		<-s.queue
	}, nil
}

// options translates a normalized request into render options. The
// staging cache keys sources by tag+dims, so per-request source
// construction still shares one materialisation per dataset identity.
func (s *Service) options(req Request) (core.Options, error) {
	src, err := dataset.New(req.Dataset, dataset.PaperDims(req.Dataset, req.Edge))
	if err != nil {
		return core.Options{}, err
	}
	tf, err := transfer.Preset(dataset.TFName(req.Dataset))
	if err != nil {
		return core.Options{}, err
	}
	cam, err := core.OrbitCamera(src, req.Width, req.Height, req.Orbit)
	if err != nil {
		return core.Options{}, err
	}
	var part core.Partition
	if req.Partition != "" {
		if part, err = core.BuildPartition(req.Partition, req.Parts); err != nil {
			return core.Options{}, err
		}
	}
	return core.Options{
		Source: src, TF: tf,
		Width: req.Width, Height: req.Height,
		Camera:           cam,
		GPUs:             req.GPUs,
		Shading:          req.Shading,
		StepVoxels:       req.StepVoxels,
		TerminationAlpha: req.TerminationAlpha,
		BricksPerGPU:     req.BricksPerGPU,
		Partition:        part,
	}, nil
}

// Close drains the service: new renders fail with ErrDraining
// (cache hits and coalesced joins of already-running renders still
// succeed), requests already admitted finish, and Close returns when the
// last one has. ctx bounds the wait.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	idle := s.inflight == 0
	s.mu.Unlock()
	if !already {
		close(s.closed)
		if idle {
			close(s.drained)
		}
	}
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// LatencyStats summarise request latency in milliseconds. Count is the
// lifetime number of successful requests (cache hits, coalesced, and
// renders); Mean/P50/P99/Max all describe the recent window (the last
// 8192 requests), so they track current service health rather than a
// cold-start outlier forever.
type LatencyStats struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// SummarizeLatency computes the nearest-rank quantiles, mean and max of
// samples (which it sorts in place); count is reported verbatim. The
// /stats endpoint and gvmrd loadtest share it so both records quantify
// latency identically.
func SummarizeLatency(samples []time.Duration, count int64) LatencyStats {
	st := LatencyStats{Count: count}
	if len(samples) == 0 {
		return st
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, d := range samples {
		total += d
	}
	st.MeanMs = float64(total) / float64(len(samples)) / 1e6
	st.P50Ms = float64(quantile(samples, 0.50)) / 1e6
	st.P99Ms = float64(quantile(samples, 0.99)) / 1e6
	st.MaxMs = float64(samples[len(samples)-1]) / 1e6
	return st
}

// Stats is the /stats snapshot.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueCapacity int     `json:"queue_capacity"` // waiting slots beyond the workers
	Draining      bool    `json:"draining"`
	Ready         bool    `json:"ready"`

	Requests  int64 `json:"requests"`
	Renders   int64 `json:"renders"`
	Coalesced int64 `json:"coalesced"`
	Rejected  int64 `json:"rejected_overload"`
	Errors    int64 `json:"errors"`
	// MapJobs counts /map batches served for remote coordinators (this
	// node acting as a cluster worker).
	MapJobs int64 `json:"map_jobs"`
	// PlaceholdersStripped counts placeholder fragments the worker layer
	// stripped from outgoing stripes — always zero unless a mapper bug
	// leaks the kernel-internal sentinel onto the wire path.
	PlaceholdersStripped int64 `json:"placeholders_stripped,omitempty"`
	// Exchange counts distributed-reduce activity on this node acting as
	// a reducer: stripe pushes received from peer mappers, collects
	// served to coordinators, and sessions expired or live. Omitted
	// until the first exchange touches this node.
	Exchange *dist.ExchangeStats `json:"exchange,omitempty"`

	// WorkerNodes and Dist describe coordinator mode: the current
	// registered worker count and the distributed-layer event counters.
	// Membership is the full registry view — per-node state (alive /
	// draining, capacity, load, lease age) plus lifetime join / drain /
	// eviction counters. LocalFallbacks counts renders served in-process
	// because no eligible worker existed.
	WorkerNodes    int                    `json:"worker_nodes,omitempty"`
	Dist           *dist.CoordinatorStats `json:"dist,omitempty"`
	Membership     *membership.Stats      `json:"membership,omitempty"`
	LocalFallbacks int64                  `json:"local_fallbacks,omitempty"`

	// Resilience is the overload-policy ledger: breaker opens, half-open
	// probes, sheds by priority class, retry-budget exhaustions, degraded
	// frames, and deadline aborts. Always present — a steady zero row is
	// itself the evidence the chaos tests assert against.
	Resilience *resilience.Snapshot `json:"resilience"`

	// InFlight renders hold worker slots; QueueDepth renders are admitted
	// and waiting for one.
	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`

	RenderWallSeconds float64 `json:"render_wall_seconds"`

	Cache   FrameCacheStats   `json:"frame_cache"`
	Staging volume.CacheStats `json:"staging_cache"`
	// Pager aggregates demand-paging counters over every registered
	// out-of-core (v2) volume file; omitted when none is registered.
	Pager   *volume.PagerStats `json:"pager,omitempty"`
	Latency LatencyStats       `json:"latency"`
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		UptimeSeconds:     time.Since(s.start).Seconds(),
		Workers:           s.workers,
		QueueCapacity:     cap(s.queue) - s.workers,
		Draining:          s.draining,
		Requests:          s.requests,
		Renders:           s.renders,
		Coalesced:         s.coalesced,
		Rejected:          s.rejected,
		Errors:            s.errored,
		MapJobs:           s.mapJobs,
		LocalFallbacks:    s.localFallbacks,
		RenderWallSeconds: s.renderWall.Seconds(),
	}
	s.mu.Unlock()
	st.Ready, _ = s.Ready()
	st.PlaceholdersStripped = s.worker.PlaceholdersStripped()
	if ex := s.worker.ExchangeStats(); ex != (dist.ExchangeStats{}) {
		st.Exchange = &ex
	}
	if s.coord != nil {
		st.WorkerNodes = s.coord.Nodes()
		ds := s.coord.Stats()
		st.Dist = &ds
		ms := s.registry.Stats()
		st.Membership = &ms
	}
	st.InFlight = len(s.sem)
	if d := len(s.queue) - st.InFlight; d > 0 {
		st.QueueDepth = d
	}
	st.Cache = s.cache.Stats()
	st.Staging = volume.Cache.Stats()
	st.Pager = dataset.FilePagerStats()
	st.Latency = s.lat.stats()
	rs := s.res.Snapshot()
	st.Resilience = &rs
	return st
}

// Resilience exposes the shared overload-policy counters (tests inject
// faults and assert on these).
func (s *Service) Resilience() *resilience.Metrics { return s.res }

// Cache exposes the frame cache (for tests and the daemon's flags).
func (s *Service) Cache() *FrameCache { return s.cache }

// Draining reports whether Close has begun — a cheap flag read for
// health probes, without the full Stats snapshot.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// latencyRing keeps the last N request latencies and derives quantiles on
// demand — small, lock-cheap, good enough for a /stats endpoint.
type latencyRing struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	filled  bool
	count   int64
}

func newLatencyRing(n int) *latencyRing {
	return &latencyRing{samples: make([]time.Duration, n)}
}

func (l *latencyRing) add(d time.Duration) {
	l.mu.Lock()
	l.samples[l.next] = d
	l.next++
	if l.next == len(l.samples) {
		l.next = 0
		l.filled = true
	}
	l.count++
	l.mu.Unlock()
}

func (l *latencyRing) stats() LatencyStats {
	l.mu.Lock()
	n := l.next
	if l.filled {
		n = len(l.samples)
	}
	window := make([]time.Duration, n)
	copy(window, l.samples[:n])
	count := l.count
	l.mu.Unlock()
	return SummarizeLatency(window, count)
}

// quantile picks the nearest-rank quantile from sorted samples.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
