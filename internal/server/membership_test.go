package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gvmr/internal/membership"
)

// waitUntil polls cond for up to 5s — membership flows (register, beat,
// drain) run on real goroutines here, full HTTP loop included.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startJoiningWorker runs a worker service plus a membership agent that
// joins it to the given coordinator, mirroring what cmd/gvmrd -join does.
func startJoiningWorker(t *testing.T, coordURL string) (*Service, *membership.Agent) {
	t.Helper()
	svc, err := New(Config{GPUs: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { _ = svc.Close(context.Background()) })
	agent, err := membership.StartAgent(membership.AgentConfig{
		Coordinator: coordURL,
		Advertise:   srv.URL,
		Capacity:    membership.Capacity{DeviceWorkers: svc.devWorkers},
		Load:        svc.LoadSnapshot,
		RetryEvery:  10 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Stop)
	svc.SetReadinessProbe(func() (bool, string) {
		switch agent.State() {
		case membership.AgentRegistered:
			return true, ""
		default:
			return false, "membership: " + string(agent.State())
		}
	})
	return svc, agent
}

// TestJoinBasedDistributedRender is the end-to-end membership path: a
// coordinator starts with an EMPTY fleet (-accept-joins), workers join
// over HTTP, renders fan out to them, and the bits match a local render.
func TestJoinBasedDistributedRender(t *testing.T) {
	coord, err := New(Config{GPUs: 2, Workers: 2, AcceptJoins: true,
		HeartbeatEvery: 50 * time.Millisecond, FrameCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close(context.Background())
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	local, err := New(Config{GPUs: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close(context.Background())
	req := Request{Dataset: "skull", Edge: 24, Width: 48, Height: 48, Orbit: 33, GPUs: 2}
	fLocal, _, err := local.Render(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	// Before any worker joins, the coordinator falls back to rendering
	// locally — same bits, counted in the stats.
	fFallback, _, err := coord.Render(context.Background(), req)
	if err != nil {
		t.Fatalf("render with empty fleet: %v", err)
	}
	if fFallback.Digest != fLocal.Digest {
		t.Errorf("fallback digest %s != local %s", fFallback.Digest, fLocal.Digest)
	}
	if st := coord.Stats(); st.LocalFallbacks != 1 {
		t.Errorf("local fallbacks = %d, want 1", st.LocalFallbacks)
	}

	// Two workers join over the live HTTP control plane.
	w1, _ := startJoiningWorker(t, coordSrv.URL)
	w2, _ := startJoiningWorker(t, coordSrv.URL)
	waitUntil(t, "both workers alive", func() bool {
		st := coord.Registry().Stats()
		return st.Alive == 2
	})

	fDist, _, err := coord.Render(context.Background(), req)
	if err != nil {
		t.Fatalf("distributed render: %v", err)
	}
	if fDist.Digest != fLocal.Digest {
		t.Errorf("distributed digest %s != local %s", fDist.Digest, fLocal.Digest)
	}
	if got := w1.Stats().MapJobs + w2.Stats().MapJobs; got < 1 {
		t.Errorf("no map batches reached the joined workers")
	}
	st := coord.Stats()
	if st.Membership == nil || st.Membership.Joins != 2 || st.WorkerNodes != 2 {
		t.Errorf("membership stats = %+v", st.Membership)
	}
	// Heartbeats carry worker load into the coordinator's registry view.
	waitUntil(t, "heartbeat-reported load", func() bool {
		for _, m := range coord.Registry().Snapshot().Members {
			if m.Load.MapJobs > 0 {
				return true
			}
		}
		return false
	})
}

// TestWorkerDrainViaAgent: a worker that self-drains reports not-ready
// (while staying live) and stops receiving placements; the coordinator
// keeps serving identical bits on the survivor, then falls back locally
// when the whole fleet is gone.
func TestWorkerDrainViaAgent(t *testing.T) {
	coord, err := New(Config{GPUs: 2, Workers: 2, AcceptJoins: true,
		HeartbeatEvery: 50 * time.Millisecond, FrameCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close(context.Background())
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	w1, a1 := startJoiningWorker(t, coordSrv.URL)
	w2, a2 := startJoiningWorker(t, coordSrv.URL)
	waitUntil(t, "both workers alive", func() bool { return coord.Registry().Stats().Alive == 2 })

	req := Request{Dataset: "skull", Edge: 24, Width: 48, Height: 48, Orbit: 10, GPUs: 2}
	if _, _, err := coord.Render(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	baseline, _, err := coord.Render(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	// Worker 1 drains: ack means zero new placements.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := a1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	w1Jobs := w1.Stats().MapJobs
	if ok, reason := w1.Ready(); ok || reason == "" {
		t.Errorf("drained worker Ready() = %v %q, want not-ready with reason", ok, reason)
	}

	for _, orbit := range []float64{20, 30, 40} {
		r := req
		r.Orbit = orbit
		if _, _, err := coord.Render(context.Background(), r); err != nil {
			t.Fatalf("render at %v° after drain: %v", orbit, err)
		}
	}
	if got := w1.Stats().MapJobs; got != w1Jobs {
		t.Errorf("drained worker served %d new map batches after ack", got-w1Jobs)
	}
	if got := w2.Stats().MapJobs; got < 1 {
		t.Errorf("survivor served no batches")
	}
	waitUntil(t, "registry shows draining", func() bool {
		st := coord.Registry().Stats()
		return st.Draining == 1 && st.Alive == 1
	})

	// Drain the survivor too: the coordinator falls back to local render,
	// still bit-identical.
	if err := a2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	f, _, err := coord.Render(context.Background(), req)
	if err != nil {
		t.Fatalf("render with fully-drained fleet: %v", err)
	}
	if f.Digest != baseline.Digest {
		t.Errorf("fallback digest %s != distributed %s", f.Digest, baseline.Digest)
	}
	if st := coord.Stats(); st.LocalFallbacks < 1 {
		t.Errorf("local fallbacks = %d, want ≥1", st.LocalFallbacks)
	}
}

// TestMembershipHTTPSurface exercises the daemon-facing wiring: control
// plane mounted on the coordinator handler, /stats carrying membership,
// /readyz tracking agent state.
func TestMembershipHTTPSurface(t *testing.T) {
	coord, err := New(Config{GPUs: 1, Workers: 1, AcceptJoins: true,
		HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close(context.Background())
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	w, agent := startJoiningWorker(t, coordSrv.URL)
	waitUntil(t, "worker registered", agent.Registered)

	// Worker /readyz flips with agent state; /healthz never does.
	wSrv := httptest.NewServer(w.Handler())
	defer wSrv.Close()
	get := func(url string) int {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(wSrv.URL + "/readyz"); got != http.StatusOK {
		t.Errorf("registered worker /readyz = %d, want 200", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := agent.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := get(wSrv.URL + "/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("draining worker /readyz = %d, want 503", got)
	}
	if got := get(wSrv.URL + "/healthz"); got != http.StatusOK {
		t.Errorf("draining worker /healthz = %d, want 200", got)
	}

	// Deregister removes the member; the coordinator /stats reflects it.
	if err := agent.Deregister(ctx); err != nil {
		t.Fatal(err)
	}
	st := coord.Registry().Stats()
	if st.Deregisters != 1 || len(st.Members) != 0 {
		t.Errorf("registry after deregister = %+v", st)
	}
}
