package server

import (
	"context"
	"net/http/httptest"
	"testing"
)

// startWorkerService spins a full gvmrd-style service (its Handler mounts
// /map) as an HTTP worker node and returns its base URL plus the service
// for stats inspection.
func startWorkerService(t *testing.T, gpus int) (string, *Service) {
	t.Helper()
	svc, err := New(Config{GPUs: gpus, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { _ = svc.Close(context.Background()) })
	return srv.URL, svc
}

// TestCoordinatorServiceMatchesLocal: a service configured with remote
// workers serves byte-identical frames to a purely local service, and the
// work demonstrably crossed the process boundary (worker map counters).
func TestCoordinatorServiceMatchesLocal(t *testing.T) {
	w1, ws1 := startWorkerService(t, 1)
	w2, ws2 := startWorkerService(t, 1)

	local, err := New(Config{GPUs: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close(context.Background())
	coord, err := New(Config{GPUs: 2, Workers: 2, WorkerAddrs: []string{w1, w2}})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close(context.Background())

	req := Request{Dataset: "skull", Edge: 24, Width: 48, Height: 48, Orbit: 33, GPUs: 2, Shading: true}
	fLocal, _, err := local.Render(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	fDist, via, err := coord.Render(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if via != ViaRender {
		t.Errorf("first distributed render served via %q", via)
	}
	if fDist.Digest != fLocal.Digest {
		t.Errorf("distributed digest %s != local %s", fDist.Digest, fLocal.Digest)
	}

	mapJobs := ws1.Stats().MapJobs + ws2.Stats().MapJobs
	if mapJobs < 1 {
		t.Errorf("no map batches reached the workers (w1 %d, w2 %d)",
			ws1.Stats().MapJobs, ws2.Stats().MapJobs)
	}
	st := coord.Stats()
	if st.WorkerNodes != 2 || st.Dist == nil || st.Dist.Jobs < 1 {
		t.Errorf("coordinator stats missing dist section: %+v", st)
	}

	// Second request: served from the coordinator's frame cache, no new
	// worker traffic needed.
	if _, via, err := coord.Render(context.Background(), req); err != nil || via != ViaCache {
		t.Errorf("repeat request served via %q, err %v", via, err)
	}
}

// TestDistReduceServiceMatchesLocal: a coordinator service running the
// reduce phase on its worker fleet serves byte-identical frames to a
// purely local service, and the exchange demonstrably happened (reduce
// jobs on the coordinator, pushes and collects on the workers).
func TestDistReduceServiceMatchesLocal(t *testing.T) {
	w1, ws1 := startWorkerService(t, 1)
	w2, ws2 := startWorkerService(t, 1)

	local, err := New(Config{GPUs: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close(context.Background())
	coord, err := New(Config{GPUs: 2, Workers: 2, WorkerAddrs: []string{w1, w2}, DistReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close(context.Background())

	req := Request{Dataset: "skull", Edge: 24, Width: 48, Height: 48, Orbit: 57, GPUs: 2, Shading: true}
	fLocal, _, err := local.Render(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	fDist, _, err := coord.Render(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if fDist.Digest != fLocal.Digest {
		t.Errorf("distributed-reduce digest %s != local %s", fDist.Digest, fLocal.Digest)
	}

	st := coord.Stats()
	if st.Dist == nil || st.Dist.ReduceJobs < 1 || st.Dist.ReduceFallbacks != 0 {
		t.Errorf("exchange did not carry the frame: %+v", st.Dist)
	}
	var pushes, collects int64
	for _, ws := range []*Service{ws1, ws2} {
		if ex := ws.Stats().Exchange; ex != nil {
			pushes += ex.Pushes
			collects += ex.Collects
		}
	}
	if pushes < 1 || collects != 2 {
		t.Errorf("worker exchange counters implausible: %d pushes, %d collects", pushes, collects)
	}
}
