package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"gvmr/internal/dist"
	"gvmr/internal/img"
	"gvmr/internal/resilience"
)

// HTTP response headers on /render.
const (
	// HeaderDigest carries the SHA-256 of the exact float32 framebuffer
	// bits — compare it against img.Image.Digest of a direct render.
	HeaderDigest = "X-Gvmr-Digest"
	// HeaderServed says how the request was satisfied: cache, coalesced,
	// or render.
	HeaderServed = "X-Gvmr-Served"
	// HeaderRuntime is the frame's virtual duration in seconds on the
	// simulated cluster (the paper's figure of merit, not wall time).
	HeaderRuntime = "X-Gvmr-Runtime-Seconds"
	// HeaderWidth and HeaderHeight size a format=raw framebuffer.
	HeaderWidth  = "X-Gvmr-Width"
	HeaderHeight = "X-Gvmr-Height"
)

// Handler returns the HTTP API over the service:
//
//	GET /render?dataset=skull&edge=64&size=256&orbit=30&shading=1&format=png
//	GET /stats
//	GET /healthz
//	GET /readyz
//
// /render query parameters: dataset (skull|supernova|plume), edge, size
// (square image) or w+h, orbit (degrees), gpus, shading (0/1), step
// (voxels), ta (termination alpha), bricks-per-gpu (bricking scale),
// partition (scheme:parts, e.g. interleave:2 — a possibly non-convex
// brick partition; bits are identical to the convex default), format
// (png, the default, or raw — little-endian float32 RGBA, the
// renderer's exact bits), priority (interactive, the default, batch, or
// speculative — the class admission sheds at under overload).
//
// An X-Gvmr-Deadline request header (relative milliseconds) bounds the
// render end to end; a miss is 504, or — when the service runs with
// -allow-degraded — a coarser frame marked with X-Gvmr-Degraded: 1.
// Overload (429) and drain (503) responses carry Retry-After.
//
// /healthz is pure liveness: 200 whenever the process can answer, even
// while draining — restarting a draining node would kill the in-flight
// work the drain protects. /readyz is routability: 503 while draining,
// not yet registered with a coordinator, or cut off from one.
//
// When the service accepts joins (or coordinates static workers), the
// membership control plane (/register, /heartbeat, /drain, /deregister)
// is mounted too.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/render", s.handleRender)
	mux.HandleFunc(dist.MapPath, s.handleMap)
	// The reduce-exchange endpoints bypass the admission gate on purpose:
	// a push or collect is the tail of a render whose map batches already
	// hold admission slots fleet-wide. Gating them behind the same bounded
	// queue could deadlock a full fleet — every slot held by a mapper
	// waiting on a push the gate won't admit. The handlers bound their own
	// memory (body caps, session cap, TTL sweep) instead.
	mux.HandleFunc(dist.ReducePath, s.worker.HandleReducePush)
	mux.HandleFunc(dist.CollectPath, s.worker.HandleCollect)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if ok, reason := s.Ready(); !ok {
			http.Error(w, reason, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	if s.registry != nil {
		s.registry.Mount(mux)
	}
	return mux
}

// handleMap serves the distributed map endpoint (POST /map): this node
// acting as a cluster worker for a remote coordinator. Map batches pass
// through the same admission gate as renders — a queue token and a
// render-worker slot — so a coordinator storm cannot starve local
// requests past the configured bounds, and Close drains map work too.
func (s *Service) handleMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Hedge duplicates arrive marked speculative and are the first work
	// shed when this node's queue fills; a garbled header is a protocol
	// error, not a default.
	pri, err := resilience.ParsePriority(r.Header.Get(resilience.HeaderPriority))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.beginJob(); err != nil {
		w.Header().Set("Retry-After", "5")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer s.endJob()
	release, err := s.admit(pri)
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case err != nil:
		w.Header().Set("Retry-After", "5")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer release()
	s.mu.Lock()
	s.mapJobs++
	s.mu.Unlock()
	s.worker.ServeHTTP(w, r)
}

// parseRenderRequest decodes /render query parameters into a Request
// (normalization and limit checks happen inside Service.Render).
func parseRenderRequest(r *http.Request) (Request, string, error) {
	q := r.URL.Query()
	req := Request{Dataset: q.Get("dataset")}
	intArg := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad %s=%q", name, v)
			}
			*dst = n
		}
		return nil
	}
	floatArg := func(name string, dst *float64) error {
		if v := q.Get(name); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad %s=%q", name, v)
			}
			*dst = f
		}
		return nil
	}
	size := 0
	for _, e := range []error{
		intArg("edge", &req.Edge), intArg("size", &size),
		intArg("w", &req.Width), intArg("h", &req.Height),
		intArg("gpus", &req.GPUs), floatArg("orbit", &req.Orbit),
		intArg("bricks-per-gpu", &req.BricksPerGPU),
	} {
		if e != nil {
			return req, "", e
		}
	}
	if v := q.Get("partition"); v != "" {
		// "scheme:parts", e.g. "interleave:2" — the same spelling
		// Partition.Name uses and the request key canonicalises.
		scheme, parts, ok := strings.Cut(v, ":")
		if !ok || scheme == "" {
			return req, "", fmt.Errorf("bad partition=%q (want scheme:parts)", v)
		}
		n, err := strconv.Atoi(parts)
		if err != nil {
			return req, "", fmt.Errorf("bad partition=%q (want scheme:parts)", v)
		}
		req.Partition, req.Parts = scheme, n
	}
	if size != 0 {
		if req.Width != 0 || req.Height != 0 {
			return req, "", fmt.Errorf("size and w/h are mutually exclusive")
		}
		req.Width, req.Height = size, size
	}
	if v := q.Get("shading"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return req, "", fmt.Errorf("bad shading=%q", v)
		}
		req.Shading = b
	}
	var step, ta float64
	if err := floatArg("step", &step); err != nil {
		return req, "", err
	}
	if err := floatArg("ta", &ta); err != nil {
		return req, "", err
	}
	req.StepVoxels = float32(step)
	req.TerminationAlpha = float32(ta)
	format := q.Get("format")
	if format == "" {
		format = "png"
	}
	if format != "png" && format != "raw" {
		return req, "", fmt.Errorf("bad format=%q (png|raw)", format)
	}
	return req, format, nil
}

func (s *Service) handleRender(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	req, format, err := parseRenderRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	po := RenderOptions{Priority: resilience.Interactive}
	if v := r.URL.Query().Get("priority"); v != "" {
		if po.Priority, err = resilience.ParsePriority(v); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if d, ok, derr := resilience.ParseDeadline(r.Header.Get(resilience.HeaderDeadline)); derr != nil {
		http.Error(w, derr.Error(), http.StatusBadRequest)
		return
	} else if ok {
		po.Deadline = d
	}
	f, via, err := s.RenderWith(r.Context(), req, po)
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrInvalid):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
		// Client went away; nothing useful to write.
		return
	case errors.Is(err, dist.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		// The policy deadline expired (the client is still here — their
		// context is checked above). Without -allow-degraded there is no
		// frame to serve, only the honest status.
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	h := w.Header()
	if f.Degraded {
		h.Set(resilience.HeaderDegraded, "1")
	}
	h.Set(HeaderDigest, f.Digest)
	h.Set(HeaderServed, string(via))
	h.Set(HeaderRuntime, strconv.FormatFloat(f.Runtime.Seconds(), 'g', -1, 64))
	h.Set(HeaderWidth, strconv.Itoa(f.Width))
	h.Set(HeaderHeight, strconv.Itoa(f.Height))
	switch format {
	case "raw":
		h.Set("Content-Type", "application/octet-stream")
		h.Set("Content-Length", strconv.FormatInt(img.RawBytes(f.Width, f.Height), 10))
		if r.Method == http.MethodHead {
			return
		}
		_ = f.Image.EncodeRaw(w) // client hangup; nothing to recover
	default:
		h.Set("Content-Type", "image/png")
		h.Set("Content-Length", strconv.Itoa(len(f.PNG)))
		if r.Method == http.MethodHead {
			return
		}
		_, _ = w.Write(f.PNG)
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}
