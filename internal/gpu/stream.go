package gpu

import (
	"fmt"

	"gvmr/internal/sim"
)

// Stream is a CUDA-style asynchronous work queue: operations enqueued on a
// stream execute in order, concurrently with the enqueuing process and
// with other streams. The renderer uses streams to overlap ray casting
// with fragment read-back and network sends, which is the core of the
// paper's "asynchronous, streaming interface".
type Stream struct {
	dev  *Device
	name string
	q    *sim.Chan[streamOp]
	done *sim.Event
}

type streamOp struct {
	name string
	run  func(p *sim.Proc)
	done *sim.Event
}

// NewStream creates a stream and starts its executor process. Streams must
// be closed (Close or Device teardown) before the simulation ends,
// otherwise the executor blocks forever and the sim reports a deadlock.
func (d *Device) NewStream(name string) *Stream {
	s := &Stream{
		dev:  d,
		name: name,
		q:    sim.NewChan[streamOp](d.Env, name+".q", 64),
		done: sim.NewEvent(d.Env, name+".done"),
	}
	d.streams = append(d.streams, s)
	d.Env.Go(name, func(p *sim.Proc) {
		for {
			op, ok := s.q.Recv(p)
			if !ok {
				s.done.Fire(p)
				return
			}
			op.run(p)
			op.done.Fire(p)
		}
	})
	return s
}

// Enqueue adds an arbitrary operation to the stream and returns its
// completion event.
func (s *Stream) Enqueue(p *sim.Proc, name string, run func(*sim.Proc)) *sim.Event {
	ev := sim.NewEvent(s.dev.Env, fmt.Sprintf("%s.%s.done", s.name, name))
	s.q.Send(p, streamOp{name: name, run: run, done: ev})
	return ev
}

// Launch enqueues a kernel execution; the returned event fires when the
// kernel completes. The kernel's host-side computation runs inside the
// stream executor, so results are ready exactly when the event fires.
func (s *Stream) Launch(p *sim.Proc, k Kernel) *sim.Event {
	return s.Enqueue(p, "launch:"+k.Name(), func(sp *sim.Proc) {
		s.dev.Execute(sp, k, false)
	})
}

// Download enqueues a device-to-host copy of n bytes.
func (s *Stream) Download(p *sim.Proc, n int64) *sim.Event {
	return s.Enqueue(p, "d2h", func(sp *sim.Proc) {
		s.dev.Download(sp, n)
	})
}

// Sync blocks p until every operation enqueued so far has completed.
func (s *Stream) Sync(p *sim.Proc) {
	ev := s.Enqueue(p, "sync", func(*sim.Proc) {})
	ev.Wait(p)
}

// Close shuts the stream down after draining queued work; Wait on the
// returned event (or call Device.Close) to join the executor.
func (s *Stream) Close(p *sim.Proc) *sim.Event {
	s.q.Close(p)
	return s.done
}

// Close drains and shuts down all streams of the device.
func (d *Device) Close(p *sim.Proc) {
	events := make([]*sim.Event, 0, len(d.streams))
	for _, s := range d.streams {
		if !s.q.Closed() {
			events = append(events, s.Close(p))
		} else {
			events = append(events, s.done)
		}
	}
	sim.WaitAll(p, events...)
	d.streams = nil
}
