// Package gpu simulates a CUDA-class GPU device on top of the sim kernel:
// VRAM accounting, 3D textures, asynchronous streams, and kernel launches
// that execute real Go "kernels" (parallelised over thread blocks on host
// cores) while charging modeled execution time from a calibrated cost
// model. This is the substitution for the paper's Tesla C1060 GPUs — see
// DESIGN.md §2.
package gpu

import "gvmr/internal/sim"

// Spec is the performance model of a device. The defaults in TeslaC1060
// are calibrated against the micro-costs the paper reports (§3) and the
// §6.3 bottleneck analysis; see DESIGN.md §6.
type Spec struct {
	Name string
	// VRAMBytes is the device memory capacity.
	VRAMBytes int64
	// SampleRate is the sustained trilinear 3D-texture sample rate
	// (samples/s) through the texture fetch+filter units, including the
	// transfer-function lookup and blend of the ray-casting inner loop.
	SampleRate float64
	// ThreadRate is the raw thread issue rate (threads/s): a floor cost
	// for kernels whose threads do almost no work (e.g. placeholder
	// emission outside the brick).
	ThreadRate float64
	// EmitRate is the rate at which threads can write key-value pairs to
	// global memory (pairs/s).
	EmitRate float64
	// CellRate is the macrocell traversal rate (cells/s): one step of the
	// empty-space-skipping DDA — a coarse-grid occupancy fetch plus the
	// exit-plane arithmetic. Far cheaper than a trilinear sample (one
	// aligned read, no filtering, no TF lookup) but not free; the cost
	// model charges it so skipping's win is net of its own overhead.
	// Zero disables the charge (pre-skipping specs stay comparable).
	CellRate float64
	// LaunchOverhead is the fixed driver cost per kernel launch.
	LaunchOverhead sim.Time
	// ZeroCopyPenalty divides EmitRate when a kernel emits directly to
	// host-mapped (0-copy) memory instead of VRAM (§7 future work).
	ZeroCopyPenalty float64
}

// TeslaC1060 returns the calibrated model of the paper's per-GPU hardware
// (one logical GPU of the Tesla S1070 units on the NCSA AC cluster).
func TeslaC1060() Spec {
	return Spec{
		Name:            "Tesla C1060 (simulated)",
		VRAMBytes:       4 << 30,
		SampleRate:      45e6,
		ThreadRate:      2.5e9,
		EmitRate:        450e6,
		CellRate:        1e9,
		LaunchOverhead:  10 * sim.Microsecond,
		ZeroCopyPenalty: 25,
	}
}

// Dim2 is a 2D extent (kernel grid or block size).
type Dim2 struct {
	X, Y int
}

// Count returns X*Y.
func (d Dim2) Count() int { return d.X * d.Y }

// Stats aggregates the observable work of a kernel execution; the cost
// model converts it to virtual time.
type Stats struct {
	Threads int64 // threads executed
	Samples int64 // trilinear texture samples taken
	// SamplesSkipped counts lattice samples the empty-space-skipping DDA
	// proved invisible and never fetched: the dense path would have taken
	// Samples + SamplesSkipped texture samples. Reported, not charged.
	SamplesSkipped int64
	// Cells counts macrocell traversal steps (occupancy fetch + exit
	// computation), charged at Spec.CellRate.
	Cells   int64
	Emitted int64 // key-value pairs written (including placeholders)
	RaysHit int64 // rays that intersected the brick
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Threads += other.Threads
	s.Samples += other.Samples
	s.SamplesSkipped += other.SamplesSkipped
	s.Cells += other.Cells
	s.Emitted += other.Emitted
	s.RaysHit += other.RaysHit
}

// Sub removes other from s. Device counters are lifetime totals; callers
// that need per-job figures snapshot at job start and Sub the snapshot
// out, so a job's stats don't depend on what ran before it on the device.
func (s *Stats) Sub(other Stats) {
	s.Threads -= other.Threads
	s.Samples -= other.Samples
	s.SamplesSkipped -= other.SamplesSkipped
	s.Cells -= other.Cells
	s.Emitted -= other.Emitted
	s.RaysHit -= other.RaysHit
}

// Kernel is a CUDA-kernel equivalent: real computation decomposed into a
// 2D grid of 2D thread blocks. RunBlock implementations are called
// concurrently from multiple host goroutines and must write only to
// disjoint output locations (exactly the discipline a CUDA kernel needs).
type Kernel interface {
	// Name identifies the kernel in stats and traces.
	Name() string
	// Grid returns the block grid extent.
	Grid() Dim2
	// Block returns the threads-per-block extent.
	Block() Dim2
	// RunBlock executes block (bx,by) and returns its work stats.
	RunBlock(bx, by int) Stats
}

// KernelCost converts kernel stats to modeled execution time under spec.
// Texture sampling and raw thread issue overlap on real hardware, so the
// cost takes their max; emission bandwidth is additive (it contends with
// sampling for memory). Macrocell traversal is additive with sampling —
// the skipping DDA runs in the same inner loop as the fetches, so its
// steps serialise with them rather than hiding behind them.
func KernelCost(spec *Spec, s Stats, zeroCopy bool) sim.Time {
	sample := sim.WorkTime(float64(s.Samples), spec.SampleRate)
	if s.Cells > 0 && spec.CellRate > 0 {
		sample += sim.WorkTime(float64(s.Cells), spec.CellRate)
	}
	issue := sim.WorkTime(float64(s.Threads), spec.ThreadRate)
	work := max(sample, issue)
	emitRate := spec.EmitRate
	if zeroCopy && spec.ZeroCopyPenalty > 0 {
		emitRate /= spec.ZeroCopyPenalty
	}
	emit := sim.WorkTime(float64(s.Emitted), emitRate)
	return spec.LaunchOverhead + work + emit
}
