package gpu

import (
	"fmt"
	"runtime"
	"sync"

	"gvmr/internal/sim"
	"gvmr/internal/volume"
)

// PCIe describes the host↔device link a device hangs off. All GPUs of one
// node share a single link resource, which is how the four logical GPUs of
// a Tesla S1070 contend on the paper's cluster.
type PCIe struct {
	Link      *sim.Resource
	Bandwidth float64 // bytes/s
	Latency   sim.Time
}

// TransferTime returns latency + serialisation for n bytes.
func (p PCIe) TransferTime(n int64) sim.Time {
	return p.Latency + sim.BytesTime(n, p.Bandwidth)
}

// DeviceStats aggregates a device's lifetime activity, broken down the way
// the paper's Figure 3 attributes time.
type DeviceStats struct {
	KernelTime sim.Time
	H2DTime    sim.Time
	D2HTime    sim.Time
	Launches   int64
	BytesH2D   int64
	BytesD2H   int64
	Work       Stats
}

// Device is one simulated GPU.
type Device struct {
	Env    *sim.Env
	ID     int
	NodeID int
	Spec   Spec
	PCIe   PCIe

	engine    *sim.Resource // kernel execution engine (one kernel at a time)
	allocated int64
	streams   []*Stream
	stats     DeviceStats

	// Workers caps host-side parallelism for kernel execution; zero means
	// GOMAXPROCS.
	Workers int
}

// NewDevice creates a device attached to the given PCIe link.
func NewDevice(env *sim.Env, id, nodeID int, spec Spec, pcie PCIe) *Device {
	return &Device{
		Env:    env,
		ID:     id,
		NodeID: nodeID,
		Spec:   spec,
		PCIe:   pcie,
		engine: sim.NewResource(env, fmt.Sprintf("gpu%d.engine", id), 1),
	}
}

// Stats returns a copy of the device's accumulated statistics.
func (d *Device) Stats() DeviceStats { return d.stats }

// AllocatedBytes returns the current VRAM allocation.
func (d *Device) AllocatedBytes() int64 { return d.allocated }

// FreeBytes returns the remaining VRAM.
func (d *Device) FreeBytes() int64 { return d.Spec.VRAMBytes - d.allocated }

// Buffer is a VRAM allocation handle.
type Buffer struct {
	dev   *Device
	bytes int64
	freed bool
}

// Bytes returns the allocation size.
func (b *Buffer) Bytes() int64 { return b.bytes }

// Alloc reserves VRAM; it fails when the device is out of memory — the
// paper's restriction that any single map task must fit in GPU memory
// surfaces here.
func (d *Device) Alloc(bytes int64) (*Buffer, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("gpu%d: negative allocation %d", d.ID, bytes)
	}
	if d.allocated+bytes > d.Spec.VRAMBytes {
		return nil, fmt.Errorf("gpu%d: out of memory: want %d, free %d of %d",
			d.ID, bytes, d.FreeBytes(), d.Spec.VRAMBytes)
	}
	d.allocated += bytes
	return &Buffer{dev: d, bytes: bytes}, nil
}

// Free releases a buffer; freeing twice panics (a use-after-free would be a
// renderer bug worth crashing on).
func (d *Device) Free(b *Buffer) {
	if b.dev != d {
		panic(fmt.Sprintf("gpu%d: freeing buffer of gpu%d", d.ID, b.dev.ID))
	}
	if b.freed {
		panic(fmt.Sprintf("gpu%d: double free", d.ID))
	}
	b.freed = true
	d.allocated -= b.bytes
}

// Texture3D is a brick's voxel data resident in VRAM, sampled through the
// (simulated) texture units.
type Texture3D struct {
	Buf  *Buffer
	Data *volume.BrickData
}

// Free releases the texture's VRAM.
func (t *Texture3D) Free() { t.Buf.dev.Free(t.Buf) }

// UploadTexture3D allocates and synchronously copies a brick into a 3D
// texture, charging the shared PCIe link. It is synchronous because CUDA
// 3D-texture uploads were synchronous at the time — the paper calls this
// out explicitly (§3.1.2, Chunk).
func (d *Device) UploadTexture3D(p *sim.Proc, bd *volume.BrickData) (*Texture3D, error) {
	bytes := bd.Bytes()
	buf, err := d.Alloc(bytes)
	if err != nil {
		return nil, err
	}
	t := d.PCIe.TransferTime(bytes)
	d.PCIe.Link.Use(p, t)
	d.stats.H2DTime += t
	d.stats.BytesH2D += bytes
	return &Texture3D{Buf: buf, Data: bd}, nil
}

// DownloadTime charges a device-to-host copy of n bytes on the shared PCIe
// link (the fragment read-back path) and returns the modeled duration.
func (d *Device) Download(p *sim.Proc, n int64) sim.Time {
	t := d.PCIe.TransferTime(n)
	d.PCIe.Link.Use(p, t)
	d.stats.D2HTime += t
	d.stats.BytesD2H += n
	return t
}

// Execute runs a kernel to completion from the calling process: the real
// computation executes on host cores, then the modeled cost occupies the
// device's execution engine. Streams use this internally; callers that
// don't need async can call it directly.
func (d *Device) Execute(p *sim.Proc, k Kernel, zeroCopy bool) Stats {
	stats := d.runBlocks(k)
	cost := KernelCost(&d.Spec, stats, zeroCopy)
	d.engine.Use(p, cost)
	d.stats.KernelTime += cost
	d.stats.Launches++
	d.stats.Work.Add(stats)
	return stats
}

// Occupy holds the execution engine for dur: modeled non-kernel device
// work (e.g. a GPU-side sort whose cost the caller computes) that must
// still contend with kernels for the device.
func (d *Device) Occupy(p *sim.Proc, dur sim.Time) {
	d.engine.Use(p, dur)
	d.stats.KernelTime += dur
}

// runBlocks executes every block of the kernel across host cores and sums
// the per-block stats deterministically.
func (d *Device) runBlocks(k Kernel) Stats {
	grid := k.Grid()
	n := grid.Count()
	if n == 0 {
		return Stats{}
	}
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	perBlock := make([]Stats, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			perBlock[i] = k.RunBlock(i%grid.X, i/grid.X)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		var mu sync.Mutex
		take := func() int {
			mu.Lock()
			defer mu.Unlock()
			i := next
			next++
			return int(i)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := take()
					if i >= n {
						return
					}
					perBlock[i] = k.RunBlock(i%grid.X, i/grid.X)
				}
			}()
		}
		wg.Wait()
	}
	var total Stats
	for i := range perBlock {
		total.Add(perBlock[i])
	}
	return total
}
