package gpu

import (
	"testing"

	"gvmr/internal/sim"
)

func TestStreamDownloadOp(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env)
	env.Go("host", func(p *sim.Proc) {
		s := d.NewStream("s")
		ev := s.Download(p, 1<<20)
		ev.Wait(p)
		want := d.PCIe.TransferTime(1 << 20)
		if p.Now() != want {
			t.Errorf("download completed at %v, want %v", p.Now(), want)
		}
		d.Close(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().BytesD2H != 1<<20 {
		t.Errorf("BytesD2H = %d", d.Stats().BytesD2H)
	}
}

func TestStreamSyncEmpty(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env)
	env.Go("host", func(p *sim.Proc) {
		s := d.NewStream("s")
		s.Sync(p) // nothing enqueued: returns at the same instant
		if p.Now() != 0 {
			t.Errorf("empty sync advanced time to %v", p.Now())
		}
		d.Close(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceCloseIdempotent(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env)
	env.Go("host", func(p *sim.Proc) {
		d.NewStream("a")
		d.NewStream("b")
		d.Close(p)
		d.Close(p) // second close is a no-op
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSameDeviceStreamsSerialiseOnEngine(t *testing.T) {
	// Two streams on one device: kernels contend for the single
	// execution engine, so they serialise (unlike across devices).
	env := sim.NewEnv()
	d := testDevice(env)
	k := &countKernel{grid: Dim2{1, 1}, block: Dim2{16, 16}, samplesPerThread: 100000}
	env.Go("host", func(p *sim.Proc) {
		s1 := d.NewStream("s1")
		s2 := d.NewStream("s2")
		e1 := s1.Launch(p, k)
		e2 := s2.Launch(p, k)
		sim.WaitAll(p, e1, e2)
		one := KernelCost(&d.Spec, Stats{Threads: 256, Samples: 256 * 100000, Emitted: 256}, false)
		if p.Now() < 2*one {
			t.Errorf("same-device kernels overlapped: %v < %v", p.Now(), 2*one)
		}
		d.Close(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOccupyContendsWithKernels(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env)
	k := &countKernel{grid: Dim2{1, 1}, block: Dim2{16, 16}, samplesPerThread: 100000}
	kcost := KernelCost(&d.Spec, Stats{Threads: 256, Samples: 256 * 100000, Emitted: 256}, false)
	var done sim.Time
	env.Go("kernel", func(p *sim.Proc) {
		d.Execute(p, k, false)
	})
	env.Go("occupier", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond) // arrive while the kernel holds the engine
		d.Occupy(p, 10*sim.Millisecond)
		done = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done < kcost+10*sim.Millisecond {
		t.Errorf("Occupy finished at %v; should queue behind kernel (%v)", done, kcost)
	}
}
