package gpu

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gvmr/internal/sim"
	"gvmr/internal/volume"
)

func testDevice(env *sim.Env) *Device {
	link := PCIe{
		Link:      sim.NewResource(env, "pcie", 1),
		Bandwidth: 6.2e9,
		Latency:   15 * sim.Microsecond,
	}
	return NewDevice(env, 0, 0, TeslaC1060(), link)
}

func TestAllocFreeAccounting(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env)
	b1, err := d.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := d.Alloc(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.AllocatedBytes() != 3<<20 {
		t.Errorf("allocated = %d", d.AllocatedBytes())
	}
	d.Free(b1)
	if d.AllocatedBytes() != 2<<20 {
		t.Errorf("after free allocated = %d", d.AllocatedBytes())
	}
	d.Free(b2)
	if d.AllocatedBytes() != 0 {
		t.Errorf("final allocated = %d", d.AllocatedBytes())
	}
}

func TestAllocOOM(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env)
	if _, err := d.Alloc(d.Spec.VRAMBytes + 1); err == nil {
		t.Error("over-VRAM allocation accepted")
	}
	b, err := d.Alloc(d.Spec.VRAMBytes)
	if err != nil {
		t.Fatalf("exact-capacity alloc failed: %v", err)
	}
	if _, err := d.Alloc(1); err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Errorf("expected OOM, got %v", err)
	}
	d.Free(b)
	if _, err := d.Alloc(-1); err == nil {
		t.Error("negative allocation accepted")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env)
	b, err := d.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	d.Free(b)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	d.Free(b)
}

func TestUploadTexture3DCost(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env)
	// A 64³ brick (the paper's §3 micro-cost unit): < 0.2 ms on PCIe.
	bd := &volume.BrickData{Data: make([]float32, 64*64*64)}
	env.Go("host", func(p *sim.Proc) {
		tex, err := d.UploadTexture3D(p, bd)
		if err != nil {
			t.Error(err)
			return
		}
		elapsed := p.Now()
		if elapsed >= 200*sim.Microsecond {
			t.Errorf("64³ upload took %v, paper says < 0.2ms", elapsed)
		}
		if elapsed <= 100*sim.Microsecond {
			t.Errorf("64³ upload took %v, implausibly fast for 1 MiB over 5.5 GB/s", elapsed)
		}
		tex.Free()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if d.AllocatedBytes() != 0 {
		t.Error("texture free leaked VRAM")
	}
	if d.Stats().BytesH2D != 64*64*64*4 {
		t.Errorf("BytesH2D = %d", d.Stats().BytesH2D)
	}
}

func TestPCIeSharedContention(t *testing.T) {
	// Two GPUs on one link: concurrent uploads serialise.
	env := sim.NewEnv()
	link := PCIe{Link: sim.NewResource(env, "pcie", 1), Bandwidth: 1e9, Latency: 0}
	d1 := NewDevice(env, 0, 0, TeslaC1060(), link)
	d2 := NewDevice(env, 1, 0, TeslaC1060(), link)
	bd := &volume.BrickData{Data: make([]float32, 1<<18)} // 1 MiB
	var t1, t2 sim.Time
	env.Go("h1", func(p *sim.Proc) {
		if _, err := d1.UploadTexture3D(p, bd); err != nil {
			t.Error(err)
		}
		t1 = p.Now()
	})
	env.Go("h2", func(p *sim.Proc) {
		if _, err := d2.UploadTexture3D(p, bd); err != nil {
			t.Error(err)
		}
		t2 = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	one := sim.BytesTime(1<<20, 1e9)
	if t1 != one {
		t.Errorf("first upload done at %v, want %v", t1, one)
	}
	if t2 != 2*one {
		t.Errorf("second upload done at %v, want %v (serialised)", t2, 2*one)
	}
}

// countKernel is a trivial kernel that counts its own threads and emits a
// configurable number of samples per thread.
type countKernel struct {
	grid, block      Dim2
	samplesPerThread int64
	mark             [][]int32 // per-block execution marker
}

func (k *countKernel) Name() string { return "count" }
func (k *countKernel) Grid() Dim2   { return k.grid }
func (k *countKernel) Block() Dim2  { return k.block }
func (k *countKernel) RunBlock(bx, by int) Stats {
	if k.mark != nil {
		k.mark[by][bx]++
	}
	threads := int64(k.block.Count())
	return Stats{
		Threads: threads,
		Samples: threads * k.samplesPerThread,
		Emitted: threads,
	}
}

func TestExecuteRunsEveryBlockOnce(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env)
	mark := make([][]int32, 7)
	for i := range mark {
		mark[i] = make([]int32, 5)
	}
	k := &countKernel{grid: Dim2{5, 7}, block: Dim2{16, 16}, samplesPerThread: 3, mark: mark}
	env.Go("host", func(p *sim.Proc) {
		stats := d.Execute(p, k, false)
		if stats.Threads != int64(5*7*256) {
			t.Errorf("threads = %d", stats.Threads)
		}
		if stats.Samples != int64(5*7*256*3) {
			t.Errorf("samples = %d", stats.Samples)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for by := range mark {
		for bx := range mark[by] {
			if mark[by][bx] != 1 {
				t.Fatalf("block (%d,%d) ran %d times", bx, by, mark[by][bx])
			}
		}
	}
	if d.Stats().Launches != 1 {
		t.Errorf("launches = %d", d.Stats().Launches)
	}
}

func TestKernelCostModel(t *testing.T) {
	spec := TeslaC1060()
	// Sample-bound kernel: one second's worth of samples dominates.
	s := Stats{Threads: 1000, Samples: int64(spec.SampleRate), Emitted: 0}
	got := KernelCost(&spec, s, false)
	want := spec.LaunchOverhead + sim.Second
	if got != want {
		t.Errorf("sample-bound cost = %v, want %v", got, want)
	}
	// Thread-bound kernel (placeholder-only launch).
	s = Stats{Threads: 2_500_000_000, Samples: 0}
	got = KernelCost(&spec, s, false)
	if got != spec.LaunchOverhead+sim.Second {
		t.Errorf("thread-bound cost = %v", got)
	}
	// Zero-copy emission is much slower.
	s = Stats{Emitted: 1_000_000}
	normal := KernelCost(&spec, s, false)
	zc := KernelCost(&spec, s, true)
	if zc <= normal {
		t.Errorf("zero-copy %v should cost more than VRAM emission %v", zc, normal)
	}
}

func TestStreamOrdering(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env)
	var order []string
	env.Go("host", func(p *sim.Proc) {
		s := d.NewStream("s0")
		s.Enqueue(p, "a", func(sp *sim.Proc) {
			sp.Sleep(10 * sim.Millisecond)
			order = append(order, "a")
		})
		s.Enqueue(p, "b", func(sp *sim.Proc) {
			order = append(order, "b")
		})
		order = append(order, "host") // enqueues are async: host continues first
		s.Sync(p)
		order = append(order, "synced")
		d.Close(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := "host,a,b,synced"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
}

func TestStreamsOverlapAcrossDevices(t *testing.T) {
	env := sim.NewEnv()
	link := PCIe{Link: sim.NewResource(env, "pcie", 1), Bandwidth: 6.2e9, Latency: 0}
	d1 := NewDevice(env, 0, 0, TeslaC1060(), link)
	d2 := NewDevice(env, 1, 0, TeslaC1060(), link)
	k := &countKernel{grid: Dim2{1, 1}, block: Dim2{16, 16}, samplesPerThread: 100000}
	env.Go("host", func(p *sim.Proc) {
		s1 := d1.NewStream("s1")
		s2 := d2.NewStream("s2")
		e1 := s1.Launch(p, k)
		e2 := s2.Launch(p, k)
		sim.WaitAll(p, e1, e2)
		elapsed := p.Now()
		// Each kernel: 256 threads * 1e5 samples / 70e6 ≈ 366ms. If they
		// overlapped, total ≈ one kernel, not two.
		one := KernelCost(&d1.Spec, Stats{Threads: 256, Samples: 256 * 100000, Emitted: 256}, false)
		if elapsed > one+one/10 {
			t.Errorf("two devices took %v, want ≈%v (parallel)", elapsed, one)
		}
		d1.Close(p)
		d2.Close(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnclosedStreamIsDeadlock(t *testing.T) {
	env := sim.NewEnv()
	d := testDevice(env)
	env.Go("host", func(p *sim.Proc) {
		d.NewStream("leaky")
	})
	if err := env.Run(); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("leaked stream should deadlock, got %v", err)
	}
}

// Property: kernel cost is monotone in every stats dimension.
func TestKernelCostMonotoneProperty(t *testing.T) {
	spec := TeslaC1060()
	r := rand.New(rand.NewSource(71))
	f := func() bool {
		s := Stats{
			Threads: r.Int63n(1 << 20),
			Samples: r.Int63n(1 << 24),
			Emitted: r.Int63n(1 << 20),
		}
		base := KernelCost(&spec, s, false)
		more := s
		more.Samples += 1 << 20
		if KernelCost(&spec, more, false) < base {
			return false
		}
		more = s
		more.Emitted += 1 << 16
		if KernelCost(&spec, more, false) < base {
			return false
		}
		more = s
		more.Threads += 1 << 20
		return KernelCost(&spec, more, false) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
