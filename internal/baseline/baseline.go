// Package baseline provides the CPU-cluster comparison renderer that
// stands in for the paper's footnote-1 reference point (ParaView rendering
// 346 MVPS with 512 processes on 256 nodes of a Cray XT3). Each MPI-style
// rank is modeled as a compute device whose sample rate is a 2010-era CPU
// core rather than a GPU; everything else — bricked ray casting,
// direct-send compositing, the network — reuses the same tested pipeline,
// so the comparison isolates exactly the thing the paper varies: where the
// sampling flops come from.
package baseline

import (
	"fmt"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/gpu"
	"gvmr/internal/sim"
)

// CPURank returns the modeled per-rank compute capability: a single
// 2010-era x86 core running an optimised software ray caster.
func CPURank() gpu.Spec {
	return gpu.Spec{
		Name:            "CPU rank (simulated)",
		VRAMBytes:       4 << 30, // host memory share; not the constraint here
		SampleRate:      9e6,     // trilinear + TF + blend per core
		ThreadRate:      1e9,
		EmitRate:        300e6,
		LaunchOverhead:  2 * sim.Microsecond, // function call, not a kernel launch
		ZeroCopyPenalty: 1,
	}
}

// ClusterParams builds a CPU-cluster model with the given total rank
// count, ranksPerNode ranks on each node (the paper's reference ran 2
// ranks per node). Interconnect and disk match the AC model so the only
// difference from the GPU cluster is the compute substrate.
func ClusterParams(ranks, ranksPerNode int) (cluster.Params, error) {
	if ranks < 1 {
		return cluster.Params{}, fmt.Errorf("baseline: %d ranks", ranks)
	}
	if ranksPerNode < 1 {
		ranksPerNode = 2
	}
	if ranks < ranksPerNode {
		ranksPerNode = ranks
	}
	p := cluster.AC(4) // inherit network/disk/CPU calibration
	p.Nodes = (ranks + ranksPerNode - 1) / ranksPerNode
	p.GPUsPerNode = ranksPerNode
	p.GPU = CPURank()
	// Ranks talk to "their device" through memory, not PCIe.
	p.PCIeBandwidth = 8e9
	p.PCIeLatency = sim.Microsecond
	p.CPUCores = ranksPerNode
	return p, nil
}

// Render renders one frame on a CPU cluster of the given rank count and
// returns the result (same Result type as the GPU renderer, so figures of
// merit compare directly).
func Render(env *sim.Env, ranks, ranksPerNode int, opt core.Options) (*core.Result, error) {
	params, err := ClusterParams(ranks, ranksPerNode)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(env, params)
	if err != nil {
		return nil, err
	}
	opt.GPUs = ranks
	return core.Render(cl, opt)
}
