package baseline

import (
	"testing"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/sim"
	"gvmr/internal/transfer"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

func TestClusterParams(t *testing.T) {
	p, err := ClusterParams(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes != 4 || p.GPUsPerNode != 2 {
		t.Errorf("8 ranks / 2 per node = %d nodes × %d", p.Nodes, p.GPUsPerNode)
	}
	if p.GPU.SampleRate >= 1e8 {
		t.Error("CPU rank should sample far slower than a GPU")
	}
	if _, err := ClusterParams(0, 2); err == nil {
		t.Error("zero ranks accepted")
	}
	// Fewer ranks than per-node default shrinks per-node.
	p, err = ClusterParams(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes != 1 || p.GPUsPerNode != 1 {
		t.Errorf("1 rank = %d nodes × %d", p.Nodes, p.GPUsPerNode)
	}
}

func TestRenderProducesImage(t *testing.T) {
	src, err := dataset.New(dataset.Skull, volume.Cube(32))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Render(sim.NewEnv(), 4, 2, core.Options{
		Source: src, TF: transfer.SkullPreset(), Width: 48, Height: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Image.MeanLuminance() < 0.01 {
		t.Error("baseline render is black")
	}
	if res.Runtime <= 0 {
		t.Error("no runtime")
	}
}

func TestCPUClusterSlowerThanGPU(t *testing.T) {
	// Same rank/GPU count: the CPU substrate must be much slower at the
	// map phase — the entire point of the paper.
	src, err := dataset.New(dataset.Skull, volume.Cube(64))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{
		Source: src, TF: transfer.SkullPreset(), Width: 128, Height: 128,
	}
	cpu, err := Render(sim.NewEnv(), 4, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	gpuCl, err := newGPUCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	opt.GPUs = 4
	gpu, err := core.Render(gpuCl, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Stats.MeanStage.Map <= 2*gpu.Stats.MeanStage.Map {
		t.Errorf("CPU map %v should be much slower than GPU map %v",
			cpu.Stats.MeanStage.Map, gpu.Stats.MeanStage.Map)
	}
}

// newGPUCluster builds a GPU cluster for the comparison test.
func newGPUCluster(gpus int) (*cluster.Cluster, error) {
	return cluster.New(sim.NewEnv(), cluster.AC(gpus))
}
