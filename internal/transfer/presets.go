package transfer

import (
	"fmt"
	"strings"

	"gvmr/internal/vec"
)

// mustFromPoints backs the presets; the control-point lists are static and
// valid by construction.
func mustFromPoints(points []Point) *Func {
	f, err := FromPoints(points, DefaultTableSize)
	if err != nil {
		panic(err)
	}
	return f
}

// Gray returns a neutral gray ramp with linearly increasing opacity; useful
// as a reference transfer function in tests.
func Gray() *Func {
	return mustFromPoints([]Point{
		{S: 0, C: vec.New4(0, 0, 0, 0)},
		{S: 1, C: vec.New4(1, 1, 1, 0.8)},
	})
}

// SkullPreset emphasises the dense "bone" shell of the skull phantom: soft
// tissue is translucent amber, bone is bright and nearly opaque.
func SkullPreset() *Func {
	return mustFromPoints([]Point{
		{S: 0.00, C: vec.New4(0, 0, 0, 0)},
		{S: 0.12, C: vec.New4(0, 0, 0, 0)},
		{S: 0.25, C: vec.New4(0.55, 0.25, 0.12, 0.02)},
		{S: 0.45, C: vec.New4(0.85, 0.60, 0.35, 0.10)},
		{S: 0.65, C: vec.New4(0.95, 0.90, 0.80, 0.55)},
		{S: 1.00, C: vec.New4(1.00, 1.00, 0.98, 0.95)},
	})
}

// SupernovaPreset maps the remnant shell to fiery emission colors with a
// translucent interior so filaments stay visible.
func SupernovaPreset() *Func {
	return mustFromPoints([]Point{
		{S: 0.00, C: vec.New4(0, 0, 0, 0)},
		{S: 0.08, C: vec.New4(0.02, 0.01, 0.10, 0.005)},
		{S: 0.30, C: vec.New4(0.25, 0.05, 0.35, 0.03)},
		{S: 0.55, C: vec.New4(0.90, 0.25, 0.10, 0.12)},
		{S: 0.75, C: vec.New4(1.00, 0.60, 0.10, 0.35)},
		{S: 1.00, C: vec.New4(1.00, 0.95, 0.70, 0.80)},
	})
}

// PlumePreset renders the plume as a smoky gradient from cool blue at low
// density to warm white at the core.
func PlumePreset() *Func {
	return mustFromPoints([]Point{
		{S: 0.00, C: vec.New4(0, 0, 0, 0)},
		{S: 0.05, C: vec.New4(0.05, 0.08, 0.20, 0.01)},
		{S: 0.25, C: vec.New4(0.15, 0.30, 0.60, 0.05)},
		{S: 0.50, C: vec.New4(0.40, 0.60, 0.85, 0.15)},
		{S: 0.75, C: vec.New4(0.85, 0.85, 0.90, 0.40)},
		{S: 1.00, C: vec.New4(1.00, 0.98, 0.90, 0.85)},
	})
}

// Preset returns the transfer function conventionally paired with the named
// dataset (skull, supernova, plume, or the explicit "gray" ramp — the
// default for registered file volumes); unknown names get the gray ramp
// with an error.
func Preset(dataset string) (*Func, error) {
	switch strings.ToLower(dataset) {
	case "skull":
		return SkullPreset(), nil
	case "supernova":
		return SupernovaPreset(), nil
	case "plume":
		return PlumePreset(), nil
	case "gray":
		return Gray(), nil
	default:
		return Gray(), fmt.Errorf("transfer: no preset for dataset %q", dataset)
	}
}
