package transfer

import (
	"math/bits"
	"sync/atomic"
)

// This file implements the occupancy query behind empty-space skipping:
// "can any scalar in [lo, hi] map to nonzero opacity under this transfer
// function?" answered in O(1) by a sparse-table range-max over the alpha
// channel of the lookup table (DESIGN.md §8). The structure is built
// lazily, once per Func, and published through an atomic pointer so
// concurrent ray casters share one build without locking.

// rangeMax is a sparse table over the table's alpha channel: level k
// holds the max over windows of length 2^k, so any [i, j] range query is
// the max of two overlapping windows.
type rangeMax struct {
	levels [][]float32
}

func buildRangeMax(table []float32) *rangeMax {
	n := len(table)
	rm := &rangeMax{}
	if n == 0 {
		return rm
	}
	level := make([]float32, n)
	copy(level, table)
	rm.levels = append(rm.levels, level)
	for width := 2; width <= n; width *= 2 {
		prev := rm.levels[len(rm.levels)-1]
		next := make([]float32, n-width+1)
		for i := range next {
			next[i] = max(prev[i], prev[i+width/2])
		}
		rm.levels = append(rm.levels, next)
	}
	return rm
}

// query returns the max over entries [i, j] (inclusive); i <= j, both in
// range.
func (rm *rangeMax) query(i, j int) float32 {
	if span := j - i + 1; span > 1 {
		k := bits.Len(uint(span)) - 1 // floor(log2(span))
		lvl := rm.levels[k]
		return max(lvl[i], lvl[j-(1<<k)+1])
	}
	return rm.levels[0][i]
}

// alphaRange returns f's lazily-built alpha range-max table.
func (f *Func) alphaRange() *rangeMax {
	if rm := f.rmax.Load(); rm != nil {
		return rm
	}
	alphas := make([]float32, len(f.Table))
	for i, c := range f.Table {
		alphas[i] = c.W
	}
	rm := buildRangeMax(alphas)
	// Concurrent first calls may each build; the table is small and
	// deterministic, so last-writer-wins is harmless.
	f.rmax.Store(rm)
	return rm
}

// MaxAlphaInRange returns an upper bound on Lookup(s).W over every scalar
// s in [lo, hi] — exactly the max alpha of the table entries Lookup can
// touch for such s, including the entries a boundary scalar interpolates
// with and the clamped entries for ranges beyond [0, 1]. A zero return is
// therefore a proof: no sample whose value lies in [lo, hi] can
// contribute under this transfer function. The backing range-max table is
// built once per Func and costs O(1) per query, so ray casters may call
// this per macrocell.
func (f *Func) MaxAlphaInRange(lo, hi float32) float32 {
	n := len(f.Table)
	if n == 0 || hi < lo {
		return 0
	}
	if n == 1 {
		return f.Table[0].W
	}
	// Mirror Lookup's entry addressing exactly (same float32 arithmetic):
	// for s in (0,1), Lookup interpolates entries int(s·(n-1)) and its
	// successor; multiplication by a positive constant and truncation are
	// both monotone, so the touched entries over [lo, hi] are bracketed by
	// the boundary scalars' entries. Clamped scalars touch entry 0 / n-1,
	// which the clamping below includes.
	i0 := 0
	if lo > 0 {
		i0 = int(lo * float32(n-1))
		if i0 > n-1 {
			i0 = n - 1
		}
	}
	i1 := n - 1
	if hi < 1 {
		pos := hi * float32(n-1)
		if pos < 0 {
			pos = 0
		}
		i1 = int(pos)
		if float32(i1) != pos {
			i1++ // fractional position: Lookup blends in the next entry
		}
		if i1 > n-1 {
			i1 = n - 1
		}
	}
	return f.alphaRange().query(i0, i1)
}

// atomicRangeMax is the published-once pointer type embedded in Func.
type atomicRangeMax = atomic.Pointer[rangeMax]
