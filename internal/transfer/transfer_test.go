package transfer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gvmr/internal/vec"
)

func TestFromPointsValidation(t *testing.T) {
	if _, err := FromPoints([]Point{{S: 0}}, 16); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FromPoints([]Point{{S: 0}, {S: 1}}, 1); err == nil {
		t.Error("table size 1 accepted")
	}
}

func TestLookupEndpoints(t *testing.T) {
	f, err := FromPoints([]Point{
		{S: 0, C: vec.New4(0, 0, 0, 0)},
		{S: 1, C: vec.New4(1, 1, 1, 1)},
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Lookup(0); got != (vec.V4{}) {
		t.Errorf("Lookup(0) = %v", got)
	}
	if got := f.Lookup(1); got != (vec.V4{X: 1, Y: 1, Z: 1, W: 1}) {
		t.Errorf("Lookup(1) = %v", got)
	}
	// Clamping outside the domain.
	if got := f.Lookup(-5); got != f.Lookup(0) {
		t.Errorf("Lookup(-5) = %v", got)
	}
	if got := f.Lookup(7); got != f.Lookup(1) {
		t.Errorf("Lookup(7) = %v", got)
	}
}

func TestLookupLinearRamp(t *testing.T) {
	f, err := FromPoints([]Point{
		{S: 0, C: vec.New4(0, 0, 0, 0)},
		{S: 1, C: vec.New4(1, 0, 0, 1)},
	}, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float32{0.1, 0.25, 0.5, 0.75, 0.9} {
		got := f.Lookup(s)
		if d := got.X - s; d > 0.01 || d < -0.01 {
			t.Errorf("ramp Lookup(%v).R = %v, want ≈%v", s, got.X, s)
		}
	}
}

func TestUnsortedPointsAreSorted(t *testing.T) {
	f, err := FromPoints([]Point{
		{S: 1, C: vec.New4(1, 1, 1, 1)},
		{S: 0, C: vec.New4(0, 0, 0, 0)},
		{S: 0.5, C: vec.New4(0.5, 0, 0, 0.5)},
	}, 128)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Lookup(0.5)
	if d := got.X - 0.5; d > 0.02 || d < -0.02 {
		t.Errorf("Lookup(0.5).R = %v, want ≈0.5", got.X)
	}
}

func TestMaxAlpha(t *testing.T) {
	f, err := FromPoints([]Point{
		{S: 0, C: vec.New4(0, 0, 0, 0)},
		{S: 1, C: vec.New4(1, 1, 1, 0.6)},
	}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.MaxAlpha(); got != 0.6 {
		t.Errorf("MaxAlpha = %v, want 0.6", got)
	}
	empty := &Func{}
	if empty.MaxAlpha() != 0 {
		t.Error("empty MaxAlpha != 0")
	}
	if empty.Lookup(0.5) != (vec.V4{}) {
		t.Error("empty Lookup != zero")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"skull", "supernova", "plume"} {
		f, err := Preset(name)
		if err != nil {
			t.Errorf("Preset(%q): %v", name, err)
		}
		if f.MaxAlpha() <= 0.1 {
			t.Errorf("Preset(%q) nearly transparent (max alpha %v)", name, f.MaxAlpha())
		}
		// Empty space must be fully transparent so placeholder fragments
		// and early termination behave.
		if c := f.Lookup(0); c.W != 0 {
			t.Errorf("Preset(%q).Lookup(0).A = %v, want 0", name, c.W)
		}
	}
	if _, err := Preset("unknown"); err == nil {
		t.Error("unknown preset accepted")
	}
}

// Property: Lookup output components always stay within the convex hull of
// the control-point components (monotone bounded interpolation).
func TestLookupBoundedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	f := func() bool {
		pts := []Point{
			{S: 0, C: vec.New4(r.Float64(), r.Float64(), r.Float64(), r.Float64())},
			{S: r.Float64()*0.8 + 0.1, C: vec.New4(r.Float64(), r.Float64(), r.Float64(), r.Float64())},
			{S: 1, C: vec.New4(r.Float64(), r.Float64(), r.Float64(), r.Float64())},
		}
		tf, err := FromPoints(pts, 64)
		if err != nil {
			return false
		}
		s := float32(r.Float64())
		c := tf.Lookup(s)
		lo := vec.V4{X: 2, Y: 2, Z: 2, W: 2}
		hi := vec.V4{X: -1, Y: -1, Z: -1, W: -1}
		for _, p := range pts {
			lo.X = min(lo.X, p.C.X)
			lo.Y = min(lo.Y, p.C.Y)
			lo.Z = min(lo.Z, p.C.Z)
			lo.W = min(lo.W, p.C.W)
			hi.X = max(hi.X, p.C.X)
			hi.Y = max(hi.Y, p.C.Y)
			hi.Z = max(hi.Z, p.C.Z)
			hi.W = max(hi.W, p.C.W)
		}
		const e = 1e-5
		return c.X >= lo.X-e && c.X <= hi.X+e &&
			c.Y >= lo.Y-e && c.Y <= hi.Y+e &&
			c.Z >= lo.Z-e && c.Z <= hi.Z+e &&
			c.W >= lo.W-e && c.W <= hi.W+e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestOpacityCorrectedEquivalence bounds the difference between the
// precomputed table correction (correct alphas, then interpolate) and the
// exact per-sample correction (interpolate, then pow) the ray caster used
// to compute: both are piecewise-linear approximations of the same smooth
// curve, so they may only diverge within one table cell.
func TestOpacityCorrectedEquivalence(t *testing.T) {
	for _, name := range []string{"skull", "supernova", "plume"} {
		f, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, step := range []float32{0.25, 0.5, 2, 4} {
			corrected := f.OpacityCorrected(step)
			for i := 0; i <= 4096; i++ {
				s := float32(i) / 4096
				exact := 1 - float32(math.Pow(float64(1-f.Lookup(s).W), float64(step)))
				got := corrected.Lookup(s).W
				if d := math.Abs(float64(got - exact)); d > 0.01 {
					t.Fatalf("%s step %v at s=%v: corrected %v vs exact %v (|Δ|=%v)",
						name, step, s, got, exact, d)
				}
				// Empty space must stay exactly empty: the c.W > 0
				// contribution gate depends on it.
				if exact == 0 != (got == 0) {
					t.Fatalf("%s step %v at s=%v: zero-alpha preservation broken", name, step, s)
				}
			}
		}
	}
}
