package transfer

import (
	"math/rand"
	"testing"

	"gvmr/internal/vec"
)

// randomFunc builds a table with structured alpha: runs of exact zeros
// (the empty space the query exists to find) interleaved with positive
// runs.
func randomFunc(r *rand.Rand, size int) *Func {
	table := make([]vec.V4, size)
	i := 0
	for i < size {
		run := 1 + r.Intn(8)
		zero := r.Intn(2) == 0
		for j := 0; j < run && i < size; j++ {
			a := float32(0)
			if !zero {
				a = r.Float32()
			}
			table[i] = vec.V4{X: r.Float32(), Y: r.Float32(), Z: r.Float32(), W: a}
			i++
		}
	}
	return &Func{Table: table}
}

// TestMaxAlphaInRangeSoundness is the contract the renderer relies on:
// for any scalar in [lo, hi], Lookup's alpha never exceeds
// MaxAlphaInRange(lo, hi) — in particular, a zero answer proves every
// such scalar is invisible. Checked against dense scans plus exact
// boundary and entry-aligned scalars, over random tables of several
// sizes and random (often out-of-[0,1]) ranges.
func TestMaxAlphaInRangeSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for _, size := range []int{2, 3, 16, 64, 256} {
		f := randomFunc(r, size)
		for trial := 0; trial < 300; trial++ {
			lo := r.Float32()*1.4 - 0.2
			hi := lo + r.Float32()*0.5
			bound := f.MaxAlphaInRange(lo, hi)
			check := func(s float32) {
				if s < lo || s > hi {
					return
				}
				if a := f.Lookup(s).W; a > bound {
					t.Fatalf("size %d: Lookup(%v).W = %v > MaxAlphaInRange(%v,%v) = %v",
						size, s, a, lo, hi, bound)
				}
			}
			check(lo)
			check(hi)
			for i := 0; i < 64; i++ {
				check(lo + (hi-lo)*float32(i)/63)
			}
			// Entry-aligned scalars are the interpolation breakpoints.
			for i := 0; i < size; i++ {
				check(float32(i) / float32(size-1))
			}
		}
	}
}

// TestMaxAlphaInRangeBruteForce pins the exact value: the max alpha over
// the table entries Lookup can touch for scalars in [lo, hi], computed
// here by the dumbest possible scan.
func TestMaxAlphaInRangeBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, size := range []int{2, 5, 64, 256} {
		f := randomFunc(r, size)
		n := size
		brute := func(lo, hi float32) float32 {
			i0 := 0
			if lo > 0 {
				i0 = min(int(lo*float32(n-1)), n-1)
			}
			i1 := n - 1
			if hi < 1 {
				pos := max(hi*float32(n-1), 0)
				i1 = int(pos)
				if float32(i1) != pos {
					i1++
				}
				i1 = min(i1, n-1)
			}
			var m float32
			for i := i0; i <= i1; i++ {
				if f.Table[i].W > m {
					m = f.Table[i].W
				}
			}
			return m
		}
		for trial := 0; trial < 2000; trial++ {
			lo := r.Float32()*1.4 - 0.2
			hi := lo + r.Float32()*0.6
			if got, want := f.MaxAlphaInRange(lo, hi), brute(lo, hi); got != want {
				t.Fatalf("size %d: MaxAlphaInRange(%v,%v) = %v, want %v", size, lo, hi, got, want)
			}
		}
	}
}

func TestMaxAlphaInRangeEdges(t *testing.T) {
	f := SkullPreset()
	if f.MaxAlphaInRange(0.5, 0.4) != 0 {
		t.Error("inverted range should report 0")
	}
	if f.MaxAlphaInRange(-2, -1) != f.Table[0].W {
		t.Error("fully-below range should clamp to entry 0")
	}
	if f.MaxAlphaInRange(2, 3) != f.Table[len(f.Table)-1].W {
		t.Error("fully-above range should clamp to the last entry")
	}
	if f.MaxAlphaInRange(-1, 2) != f.MaxAlpha() {
		t.Error("covering range should equal MaxAlpha")
	}
	// The skull preset is zero below S=0.12: a range strictly inside the
	// dead zone must report exactly 0 — that is the empty-space proof.
	if got := f.MaxAlphaInRange(0, 0.1); got != 0 {
		t.Errorf("dead-zone range reported %v, want 0", got)
	}
	// An exactly-zero scalar (empty air) is provably invisible even
	// though entry 1 may be nonzero under other presets.
	g := PlumePreset()
	if got := g.MaxAlphaInRange(0, 0); got != 0 {
		t.Errorf("plume zero-point range reported %v, want 0", got)
	}
	empty := &Func{}
	if empty.MaxAlphaInRange(0, 1) != 0 {
		t.Error("empty table should report 0")
	}
	one := &Func{Table: []vec.V4{{W: 0.7}}}
	if one.MaxAlphaInRange(0.2, 0.3) != 0.7 {
		t.Error("single-entry table should report its alpha")
	}
}
