// Package transfer implements 1D transfer functions: lookup tables mapping
// a scalar sample in [0,1] to an RGBA color (straight alpha), mirroring the
// texture-based 1D transfer function the paper's kernel uses.
package transfer

import (
	"fmt"
	"math"
	"sort"

	"gvmr/internal/vec"
)

// Func is a sampled transfer function over the domain [0,1]. Lookup
// interpolates linearly between table entries, like a linearly-filtered 1D
// texture. Treat Table as immutable once the function is in use: the
// renderer caches per-Func derived tables (opacity correction), so edits
// should build a new Func instead of mutating the slice in place.
type Func struct {
	Table []vec.V4

	// rmax memoises the alpha range-max table behind MaxAlphaInRange
	// (occupancy.go); built lazily from the immutable Table.
	rmax atomicRangeMax
}

// Point is a control point for building a piecewise-linear transfer
// function: scalar value S maps to color C.
type Point struct {
	S float64
	C vec.V4
}

// DefaultTableSize is the lookup-texture resolution used by the presets.
const DefaultTableSize = 256

// FromPoints builds a transfer function by piecewise-linear interpolation
// of control points into a table of the given size. Points are sorted by S;
// the domain outside the first/last point is clamped to their colors.
func FromPoints(points []Point, size int) (*Func, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("transfer: need at least 2 control points, got %d", len(points))
	}
	if size < 2 {
		return nil, fmt.Errorf("transfer: table size %d < 2", size)
	}
	pts := make([]Point, len(points))
	copy(pts, points)
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].S < pts[j].S })
	table := make([]vec.V4, size)
	for i := range table {
		s := float64(i) / float64(size-1)
		table[i] = evalPoints(pts, s)
	}
	return &Func{Table: table}, nil
}

func evalPoints(pts []Point, s float64) vec.V4 {
	if s <= pts[0].S {
		return pts[0].C
	}
	last := pts[len(pts)-1]
	if s >= last.S {
		return last.C
	}
	for i := 1; i < len(pts); i++ {
		if s <= pts[i].S {
			lo, hi := pts[i-1], pts[i]
			span := hi.S - lo.S
			if span <= 0 {
				return hi.C
			}
			t := float32((s - lo.S) / span)
			return lo.C.Lerp(hi.C, t)
		}
	}
	return last.C
}

// Lookup returns the color for scalar s, clamping s to [0,1] and linearly
// interpolating between adjacent table entries.
func (f *Func) Lookup(s float32) vec.V4 {
	n := len(f.Table)
	if n == 0 {
		return vec.V4{}
	}
	if n == 1 {
		return f.Table[0]
	}
	if s <= 0 {
		return f.Table[0]
	}
	if s >= 1 {
		return f.Table[n-1]
	}
	pos := s * float32(n-1)
	i := int(pos)
	if i >= n-1 {
		return f.Table[n-1]
	}
	t := pos - float32(i)
	return f.Table[i].Lerp(f.Table[i+1], t)
}

// OpacityCorrected returns a copy of f with every table entry's alpha
// replaced by the step-size opacity correction 1-(1-a)^step (colors are
// unchanged, straight alpha). Ray casters use it to precompute the
// correction once per table entry instead of calling math.Pow per sample;
// because both tables are interpolated piecewise-linearly, corrected
// lookups differ from correcting an interpolated alpha only within a
// table cell, which is below perceptual tolerance for the ≥64-entry
// tables the presets use. An entry's alpha is 0 or 1 exactly when the
// original's is, so empty-space and saturation behavior are preserved.
func (f *Func) OpacityCorrected(step float32) *Func {
	table := make([]vec.V4, len(f.Table))
	for i, c := range f.Table {
		c.W = 1 - float32(math.Pow(float64(1-c.W), float64(step)))
		table[i] = c
	}
	return &Func{Table: table}
}

// MaxAlpha returns the largest alpha in the table; a fully transparent
// function composites to nothing, which some callers want to reject.
func (f *Func) MaxAlpha() float32 {
	var m float32
	for _, c := range f.Table {
		if c.W > m {
			m = c.W
		}
	}
	return m
}
