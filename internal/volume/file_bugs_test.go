package volume

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// Regression tests for the three historical file.go bugs: truncated and
// hostile files accepted at open, write-path Close errors swallowed, and
// per-row read amplification in Fill.

// v1HeaderBytes builds a v1 header with arbitrary (possibly hostile) dims.
func v1HeaderBytes(x, y, z uint64) []byte {
	hdr := make([]byte, fileHeaderSize)
	copy(hdr, fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	binary.LittleEndian.PutUint64(hdr[8:], x)
	binary.LittleEndian.PutUint64(hdr[16:], y)
	binary.LittleEndian.PutUint64(hdr[24:], z)
	return hdr
}

func TestOpenFileRejectsTruncatedBody(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.gvmr")
	r := rand.New(rand.NewSource(61))
	v := randomVolume(r, Dims{6, 5, 4})
	if err := WriteFile(path, NewVolumeSource(v, "t")); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int64{1, 17, fi.Size() - fileHeaderSize - 1} {
		if err := os.Truncate(path, fi.Size()-cut); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenFile(path); err == nil {
			t.Errorf("file truncated by %d bytes accepted at open", cut)
		}
	}
}

func TestOpenFileRejectsTrailingBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "long.gvmr")
	r := rand.New(rand.NewSource(67))
	v := randomVolume(r, Dims{4, 4, 4})
	if err := WriteFile(path, NewVolumeSource(v, "t")); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("file with trailing bytes accepted at open")
	}
}

func TestOpenFileRejectsHostileDims(t *testing.T) {
	dir := t.TempDir()
	for name, dims := range map[string][3]uint64{
		"zero":        {0, 4, 4},
		"huge-axis":   {1 << 40, 4, 4},
		"max-uint64":  {^uint64(0), ^uint64(0), ^uint64(0)},
		"overflowing": {1 << 31, 1 << 31, 1 << 31}, // per-axis legal, product overflows
	} {
		path := filepath.Join(dir, name+".gvmr")
		// A tiny body: only the dims themselves must already be rejected
		// (or, for the product-overflow case, the size arithmetic).
		if err := os.WriteFile(path, append(v1HeaderBytes(dims[0], dims[1], dims[2]), 1, 2, 3, 4), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenFile(path); err == nil {
			t.Errorf("%s: hostile dims %v accepted at open", name, dims)
		}
	}
}

// failingFile wraps a real file and injects Sync/Close failures — the
// write-path errors WriteFile historically swallowed in a defer.
type failingFile struct {
	*os.File
	syncErr, closeErr error
}

func (f *failingFile) Sync() error {
	if f.syncErr != nil {
		return f.syncErr
	}
	return f.File.Sync()
}

func (f *failingFile) Close() error {
	err := f.File.Close()
	if f.closeErr != nil {
		return f.closeErr
	}
	return err
}

func TestWriteFileReportsCloseAndSyncErrors(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	src := NewVolumeSource(randomVolume(r, Dims{5, 4, 3}), "t")
	errSync := errors.New("injected sync failure")
	errClose := errors.New("injected close failure")
	for _, tc := range []struct {
		name  string
		write func(f fileWriter) error
	}{
		{"v1", func(f fileWriter) error { return writeFileV1(f, src) }},
		{"v2", func(f fileWriter) error { return writeFileV2(f, src, V2Options{BrickEdge: 2}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, fail := range []struct {
				name string
				mk   func(f *os.File) *failingFile
				want error
			}{
				{"sync", func(f *os.File) *failingFile { return &failingFile{File: f, syncErr: errSync} }, errSync},
				{"close", func(f *os.File) *failingFile { return &failingFile{File: f, closeErr: errClose} }, errClose},
			} {
				f, err := os.Create(filepath.Join(t.TempDir(), "vol.gvmr"))
				if err != nil {
					t.Fatal(err)
				}
				fw := fail.mk(f)
				if err := finishFile(fw, tc.write(fw)); !errors.Is(err, fail.want) {
					t.Errorf("%s/%s: finishFile error = %v, want %v", tc.name, fail.name, err, fail.want)
				}
			}
		})
	}
}

func TestFileSourceFillCoalescesReads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vol.gvmr")
	r := rand.New(rand.NewSource(73))
	d := Dims{16, 12, 10}
	v := randomVolume(r, d)
	if err := WriteFile(path, NewVolumeSource(v, "t")); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	check := func(reg Region, wantReads int64) {
		t.Helper()
		before := fs.Reads()
		dst := make([]float32, reg.Ext.Voxels())
		if err := fs.Fill(reg, dst); err != nil {
			t.Fatal(err)
		}
		if got := fs.Reads() - before; got != wantReads {
			t.Errorf("region %+v: %d reads, want %d", reg, got, wantReads)
		}
		i, e := 0, reg.End()
		for z := reg.Org[2]; z < e[2]; z++ {
			for y := reg.Org[1]; y < e[1]; y++ {
				for x := reg.Org[0]; x < e[0]; x++ {
					if dst[i] != v.At(x, y, z) {
						t.Fatalf("region %+v: mismatch at (%d,%d,%d)", reg, x, y, z)
					}
					i++
				}
			}
		}
	}

	// Full volume: one read. Pre-coalescing this was Y*Z = 120 reads.
	check(Region{Ext: d}, 1)
	// Full-width, full-height z-slab span: one read.
	check(Region{Org: [3]int{0, 0, 3}, Ext: Dims{16, 12, 4}}, 1)
	// Full-width, partial-height: one read per z (rows contiguous in z).
	check(Region{Org: [3]int{0, 2, 1}, Ext: Dims{16, 5, 3}}, 3)
	// Interior box: one read per row.
	check(Region{Org: [3]int{3, 2, 1}, Ext: Dims{7, 5, 3}}, 15)
}

// BenchmarkFileSourceFill measures the coalesced whole-volume fill; the
// reported reads/op metric is the syscall count the coalescing satellite
// exists to shrink (it was rows = Y*Z positioned reads per fill before).
func BenchmarkFileSourceFill(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "vol.gvmr")
	r := rand.New(rand.NewSource(79))
	d := Dims{64, 64, 64}
	if err := WriteFile(path, NewVolumeSource(randomVolume(r, d), "t")); err != nil {
		b.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	dst := make([]float32, d.Voxels())
	b.SetBytes(d.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.Fill(Region{Ext: d}, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(fs.Reads())/float64(b.N), "reads/op")
}
