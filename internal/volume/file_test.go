package volume

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vol.gvmr")
	r := rand.New(rand.NewSource(53))
	v := randomVolume(r, Dims{7, 6, 5})
	if err := WriteFile(path, NewVolumeSource(v, "t")); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.Dims() != v.Dims {
		t.Fatalf("dims = %v, want %v", fs.Dims(), v.Dims)
	}
	got, err := Materialize(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		if got.Data[i] != v.Data[i] {
			t.Fatalf("sample %d = %v, want %v", i, got.Data[i], v.Data[i])
		}
	}
}

func TestFileRegionRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vol.gvmr")
	r := rand.New(rand.NewSource(59))
	v := randomVolume(r, Dims{9, 8, 7})
	if err := WriteFile(path, NewVolumeSource(v, "t")); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	reg := Region{Org: [3]int{2, 3, 1}, Ext: Dims{4, 3, 5}}
	dst := make([]float32, reg.Ext.Voxels())
	if err := fs.Fill(reg, dst); err != nil {
		t.Fatal(err)
	}
	i := 0
	e := reg.End()
	for z := reg.Org[2]; z < e[2]; z++ {
		for y := reg.Org[1]; y < e[1]; y++ {
			for x := reg.Org[0]; x < e[0]; x++ {
				if dst[i] != v.At(x, y, z) {
					t.Fatalf("region read mismatch at (%d,%d,%d)", x, y, z)
				}
				i++
			}
		}
	}
}

func TestOpenFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.gvmr")
	if err := os.WriteFile(path, []byte("NOTAVOLUMEFILE_PADDING_PADDING"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("garbage file accepted")
	}
	if _, err := OpenFile(filepath.Join(dir, "missing.gvmr")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestOpenFileRejectsTruncatedHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "short.gvmr")
	if err := os.WriteFile(path, []byte("GV"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("truncated header accepted")
	}
}
