package volume

import (
	"container/list"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// This file implements the volume staging cache: a process-wide,
// concurrency-safe materialisation cache that evaluates an analytic source
// exactly once and thereafter serves every Fill/FillBrick region request as
// row-wise copies out of the dense volume.
//
// Motivation: analytic dataset synthesis (FuncSource.Fill) dominates the
// wall-clock of every figure benchmark — each brick stage, each frame of a
// RenderSequence, and each cluster-size point of a scaling sweep would
// otherwise re-evaluate the same field from scratch. The cache turns all of
// that repeated synthesis into memcpy.
//
// Policy:
//   - Entries are keyed by source identity: Name() + Dims(). Two sources
//     with equal names and dims MUST produce identical data (true for the
//     built-in datasets, whose tags embed dataset name and resolution).
//   - Only sources that declare themselves cacheable (the Stageable
//     interface) are cached; dense VolumeSources and file-backed sources
//     pass through untouched.
//   - Memory is bounded: bytes are reserved when a materialisation
//     starts, least-recently-used ready entries are evicted first to
//     make room, and when in-flight reservations exhaust the budget a
//     further miss materialises uncached instead of overshooting.
//     Sources whose full volume exceeds the capacity bypass the cache
//     entirely — that is the huge (≥1024³ with small budgets) lazy
//     out-of-core path the FuncSource streaming design exists for.
//   - Failed materialisations are not cached.
//
// The default process-wide cache holds min(8 GiB, half of available
// memory), overridable with the GVMR_STAGING_BYTES environment variable
// ("2G", "512MiB", plain bytes; "0" or "off" disables caching, and an
// unparsable value disables it fail-safe).

// Stageable marks a Source whose data is deterministic given Name()+Dims(),
// making it safe to share through a StagingCache.
type Stageable interface {
	// StageCacheable reports whether this source may be materialised once
	// and shared process-wide.
	StageCacheable() bool
}

// CacheStats is a snapshot of staging-cache activity.
type CacheStats struct {
	Hits             int64 `json:"hits"`             // region fills served from an already-dense volume
	Misses           int64 `json:"misses"`           // lookups that had to materialise
	Materialisations int64 `json:"materialisations"` // successful full-volume evaluations
	Evictions        int64 `json:"evictions"`        // entries dropped to stay within capacity
	BytesInUse       int64 `json:"bytes_in_use"`
	Capacity         int64 `json:"capacity"`
}

// StagingCache is a bounded, concurrency-safe cache of materialised
// volumes. The zero value is unusable; use NewStagingCache.
type StagingCache struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	entries  map[cacheKey]*cacheEntry
	lru      *list.List // front = most recently used

	hits, misses, materialisations, evictions int64
}

type cacheKey struct {
	name string
	dims Dims
}

// bytes is the full budget charge of one cached entry: the dense volume
// plus its macrocell summary grid (built alongside it for empty-space
// skipping). Both are pure functions of the dims, so reservations can be
// taken before either exists.
func (k cacheKey) bytes() int64 { return k.dims.Bytes() + MacrocellBytes(k.dims) }

type cacheEntry struct {
	key   cacheKey
	elem  *list.Element
	ready chan struct{} // closed once vol/err are set
	vol   *Volume
	err   error
}

// NewStagingCache builds a cache bounded to capacity bytes of voxel data.
// A capacity <= 0 yields a disabled cache whose Wrap is the identity.
func NewStagingCache(capacity int64) *StagingCache {
	return &StagingCache{
		capacity: capacity,
		entries:  map[cacheKey]*cacheEntry{},
		lru:      list.New(),
	}
}

// DefaultCacheBytes caps the default staging-cache capacity; the actual
// default is the smaller of this and half the machine's available
// memory, so materialising a large volume never converts a render that
// used to stream lazily into an out-of-memory condition. Volumes that
// don't fit the budget keep the lazy out-of-core path.
const DefaultCacheBytes = 8 << 30

// Cache is the process-wide staging cache used by the renderer. Its
// capacity comes from GVMR_STAGING_BYTES when set ("0" or "off" disables
// staging), else min(DefaultCacheBytes, available memory / 2).
var Cache = NewStagingCache(cacheBytesFromEnv())

func defaultCacheBytes() int64 {
	if avail, ok := availableMemoryBytes(); ok && avail/2 < DefaultCacheBytes {
		return avail / 2
	}
	return DefaultCacheBytes
}

// availableMemoryBytes reports the kernel's estimate of allocatable
// memory (MemAvailable in /proc/meminfo). On platforms without it the
// caller falls back to the fixed default.
func availableMemoryBytes() (int64, bool) {
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}

func cacheBytesFromEnv() int64 {
	s := os.Getenv("GVMR_STAGING_BYTES")
	if s == "" {
		return defaultCacheBytes()
	}
	n, ok := parseBytes(s)
	if !ok {
		// The variable exists to bound memory; an unparsable value must
		// never silently raise the bound, so fail safe by disabling.
		fmt.Fprintf(os.Stderr, "gvmr: unparsable GVMR_STAGING_BYTES=%q; staging cache disabled\n", s)
		return 0
	}
	return n
}

// byteSuffixes maps size suffixes to their shift, longest form first so
// "KIB" never half-matches as "K" + garbage. The table is an ordered
// slice, not a map: suffix matching must be deterministic by
// construction, not by the accident that the letters K/M/G/T are
// disjoint under random map iteration.
var byteSuffixes = []struct {
	suf   string
	shift int
}{
	{"KIB", 10}, {"KB", 10}, {"K", 10},
	{"MIB", 20}, {"MB", 20}, {"M", 20},
	{"GIB", 30}, {"GB", 30}, {"G", 30},
	{"TIB", 40}, {"TB", 40}, {"T", 40},
}

// parseBytes reads a byte count with an optional K/M/G/T suffix
// (optionally followed by "iB" or "B"), e.g. "2G", "512MiB", "0", "off".
// Anything but digits before the suffix — "1GX", "1.5G", "+2M" — is
// rejected.
func parseBytes(s string) (int64, bool) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if t == "OFF" {
		return 0, true
	}
	shift := 0
	for _, c := range byteSuffixes {
		if strings.HasSuffix(t, c.suf) {
			t = strings.TrimSpace(strings.TrimSuffix(t, c.suf))
			shift = c.shift
			break
		}
	}
	if t == "" {
		return 0, false
	}
	for _, r := range t {
		if r < '0' || r > '9' {
			return 0, false
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n < 0 || (shift > 0 && n > (1<<62)>>shift) {
		return 0, false
	}
	return n << shift, true
}

// ParseBytes parses a human-readable byte count ("2G", "512MiB", "0",
// "off") — the grammar GVMR_STAGING_BYTES and GVMR_FRAME_BYTES share.
func ParseBytes(s string) (int64, bool) { return parseBytes(s) }

// Cached wraps src with the process-wide staging cache; see
// (*StagingCache).Wrap for the pass-through rules.
func Cached(src Source) Source { return Cache.Wrap(src) }

// Wrap returns a Source that serves src's data out of the cache. It
// returns src unchanged when caching cannot help or would be unsafe: the
// cache is disabled, src is already cached or already dense, src does not
// declare itself Stageable, or src's full volume exceeds the cache
// capacity (the huge lazy path stays lazy).
func (c *StagingCache) Wrap(src Source) Source {
	if c == nil || c.capacity <= 0 {
		return src
	}
	switch src.(type) {
	case *CachedSource, *VolumeSource:
		return src
	}
	s, ok := src.(Stageable)
	if !ok || !s.StageCacheable() {
		return src
	}
	if (cacheKey{dims: src.Dims()}).bytes() > c.capacity {
		return src
	}
	return &CachedSource{cache: c, src: src}
}

// Stats returns a snapshot of the cache counters.
func (c *StagingCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:             c.hits,
		Misses:           c.misses,
		Materialisations: c.materialisations,
		Evictions:        c.evictions,
		BytesInUse:       c.inUse,
		Capacity:         c.capacity,
	}
}

// Capacity returns the byte budget.
func (c *StagingCache) Capacity() int64 { return c.capacity }

// Flush drops every cached volume (entries still materialising are left
// to finish and insert themselves; counters are preserved). Callers
// already holding a flushed volume keep using it safely — unlinking an
// entry never mutates it.
func (c *StagingCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.vol != nil {
			c.removeLocked(e)
		}
	}
}

// volumeFor returns the dense volume for src, materialising it at most
// once per key across all concurrent callers. ok == false (without
// error) means the budget is currently held by in-flight reservations
// that cannot be evicted: the caller should fall back to lazy per-region
// evaluation rather than materialise anything.
func (c *StagingCache) volumeFor(src Source) (vol *Volume, ok bool, err error) {
	key := cacheKey{name: src.Name(), dims: src.Dims()}
	c.mu.Lock()
	if e, found := c.entries[key]; found {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, true, e.err
		}
		return e.vol, true, nil
	}
	c.misses++
	// Reserve the bytes before materialising so concurrent misses see the
	// memory pressure. If even evicting every ready entry could not fit
	// the reservation (the budget is held by in-flight materialisations),
	// evict nothing — dropping volumes other renders are using would gain
	// nothing — and let the caller fall back to lazy evaluation.
	bytes := key.bytes()
	evictable := int64(0)
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*cacheEntry); e.vol != nil {
			evictable += e.key.bytes()
		}
	}
	if c.inUse+bytes-evictable > c.capacity {
		c.mu.Unlock()
		return nil, false, nil
	}
	c.inUse += bytes
	c.evictLocked()
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()

	// Materialise outside the lock: evaluation is the expensive, already-
	// parallel part, and other keys must not serialise behind it. The
	// entry's reservation already covers the macrocell summary
	// (MacrocellBytes is a pure function of the dims); the grid itself is
	// built lazily, once, by the first staged brick whose render needs
	// empty-space skipping, and shared by every later view.
	vol, err = Materialize(src)

	c.mu.Lock()
	e.vol, e.err = vol, err
	if err != nil {
		c.removeLocked(e) // do not cache failures; releases the reservation
	} else {
		c.materialisations++
	}
	c.mu.Unlock()
	close(e.ready)
	return vol, true, err
}

// evictLocked drops least-recently-used ready entries until the cache
// fits its capacity; entries still materialising hold their reservation
// and cannot be evicted.
func (c *StagingCache) evictLocked() {
	for el := c.lru.Back(); el != nil && c.inUse > c.capacity; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if e.vol != nil {
			c.removeLocked(e)
			c.evictions++
		}
		el = prev
	}
}

// removeLocked unlinks an entry and releases its byte reservation (every
// live entry carries one from the moment it is inserted). It must never
// mutate e.vol/e.err: concurrent hitters that found the entry before
// removal still read those fields after <-e.ready (the close is the
// happens-before edge), and the volume's memory is released by GC once
// the last of them drops it.
func (c *StagingCache) removeLocked(e *cacheEntry) {
	c.inUse -= e.key.bytes()
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
}

// CachedSource serves a Stageable source's regions out of a StagingCache.
type CachedSource struct {
	cache *StagingCache
	src   Source
}

// Name implements Source.
func (s *CachedSource) Name() string { return s.src.Name() }

// Dims implements Source.
func (s *CachedSource) Dims() Dims { return s.src.Dims() }

// Unwrap returns the underlying source.
func (s *CachedSource) Unwrap() Source { return s.src }

// Fill implements Source: the first call (process-wide, per identity)
// materialises the full volume; every call copies the requested region
// row-wise out of the dense data. When the cache budget is entirely held
// by in-flight materialisations, the request falls back to the
// underlying source's lazy per-region evaluation.
func (s *CachedSource) Fill(r Region, dst []float32) error {
	v, ok, err := s.cache.volumeFor(s.src)
	if err != nil {
		return err
	}
	if !ok {
		return s.src.Fill(r, dst)
	}
	if err := checkRegion(v.Dims, r, len(dst)); err != nil {
		return err
	}
	copyRegion(v, r, dst)
	return nil
}
