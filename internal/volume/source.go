package volume

import (
	"fmt"
	"runtime"
	"sync"
)

// Source produces voxel data for arbitrary regions of a (possibly larger
// than memory) volume. It is the abstraction that lets the renderer stream
// bricks in an out-of-core fashion: from an in-memory array, an analytic
// field, or a file.
type Source interface {
	// Name identifies the source (dataset name or file path).
	Name() string
	// Dims returns the full volume extent.
	Dims() Dims
	// Fill writes the field over region r into dst (x-fastest within
	// r.Ext); len(dst) must be r.Ext.Voxels().
	Fill(r Region, dst []float32) error
}

// VolumeSource serves regions out of an in-memory Volume.
type VolumeSource struct {
	V   *Volume
	Tag string
}

// NewVolumeSource wraps an in-memory volume as a Source.
func NewVolumeSource(v *Volume, tag string) *VolumeSource {
	return &VolumeSource{V: v, Tag: tag}
}

// Name implements Source.
func (s *VolumeSource) Name() string { return s.Tag }

// Dims implements Source.
func (s *VolumeSource) Dims() Dims { return s.V.Dims }

// Fill implements Source by copying rows out of the dense array.
func (s *VolumeSource) Fill(r Region, dst []float32) error {
	if err := checkRegion(s.V.Dims, r, len(dst)); err != nil {
		return err
	}
	copyRegion(s.V, r, dst)
	return nil
}

// copyRegion copies region r of v into dst row-wise; the region must
// already be validated against v.Dims.
func copyRegion(v *Volume, r Region, dst []float32) {
	e := r.End()
	di := 0
	for z := r.Org[2]; z < e[2]; z++ {
		for y := r.Org[1]; y < e[1]; y++ {
			src := v.Data[v.index(r.Org[0], y, z):v.index(e[0], y, z)]
			copy(dst[di:di+len(src)], src)
			di += len(src)
		}
	}
}

// Field is an analytic scalar field over normalized coordinates in [0,1]³.
type Field func(x, y, z float64) float32

// RowFiller evaluates a whole x-row of an analytic field at once:
// dst[i] = field(xs[i], y, z) with len(dst) == len(xs). Batch evaluation
// lets field implementations hoist per-row terms and evaluate lattice
// noise incrementally, which is several times faster than per-voxel calls.
type RowFiller func(dst []float32, xs []float64, y, z float64)

// FuncSource evaluates an analytic field lazily; it backs the synthetic
// datasets so that volumes too big for the staging cache never need to be
// materialised.
type FuncSource struct {
	Tag   string
	Size  Dims
	Field Field
	// Rows, when non-nil, is used by Fill instead of per-voxel Field
	// calls. It must agree with Field to within the dataset package's
	// documented fast-math tolerance.
	Rows RowFiller
	// NoCache opts this source out of staging caches even when its volume
	// would fit (see StagingCache).
	NoCache bool
}

// NewFuncSource builds a Source from an analytic field.
func NewFuncSource(tag string, d Dims, f Field) *FuncSource {
	return &FuncSource{Tag: tag, Size: d, Field: f}
}

// NewFuncSourceRows builds a Source from an analytic field with a batched
// row evaluator used on the Fill fast path.
func NewFuncSourceRows(tag string, d Dims, f Field, rows RowFiller) *FuncSource {
	return &FuncSource{Tag: tag, Size: d, Field: f, Rows: rows}
}

// Name implements Source.
func (s *FuncSource) Name() string { return s.Tag }

// Dims implements Source.
func (s *FuncSource) Dims() Dims { return s.Size }

// StageCacheable implements Stageable: analytic fields are deterministic
// per (tag, dims), so staging caches may materialise them once, unless the
// source opted out.
func (s *FuncSource) StageCacheable() bool { return !s.NoCache }

// Fill implements Source, evaluating the field at voxel centers in
// parallel over host cores (z-slabs).
func (s *FuncSource) Fill(r Region, dst []float32) error {
	if err := checkRegion(s.Size, r, len(dst)); err != nil {
		return err
	}
	e := r.End()
	invX := 1 / float64(s.Size.X)
	invY := 1 / float64(s.Size.Y)
	invZ := 1 / float64(s.Size.Z)
	rowLen := r.Ext.X
	slabLen := r.Ext.X * r.Ext.Y

	workers := runtime.GOMAXPROCS(0)
	if workers > r.Ext.Z {
		workers = r.Ext.Z
	}
	if workers < 1 {
		workers = 1
	}
	// The normalized x-coordinates are shared by every row of the region.
	xs := make([]float64, r.Ext.X)
	for x := r.Org[0]; x < e[0]; x++ {
		xs[x-r.Org[0]] = (float64(x) + 0.5) * invX
	}
	var wg sync.WaitGroup
	zChan := make(chan int, r.Ext.Z)
	for z := r.Org[2]; z < e[2]; z++ {
		zChan <- z
	}
	close(zChan)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for z := range zChan {
				nz := (float64(z) + 0.5) * invZ
				base := (z - r.Org[2]) * slabLen
				for y := r.Org[1]; y < e[1]; y++ {
					ny := (float64(y) + 0.5) * invY
					row := base + (y-r.Org[1])*rowLen
					if s.Rows != nil {
						s.Rows(dst[row:row+rowLen], xs, ny, nz)
						continue
					}
					for i, nx := range xs {
						dst[row+i] = s.Field(nx, ny, nz)
					}
				}
			}
		}()
	}
	wg.Wait()
	return nil
}

// Materialize evaluates an entire source into a dense Volume. Intended for
// small volumes (tests, reference renders).
func Materialize(s Source) (*Volume, error) {
	v := New(s.Dims())
	if err := s.Fill(Region{Ext: s.Dims()}, v.Data); err != nil {
		return nil, err
	}
	return v, nil
}

func checkRegion(d Dims, r Region, dstLen int) error {
	e := r.End()
	if r.Org[0] < 0 || r.Org[1] < 0 || r.Org[2] < 0 ||
		e[0] > d.X || e[1] > d.Y || e[2] > d.Z ||
		r.Ext.X <= 0 || r.Ext.Y <= 0 || r.Ext.Z <= 0 {
		return fmt.Errorf("volume: region %v out of bounds for %v", r, d)
	}
	if int64(dstLen) != r.Ext.Voxels() {
		return fmt.Errorf("volume: dst len %d != region voxels %d", dstLen, r.Ext.Voxels())
	}
	return nil
}
