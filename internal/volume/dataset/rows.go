package dataset

import (
	"math"
	"sync"
)

// This file holds the row-batched fast evaluators for the three datasets:
// the volume.RowFiller implementations FuncSource.Fill uses. They hoist
// everything that is constant along an x-row (trig, per-ellipsoid terms,
// radial offsets), evaluate fbm noise incrementally across the lattice,
// replace math.Exp with the polynomial expNeg, and skip provably-empty
// voxels — together they make first-time materialisation of a dataset
// roughly an order of magnitude faster than per-voxel Field calls.
//
// They are fast-math: results may differ from the exact reference fields
// (SkullField, SupernovaField, PlumeField) by up to fastFieldTolerance,
// and values the reference puts below zeroCutoff may be flushed to zero.
// TestRowsMatchReferenceFields enforces both bounds.

// fastFieldTolerance bounds |row-evaluated − reference| per voxel, except
// within fastFieldTolerance of PlumeField's 0.02 empty-space threshold,
// where the two paths may fall on different sides of the cut.
const fastFieldTolerance = 1e-4

// zeroCutoff is the magnitude below which the fast path may round a
// field value to exactly zero (far tails of the Gaussian falloffs).
const zeroCutoff = 1e-6

// shellW is the skull phantom's smooth-membership half-width (shared by
// the reference field and the row evaluator).
const shellW = 0.08

// rowScratch recycles per-row float64 buffers; Fill calls row evaluators
// from multiple goroutines, so scratch cannot be global mutable state.
var rowScratch = sync.Pool{New: func() any { return new([]float64) }}

func getScratch(n int) (*[]float64, []float64) {
	p := rowScratch.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return p, (*p)[:n]
}

// ---- Skull ----

// ellipsoidFast is a skull ellipsoid with the per-evaluation constants
// (rotation trig, reciprocal squared axes, support bounds) precomputed
// once at package init instead of per voxel.
type ellipsoidFast struct {
	cx, cy, cz             float64
	invAx2, invAy2, invAz2 float64
	cos, sin               float64
	val                    float64
	// maxDy2/maxDz2 bound the squared y/z offsets of the q < 1+shellW
	// support, for whole-row ellipsoid rejection.
	maxDy2, maxDz2 float64
}

var skullFast = func() []ellipsoidFast {
	if len(skullEllipsoids) > 16 {
		panic("dataset: skull phantom outgrew SkullRows' fixed row-ellipsoid buffer")
	}
	out := make([]ellipsoidFast, len(skullEllipsoids))
	k := 1 + shellW
	for i, e := range skullEllipsoids {
		c, s := math.Cos(e.phi), math.Sin(e.phi)
		out[i] = ellipsoidFast{
			cx: e.cx, cy: e.cy, cz: e.cz,
			invAx2: 1 / (e.ax * e.ax), invAy2: 1 / (e.ay * e.ay), invAz2: 1 / (e.az * e.az),
			cos: c, sin: s, val: e.val,
			// The rotated ellipse {q ≤ k} projects on y to
			// |dy| ≤ √k·√(ax²sin² + ay²cos²); z is unrotated.
			maxDy2: k * (e.ax*e.ax*s*s + e.ay*e.ay*c*c),
			maxDz2: k * e.az * e.az,
		}
	}
	return out
}()

// SkullRows is the row-batched SkullField: per row it keeps only the
// ellipsoids whose support intersects the row (y/z rejection) with their
// y/z terms folded, so the per-voxel loop is a handful of fused terms per
// surviving ellipsoid and no trig at all.
func SkullRows(dst []float32, xs []float64, y, z float64) {
	py := 2*y - 1
	pz := 2*z - 1
	type rowEll struct {
		cx, invAx2, invAy2 float64
		cos, sin           float64
		sdy, cdy, zq       float64
		val                float64
	}
	var act [16]rowEll
	n := 0
	for i := range skullFast {
		e := &skullFast[i]
		dz := pz - e.cz
		if dz*dz > e.maxDz2 {
			continue
		}
		dy := py - e.cy
		if dy*dy > e.maxDy2 {
			continue
		}
		act[n] = rowEll{
			cx: e.cx, invAx2: e.invAx2, invAy2: e.invAy2,
			cos: e.cos, sin: e.sin,
			sdy: e.sin * dy, cdy: e.cos * dy,
			zq:  dz * dz * e.invAz2,
			val: e.val,
		}
		n++
	}
	if n == 0 {
		zero32(dst)
		return
	}
	for i, x := range xs {
		px := 2*x - 1
		sum := 0.0
		for j := 0; j < n; j++ {
			e := &act[j]
			dx := px - e.cx
			rx := e.cos*dx + e.sdy
			ry := e.cdy - e.sin*dx
			q := rx*rx*e.invAx2 + ry*ry*e.invAy2 + e.zq
			switch {
			case q <= 1-shellW:
				sum += e.val
			case q < 1+shellW:
				t := (1 + shellW - q) / (2 * shellW)
				sum += e.val * t * t * (3 - 2*t)
			}
		}
		if sum < 0 {
			sum = 0
		}
		if sum > 1 {
			sum = 1
		}
		dst[i] = float32(sum)
	}
}

// ---- Supernova ----

// SupernovaRows is the row-batched SupernovaField: the two fbm fields are
// evaluated incrementally over the sub-row that can be non-empty (|p| ≤
// novaRMax — outside it every Gaussian term is below zeroCutoff), and the
// falloffs use expNeg.
func SupernovaRows(dst []float32, xs []float64, y, z float64) {
	py := 2*y - 1
	pz := 2*z - 1
	pyz2 := py*py + pz*pz
	// All three Gaussian terms are < zeroCutoff beyond this radius:
	// shell needs (r-0.71)/0.085 > 3.8, core r/0.16 > 3.8, filaments
	// (r-0.35)/0.22 > 3.8.
	const novaRMax = 1.19
	if pyz2 > novaRMax*novaRMax {
		zero32(dst)
		return
	}
	// |px| ≤ xmax bounds the candidate sub-row (px = 2x-1 increases with x).
	xmax := math.Sqrt(novaRMax*novaRMax - pyz2)
	i0, i1 := len(xs), -1
	for i, x := range xs {
		px := 2*x - 1
		if px >= -xmax {
			if px > xmax {
				break
			}
			if i < i0 {
				i0 = i
			}
			i1 = i
		}
	}
	if i1 < 0 {
		zero32(dst)
		return
	}
	zero32(dst[:i0])
	zero32(dst[i1+1:])
	m := i1 - i0 + 1
	pp, pxs := getScratch(m)
	pt, turb := getScratch(m)
	pf, fil := getScratch(m)
	for i := 0; i < m; i++ {
		pxs[i] = 2*xs[i0+i] - 1
	}
	fbmRow(turb, pxs, 4, 7, py*4+13, pz*4+29, 4, 0xA11CE)
	fbmRow(fil, pxs, 7, 3, py*7+5, pz*7+11, 3, 0xBEEF)
	const (
		invShell = 1 / 0.085
		invCore  = 1 / 0.16
		invFil   = 1 / 0.22
	)
	for i := 0; i < m; i++ {
		px := pxs[i]
		r := math.Sqrt(px*px + pyz2)
		shellR := 0.62 + 0.18*(turb[i]-0.5)
		shell := expNeg(sq((r - shellR) * invShell))
		core := 0.9 * expNeg(sq(r*invCore))
		f := 0.35 * expNeg(sq((r-0.35)*invFil)) * fil[i]
		v := 0.95*shell + core + f
		if v > 1 {
			v = 1
		}
		dst[i0+i] = float32(v)
	}
	rowScratch.Put(pp)
	rowScratch.Put(pt)
	rowScratch.Put(pf)
}

// ---- Plume ----

// PlumeRows is the row-batched PlumeField. The helical axis, width, trig
// and source-blob terms depend only on (y, z) and are hoisted per row; a
// first pass finds the sub-row that can clear the field's 0.02 empty-space
// threshold (everything outside is exactly 0 on both the fast and the
// reference path, keeping empty space bit-identical), and only that span
// pays for turbulence fbm and expNeg.
func PlumeRows(dst []float32, xs []float64, y, z float64) {
	h := z
	swirl := 5.5 * h
	sinS, cosS := math.Sincos(2 * math.Pi * swirl)
	axisX := 0.5 + 0.13*h*cosS
	axisY := 0.5 + 0.13*h*sinS
	dy := y - axisY
	dy2 := dy * dy
	width := 0.045 + 0.16*h
	invW2 := 1 / (width * width)
	hFall := 1 - 0.55*h
	const inv009 = 1 / 0.09
	const inv005 = 1 / 0.05
	// Source-blob exponent terms that are constant on the row.
	srcYZ := sq((y-0.5)*inv009) + sq(z*inv005)
	// Conservative cuts: density ≤ 1.45·hFall·exp(-u), src ≤ 0.8·exp(-us);
	// below densCut/srcCut density < 0.019 and src < 0.001, so v < 0.02
	// and the field's threshold zeroes the voxel on both paths. Inside the
	// span, src still contributes to non-empty voxels until it falls under
	// srcDropCut (0.8·e⁻¹⁶ ≈ 9e-8, below fastFieldTolerance).
	densCut := math.Log(1.45 * hFall / 0.019)
	const srcCut = 6.7 // ln(0.8/0.001)
	const srcDropCut = 16
	srcRow := srcYZ < srcCut
	srcCompute := srcYZ < srcDropCut
	i0, i1 := len(xs), -1
	for i, x := range xs {
		dx := x - axisX
		u := (dx*dx + dy2) * invW2
		if u < densCut || (srcRow && sq((x-0.5)*inv009)+srcYZ < srcCut) {
			if i < i0 {
				i0 = i
			}
			i1 = i
		}
	}
	if i1 < 0 {
		zero32(dst)
		return
	}
	zero32(dst[:i0])
	zero32(dst[i1+1:])
	m := i1 - i0 + 1
	pt, turb := getScratch(m)
	fbmRow(turb, xs[i0:i1+1], 9, 1, y*9+17, z*22+5, 4, 0x9D2C)
	for i := 0; i < m; i++ {
		x := xs[i0+i]
		dx := x - axisX
		u := (dx*dx + dy2) * invW2
		v := expNeg(u) * hFall * (0.55 + 0.9*turb[i])
		if srcCompute {
			v += 0.8 * expNeg(sq((x-0.5)*inv009)+srcYZ)
		}
		out := float32(0)
		if v >= 0.02 {
			if v > 1 {
				v = 1
			}
			out = float32(v)
		}
		dst[i0+i] = out
	}
	rowScratch.Put(pt)
}

// zero32 clears a float32 row segment. It scans before storing: row
// destinations are usually freshly allocated — already zero and still
// backed by the kernel's shared zero page — so skipping redundant stores
// avoids both the write pass and the page-allocation faults for empty
// space, which for the sparse plume is most of the volume. The scan
// stops at the first nonzero value and the remainder is cleared with
// stores. (A scanned-over negative zero is left in place; it compares
// equal to zero everywhere downstream.)
func zero32(s []float32) {
	i := 0
	for ; i < len(s); i++ {
		if s[i] != 0 {
			break
		}
	}
	for ; i < len(s); i++ {
		s[i] = 0
	}
}
