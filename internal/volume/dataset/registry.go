package dataset

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gvmr/internal/volume"
)

// This file is the registry of file-backed volumes: datasets that are not
// analytic fields but GVMR volume files on disk (gvmrd -volume, tests,
// the out-of-core example). Registering a file makes its name a
// first-class dataset — Names/New/PaperDims and every layer above them
// (server request validation, dist job specs) treat it exactly like a
// built-in. The file is opened once and the source shared by every
// render: for bricked v2 files that source is the demand pager, so
// concurrent requests share one page cache and one set of pager counters.

// fileEntry is one registered file-backed dataset.
type fileEntry struct {
	path string
	tf   string // transfer-function preset name (see transfer.Preset)
	src  volume.VolumeFile
}

var (
	regMu      sync.RWMutex
	registered = map[string]*fileEntry{}
)

// builtin reports whether name (already lowercased) is a built-in dataset.
func builtin(name string) bool {
	return name == Skull || name == Supernova || name == Plume
}

// RegisterVolumeFile opens the GVMR volume file at path (v1 or v2,
// auto-detected) and registers it as dataset name, rendered with the
// tfPreset transfer function ("" means the neutral gray ramp). Names are
// case-insensitive and must not collide with a built-in or an earlier
// registration.
func RegisterVolumeFile(name, path, tfPreset string) error {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return fmt.Errorf("dataset: empty volume name")
	}
	if builtin(name) {
		return fmt.Errorf("dataset: %q is a built-in dataset name", name)
	}
	if tfPreset == "" {
		tfPreset = "gray"
	}
	src, err := volume.OpenVolume(path)
	if err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registered[name]; dup {
		src.Close()
		return fmt.Errorf("dataset: volume %q already registered", name)
	}
	registered[name] = &fileEntry{path: path, tf: tfPreset, src: src}
	return nil
}

// UnregisterVolumeFile removes a registered volume and closes its file.
// Unknown names are a no-op. Intended for tests; servers register for the
// process lifetime.
func UnregisterVolumeFile(name string) error {
	name = strings.ToLower(strings.TrimSpace(name))
	regMu.Lock()
	e := registered[name]
	delete(registered, name)
	regMu.Unlock()
	if e == nil {
		return nil
	}
	return e.src.Close()
}

// Registered lists the registered file-volume names, sorted.
func Registered() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registered))
	for n := range registered {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lookup returns the entry for name, or nil.
func lookup(name string) *fileEntry {
	regMu.RLock()
	defer regMu.RUnlock()
	return registered[strings.ToLower(name)]
}

// NativeDims returns the on-file dims of a registered volume.
func NativeDims(name string) (volume.Dims, bool) {
	if e := lookup(name); e != nil {
		return e.src.Dims(), true
	}
	return volume.Dims{}, false
}

// TFName maps a dataset name to the name its transfer function is looked
// up under: registered file volumes render with their configured preset,
// everything else (the built-ins) uses its own name.
func TFName(name string) string {
	if e := lookup(name); e != nil {
		return e.tf
	}
	return name
}

// FilePagerStats aggregates demand-pager counters across every registered
// v2 volume, or nil when none is paged (v1 files and an empty registry).
func FilePagerStats() *volume.PagerStats {
	regMu.RLock()
	defer regMu.RUnlock()
	var agg volume.PagerStats
	found := false
	for _, e := range registered {
		p, ok := e.src.(*volume.PagedSource)
		if !ok {
			continue
		}
		found = true
		s := p.Stats()
		agg.Bricks += s.Bricks
		agg.BrickReads += s.BrickReads
		agg.BytesRead += s.BytesRead
		agg.Reloads += s.Reloads
		agg.Fallbacks += s.Fallbacks
		agg.SkippedBricks += s.SkippedBricks
	}
	if !found {
		return nil
	}
	return &agg
}
