// Package dataset provides the synthetic stand-ins for the paper's three
// evaluation datasets (Skull, Supernova, Plume) as deterministic analytic
// fields, at any resolution. The paper's original data is unavailable; the
// phantoms are designed to have comparable occupancy and opacity structure
// so that ray-casting workloads (sample counts, early termination, fragment
// counts) behave like the originals. See DESIGN.md §2.
package dataset

import "math"

// hash3 is a deterministic integer hash of a 3D lattice point, mixed with a
// seed; returns a value in [0,1).
func hash3(x, y, z, seed uint32) float64 {
	h := x*0x9E3779B1 ^ y*0x85EBCA77 ^ z*0xC2B2AE3D ^ seed*0x27D4EB2F
	h ^= h >> 15
	h *= 0x2C1B3C6D
	h ^= h >> 12
	h *= 0x297A2D39
	h ^= h >> 15
	return float64(h) / float64(1<<32)
}

// valueNoise is trilinearly interpolated lattice noise in [0,1).
func valueNoise(x, y, z float64, seed uint32) float64 {
	xf := math.Floor(x)
	yf := math.Floor(y)
	zf := math.Floor(z)
	fx := smooth(x - xf)
	fy := smooth(y - yf)
	fz := smooth(z - zf)
	xi, yi, zi := uint32(int64(xf)), uint32(int64(yf)), uint32(int64(zf))

	c000 := hash3(xi, yi, zi, seed)
	c100 := hash3(xi+1, yi, zi, seed)
	c010 := hash3(xi, yi+1, zi, seed)
	c110 := hash3(xi+1, yi+1, zi, seed)
	c001 := hash3(xi, yi, zi+1, seed)
	c101 := hash3(xi+1, yi, zi+1, seed)
	c011 := hash3(xi, yi+1, zi+1, seed)
	c111 := hash3(xi+1, yi+1, zi+1, seed)

	c00 := c000 + (c100-c000)*fx
	c10 := c010 + (c110-c010)*fx
	c01 := c001 + (c101-c001)*fx
	c11 := c011 + (c111-c011)*fx
	c0 := c00 + (c10-c00)*fy
	c1 := c01 + (c11-c01)*fy
	return c0 + (c1-c0)*fz
}

// smooth is the C1 smoothstep fade used for noise interpolation.
func smooth(t float64) float64 { return t * t * (3 - 2*t) }

// fbm is fractal Brownian motion: `octaves` layers of value noise, each at
// double frequency and half amplitude, normalised to [0,1).
func fbm(x, y, z float64, octaves int, seed uint32) float64 {
	sum := 0.0
	amp := 0.5
	norm := 0.0
	for o := 0; o < octaves; o++ {
		sum += amp * valueNoise(x, y, z, seed+uint32(o)*101)
		norm += amp
		x, y, z = x*2.03, y*2.03, z*2.03
		amp *= 0.5
	}
	return sum / norm
}

// ---- Row-batched fast-math kernels ----
//
// The functions below are the Fill fast path used by the RowFiller dataset
// evaluators. They compute the same quantities as valueNoise/fbm/math.Exp
// but walk a whole x-row at once, so lattice corner hashes are recomputed
// only at cell crossings and per-row terms are hoisted. Evaluation order
// of the trilinear blend is rearranged (y/z collapse first, then x), and a
// polynomial exp replaces math.Exp, so results differ from the reference
// per-voxel fields by float rounding — bounded well below the documented
// fastFieldTolerance and verified by TestRowsMatchReferenceFields.

// valueNoiseRowAdd accumulates amp·valueNoise(ax·xs[i]+bx, y, z, seed)
// into out[i]. Along the row only the x lattice coordinate moves, so the
// four-corner y/z collapse is recomputed only when the cell changes; the
// per-voxel work is one fade and one lerp.
func valueNoiseRowAdd(out []float64, xs []float64, ax, bx, y, z float64, seed uint32, amp float64) {
	yf := math.Floor(y)
	zf := math.Floor(z)
	fy := smooth(y - yf)
	fz := smooth(z - zf)
	yi := uint32(int64(yf))
	zi := uint32(int64(zf))
	// corner collapses the four lattice values at integer x over y and z.
	corner := func(x uint32) float64 {
		c00 := hash3(x, yi, zi, seed)
		c10 := hash3(x, yi+1, zi, seed)
		c01 := hash3(x, yi, zi+1, seed)
		c11 := hash3(x, yi+1, zi+1, seed)
		c0 := c00 + (c10-c00)*fy
		c1 := c01 + (c11-c01)*fy
		return c0 + (c1-c0)*fz
	}
	var xi int64
	var a, b float64
	have := false
	for i, xv := range xs {
		x := ax*xv + bx
		xf := math.Floor(x)
		cell := int64(xf)
		if !have || cell != xi {
			if have && cell == xi+1 {
				// Advancing one cell to the right: reuse the shared corner.
				a = b
				b = corner(uint32(cell) + 1)
			} else {
				a = corner(uint32(cell))
				b = corner(uint32(cell) + 1)
			}
			xi = cell
			have = true
		}
		fx := smooth(x - xf)
		out[i] += amp * (a + (b-a)*fx)
	}
}

// fbmRow writes fbm((ax·xs[i]+bx)·2.03ᵒ, y·2.03ᵒ, z·2.03ᵒ, …) summed over
// octaves o into out[i], matching fbm() up to float rounding.
func fbmRow(out []float64, xs []float64, ax, bx, y, z float64, octaves int, seed uint32) {
	for i := range out {
		out[i] = 0
	}
	amp := 0.5
	norm := 0.0
	scale := 1.0
	for o := 0; o < octaves; o++ {
		valueNoiseRowAdd(out, xs, ax*scale, bx*scale, y*scale, z*scale, seed+uint32(o)*101, amp)
		norm += amp
		scale *= 2.03
		amp *= 0.5
	}
	inv := 1 / norm
	for i := range out {
		out[i] *= inv
	}
}

// expNeg returns exp(-u) for u ≥ 0 with relative error < 1e-8: range
// reduction to exp(-u) = 2⁻ⁿ·exp(-r), |r| ≤ ln2/2, then a degree-7
// Taylor polynomial. Roughly 3× faster than math.Exp, and the fields only
// need float32 precision.
func expNeg(u float64) float64 {
	if u > 708 {
		return 0
	}
	if u < 0 {
		return math.Exp(-u)
	}
	const (
		invLn2 = 1.44269504088896338700
		ln2Hi  = 6.93147180369123816490e-01
		ln2Lo  = 1.90821492927058770002e-10
	)
	n := int64(u*invLn2 + 0.5)
	r := (u - float64(n)*ln2Hi) - float64(n)*ln2Lo
	t := -r
	p := 1 + t*(1+t*(1./2+t*(1./6+t*(1./24+t*(1./120+t*(1./720+t*(1./5040)))))))
	return p * math.Float64frombits(uint64(1023-n)<<52)
}
