// Package dataset provides the synthetic stand-ins for the paper's three
// evaluation datasets (Skull, Supernova, Plume) as deterministic analytic
// fields, at any resolution. The paper's original data is unavailable; the
// phantoms are designed to have comparable occupancy and opacity structure
// so that ray-casting workloads (sample counts, early termination, fragment
// counts) behave like the originals. See DESIGN.md §2.
package dataset

import "math"

// hash3 is a deterministic integer hash of a 3D lattice point, mixed with a
// seed; returns a value in [0,1).
func hash3(x, y, z, seed uint32) float64 {
	h := x*0x9E3779B1 ^ y*0x85EBCA77 ^ z*0xC2B2AE3D ^ seed*0x27D4EB2F
	h ^= h >> 15
	h *= 0x2C1B3C6D
	h ^= h >> 12
	h *= 0x297A2D39
	h ^= h >> 15
	return float64(h) / float64(1<<32)
}

// valueNoise is trilinearly interpolated lattice noise in [0,1).
func valueNoise(x, y, z float64, seed uint32) float64 {
	xf := math.Floor(x)
	yf := math.Floor(y)
	zf := math.Floor(z)
	fx := smooth(x - xf)
	fy := smooth(y - yf)
	fz := smooth(z - zf)
	xi, yi, zi := uint32(int64(xf)), uint32(int64(yf)), uint32(int64(zf))

	c000 := hash3(xi, yi, zi, seed)
	c100 := hash3(xi+1, yi, zi, seed)
	c010 := hash3(xi, yi+1, zi, seed)
	c110 := hash3(xi+1, yi+1, zi, seed)
	c001 := hash3(xi, yi, zi+1, seed)
	c101 := hash3(xi+1, yi, zi+1, seed)
	c011 := hash3(xi, yi+1, zi+1, seed)
	c111 := hash3(xi+1, yi+1, zi+1, seed)

	c00 := c000 + (c100-c000)*fx
	c10 := c010 + (c110-c010)*fx
	c01 := c001 + (c101-c001)*fx
	c11 := c011 + (c111-c011)*fx
	c0 := c00 + (c10-c00)*fy
	c1 := c01 + (c11-c01)*fy
	return c0 + (c1-c0)*fz
}

// smooth is the C1 smoothstep fade used for noise interpolation.
func smooth(t float64) float64 { return t * t * (3 - 2*t) }

// fbm is fractal Brownian motion: `octaves` layers of value noise, each at
// double frequency and half amplitude, normalised to [0,1).
func fbm(x, y, z float64, octaves int, seed uint32) float64 {
	sum := 0.0
	amp := 0.5
	norm := 0.0
	for o := 0; o < octaves; o++ {
		sum += amp * valueNoise(x, y, z, seed+uint32(o)*101)
		norm += amp
		x, y, z = x*2.03, y*2.03, z*2.03
		amp *= 0.5
	}
	return sum / norm
}
