package dataset

import (
	"math"
	"testing"

	"gvmr/internal/volume"
)

// TestRowsMatchReferenceFields is the fast-math equivalence contract: the
// row-batched evaluators must match the exact reference fields to within
// fastFieldTolerance everywhere, except that (a) reference values below
// zeroCutoff may be flushed to exactly zero, and (b) within the tolerance
// of PlumeField's 0.02 empty-space threshold the two paths may land on
// different sides of the cut.
func TestRowsMatchReferenceFields(t *testing.T) {
	cases := []struct {
		name string
		dims volume.Dims
	}{
		{Skull, volume.Cube(64)},
		{Supernova, volume.Cube(64)},
		{Plume, volume.Dims{X: 48, Y: 48, Z: 96}},
	}
	for _, c := range cases {
		src, err := New(c.name, c.dims)
		if err != nil {
			t.Fatal(err)
		}
		fs := src.(*volume.FuncSource)
		if fs.Rows == nil {
			t.Fatalf("%s: no row evaluator", c.name)
		}
		fast, err := volume.Materialize(src)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := volume.Materialize(volume.NewFuncSource(fs.Tag+"-ref", c.dims, fs.Field))
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		bad := 0
		for i := range ref.Data {
			r := float64(ref.Data[i])
			f := float64(fast.Data[i])
			d := math.Abs(r - f)
			if d <= fastFieldTolerance {
				continue
			}
			// Zero-flush exemption: tiny tails may become exactly 0.
			if f == 0 && r < zeroCutoff {
				continue
			}
			// Plume threshold-band exemption: one side of the 0.02 cut.
			if c.name == Plume && (f == 0 || r == 0) &&
				math.Abs(math.Max(r, f)-0.02) <= fastFieldTolerance {
				continue
			}
			bad++
			if d > worst {
				worst = d
			}
		}
		if bad > 0 {
			t.Errorf("%s: %d voxels beyond tolerance %g (worst |Δ| = %g)",
				c.name, bad, fastFieldTolerance, worst)
		}
	}
}

// TestFbmRowMatchesFbm pins the row-batched noise to the scalar reference.
func TestFbmRowMatchesFbm(t *testing.T) {
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = float64(i) / 256
	}
	out := make([]float64, len(xs))
	for _, tc := range []struct {
		ax, bx, y, z float64
		oct          int
		seed         uint32
	}{
		{9, 1, 17.3, 5.9, 4, 0x9D2C},
		{8, 3, -2.7, 28.1, 4, 0xA11CE},
		{14, -4, 4.2, 10.6, 3, 0xBEEF},
	} {
		fbmRow(out, xs, tc.ax, tc.bx, tc.y, tc.z, tc.oct, tc.seed)
		for i, x := range xs {
			want := fbm(tc.ax*x+tc.bx, tc.y, tc.z, tc.oct, tc.seed)
			if d := math.Abs(out[i] - want); d > 1e-12 {
				t.Fatalf("fbmRow(%v) at x=%v: %v vs %v (|Δ|=%g)", tc, x, out[i], want, d)
			}
		}
	}
}

// TestExpNegAccuracy bounds the polynomial exp against math.Exp over the
// exponent range the fields use.
func TestExpNegAccuracy(t *testing.T) {
	for u := 0.0; u < 200; u += 0.00973 {
		got := expNeg(u)
		want := math.Exp(-u)
		if want == 0 {
			if got != 0 {
				t.Fatalf("expNeg(%v) = %v, want 0", u, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 1e-8 {
			t.Fatalf("expNeg(%v) relative error %g", u, rel)
		}
	}
	if expNeg(1000) != 0 {
		t.Error("expNeg should underflow to 0")
	}
	if got := expNeg(-1.5); math.Abs(got-math.Exp(1.5)) > 1e-9*math.Exp(1.5) {
		t.Errorf("expNeg(-1.5) = %v", got)
	}
}

// TestRowsOverwriteDirtyBuffers pins the Fill contract the lazy zero32
// relies on: filling a poisoned destination yields exactly the same
// bytes as filling a fresh one.
func TestRowsOverwriteDirtyBuffers(t *testing.T) {
	for _, name := range Names() {
		d := volume.Dims{X: 33, Y: 17, Z: 29}
		src, err := New(name, d)
		if err != nil {
			t.Fatal(err)
		}
		fresh := make([]float32, d.Voxels())
		if err := src.Fill(volume.Region{Ext: d}, fresh); err != nil {
			t.Fatal(err)
		}
		dirty := make([]float32, d.Voxels())
		for i := range dirty {
			dirty[i] = float32(i%7) - 3
		}
		if err := src.Fill(volume.Region{Ext: d}, dirty); err != nil {
			t.Fatal(err)
		}
		for i := range fresh {
			if fresh[i] != dirty[i] {
				t.Fatalf("%s voxel %d: dirty-buffer fill %v != fresh fill %v",
					name, i, dirty[i], fresh[i])
			}
		}
	}
}
