package dataset

import (
	"math"
	"testing"

	"gvmr/internal/volume"
)

func TestNewKnownDatasets(t *testing.T) {
	for _, name := range Names() {
		src, err := New(name, volume.Cube(16))
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if src.Dims() != volume.Cube(16) {
			t.Errorf("%s dims = %v", name, src.Dims())
		}
	}
	if _, err := New("nope", volume.Cube(8)); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestPaperDims(t *testing.T) {
	if got := PaperDims(Skull, 256); got != volume.Cube(256) {
		t.Errorf("skull dims = %v", got)
	}
	if got := PaperDims(Plume, 1024); got != (volume.Dims{X: 512, Y: 512, Z: 2048}) {
		t.Errorf("plume dims = %v, want paper's 512x512x2048", got)
	}
}

func TestFieldsInRange(t *testing.T) {
	fields := map[string]volume.Field{
		Skull:     SkullField,
		Supernova: SupernovaField,
		Plume:     PlumeField,
	}
	for name, f := range fields {
		for i := 0; i < 2000; i++ {
			// Deterministic low-discrepancy sweep of the unit cube.
			x := math.Mod(float64(i)*0.754877666, 1)
			y := math.Mod(float64(i)*0.569840296, 1)
			z := math.Mod(float64(i)*0.362123197, 1)
			v := float64(f(x, y, z))
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%s(%v,%v,%v) = %v out of [0,1]", name, x, y, z, v)
			}
		}
	}
}

func TestFieldsDeterministic(t *testing.T) {
	for _, name := range Names() {
		src1, _ := New(name, volume.Cube(8))
		src2, _ := New(name, volume.Cube(8))
		v1, err := volume.Materialize(src1)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := volume.Materialize(src2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v1.Data {
			if v1.Data[i] != v2.Data[i] {
				t.Fatalf("%s not deterministic at voxel %d", name, i)
			}
		}
	}
}

func TestFieldsNonTrivial(t *testing.T) {
	// Every dataset should have both empty and occupied space so early ray
	// termination and placeholder fragments are both exercised.
	for _, name := range Names() {
		src, _ := New(name, volume.Cube(32))
		v, err := volume.Materialize(src)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := v.MinMax()
		if hi <= lo {
			t.Errorf("%s is constant (%v..%v)", name, lo, hi)
		}
		var occupied, total int
		for _, s := range v.Data {
			if s > 0.05 {
				occupied++
			}
			total++
		}
		frac := float64(occupied) / float64(total)
		if frac < 0.01 || frac > 0.95 {
			t.Errorf("%s occupancy %.3f outside sane range", name, frac)
		}
	}
}

func TestSkullShellStructure(t *testing.T) {
	// Center of the skull phantom is inside the cavity: low value. A point
	// on the outer shell: high value. Far corner: empty.
	if v := SkullField(0.5, 0.5, 0.5); v > 0.5 {
		t.Errorf("skull center = %v, want cavity (<0.5)", v)
	}
	if v := SkullField(0.02, 0.02, 0.02); v != 0 {
		t.Errorf("skull corner = %v, want empty", v)
	}
	// Somewhere on the shell between cavity and outside along +x.
	found := false
	for x := 0.5; x < 1; x += 0.004 {
		if SkullField(x, 0.5, 0.5) >= 0.5 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no dense shell found along +x axis of skull phantom")
	}
}

func TestNoiseProperties(t *testing.T) {
	// Value noise is deterministic and in [0,1).
	a := valueNoise(1.3, 4.7, 2.2, 42)
	b := valueNoise(1.3, 4.7, 2.2, 42)
	if a != b {
		t.Error("valueNoise not deterministic")
	}
	if a < 0 || a >= 1 {
		t.Errorf("valueNoise out of range: %v", a)
	}
	// Different seeds decorrelate.
	c := valueNoise(1.3, 4.7, 2.2, 43)
	if a == c {
		t.Error("seed has no effect")
	}
	// fbm stays in [0,1).
	for i := 0; i < 100; i++ {
		v := fbm(float64(i)*0.37, float64(i)*0.11, float64(i)*0.71, 4, 7)
		if v < 0 || v >= 1 {
			t.Fatalf("fbm out of range: %v", v)
		}
	}
}
