package dataset

import (
	"fmt"
	"math"
	"strings"

	"gvmr/internal/volume"
)

// Names of the built-in datasets, matching the paper's evaluation set.
const (
	Skull     = "skull"
	Supernova = "supernova"
	Plume     = "plume"
)

// Names lists the renderable dataset names: the built-ins plus every
// registered file volume (see RegisterVolumeFile).
func Names() []string { return append([]string{Skull, Supernova, Plume}, Registered()...) }

// New returns a streaming Source for the named dataset at the given dims.
// Values are in [0,1]. Built-ins get an analytic source whose tag embeds
// name and dims, so it is safe to share through the volume staging cache;
// registered file volumes get their shared (paged for v2) file source,
// whose dims are fixed by the file.
func New(name string, d volume.Dims) (volume.Source, error) {
	if e := lookup(name); e != nil {
		if nd := e.src.Dims(); nd != d {
			return nil, fmt.Errorf("dataset: volume %q has dims %v, not %v", name, nd, d)
		}
		return e.src, nil
	}
	var f volume.Field
	var rows volume.RowFiller
	switch strings.ToLower(name) {
	case Skull:
		f, rows = SkullField, SkullRows
	case Supernova:
		f, rows = SupernovaField, SupernovaRows
	case Plume:
		f, rows = PlumeField, PlumeRows
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
	}
	return volume.NewFuncSourceRows(fmt.Sprintf("%s-%s", name, d), d, f, rows), nil
}

// PaperDims returns the resolution the paper stores the named dataset at,
// scaled by the cube edge n: Skull and Supernova are n³; Plume is
// (n/2)×(n/2)×2n capped to the paper's 512×512×2048 shape ratio.
// Registered file volumes have fixed on-disk dims, so n is ignored.
func PaperDims(name string, n int) volume.Dims {
	if d, ok := NativeDims(name); ok {
		return d
	}
	if strings.ToLower(name) == Plume {
		return volume.Dims{X: n / 2, Y: n / 2, Z: n * 2}
	}
	return volume.Cube(n)
}

// ellipsoid describes one component of the skull phantom.
type ellipsoid struct {
	cx, cy, cz float64 // center in [-1,1]³
	ax, ay, az float64 // semi-axes
	phi        float64 // rotation about z, radians
	val        float64 // additive intensity
}

// skullEllipsoids is a 3D Shepp-Logan-style head phantom: an outer "bone"
// shell, inner tissue, ventricles and small dense features, giving the
// classic skull-like opacity structure (dense shell, mostly transparent
// interior with small features).
var skullEllipsoids = []ellipsoid{
	{0, 0, 0, 0.69, 0.92, 0.81, 0, 0.8},           // outer skull
	{0, -0.0184, 0, 0.6624, 0.874, 0.78, 0, -0.6}, // subtract: inner cavity
	{0.22, 0, 0, 0.11, 0.31, 0.22, -0.314, 0.2},   // right feature
	{-0.22, 0, 0, 0.16, 0.41, 0.28, 0.314, 0.2},   // left feature
	{0, 0.35, -0.15, 0.21, 0.25, 0.41, 0, 0.3},    // frontal mass
	{0, 0.1, 0.25, 0.046, 0.046, 0.05, 0, 0.4},    // small dense node
	{0, -0.1, 0.25, 0.046, 0.046, 0.05, 0, 0.4},   // small dense node
	{-0.08, -0.605, 0, 0.046, 0.023, 0.05, 0, 0.35},
	{0, -0.605, 0, 0.023, 0.023, 0.02, 0, 0.35},
	{0.06, -0.605, 0, 0.023, 0.046, 0.02, 0, 0.35},
}

// SkullField is the Skull dataset: a 3D Shepp-Logan head phantom. The
// ellipsoid boundaries fall off smoothly over a thin shell (a CT scan is
// band-limited, not binary), which also keeps gradient shading free of
// stairstep artifacts.
func SkullField(x, y, z float64) float32 {
	// Map [0,1]³ to [-1,1]³.
	px := 2*x - 1
	py := 2*y - 1
	pz := 2*z - 1
	sum := 0.0
	for i := range skullEllipsoids {
		e := &skullEllipsoids[i]
		dx := px - e.cx
		dy := py - e.cy
		dz := pz - e.cz
		c := math.Cos(e.phi)
		s := math.Sin(e.phi)
		rx := c*dx + s*dy
		ry := -s*dx + c*dy
		q := rx*rx/(e.ax*e.ax) + ry*ry/(e.ay*e.ay) + dz*dz/(e.az*e.az)
		// Smooth membership: 1 well inside, 0 well outside, C1 falloff
		// across q ∈ [1-w, 1+w].
		const w = shellW
		switch {
		case q <= 1-w:
			sum += e.val
		case q < 1+w:
			t := (1 + w - q) / (2 * w)
			sum += e.val * t * t * (3 - 2*t)
		}
	}
	if sum < 0 {
		sum = 0
	}
	if sum > 1 {
		sum = 1
	}
	return float32(sum)
}

// SupernovaField is the Supernova dataset: a turbulent expanding shell with
// a hot core, modulated by fBm noise — the classic core-collapse remnant
// structure of the paper's supernova simulation frames.
func SupernovaField(x, y, z float64) float32 {
	px := 2*x - 1
	py := 2*y - 1
	pz := 2*z - 1
	r := math.Sqrt(px*px + py*py + pz*pz)
	// Turbulence distorts the shell radius so the surface is wispy.
	turb := fbm(px*4+7, py*4+13, pz*4+29, 4, 0xA11CE)
	shellR := 0.62 + 0.18*(turb-0.5)
	shell := math.Exp(-sq((r - shellR) / 0.085))
	core := 0.9 * math.Exp(-sq(r/0.16))
	// Filaments between core and shell.
	fil := 0.35 * math.Exp(-sq((r-0.35)/0.22)) * fbm(px*7+3, py*7+5, pz*7+11, 3, 0xBEEF)
	v := 0.95*shell + core + fil
	if v > 1 {
		v = 1
	}
	return float32(v)
}

// PlumeField is the Plume dataset: a buoyant helical plume rising through a
// tall domain (the paper stores it at 512×512×2048), with fBm turbulence
// that broadens with height.
func PlumeField(x, y, z float64) float32 {
	// z runs along the tall axis; plume axis precesses helically with z.
	h := z // height in [0,1]
	swirl := 5.5 * h
	axisX := 0.5 + 0.13*h*math.Cos(2*math.Pi*swirl)
	axisY := 0.5 + 0.13*h*math.Sin(2*math.Pi*swirl)
	dx := x - axisX
	dy := y - axisY
	radius := math.Sqrt(dx*dx + dy*dy)
	// The plume widens and thins as it rises.
	width := 0.045 + 0.16*h
	density := math.Exp(-sq(radius/width)) * (1.0 - 0.55*h)
	// Turbulent puffs.
	turb := fbm(x*9+1, y*9+17, z*22+5, 4, 0x9D2C)
	density *= 0.55 + 0.9*turb
	// Source blob at the bottom.
	src := 0.8 * math.Exp(-(sq((x-0.5)/0.09) + sq((y-0.5)/0.09) + sq(z/0.05)))
	v := density + src
	if v > 1 {
		v = 1
	}
	if v < 0.02 {
		v = 0 // keep empty space exactly empty so early termination bites
	}
	return float32(v)
}

func sq(v float64) float64 { return v * v }
