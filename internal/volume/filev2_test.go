package volume

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeV2 writes a random volume to a v2 file and returns both.
func writeV2(t *testing.T, seed int64, d Dims, opts V2Options) (string, *Volume) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "vol.gvmr")
	v := randomVolume(rand.New(rand.NewSource(seed)), d)
	if err := WriteFileV2(path, NewVolumeSource(v, "t"), opts); err != nil {
		t.Fatal(err)
	}
	return path, v
}

func TestFileV2RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts V2Options
	}{
		{"raw", V2Options{BrickEdge: 4}},
		{"flate", V2Options{BrickEdge: 4, Compress: true}},
		{"default-edge", V2Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := Dims{13, 11, 9}
			path, v := writeV2(t, 83, d, tc.opts)
			ps, err := OpenFileV2(path)
			if err != nil {
				t.Fatal(err)
			}
			defer ps.Close()
			if ps.Dims() != d {
				t.Fatalf("dims = %v, want %v", ps.Dims(), d)
			}
			if ps.Compressed() != tc.opts.Compress {
				t.Fatalf("compressed = %v, want %v", ps.Compressed(), tc.opts.Compress)
			}
			got, err := Materialize(ps)
			if err != nil {
				t.Fatal(err)
			}
			for i := range v.Data {
				if got.Data[i] != v.Data[i] {
					t.Fatalf("sample %d = %v, want %v", i, got.Data[i], v.Data[i])
				}
			}
		})
	}
}

func TestFileV2RegionFill(t *testing.T) {
	d := Dims{17, 10, 12}
	path, v := writeV2(t, 89, d, V2Options{BrickEdge: 5, Compress: true})
	ps, err := OpenFileV2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	r := rand.New(rand.NewSource(97))
	for trial := 0; trial < 50; trial++ {
		var reg Region
		for a, n := range [3]int{d.X, d.Y, d.Z} {
			reg.Org[a] = r.Intn(n)
		}
		reg.Ext = Dims{
			X: 1 + r.Intn(d.X-reg.Org[0]),
			Y: 1 + r.Intn(d.Y-reg.Org[1]),
			Z: 1 + r.Intn(d.Z-reg.Org[2]),
		}
		dst := make([]float32, reg.Ext.Voxels())
		if err := ps.Fill(reg, dst); err != nil {
			t.Fatal(err)
		}
		i, e := 0, reg.End()
		for z := reg.Org[2]; z < e[2]; z++ {
			for y := reg.Org[1]; y < e[1]; y++ {
				for x := reg.Org[0]; x < e[0]; x++ {
					if dst[i] != v.At(x, y, z) {
						t.Fatalf("trial %d region %+v: mismatch at (%d,%d,%d)", trial, reg, x, y, z)
					}
					i++
				}
			}
		}
	}
	if err := ps.Fill(Region{Org: [3]int{15, 0, 0}, Ext: Dims{4, 1, 1}}, make([]float32, 4)); err == nil {
		t.Error("out-of-bounds region accepted")
	}
}

func TestFileV2RegionRangeBounds(t *testing.T) {
	d := Dims{12, 12, 12}
	path, v := writeV2(t, 101, d, V2Options{BrickEdge: 4})
	ps, err := OpenFileV2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	r := rand.New(rand.NewSource(103))
	for trial := 0; trial < 50; trial++ {
		var reg Region
		for a, n := range [3]int{d.X, d.Y, d.Z} {
			reg.Org[a] = r.Intn(n)
		}
		reg.Ext = Dims{
			X: 1 + r.Intn(d.X-reg.Org[0]),
			Y: 1 + r.Intn(d.Y-reg.Org[1]),
			Z: 1 + r.Intn(d.Z-reg.Org[2]),
		}
		lo, hi, ok := ps.RegionRange(reg)
		if !ok {
			t.Fatalf("trial %d: no range for %+v", trial, reg)
		}
		e := reg.End()
		for z := reg.Org[2]; z < e[2]; z++ {
			for y := reg.Org[1]; y < e[1]; y++ {
				for x := reg.Org[0]; x < e[0]; x++ {
					if s := v.At(x, y, z); s < lo || s > hi {
						t.Fatalf("trial %d: sample %v at (%d,%d,%d) outside claimed [%v, %v]",
							trial, s, x, y, z, lo, hi)
					}
				}
			}
		}
	}
	// The whole-volume range must be the exact volume min/max: cores tile
	// the volume and each directory entry is the exact core min/max.
	wlo, whi := v.MinMax()
	if lo, hi, ok := ps.RegionRange(Region{Ext: d}); !ok || lo != wlo || hi != whi {
		t.Errorf("whole-volume range = [%v, %v] ok=%v, want exactly [%v, %v]", lo, hi, ok, wlo, whi)
	}
}

// TestFileV2PagingEvictsAndReloads is the streaming acceptance at the
// volume layer: a cache far smaller than the dense volume must still
// serve every fill bit-exactly, with evictions in the cache and reloads
// in the pager proving bricks really cycled through disk.
func TestFileV2PagingEvictsAndReloads(t *testing.T) {
	d := Dims{16, 16, 16}
	path, v := writeV2(t, 107, d, V2Options{BrickEdge: 4, Compress: true})
	ps, err := OpenFileV2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	// Budget: a 4³ page costs 4³·4 voxel bytes + its macrocell charge;
	// hold only a handful of the 64 pages.
	pageCost := (cacheKey{dims: Dims{4, 4, 4}}).bytes()
	cache := NewStagingCache(3 * pageCost)
	ps.SetCache(cache)

	grid := ps.BrickGrid()
	if grid.NumBricks() != 64 {
		t.Fatalf("grid has %d bricks, want 64", grid.NumBricks())
	}
	// Two full passes over all bricks: the second pass re-touches bricks
	// the first pass forced out.
	for pass := 0; pass < 2; pass++ {
		for _, b := range grid.Bricks {
			dst := make([]float32, b.Ghost.Ext.Voxels())
			if err := ps.Fill(b.Ghost, dst); err != nil {
				t.Fatal(err)
			}
			i, e := 0, b.Ghost.End()
			for z := b.Ghost.Org[2]; z < e[2]; z++ {
				for y := b.Ghost.Org[1]; y < e[1]; y++ {
					for x := b.Ghost.Org[0]; x < e[0]; x++ {
						if dst[i] != v.At(x, y, z) {
							t.Fatalf("pass %d brick %d: mismatch at (%d,%d,%d)", pass, b.ID, x, y, z)
						}
						i++
					}
				}
			}
		}
	}
	if ev := cache.Stats().Evictions; ev == 0 {
		t.Error("no cache evictions despite cache ≪ volume")
	}
	st := ps.Stats()
	if st.Reloads == 0 {
		t.Error("no pager reloads despite two passes through an undersized cache")
	}
	if st.BrickReads <= int64(grid.NumBricks()) {
		t.Errorf("brick reads %d: expected more than one read per brick", st.BrickReads)
	}
	if st.BytesRead == 0 {
		t.Error("bytes_read not counted")
	}
}

func TestStageBrickSkipUsesDirectoryMinMax(t *testing.T) {
	// A field with a known structure: left half zero, right half ~1, so
	// brick ranges separate cleanly at a 0.5 threshold.
	d := Dims{16, 8, 8}
	v := New(d)
	for z := 0; z < d.Z; z++ {
		for y := 0; y < d.Y; y++ {
			for x := 8; x < d.X; x++ {
				v.Set(x, y, z, 1)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "vol.gvmr")
	if err := WriteFileV2(path, NewVolumeSource(v, "t"), V2Options{BrickEdge: 4}); err != nil {
		t.Fatal(err)
	}
	ps, err := OpenFileV2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ps.SetCache(NewStagingCache(1 << 20))

	// Render bricks: one per file brick for easy alignment.
	grid, err := MakeGrid(d, [3]int{4, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	tfEmpty := func(lo, hi float32) bool { return hi < 0.5 }
	var empties, dense int
	for _, b := range grid.Bricks {
		bd, err := StageBrickSkip(ps, b, tfEmpty)
		if err != nil {
			t.Fatal(err)
		}
		if bd.Empty() {
			empties++
			if bd.Bytes() != 0 {
				t.Errorf("empty brick %d reports %d bytes", b.ID, bd.Bytes())
			}
			mc := bd.Cells()
			if mc == nil {
				t.Fatalf("empty brick %d has no macrocells", b.ID)
			}
			if mc.Cells != macrocellCounts(b.Ghost.Ext) || mc.Org != b.Ghost.Org {
				t.Errorf("empty brick %d macrocell shape %v@%v, want %v@%v",
					b.ID, mc.Cells, mc.Org, macrocellCounts(b.Ghost.Ext), b.Ghost.Org)
			}
			for i := range mc.Max {
				if !tfEmpty(mc.Min[i], mc.Max[i]) {
					t.Fatalf("empty brick %d cell %d range [%v, %v] not empty under predicate",
						b.ID, i, mc.Min[i], mc.Max[i])
				}
			}
		} else {
			dense++
		}
	}
	// Bricks with ghost layers reaching into the x ≥ 8 half see values ≥
	// 0.5; only the leftmost brick column (cores x ∈ [0,4), ghosts up to
	// x=4) plus the second column cores [4,8) with ghost to x=8... the
	// ghost of column 1 touches x=8 (value 1), so only column 0 skips.
	if empties == 0 {
		t.Error("no bricks skipped via directory min/max")
	}
	if dense == 0 {
		t.Error("every brick skipped — predicate or ranges broken")
	}
	st := ps.Stats()
	if st.SkippedBricks != int64(empties) {
		t.Errorf("pager skip count %d != %d empty stages", st.SkippedBricks, empties)
	}
	// The skipped bricks must have cost zero disk reads beyond the dense
	// stages: every read belongs to a dense brick's page-in.
	if st.BrickReads == 0 || st.BrickReads > int64(dense*8) {
		t.Errorf("brick reads %d implausible for %d dense stages", st.BrickReads, dense)
	}

	// nil predicate (skipping disabled) must stage everything densely.
	bd, err := StageBrickSkip(ps, grid.Bricks[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Empty() {
		t.Error("nil predicate produced an empty brick")
	}
}

func TestOpenFileV2RejectsHostileHeaders(t *testing.T) {
	d := Dims{8, 8, 8}
	path, _ := writeV2(t, 109, d, V2Options{BrickEdge: 4})
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	openMutated := func(name string, mutate func(b []byte) []byte) error {
		p := filepath.Join(dir, name+".gvmr")
		if err := os.WriteFile(p, mutate(append([]byte(nil), good...)), 0o644); err != nil {
			t.Fatal(err)
		}
		ps, err := OpenFileV2(p)
		if err == nil {
			ps.Close()
		}
		return err
	}
	put32 := func(b []byte, off int, v uint32) []byte {
		binary.LittleEndian.PutUint32(b[off:], v)
		return b
	}
	put64 := func(b []byte, off int, v uint64) []byte {
		binary.LittleEndian.PutUint64(b[off:], v)
		return b
	}
	cases := map[string]func(b []byte) []byte{
		"bad-magic":      func(b []byte) []byte { b[0] = 'X'; return b },
		"bad-version":    func(b []byte) []byte { return put32(b, 4, 7) },
		"zero-dim":       func(b []byte) []byte { return put64(b, 8, 0) },
		"huge-dim":       func(b []byte) []byte { return put64(b, 8, 1<<40) },
		"zero-count":     func(b []byte) []byte { return put32(b, 32, 0) },
		"count-over-dim": func(b []byte) []byte { return put32(b, 32, 9) },
		"unknown-flags":  func(b []byte) []byte { return put32(b, 44, 0x80) },
		"stored-mismatch": func(b []byte) []byte {
			return put64(b, v2FixedHeaderSize+8, 12345)
		},
		"offset-in-header": func(b []byte) []byte {
			return put64(b, v2FixedHeaderSize, 0)
		},
		"offset-past-eof": func(b []byte) []byte {
			return put64(b, v2FixedHeaderSize, uint64(len(b)))
		},
		"min-over-max": func(b []byte) []byte {
			put32(b, v2FixedHeaderSize+16, floatBits(1))
			return put32(b, v2FixedHeaderSize+20, floatBits(0))
		},
		"nan-range": func(b []byte) []byte {
			return put32(b, v2FixedHeaderSize+16, 0x7FC00000)
		},
		"truncated-fixed":   func(b []byte) []byte { return b[:20] },
		"truncated-dir":     func(b []byte) []byte { return b[:v2FixedHeaderSize+5] },
		"truncated-payload": func(b []byte) []byte { return b[:len(b)-3] },
	}
	for name, mutate := range cases {
		if err := openMutated(name, mutate); err == nil {
			t.Errorf("%s: hostile file accepted", name)
		}
	}
	// Control: the unmutated bytes still open.
	if err := openMutated("control", func(b []byte) []byte { return b }); err != nil {
		t.Errorf("control copy rejected: %v", err)
	}
}

func TestOpenVolumeAutoDetectsVersion(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(113))
	v := randomVolume(r, Dims{6, 6, 6})
	p1 := filepath.Join(dir, "v1.gvmr")
	p2 := filepath.Join(dir, "v2.gvmr")
	if err := WriteFile(p1, NewVolumeSource(v, "t")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileV2(p2, NewVolumeSource(v, "t"), V2Options{BrickEdge: 4}); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]string{p1: "*volume.FileSource", p2: "*volume.PagedSource"} {
		vf, err := OpenVolume(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Materialize(vf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v.Data {
			if got.Data[i] != v.Data[i] {
				t.Fatalf("%s: sample %d mismatch", path, i)
			}
		}
		switch vf.(type) {
		case *FileSource:
			if want != "*volume.FileSource" {
				t.Errorf("%s opened as FileSource, want %s", path, want)
			}
		case *PagedSource:
			if want != "*volume.PagedSource" {
				t.Errorf("%s opened as PagedSource, want %s", path, want)
			}
		}
		if err := vf.Close(); err != nil {
			t.Fatal(err)
		}
	}
	bad := filepath.Join(dir, "bad.gvmr")
	if err := os.WriteFile(bad, []byte("GARBAGEGARBAGE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenVolume(bad); err == nil || !strings.Contains(err.Error(), "not a GVMR") {
		t.Errorf("garbage OpenVolume error = %v", err)
	}
}
