package volume

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomVolume(r *rand.Rand, d Dims) *Volume {
	v := New(d)
	for i := range v.Data {
		v.Data[i] = float32(r.Float64())
	}
	return v
}

func TestDims(t *testing.T) {
	d := Dims{4, 5, 6}
	if d.Voxels() != 120 {
		t.Errorf("Voxels = %d", d.Voxels())
	}
	if d.Bytes() != 480 {
		t.Errorf("Bytes = %d", d.Bytes())
	}
	if Cube(8) != (Dims{8, 8, 8}) {
		t.Errorf("Cube = %v", Cube(8))
	}
	if d.String() != "4x5x6" {
		t.Errorf("String = %q", d.String())
	}
}

func TestRegion(t *testing.T) {
	r := Region{Org: [3]int{1, 2, 3}, Ext: Dims{2, 2, 2}}
	if r.End() != [3]int{3, 4, 5} {
		t.Errorf("End = %v", r.End())
	}
	if !r.Contains(1, 2, 3) || !r.Contains(2, 3, 4) {
		t.Error("Contains should include org and interior")
	}
	if r.Contains(3, 2, 3) || r.Contains(0, 2, 3) {
		t.Error("Contains should exclude end and outside")
	}
}

func TestAtSet(t *testing.T) {
	v := New(Dims{3, 4, 5})
	v.Set(2, 3, 4, 7.5)
	if got := v.At(2, 3, 4); got != 7.5 {
		t.Errorf("At = %v", got)
	}
	if got := v.At(0, 0, 0); got != 0 {
		t.Errorf("zero voxel = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	v := New(Dims{2, 2, 2})
	for i := range v.Data {
		v.Data[i] = float32(i)
	}
	lo, hi := v.MinMax()
	if lo != 0 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	empty := &Volume{}
	if lo, hi := empty.MinMax(); lo != 0 || hi != 0 {
		t.Error("empty MinMax should be 0,0")
	}
}

func TestSampleAtVoxelCenters(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	v := randomVolume(r, Dims{5, 6, 7})
	// Sampling exactly at a voxel center must return the stored value.
	for i := 0; i < 50; i++ {
		x := r.Intn(5)
		y := r.Intn(6)
		z := r.Intn(7)
		got := v.Sample(float32(x)+0.5, float32(y)+0.5, float32(z)+0.5)
		want := v.At(x, y, z)
		if got != want {
			t.Fatalf("Sample at center (%d,%d,%d) = %v, want %v", x, y, z, got, want)
		}
	}
}

func TestSampleInterpolatesMidpoint(t *testing.T) {
	v := New(Dims{2, 1, 1})
	v.Set(0, 0, 0, 1)
	v.Set(1, 0, 0, 3)
	got := v.Sample(1.0, 0.5, 0.5) // midpoint between the two centers
	if got != 2 {
		t.Errorf("midpoint sample = %v, want 2", got)
	}
}

func TestSampleClampsAtEdges(t *testing.T) {
	v := New(Dims{2, 2, 2})
	v.Set(0, 0, 0, 5)
	if got := v.Sample(-10, -10, -10); got != 5 {
		t.Errorf("clamped sample = %v, want 5", got)
	}
	v.Set(1, 1, 1, 9)
	if got := v.Sample(100, 100, 100); got != 9 {
		t.Errorf("clamped sample = %v, want 9", got)
	}
}

// Property: trilinear samples are bounded by the volume's min/max (convex
// combination of corner values).
func TestSampleConvexityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	v := randomVolume(r, Dims{6, 5, 4})
	lo, hi := v.MinMax()
	f := func() bool {
		px := float32(r.Float64()*8 - 1)
		py := float32(r.Float64()*7 - 1)
		pz := float32(r.Float64()*6 - 1)
		s := v.Sample(px, py, pz)
		return s >= lo-1e-6 && s <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSpaceRoundTrip(t *testing.T) {
	s := NewSpace(Dims{128, 128, 256})
	p := vecOf(10, 60, 200)
	w := s.VoxelToWorld(p)
	back := s.WorldToVoxel(w)
	if d := back.Sub(p).Len(); d > 1e-3 {
		t.Errorf("round trip error %v", d)
	}
	// Largest axis spans exactly 1 world unit.
	b := s.Bounds()
	if sz := b.Size(); abs32(sz.Z-1) > 1e-6 {
		t.Errorf("largest axis span = %v, want 1", sz.Z)
	}
	if sz := b.Size(); abs32(sz.X-0.5) > 1e-6 {
		t.Errorf("x span = %v, want 0.5", sz.X)
	}
	// Centered at origin.
	if c := b.Center(); c.Len() > 1e-6 {
		t.Errorf("bounds center = %v, want origin", c)
	}
}

func TestVolumeSourceFill(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	v := randomVolume(r, Dims{6, 5, 4})
	src := NewVolumeSource(v, "test")
	reg := Region{Org: [3]int{1, 2, 1}, Ext: Dims{3, 2, 2}}
	dst := make([]float32, reg.Ext.Voxels())
	if err := src.Fill(reg, dst); err != nil {
		t.Fatal(err)
	}
	i := 0
	for z := 1; z < 3; z++ {
		for y := 2; y < 4; y++ {
			for x := 1; x < 4; x++ {
				if dst[i] != v.At(x, y, z) {
					t.Fatalf("fill mismatch at (%d,%d,%d)", x, y, z)
				}
				i++
			}
		}
	}
}

func TestFillRejectsBadRegion(t *testing.T) {
	v := New(Dims{4, 4, 4})
	src := NewVolumeSource(v, "test")
	bad := Region{Org: [3]int{2, 0, 0}, Ext: Dims{4, 4, 4}}
	if err := src.Fill(bad, make([]float32, bad.Ext.Voxels())); err == nil {
		t.Error("out-of-bounds region accepted")
	}
	ok := Region{Ext: Dims{4, 4, 4}}
	if err := src.Fill(ok, make([]float32, 3)); err == nil {
		t.Error("wrong dst length accepted")
	}
}

func TestFuncSourceMatchesField(t *testing.T) {
	f := func(x, y, z float64) float32 { return float32(x + 10*y + 100*z) }
	src := NewFuncSource("f", Dims{4, 4, 4}, f)
	v, err := Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				want := f((float64(x)+0.5)/4, (float64(y)+0.5)/4, (float64(z)+0.5)/4)
				if got := v.At(x, y, z); got != want {
					t.Fatalf("voxel (%d,%d,%d) = %v, want %v", x, y, z, got, want)
				}
			}
		}
	}
}

// Property: FuncSource region fills agree with full materialisation for
// random sub-regions — the out-of-core path reads the same data the
// in-core path would.
func TestFuncSourceRegionProperty(t *testing.T) {
	f := func(x, y, z float64) float32 { return float32(x*y + z) }
	d := Dims{8, 7, 6}
	src := NewFuncSource("f", d, f)
	full, err := Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(43))
	prop := func() bool {
		org := [3]int{r.Intn(d.X), r.Intn(d.Y), r.Intn(d.Z)}
		ext := Dims{
			1 + r.Intn(d.X-org[0]),
			1 + r.Intn(d.Y-org[1]),
			1 + r.Intn(d.Z-org[2]),
		}
		reg := Region{Org: org, Ext: ext}
		dst := make([]float32, reg.Ext.Voxels())
		if err := src.Fill(reg, dst); err != nil {
			return false
		}
		i := 0
		e := reg.End()
		for z := org[2]; z < e[2]; z++ {
			for y := org[1]; y < e[1]; y++ {
				for x := org[0]; x < e[0]; x++ {
					if dst[i] != full.At(x, y, z) {
						return false
					}
					i++
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
