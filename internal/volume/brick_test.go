package volume

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gvmr/internal/vec"
)

func vecOf(x, y, z float64) vec.V3 { return vec.New3(x, y, z) }

func TestMakeGridTilesExactly(t *testing.T) {
	d := Dims{10, 7, 5}
	g, err := MakeGrid(d, [3]int{3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumBricks() != 12 {
		t.Fatalf("NumBricks = %d, want 12", g.NumBricks())
	}
	// Every voxel belongs to exactly one core region.
	count := New(d)
	for _, b := range g.Bricks {
		e := b.Core.End()
		for z := b.Core.Org[2]; z < e[2]; z++ {
			for y := b.Core.Org[1]; y < e[1]; y++ {
				for x := b.Core.Org[0]; x < e[0]; x++ {
					count.Set(x, y, z, count.At(x, y, z)+1)
				}
			}
		}
	}
	for i, c := range count.Data {
		if c != 1 {
			t.Fatalf("voxel %d covered %v times, want exactly once", i, c)
		}
	}
}

func TestGhostRegionPadding(t *testing.T) {
	g, err := MakeGrid(Dims{8, 8, 8}, [3]int{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	left := g.Bricks[0]
	right := g.Bricks[1]
	// Left brick: core [0,4), ghost clamped at 0, extended to 5 on the right.
	if left.Ghost.Org != [3]int{0, 0, 0} {
		t.Errorf("left ghost org = %v", left.Ghost.Org)
	}
	if left.Ghost.Ext.X != 5 {
		t.Errorf("left ghost ext X = %d, want 5", left.Ghost.Ext.X)
	}
	// Right brick: core [4,8), ghost [3,8).
	if right.Ghost.Org != [3]int{3, 0, 0} {
		t.Errorf("right ghost org = %v", right.Ghost.Org)
	}
	if right.Ghost.Ext.X != 5 {
		t.Errorf("right ghost ext X = %d, want 5", right.Ghost.Ext.X)
	}
}

func TestMakeGridRejectsBadCounts(t *testing.T) {
	if _, err := MakeGrid(Dims{4, 4, 4}, [3]int{5, 1, 1}); err == nil {
		t.Error("counts exceeding dims accepted")
	}
	if _, err := MakeGrid(Dims{4, 4, 4}, [3]int{0, 1, 1}); err == nil {
		t.Error("zero count accepted")
	}
}

func TestFactorBricksCubeVolume(t *testing.T) {
	cases := []struct {
		n    int
		want int // product check only; shape checked by score properties
	}{
		{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16}, {32, 32},
	}
	d := Cube(256)
	for _, c := range cases {
		f := FactorBricks(d, c.n)
		if f[0]*f[1]*f[2] != c.want {
			t.Errorf("FactorBricks(%d) = %v, product != %d", c.n, f, c.want)
		}
	}
	// 8 bricks of a cube should be 2x2x2.
	if f := FactorBricks(d, 8); f != [3]int{2, 2, 2} {
		t.Errorf("FactorBricks(cube, 8) = %v, want 2x2x2", f)
	}
}

func TestFactorBricksAnisotropic(t *testing.T) {
	// Plume 512x512x2048: 4 bricks should split the tall axis.
	f := FactorBricks(Dims{512, 512, 2048}, 4)
	if f != [3]int{1, 1, 4} {
		t.Errorf("FactorBricks(plume, 4) = %v, want 1x1x4", f)
	}
	// 8 bricks: 1x2x4 or 2x1x4 give 512x256x512 bricks (aspect 2);
	// 1x1x8 gives 512x512x256 (aspect 2) — any is acceptable, but the
	// product must hold and no axis may exceed its dim.
	f = FactorBricks(Dims{512, 512, 2048}, 8)
	if f[0]*f[1]*f[2] != 8 {
		t.Errorf("FactorBricks(plume, 8) = %v", f)
	}
}

// Property: brick sampling equals full-volume sampling for positions inside
// the brick core — the ghost-layer seamlessness invariant the renderer
// relies on.
func TestBrickSampleSeamlessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	v := randomVolume(r, Dims{16, 12, 9})
	src := NewVolumeSource(v, "t")
	g, err := MakeGrid(v.Dims, [3]int{3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	bricks := make([]*BrickData, 0, g.NumBricks())
	for _, b := range g.Bricks {
		bd, err := FillBrick(src, b)
		if err != nil {
			t.Fatal(err)
		}
		bricks = append(bricks, bd)
	}
	prop := func() bool {
		bd := bricks[r.Intn(len(bricks))]
		c := bd.Brick.Core
		e := c.End()
		px := float32(c.Org[0]) + float32(r.Float64())*float32(e[0]-c.Org[0])
		py := float32(c.Org[1]) + float32(r.Float64())*float32(e[1]-c.Org[1])
		pz := float32(c.Org[2]) + float32(r.Float64())*float32(e[2]-c.Org[2])
		got := bd.Sample(px, py, pz)
		want := v.Sample(px, py, pz)
		return abs32(got-want) <= 1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBrickBytesAndGridMax(t *testing.T) {
	g, err := MakeGrid(Dims{8, 8, 8}, [3]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Each brick core is 4³, ghost is 5³ → 125 voxels → 500 bytes.
	for _, b := range g.Bricks {
		if b.Bytes() != 500 {
			t.Errorf("brick %d bytes = %d, want 500", b.ID, b.Bytes())
		}
	}
	if g.MaxBrickBytes() != 500 {
		t.Errorf("MaxBrickBytes = %d", g.MaxBrickBytes())
	}
}

func TestBrickWorldBoundsTile(t *testing.T) {
	d := Dims{8, 8, 8}
	g, err := MakeGrid(d, [3]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	union := g.Bricks[0].Bounds
	for _, b := range g.Bricks[1:] {
		union = union.Union(b.Bounds)
	}
	want := g.Space.Bounds()
	if union.Min.Sub(want.Min).Len() > 1e-6 || union.Max.Sub(want.Max).Len() > 1e-6 {
		t.Errorf("brick bounds union %v != volume bounds %v", union, want)
	}
}
