// Package volume provides the volumetric-data substrate: dense float32
// scalar fields, world-space mapping, brick decomposition with one-voxel
// ghost layers (so trilinear sampling is seamless across brick borders),
// streaming sources for out-of-core rendering, and a simple raw file format.
//
// # Staging cache
//
// Analytic sources (FuncSource) are expensive to evaluate and perfectly
// reproducible, so the package also provides a process-wide staging cache
// (StagingCache, with the shared instance Cache and the helper Cached).
// Wrapping a source routes every Fill through a dense volume that is
// materialised exactly once per source identity (Name + Dims); brick
// staging through StageBrick then serves zero-copy views of that volume.
// The cache is bounded (default min(8 GiB, half of available memory);
// GVMR_STAGING_BYTES overrides, "0"/"off" disables) with least-recently-
// used eviction, and sources whose volume exceeds the budget bypass it
// entirely, preserving the lazy out-of-core path for huge datasets. See
// cache.go for the policy details.
//
// Conventions: voxel (i,j,k) stores the field value at the continuous
// voxel-space position (i+0.5, j+0.5, k+0.5); data is laid out x-fastest.
package volume

import (
	"fmt"
	"math"
)

// Dims is the extent of a volume or region in voxels.
type Dims struct {
	X, Y, Z int
}

// Voxels returns the total voxel count.
func (d Dims) Voxels() int64 { return int64(d.X) * int64(d.Y) * int64(d.Z) }

// Bytes returns the storage size for float32 samples.
func (d Dims) Bytes() int64 { return d.Voxels() * 4 }

// String renders the dims as "XxYxZ".
func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z) }

// Cube returns n×n×n dims.
func Cube(n int) Dims { return Dims{n, n, n} }

// Region is an axis-aligned voxel-index box [Org, Org+Ext).
type Region struct {
	Org [3]int
	Ext Dims
}

// End returns the exclusive upper corner per axis.
func (r Region) End() [3]int {
	return [3]int{r.Org[0] + r.Ext.X, r.Org[1] + r.Ext.Y, r.Org[2] + r.Ext.Z}
}

// Contains reports whether the voxel index (x,y,z) lies in the region.
func (r Region) Contains(x, y, z int) bool {
	e := r.End()
	return x >= r.Org[0] && x < e[0] && y >= r.Org[1] && y < e[1] && z >= r.Org[2] && z < e[2]
}

// Volume is a dense in-memory scalar field.
type Volume struct {
	Dims Dims
	Data []float32 // x-fastest, length Dims.Voxels()

	// mc memoises the macrocell summary grid (see macrocell.go); it is
	// built at most once, on first use, after Data stops changing.
	mc *macrocellMemo
}

// New allocates a zero-filled volume.
func New(d Dims) *Volume {
	return &Volume{Dims: d, Data: make([]float32, d.Voxels()), mc: &macrocellMemo{}}
}

// index returns the linear index of voxel (x,y,z); no bounds check.
func (v *Volume) index(x, y, z int) int {
	return (z*v.Dims.Y+y)*v.Dims.X + x
}

// At returns the value of voxel (x,y,z).
func (v *Volume) At(x, y, z int) float32 { return v.Data[v.index(x, y, z)] }

// Set stores the value of voxel (x,y,z).
func (v *Volume) Set(x, y, z int, val float32) { v.Data[v.index(x, y, z)] = val }

// MinMax returns the minimum and maximum sample values. An empty volume
// returns (0, 0).
func (v *Volume) MinMax() (lo, hi float32) {
	if len(v.Data) == 0 {
		return 0, 0
	}
	lo, hi = v.Data[0], v.Data[0]
	for _, s := range v.Data {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return lo, hi
}

// clampIdx clamps i into [0, n-1].
func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Sample trilinearly interpolates the field at the continuous voxel-space
// position (px,py,pz), clamping at the boundary (CUDA's clamp-to-edge
// texture addressing).
func (v *Volume) Sample(px, py, pz float32) float32 {
	return trilinear(v.Data, v.Dims, px, py, pz)
}

// trilinear is the shared sampling routine used by Volume and copy-backed
// BrickData: the whole array is the region.
func trilinear(data []float32, d Dims, px, py, pz float32) float32 {
	return trilinearAt(data, d, Region{Ext: d}, px, py, pz)
}

// trilinearAt samples the sub-region r of a full volume at r-local
// continuous coordinates, clamping at the region boundary (CUDA's
// clamp-to-edge texture addressing). The weight and clamping arithmetic
// over a region is exactly the same as over a copied r.Ext array — only
// the final indexing adds r's origin and the full-volume strides — so
// view-backed bricks are bit-identical to copy-backed ones.
func trilinearAt(data []float32, full Dims, r Region, px, py, pz float32) float32 {
	qx := float64(px) - 0.5
	qy := float64(py) - 0.5
	qz := float64(pz) - 0.5
	x0f := math.Floor(qx)
	y0f := math.Floor(qy)
	z0f := math.Floor(qz)
	fx := float32(qx - x0f)
	fy := float32(qy - y0f)
	fz := float32(qz - z0f)
	x0 := clampIdx(int(x0f), r.Ext.X)
	y0 := clampIdx(int(y0f), r.Ext.Y)
	z0 := clampIdx(int(z0f), r.Ext.Z)
	x1 := clampIdx(int(x0f)+1, r.Ext.X)
	y1 := clampIdx(int(y0f)+1, r.Ext.Y)
	z1 := clampIdx(int(z0f)+1, r.Ext.Z)

	row := full.X
	slab := full.X * full.Y
	x0 += r.Org[0]
	x1 += r.Org[0]
	y0 += r.Org[1]
	y1 += r.Org[1]
	z0 += r.Org[2]
	z1 += r.Org[2]
	c000 := data[z0*slab+y0*row+x0]
	c100 := data[z0*slab+y0*row+x1]
	c010 := data[z0*slab+y1*row+x0]
	c110 := data[z0*slab+y1*row+x1]
	c001 := data[z1*slab+y0*row+x0]
	c101 := data[z1*slab+y0*row+x1]
	c011 := data[z1*slab+y1*row+x0]
	c111 := data[z1*slab+y1*row+x1]

	c00 := c000 + (c100-c000)*fx
	c10 := c010 + (c110-c010)*fx
	c01 := c001 + (c101-c001)*fx
	c11 := c011 + (c111-c011)*fx
	c0 := c00 + (c10-c00)*fy
	c1 := c01 + (c11-c01)*fy
	return c0 + (c1-c0)*fz
}
