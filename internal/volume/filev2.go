package volume

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// File format v2: a bricked, demand-pageable volume file (DESIGN.md §14).
// Layout:
//
//	offset 0:  "GVMR" magic
//	offset 4:  uint32 version (2)
//	offset 8:  3×uint64 volume dims (x, y, z)
//	offset 32: 3×uint32 brick counts per axis
//	offset 44: uint32 flags (bit 0: per-brick flate compression)
//	offset 48: brick directory, one 24-byte entry per brick in MakeGrid
//	           order (x-fastest): uint64 payload offset, uint64 stored
//	           byte count, float32 min, float32 max of the brick's core
//	offset 48+24N: brick payloads — each brick's *core* region (cores tile
//	           the volume exactly; ghost layers are reassembled from
//	           neighbouring cores at page time), little-endian float32
//	           x-fastest, optionally flate-compressed per brick
//
// All integers are little-endian. The per-brick min/max in the directory
// is what lets the renderer prove a brick invisible under the active
// transfer function without reading its payload at all.
const (
	fileVersion2      = uint32(2)
	v2FlagFlate       = uint32(1)
	v2FixedHeaderSize = 4 + 4 + 3*8 + 3*4 + 4
	v2DirEntrySize    = 8 + 8 + 4 + 4
)

// maxV2Bricks bounds the directory length read from an untrusted header
// (a million bricks of ≥1 voxel each; real files are thousands).
const maxV2Bricks = 1 << 20

// v2Entry is one decoded brick-directory entry.
type v2Entry struct {
	off    uint64  // payload offset from start of file
	stored uint64  // payload byte count as stored (compressed if flate)
	lo, hi float32 // exact min/max of the brick's core samples
}

// v2Header is a decoded v2 header: fixed fields plus the brick directory.
type v2Header struct {
	dims   Dims
	counts [3]int
	flags  uint32
	dir    []v2Entry
}

func (h *v2Header) compressed() bool { return h.flags&v2FlagFlate != 0 }

// headerLen returns the total encoded length: fixed header + directory.
func (h *v2Header) headerLen() int {
	return v2FixedHeaderSize + len(h.dir)*v2DirEntrySize
}

// coreExt returns the core extent of brick index (kx,ky,kz) — the same
// near-equal split MakeGrid uses, so directory validation agrees with the
// grid the pager builds.
func (h *v2Header) coreExt(kx, ky, kz int) Dims {
	d := [3]int{h.dims.X, h.dims.Y, h.dims.Z}
	k := [3]int{kx, ky, kz}
	var e [3]int
	for a := 0; a < 3; a++ {
		e[a] = axisSplit(d[a], h.counts[a], k[a]+1) - axisSplit(d[a], h.counts[a], k[a])
	}
	return Dims{e[0], e[1], e[2]}
}

// coreBytes returns the raw payload size of a core extent, or ok == false
// when the product overflows int64 (possible only with hostile dims).
func coreBytes(e Dims) (int64, bool) {
	vox := int64(e.X) * int64(e.Y)
	if e.Z > 0 && vox > math.MaxInt64/int64(e.Z) {
		return 0, false
	}
	vox *= int64(e.Z)
	if vox > math.MaxInt64/4 {
		return 0, false
	}
	return vox * 4, true
}

// v2MaxStored bounds the stored size of a flate-compressed payload of raw
// bytes: flate's worst case is a small per-block overhead on stored
// (uncompressed) blocks, comfortably under raw/2 + 64 extra.
func v2MaxStored(raw int64) int64 { return raw + raw/2 + 64 }

// decodeV2Header parses and validates a v2 header (fixed fields plus
// brick directory) from the front of data, returning the bytes consumed.
// Every field is treated as hostile: dims and counts are bounded, the
// directory length is capped, stored sizes must be consistent with each
// brick's raw core size, and min > max (or NaN) is rejected. What it
// cannot check without the file — that payload offsets lie inside the
// file — OpenFileV2 checks against the stat size. decode→encode is a
// fixed point (see FuzzVolumeFileV2).
func decodeV2Header(data []byte) (v2Header, int, error) {
	var h v2Header
	if len(data) < v2FixedHeaderSize {
		return h, 0, fmt.Errorf("volume: v2 header truncated: %d bytes", len(data))
	}
	if string(data[:4]) != fileMagic {
		return h, 0, fmt.Errorf("volume: not a GVMR volume file")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != fileVersion2 {
		return h, 0, fmt.Errorf("volume: not a v2 volume (version %d)", v)
	}
	d, err := decodeDims(data[8:])
	if err != nil {
		return h, 0, fmt.Errorf("volume: invalid v2 dims: %w", err)
	}
	h.dims = d
	dims := [3]int{d.X, d.Y, d.Z}
	for a := 0; a < 3; a++ {
		c := binary.LittleEndian.Uint32(data[32+a*4:])
		if c == 0 || int64(c) > int64(dims[a]) || int64(c) > maxV2Bricks {
			return h, 0, fmt.Errorf("volume: brick count %d invalid for axis extent %d", c, dims[a])
		}
		h.counts[a] = int(c)
	}
	n := int64(h.counts[0]) * int64(h.counts[1]) * int64(h.counts[2])
	if n > maxV2Bricks {
		return h, 0, fmt.Errorf("volume: %d bricks exceeds the limit %d", n, maxV2Bricks)
	}
	h.flags = binary.LittleEndian.Uint32(data[44:])
	if h.flags&^v2FlagFlate != 0 {
		return h, 0, fmt.Errorf("volume: unknown v2 flags %#x", h.flags)
	}
	consumed := v2FixedHeaderSize + int(n)*v2DirEntrySize
	if len(data) < consumed {
		return h, 0, fmt.Errorf("volume: v2 directory truncated: %d of %d bytes", len(data), consumed)
	}
	h.dir = make([]v2Entry, n)
	hdrLen := uint64(consumed)
	i := 0
	for kz := 0; kz < h.counts[2]; kz++ {
		for ky := 0; ky < h.counts[1]; ky++ {
			for kx := 0; kx < h.counts[0]; kx++ {
				o := v2FixedHeaderSize + i*v2DirEntrySize
				e := v2Entry{
					off:    binary.LittleEndian.Uint64(data[o:]),
					stored: binary.LittleEndian.Uint64(data[o+8:]),
					lo:     bitsFloat(binary.LittleEndian.Uint32(data[o+16:])),
					hi:     bitsFloat(binary.LittleEndian.Uint32(data[o+20:])),
				}
				raw, ok := coreBytes(h.coreExt(kx, ky, kz))
				if !ok {
					return h, 0, fmt.Errorf("volume: brick %d core size overflows", i)
				}
				if h.compressed() {
					if e.stored == 0 || e.stored > uint64(v2MaxStored(raw)) {
						return h, 0, fmt.Errorf("volume: brick %d stored size %d implausible for %d raw bytes", i, e.stored, raw)
					}
				} else if e.stored != uint64(raw) {
					return h, 0, fmt.Errorf("volume: brick %d stored size %d != %d raw bytes", i, e.stored, raw)
				}
				if e.off < hdrLen || e.off > math.MaxInt64-e.stored {
					return h, 0, fmt.Errorf("volume: brick %d payload offset %d invalid", i, e.off)
				}
				if !(e.lo <= e.hi) { // also rejects NaN
					return h, 0, fmt.Errorf("volume: brick %d min/max [%v, %v] invalid", i, e.lo, e.hi)
				}
				h.dir[i] = e
				i++
			}
		}
	}
	return h, consumed, nil
}

// encodeV2Header is the exact inverse of decodeV2Header.
func encodeV2Header(h v2Header) []byte {
	buf := make([]byte, h.headerLen())
	copy(buf, fileMagic)
	binary.LittleEndian.PutUint32(buf[4:], fileVersion2)
	binary.LittleEndian.PutUint64(buf[8:], uint64(h.dims.X))
	binary.LittleEndian.PutUint64(buf[16:], uint64(h.dims.Y))
	binary.LittleEndian.PutUint64(buf[24:], uint64(h.dims.Z))
	for a := 0; a < 3; a++ {
		binary.LittleEndian.PutUint32(buf[32+a*4:], uint32(h.counts[a]))
	}
	binary.LittleEndian.PutUint32(buf[44:], h.flags)
	for i, e := range h.dir {
		o := v2FixedHeaderSize + i*v2DirEntrySize
		binary.LittleEndian.PutUint64(buf[o:], e.off)
		binary.LittleEndian.PutUint64(buf[o+8:], e.stored)
		binary.LittleEndian.PutUint32(buf[o+16:], floatBits(e.lo))
		binary.LittleEndian.PutUint32(buf[o+20:], floatBits(e.hi))
	}
	return buf
}

// V2Options configures WriteFileV2.
type V2Options struct {
	// BrickEdge is the target brick edge length in voxels (default 32 —
	// a 128 KiB raw brick, small enough that a tiny staging budget still
	// holds several, large enough that the directory stays negligible).
	BrickEdge int
	// Compress flate-compresses each brick payload independently.
	Compress bool
}

// DefaultBrickEdge is the brick edge WriteFileV2 uses when none is given.
const DefaultBrickEdge = 32

// WriteFileV2 streams a source to a bricked v2 volume file, one brick
// core at a time, recording each brick's exact min/max in the directory.
// Like WriteFile it never materialises the full volume, and the file is
// synced and closed with explicit error checking.
func WriteFileV2(path string, src Source, opts V2Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return finishFile(f, writeFileV2(f, src, opts))
}

// writeFileV2 writes the v2 body to f: a placeholder header, the brick
// payloads in directory order, then the real header patched in at 0.
func writeFileV2(f fileWriter, src Source, opts V2Options) error {
	edge := opts.BrickEdge
	if edge <= 0 {
		edge = DefaultBrickEdge
	}
	d := src.Dims()
	var counts [3]int
	for a, dim := range [3]int{d.X, d.Y, d.Z} {
		counts[a] = (dim + edge - 1) / edge
	}
	grid, err := MakeGrid(d, counts)
	if err != nil {
		return err
	}
	h := v2Header{dims: d, counts: counts, dir: make([]v2Entry, grid.NumBricks())}
	if opts.Compress {
		h.flags = v2FlagFlate
	}

	var maxCore int64
	for _, b := range grid.Bricks {
		if n := b.Core.Ext.Voxels(); n > maxCore {
			maxCore = n
		}
	}
	vox := make([]float32, maxCore)
	raw := make([]byte, maxCore*4)
	var zbuf bytes.Buffer
	var zw *flate.Writer
	if opts.Compress {
		if zw, err = flate.NewWriter(&zbuf, flate.DefaultCompression); err != nil {
			return err
		}
	}

	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.Write(make([]byte, h.headerLen())); err != nil {
		return err
	}
	off := uint64(h.headerLen())
	for i, b := range grid.Bricks {
		n := int(b.Core.Ext.Voxels())
		data := vox[:n]
		if err := src.Fill(b.Core, data); err != nil {
			return err
		}
		lo, hi := data[0], data[0]
		for _, s := range data {
			if s < lo {
				lo = s
			} else if s > hi {
				hi = s
			}
		}
		enc := raw[:n*4]
		for j, s := range data {
			binary.LittleEndian.PutUint32(enc[j*4:], floatBits(s))
		}
		if opts.Compress {
			zbuf.Reset()
			zw.Reset(&zbuf)
			if _, err := zw.Write(enc); err != nil {
				return err
			}
			if err := zw.Close(); err != nil {
				return err
			}
			enc = zbuf.Bytes()
		}
		if _, err := w.Write(enc); err != nil {
			return err
		}
		h.dir[i] = v2Entry{off: off, stored: uint64(len(enc)), lo: lo, hi: hi}
		off += uint64(len(enc))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	_, err = f.WriteAt(encodeV2Header(h), 0)
	return err
}

// PagerStats is a snapshot of a PagedSource's demand-paging activity.
type PagerStats struct {
	Bricks        int   `json:"bricks"`         // bricks in the file
	BrickReads    int64 `json:"brick_reads"`    // payloads decoded from disk
	BytesRead     int64 `json:"bytes_read"`     // stored payload bytes read
	Reloads       int64 `json:"reloads"`        // re-reads of a brick already read once: proof of eviction between the two
	Fallbacks     int64 `json:"fallbacks"`      // pages served uncached (budget exhausted by in-flight work)
	SkippedBricks int64 `json:"skipped_bricks"` // render bricks proven TF-empty by directory min/max: zero disk traffic
}

// RangedSource is a Source that can bound the sample values of a region
// without reading the data — the hook that lets staging prove a brick
// invisible under a transfer function before paying any disk I/O.
type RangedSource interface {
	Source
	// RegionRange returns a bound [lo, hi] on every sample in r.
	// ok == false means no bound is known.
	RegionRange(r Region) (lo, hi float32, ok bool)
}

// PagedSource reads a v2 volume file by demand-paging individual file
// bricks through a StagingCache: each brick core is a separate cache
// entry, so a render streams volumes far larger than the staging budget,
// with least-recently-used bricks evicted and re-read if touched again.
// It is safe for concurrent use.
type PagedSource struct {
	f         *os.File
	path      string
	hdr       v2Header
	grid      *Grid
	cache     *StagingCache
	keyPrefix string

	mu     sync.Mutex
	loaded map[int]bool // brick id → read from disk at least once

	brickReads atomic.Int64
	bytesRead  atomic.Int64
	reloads    atomic.Int64
	fallbacks  atomic.Int64
	skips      atomic.Int64
}

// OpenFileV2 opens a bricked v2 volume file. The header and brick
// directory are fully validated at open — including every payload's
// placement inside the actual file size — so truncated or hostile files
// fail here, not mid-render. Pages go through the process-wide staging
// cache by default; SetCache overrides.
func OpenFileV2(path string) (*PagedSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fixed := make([]byte, v2FixedHeaderSize)
	if _, err := io.ReadFull(f, fixed); err != nil {
		f.Close()
		return nil, fmt.Errorf("volume: reading header of %s: %w", path, err)
	}
	if string(fixed[:4]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("volume: %s is not a GVMR volume file", path)
	}
	if v := binary.LittleEndian.Uint32(fixed[4:]); v != fileVersion2 {
		f.Close()
		return nil, fmt.Errorf("volume: %s is not a v2 volume (version %d)", path, v)
	}
	// Peek just far enough to learn the directory length, then hand the
	// complete header bytes to the one strict decoder.
	n, perr := v2DirLen(fixed)
	if perr != nil {
		f.Close()
		return nil, fmt.Errorf("volume: %s: %w", path, perr)
	}
	full := make([]byte, v2FixedHeaderSize+n*v2DirEntrySize)
	copy(full, fixed)
	if _, err := io.ReadFull(f, full[v2FixedHeaderSize:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("volume: reading brick directory of %s: %w", path, err)
	}
	hdr, _, err := decodeV2Header(full)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("volume: %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("volume: stat %s: %w", path, err)
	}
	size := fi.Size()
	for i, e := range hdr.dir {
		end := e.off + e.stored // overflow ruled out by decodeV2Header
		if end > uint64(size) {
			f.Close()
			return nil, fmt.Errorf("volume: %s: brick %d payload [%d, %d) exceeds file size %d",
				path, i, e.off, end, size)
		}
	}
	grid, err := MakeGrid(hdr.dims, hdr.counts)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("volume: %s: %w", path, err)
	}
	return &PagedSource{
		f:     f,
		path:  path,
		hdr:   hdr,
		grid:  grid,
		cache: Cache,
		// Key pages by path + size + mtime so a rewritten file never
		// serves stale pages out of the shared cache.
		keyPrefix: fmt.Sprintf("pv2|%s|%d|%d|", path, size, fi.ModTime().UnixNano()),
		loaded:    map[int]bool{},
	}, nil
}

// v2DirLen reads just enough of a fixed header to learn the directory
// entry count, with the same bounds decodeV2Header enforces.
func v2DirLen(fixed []byte) (int, error) {
	var n int64 = 1
	d, err := decodeDims(fixed[8:])
	if err != nil {
		return 0, fmt.Errorf("invalid v2 dims: %w", err)
	}
	dims := [3]int{d.X, d.Y, d.Z}
	for a := 0; a < 3; a++ {
		c := binary.LittleEndian.Uint32(fixed[32+a*4:])
		if c == 0 || int64(c) > int64(dims[a]) || int64(c) > maxV2Bricks {
			return 0, fmt.Errorf("brick count %d invalid for axis extent %d", c, dims[a])
		}
		n *= int64(c)
	}
	if n > maxV2Bricks {
		return 0, fmt.Errorf("%d bricks exceeds the limit %d", n, maxV2Bricks)
	}
	return int(n), nil
}

// Close releases the underlying file.
func (s *PagedSource) Close() error { return s.f.Close() }

// Name implements Source.
func (s *PagedSource) Name() string { return s.path }

// Dims implements Source.
func (s *PagedSource) Dims() Dims { return s.hdr.dims }

// BrickGrid returns the file's brick decomposition.
func (s *PagedSource) BrickGrid() *Grid { return s.grid }

// Compressed reports whether brick payloads are flate-compressed.
func (s *PagedSource) Compressed() bool { return s.hdr.compressed() }

// SetCache routes pages through c instead of the process-wide cache
// (nil, or a cache with no capacity, reads every page straight from
// disk). Call before the first Fill.
func (s *PagedSource) SetCache(c *StagingCache) { s.cache = c }

// Stats returns a snapshot of the pager counters.
func (s *PagedSource) Stats() PagerStats {
	return PagerStats{
		Bricks:        s.grid.NumBricks(),
		BrickReads:    s.brickReads.Load(),
		BytesRead:     s.bytesRead.Load(),
		Reloads:       s.reloads.Load(),
		Fallbacks:     s.fallbacks.Load(),
		SkippedBricks: s.skips.Load(),
	}
}

// NoteBrickSkip records that a render brick was proven empty from the
// directory min/max alone (StageBrickSkip calls it; no disk I/O happened).
func (s *PagedSource) NoteBrickSkip() { s.skips.Add(1) }

// splitRange returns the [i0, i1) range of axis splits (of length into n
// near-equal spans) that overlap the half-open voxel interval [lo, hi).
func splitRange(length, n, lo, hi int) (int, int) {
	i0 := sort.Search(n, func(i int) bool { return axisSplit(length, n, i+1) > lo })
	i1 := sort.Search(n, func(i int) bool { return axisSplit(length, n, i) >= hi })
	return i0, i1
}

// brickRange returns the index ranges of file bricks whose cores overlap r.
func (s *PagedSource) brickRange(r Region) (lo, hi [3]int) {
	d := [3]int{s.hdr.dims.X, s.hdr.dims.Y, s.hdr.dims.Z}
	e := r.End()
	for a := 0; a < 3; a++ {
		lo[a], hi[a] = splitRange(d[a], s.hdr.counts[a], r.Org[a], e[a])
	}
	return lo, hi
}

// brickID returns the directory index of brick (kx,ky,kz).
func (s *PagedSource) brickID(kx, ky, kz int) int {
	return (kz*s.hdr.counts[1]+ky)*s.hdr.counts[0] + kx
}

// RegionRange implements RangedSource: the union of directory min/max
// over every file brick whose core intersects r. Cores tile the volume
// and the renderer's trilinear fetches clamp into the sampled region, so
// this bounds every sample a render can take inside r — without reading
// one payload byte.
func (s *PagedSource) RegionRange(r Region) (lo, hi float32, ok bool) {
	blo, bhi := s.brickRange(r)
	for kz := blo[2]; kz < bhi[2]; kz++ {
		for ky := blo[1]; ky < bhi[1]; ky++ {
			for kx := blo[0]; kx < bhi[0]; kx++ {
				e := s.hdr.dir[s.brickID(kx, ky, kz)]
				if !ok {
					lo, hi, ok = e.lo, e.hi, true
					continue
				}
				if e.lo < lo {
					lo = e.lo
				}
				if e.hi > hi {
					hi = e.hi
				}
			}
		}
	}
	return lo, hi, ok
}

// readBrickInto reads brick i's payload from disk and decodes it into
// dst (the brick's core voxels). This is the only disk path; everything
// else is served from the staging cache.
func (s *PagedSource) readBrickInto(i int, dst []float32) error {
	s.mu.Lock()
	reload := s.loaded[i]
	s.loaded[i] = true
	s.mu.Unlock()
	if reload {
		s.reloads.Add(1)
	}
	e := s.hdr.dir[i]
	stored := make([]byte, e.stored)
	if _, err := s.f.ReadAt(stored, int64(e.off)); err != nil {
		return fmt.Errorf("volume: reading brick %d of %s: %w", i, s.path, err)
	}
	s.brickReads.Add(1)
	s.bytesRead.Add(int64(len(stored)))
	enc := stored
	if s.hdr.compressed() {
		raw := make([]byte, len(dst)*4)
		zr := flate.NewReader(bytes.NewReader(stored))
		if _, err := io.ReadFull(zr, raw); err != nil {
			zr.Close()
			return fmt.Errorf("volume: decompressing brick %d of %s: %w", i, s.path, err)
		}
		// The stream must end exactly at the core size; trailing data
		// means the payload does not match the directory.
		if n, err := zr.Read(make([]byte, 1)); n != 0 || err != io.EOF {
			zr.Close()
			return fmt.Errorf("volume: brick %d of %s has oversized payload", i, s.path)
		}
		zr.Close()
		enc = raw
	}
	for j := range dst {
		dst[j] = bitsFloat(binary.LittleEndian.Uint32(enc[j*4:]))
	}
	return nil
}

// v2PageSource adapts one file brick to the Source interface so the
// staging cache can materialise and account it like any other entry. Its
// identity (keyPrefix + brick id) embeds the file's size and mtime, so a
// rewritten file can never alias a stale page.
type v2PageSource struct {
	s *PagedSource
	i int
}

func (p *v2PageSource) Name() string { return p.s.keyPrefix + strconv.Itoa(p.i) }
func (p *v2PageSource) Dims() Dims   { return p.s.grid.Bricks[p.i].Core.Ext }

func (p *v2PageSource) Fill(r Region, dst []float32) error {
	d := p.Dims()
	if err := checkRegion(d, r, len(dst)); err != nil {
		return err
	}
	if r.Org == [3]int{} && r.Ext == d {
		return p.s.readBrickInto(p.i, dst)
	}
	full := make([]float32, d.Voxels())
	if err := p.s.readBrickInto(p.i, full); err != nil {
		return err
	}
	copyRegion(&Volume{Dims: d, Data: full}, r, dst)
	return nil
}

// page returns brick i's core as a dense volume, preferably out of the
// staging cache. ok == false from the cache (budget held by in-flight
// work) falls back to an uncached direct read.
func (s *PagedSource) page(i int) (*Volume, error) {
	if c := s.cache; c != nil && c.Capacity() > 0 {
		v, ok, err := c.volumeFor(&v2PageSource{s: s, i: i})
		if err != nil {
			return nil, err
		}
		if ok {
			return v, nil
		}
		s.fallbacks.Add(1)
	}
	d := s.grid.Bricks[i].Core.Ext
	data := make([]float32, d.Voxels())
	if err := s.readBrickInto(i, data); err != nil {
		return nil, err
	}
	return &Volume{Dims: d, Data: data}, nil
}

// Fill implements Source: the requested region is assembled from every
// file brick whose core intersects it, each paged through the staging
// cache. Fills never materialise the whole volume — this is the
// out-of-core path.
func (s *PagedSource) Fill(r Region, dst []float32) error {
	if err := checkRegion(s.hdr.dims, r, len(dst)); err != nil {
		return err
	}
	e := r.End()
	blo, bhi := s.brickRange(r)
	for kz := blo[2]; kz < bhi[2]; kz++ {
		for ky := blo[1]; ky < bhi[1]; ky++ {
			for kx := blo[0]; kx < bhi[0]; kx++ {
				i := s.brickID(kx, ky, kz)
				v, err := s.page(i)
				if err != nil {
					return err
				}
				c := s.grid.Bricks[i].Core
				ce := c.End()
				// Intersection of the brick core with r, in volume coords.
				x0, x1 := max(r.Org[0], c.Org[0]), min(e[0], ce[0])
				y0, y1 := max(r.Org[1], c.Org[1]), min(e[1], ce[1])
				z0, z1 := max(r.Org[2], c.Org[2]), min(e[2], ce[2])
				for z := z0; z < z1; z++ {
					for y := y0; y < y1; y++ {
						si := ((z-c.Org[2])*c.Ext.Y+(y-c.Org[1]))*c.Ext.X + (x0 - c.Org[0])
						di := ((z-r.Org[2])*r.Ext.Y+(y-r.Org[1]))*r.Ext.X + (x0 - r.Org[0])
						copy(dst[di:di+(x1-x0)], v.Data[si:si+(x1-x0)])
					}
				}
			}
		}
	}
	return nil
}

// VolumeFile is a file-backed volume source that must be closed.
type VolumeFile interface {
	Source
	Close() error
}

// OpenVolume opens a GVMR volume file of either version: flat v1 files
// load through FileSource, bricked v2 files through the demand pager.
func OpenVolume(path string) (VolumeFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 8)
	_, rerr := io.ReadFull(f, hdr)
	cerr := f.Close()
	if rerr != nil {
		return nil, fmt.Errorf("volume: reading header of %s: %w", path, rerr)
	}
	if cerr != nil {
		return nil, cerr
	}
	if string(hdr[:4]) != fileMagic {
		return nil, fmt.Errorf("volume: %s is not a GVMR volume file", path)
	}
	switch v := binary.LittleEndian.Uint32(hdr[4:]); v {
	case fileVersion:
		return OpenFile(path)
	case fileVersion2:
		return OpenFileV2(path)
	default:
		return nil, fmt.Errorf("volume: %s has unsupported version %d", path, v)
	}
}
