package volume

import (
	"math/rand"
	"testing"
)

// bruteCellRange recomputes one cell's dilated min/max directly from the
// data — the specification BuildMacrocells must match.
func bruteCellRange(data []float32, vox Dims, cx, cy, cz int) (lo, hi float32) {
	x0, x1 := windowClamp(cx, vox.X)
	y0, y1 := windowClamp(cy, vox.Y)
	z0, z1 := windowClamp(cz, vox.Z)
	first := true
	for z := z0; z < z1; z++ {
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				v := data[(z*vox.Y+y)*vox.X+x]
				if first {
					lo, hi, first = v, v, false
					continue
				}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
	}
	return lo, hi
}

func TestMacrocellMinMaxBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	// Odd dims exercise partial cells at the high edges.
	for _, d := range []Dims{{X: 4, Y: 4, Z: 4}, {X: 13, Y: 9, Z: 11}, {X: 17, Y: 5, Z: 23}} {
		data := make([]float32, d.Voxels())
		for i := range data {
			data[i] = r.Float32()
		}
		mc := BuildMacrocells(data, d, [3]int{})
		want := macrocellCounts(d)
		if mc.Cells != want {
			t.Fatalf("%v: cell grid %v, want %v", d, mc.Cells, want)
		}
		for cz := 0; cz < mc.Cells.Z; cz++ {
			for cy := 0; cy < mc.Cells.Y; cy++ {
				for cx := 0; cx < mc.Cells.X; cx++ {
					lo, hi := bruteCellRange(data, d, cx, cy, cz)
					i := mc.CellIndex(cx, cy, cz)
					if mc.Min[i] != lo || mc.Max[i] != hi {
						t.Fatalf("%v cell (%d,%d,%d): [%v,%v], want [%v,%v]",
							d, cx, cy, cz, mc.Min[i], mc.Max[i], lo, hi)
					}
				}
			}
		}
	}
}

// TestMacrocellCoversTrilinearFootprint is the conservativeness contract:
// any trilinear sample taken at a position inside a cell (and up to a
// quarter voxel outside it, the DDA's attribution slack bound) reads a
// value within the cell's recorded range.
func TestMacrocellCoversTrilinearFootprint(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	d := Dims{X: 19, Y: 14, Z: 10}
	v := New(d)
	for i := range v.Data {
		v.Data[i] = r.Float32()
	}
	mc := v.Macrocells()
	for trial := 0; trial < 20000; trial++ {
		cx := r.Intn(mc.Cells.X)
		cy := r.Intn(mc.Cells.Y)
		cz := r.Intn(mc.Cells.Z)
		// Position inside the cell ± slack.
		const slack = 0.25
		px := float32(cx<<MacrocellShift) + r.Float32()*MacrocellEdge + (r.Float32()*2-1)*slack
		py := float32(cy<<MacrocellShift) + r.Float32()*MacrocellEdge + (r.Float32()*2-1)*slack
		pz := float32(cz<<MacrocellShift) + r.Float32()*MacrocellEdge + (r.Float32()*2-1)*slack
		s := v.Sample(px, py, pz)
		i := mc.CellIndex(cx, cy, cz)
		if s < mc.Min[i] || s > mc.Max[i] {
			t.Fatalf("sample %v at (%v,%v,%v) outside cell (%d,%d,%d) range [%v,%v]",
				s, px, py, pz, cx, cy, cz, mc.Min[i], mc.Max[i])
		}
	}
}

// TestBrickMacrocellsAtGhostBoundaries checks the per-brick grids built
// by FillBrick: anchored at the ghost origin, covering the ghost extent,
// with ranges that match a brute force over the ghost data — for interior
// bricks (full one-voxel ghost) and corner bricks (ghost clamped at the
// volume edge) alike.
func TestBrickMacrocellsAtGhostBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	d := Dims{X: 21, Y: 18, Z: 15}
	v := New(d)
	for i := range v.Data {
		v.Data[i] = r.Float32()
	}
	src := NewVolumeSource(v, "ghost-mc")
	g, err := MakeGrid(d, [3]int{3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range g.Bricks {
		bd, err := FillBrick(src, b)
		if err != nil {
			t.Fatal(err)
		}
		mc := bd.Cells()
		if mc == nil {
			t.Fatalf("brick %d: no macrocells", b.ID)
		}
		if mc.Org != b.Ghost.Org || mc.Vox != b.Ghost.Ext {
			t.Fatalf("brick %d: grid over %v at %v, want %v at %v",
				b.ID, mc.Vox, mc.Org, b.Ghost.Ext, b.Ghost.Org)
		}
		for cz := 0; cz < mc.Cells.Z; cz++ {
			for cy := 0; cy < mc.Cells.Y; cy++ {
				for cx := 0; cx < mc.Cells.X; cx++ {
					lo, hi := bruteCellRange(bd.Data, b.Ghost.Ext, cx, cy, cz)
					i := mc.CellIndex(cx, cy, cz)
					if mc.Min[i] != lo || mc.Max[i] != hi {
						t.Fatalf("brick %d cell (%d,%d,%d): [%v,%v], want [%v,%v]",
							b.ID, cx, cy, cz, mc.Min[i], mc.Max[i], lo, hi)
					}
				}
			}
		}
	}
}

// TestMacrocellsMemoised: a volume builds its grid once; every view of it
// shares that build, while copy-backed bricks get private grids.
func TestMacrocellsMemoised(t *testing.T) {
	d := Dims{X: 9, Y: 9, Z: 9}
	v := New(d)
	if v.Macrocells() != v.Macrocells() {
		t.Error("Volume.Macrocells rebuilt on second call")
	}
	g, err := MakeGrid(d, [3]int{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	a := ViewBrick(v, g.Bricks[0])
	b := ViewBrick(v, g.Bricks[1])
	if a.Cells() != v.Macrocells() || b.Cells() != v.Macrocells() {
		t.Error("view-backed bricks should share the volume's grid")
	}
	src := NewVolumeSource(v, "memo")
	c0, err := FillBrick(src, g.Bricks[0])
	if err != nil {
		t.Fatal(err)
	}
	if c0.Cells() == v.Macrocells() {
		t.Error("copy-backed brick should carry a private ghost-region grid")
	}
	if c0.Cells() == nil || c0.Cells().Org != g.Bricks[0].Ghost.Org {
		t.Error("copy-backed grid missing or mis-anchored")
	}
}

func TestMacrocellBytesMatchesBuild(t *testing.T) {
	for _, d := range []Dims{{X: 1, Y: 1, Z: 1}, {X: 8, Y: 8, Z: 8}, {X: 13, Y: 7, Z: 29}} {
		mc := BuildMacrocells(make([]float32, d.Voxels()), d, [3]int{})
		if got, want := mc.Bytes(), MacrocellBytes(d); got != want {
			t.Errorf("%v: built %d bytes, predicted %d", d, got, want)
		}
	}
}
