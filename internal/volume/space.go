package volume

import "gvmr/internal/vec"

// Space maps voxel coordinates to world coordinates. The volume is centered
// at the world origin with its largest axis spanning exactly one world unit,
// preserving aspect ratio (so a 512×512×2048 plume is a tall box).
type Space struct {
	Dims   Dims
	scale  float32 // world units per voxel
	center vec.V3  // voxel-space center
}

// NewSpace builds the canonical space for a volume of the given dims.
func NewSpace(d Dims) Space {
	m := max(d.X, max(d.Y, d.Z))
	if m == 0 {
		m = 1
	}
	return Space{
		Dims:   d,
		scale:  1 / float32(m),
		center: vec.V3{X: float32(d.X) / 2, Y: float32(d.Y) / 2, Z: float32(d.Z) / 2},
	}
}

// VoxelSize returns the world-space edge length of one voxel.
func (s Space) VoxelSize() float32 { return s.scale }

// VoxelToWorld converts a continuous voxel-space position to world space.
func (s Space) VoxelToWorld(v vec.V3) vec.V3 {
	return v.Sub(s.center).Scale(s.scale)
}

// WorldToVoxel converts a world-space position to continuous voxel space.
func (s Space) WorldToVoxel(w vec.V3) vec.V3 {
	return w.Scale(1 / s.scale).Add(s.center)
}

// Bounds returns the world-space box of the whole volume.
func (s Space) Bounds() vec.AABB {
	return s.RegionBounds(Region{Ext: s.Dims})
}

// RegionBounds returns the world-space box of a voxel region.
func (s Space) RegionBounds(r Region) vec.AABB {
	e := r.End()
	lo := s.VoxelToWorld(vec.V3{X: float32(r.Org[0]), Y: float32(r.Org[1]), Z: float32(r.Org[2])})
	hi := s.VoxelToWorld(vec.V3{X: float32(e[0]), Y: float32(e[1]), Z: float32(e[2])})
	return vec.AABB{Min: lo, Max: hi}
}
