package volume

import (
	"strconv"
	"strings"
	"testing"
)

// FuzzParseBytes hammers the byte-count grammar shared by
// GVMR_STAGING_BYTES and GVMR_FRAME_BYTES. The variables bound memory, so
// the properties are safety properties: never panic, never return a
// negative or overflowed count, reject anything that is not plainly
// digits + one suffix, and stay consistent under the normalizations the
// parser itself performs (case, surrounding space).
func FuzzParseBytes(f *testing.F) {
	for _, s := range []string{
		"2G", "512MiB", "0", "off", "OFF", " 4 K ", "1GX", "1.5G", "+2M",
		"-1", "9223372036854775807", "8T", "16TiB", "0x10", "1e9", "2 G B",
		"۳M", "2 G", "18446744073709551616", "007", "", "K", "kib",
		"4096", "4294967296B",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, ok := ParseBytes(s)
		if !ok {
			if n != 0 {
				t.Fatalf("ParseBytes(%q) = (%d, false): rejected input must report 0", s, n)
			}
			return
		}
		if n < 0 {
			t.Fatalf("ParseBytes(%q) = %d: negative byte count", s, n)
		}
		// Case and surrounding-space insensitivity: the parser claims to
		// normalize both.
		for _, variant := range []string{strings.ToLower(s), strings.ToUpper(s), " " + s + " "} {
			vn, vok := ParseBytes(variant)
			if !vok || vn != n {
				t.Fatalf("ParseBytes(%q) = (%d, %v) disagrees with ParseBytes(%q) = %d",
					variant, vn, vok, s, n)
			}
		}
		// The resolved count reparses exactly when spelled in plain bytes
		// — the round trip an operator performs when copying a value out
		// of the stats endpoint back into the environment.
		n2, ok2 := ParseBytes(strconv.FormatInt(n, 10))
		if !ok2 || n2 != n {
			t.Fatalf("ParseBytes(%d) = (%d, %v): plain-digit round trip failed for %q", n, n2, ok2, s)
		}
	})
}
