package volume

import "math"

func floatBits(f float32) uint32 { return math.Float32bits(f) }
func bitsFloat(b uint32) float32 { return math.Float32frombits(b) }
