package volume

import "sync"

// This file implements macrocell grids: coarse per-cell min/max summaries
// of a scalar field, the acceleration structure behind the ray caster's
// empty-space skipping (DESIGN.md §8). A macrocell covers MacrocellEdge³
// voxels and records the exact [min, max] of the samples inside it; the
// renderer combines that with a transfer-function range query ("is any
// scalar in [min, max] mapped to nonzero opacity?") to leap rays over
// provably invisible space without taking a single texture sample there.
//
// Grids are anchored at a voxel-space origin so the same cell arithmetic
// serves both backings of BrickData: view-backed bricks share one grid
// built over the whole dense volume (memoised on the Volume, accounted by
// the staging cache), while copy-backed bricks build a private grid over
// their ghost region at stage time.

// MacrocellShift is log2 of the macrocell edge length in voxels.
const MacrocellShift = 2

// MacrocellEdge is the macrocell edge length in voxels (4, so one cell
// summarises 64 voxels — ~3% of the volume's bytes, fine enough to trace
// empty space close to surfaces, where a coarser grid loses several
// points of skip rate to boundary cells that straddle the silhouette).
const MacrocellEdge = 1 << MacrocellShift

// Macrocells is a min/max summary grid over a voxel region. Cell (i,j,k)
// covers voxels [Org + i·Edge, Org + (i+1)·Edge) per axis; Min/Max hold
// the value range of those voxels *dilated by one voxel per face*
// (clamped to the region, x-fastest layout). The dilation makes the range
// a bound on every trilinear fetch of every sample position inside the
// cell — a sample at continuous position p reads voxels floor(p−½) and
// floor(p−½)+1 per axis, which for p anywhere in the cell (plus slack
// well under half a voxel) stay within the dilated window. That is the
// conservativeness that lets a renderer skip a whole cell on the strength
// of one range query; see DESIGN.md §8.
type Macrocells struct {
	Org   [3]int // voxel-space origin of cell (0,0,0)
	Vox   Dims   // voxel extent covered by the grid
	Cells Dims   // cell-grid extent: ceil(Vox / Edge) per axis
	Min   []float32
	Max   []float32
}

// macrocellCounts returns the cell-grid extent covering d voxels.
func macrocellCounts(d Dims) Dims {
	return Dims{
		X: (d.X + MacrocellEdge - 1) >> MacrocellShift,
		Y: (d.Y + MacrocellEdge - 1) >> MacrocellShift,
		Z: (d.Z + MacrocellEdge - 1) >> MacrocellShift,
	}
}

// MacrocellBytes returns the storage footprint of a macrocell grid over d
// voxels (two float32 per cell). It is a pure function of the dims, so
// the staging cache can reserve the bytes before the grid exists.
func MacrocellBytes(d Dims) int64 {
	return macrocellCounts(d).Voxels() * 8
}

// NumCells returns the total cell count.
func (m *Macrocells) NumCells() int { return int(m.Cells.Voxels()) }

// Bytes returns the grid's storage footprint.
func (m *Macrocells) Bytes() int64 { return int64(len(m.Min)+len(m.Max)) * 4 }

// CellIndex returns the linear index of cell (cx,cy,cz); no bounds check.
func (m *Macrocells) CellIndex(cx, cy, cz int) int {
	return (cz*m.Cells.Y+cy)*m.Cells.X + cx
}

// BuildMacrocells summarises data (a dense region of vox voxels,
// x-fastest, anchored at voxel-space origin org) into a macrocell grid.
// Each cell's window is its own voxels dilated by one per face and
// clamped to the region. Min/max over a box window is separable, so the
// build reduces x, then y, then z: every voxel is read exactly once, in
// layout order, and only the already-256×-smaller intermediate layers
// pay the window overlap — the whole build costs about one linear pass
// over the volume (it shares the staging cache's materialisation, so a
// render's first frame absorbs it and every later frame skips for free).
func BuildMacrocells(data []float32, vox Dims, org [3]int) *Macrocells {
	m := &Macrocells{Org: org, Vox: vox, Cells: macrocellCounts(vox)}
	n := m.NumCells()
	m.Min = make([]float32, n)
	m.Max = make([]float32, n)
	cx, cy := m.Cells.X, m.Cells.Y
	layer := cx * cy
	slab := vox.X * vox.Y

	// tmp holds one voxel layer reduced along x (per voxel row, per cell
	// column); ring holds the last ringLayers fully xy-reduced layers —
	// enough for one cell band's z-window (Edge+2) plus the two layers
	// the next band reuses.
	const ringLayers = MacrocellEdge + 4
	tmpMin := make([]float32, vox.Y*cx)
	tmpMax := make([]float32, vox.Y*cx)
	ringMin := make([]float32, ringLayers*layer)
	ringMax := make([]float32, ringLayers*layer)

	// reduceLayer folds voxel layer z into ring[z%ringLayers].
	reduceLayer := func(z int) {
		base := z * slab
		for y := 0; y < vox.Y; y++ {
			row := data[base+y*vox.X : base+(y+1)*vox.X]
			out := y * cx
			for k := 0; k < cx; k++ {
				x0, x1 := windowClamp(k, vox.X)
				lo, hi := row[x0], row[x0]
				for _, v := range row[x0+1 : x1] {
					if v < lo {
						lo = v
					} else if v > hi {
						hi = v
					}
				}
				tmpMin[out+k], tmpMax[out+k] = lo, hi
			}
		}
		dst := (z % ringLayers) * layer
		for ky := 0; ky < cy; ky++ {
			y0, y1 := windowClamp(ky, vox.Y)
			for k := 0; k < cx; k++ {
				lo, hi := tmpMin[y0*cx+k], tmpMax[y0*cx+k]
				for y := y0 + 1; y < y1; y++ {
					if v := tmpMin[y*cx+k]; v < lo {
						lo = v
					}
					if v := tmpMax[y*cx+k]; v > hi {
						hi = v
					}
				}
				ringMin[dst+ky*cx+k] = lo
				ringMax[dst+ky*cx+k] = hi
			}
		}
	}

	next := 0 // first voxel layer not yet reduced
	for kz := 0; kz < m.Cells.Z; kz++ {
		z0, z1 := windowClamp(kz, vox.Z)
		for ; next < z1; next++ {
			reduceLayer(next)
		}
		out := kz * layer
		src := (z0 % ringLayers) * layer
		copy(m.Min[out:out+layer], ringMin[src:src+layer])
		copy(m.Max[out:out+layer], ringMax[src:src+layer])
		for z := z0 + 1; z < z1; z++ {
			src := (z % ringLayers) * layer
			for i := 0; i < layer; i++ {
				if v := ringMin[src+i]; v < m.Min[out+i] {
					m.Min[out+i] = v
				}
				if v := ringMax[src+i]; v > m.Max[out+i] {
					m.Max[out+i] = v
				}
			}
		}
	}
	return m
}

// windowClamp returns the [lo, hi) voxel window of cell c along an axis
// of extent n: the cell's voxels dilated by one per side, clamped.
func windowClamp(c, n int) (int, int) {
	lo := c<<MacrocellShift - 1
	if lo < 0 {
		lo = 0
	}
	hi := (c+1)<<MacrocellShift + 1
	if hi > n {
		hi = n
	}
	return lo, hi
}

// macrocellMemo is the lazily-built, build-once macrocell grid attached
// to a dense Volume; concurrent brick stages of the same volume share it.
type macrocellMemo struct {
	once sync.Once
	mc   *Macrocells
}

// Macrocells returns the volume's macrocell grid, building it on first
// use (one pass over the data) and memoising it for the volume's
// lifetime. Safe for concurrent use; callers must not mutate the volume
// data after the first call.
func (v *Volume) Macrocells() *Macrocells {
	if v.mc == nil {
		// New() allocates the memo; volumes built as bare literals (tests)
		// get one on first use. This path is not safe for concurrent first
		// calls, but literal-built volumes are test-local by construction.
		v.mc = &macrocellMemo{}
	}
	v.mc.once.Do(func() {
		v.mc.mc = BuildMacrocells(v.Data, v.Dims, [3]int{})
	})
	return v.mc.mc
}
