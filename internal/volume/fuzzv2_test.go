package volume

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// FuzzVolumeFileV2 hammers the v2 header/brick-directory decoder with
// hostile bytes. The decoder is the trust boundary of the out-of-core
// path — gvmrd opens operator-supplied files — so the properties are
// safety properties: never panic, never accept a directory inconsistent
// with the dims/counts, and for every accepted header the decode→encode
// round trip is a fixed point (so what the pager acts on is exactly what
// is on disk, no normalisation ambiguity).
func FuzzVolumeFileV2(f *testing.F) {
	// A real header from the writer, plus structured near-misses.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.gvmr")
	v := randomVolume(rand.New(rand.NewSource(127)), Dims{9, 7, 5})
	if err := WriteFileV2(path, NewVolumeSource(v, "t"), V2Options{BrickEdge: 4, Compress: true}); err != nil {
		f.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	hdr, consumed, err := decodeV2Header(good)
	if err != nil {
		f.Fatal(err)
	}
	_ = hdr
	f.Add(good[:consumed])
	f.Add(good[:v2FixedHeaderSize])
	f.Add([]byte("GVMR"))
	mut := append([]byte(nil), good[:consumed]...)
	binary.LittleEndian.PutUint32(mut[32:], 0xFFFFFFFF) // hostile brick count
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, n, err := decodeV2Header(data)
		if err != nil {
			return
		}
		if n < v2FixedHeaderSize || n > len(data) {
			t.Fatalf("consumed %d outside [%d, %d]", n, v2FixedHeaderSize, len(data))
		}
		if got := len(h.dir); got != h.counts[0]*h.counts[1]*h.counts[2] {
			t.Fatalf("directory length %d != counts product %v", got, h.counts)
		}
		enc := encodeV2Header(h)
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("decode→encode not a fixed point:\n in  %x\n out %x", data[:n], enc)
		}
		h2, n2, err := decodeV2Header(enc)
		if err != nil || n2 != n {
			t.Fatalf("re-decode of accepted header failed: %v (consumed %d, want %d)", err, n2, n)
		}
		if h2.dims != h.dims || h2.counts != h.counts || h2.flags != h.flags {
			t.Fatal("re-decode disagrees on fixed fields")
		}
	})
}
