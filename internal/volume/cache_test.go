package volume

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testField(x, y, z float64) float32 {
	return float32(x*0.5 + y*0.3 + z*0.2)
}

// countingSource wraps a FuncSource and counts Fill calls, to observe how
// often the underlying field is actually evaluated.
type countingSource struct {
	*FuncSource
	fills atomic.Int64
}

func (s *countingSource) Fill(r Region, dst []float32) error {
	s.fills.Add(1)
	return s.FuncSource.Fill(r, dst)
}

// TestCachedBrickFillEquivalence is the staging-cache correctness
// contract: brick fills served from the cache are bit-identical to direct
// fills, and view-backed bricks sample bit-identically to copy-backed
// ones over core, ghost, and out-of-ghost (clamped) positions.
func TestCachedBrickFillEquivalence(t *testing.T) {
	d := Dims{X: 17, Y: 13, Z: 11}
	direct := NewFuncSource("cache-equiv", d, testField)
	cache := NewStagingCache(1 << 20)
	cached := cache.Wrap(direct)
	if _, ok := cached.(*CachedSource); !ok {
		t.Fatalf("Wrap returned %T, want *CachedSource", cached)
	}
	g, err := MakeGrid(d, [3]int{3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for _, b := range g.Bricks {
		want, err := FillBrick(direct, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FillBrick(cached, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("brick %d voxel %d: cached %v != direct %v",
					b.ID, i, got.Data[i], want.Data[i])
			}
		}
		view, err := StageBrick(cached, b)
		if err != nil {
			t.Fatal(err)
		}
		if view.Data != nil {
			t.Fatalf("brick %d: StageBrick through cache should be view-backed", b.ID)
		}
		// Sample over the ghost region and slightly beyond (clamping).
		o, e := b.Ghost.Org, b.Ghost.End()
		for i := 0; i < 500; i++ {
			px := float32(o[0]) - 1 + r.Float32()*float32(e[0]-o[0]+2)
			py := float32(o[1]) - 1 + r.Float32()*float32(e[1]-o[1]+2)
			pz := float32(o[2]) - 1 + r.Float32()*float32(e[2]-o[2]+2)
			if w, v := want.Sample(px, py, pz), view.Sample(px, py, pz); w != v {
				t.Fatalf("brick %d at (%v,%v,%v): view %v != copy %v", b.ID, px, py, pz, v, w)
			}
		}
	}
	st := cache.Stats()
	if st.Materialisations != 1 {
		t.Errorf("materialisations = %d, want 1", st.Materialisations)
	}
	if want := (cacheKey{dims: d}).bytes(); st.BytesInUse != want {
		t.Errorf("bytes in use = %d, want %d (volume + macrocells)", st.BytesInUse, want)
	}
}

// TestCacheMaterialisesOnceUnderConcurrency hammers one cache from many
// goroutines (run with -race) and checks single materialisation.
func TestCacheMaterialisesOnceUnderConcurrency(t *testing.T) {
	d := Dims{X: 32, Y: 32, Z: 32}
	under := &countingSource{FuncSource: NewFuncSource("cache-conc", d, testField)}
	cache := NewStagingCache(1 << 24)
	g, err := MakeGrid(d, [3]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := cache.Wrap(under)
			for _, b := range g.Bricks {
				bd, err := FillBrick(src, b)
				if err != nil {
					errs <- err
					return
				}
				if bd.Data[0] != testField(
					(float64(b.Ghost.Org[0])+0.5)/float64(d.X),
					(float64(b.Ghost.Org[1])+0.5)/float64(d.Y),
					(float64(b.Ghost.Org[2])+0.5)/float64(d.Z)) {
					errs <- fmt.Errorf("brick %d: wrong data", b.ID)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := under.fills.Load(); n != 1 {
		t.Errorf("underlying Fill called %d times, want exactly 1", n)
	}
	if st := cache.Stats(); st.Materialisations != 1 {
		t.Errorf("materialisations = %d, want 1", st.Materialisations)
	}
}

// TestCacheEvictionAndBypass exercises the bounded-memory policy: LRU
// entries are evicted to fit the budget, sources beyond the budget bypass
// the cache entirely, and opted-out or already-dense sources pass through.
func TestCacheEvictionAndBypass(t *testing.T) {
	small := Dims{X: 16, Y: 16, Z: 16} // 16 KiB
	cache := NewStagingCache(3 * (cacheKey{dims: small}).bytes())
	fill := func(tag string) {
		src := cache.Wrap(NewFuncSource(tag, small, testField))
		dst := make([]float32, small.Voxels())
		if err := src.Fill(Region{Ext: small}, dst); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		fill(fmt.Sprintf("evict-%d", i))
	}
	st := cache.Stats()
	if st.BytesInUse > cache.Capacity() {
		t.Errorf("bytes in use %d over capacity %d", st.BytesInUse, cache.Capacity())
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	// LRU: the oldest entries were dropped, the newest survive.
	fill("evict-4")
	if st2 := cache.Stats(); st2.Hits != st.Hits+1 {
		t.Errorf("most recent entry was evicted (hits %d -> %d)", st.Hits, st2.Hits)
	}
	fill("evict-0")
	if st2 := cache.Stats(); st2.Materialisations != st.Materialisations+1 {
		t.Errorf("oldest entry should have been re-materialised")
	}

	// A source bigger than the whole budget bypasses the cache.
	huge := NewFuncSource("huge", Dims{X: 64, Y: 64, Z: 64}, testField)
	if s := cache.Wrap(huge); s != Source(huge) {
		t.Errorf("over-budget source should bypass the cache, got %T", s)
	}
	// Explicit opt-out.
	out := NewFuncSource("optout", small, testField)
	out.NoCache = true
	if s := cache.Wrap(out); s != Source(out) {
		t.Errorf("opted-out source should bypass the cache, got %T", s)
	}
	// Already-dense volumes pass through.
	vs := NewVolumeSource(New(small), "dense")
	if s := cache.Wrap(vs); s != Source(vs) {
		t.Errorf("VolumeSource should bypass the cache, got %T", s)
	}
	// Wrapping is idempotent.
	c1 := cache.Wrap(NewFuncSource("idem", small, testField))
	if c2 := cache.Wrap(c1); c2 != c1 {
		t.Errorf("re-wrapping a cached source should be a no-op")
	}
	// A disabled cache is the identity.
	var nilCache *StagingCache
	src := NewFuncSource("nilwrap", small, testField)
	if s := nilCache.Wrap(src); s != Source(src) {
		t.Error("nil cache should pass sources through")
	}
	if s := NewStagingCache(0).Wrap(src); s != Source(src) {
		t.Error("zero-capacity cache should pass sources through")
	}
}

// TestCacheHitSurvivesConcurrentEviction churns a capacity-one cache
// with two competing sources from many goroutines (run with -race): a
// hit whose entry is evicted mid-flight must still return the volume it
// found, never (nil, nil). Regression test for eviction mutating entries
// that concurrent hitters hold.
func TestCacheHitSurvivesConcurrentEviction(t *testing.T) {
	d := Dims{X: 8, Y: 8, Z: 8}
	cache := NewStagingCache((cacheKey{dims: d}).bytes()) // room for exactly one volume+macrocells entry
	g, err := MakeGrid(d, [3]int{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := cache.Wrap(NewFuncSource(fmt.Sprintf("churn-%d", w%2), d, testField))
			for i := 0; i < 200; i++ {
				bd, err := StageBrick(src, g.Bricks[i%2])
				if err != nil {
					errs <- err
					return
				}
				if bd.Sample(1, 1, 1) != bd.Sample(1, 1, 1) {
					errs <- fmt.Errorf("unstable sample")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Evictions == 0 {
		t.Error("churn produced no evictions; test is not exercising the race")
	}
}

// TestParseBytes covers the GVMR_STAGING_BYTES grammar, including the
// fail-safe rejection of garbage.
func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"off", 0, true},
		{" OFF ", 0, true},
		{"1024", 1024, true},
		{"2G", 2 << 30, true},
		{"2g", 2 << 30, true},
		{"512MiB", 512 << 20, true},
		{"3kb", 3 << 10, true},
		{"1T", 1 << 40, true},
		{"-1", 0, false},
		{"garbage", 0, false},
		{"2GG", 0, false},
		{"", 0, false},
		// Longest suffix must win deterministically: "1KiB" is 1 KiB, not
		// "1KI" + B or garbage.
		{"1KiB", 1 << 10, true},
		{"7GiB", 7 << 30, true},
		{"2TB", 2 << 40, true},
		{"5MB", 5 << 20, true},
		// Trailing or embedded garbage before the suffix is rejected.
		{"1GX", 0, false},
		{"1.5G", 0, false},
		{"+1G", 0, false},
		{"G", 0, false},
		{"KiB", 0, false},
		{"1 0K", 0, false},
		{"0x10", 0, false},
	}
	for _, c := range cases {
		got, ok := parseBytes(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseBytes(%q) = %d, %v; want %d, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// gateSource blocks inside Fill until released, so a test can hold a
// staging-cache materialisation (and its byte reservation) in flight for
// as long as it wants. With fails set, the materialisation errors after
// release.
type gateSource struct {
	*FuncSource
	startOnce sync.Once
	started   chan struct{} // closed when Fill begins
	release   chan struct{} // Fill blocks until this closes
	fails     bool
}

func newGateSource(tag string, d Dims, fails bool) *gateSource {
	return &gateSource{
		FuncSource: NewFuncSource(tag, d, testField),
		started:    make(chan struct{}),
		release:    make(chan struct{}),
		fails:      fails,
	}
}

func (s *gateSource) Fill(r Region, dst []float32) error {
	s.startOnce.Do(func() { close(s.started) })
	<-s.release
	if s.fails {
		return fmt.Errorf("synthetic materialisation failure")
	}
	return s.FuncSource.Fill(r, dst)
}

// TestCacheFallbackWhenBudgetInFlight pins the budget with an in-flight
// materialisation and checks the documented fallback: volumeFor reports
// ok=false (nothing is evicted — the reservation cannot be) and
// CachedSource.Fill serves the request through the underlying source's
// lazy per-region evaluation instead of materialising anything.
func TestCacheFallbackWhenBudgetInFlight(t *testing.T) {
	d := Dims{X: 8, Y: 8, Z: 8}
	cache := NewStagingCache((cacheKey{dims: d}).bytes()) // room for exactly one volume+macrocells entry
	gate := newGateSource("inflight-holder", d, false)
	leader := cache.Wrap(gate)
	leaderErr := make(chan error, 1)
	go func() {
		dst := make([]float32, d.Voxels())
		leaderErr <- leader.Fill(Region{Ext: d}, dst)
	}()
	<-gate.started // the reservation now holds the whole budget

	under := &countingSource{FuncSource: NewFuncSource("inflight-victim", d, testField)}
	victim := cache.Wrap(under)
	if _, ok := victim.(*CachedSource); !ok {
		t.Fatalf("Wrap returned %T, want *CachedSource", victim)
	}
	got := make([]float32, d.Voxels())
	if err := victim.Fill(Region{Ext: d}, got); err != nil {
		t.Fatal(err)
	}
	if n := under.fills.Load(); n != 1 {
		t.Errorf("underlying Fill called %d times, want 1 (lazy fallback)", n)
	}
	want := make([]float32, d.Voxels())
	if err := under.FuncSource.Fill(Region{Ext: d}, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("voxel %d: fallback %v != direct %v", i, got[i], want[i])
		}
	}
	st := cache.Stats()
	if st.Materialisations != 0 {
		t.Errorf("materialisations = %d, want 0 while the budget is held", st.Materialisations)
	}
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2", st.Misses)
	}

	close(gate.release)
	if err := <-leaderErr; err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Materialisations != 1 {
		t.Errorf("leader materialisations = %d, want 1", st.Materialisations)
	}
	// With the budget free again, the victim key materialises normally.
	if err := victim.Fill(Region{Ext: d}, got); err != nil {
		t.Fatal(err)
	}
	if n := under.fills.Load(); n != 2 {
		t.Errorf("underlying Fill called %d times, want 2 (one lazy, one materialise)", n)
	}
}

// TestCacheHitObservesFailedMaterialisation checks the concurrent-hitter
// contract on the failure path: a caller that found an in-flight entry
// waits on <-e.ready and then observes the materialisation error; the
// failed entry is not cached and a later request re-attempts.
func TestCacheHitObservesFailedMaterialisation(t *testing.T) {
	d := Dims{X: 8, Y: 8, Z: 8}
	cache := NewStagingCache(1 << 20)
	gate := newGateSource("fail-mat", d, true)
	src := cache.Wrap(gate)
	fill := func() error {
		dst := make([]float32, d.Voxels())
		return src.Fill(Region{Ext: d}, dst)
	}
	leaderErr := make(chan error, 1)
	go func() { leaderErr <- fill() }()
	<-gate.started
	hitterErr := make(chan error, 1)
	go func() { hitterErr <- fill() }() // finds the in-flight entry, waits on ready
	// Only release once the hitter has actually hit the in-flight entry
	// (it blocks on <-e.ready after bumping the counter), so the test
	// deterministically exercises the waiting-hitter path.
	for deadline := time.Now().Add(10 * time.Second); cache.Stats().Hits < 1; {
		if time.Now().After(deadline) {
			t.Fatal("hitter never found the in-flight entry")
		}
		time.Sleep(time.Millisecond)
	}

	close(gate.release)
	if err := <-leaderErr; err == nil {
		t.Fatal("leader saw no materialisation error")
	}
	if err := <-hitterErr; err == nil {
		t.Fatal("concurrent hitter saw no materialisation error")
	}
	st := cache.Stats()
	if st.Materialisations != 0 {
		t.Errorf("materialisations = %d, want 0 (failures are not cached)", st.Materialisations)
	}
	if st.BytesInUse != 0 {
		t.Errorf("bytes in use = %d after failed materialisation", st.BytesInUse)
	}
	// The failed entry is gone: a later request re-attempts (and fails
	// again, immediately, since release stays closed).
	if err := fill(); err == nil {
		t.Error("re-attempt unexpectedly succeeded")
	}
	if st := cache.Stats(); st.Misses < 2 {
		t.Errorf("misses = %d, want ≥ 2 (failed entry must not linger)", st.Misses)
	}
}

// TestCacheFlush drops entries and releases accounted bytes.
func TestCacheFlush(t *testing.T) {
	d := Dims{X: 8, Y: 8, Z: 8}
	cache := NewStagingCache(1 << 20)
	src := cache.Wrap(NewFuncSource("flush", d, testField))
	dst := make([]float32, d.Voxels())
	if err := src.Fill(Region{Ext: d}, dst); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.BytesInUse == 0 {
		t.Fatal("nothing cached")
	}
	cache.Flush()
	if st := cache.Stats(); st.BytesInUse != 0 {
		t.Errorf("bytes in use after flush = %d", st.BytesInUse)
	}
	// Still serves correctly after a flush (re-materialises).
	if err := src.Fill(Region{Ext: d}, dst); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Materialisations != 2 {
		t.Errorf("materialisations = %d, want 2", st.Materialisations)
	}
}
