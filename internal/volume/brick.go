package volume

import (
	"fmt"
	"sync"

	"gvmr/internal/vec"
)

// Brick is one piece of a bricked volume: a core region (the voxels this
// brick is responsible for rendering — cores tile the volume exactly) plus
// a ghost region padded by one voxel per face (clamped at the volume edge)
// so that trilinear samples taken inside the core never read outside the
// ghost data.
type Brick struct {
	ID     int
	Index  [3]int // grid coordinates
	Core   Region
	Ghost  Region
	Bounds vec.AABB // world-space bounds of the core region
}

// Bytes returns the ghost-region storage footprint (what must fit in VRAM).
func (b Brick) Bytes() int64 { return b.Ghost.Ext.Bytes() }

// Grid is a brick decomposition of a volume.
type Grid struct {
	VolDims Dims
	Space   Space
	Counts  [3]int
	Bricks  []Brick
}

// NumBricks returns the total brick count.
func (g *Grid) NumBricks() int { return len(g.Bricks) }

// MaxBrickBytes returns the largest ghost-region footprint in the grid.
func (g *Grid) MaxBrickBytes() int64 {
	var m int64
	for _, b := range g.Bricks {
		if n := b.Bytes(); n > m {
			m = n
		}
	}
	return m
}

// axisSplit returns the boundary of span i of n near-equal splits of length.
func axisSplit(length, n, i int) int { return length * i / n }

// MakeGrid decomposes a volume into counts[0]×counts[1]×counts[2] bricks
// with near-equal core extents and one-voxel ghost layers.
func MakeGrid(d Dims, counts [3]int) (*Grid, error) {
	dims := [3]int{d.X, d.Y, d.Z}
	for a := 0; a < 3; a++ {
		if counts[a] < 1 || counts[a] > dims[a] {
			return nil, fmt.Errorf("volume: brick count %v invalid for dims %v", counts, d)
		}
	}
	sp := NewSpace(d)
	g := &Grid{VolDims: d, Space: sp, Counts: counts}
	id := 0
	for kz := 0; kz < counts[2]; kz++ {
		for ky := 0; ky < counts[1]; ky++ {
			for kx := 0; kx < counts[0]; kx++ {
				idx := [3]int{kx, ky, kz}
				var org, end [3]int
				for a := 0; a < 3; a++ {
					org[a] = axisSplit(dims[a], counts[a], idx[a])
					end[a] = axisSplit(dims[a], counts[a], idx[a]+1)
				}
				core := Region{
					Org: org,
					Ext: Dims{end[0] - org[0], end[1] - org[1], end[2] - org[2]},
				}
				var gorg, gend [3]int
				for a := 0; a < 3; a++ {
					gorg[a] = max(0, org[a]-1)
					gend[a] = min(dims[a], end[a]+1)
				}
				ghost := Region{
					Org: gorg,
					Ext: Dims{gend[0] - gorg[0], gend[1] - gorg[1], gend[2] - gorg[2]},
				}
				g.Bricks = append(g.Bricks, Brick{
					ID:     id,
					Index:  idx,
					Core:   core,
					Ghost:  ghost,
					Bounds: sp.RegionBounds(core),
				})
				id++
			}
		}
	}
	return g, nil
}

// FactorBricks chooses a near-cubic 3D factorisation of n bricks for a
// volume of dims d: among all (a,b,c) with a·b·c == n it minimises the
// aspect ratio of the resulting brick extents, so bricks stay close to
// cubes even for anisotropic volumes such as the 512×512×2048 plume.
func FactorBricks(d Dims, n int) [3]int {
	if n < 1 {
		n = 1
	}
	best := [3]int{1, 1, n}
	bestScore := factorScore(d, best)
	for a := 1; a <= n; a++ {
		if n%a != 0 {
			continue
		}
		rem := n / a
		for b := 1; b <= rem; b++ {
			if rem%b != 0 {
				continue
			}
			c := rem / b
			cand := [3]int{a, b, c}
			if a > d.X || b > d.Y || c > d.Z {
				continue
			}
			if s := factorScore(d, cand); s < bestScore {
				bestScore = s
				best = cand
			}
		}
	}
	return best
}

// factorScore is the max/min aspect ratio of brick extents; lower is better.
func factorScore(d Dims, c [3]int) float64 {
	ex := float64(d.X) / float64(c[0])
	ey := float64(d.Y) / float64(c[1])
	ez := float64(d.Z) / float64(c[2])
	lo := min(ex, min(ey, ez))
	hi := max(ex, max(ey, ez))
	if lo <= 0 {
		return 1e18
	}
	return hi / lo
}

// BrickData is a brick's ghost-region voxel data, materialised for upload
// to a (simulated) GPU 3D texture. It is either copy-backed (Data holds
// the ghost region) or view-backed (full/fullDims reference a dense
// volume, the staging cache's zero-copy path); both sample identically.
type BrickData struct {
	Brick Brick
	Data  []float32 // ghost region, x-fastest; nil when view-backed
	// View backing: the whole volume's data, indexed through the ghost
	// region. Sampling arithmetic is bit-identical to the copied layout.
	full     []float32
	fullDims Dims

	// mc is the macrocell min/max summary used for empty-space skipping:
	// the shared whole-volume grid for view-backed bricks, a private
	// ghost-region grid for copy-backed ones. Constructors install a
	// build function and Cells() runs it at most once, on first use —
	// renders with skipping disabled never pay the build. Nil mcFn and
	// nil mc (literal-built bricks) disable skipping.
	mcOnce sync.Once
	mcFn   func() *Macrocells
	mc     *Macrocells

	// Hoisted sampler state: the backing selection and the ghost origin
	// as floats, precomputed once per brick so Sample (and the 6-fetch
	// shading stencil) is a single trilinearAt call instead of re-deriving
	// them per fetch.
	smpData          []float32
	smpDims          Dims
	smpReg           Region
	orgX, orgY, orgZ float32

	// empty marks a payload-free brick proven invisible before staging
	// (see EmptyBrickData): it carries no voxel data, costs no upload
	// bytes, and its macrocells declare every cell skippable, so the
	// renderer's empty-space leap never asks it for a sample.
	empty bool
}

// initSampler precomputes the backing selection and origin floats Sample
// uses; constructors call it once per brick.
func (bd *BrickData) initSampler() {
	o := bd.Brick.Ghost.Org
	bd.orgX, bd.orgY, bd.orgZ = float32(o[0]), float32(o[1]), float32(o[2])
	if bd.full != nil {
		bd.smpData, bd.smpDims, bd.smpReg = bd.full, bd.fullDims, bd.Brick.Ghost
	} else {
		bd.smpData, bd.smpDims, bd.smpReg = bd.Data, bd.Brick.Ghost.Ext, Region{Ext: bd.Brick.Ghost.Ext}
	}
}

// Cells returns the brick's macrocell summary grid, building it on
// first use (safe for concurrent callers), or nil for bricks
// constructed as bare literals.
func (bd *BrickData) Cells() *Macrocells {
	if bd.mcFn != nil {
		bd.mcOnce.Do(func() { bd.mc = bd.mcFn() })
	}
	return bd.mc
}

// Bytes returns the ghost-region payload size regardless of backing: the
// held data for copy-backed bricks, the ghost extent for views, zero for
// payload-free empty bricks.
func (bd *BrickData) Bytes() int64 {
	if bd.empty {
		return 0
	}
	if bd.Data != nil {
		return int64(len(bd.Data)) * 4
	}
	return bd.Brick.Bytes()
}

// Empty reports whether this is a payload-free brick built by
// EmptyBrickData.
func (bd *BrickData) Empty() bool { return bd.empty }

// EmptyBrickData builds a payload-free BrickData for a brick whose
// samples are all provably within [lo, hi] and whose transfer function
// maps that whole range to zero opacity. It carries the standard
// macrocell grid shape for the ghost region — the renderer's two-level
// DDA computes cell exit planes from real cell geometry, so the grid must
// look normal — but every cell holds the constant range [lo, hi], which
// the occupancy query marks empty. Rays therefore leap the brick without
// ever calling Sample (which has no data to serve and would panic — by
// design: a non-empty query here is an invariant breach, not a rendering
// path).
func EmptyBrickData(b Brick, lo, hi float32) *BrickData {
	cells := macrocellCounts(b.Ghost.Ext)
	n := int(cells.Voxels())
	mc := &Macrocells{
		Org:   b.Ghost.Org,
		Vox:   b.Ghost.Ext,
		Cells: cells,
		Min:   make([]float32, n),
		Max:   make([]float32, n),
	}
	for i := 0; i < n; i++ {
		mc.Min[i], mc.Max[i] = lo, hi
	}
	return &BrickData{Brick: b, mc: mc, empty: true}
}

// FillBrick materialises a brick's ghost region from a source. The
// brick-private macrocell summary (one extra pass over the ghost data,
// far cheaper than producing it) is built lazily by Cells(), so renders
// that never skip never pay for it.
func FillBrick(src Source, b Brick) (*BrickData, error) {
	bd := &BrickData{Brick: b, Data: make([]float32, b.Ghost.Ext.Voxels())}
	if err := src.Fill(b.Ghost, bd.Data); err != nil {
		return nil, err
	}
	bd.mcFn = func() *Macrocells { return BuildMacrocells(bd.Data, b.Ghost.Ext, b.Ghost.Org) }
	bd.initSampler()
	return bd, nil
}

// ViewBrick returns a BrickData that samples the brick's ghost region
// directly out of a dense volume without copying it. All views of one
// volume share its memoised whole-volume macrocell grid, built on the
// first Cells() call across all of them.
func ViewBrick(v *Volume, b Brick) *BrickData {
	bd := &BrickData{Brick: b, full: v.Data, fullDims: v.Dims, mcFn: v.Macrocells}
	bd.initSampler()
	return bd
}

// StageBrick materialises a brick's ghost region from a source like
// FillBrick, but serves a zero-copy view when the source is backed by a
// dense volume — a staging-cached source (materialising it on first use)
// or an in-memory VolumeSource. The render path stages bricks through
// this: with the cache warm, staging allocates and copies nothing. If
// the cache budget is saturated by in-flight work, it falls back to the
// lazy per-brick fill.
func StageBrick(src Source, b Brick) (*BrickData, error) {
	switch s := src.(type) {
	case *CachedSource:
		v, ok, err := s.cache.volumeFor(s.src)
		if err != nil {
			return nil, err
		}
		if !ok {
			return FillBrick(s.src, b)
		}
		return viewBrickChecked(v, b)
	case *VolumeSource:
		return viewBrickChecked(s.V, b)
	}
	return FillBrick(src, b)
}

// brickSkipNoter is the optional hook a source can implement to count
// bricks that staging proved empty without touching it.
type brickSkipNoter interface{ NoteBrickSkip() }

// StageBrickSkip stages a brick like StageBrick, except that when the
// source can bound the brick's sample values without reading them
// (RangedSource — the v2 pager's persisted per-brick min/max) and
// tfEmpty proves that whole range invisible under the active transfer
// function, it returns a payload-free empty brick instead: no disk I/O,
// no staging-cache traffic, no upload bytes. tfEmpty == nil (skipping
// disabled, or no transfer function) always takes the ordinary path.
func StageBrickSkip(src Source, b Brick, tfEmpty func(lo, hi float32) bool) (*BrickData, error) {
	if tfEmpty != nil {
		if rs, ok := src.(RangedSource); ok {
			// Bound the ghost region, not just the core: trilinear fetches
			// clamp into the sampled region, so the ghost range bounds
			// every value a sample inside this brick can see.
			if lo, hi, known := rs.RegionRange(b.Ghost); known && lo <= hi && tfEmpty(lo, hi) {
				if n, ok := src.(brickSkipNoter); ok {
					n.NoteBrickSkip()
				}
				return EmptyBrickData(b, lo, hi), nil
			}
		}
	}
	return StageBrick(src, b)
}

// viewBrickChecked validates the ghost region against the volume before
// building a view, matching the stage-time error FillBrick would have
// returned (instead of an index panic at sample time).
func viewBrickChecked(v *Volume, b Brick) (*BrickData, error) {
	if err := checkRegion(v.Dims, b.Ghost, int(b.Ghost.Ext.Voxels())); err != nil {
		return nil, err
	}
	return ViewBrick(v, b), nil
}

// Sample trilinearly interpolates at the continuous *volume* voxel-space
// position (px,py,pz). For positions inside the brick core this returns
// exactly the same value as Volume.Sample on the full volume — the ghost
// layer guarantees it (see tests). The backing selection and ghost-origin
// floats are hoisted into initSampler by the constructors, so the hot
// path (this is called up to 7× per contributing sample, counting the
// shading stencil) is one trilinearAt call. Bricks built as bare
// literals take the slow branch, which derives the same values per call
// instead of caching them — Sample must stay write-free so concurrent
// sampling is race-free on any brick.
func (bd *BrickData) Sample(px, py, pz float32) float32 {
	if bd.smpData == nil {
		o := bd.Brick.Ghost.Org
		lx := px - float32(o[0])
		ly := py - float32(o[1])
		lz := pz - float32(o[2])
		if bd.full != nil {
			return trilinearAt(bd.full, bd.fullDims, bd.Brick.Ghost, lx, ly, lz)
		}
		return trilinearAt(bd.Data, bd.Brick.Ghost.Ext, Region{Ext: bd.Brick.Ghost.Ext}, lx, ly, lz)
	}
	return trilinearAt(bd.smpData, bd.smpDims, bd.smpReg, px-bd.orgX, py-bd.orgY, pz-bd.orgZ)
}
