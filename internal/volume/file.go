package volume

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync/atomic"
)

// File format v1: a minimal header followed by raw little-endian float32
// samples, x-fastest. This stands in for the paper's pre-bricked volume
// files on the cluster's disks and backs the out-of-core path. The
// bricked, demand-paged v2 format lives in filev2.go.
const (
	fileMagic      = "GVMR"
	fileVersion    = uint32(1)
	fileHeaderSize = 4 + 4 + 3*8 // magic + version + dims
)

// maxFileDim bounds a single axis read from a file header. Headers are
// untrusted input: a dim must survive the uint64→int conversion on every
// platform and keep X*Y*Z*4 computable in int64 without overflow.
const maxFileDim = 1 << 31

// fileWriter is the destination contract of the volume writers: a data
// sink whose Sync and Close errors are the last chance to learn that a
// write was silently lost (*os.File satisfies it; tests inject failures).
type fileWriter interface {
	io.Writer
	io.WriterAt
	Sync() error
	Close() error
}

// finishFile completes a volume write: if the body succeeded, sync the
// file to stable storage and close it, reporting the first error. A
// failed close can mean a truncated volume on disk, so its error must
// reach the caller instead of vanishing in a defer.
func finishFile(f fileWriter, err error) error {
	if err != nil {
		f.Close() // best-effort; the write error is the primary failure
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFile streams a source to a v1 (flat) volume file at path, slab by
// slab, so even 1024³ volumes can be written without materialising them.
// WriteFileV2 is the bricked format the demand pager reads.
func WriteFile(path string, src Source) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return finishFile(f, writeFileV1(f, src))
}

// writeFileV1 writes the flat format body to f.
func writeFileV1(f io.Writer, src Source) error {
	w := bufio.NewWriterSize(f, 1<<20)
	d := src.Dims()
	if _, err := w.WriteString(fileMagic); err != nil {
		return err
	}
	hdr := make([]byte, 4+3*8)
	binary.LittleEndian.PutUint32(hdr[0:], fileVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(d.X))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(d.Y))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(d.Z))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	slab := make([]float32, int64(d.X)*int64(d.Y))
	buf := make([]byte, len(slab)*4)
	for z := 0; z < d.Z; z++ {
		r := Region{Org: [3]int{0, 0, z}, Ext: Dims{d.X, d.Y, 1}}
		if err := src.Fill(r, slab); err != nil {
			return err
		}
		for i, s := range slab {
			binary.LittleEndian.PutUint32(buf[i*4:], floatBits(s))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Flush()
}

// FileSource reads regions from a v1 volume file with positioned reads,
// without loading the whole volume.
type FileSource struct {
	f     *os.File
	path  string
	dims  Dims
	reads atomic.Int64
}

// decodeDims reads and bounds the three uint64 dims at hdr (24 bytes).
// Header dims are untrusted; anything outside [1, maxFileDim] is hostile
// or corrupt, and rejecting it here keeps all later size arithmetic
// overflow-free.
func decodeDims(hdr []byte) (Dims, error) {
	var u [3]uint64
	for a := 0; a < 3; a++ {
		u[a] = binary.LittleEndian.Uint64(hdr[a*8:])
		if u[a] == 0 || u[a] > maxFileDim {
			return Dims{}, fmt.Errorf("dim %d out of range [1, %d]", u[a], int64(maxFileDim))
		}
	}
	return Dims{X: int(u[0]), Y: int(u[1]), Z: int(u[2])}, nil
}

// v1FileSize returns the exact byte size of a v1 file holding dims d, or
// ok == false when the product overflows int64 (hostile header).
func v1FileSize(d Dims) (int64, bool) {
	vox := int64(d.X) * int64(d.Y)
	if vox > math.MaxInt64/int64(d.Z) {
		return 0, false
	}
	vox *= int64(d.Z)
	if vox > (math.MaxInt64-fileHeaderSize)/4 {
		return 0, false
	}
	return fileHeaderSize + vox*4, true
}

// OpenFile opens a v1 volume file as a Source. The header is validated
// against the actual file size at open, so truncated or hostile files
// fail here with one clear error instead of mid-render with a confusing
// per-read failure. OpenVolume auto-detects the version.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, fileHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("volume: reading header of %s: %w", path, err)
	}
	if string(hdr[:4]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("volume: %s is not a GVMR volume file", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != fileVersion {
		f.Close()
		return nil, fmt.Errorf("volume: %s has unsupported version %d", path, v)
	}
	d, err := decodeDims(hdr[8:])
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("volume: %s has invalid dims: %w", path, err)
	}
	want, ok := v1FileSize(d)
	if !ok {
		f.Close()
		return nil, fmt.Errorf("volume: %s dims %v overflow the addressable size", path, d)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("volume: stat %s: %w", path, err)
	}
	if fi.Size() != want {
		f.Close()
		return nil, fmt.Errorf("volume: %s is %d bytes, header dims %v require exactly %d",
			path, fi.Size(), d, want)
	}
	return &FileSource{f: f, path: path, dims: d}, nil
}

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }

// Name implements Source.
func (s *FileSource) Name() string { return s.path }

// Dims implements Source.
func (s *FileSource) Dims() Dims { return s.dims }

// Reads returns the number of positioned reads issued so far (the
// coalescing benchmark's figure of merit).
func (s *FileSource) Reads() int64 { return s.reads.Load() }

// Fill implements Source. Contiguous row runs are coalesced into single
// positioned reads: a full-width region reads one run per z-slab, and a
// full-width, full-height region reads the whole span in one call —
// turning the per-row syscall storm of a brick stage into a handful of
// large sequential reads.
func (s *FileSource) Fill(r Region, dst []float32) error {
	if err := checkRegion(s.dims, r, len(dst)); err != nil {
		return err
	}
	readRun := func(off int64, vox int, di int) error {
		buf := make([]byte, vox*4)
		if _, err := s.f.ReadAt(buf, off); err != nil {
			return fmt.Errorf("volume: reading %s: %w", s.path, err)
		}
		s.reads.Add(1)
		for i := 0; i < vox; i++ {
			dst[di+i] = bitsFloat(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		return nil
	}
	offAt := func(x, y, z int) int64 {
		return int64(fileHeaderSize) +
			((int64(z)*int64(s.dims.Y)+int64(y))*int64(s.dims.X)+int64(x))*4
	}
	e := r.End()
	fullX := r.Org[0] == 0 && r.Ext.X == s.dims.X
	fullY := r.Org[1] == 0 && r.Ext.Y == s.dims.Y
	switch {
	case fullX && fullY:
		return readRun(offAt(0, 0, r.Org[2]), len(dst), 0)
	case fullX:
		vox := r.Ext.X * r.Ext.Y
		di := 0
		for z := r.Org[2]; z < e[2]; z++ {
			if err := readRun(offAt(0, r.Org[1], z), vox, di); err != nil {
				return err
			}
			di += vox
		}
		return nil
	}
	rowBytes := r.Ext.X * 4
	buf := make([]byte, rowBytes)
	di := 0
	for z := r.Org[2]; z < e[2]; z++ {
		for y := r.Org[1]; y < e[1]; y++ {
			if _, err := s.f.ReadAt(buf, offAt(r.Org[0], y, z)); err != nil {
				return fmt.Errorf("volume: reading %s: %w", s.path, err)
			}
			s.reads.Add(1)
			for i := 0; i < r.Ext.X; i++ {
				dst[di+i] = bitsFloat(binary.LittleEndian.Uint32(buf[i*4:]))
			}
			di += r.Ext.X
		}
	}
	return nil
}
