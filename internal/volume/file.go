package volume

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// File format: a minimal header followed by raw little-endian float32
// samples, x-fastest. This stands in for the paper's pre-bricked volume
// files on the cluster's disks and backs the out-of-core path.
const (
	fileMagic      = "GVMR"
	fileVersion    = uint32(1)
	fileHeaderSize = 4 + 4 + 3*8 // magic + version + dims
)

// WriteFile streams a source to a volume file at path, slab by slab, so
// even 1024³ volumes can be written without materialising them.
func WriteFile(path string, src Source) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	d := src.Dims()
	if _, err := w.WriteString(fileMagic); err != nil {
		return err
	}
	hdr := make([]byte, 4+3*8)
	binary.LittleEndian.PutUint32(hdr[0:], fileVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(d.X))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(d.Y))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(d.Z))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	slab := make([]float32, int64(d.X)*int64(d.Y))
	buf := make([]byte, len(slab)*4)
	for z := 0; z < d.Z; z++ {
		r := Region{Org: [3]int{0, 0, z}, Ext: Dims{d.X, d.Y, 1}}
		if err := src.Fill(r, slab); err != nil {
			return err
		}
		for i, s := range slab {
			binary.LittleEndian.PutUint32(buf[i*4:], floatBits(s))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Flush()
}

// FileSource reads regions from a volume file with positioned reads,
// without loading the whole volume.
type FileSource struct {
	f    *os.File
	path string
	dims Dims
}

// OpenFile opens a volume file as a Source.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, fileHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("volume: reading header of %s: %w", path, err)
	}
	if string(hdr[:4]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("volume: %s is not a GVMR volume file", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != fileVersion {
		f.Close()
		return nil, fmt.Errorf("volume: %s has unsupported version %d", path, v)
	}
	d := Dims{
		X: int(binary.LittleEndian.Uint64(hdr[8:])),
		Y: int(binary.LittleEndian.Uint64(hdr[16:])),
		Z: int(binary.LittleEndian.Uint64(hdr[24:])),
	}
	if d.X <= 0 || d.Y <= 0 || d.Z <= 0 {
		f.Close()
		return nil, fmt.Errorf("volume: %s has invalid dims %v", path, d)
	}
	return &FileSource{f: f, path: path, dims: d}, nil
}

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }

// Name implements Source.
func (s *FileSource) Name() string { return s.path }

// Dims implements Source.
func (s *FileSource) Dims() Dims { return s.dims }

// Fill implements Source using one positioned read per contiguous row run.
func (s *FileSource) Fill(r Region, dst []float32) error {
	if err := checkRegion(s.dims, r, len(dst)); err != nil {
		return err
	}
	e := r.End()
	rowBytes := r.Ext.X * 4
	buf := make([]byte, rowBytes)
	di := 0
	for z := r.Org[2]; z < e[2]; z++ {
		for y := r.Org[1]; y < e[1]; y++ {
			off := int64(fileHeaderSize) +
				((int64(z)*int64(s.dims.Y)+int64(y))*int64(s.dims.X)+int64(r.Org[0]))*4
			if _, err := s.f.ReadAt(buf, off); err != nil {
				return fmt.Errorf("volume: reading %s: %w", s.path, err)
			}
			for i := 0; i < r.Ext.X; i++ {
				dst[di+i] = bitsFloat(binary.LittleEndian.Uint32(buf[i*4:]))
			}
			di += r.Ext.X
		}
	}
	return nil
}
