package membership

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually-advanced clock for lease tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testRegistry(t *testing.T) (*Registry, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	return New(Config{HeartbeatInterval: time.Second, MissLimit: 3, Now: clk.Now}), clk
}

func register(t *testing.T, r *Registry, addr, instance string) RegisterResponse {
	t.Helper()
	resp, err := r.Register(RegisterRequest{Addr: addr, Instance: instance,
		Capacity: Capacity{DeviceWorkers: 4, StagingBytes: 1 << 20}})
	if err != nil {
		t.Fatalf("Register(%s): %v", addr, err)
	}
	return resp
}

func TestRegisterAssignsLeaseTerms(t *testing.T) {
	r, _ := testRegistry(t)
	resp := register(t, r, "127.0.0.1:9001", "inst-a")
	if resp.State != StateAlive {
		t.Fatalf("state = %q, want alive", resp.State)
	}
	if resp.HeartbeatMillis != 1000 || resp.MissLimit != 3 {
		t.Fatalf("lease terms = %d ms × %d, want 1000 × 3", resp.HeartbeatMillis, resp.MissLimit)
	}
	snap := r.Snapshot()
	if len(snap.Members) != 1 || snap.Members[0].Addr != "http://127.0.0.1:9001" {
		t.Fatalf("snapshot = %+v, want one normalized member", snap.Members)
	}
	if got := snap.Eligible(); len(got) != 1 {
		t.Fatalf("eligible = %v, want the registered member", got)
	}
	if snap.Members[0].Capacity.DeviceWorkers != 4 {
		t.Fatalf("capacity not recorded: %+v", snap.Members[0].Capacity)
	}
}

func TestLeaseExpiryEvicts(t *testing.T) {
	r, clk := testRegistry(t)
	register(t, r, "127.0.0.1:9001", "inst-a")

	// Delayed-but-within-lease heartbeats keep the member alive: 2.5s
	// between beats is past two intervals but inside the 3-miss TTL.
	clk.Advance(2500 * time.Millisecond)
	if _, err := r.Heartbeat(HeartbeatRequest{Addr: "127.0.0.1:9001", Instance: "inst-a"}); err != nil {
		t.Fatalf("delayed heartbeat rejected: %v", err)
	}
	if got := r.Snapshot().Eligible(); len(got) != 1 {
		t.Fatalf("delayed-but-live member evicted: eligible = %v", got)
	}

	// Silence past TTL (3×1s) evicts; the next beat is rejected with
	// ErrUnknownMember so the agent knows to re-register.
	clk.Advance(3100 * time.Millisecond)
	if got := r.Snapshot().Eligible(); len(got) != 0 {
		t.Fatalf("dead member still eligible: %v", got)
	}
	_, err := r.Heartbeat(HeartbeatRequest{Addr: "127.0.0.1:9001", Instance: "inst-a"})
	if !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("post-eviction heartbeat err = %v, want ErrUnknownMember", err)
	}
	st := r.Stats()
	if st.Evictions != 1 || st.RejectedBeats != 1 {
		t.Fatalf("evictions=%d rejected=%d, want 1 and 1", st.Evictions, st.RejectedBeats)
	}

	// Re-registration after eviction rejoins live.
	register(t, r, "127.0.0.1:9001", "inst-a2")
	if got := r.Snapshot().Eligible(); len(got) != 1 {
		t.Fatalf("re-registered member not eligible: %v", got)
	}
	st = r.Stats()
	if st.Joins != 1 || st.Rejoins != 1 {
		t.Fatalf("joins=%d rejoins=%d, want 1 and 1", st.Joins, st.Rejoins)
	}
}

func TestDrainStateMachine(t *testing.T) {
	r, _ := testRegistry(t)
	register(t, r, "127.0.0.1:9001", "inst-a")
	register(t, r, "127.0.0.1:9002", "inst-b")

	if err := r.Drain("127.0.0.1:9001"); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Draining members keep their lease but leave the eligible set.
	snap := r.Snapshot()
	if got := snap.Eligible(); len(got) != 1 || got[0] != "http://127.0.0.1:9002" {
		t.Fatalf("eligible after drain = %v, want only 9002", got)
	}
	if len(snap.Members) != 2 {
		t.Fatalf("draining member dropped from snapshot: %+v", snap.Members)
	}
	// The next heartbeat tells the worker it is draining.
	hb, err := r.Heartbeat(HeartbeatRequest{Addr: "127.0.0.1:9001", Instance: "inst-a"})
	if err != nil || hb.State != StateDraining {
		t.Fatalf("heartbeat while draining = (%+v, %v), want draining state", hb, err)
	}
	// Draining again is a no-op (idempotent drain ack).
	if err := r.Drain("127.0.0.1:9001"); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	if st := r.Stats(); st.Drains != 1 || st.Draining != 1 || st.Alive != 1 {
		t.Fatalf("stats = drains:%d draining:%d alive:%d, want 1/1/1", st.Drains, st.Draining, st.Alive)
	}
	// Re-registering returns the member to alive (operator brought it back).
	register(t, r, "127.0.0.1:9001", "inst-a2")
	if got := r.Snapshot().Eligible(); len(got) != 2 {
		t.Fatalf("eligible after re-register = %v, want both", got)
	}
	// Draining an unknown member errors.
	if err := r.Drain("127.0.0.1:9999"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("Drain(unknown) = %v, want ErrUnknownMember", err)
	}
}

func TestStaleInstanceFencing(t *testing.T) {
	r, _ := testRegistry(t)
	register(t, r, "127.0.0.1:9001", "old-incarnation")
	register(t, r, "127.0.0.1:9001", "new-incarnation") // restart wins

	// The old incarnation can neither refresh the lease...
	_, err := r.Heartbeat(HeartbeatRequest{Addr: "127.0.0.1:9001", Instance: "old-incarnation"})
	if !errors.Is(err, ErrStaleInstance) {
		t.Fatalf("stale heartbeat err = %v, want ErrStaleInstance", err)
	}
	// ...nor remove its replacement.
	if err := r.Deregister("127.0.0.1:9001", "old-incarnation"); !errors.Is(err, ErrStaleInstance) {
		t.Fatalf("stale deregister err = %v, want ErrStaleInstance", err)
	}
	if got := r.Snapshot().Eligible(); len(got) != 1 {
		t.Fatalf("current incarnation lost its lease: %v", got)
	}
	// The current incarnation beats fine.
	if _, err := r.Heartbeat(HeartbeatRequest{Addr: "127.0.0.1:9001", Instance: "new-incarnation"}); err != nil {
		t.Fatalf("current heartbeat: %v", err)
	}
	// And deregisters fine; retrying the removal is a no-op, not an error.
	if err := r.Deregister("127.0.0.1:9001", "new-incarnation"); err != nil {
		t.Fatalf("deregister: %v", err)
	}
	if err := r.Deregister("127.0.0.1:9001", "new-incarnation"); err != nil {
		t.Fatalf("repeated deregister: %v", err)
	}
	if got := r.Snapshot().Members; len(got) != 0 {
		t.Fatalf("members after deregister = %+v, want none", got)
	}
}

func TestStaticMembersNeverExpire(t *testing.T) {
	r, clk := testRegistry(t)
	if err := r.AddStatic([]string{"127.0.0.1:9001", "127.0.0.1:9002"}); err != nil {
		t.Fatalf("AddStatic: %v", err)
	}
	register(t, r, "127.0.0.1:9003", "inst-c")

	clk.Advance(time.Hour) // far past any lease
	got := r.Snapshot().Eligible()
	if len(got) != 2 {
		t.Fatalf("eligible after an hour = %v, want the two static members", got)
	}
	// Static members can still be drained like any other.
	if err := r.Drain("127.0.0.1:9001"); err != nil {
		t.Fatalf("drain static: %v", err)
	}
	if got := r.Snapshot().Eligible(); len(got) != 1 || got[0] != "http://127.0.0.1:9002" {
		t.Fatalf("eligible after static drain = %v", got)
	}
	// AddStatic is idempotent.
	if err := r.AddStatic([]string{"127.0.0.1:9002"}); err != nil {
		t.Fatalf("repeated AddStatic: %v", err)
	}
	if n := len(r.Snapshot().Members); n != 2 {
		t.Fatalf("members = %d, want 2", n)
	}
}

func TestVersionSemantics(t *testing.T) {
	r, _ := testRegistry(t)
	v0 := r.Snapshot().Version

	register(t, r, "127.0.0.1:9001", "inst-a")
	v1 := r.Snapshot().Version
	if v1 == v0 {
		t.Fatal("join did not bump version")
	}
	// Heartbeats refresh the lease but never bump the version — the
	// placement ring cache is keyed on it.
	for i := 0; i < 5; i++ {
		if _, err := r.Heartbeat(HeartbeatRequest{Addr: "127.0.0.1:9001", Instance: "inst-a",
			Load: Load{InFlight: i}}); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	if v := r.Snapshot().Version; v != v1 {
		t.Fatalf("heartbeat bumped version %d -> %d", v1, v)
	}
	// Re-registering the same incarnation while alive is lease-refresh
	// only: no state change, no version bump.
	register(t, r, "127.0.0.1:9001", "inst-a")
	if v := r.Snapshot().Version; v != v1 {
		t.Fatalf("no-op re-register bumped version %d -> %d", v1, v)
	}
	if err := r.Drain("127.0.0.1:9001"); err != nil {
		t.Fatal(err)
	}
	v2 := r.Snapshot().Version
	if v2 == v1 {
		t.Fatal("drain did not bump version")
	}
	if err := r.Deregister("127.0.0.1:9001", ""); err != nil {
		t.Fatal(err)
	}
	if v := r.Snapshot().Version; v == v2 {
		t.Fatal("deregister did not bump version")
	}
}

func TestHeartbeatRecordsLoad(t *testing.T) {
	r, _ := testRegistry(t)
	register(t, r, "127.0.0.1:9001", "inst-a")
	if _, err := r.Heartbeat(HeartbeatRequest{Addr: "127.0.0.1:9001", Instance: "inst-a",
		Load: Load{InFlight: 2, QueueDepth: 7, MapJobs: 41}}); err != nil {
		t.Fatal(err)
	}
	m := r.Snapshot().Members[0]
	if m.Load.InFlight != 2 || m.Load.QueueDepth != 7 || m.Load.MapJobs != 41 {
		t.Fatalf("load = %+v, want the heartbeat's snapshot", m.Load)
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	r, _ := testRegistry(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addr := "127.0.0.1:900" + string(rune('0'+i))
			for j := 0; j < 50; j++ {
				_, _ = r.Register(RegisterRequest{Addr: addr, Instance: "inst"})
				_, _ = r.Heartbeat(HeartbeatRequest{Addr: addr, Instance: "inst"})
				_ = r.Snapshot()
				_ = r.Stats()
				if j%10 == 9 {
					_ = r.Drain(addr)
				}
			}
		}(i)
	}
	wg.Wait()
}
