// Package membership makes cluster membership a first-class, fault-
// tolerant subsystem: workers self-register with a coordinator's
// Registry, maintain liveness with periodic heartbeats carrying load, and
// leave either gracefully (drain, then deregister) or by lease expiry
// after a configured number of missed beats.
//
// The Registry is the coordinator's authoritative view of the fleet. The
// placement layer (internal/dist) consults Registry.Snapshot at every
// placement decision: alive members are eligible for new map batches,
// draining members finish their in-flight work but receive no new
// placements, and evicted members disappear from the ring entirely. The
// Agent is the worker side: it registers, beats on the lease interval the
// registry assigns, re-registers automatically after an eviction, and
// exposes drain/deregister for graceful shutdown (cmd/gvmrd wires SIGTERM
// to exactly that sequence).
//
// Membership changes may move bricks between nodes but can never change
// the rendered image — fragment stripes are canonical per brick
// (DESIGN.md §9), so the bit-identity oracle survives churn; the
// membership chaos battery in internal/dist asserts it against the
// committed golden digests.
package membership

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a member's position in the lease state machine.
type State string

// Member states. There is no explicit "evicted" state: eviction removes
// the member from the registry (its next heartbeat is rejected with
// ErrUnknownMember, telling the agent to re-register).
const (
	// StateAlive members are eligible for new placements.
	StateAlive State = "alive"
	// StateDraining members finish in-flight work but receive no new
	// placements; the drain acknowledgment (the Drain call returning) is
	// the cut-over point.
	StateDraining State = "draining"
)

// Capacity is what a worker advertises at registration time.
type Capacity struct {
	// DeviceWorkers is the node's concurrent render/map capacity.
	DeviceWorkers int `json:"device_workers"`
	// StagingBytes is the node's volume staging-cache budget.
	StagingBytes int64 `json:"staging_bytes"`
}

// Load is the /stats-style load snapshot a heartbeat carries.
type Load struct {
	InFlight   int   `json:"in_flight"`
	QueueDepth int   `json:"queue_depth"`
	MapJobs    int64 `json:"map_jobs"`
	// Pressure is the node's admission-queue fill fraction in [0, 1]:
	// the load-aware shed hint. At 1 the node's next admission is a
	// near-certain 429, so coordinators place work there only as a last
	// resort until a fresher heartbeat reports headroom. Omitted (zero)
	// by workers predating the field — absent pressure never excludes a
	// node.
	Pressure float64 `json:"pressure,omitempty"`
}

// Registry errors.
var (
	// ErrUnknownMember: the addressed member is not registered (never
	// was, was evicted, or deregistered). Agents re-register on it.
	ErrUnknownMember = errors.New("membership: unknown member")
	// ErrStaleInstance: the request carries an instance ID that an
	// earlier incarnation of the member used; a newer registration owns
	// the address now, and the stale incarnation must not refresh or
	// remove it.
	ErrStaleInstance = errors.New("membership: stale instance")
)

// Config sizes a Registry's lease terms.
type Config struct {
	// HeartbeatInterval is the beat period assigned to registering
	// workers (default 2s).
	HeartbeatInterval time.Duration
	// MissLimit is how many consecutive missed beats expire a lease
	// (default 3): a member is evicted when its last beat is older than
	// MissLimit × HeartbeatInterval.
	MissLimit int
	// Now is the clock (default time.Now). Tests inject a fake.
	Now func() time.Time
}

func (c *Config) fillDefaults() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.MissLimit <= 0 {
		c.MissLimit = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// member is the registry's record of one node.
type member struct {
	addr     string // normalized base URL, the registry key
	instance string // unique per process incarnation
	static   bool   // seeded from configuration; exempt from lease expiry
	state    State
	capacity Capacity
	load     Load
	joined   time.Time
	lastBeat time.Time
}

// Registry is the coordinator-side membership authority. Safe for
// concurrent use.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*member
	seen    map[string]bool // addrs ever registered, for rejoin counting
	version uint64          // bumped on any placement-relevant change

	joins, rejoins, drains, deregisters, evictions, rejectedBeats int64
}

// New builds an empty registry.
func New(cfg Config) *Registry {
	cfg.fillDefaults()
	return &Registry{
		cfg:     cfg,
		members: map[string]*member{},
		seen:    map[string]bool{},
	}
}

// Lease returns the registry's heartbeat interval and miss limit.
func (r *Registry) Lease() (time.Duration, int) {
	return r.cfg.HeartbeatInterval, r.cfg.MissLimit
}

// ttl is the lease duration: a member whose last beat is older is dead.
func (r *Registry) ttl() time.Duration {
	return r.cfg.HeartbeatInterval * time.Duration(r.cfg.MissLimit)
}

// AddStatic seeds permanent members (the -workers flag): they are alive
// from the start, never expire, and need no heartbeats — but can still be
// drained and deregistered like any other member.
func (r *Registry) AddStatic(addrs []string) error {
	for _, a := range addrs {
		norm, err := NormalizeAddr(a)
		if err != nil {
			return fmt.Errorf("membership: static member %q: %w", a, err)
		}
		now := r.cfg.Now()
		r.mu.Lock()
		if _, ok := r.members[norm]; !ok {
			r.members[norm] = &member{
				addr: norm, instance: "static", static: true,
				state: StateAlive, joined: now, lastBeat: now,
			}
			r.seen[norm] = true
			r.version++
		}
		r.mu.Unlock()
	}
	return nil
}

// Register admits (or re-admits) a worker. A returning address — after an
// eviction, a deregistration, or with a new process incarnation — rejoins
// live; a registration for a draining address returns it to alive (the
// operator brought it back). The response carries the lease terms the
// agent must beat on. req must already be validated (DecodeRegister does
// both).
func (r *Registry) Register(req RegisterRequest) (RegisterResponse, error) {
	addr, err := NormalizeAddr(req.Addr)
	if err != nil {
		return RegisterResponse{}, err
	}
	now := r.cfg.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(now)
	m, ok := r.members[addr]
	if ok {
		// Same address again: a new incarnation replaces the old one
		// (latest wins — the previous process is gone or restarting), and
		// an explicit re-register always returns the member to alive.
		m.instance = req.Instance
		m.capacity = req.Capacity
		m.lastBeat = now
		if m.state != StateAlive {
			m.state = StateAlive
			r.version++
		}
		r.rejoins++
	} else {
		r.members[addr] = &member{
			addr: addr, instance: req.Instance,
			state: StateAlive, capacity: req.Capacity,
			joined: now, lastBeat: now,
		}
		r.version++
		if r.seen[addr] {
			r.rejoins++
		} else {
			r.joins++
			r.seen[addr] = true
		}
	}
	return RegisterResponse{
		State:           StateAlive,
		HeartbeatMillis: r.cfg.HeartbeatInterval.Milliseconds(),
		MissLimit:       r.cfg.MissLimit,
	}, nil
}

// Heartbeat renews a member's lease and records its load. The response
// tells the worker its authoritative state — a worker the operator
// drained learns it here. Unknown members get ErrUnknownMember (the agent
// re-registers); a stale incarnation gets ErrStaleInstance and must not
// refresh the current holder's lease.
func (r *Registry) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	addr, err := NormalizeAddr(req.Addr)
	if err != nil {
		return HeartbeatResponse{}, err
	}
	now := r.cfg.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(now)
	m, ok := r.members[addr]
	if !ok {
		r.rejectedBeats++
		return HeartbeatResponse{}, ErrUnknownMember
	}
	if !m.static && m.instance != req.Instance {
		r.rejectedBeats++
		return HeartbeatResponse{}, ErrStaleInstance
	}
	m.lastBeat = now
	m.load = req.Load
	return HeartbeatResponse{State: m.state}, nil
}

// Drain marks a member draining: it keeps its lease (heartbeats continue)
// and finishes in-flight work, but the placement layer assigns it nothing
// new once Drain returns. Draining an already-draining member is a no-op.
func (r *Registry) Drain(addr string) error {
	norm, err := NormalizeAddr(addr)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[norm]
	if !ok {
		return ErrUnknownMember
	}
	if m.state != StateDraining {
		m.state = StateDraining
		r.drains++
		r.version++
	}
	return nil
}

// Deregister removes a member. The instance must match the current
// incarnation (or be empty, for operator-initiated removal): an old
// incarnation racing a new registration must not remove its replacement.
// Removing an unknown member is a successful no-op, so retrying a
// shutdown sequence is safe.
func (r *Registry) Deregister(addr, instance string) error {
	norm, err := NormalizeAddr(addr)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[norm]
	if !ok {
		return nil
	}
	if instance != "" && !m.static && m.instance != instance {
		return ErrStaleInstance
	}
	delete(r.members, norm)
	r.deregisters++
	r.version++
	return nil
}

// Sweep evicts every member whose lease has expired, returning how many.
// Snapshot and Stats sweep implicitly, so placement never sees an expired
// lease; a background sweeper only bounds how long a dead node lingers in
// /stats between renders.
func (r *Registry) Sweep() int {
	now := r.cfg.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sweepLocked(now)
}

func (r *Registry) sweepLocked(now time.Time) int {
	ttl := r.ttl()
	evicted := 0
	for addr, m := range r.members {
		if m.static {
			continue
		}
		if now.Sub(m.lastBeat) > ttl {
			delete(r.members, addr)
			evicted++
		}
	}
	if evicted > 0 {
		r.evictions += int64(evicted)
		r.version++
	}
	return evicted
}

// MemberInfo is one member's public state.
type MemberInfo struct {
	Addr     string   `json:"addr"`
	Instance string   `json:"instance"`
	State    State    `json:"state"`
	Static   bool     `json:"static,omitempty"`
	Capacity Capacity `json:"capacity"`
	Load     Load     `json:"load"`
	// LastBeatAgeMs is how stale the member's lease is; eviction comes at
	// heartbeat_millis × miss_limit.
	LastBeatAgeMs float64 `json:"last_beat_age_ms"`
}

// Snapshot is a consistent view of the fleet for placement: Version
// changes iff the eligible set or a member's state may have changed (a
// heartbeat alone never bumps it), so ring construction can be cached on
// it.
type Snapshot struct {
	Version uint64
	Members []MemberInfo // sorted by Addr
}

// Eligible returns the alive members' addresses — the nodes new work may
// be placed on. Draining members are excluded by construction.
func (s Snapshot) Eligible() []string {
	var addrs []string
	for _, m := range s.Members {
		if m.State == StateAlive {
			addrs = append(addrs, m.Addr)
		}
	}
	return addrs
}

// Snapshot sweeps expired leases and returns the current membership.
func (r *Registry) Snapshot() Snapshot {
	now := r.cfg.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(now)
	snap := Snapshot{Version: r.version, Members: make([]MemberInfo, 0, len(r.members))}
	for _, m := range r.members {
		snap.Members = append(snap.Members, MemberInfo{
			Addr: m.addr, Instance: m.instance, State: m.state, Static: m.static,
			Capacity: m.capacity, Load: m.load,
			LastBeatAgeMs: float64(now.Sub(m.lastBeat)) / float64(time.Millisecond),
		})
	}
	sort.Slice(snap.Members, func(i, j int) bool { return snap.Members[i].Addr < snap.Members[j].Addr })
	return snap
}

// Stats is the /stats view of the registry: per-node state plus lifetime
// membership-event counters.
type Stats struct {
	Version         uint64       `json:"version"`
	HeartbeatMillis int64        `json:"heartbeat_millis"`
	MissLimit       int          `json:"miss_limit"`
	Alive           int          `json:"alive"`
	Draining        int          `json:"draining"`
	Members         []MemberInfo `json:"members"`

	Joins         int64 `json:"joins"`
	Rejoins       int64 `json:"rejoins"`
	Drains        int64 `json:"drains"`
	Deregisters   int64 `json:"deregisters"`
	Evictions     int64 `json:"evictions"`
	RejectedBeats int64 `json:"rejected_heartbeats"`
}

// Stats sweeps expired leases and snapshots the counters.
func (r *Registry) Stats() Stats {
	snap := r.Snapshot()
	r.mu.Lock()
	st := Stats{
		Version:         snap.Version,
		HeartbeatMillis: r.cfg.HeartbeatInterval.Milliseconds(),
		MissLimit:       r.cfg.MissLimit,
		Members:         snap.Members,
		Joins:           r.joins,
		Rejoins:         r.rejoins,
		Drains:          r.drains,
		Deregisters:     r.deregisters,
		Evictions:       r.evictions,
		RejectedBeats:   r.rejectedBeats,
	}
	r.mu.Unlock()
	for _, m := range st.Members {
		switch m.State {
		case StateAlive:
			st.Alive++
		case StateDraining:
			st.Draining++
		}
	}
	return st
}
