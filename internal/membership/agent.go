package membership

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// AgentState is the worker-side view of its own membership.
type AgentState string

// Agent states.
const (
	// AgentJoining: registration has not succeeded yet (still retrying).
	AgentJoining AgentState = "joining"
	// AgentRegistered: lease live, heartbeats flowing.
	AgentRegistered AgentState = "registered"
	// AgentDraining: the registry marked us draining (self-drain or
	// operator); finish in-flight work, accept nothing new.
	AgentDraining AgentState = "draining"
	// AgentLost: heartbeats are failing or were rejected; the agent is
	// re-registering. Readiness probes should report not-ready.
	AgentLost AgentState = "lost"
	// AgentStopped: Stop was called; the loop has exited.
	AgentStopped AgentState = "stopped"
)

// AgentConfig wires a worker to its coordinator.
type AgentConfig struct {
	// Coordinator is the registry's base address (host:port or URL).
	Coordinator string
	// Advertise is the address the coordinator should reach this worker
	// at — what goes into the registry and onto the placement ring.
	Advertise string
	// Capacity is advertised at registration.
	Capacity Capacity
	// Load, when non-nil, is sampled for every heartbeat.
	Load func() Load
	// Interval overrides the server-assigned heartbeat interval (tests;
	// 0 = adopt the registry's lease terms).
	Interval time.Duration
	// RetryEvery paces registration retries (default 1s).
	RetryEvery time.Duration
	// Client is the control-plane HTTP client (default 5s timeout).
	Client *http.Client
	// OnState, when non-nil, is called on every state transition (from
	// the agent's loop goroutine; keep it fast).
	OnState func(AgentState)
	// Logf, when non-nil, receives membership events.
	Logf func(format string, v ...any)
}

// Agent maintains a worker's registration: it registers (retrying until
// it succeeds), heartbeats on the lease interval, re-registers after an
// eviction, and exposes Drain/Deregister for graceful shutdown.
type Agent struct {
	cfg      AgentConfig
	coord    string // normalized coordinator base URL
	self     string // normalized advertise address
	instance string

	mu       sync.Mutex
	state    AgentState
	interval time.Duration

	stop chan struct{}
	done chan struct{}
}

// StartAgent validates the config and starts the register+heartbeat loop.
func StartAgent(cfg AgentConfig) (*Agent, error) {
	coord, err := NormalizeAddr(cfg.Coordinator)
	if err != nil {
		return nil, fmt.Errorf("membership: coordinator: %w", err)
	}
	self, err := NormalizeAddr(cfg.Advertise)
	if err != nil {
		return nil, fmt.Errorf("membership: advertise: %w", err)
	}
	if err := cfg.Capacity.validate(); err != nil {
		return nil, err
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return nil, fmt.Errorf("membership: instance id: %w", err)
	}
	a := &Agent{
		cfg: cfg, coord: coord, self: self,
		instance: hex.EncodeToString(buf[:]),
		state:    AgentJoining,
		interval: cfg.Interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go a.loop()
	return a, nil
}

// State returns the agent's current membership state.
func (a *Agent) State() AgentState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

// Registered reports whether the worker currently holds a live lease
// (registered or draining).
func (a *Agent) Registered() bool {
	s := a.State()
	return s == AgentRegistered || s == AgentDraining
}

// Instance returns this incarnation's unique ID.
func (a *Agent) Instance() string { return a.instance }

func (a *Agent) setState(s AgentState) {
	a.mu.Lock()
	changed := a.state != s
	a.state = s
	a.mu.Unlock()
	if changed {
		a.logf("membership: %s", s)
		if a.cfg.OnState != nil {
			a.cfg.OnState(s)
		}
	}
}

func (a *Agent) logf(format string, v ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, v...)
	}
}

// post sends one JSON control-plane request and decodes the response.
func (a *Agent) post(ctx context.Context, path string, body, out any) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.coord+path, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("bad response body: %v", err)
		}
	}
	return resp.StatusCode, nil
}

// register performs one registration attempt and adopts the lease terms.
func (a *Agent) register(ctx context.Context) error {
	var resp RegisterResponse
	_, err := a.post(ctx, RegisterPath, RegisterRequest{
		Addr: a.self, Instance: a.instance, Capacity: a.cfg.Capacity,
	}, &resp)
	if err != nil {
		return err
	}
	iv := a.cfg.Interval
	if iv <= 0 {
		iv = time.Duration(resp.HeartbeatMillis) * time.Millisecond
		if iv <= 0 {
			iv = 2 * time.Second
		}
	}
	a.mu.Lock()
	a.interval = iv
	a.mu.Unlock()
	return nil
}

// beat sends one heartbeat; the returned state is the registry's view.
func (a *Agent) beat(ctx context.Context) (State, int, error) {
	load := Load{}
	if a.cfg.Load != nil {
		load = a.cfg.Load()
	}
	var resp HeartbeatResponse
	code, err := a.post(ctx, HeartbeatPath, HeartbeatRequest{
		Addr: a.self, Instance: a.instance, Load: load,
	}, &resp)
	return resp.State, code, err
}

// loop is the agent lifecycle: register (retrying), then heartbeat on
// the lease interval; a rejected beat (evicted, replaced) falls back to
// registration. Exits on Stop.
func (a *Agent) loop() {
	defer close(a.done)
	for {
		// Register, retrying until success or Stop.
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err := a.register(ctx)
			cancel()
			if err == nil {
				a.setState(AgentRegistered)
				break
			}
			a.logf("membership: register with %s failed: %v", a.coord, err)
			select {
			case <-time.After(a.cfg.RetryEvery):
			case <-a.stop:
				a.setState(AgentStopped)
				return
			}
		}
		// Beat until rejected or stopped.
		for {
			a.mu.Lock()
			iv := a.interval
			a.mu.Unlock()
			select {
			case <-time.After(iv):
			case <-a.stop:
				a.setState(AgentStopped)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			state, code, err := a.beat(ctx)
			cancel()
			switch {
			case err == nil && state == StateDraining:
				a.setState(AgentDraining)
			case err == nil:
				a.setState(AgentRegistered)
			case code == http.StatusNotFound || code == http.StatusConflict:
				// Evicted or replaced: re-register as this incarnation.
				a.logf("membership: lease lost (%v); re-registering", err)
				a.setState(AgentLost)
			default:
				// Transient network/coordinator failure: keep beating —
				// the lease has miss headroom — but surface not-ready.
				a.logf("membership: heartbeat failed: %v", err)
				a.setState(AgentLost)
				continue
			}
			if a.State() == AgentLost {
				break // fall back to registration
			}
		}
	}
}

// Drain asks the registry to mark this worker draining. When it returns
// nil the drain is acknowledged: the coordinator will send nothing new,
// and the caller can finish in-flight work then Deregister.
func (a *Agent) Drain(ctx context.Context) error {
	_, err := a.post(ctx, DrainPath, DrainRequest{Addr: a.self}, nil)
	if err == nil {
		a.setState(AgentDraining)
	}
	return err
}

// Deregister removes this worker from the registry (graceful leave).
func (a *Agent) Deregister(ctx context.Context) error {
	_, err := a.post(ctx, DeregisterPath, DeregisterRequest{Addr: a.self, Instance: a.instance}, nil)
	return err
}

// Stop ends the agent loop without touching the registry (the lease will
// expire on its own unless Deregister ran first).
func (a *Agent) Stop() {
	a.mu.Lock()
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	a.mu.Unlock()
	<-a.done
}
