package membership

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// Mount attaches the registry's control-plane endpoints to mux. They sit
// deliberately outside any render admission gate: a worker must be able
// to register, beat and drain while the data plane is saturated —
// membership is what keeps an overloaded cluster recoverable.
func (r *Registry) Mount(mux *http.ServeMux) {
	mux.HandleFunc(RegisterPath, r.handleRegister)
	mux.HandleFunc(HeartbeatPath, r.handleHeartbeat)
	mux.HandleFunc(DrainPath, r.handleDrain)
	mux.HandleFunc(DeregisterPath, r.handleDeregister)
}

// readBody slurps a bounded request body for the strict decoders.
func readBody(w http.ResponseWriter, req *http.Request) ([]byte, bool) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, MaxBodyBytes))
	if err != nil {
		http.Error(w, "membership: reading body: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return body, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// memberStatus maps registry errors to control-plane statuses: 404 tells
// an agent it is unknown (re-register), 409 tells a stale incarnation it
// has been replaced (stop, or re-register as a new instance).
func memberStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownMember):
		return http.StatusNotFound
	case errors.Is(err, ErrStaleInstance):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (r *Registry) handleRegister(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	reg, err := DecodeRegister(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := r.Register(reg)
	if err != nil {
		http.Error(w, err.Error(), memberStatus(err))
		return
	}
	writeJSON(w, resp)
}

func (r *Registry) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	hb, err := DecodeHeartbeat(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := r.Heartbeat(hb)
	if err != nil {
		http.Error(w, err.Error(), memberStatus(err))
		return
	}
	writeJSON(w, resp)
}

func (r *Registry) handleDrain(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	dr, err := DecodeDrain(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := r.Drain(dr.Addr); err != nil {
		http.Error(w, err.Error(), memberStatus(err))
		return
	}
	// This response is the drain acknowledgment: once written, the
	// member is guaranteed to receive zero new placements.
	writeJSON(w, HeartbeatResponse{State: StateDraining})
}

func (r *Registry) handleDeregister(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	dr, err := DecodeDeregister(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := r.Deregister(dr.Addr, dr.Instance); err != nil {
		http.Error(w, err.Error(), memberStatus(err))
		return
	}
	writeJSON(w, struct {
		Removed bool `json:"removed"`
	}{true})
}
