package membership

import (
	"strings"
	"testing"
)

// FuzzRegisterWire proves the register decoder never panics and that any
// accepted body satisfies the registry's invariants: canonical address,
// well-formed instance token, bounded capacity. The seeds mix valid
// documents with the hostile shapes the wire tests enumerate.
func FuzzRegisterWire(f *testing.F) {
	f.Add([]byte(`{"addr":"127.0.0.1:9001","instance":"abc123","capacity":{"device_workers":4,"staging_bytes":1048576}}`))
	f.Add([]byte(`{"addr":"http://[::1]:9001","instance":"a-b_c.d"}`))
	f.Add([]byte(`{"addr":"https://render.example.com:443","instance":"deadbeef01234567"}`))
	f.Add([]byte(`{"addr":"127.0.0.1:9001","instance":"a","evil":true}`))
	f.Add([]byte(`{"addr":42,"instance":"a"}`))
	f.Add([]byte(`{"addr":"127.0.0.1:9001","instance":"a"}{"addr":"127.0.0.1:9002","instance":"b"}`))
	f.Add([]byte(`{"addr":"http://u:p@h:1","instance":"a"}`))
	f.Add([]byte(`{"addr":"127.0.0.1:9001","instance":"a","capacity":{"device_workers":-1}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte("{\"addr\":\"h\x00st:80\",\"instance\":\"a\"}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRegister(data)
		if err != nil {
			return
		}
		// Accepted bodies must be fully normalized and bounded.
		norm, nerr := NormalizeAddr(req.Addr)
		if nerr != nil || norm != req.Addr {
			t.Fatalf("accepted addr %q not canonical (%q, %v)", req.Addr, norm, nerr)
		}
		if !strings.HasPrefix(req.Addr, "http://") && !strings.HasPrefix(req.Addr, "https://") {
			t.Fatalf("accepted addr %q lacks scheme", req.Addr)
		}
		if err := validInstance(req.Instance); err != nil {
			t.Fatalf("accepted instance %q invalid: %v", req.Instance, err)
		}
		if err := req.Capacity.validate(); err != nil {
			t.Fatalf("accepted capacity %+v invalid: %v", req.Capacity, err)
		}
		// And must drive the registry without a panic or an error.
		r := New(Config{})
		if _, err := r.Register(req); err != nil {
			t.Fatalf("registry rejected decoded register %+v: %v", req, err)
		}
		if got := r.Snapshot().Eligible(); len(got) != 1 || got[0] != req.Addr {
			t.Fatalf("eligible = %v after registering %q", got, req.Addr)
		}
	})
}

// FuzzHeartbeatWire proves the heartbeat decoder never panics and that
// accepted bodies carry bounded load and a canonical identity, and that
// feeding them to a live registry can't corrupt it.
func FuzzHeartbeatWire(f *testing.F) {
	f.Add([]byte(`{"addr":"127.0.0.1:9001","instance":"abc123","load":{"in_flight":1,"queue_depth":2,"map_jobs":3}}`))
	f.Add([]byte(`{"addr":"127.0.0.1:9001","instance":"abc123"}`))
	f.Add([]byte(`{"addr":"127.0.0.1:9001","instance":"a","load":{"in_flight":-1}}`))
	f.Add([]byte(`{"addr":"127.0.0.1:9001","instance":"a","load":{"cpus":9}}`))
	f.Add([]byte(`{"addr":"127.0.0.1:9001","instance":"a","load":{"map_jobs":999999999999999}}`))
	f.Add([]byte(`{"instance":"a"}`))
	f.Add([]byte(`"just a string"`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeHeartbeat(data)
		if err != nil {
			return
		}
		if norm, nerr := NormalizeAddr(req.Addr); nerr != nil || norm != req.Addr {
			t.Fatalf("accepted addr %q not canonical", req.Addr)
		}
		if err := validInstance(req.Instance); err != nil {
			t.Fatalf("accepted instance %q invalid: %v", req.Instance, err)
		}
		if err := req.Load.validate(); err != nil {
			t.Fatalf("accepted load %+v invalid: %v", req.Load, err)
		}
		// Against an empty registry the beat must be a clean 404-class
		// rejection; after registering that identity it must succeed.
		r := New(Config{})
		if _, err := r.Heartbeat(req); err != ErrUnknownMember {
			t.Fatalf("beat on empty registry = %v, want ErrUnknownMember", err)
		}
		if _, err := r.Register(RegisterRequest{Addr: req.Addr, Instance: req.Instance}); err != nil {
			t.Fatalf("register decoded identity: %v", err)
		}
		resp, err := r.Heartbeat(req)
		if err != nil || resp.State != StateAlive {
			t.Fatalf("beat after register = (%+v, %v)", resp, err)
		}
	})
}
