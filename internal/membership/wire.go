package membership

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/url"
	"strconv"
	"strings"
)

// HTTP surface of the membership control plane (mounted by the
// coordinator's gvmrd next to /render and /map).
const (
	// RegisterPath admits a worker: POST a JSON RegisterRequest, receive
	// the lease terms.
	RegisterPath = "/register"
	// HeartbeatPath renews a lease: POST a JSON HeartbeatRequest.
	HeartbeatPath = "/heartbeat"
	// DrainPath marks a member draining: POST a JSON DrainRequest. The
	// 200 response is the drain acknowledgment — after it, the member
	// receives zero new placements.
	DrainPath = "/drain"
	// DeregisterPath removes a member: POST a JSON DeregisterRequest.
	DeregisterPath = "/deregister"

	// MaxBodyBytes bounds every membership request body: these are tiny
	// control-plane documents, and an unauthenticated peer must not be
	// able to buffer megabytes here.
	MaxBodyBytes = 64 << 10

	maxAddrLen     = 256
	maxInstanceLen = 128
	// maxCount bounds the advertised integer fields (device workers,
	// queue depths): far above any real deployment, low enough that
	// arithmetic on a hostile value can never overflow.
	maxCount = 1 << 20
	// maxBytes bounds advertised byte capacities (1 PiB).
	maxBytes = int64(1) << 50
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Addr is the address other nodes reach this worker at ("host:port"
	// or an explicit http(s) URL).
	Addr string `json:"addr"`
	// Instance uniquely identifies this process incarnation; a restart
	// registers with a fresh one, and stale incarnations are fenced off
	// heartbeat/deregister.
	Instance string `json:"instance"`
	// Capacity advertises what the node brings to the fleet.
	Capacity Capacity `json:"capacity"`
}

// RegisterResponse returns the lease terms the worker must beat on.
type RegisterResponse struct {
	State           State `json:"state"`
	HeartbeatMillis int64 `json:"heartbeat_millis"`
	MissLimit       int   `json:"miss_limit"`
}

// HeartbeatRequest renews a lease and reports load.
type HeartbeatRequest struct {
	Addr     string `json:"addr"`
	Instance string `json:"instance"`
	Load     Load   `json:"load"`
}

// HeartbeatResponse carries the member's authoritative state back — a
// drained worker learns its fate here.
type HeartbeatResponse struct {
	State State `json:"state"`
}

// DrainRequest marks a member draining (self-initiated on SIGTERM, or by
// an operator).
type DrainRequest struct {
	Addr string `json:"addr"`
}

// DeregisterRequest removes a member. Instance, when non-empty, must
// match the current incarnation.
type DeregisterRequest struct {
	Addr     string `json:"addr"`
	Instance string `json:"instance,omitempty"`
}

// NormalizeAddr canonicalises a member address to "http://host:port" (or
// https). It rejects control characters, whitespace, embedded
// credentials, paths, queries and out-of-range ports, so a hostile
// registration can neither smuggle request targets nor collide two
// spellings of one node.
func NormalizeAddr(a string) (string, error) {
	if a == "" {
		return "", fmt.Errorf("membership: empty address")
	}
	if len(a) > maxAddrLen {
		return "", fmt.Errorf("membership: address longer than %d bytes", maxAddrLen)
	}
	for _, r := range a {
		if r <= ' ' || r == 0x7f {
			return "", fmt.Errorf("membership: address contains whitespace or control characters")
		}
	}
	scheme, rest := "http", a
	if i := strings.Index(a, "://"); i >= 0 {
		u, err := url.Parse(a)
		if err != nil {
			return "", fmt.Errorf("membership: bad address %q: %v", a, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return "", fmt.Errorf("membership: unsupported scheme %q", u.Scheme)
		}
		if u.User != nil || u.RawQuery != "" || u.Fragment != "" || (u.Path != "" && u.Path != "/") {
			return "", fmt.Errorf("membership: address %q must be scheme://host:port only", a)
		}
		scheme, rest = u.Scheme, u.Host
	}
	host, port, err := net.SplitHostPort(rest)
	if err != nil {
		return "", fmt.Errorf("membership: address %q is not host:port: %v", a, err)
	}
	if host == "" {
		return "", fmt.Errorf("membership: address %q has no host", a)
	}
	if err := validHost(host); err != nil {
		return "", fmt.Errorf("membership: address %q: %v", a, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil || p < 1 || p > 65535 {
		return "", fmt.Errorf("membership: address %q has bad port %q", a, port)
	}
	return scheme + "://" + net.JoinHostPort(host, strconv.Itoa(p)), nil
}

// validHost accepts IP literals and DNS-shaped names. Without this, the
// bare host:port path would canonicalise hosts like "#" or "?" into
// "URLs" that don't survive re-parsing (found by FuzzRegisterWire), and
// the canonical form must be a fixed point of NormalizeAddr.
func validHost(h string) error {
	if net.ParseIP(h) != nil {
		return nil
	}
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.':
		default:
			return fmt.Errorf("host contains %q (want a DNS name or IP literal)", r)
		}
	}
	return nil
}

// validInstance accepts short printable tokens: hex IDs, "static", and
// nothing that could confuse logs or headers.
func validInstance(s string) error {
	if s == "" {
		return fmt.Errorf("membership: empty instance")
	}
	if len(s) > maxInstanceLen {
		return fmt.Errorf("membership: instance longer than %d bytes", maxInstanceLen)
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("membership: instance contains %q (want [a-zA-Z0-9._-])", r)
		}
	}
	return nil
}

func (c Capacity) validate() error {
	if c.DeviceWorkers < 0 || c.DeviceWorkers > maxCount {
		return fmt.Errorf("membership: device workers %d outside [0, %d]", c.DeviceWorkers, maxCount)
	}
	if c.StagingBytes < 0 || c.StagingBytes > maxBytes {
		return fmt.Errorf("membership: staging bytes %d outside [0, %d]", c.StagingBytes, maxBytes)
	}
	return nil
}

func (l Load) validate() error {
	if l.InFlight < 0 || l.InFlight > maxCount {
		return fmt.Errorf("membership: in-flight %d outside [0, %d]", l.InFlight, maxCount)
	}
	if l.QueueDepth < 0 || l.QueueDepth > maxCount {
		return fmt.Errorf("membership: queue depth %d outside [0, %d]", l.QueueDepth, maxCount)
	}
	if l.MapJobs < 0 {
		return fmt.Errorf("membership: negative map jobs %d", l.MapJobs)
	}
	// NaN fails the positive-range spelling too; a hostile heartbeat must
	// not be able to park an unorderable value in placement decisions.
	if !(l.Pressure >= 0 && l.Pressure <= 1) {
		return fmt.Errorf("membership: pressure %v outside [0, 1]", l.Pressure)
	}
	return nil
}

// decodeStrict parses exactly one JSON document into dst: unknown fields,
// trailing bytes and oversized bodies are all errors. Every membership
// endpoint funnels hostile input through this.
func decodeStrict(data []byte, dst any) error {
	if int64(len(data)) > MaxBodyBytes {
		return fmt.Errorf("membership: body exceeds %d bytes", int64(MaxBodyBytes))
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("membership: bad request body: %v", err)
	}
	if dec.More() {
		return fmt.Errorf("membership: trailing data after request body")
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("membership: trailing data after request body")
	}
	return nil
}

// DecodeRegister parses and fully validates a register body: the returned
// request has a normalized address and bounded capacity, or the input is
// rejected — never a panic, proven by the fuzz target.
func DecodeRegister(data []byte) (RegisterRequest, error) {
	var req RegisterRequest
	if err := decodeStrict(data, &req); err != nil {
		return RegisterRequest{}, err
	}
	norm, err := NormalizeAddr(req.Addr)
	if err != nil {
		return RegisterRequest{}, err
	}
	req.Addr = norm
	if err := validInstance(req.Instance); err != nil {
		return RegisterRequest{}, err
	}
	if err := req.Capacity.validate(); err != nil {
		return RegisterRequest{}, err
	}
	return req, nil
}

// DecodeHeartbeat parses and fully validates a heartbeat body.
func DecodeHeartbeat(data []byte) (HeartbeatRequest, error) {
	var req HeartbeatRequest
	if err := decodeStrict(data, &req); err != nil {
		return HeartbeatRequest{}, err
	}
	norm, err := NormalizeAddr(req.Addr)
	if err != nil {
		return HeartbeatRequest{}, err
	}
	req.Addr = norm
	if err := validInstance(req.Instance); err != nil {
		return HeartbeatRequest{}, err
	}
	if err := req.Load.validate(); err != nil {
		return HeartbeatRequest{}, err
	}
	return req, nil
}

// DecodeDrain parses and validates a drain body.
func DecodeDrain(data []byte) (DrainRequest, error) {
	var req DrainRequest
	if err := decodeStrict(data, &req); err != nil {
		return DrainRequest{}, err
	}
	norm, err := NormalizeAddr(req.Addr)
	if err != nil {
		return DrainRequest{}, err
	}
	req.Addr = norm
	return req, nil
}

// DecodeDeregister parses and validates a deregister body. Instance may
// be empty (operator-initiated removal).
func DecodeDeregister(data []byte) (DeregisterRequest, error) {
	var req DeregisterRequest
	if err := decodeStrict(data, &req); err != nil {
		return DeregisterRequest{}, err
	}
	norm, err := NormalizeAddr(req.Addr)
	if err != nil {
		return DeregisterRequest{}, err
	}
	req.Addr = norm
	if req.Instance != "" {
		if err := validInstance(req.Instance); err != nil {
			return DeregisterRequest{}, err
		}
	}
	return req, nil
}
