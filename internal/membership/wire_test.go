package membership

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNormalizeAddr(t *testing.T) {
	cases := []struct {
		in   string
		want string // "" means reject
	}{
		{"127.0.0.1:9001", "http://127.0.0.1:9001"},
		{"http://127.0.0.1:9001", "http://127.0.0.1:9001"},
		{"http://127.0.0.1:9001/", "http://127.0.0.1:9001"},
		{"https://render-3.example.com:443", "https://render-3.example.com:443"},
		{"[::1]:9001", "http://[::1]:9001"},
		{"http://[::1]:9001", "http://[::1]:9001"},
		{"", ""},
		{"127.0.0.1", ""},                      // no port
		{"127.0.0.1:0", ""},                    // port out of range
		{"127.0.0.1:70000", ""},                // port out of range
		{"127.0.0.1:abc", ""},                  // non-numeric port
		{"ftp://127.0.0.1:21", ""},             // scheme
		{"http://u:p@h:1", ""},                 // credentials
		{"http://h:1/path", ""},                // path
		{"http://h:1?q=1", ""},                 // query
		{"http://h:1#frag", ""},                // fragment
		{"#:1", ""},                            // non-host char (fuzz find)
		{"h#st:80", ""},                        // non-host char
		{"host name:80", ""},                   // whitespace
		{"host\x00:80", ""},                    // control char
		{"host\n:80", ""},                      // newline
		{strings.Repeat("a", 300) + ":80", ""}, // too long
	}
	for _, c := range cases {
		got, err := NormalizeAddr(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("NormalizeAddr(%q) = %q, want rejection", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("NormalizeAddr(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("NormalizeAddr(%q) = %q, want %q", c.in, got, c.want)
		}
		// Canonical forms are fixed points.
		again, err := NormalizeAddr(got)
		if err != nil || again != got {
			t.Errorf("NormalizeAddr(%q) not idempotent: %q, %v", got, again, err)
		}
	}
}

func TestDecodeRegisterRejectsHostileBodies(t *testing.T) {
	valid := `{"addr":"127.0.0.1:9001","instance":"abc123","capacity":{"device_workers":4,"staging_bytes":1048576}}`
	if _, err := DecodeRegister([]byte(valid)); err != nil {
		t.Fatalf("valid register rejected: %v", err)
	}
	hostile := map[string]string{
		"empty":            ``,
		"not json":         `hello`,
		"unknown field":    `{"addr":"127.0.0.1:9001","instance":"a","evil":true}`,
		"trailing garbage": valid + `{"addr":"127.0.0.1:9002","instance":"b"}`,
		"trailing token":   valid + ` true`,
		"bad addr":         `{"addr":"ftp://x:1","instance":"a"}`,
		"empty instance":   `{"addr":"127.0.0.1:9001","instance":""}`,
		"instance chars":   `{"addr":"127.0.0.1:9001","instance":"a b\nc"}`,
		"giant capacity":   `{"addr":"127.0.0.1:9001","instance":"a","capacity":{"device_workers":99999999}}`,
		"negative staging": `{"addr":"127.0.0.1:9001","instance":"a","capacity":{"staging_bytes":-1}}`,
		"wrong type":       `{"addr":42,"instance":"a"}`,
		"array body":       `[1,2,3]`,
	}
	for name, body := range hostile {
		if _, err := DecodeRegister([]byte(body)); err == nil {
			t.Errorf("%s: accepted %q", name, body)
		}
	}
	// Oversized body.
	big, _ := json.Marshal(RegisterRequest{Addr: "127.0.0.1:9001", Instance: strings.Repeat("a", MaxBodyBytes)})
	if _, err := DecodeRegister(big); err == nil {
		t.Error("oversized register body accepted")
	}
}

func TestDecodeHeartbeatRejectsHostileBodies(t *testing.T) {
	valid := `{"addr":"127.0.0.1:9001","instance":"abc123","load":{"in_flight":1,"queue_depth":2,"map_jobs":3}}`
	req, err := DecodeHeartbeat([]byte(valid))
	if err != nil {
		t.Fatalf("valid heartbeat rejected: %v", err)
	}
	if req.Addr != "http://127.0.0.1:9001" || req.Load.MapJobs != 3 {
		t.Fatalf("decoded heartbeat = %+v", req)
	}
	hostile := map[string]string{
		"negative in-flight": `{"addr":"127.0.0.1:9001","instance":"a","load":{"in_flight":-1}}`,
		"giant queue":        `{"addr":"127.0.0.1:9001","instance":"a","load":{"queue_depth":9999999}}`,
		"negative map jobs":  `{"addr":"127.0.0.1:9001","instance":"a","load":{"map_jobs":-5}}`,
		"unknown load field": `{"addr":"127.0.0.1:9001","instance":"a","load":{"cpus":9}}`,
		"missing addr":       `{"instance":"a"}`,
	}
	for name, body := range hostile {
		if _, err := DecodeHeartbeat([]byte(body)); err == nil {
			t.Errorf("%s: accepted %q", name, body)
		}
	}
}

func TestDecodeDrainAndDeregister(t *testing.T) {
	dr, err := DecodeDrain([]byte(`{"addr":"127.0.0.1:9001"}`))
	if err != nil || dr.Addr != "http://127.0.0.1:9001" {
		t.Fatalf("DecodeDrain = (%+v, %v)", dr, err)
	}
	if _, err := DecodeDrain([]byte(`{"addr":"127.0.0.1:9001","x":1}`)); err == nil {
		t.Error("drain with unknown field accepted")
	}
	de, err := DecodeDeregister([]byte(`{"addr":"127.0.0.1:9001"}`))
	if err != nil || de.Instance != "" {
		t.Fatalf("operator deregister (no instance) rejected: %+v, %v", de, err)
	}
	if _, err := DecodeDeregister([]byte(`{"addr":"127.0.0.1:9001","instance":"bad id"}`)); err == nil {
		t.Error("deregister with malformed instance accepted")
	}
}
