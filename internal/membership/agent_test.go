package membership

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// startTestCoordinator mounts a fast-lease registry on an httptest server.
func startTestCoordinator(t *testing.T) (*Registry, *httptest.Server) {
	t.Helper()
	reg := New(Config{HeartbeatInterval: 20 * time.Millisecond, MissLimit: 3})
	mux := http.NewServeMux()
	reg.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return reg, srv
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAgentRegistersAndBeats(t *testing.T) {
	reg, srv := startTestCoordinator(t)
	var mu sync.Mutex
	var states []AgentState
	a, err := StartAgent(AgentConfig{
		Coordinator: srv.URL,
		Advertise:   "127.0.0.1:9001",
		Capacity:    Capacity{DeviceWorkers: 8, StagingBytes: 42},
		Load:        func() Load { return Load{InFlight: 1, MapJobs: 7} },
		RetryEvery:  10 * time.Millisecond,
		OnState: func(s AgentState) {
			mu.Lock()
			states = append(states, s)
			mu.Unlock()
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()

	waitFor(t, "registration", a.Registered)
	snap := reg.Snapshot()
	if len(snap.Members) != 1 {
		t.Fatalf("members = %+v, want the agent", snap.Members)
	}
	m := snap.Members[0]
	if m.Addr != "http://127.0.0.1:9001" || m.Capacity.DeviceWorkers != 8 || m.Capacity.StagingBytes != 42 {
		t.Fatalf("member = %+v, want advertised identity and capacity", m)
	}
	// Heartbeats flow on the server-assigned interval and carry load.
	waitFor(t, "load-bearing heartbeat", func() bool {
		ms := reg.Snapshot().Members
		return len(ms) == 1 && ms[0].Load.MapJobs == 7
	})
	mu.Lock()
	sawRegistered := len(states) > 0 && states[0] == AgentRegistered
	mu.Unlock()
	if !sawRegistered {
		t.Fatalf("state transitions = %v, want registered first", states)
	}
}

func TestAgentReRegistersAfterEviction(t *testing.T) {
	reg, srv := startTestCoordinator(t)
	a, err := StartAgent(AgentConfig{
		Coordinator: srv.URL,
		Advertise:   "127.0.0.1:9001",
		RetryEvery:  10 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	waitFor(t, "registration", a.Registered)

	// Server-side removal (operator or eviction): the agent's next beat
	// 404s and it re-registers on its own.
	if err := reg.Deregister("127.0.0.1:9001", ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-registration", func() bool {
		return len(reg.Snapshot().Members) == 1 && reg.Stats().Rejoins >= 1
	})
	if st := reg.Stats(); st.RejectedBeats < 1 {
		t.Fatalf("rejected beats = %d, want ≥1 (the 404 that triggered re-register)", st.RejectedBeats)
	}
}

func TestAgentDrainAndDeregister(t *testing.T) {
	reg, srv := startTestCoordinator(t)
	a, err := StartAgent(AgentConfig{
		Coordinator: srv.URL,
		Advertise:   "127.0.0.1:9001",
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	waitFor(t, "registration", a.Registered)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if a.State() != AgentDraining {
		t.Fatalf("state after drain = %q, want draining", a.State())
	}
	snap := reg.Snapshot()
	if got := snap.Eligible(); len(got) != 0 {
		t.Fatalf("eligible after drain ack = %v, want none", got)
	}
	// Heartbeats keep confirming the draining state rather than flipping
	// the agent back to registered.
	time.Sleep(60 * time.Millisecond)
	if a.State() != AgentDraining {
		t.Fatalf("state decayed to %q while draining", a.State())
	}

	if err := a.Deregister(ctx); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if n := len(reg.Snapshot().Members); n != 0 {
		t.Fatalf("members after deregister = %d, want 0", n)
	}
	a.Stop()
	if a.State() != AgentStopped {
		t.Fatalf("state after Stop = %q", a.State())
	}
}

func TestAgentRetriesUntilCoordinatorAppears(t *testing.T) {
	// Reserve an address with no listener: registration fails, the agent
	// stays joining and keeps retrying, then Stop cleanly ends it.
	a, err := StartAgent(AgentConfig{
		Coordinator: "127.0.0.1:1", // reserved port, nothing listens
		Advertise:   "127.0.0.1:9001",
		RetryEvery:  10 * time.Millisecond,
		Client:      &http.Client{Timeout: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if a.Registered() {
		t.Fatal("agent claims registration with no coordinator")
	}
	a.Stop()
	if a.State() != AgentStopped {
		t.Fatalf("state after Stop = %q", a.State())
	}
}

func TestStartAgentValidatesConfig(t *testing.T) {
	if _, err := StartAgent(AgentConfig{Coordinator: "", Advertise: "127.0.0.1:9001"}); err == nil {
		t.Error("empty coordinator accepted")
	}
	if _, err := StartAgent(AgentConfig{Coordinator: "127.0.0.1:8080", Advertise: "bad addr"}); err == nil {
		t.Error("bad advertise accepted")
	}
	if _, err := StartAgent(AgentConfig{Coordinator: "127.0.0.1:8080", Advertise: "127.0.0.1:9001",
		Capacity: Capacity{DeviceWorkers: -1}}); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestHTTPEndpointsRejectHostileTraffic(t *testing.T) {
	_, srv := startTestCoordinator(t)
	client := srv.Client()

	// GET is not a control-plane verb.
	resp, err := client.Get(srv.URL + RegisterPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /register = %d, want 405", resp.StatusCode)
	}
	// Unknown-member drain is a 404.
	resp, err = client.Post(srv.URL+DrainPath, "application/json",
		strings.NewReader(`{"addr":"127.0.0.1:9999"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain unknown = %d, want 404", resp.StatusCode)
	}
	// Malformed JSON is a 400.
	resp, err = client.Post(srv.URL+RegisterPath, "application/json", strings.NewReader(`{`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad register body = %d, want 400", resp.StatusCode)
	}
}
