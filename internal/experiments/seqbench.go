package experiments

import (
	"encoding/json"
	"os"
	"reflect"
	"runtime"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/schedule"
	"gvmr/internal/sim"
	"gvmr/internal/transfer"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

// SeqBenchConfig records everything needed to interpret a sequence
// benchmark row: the workload and the machine it ran on.
type SeqBenchConfig struct {
	Scale      string `json:"scale"`
	Dataset    string `json:"dataset"`
	Dims       string `json:"dims"`
	GPUs       int    `json:"gpus"`
	Frames     int    `json:"frames"`
	ImageSize  int    `json:"image_size"`
	Shading    bool   `json:"shading"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Workers    int    `json:"parallel_workers"`
}

// SeqBenchLeg is one timed execution of the sequence.
type SeqBenchLeg struct {
	WallSeconds float64 `json:"wall_seconds"`
	Workers     int     `json:"workers"`
}

// SeqBenchVirtual carries the simulation-side figures of merit — the
// paper-comparable numbers, identical between the two legs by the
// scheduler's determinism contract.
type SeqBenchVirtual struct {
	TotalSeconds    float64   `json:"total_seconds"`
	MeanFPS         float64   `json:"mean_fps"`
	VPSMillions     float64   `json:"vps_millions"`
	PerFrameSeconds []float64 `json:"per_frame_seconds"`
}

// SeqBench is the machine-readable record cmd/benchsuite writes to
// BENCH_fig2.json: one multi-frame orbit of the Figure 2 skull dataset,
// rendered serially and through the parallel frame scheduler, with
// wall-clock for both and proof the outputs matched bit for bit.
type SeqBench struct {
	Config       SeqBenchConfig  `json:"config"`
	Serial       SeqBenchLeg     `json:"serial"`
	Parallel     SeqBenchLeg     `json:"parallel"`
	SpeedupWall  float64         `json:"speedup_wall"`
	BitIdentical bool            `json:"bit_identical"`
	Virtual      SeqBenchVirtual `json:"virtual"`
}

// RunSeqBench renders a `frames`-frame orbit of the skull dataset at the
// scale's Figure 2 size on a 4-GPU cluster, once serially (frames back
// to back on one cluster) and once through the parallel frame scheduler,
// and reports wall-clock for both plus the (identical) virtual figures
// of merit. Both legs go through core.RenderFrames, which returns every
// frame's image and statistics, so bit-identity is verified per frame —
// image digests, per-frame virtual runtimes and full JobStats — not
// just on the final frame. The staging cache is pre-warmed with a
// single untimed frame so neither leg pays dataset materialisation.
func RunSeqBench(sc Scale, frames int) (*SeqBench, error) {
	dims := volume.Cube(sc.Fig2Edge)
	src, err := dataset.New(dataset.Skull, dims)
	if err != nil {
		return nil, err
	}
	tf, err := transfer.Preset(dataset.Skull)
	if err != nil {
		return nil, err
	}
	opt := core.Options{
		Source: src, TF: tf,
		Width: sc.ImageSize, Height: sc.ImageSize,
		Shading: true,
	}
	spec := cluster.AC(4)
	cams, err := core.OrbitCameras(src, sc.ImageSize, sc.ImageSize, frames, 360)
	if err != nil {
		return nil, err
	}

	// Pre-warm the staging cache (materialise the dataset once, untimed)
	// so the serial and parallel legs both stage out of host memory.
	warm, err := spec.Instance()
	if err != nil {
		return nil, err
	}
	if _, err := core.Render(warm, opt); err != nil {
		return nil, err
	}

	run := func(serial bool) ([]*core.Result, float64, int, error) {
		cl, err := spec.Instance()
		if err != nil {
			return nil, 0, 0, err
		}
		o := opt
		o.SequenceSerial = serial
		workers := 1
		if !serial {
			workers = schedule.Workers(0, frames)
		}
		start := time.Now()
		results, err := core.RenderFrames(cl, o, cams)
		return results, time.Since(start).Seconds(), workers, err
	}
	serial, serialWall, _, err := run(true)
	if err != nil {
		return nil, err
	}
	parallel, parWall, parWorkers, err := run(false)
	if err != nil {
		return nil, err
	}

	// Per-frame bit-identity: every image, every virtual runtime, every
	// full JobStats record.
	identical := len(serial) == len(parallel)
	var total sim.Time
	perFrame := make([]float64, 0, len(serial))
	for i := range serial {
		if !identical {
			break
		}
		identical = serial[i].Image.Digest() == parallel[i].Image.Digest() &&
			serial[i].Runtime == parallel[i].Runtime &&
			reflect.DeepEqual(serial[i].Stats, parallel[i].Stats)
		total += serial[i].Runtime
		perFrame = append(perFrame, serial[i].Runtime.Seconds())
	}

	voxels := float64(dims.Voxels()) * float64(frames)
	out := &SeqBench{
		Config: SeqBenchConfig{
			Scale:      sc.Name,
			Dataset:    dataset.Skull,
			Dims:       dims.String(),
			GPUs:       4,
			Frames:     frames,
			ImageSize:  sc.ImageSize,
			Shading:    true,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Workers:    schedule.Workers(0, frames),
		},
		Serial:       SeqBenchLeg{WallSeconds: serialWall, Workers: 1},
		Parallel:     SeqBenchLeg{WallSeconds: parWall, Workers: parWorkers},
		BitIdentical: identical,
		Virtual: SeqBenchVirtual{
			TotalSeconds:    total.Seconds(),
			MeanFPS:         float64(frames) / total.Seconds(),
			VPSMillions:     voxels / total.Seconds() / 1e6,
			PerFrameSeconds: perFrame,
		},
	}
	if parWall > 0 {
		out.SpeedupWall = serialWall / parWall
	}
	return out, nil
}

// WriteJSON writes the record, indented, to path.
func (b *SeqBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
