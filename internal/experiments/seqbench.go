package experiments

import (
	"encoding/json"
	"os"
	"reflect"
	"runtime"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/schedule"
	"gvmr/internal/sim"
	"gvmr/internal/transfer"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

// SeqBenchConfig records everything needed to interpret a sequence
// benchmark row: the workload and the machine it ran on.
type SeqBenchConfig struct {
	Scale      string `json:"scale"`
	Dataset    string `json:"dataset"`
	Dims       string `json:"dims"`
	GPUs       int    `json:"gpus"`
	Frames     int    `json:"frames"`
	ImageSize  int    `json:"image_size"`
	Shading    bool   `json:"shading"`
	NoSkip     bool   `json:"noskip"` // timed legs rendered with skipping disabled
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Workers    int    `json:"parallel_workers"`
}

// SeqBenchLeg is one timed execution of the sequence.
type SeqBenchLeg struct {
	WallSeconds float64 `json:"wall_seconds"`
	Workers     int     `json:"workers"`
}

// SeqBenchVirtual carries the simulation-side figures of merit — the
// paper-comparable numbers, identical between the two legs by the
// scheduler's determinism contract.
type SeqBenchVirtual struct {
	TotalSeconds    float64   `json:"total_seconds"`
	MeanFPS         float64   `json:"mean_fps"`
	VPSMillions     float64   `json:"vps_millions"`
	PerFrameSeconds []float64 `json:"per_frame_seconds"`
}

// SeqBenchSkipLeg is the virtual-time record of the orbit rendered with
// empty-space skipping in one state.
type SeqBenchSkipLeg struct {
	VirtualSeconds float64 `json:"virtual_seconds"`
	Samples        int64   `json:"samples"`
	SamplesSkipped int64   `json:"samples_skipped"`
	MacrocellSteps int64   `json:"macrocell_steps"`
}

// SeqBenchSkip is the committed empty-space-skipping A/B: the same orbit
// rendered with the macrocell DDA on and off. BitIdentical proves the
// acceleration structure changed no pixel; SampleReduction is the
// fraction of texture samples it eliminated; SpeedupVirtual is the
// net modeled win (skipped samples minus the charged macrocell
// traversal).
type SeqBenchSkip struct {
	On              SeqBenchSkipLeg `json:"on"`
	Off             SeqBenchSkipLeg `json:"off"`
	SampleReduction float64         `json:"sample_reduction"`
	SpeedupVirtual  float64         `json:"speedup_virtual"`
	BitIdentical    bool            `json:"bit_identical"`
}

// SeqBench is the machine-readable record cmd/benchsuite writes to
// BENCH_fig2.json: one multi-frame orbit of the Figure 2 skull dataset,
// rendered serially and through the parallel frame scheduler, with
// wall-clock for both, proof the outputs matched bit for bit, and the
// empty-space-skipping on/off comparison.
type SeqBench struct {
	Config       SeqBenchConfig  `json:"config"`
	Serial       SeqBenchLeg     `json:"serial"`
	Parallel     SeqBenchLeg     `json:"parallel"`
	SpeedupWall  float64         `json:"speedup_wall"`
	BitIdentical bool            `json:"bit_identical"`
	Virtual      SeqBenchVirtual `json:"virtual"`
	Skip         SeqBenchSkip    `json:"skip"`
}

// RunSeqBench renders a `frames`-frame orbit of the skull dataset at the
// scale's Figure 2 size on a 4-GPU cluster, once serially (frames back
// to back on one cluster) and once through the parallel frame scheduler,
// and reports wall-clock for both plus the (identical) virtual figures
// of merit. Both legs go through core.RenderFrames, which returns every
// frame's image and statistics, so bit-identity is verified per frame —
// image digests, per-frame virtual runtimes and full JobStats — not
// just on the final frame. The staging cache is pre-warmed with a
// single untimed frame so neither leg pays dataset materialisation.
func RunSeqBench(sc Scale, frames int) (*SeqBench, error) {
	dims := volume.Cube(sc.Fig2Edge)
	src, err := dataset.New(dataset.Skull, dims)
	if err != nil {
		return nil, err
	}
	tf, err := transfer.Preset(dataset.Skull)
	if err != nil {
		return nil, err
	}
	opt := core.Options{
		Source: src, TF: tf,
		Width: sc.ImageSize, Height: sc.ImageSize,
		Shading:     true,
		NoEmptySkip: sc.NoSkip,
	}
	spec := cluster.AC(4)
	cams, err := core.OrbitCameras(src, sc.ImageSize, sc.ImageSize, frames, 360)
	if err != nil {
		return nil, err
	}

	// Pre-warm the staging cache (materialise the dataset once, untimed)
	// so the serial and parallel legs both stage out of host memory.
	warm, err := spec.Instance()
	if err != nil {
		return nil, err
	}
	if _, err := core.Render(warm, opt); err != nil {
		return nil, err
	}

	run := func(serial bool) ([]*core.Result, float64, int, error) {
		cl, err := spec.Instance()
		if err != nil {
			return nil, 0, 0, err
		}
		o := opt
		o.SequenceSerial = serial
		workers := 1
		if !serial {
			workers = schedule.Workers(0, frames)
		}
		start := time.Now()
		results, err := core.RenderFrames(cl, o, cams)
		return results, time.Since(start).Seconds(), workers, err
	}
	serial, serialWall, _, err := run(true)
	if err != nil {
		return nil, err
	}
	parallel, parWall, parWorkers, err := run(false)
	if err != nil {
		return nil, err
	}

	// Per-frame bit-identity: every image, every virtual runtime, every
	// full JobStats record.
	identical := len(serial) == len(parallel)
	var total sim.Time
	perFrame := make([]float64, 0, len(serial))
	for i := range serial {
		if !identical {
			break
		}
		identical = serial[i].Image.Digest() == parallel[i].Image.Digest() &&
			serial[i].Runtime == parallel[i].Runtime &&
			reflect.DeepEqual(serial[i].Stats, parallel[i].Stats)
		total += serial[i].Runtime
		perFrame = append(perFrame, serial[i].Runtime.Seconds())
	}

	// Empty-space-skipping A/B: the same orbit with the macrocell DDA in
	// the opposite state to the timed legs; the state already rendered is
	// reused. Virtual time, sample counts and digests prove the win and
	// the bit-identity contract frame by frame.
	other, err := func() ([]*core.Result, error) {
		cl, err := spec.Instance()
		if err != nil {
			return nil, err
		}
		o := opt
		o.NoEmptySkip = !sc.NoSkip
		return core.RenderFrames(cl, o, cams)
	}()
	if err != nil {
		return nil, err
	}
	onRes, offRes := serial, other
	if sc.NoSkip {
		onRes, offRes = other, serial
	}
	skipLeg := func(results []*core.Result) SeqBenchSkipLeg {
		var leg SeqBenchSkipLeg
		var tot sim.Time
		for _, r := range results {
			tot += r.Runtime
			leg.Samples += r.Stats.TotalSamples
			leg.SamplesSkipped += r.Stats.TotalSamplesSkipped
			leg.MacrocellSteps += r.Stats.TotalCells
		}
		leg.VirtualSeconds = tot.Seconds()
		return leg
	}
	skip := SeqBenchSkip{On: skipLeg(onRes), Off: skipLeg(offRes), BitIdentical: true}
	for i := range onRes {
		if onRes[i].Image.Digest() != offRes[i].Image.Digest() {
			skip.BitIdentical = false
			break
		}
	}
	if skip.Off.Samples > 0 {
		skip.SampleReduction = 1 - float64(skip.On.Samples)/float64(skip.Off.Samples)
	}
	if skip.On.VirtualSeconds > 0 {
		skip.SpeedupVirtual = skip.Off.VirtualSeconds / skip.On.VirtualSeconds
	}

	voxels := float64(dims.Voxels()) * float64(frames)
	out := &SeqBench{
		Config: SeqBenchConfig{
			Scale:      sc.Name,
			Dataset:    dataset.Skull,
			Dims:       dims.String(),
			GPUs:       4,
			Frames:     frames,
			ImageSize:  sc.ImageSize,
			Shading:    true,
			NoSkip:     sc.NoSkip,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Workers:    schedule.Workers(0, frames),
		},
		Serial:       SeqBenchLeg{WallSeconds: serialWall, Workers: 1},
		Parallel:     SeqBenchLeg{WallSeconds: parWall, Workers: parWorkers},
		BitIdentical: identical,
		Skip:         skip,
		Virtual: SeqBenchVirtual{
			TotalSeconds:    total.Seconds(),
			MeanFPS:         float64(frames) / total.Seconds(),
			VPSMillions:     voxels / total.Seconds() / 1e6,
			PerFrameSeconds: perFrame,
		},
	}
	if parWall > 0 {
		out.SpeedupWall = serialWall / parWall
	}
	return out, nil
}

// WriteJSON writes the record, indented, to path.
func (b *SeqBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
