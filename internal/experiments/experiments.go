// Package experiments regenerates every table and figure of the paper's
// evaluation (§5, §6.3, footnote 1, and the §3 micro-costs), plus the
// §6.1 design ablations. It is shared by cmd/benchsuite and the root
// bench_test.go so every reported number comes from exactly one code
// path (see DESIGN.md §4 for the experiment index).
package experiments

import (
	"fmt"
	"os"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/mapreduce"
	"gvmr/internal/schedule"
	"gvmr/internal/sim"
	"gvmr/internal/transfer"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

// Scale sizes the experiment sweep. Paper() is the full evaluation; Quick()
// is a minutes-scale smoke configuration for development.
type Scale struct {
	Name      string
	ImageSize int
	// Edges are the cube resolutions of the Figure 3/4 sweep.
	Edges []int
	// GPUCounts is the paper's 1..32 GPU axis.
	GPUCounts []int
	// Fig2Edge sizes the Figure 2 dataset renderings.
	Fig2Edge int
	// Sec63Edge sizes the §6.3 bottleneck analysis volume (paper: 1024³).
	Sec63Edge int
	// Baseline comparison (footnote 1). BaselineEdge is the shared-volume
	// comparison; BaselineGPUEdge is the volume used for the GPU peak-VPS
	// figure (the paper compares its best rate against ParaView's
	// published one).
	BaselineRanks        int
	BaselineRanksPerNode int
	BaselineEdge         int
	BaselineGPUEdge      int
	BaselineGPUs         int
	// AblationEdge sizes the §6.1 ablation renders.
	AblationEdge int

	// Serial forces the figure sweeps to run one cell at a time on the
	// calling goroutine (the frame scheduler's opt-out, for debugging
	// and serial-vs-parallel A/B benchmarks). The default fans
	// independent cells out across host cores; rows are stitched back
	// in grid order either way, so tables are bit-identical.
	Serial bool
	// Workers caps the fan-out pool width (0 means GOMAXPROCS).
	Workers int
	// NoSkip disables macrocell empty-space skipping in the timed legs
	// (benchsuite -noskip): the skip-off A/B half of the seqbench record
	// and a regression guard for CI. Images are identical either way.
	NoSkip bool
}

// poolWidth resolves the scheduler pool for a fan-out of n jobs.
func (sc Scale) poolWidth(n int) int {
	if sc.Serial {
		return 1
	}
	return schedule.Workers(sc.Workers, n)
}

// mutate wraps a caller's option mutation with the scale-level toggles
// (currently NoSkip), so every figure subcommand honors benchsuite
// -noskip through one place.
func (sc Scale) mutate(f func(*core.Options)) func(*core.Options) {
	return func(o *core.Options) {
		o.NoEmptySkip = sc.NoSkip
		if f != nil {
			f(o)
		}
	}
}

// Paper returns the full evaluation scale: 512² images, 128³–1024³
// volumes, 1–32 GPUs — the paper's exact parameter grid.
func Paper() Scale {
	return Scale{
		Name:      "paper",
		ImageSize: 512,
		Edges:     []int{128, 256, 512, 1024},
		GPUCounts: []int{1, 2, 4, 8, 16, 32},
		Fig2Edge:  256,
		Sec63Edge: 1024,

		BaselineRanks:        512,
		BaselineRanksPerNode: 2,
		BaselineEdge:         512,
		BaselineGPUEdge:      1024,
		BaselineGPUs:         16,

		AblationEdge: 256,
	}
}

// Quick returns a development-sized configuration.
func Quick() Scale {
	return Scale{
		Name:      "quick",
		ImageSize: 128,
		Edges:     []int{32, 64, 128},
		GPUCounts: []int{1, 2, 4, 8},
		Fig2Edge:  64,
		Sec63Edge: 128,

		BaselineRanks:        64,
		BaselineRanksPerNode: 2,
		BaselineEdge:         64,
		BaselineGPUEdge:      128,
		BaselineGPUs:         8,

		AblationEdge: 64,
	}
}

// FromEnv picks the scale from GVMR_SCALE (quick|paper), defaulting to
// paper.
func FromEnv() Scale {
	if os.Getenv("GVMR_SCALE") == "quick" {
		return Quick()
	}
	return Paper()
}

// RenderConfig renders one frame of the named dataset at the given dims on
// a fresh AC cluster with the given GPU count. mutate may adjust options
// before the run.
func RenderConfig(ds string, dims volume.Dims, gpus, imgSize int, mutate func(*core.Options)) (*core.Result, error) {
	return RenderConfigWorkers(ds, dims, gpus, imgSize, 0, mutate)
}

// RenderConfigWorkers is RenderConfig with a cap on per-device host
// parallelism (0 means GOMAXPROCS). Parallel sweeps cap it so concurrent
// cells don't oversubscribe the machine; the cap changes wall-clock
// behavior only — virtual times and images are identical at any setting.
func RenderConfigWorkers(ds string, dims volume.Dims, gpus, imgSize, devWorkers int, mutate func(*core.Options)) (*core.Result, error) {
	cl, err := cluster.AC(gpus).Instance()
	if err != nil {
		return nil, err
	}
	cl.SetDeviceWorkers(devWorkers)
	src, err := dataset.New(ds, dims)
	if err != nil {
		return nil, err
	}
	tf, err := transfer.Preset(ds)
	if err != nil {
		return nil, err
	}
	opt := core.Options{
		Source: src,
		TF:     tf,
		Width:  imgSize,
		Height: imgSize,
		GPUs:   gpus,
	}
	if mutate != nil {
		mutate(&opt)
	}
	return core.Render(cl, opt)
}

// SweepRow is one (volume size, GPU count) cell of the Figure 3/4 grid.
type SweepRow struct {
	Dataset string
	Dims    volume.Dims
	GPUs    int
	Bricks  int
	Stage   mapreduce.StageTimes
	Runtime sim.Time
	FPS     float64
	VPSM    float64 // millions of voxels per second
	// §6.3 decomposition of the map phase.
	MapCompute sim.Time
	MapComm    sim.Time
	Emitted    int64
}

// Sweep renders the full (edge × GPU count) grid with the skull dataset
// (the paper's size-scaling workload) and returns one row per rendered
// configuration, in grid order. Configurations whose volume exceeds a
// single device's VRAM are skipped at 1 GPU, exactly as the paper's
// Figure 3 starts the 1024³ series at 2 GPUs.
//
// Every cell is an independent simulation on its own cluster instance, so
// cells fan out across host cores (Scale.Serial opts out); rows come back
// stitched in grid order and are bit-identical to a serial sweep.
func Sweep(sc Scale) ([]SweepRow, error) {
	vram := cluster.AC(1).GPU.VRAMBytes
	type cell struct {
		dims volume.Dims
		gpus int
	}
	var cells []cell
	for _, edge := range sc.Edges {
		dims := volume.Cube(edge)
		for _, gpus := range sc.GPUCounts {
			if gpus == 1 && dims.Bytes() >= vram {
				continue // cannot hold the volume on one device in core
			}
			cells = append(cells, cell{dims: dims, gpus: gpus})
		}
	}
	workers := sc.poolWidth(len(cells))
	devWorkers := schedule.DeviceWorkers(workers)
	return schedule.Map(workers, len(cells), func(i int) (SweepRow, error) {
		c := cells[i]
		res, err := RenderConfigWorkers(dataset.Skull, c.dims, c.gpus, sc.ImageSize, devWorkers, sc.mutate(nil))
		if err != nil {
			return SweepRow{}, fmt.Errorf("sweep %v on %d GPUs: %w", c.dims, c.gpus, err)
		}
		return SweepRow{
			Dataset:    dataset.Skull,
			Dims:       c.dims,
			GPUs:       c.gpus,
			Bricks:     res.Grid.NumBricks(),
			Stage:      res.Stats.MeanStage,
			Runtime:    res.Runtime,
			FPS:        res.FPS,
			VPSM:       res.VPSMillions,
			MapCompute: res.Stats.MapCompute,
			MapComm:    res.Stats.MapComm,
			Emitted:    res.Stats.TotalEmitted,
		}, nil
	})
}
