package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/sim"
	"gvmr/internal/transfer"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

// OocBenchConfig records the out-of-core workload: the orbit rendered
// twice — once from host RAM, once demand-paged from a bricked v2 file
// through a staging budget a fraction of the dense volume — plus the
// machine it ran on.
type OocBenchConfig struct {
	Scale              string `json:"scale"`
	Dataset            string `json:"dataset"`
	Dims               string `json:"dims"`
	GPUs               int    `json:"gpus"`
	BricksPerGPU       int    `json:"bricks_per_gpu"`
	Frames             int    `json:"frames"`
	ImageSize          int    `json:"image_size"`
	Shading            bool   `json:"shading"`
	FileBrickEdge      int    `json:"file_brick_edge"`
	Compressed         bool   `json:"compressed"`
	FileBytes          int64  `json:"file_bytes"`
	DenseBytes         int64  `json:"dense_bytes"`
	StagingBudgetBytes int64  `json:"staging_budget_bytes"`
	GOMAXPROCS         int    `json:"gomaxprocs"`
	NumCPU             int    `json:"num_cpu"`
}

// OocBenchLeg is one timed execution of the orbit.
type OocBenchLeg struct {
	WallSeconds    float64 `json:"wall_seconds"`
	VirtualSeconds float64 `json:"virtual_seconds"`
}

// OocSparse is the empty-margin half of the record: a volume whose field
// occupies only the central eighth (a sparse capture), rendered paged so
// the file directory's per-brick min/max can prove margin render bricks
// invisible and skip their disk reads entirely.
type OocSparse struct {
	Dims          string `json:"dims"`
	FileBricks    int    `json:"file_bricks"`
	FileBrickEdge int    `json:"file_brick_edge"`
	RenderBricks  int    `json:"render_bricks"`
	SkippedBricks int64  `json:"skipped_bricks"`
	BrickReads    int64  `json:"brick_reads"`
	BitIdentical  bool   `json:"bit_identical"`
}

// OocBench is the machine-readable record cmd/benchsuite writes to
// BENCH_ooc.json: the paged-vs-in-RAM wall and virtual comparison (the
// paging tax is host wall-clock only; virtual figures and pixels must be
// identical), the pager/staging-cache counters proving the render
// actually streamed, and the sparse-volume brick-skip figures.
type OocBench struct {
	Config    OocBenchConfig `json:"config"`
	InRAM     OocBenchLeg    `json:"in_ram"`
	Paged     OocBenchLeg    `json:"paged"`
	WallRatio float64        `json:"wall_ratio"` // paged / in-RAM
	// VirtualRatio is paged virtual time over in-RAM virtual time. It is
	// ~1 but not exactly 1: in-RAM bricks share the whole-volume macrocell
	// grid (anchored at the origin) while paged bricks build private
	// ghost-anchored grids, so cell boundaries — and thus the skip-step
	// accounting the simulation charges — shift by a few voxels. Pixels
	// are exact either way; only the modeled skip traversal differs.
	VirtualRatio   float64           `json:"virtual_ratio"`
	BitIdentical   bool              `json:"bit_identical"`
	Pager          volume.PagerStats `json:"pager"`
	CacheEvictions int64             `json:"cache_evictions"`
	Sparse         OocSparse         `json:"sparse"`
}

// RunOocBench renders a `frames`-frame orbit of the skull dataset at the
// scale's Figure 2 size on a 4-GPU cluster twice: from the in-RAM source,
// and demand-paged from a compressed bricked v2 file through a staging
// cache capped at a quarter of the dense volume. Digests and virtual
// runtimes must match frame for frame — paging is a host-memory strategy,
// invisible to the simulation — and the pager counters must show bricks
// cycling through the budget (evictions and reloads). A second, sparse
// volume (the skull embedded in wide zero margins) is rendered paged vs
// in-RAM to measure directory-min/max brick skipping.
func RunOocBench(sc Scale, frames int) (*OocBench, error) {
	dims := volume.Cube(sc.Fig2Edge)
	src, err := dataset.New(dataset.Skull, dims)
	if err != nil {
		return nil, err
	}
	tf, err := transfer.Preset(dataset.Skull)
	if err != nil {
		return nil, err
	}
	opt := core.Options{
		Source: src, TF: tf,
		Width: sc.ImageSize, Height: sc.ImageSize,
		Shading:      true,
		BricksPerGPU: 4,
		NoEmptySkip:  sc.NoSkip,
	}
	spec := cluster.AC(4)
	cams, err := core.OrbitCameras(src, sc.ImageSize, sc.ImageSize, frames, 360)
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "gvmr-oocbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "skull.gvmr")
	if err := volume.WriteFileV2(path, src, volume.V2Options{Compress: true}); err != nil {
		return nil, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	ps, err := volume.OpenFileV2(path)
	if err != nil {
		return nil, err
	}
	defer ps.Close()
	budget := dims.Bytes() / 4
	cache := volume.NewStagingCache(budget)
	ps.SetCache(cache)

	// Pre-warm the in-RAM source (materialise the dataset once, untimed)
	// so its timed leg stages out of host memory like a resident dataset.
	warm, err := spec.Instance()
	if err != nil {
		return nil, err
	}
	if _, err := core.Render(warm, opt); err != nil {
		return nil, err
	}

	run := func(s volume.Source) ([]*core.Result, float64, error) {
		cl, err := spec.Instance()
		if err != nil {
			return nil, 0, err
		}
		o := opt
		o.Source = s
		start := time.Now()
		results, err := core.RenderFrames(cl, o, cams)
		return results, time.Since(start).Seconds(), err
	}
	ram, ramWall, err := run(src)
	if err != nil {
		return nil, err
	}
	paged, pagedWall, err := run(ps)
	if err != nil {
		return nil, err
	}

	identical := len(ram) == len(paged)
	var ramVirtual, pagedVirtual sim.Time
	for i := range ram {
		if !identical {
			break
		}
		identical = ram[i].Image.Digest() == paged[i].Image.Digest()
		ramVirtual += ram[i].Runtime
		pagedVirtual += paged[i].Runtime
	}

	sparse, err := runOocSparse(sc, tf)
	if err != nil {
		return nil, err
	}

	out := &OocBench{
		Config: OocBenchConfig{
			Scale:              sc.Name,
			Dataset:            dataset.Skull,
			Dims:               dims.String(),
			GPUs:               4,
			BricksPerGPU:       opt.BricksPerGPU,
			Frames:             frames,
			ImageSize:          sc.ImageSize,
			Shading:            true,
			FileBrickEdge:      volume.DefaultBrickEdge,
			Compressed:         true,
			FileBytes:          fi.Size(),
			DenseBytes:         dims.Bytes(),
			StagingBudgetBytes: budget,
			GOMAXPROCS:         runtime.GOMAXPROCS(0),
			NumCPU:             runtime.NumCPU(),
		},
		InRAM:          OocBenchLeg{WallSeconds: ramWall, VirtualSeconds: ramVirtual.Seconds()},
		Paged:          OocBenchLeg{WallSeconds: pagedWall, VirtualSeconds: pagedVirtual.Seconds()},
		BitIdentical:   identical,
		Pager:          ps.Stats(),
		CacheEvictions: cache.Stats().Evictions,
		Sparse:         *sparse,
	}
	if ramWall > 0 {
		out.WallRatio = pagedWall / ramWall
	}
	if ramVirtual > 0 {
		out.VirtualRatio = pagedVirtual.Seconds() / ramVirtual.Seconds()
	}
	return out, nil
}

// runOocSparse builds the sparse volume — the skull at a quarter of the
// edge, embedded in the centre of an exactly-zero cube — renders it once
// in RAM and once paged, and reports the skip counters. The file brick
// edge is an eighth of the cube so margin bricks record [0,0] ranges the
// transfer function maps to nothing.
func runOocSparse(sc Scale, tf *transfer.Func) (*OocSparse, error) {
	edge := sc.Fig2Edge
	inner, err := dataset.New(dataset.Skull, volume.Cube(edge/4))
	if err != nil {
		return nil, err
	}
	buf := make([]float32, inner.Dims().Voxels())
	if err := inner.Fill(volume.Region{Ext: inner.Dims()}, buf); err != nil {
		return nil, err
	}
	d := volume.Cube(edge)
	v := volume.New(d)
	n, org := edge/4, edge/4+edge/8 // centred: [3e/8, 5e/8)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v.Set(org+x, org+y, org+z, buf[x+n*(y+n*z)])
			}
		}
	}
	src := volume.NewVolumeSource(v, "sparse-skull")

	dir, err := os.MkdirTemp("", "gvmr-oocsparse")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sparse.gvmr")
	if err := volume.WriteFileV2(path, src, volume.V2Options{BrickEdge: edge / 8, Compress: true}); err != nil {
		return nil, err
	}
	ps, err := volume.OpenFileV2(path)
	if err != nil {
		return nil, err
	}
	defer ps.Close()
	ps.SetCache(volume.NewStagingCache(d.Bytes() * 2))

	render := func(s volume.Source) (*core.Result, error) {
		cl, err := cluster.AC(4).Instance()
		if err != nil {
			return nil, err
		}
		return core.Render(cl, core.Options{
			Source: s, TF: tf,
			Width: sc.ImageSize, Height: sc.ImageSize,
			Shading:      true,
			BricksPerGPU: 4,
			NoEmptySkip:  sc.NoSkip,
		})
	}
	ram, err := render(src)
	if err != nil {
		return nil, err
	}
	paged, err := render(ps)
	if err != nil {
		return nil, err
	}
	st := ps.Stats()
	return &OocSparse{
		Dims:          d.String(),
		FileBricks:    st.Bricks,
		FileBrickEdge: edge / 8,
		RenderBricks:  paged.Grid.NumBricks(),
		SkippedBricks: st.SkippedBricks,
		BrickReads:    st.BrickReads,
		BitIdentical:  ram.Image.Digest() == paged.Image.Digest(),
	}, nil
}

// WriteJSON writes the record, indented, to path.
func (b *OocBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// String summarises the record for benchsuite's console output.
func (b *OocBench) String() string {
	return fmt.Sprintf(
		"oocbench: in-RAM %.2fs wall, paged %.2fs wall (%.2fx), virtual ratio %.3f, bit-identical: %v\n"+
			"oocbench: pager: %d file bricks, %d reads (%.1f MiB of %.1f MiB dense×%d frames), %d reloads, %d cache evictions\n"+
			"oocbench: sparse %s: %d/%d render bricks skipped via directory min/max, %d of %d file bricks read, bit-identical: %v",
		b.InRAM.WallSeconds, b.Paged.WallSeconds, b.WallRatio, b.VirtualRatio, b.BitIdentical,
		b.Pager.Bricks, b.Pager.BrickReads, float64(b.Pager.BytesRead)/(1<<20),
		float64(b.Config.DenseBytes)/(1<<20), b.Config.Frames, b.Pager.Reloads, b.CacheEvictions,
		b.Sparse.Dims, b.Sparse.SkippedBricks, b.Sparse.RenderBricks,
		b.Sparse.BrickReads, b.Sparse.FileBricks, b.Sparse.BitIdentical)
}
