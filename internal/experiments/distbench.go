package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"gvmr/internal/cluster"
	"gvmr/internal/core"
	"gvmr/internal/dist"
	"gvmr/internal/volume/dataset"
)

// DistBenchConfig records the distributed-cluster workload.
type DistBenchConfig struct {
	Scale      string `json:"scale"`
	Dataset    string `json:"dataset"`
	Edge       int    `json:"edge"`
	ImageSize  int    `json:"image_size"`
	Frames     int    `json:"frames"`
	JobGPUs    int    `json:"job_gpus"`    // grid planned for this many devices
	WorkerGPUs int    `json:"worker_gpus"` // simulated GPUs per worker node
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// DistBenchLeg is the orbit rendered through a coordinator over N
// in-process worker nodes. Mode names the topology: "classic" is the
// coordinator-local reduce with the negotiated columnar wire, "raw" the
// same with compression disabled (the A/B control for the compression
// ratio), "reduce" the distributed reduce on the worker fleet.
type DistBenchLeg struct {
	Mode           string  `json:"mode"`
	Workers        int     `json:"workers"`
	VirtualSeconds float64 `json:"virtual_seconds"` // summed frame makespans
	MapSeconds     float64 `json:"map_seconds"`     // slowest-node map phase, summed
	WireSeconds    float64 `json:"wire_seconds"`
	ReduceSeconds  float64 `json:"reduce_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	Fragments      int64   `json:"fragments"`
	WireBytes      int64   `json:"wire_bytes"`
	// Reduce-mode legs split WireBytes into the worker-to-worker
	// exchange and the collect hop into the coordinator.
	ExchangeBytes int64 `json:"exchange_bytes,omitempty"`
	CollectBytes  int64 `json:"collect_bytes,omitempty"`
}

// DistBench is the machine-readable record cmd/benchsuite writes to
// BENCH_cluster.json: a skull orbit rendered directly in-process and
// through distributed clusters — classic (coordinator-local reduce) over
// 1/2/4 workers, an uncompressed-wire A/B control, and the distributed
// reduce over 2/4 workers — with bit-identity against the direct render,
// virtual scaling across worker counts, the wire compression ratio and
// the coordinator's overhead on top of a single worker.
type DistBench struct {
	Config DistBenchConfig `json:"config"`
	// Direct is the single-process baseline (core.RenderOn, no HTTP).
	DirectVirtualSeconds float64        `json:"direct_virtual_seconds"`
	DirectWallSeconds    float64        `json:"direct_wall_seconds"`
	Legs                 []DistBenchLeg `json:"legs"`
	// BitIdentical: every leg's every frame matched the direct digest.
	BitIdentical bool `json:"bit_identical"`
	// SpeedupVirtual1to2/2to4 are map-phase virtual speedups from doubling
	// the cluster (the Hassan-style distributed scaling claim), measured
	// on the classic legs.
	SpeedupVirtual1to2 float64 `json:"speedup_virtual_1to2"`
	SpeedupVirtual2to4 float64 `json:"speedup_virtual_2to4"`
	// SpeedupVirtual1to4 is the end-to-end virtual speedup from growing a
	// 1-worker cluster to 4 workers in its best topology (classic at 1,
	// distributed reduce at 4): the whole-frame scaling claim, with wire
	// and reduce charged, not just the map phase.
	SpeedupVirtual1to4 float64 `json:"speedup_virtual_1to4"`
	// WireCompressionRatio is raw wire bytes over columnar-compressed
	// wire bytes for the 4-worker classic orbit — how much the gvmr-cf1
	// encoding shrinks the fragment traffic.
	WireCompressionRatio float64 `json:"wire_compression_ratio"`
	// CoordinatorOverheadWall is dist(1 worker) wall over direct wall: the
	// price of crossing the process boundary (HTTP, encode/decode, digest
	// verification) before any distribution win.
	CoordinatorOverheadWall float64 `json:"coordinator_overhead_wall"`
	// CoordinatorOverheadVirtual is (wire+reduce)/total for the 1-worker
	// leg: the modeled share of the makespan the coordinator adds.
	CoordinatorOverheadVirtual float64 `json:"coordinator_overhead_virtual"`
}

// distBenchWorkers spins n in-process gvmrd-style workers, each serving
// map batches and the reduce-exchange endpoints.
func distBenchWorkers(n, gpus int) ([]string, func(), error) {
	addrs := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		wk, err := dist.NewWorker(dist.WorkerConfig{Spec: cluster.AC(gpus)})
		if err != nil {
			return nil, nil, err
		}
		mux := http.NewServeMux()
		mux.Handle(dist.MapPath, wk)
		mux.HandleFunc(dist.ReducePath, wk.HandleReducePush)
		mux.HandleFunc(dist.CollectPath, wk.HandleCollect)
		servers[i] = httptest.NewServer(mux)
		addrs[i] = servers[i].URL
	}
	return addrs, func() {
		for _, s := range servers {
			s.Close()
		}
	}, nil
}

// RunDistBench measures the distributed render cluster: `frames` orbit
// views of the skull dataset, rendered (1) directly in-process on the
// job's virtual cluster and (2) through coordinators over 1, 2 and 4
// single-GPU worker nodes. Every distributed frame must digest equal to
// its direct render. Worker processes are in-process HTTP servers, so
// wall times include real serialisation and transport but no physical
// network.
func RunDistBench(sc Scale, frames int) (*DistBench, error) {
	if frames < 1 {
		frames = 4
	}
	// The post-PR1/PR4 kernels are fast enough that the 250ms per-job
	// fixed overhead (charged once per node, in parallel) hides the map
	// phase at small scale; the cluster bench needs map-dominant frames
	// for the scaling signal to mean anything.
	edge, size := 64, 256
	if sc.Name == "paper" {
		edge, size = 128, 512
	}
	const jobGPUs = 4
	const workerGPUs = 1

	b := &DistBench{
		Config: DistBenchConfig{
			Scale: sc.Name, Dataset: dataset.Skull,
			Edge: edge, ImageSize: size, Frames: frames,
			JobGPUs: jobGPUs, WorkerGPUs: workerGPUs,
			GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		},
		BitIdentical: true,
	}

	src, err := dataset.New(dataset.Skull, dataset.PaperDims(dataset.Skull, edge))
	if err != nil {
		return nil, err
	}
	jobs := make([]dist.JobSpec, frames)
	for f := 0; f < frames; f++ {
		cam, err := core.OrbitCamera(src, size, size, 360*float64(f)/float64(frames))
		if err != nil {
			return nil, err
		}
		jobs[f] = dist.JobSpec{
			Dataset: dataset.Skull, Edge: edge,
			Width: size, Height: size,
			GPUs: jobGPUs, Shading: true,
			StepVoxels: 1, TerminationAlpha: 0.98,
			Camera: dist.CameraFrom(cam),
		}
	}

	// Direct baseline; also pre-warms the staging cache so every leg
	// stages out of the same materialised volume, like the serving path.
	digests := make([]string, frames)
	wallStart := time.Now()
	for f, job := range jobs {
		opt, err := job.Options()
		if err != nil {
			return nil, err
		}
		res, dur, err := core.RenderOn(job.PlanSpec(), opt, 0)
		if err != nil {
			return nil, err
		}
		digests[f] = res.Image.Digest()
		b.DirectVirtualSeconds += dur.Seconds()
	}
	b.DirectWallSeconds = time.Since(wallStart).Seconds()

	type legSpec struct {
		mode    string
		workers int
	}
	specs := []legSpec{
		{"classic", 1}, {"classic", 2}, {"classic", 4},
		// The A/B control: the same 4-worker orbit with the columnar wire
		// encoding off. Virtual times barely move (the wire model charges
		// logical bytes); the wire_bytes column is the point.
		{"raw", 4},
		// Reduce on the worker fleet needs at least two peers to exchange.
		{"reduce", 2}, {"reduce", 4},
	}
	for _, spec := range specs {
		addrs, shutdown, err := distBenchWorkers(spec.workers, workerGPUs)
		if err != nil {
			return nil, err
		}
		coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
			Nodes:      addrs,
			NoCompress: spec.mode == "raw",
			DistReduce: spec.mode == "reduce",
		})
		if err != nil {
			shutdown()
			return nil, err
		}
		leg := DistBenchLeg{Mode: spec.mode, Workers: spec.workers}
		legStart := time.Now()
		for f, job := range jobs {
			res, bd, err := coord.RenderDetailed(context.Background(), job)
			if err != nil {
				shutdown()
				return nil, fmt.Errorf("distbench: %s/%d workers frame %d: %w", spec.mode, spec.workers, f, err)
			}
			if res.Image.Digest() != digests[f] {
				b.BitIdentical = false
			}
			leg.VirtualSeconds += res.Runtime.Seconds()
			leg.MapSeconds += bd.Map.Seconds()
			leg.WireSeconds += bd.Wire.Seconds()
			leg.ReduceSeconds += bd.Reduce.Seconds()
			leg.Fragments += bd.Fragments
			leg.WireBytes += bd.WireBytes
			leg.ExchangeBytes += bd.ExchangeBytes
			leg.CollectBytes += bd.CollectBytes
		}
		leg.WallSeconds = time.Since(legStart).Seconds()
		shutdown()
		if spec.mode == "reduce" {
			// An in-process fleet has no excuse to abandon an exchange; a
			// fallback here would mean the leg silently measured the
			// classic path instead.
			if st := coord.Stats(); st.ReduceFallbacks > 0 || st.ReduceJobs != int64(frames) {
				return nil, fmt.Errorf("distbench: reduce/%d workers fell back (%d exchanges, %d fallbacks)",
					spec.workers, st.ReduceJobs, st.ReduceFallbacks)
			}
		}
		b.Legs = append(b.Legs, leg)
	}

	one, two, four := *b.Leg("classic", 1), *b.Leg("classic", 2), *b.Leg("classic", 4)
	if two.MapSeconds > 0 {
		b.SpeedupVirtual1to2 = one.MapSeconds / two.MapSeconds
	}
	if four.MapSeconds > 0 {
		b.SpeedupVirtual2to4 = two.MapSeconds / four.MapSeconds
	}
	if r4 := b.Leg("reduce", 4); r4 != nil && r4.VirtualSeconds > 0 {
		b.SpeedupVirtual1to4 = one.VirtualSeconds / r4.VirtualSeconds
	}
	if raw := b.Leg("raw", 4); raw != nil && four.WireBytes > 0 {
		b.WireCompressionRatio = float64(raw.WireBytes) / float64(four.WireBytes)
	}
	if b.DirectWallSeconds > 0 {
		b.CoordinatorOverheadWall = one.WallSeconds / b.DirectWallSeconds
	}
	if one.VirtualSeconds > 0 {
		b.CoordinatorOverheadVirtual = (one.WireSeconds + one.ReduceSeconds) / one.VirtualSeconds
	}
	return b, nil
}

// Leg returns the leg with the given mode and worker count, nil if the
// record has none.
func (b *DistBench) Leg(mode string, workers int) *DistBenchLeg {
	for i := range b.Legs {
		if b.Legs[i].Mode == mode && b.Legs[i].Workers == workers {
			return &b.Legs[i]
		}
	}
	return nil
}

// WriteJSON writes the record.
func (b *DistBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
