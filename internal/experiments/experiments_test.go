package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gvmr/internal/core"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

// tiny returns a scale small enough for unit tests.
func tiny() Scale {
	return Scale{
		Name:      "tiny",
		ImageSize: 48,
		Edges:     []int{16, 32},
		GPUCounts: []int{1, 2, 4},
		Fig2Edge:  16,
		Sec63Edge: 32,

		BaselineRanks:        8,
		BaselineRanksPerNode: 2,
		BaselineEdge:         32,
		BaselineGPUEdge:      32,
		BaselineGPUs:         4,

		AblationEdge: 24,
	}
}

func TestScalesWellFormed(t *testing.T) {
	for _, sc := range []Scale{Paper(), Quick(), tiny()} {
		if sc.ImageSize <= 0 || len(sc.Edges) == 0 || len(sc.GPUCounts) == 0 {
			t.Errorf("scale %q malformed: %+v", sc.Name, sc)
		}
	}
	p := Paper()
	if p.ImageSize != 512 || p.Edges[len(p.Edges)-1] != 1024 || p.GPUCounts[len(p.GPUCounts)-1] != 32 {
		t.Errorf("paper scale does not match the paper's grid: %+v", p)
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv("GVMR_SCALE", "quick")
	if FromEnv().Name != "quick" {
		t.Error("GVMR_SCALE=quick ignored")
	}
	t.Setenv("GVMR_SCALE", "")
	if FromEnv().Name != "paper" {
		t.Error("default scale should be paper")
	}
}

func TestSweepSkipsOversizedSingleGPU(t *testing.T) {
	// A volume >= VRAM must be skipped at 1 GPU (the paper's 1024³ series
	// starts at 2). Exercised indirectly with the rule itself: 16³ and
	// 32³ fit easily, so every configuration of tiny() must be present.
	rows, err := Sweep(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*3 {
		t.Fatalf("sweep rows = %d, want 6", len(rows))
	}
}

func TestSweepRowsOrderedAndPopulated(t *testing.T) {
	rows, err := Sweep(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Runtime <= 0 || r.FPS <= 0 || r.Bricks < r.GPUs {
			t.Errorf("row %+v not populated", r)
		}
	}
	// Tables build without panicking and carry all rows.
	f3 := Fig3(rows)
	if len(f3.Rows) != len(rows) {
		t.Errorf("fig3 rows = %d", len(f3.Rows))
	}
	fps, vps := Fig4(rows)
	if len(fps.Rows) != len(rows) || len(vps.Rows) != len(rows) {
		t.Error("fig4 rows missing")
	}
	eff := Efficiency(rows)
	if len(eff.Rows) != len(rows) {
		t.Error("efficiency rows missing")
	}
	// Efficiency of the base configuration is exactly 1.
	for _, row := range eff.Rows {
		if row[1] == "1" && row[2] != "1.00" {
			t.Errorf("base efficiency = %s", row[2])
		}
	}
}

func TestFig2WritesPNGs(t *testing.T) {
	dir := t.TempDir()
	tab, err := Fig2(tiny(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("fig2 rows = %d", len(tab.Rows))
	}
	for _, name := range dataset.Names() {
		p := filepath.Join(dir, "fig2_"+name+".png")
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("missing %s: %v", p, err)
		}
	}
}

func TestSec63(t *testing.T) {
	rows, tab, err := Sec63(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].GPUs != 8 || rows[1].GPUs != 16 {
		t.Fatalf("sec63 rows = %+v", rows)
	}
	for _, r := range rows {
		if r.MapCompute <= 0 || r.MapComm <= 0 {
			t.Errorf("sec63 row %+v empty", r)
		}
	}
	if !strings.Contains(tab.String(), "comm/comp") {
		t.Error("sec63 table missing ratio column")
	}
}

func TestMicroTableHolds(t *testing.T) {
	tab, err := Micro()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if strings.Contains(out, "false") {
		t.Errorf("a §3 micro-cost claim does not hold:\n%s", out)
	}
}

func TestBaselineCmp(t *testing.T) {
	tab, err := BaselineCmp(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("baseline rows = %d", len(tab.Rows))
	}
}

func TestClaimsReportShape(t *testing.T) {
	rows, err := Sweep(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tab := ClaimsReport(tiny(), rows)
	if len(tab.Rows) == 0 {
		t.Fatal("claims report empty")
	}
}

func TestInOutOfCore(t *testing.T) {
	tab, err := InOutOfCore(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationsRun(t *testing.T) {
	tab, err := Ablations(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 8 {
		t.Fatalf("ablation rows = %d", len(tab.Rows))
	}
}

func TestZeroCopySlower(t *testing.T) {
	tab := ZeroCopy(tiny())
	if len(tab.Rows) != 2 {
		t.Fatal("zero-copy table malformed")
	}
	if !strings.Contains(tab.Rows[1][2], "x") {
		t.Errorf("no slowdown factor: %v", tab.Rows[1])
	}
	// The emission-only slowdown must reflect the ZeroCopyPenalty.
	if tab.Rows[1][2] == "1.00x" {
		t.Errorf("0-copy emission should be much slower: %v", tab.Rows[1])
	}
}

func TestRenderConfigRejectsUnknownDataset(t *testing.T) {
	if _, err := RenderConfig("nope", volume.Cube(8), 1, 16, nil); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRenderConfigMutate(t *testing.T) {
	res, err := RenderConfig(dataset.Skull, volume.Cube(16), 2, 24, func(o *core.Options) {
		o.BricksPerGPU = 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grid.NumBricks() != 4 {
		t.Errorf("mutate ignored: %d bricks", res.Grid.NumBricks())
	}
}

// TestSweepParallelMatchesSerial: fanning sweep cells out across the
// scheduler pool must produce row-for-row identical tables.
func TestSweepParallelMatchesSerial(t *testing.T) {
	serialSc := tiny()
	serialSc.Serial = true
	serial, err := Sweep(serialSc)
	if err != nil {
		t.Fatal(err)
	}
	parSc := tiny()
	parSc.Workers = 4 // force a real pool even on one core
	parallel, err := Sweep(parSc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("sweep rows differ between serial and parallel execution:\nserial   %+v\nparallel %+v",
			serial, parallel)
	}
}

// TestSeqBenchRecord exercises the BENCH_fig2.json generator end to end
// at test scale: both legs must agree bit for bit and the record must
// round-trip through JSON.
func TestSeqBenchRecord(t *testing.T) {
	sc := tiny()
	// 16³ macrocells span a quarter of the volume and nothing is provably
	// empty; 32³ is the smallest edge where the skull orbit skips.
	sc.Fig2Edge = 32
	b, err := RunSeqBench(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !b.BitIdentical {
		t.Error("seqbench legs diverged")
	}
	if b.Serial.WallSeconds <= 0 || b.Parallel.WallSeconds <= 0 || b.SpeedupWall <= 0 {
		t.Errorf("wall-clock fields not populated: %+v", b)
	}
	if b.Config.Frames != 3 || b.Config.Dataset != dataset.Skull {
		t.Errorf("config not recorded: %+v", b.Config)
	}
	if len(b.Virtual.PerFrameSeconds) != 3 || b.Virtual.MeanFPS <= 0 {
		t.Errorf("virtual figures not populated: %+v", b.Virtual)
	}
	if !b.Skip.BitIdentical {
		t.Error("skip-on orbit diverged from skip-off")
	}
	if b.Skip.On.Samples+b.Skip.On.SamplesSkipped != b.Skip.Off.Samples {
		t.Errorf("skip sample conservation broken: %+v", b.Skip)
	}
	if b.Skip.On.SamplesSkipped <= 0 || b.Skip.SampleReduction <= 0 {
		t.Errorf("skip leg did not skip: %+v", b.Skip)
	}
	if b.Skip.Off.MacrocellSteps != 0 || b.Skip.On.MacrocellSteps <= 0 {
		t.Errorf("macrocell traversal accounting wrong: %+v", b.Skip)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := b.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SeqBench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Config != b.Config {
		t.Error("config did not round-trip through JSON")
	}
}
