package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"gvmr/internal/core"
	"gvmr/internal/report"
	"gvmr/internal/schedule"
	"gvmr/internal/sim"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

// Fig2 renders the three evaluation datasets (the paper's Figure 2) and
// writes PNGs to outDir (skipped when outDir is empty). The returned table
// summarises the renders.
func Fig2(sc Scale, outDir string) (*report.Table, error) {
	t := report.New("Figure 2 — dataset renderings",
		"dataset", "resolution", "GPUs", "runtime(s)", "luminance", "file")
	type job struct {
		name string
		dims volume.Dims
	}
	jobs := []job{
		{dataset.Skull, volume.Cube(sc.Fig2Edge)},
		{dataset.Supernova, volume.Cube(sc.Fig2Edge)},
		{dataset.Plume, dataset.PaperDims(dataset.Plume, sc.Fig2Edge*4)},
	}
	// The three dataset renders are independent simulations: fan them out
	// across cores, then write PNGs and table rows in dataset order.
	workers := sc.poolWidth(len(jobs))
	devWorkers := schedule.DeviceWorkers(workers)
	results, err := schedule.Map(workers, len(jobs), func(i int) (*core.Result, error) {
		// Figure renders use gradient shading — the paper's images are
		// shaded (§2: "interpolation and shading calculations").
		res, err := RenderConfigWorkers(jobs[i].name, jobs[i].dims, 4, sc.ImageSize, devWorkers,
			sc.mutate(func(o *core.Options) { o.Shading = true }))
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", jobs[i].name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		res := results[i]
		file := "-"
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return nil, err
			}
			file = filepath.Join(outDir, fmt.Sprintf("fig2_%s.png", j.name))
			if err := res.Image.WritePNG(file); err != nil {
				return nil, err
			}
		}
		t.Add(j.name, j.dims.String(), "4", report.Sec(res.Runtime),
			fmt.Sprintf("%.4f", res.Image.MeanLuminance()), file)
	}
	return t, nil
}

// Fig3 formats the runtime breakdown (Map / Partition+I/O / Sort / Reduce)
// per volume size and GPU count: the paper's Figure 3 stacked bars.
func Fig3(rows []SweepRow) *report.Table {
	t := report.New("Figure 3 — runtime breakdown by stage (mean per GPU, ms)",
		"volume", "GPUs", "bricks", "map", "part+io", "sort", "reduce", "stacked", "makespan(s)")
	for _, r := range rows {
		t.Add(r.Dims.String(), fmt.Sprint(r.GPUs), fmt.Sprint(r.Bricks),
			report.Ms(r.Stage.Map), report.Ms(r.Stage.PartitionIO),
			report.Ms(r.Stage.Sort), report.Ms(r.Stage.Reduce),
			report.Ms(r.Stage.Total()), report.Sec(r.Runtime))
	}
	return t
}

// Fig4 formats the FPS and VPS series of the paper's Figure 4.
func Fig4(rows []SweepRow) (*report.Table, *report.Table) {
	fps := report.New("Figure 4 (left) — framerate (frames/second)",
		"volume", "GPUs", "FPS")
	vps := report.New("Figure 4 (right) — voxels per second (millions)",
		"volume", "GPUs", "MVPS")
	for _, r := range rows {
		fps.Add(r.Dims.String(), fmt.Sprint(r.GPUs), report.F2(r.FPS))
		vps.Add(r.Dims.String(), fmt.Sprint(r.GPUs), report.F0(r.VPSM))
	}
	return fps, vps
}

// Efficiency formats parallel efficiency (§4.2's third figure of merit):
// T(base)/(Y/base · T(Y)) per volume size, using each series' smallest
// rendered GPU count as base.
func Efficiency(rows []SweepRow) *report.Table {
	t := report.New("Parallel efficiency (§4.2), base = smallest GPU count per series",
		"volume", "GPUs", "efficiency")
	base := map[string]SweepRow{}
	for _, r := range rows {
		key := r.Dims.String()
		if b, ok := base[key]; !ok || r.GPUs < b.GPUs {
			base[key] = r
		}
	}
	for _, r := range rows {
		b := base[r.Dims.String()]
		eff := b.Runtime.Seconds() * float64(b.GPUs) / (float64(r.GPUs) * r.Runtime.Seconds())
		t.Add(r.Dims.String(), fmt.Sprint(r.GPUs), report.F2(eff))
	}
	return t
}

// Sec63Row is one line of the §6.3 bottleneck analysis.
type Sec63Row struct {
	GPUs       int
	MapCompute sim.Time
	MapComm    sim.Time
}

// Sec63 reproduces the §6.3 map-phase analysis: communication vs
// computation for the large volume at 8 and 16 GPUs (paper: 503 ms compute
// / 515 ms comm at 8 GPUs; 97 ms compute / >1 s comm at 16).
func Sec63(sc Scale) ([]Sec63Row, *report.Table, error) {
	t := report.New(fmt.Sprintf("§6.3 — map-phase bottleneck analysis, %d³ volume (mean per GPU)", sc.Sec63Edge),
		"GPUs", "computation(ms)", "communication(ms)", "comm/comp")
	var out []Sec63Row
	for _, gpus := range []int{8, 16} {
		res, err := RenderConfig(dataset.Skull, volume.Cube(sc.Sec63Edge), gpus, sc.ImageSize, sc.mutate(nil))
		if err != nil {
			return nil, nil, err
		}
		row := Sec63Row{GPUs: gpus, MapCompute: res.Stats.MapCompute, MapComm: res.Stats.MapComm}
		out = append(out, row)
		ratio := float64(row.MapComm) / float64(row.MapCompute)
		t.Add(fmt.Sprint(gpus), report.Ms(row.MapCompute), report.Ms(row.MapComm), report.F2(ratio))
	}
	return out, t, nil
}

// ClaimsReport checks the paper's headline claims against the model:
// 1024³ in under a second on 8 GPUs (abstract); the best runtime for
// ≤512³ volumes sits at 8 GPUs (Fig. 3 discussion); and 32 GPUs beat 16
// for the largest volume.
func ClaimsReport(sc Scale, rows []SweepRow) *report.Table {
	t := report.New("Headline claims (paper → measured)", "claim", "paper", "measured", "holds")
	byEdge := map[int]map[int]SweepRow{}
	maxEdge := 0
	for _, r := range rows {
		if byEdge[r.Dims.X] == nil {
			byEdge[r.Dims.X] = map[int]SweepRow{}
		}
		byEdge[r.Dims.X][r.GPUs] = r
		if r.Dims.X > maxEdge {
			maxEdge = r.Dims.X
		}
	}
	// Claim 1: the largest volume renders in < 1 s with 8 GPUs (or, on
	// reduced scales without an 8-GPU column, the largest GPU count run).
	claimGPUs := 8
	if _, ok := byEdge[maxEdge][claimGPUs]; !ok {
		claimGPUs = 0
		for g := range byEdge[maxEdge] {
			if g > claimGPUs {
				claimGPUs = g
			}
		}
	}
	if r, ok := byEdge[maxEdge][claimGPUs]; ok {
		t.Add(fmt.Sprintf("%d³ on %d GPUs < 1 s", maxEdge, claimGPUs), "<1s",
			report.Sec(r.Runtime)+"s", fmt.Sprint(r.Runtime < sim.Second))
	}
	// Claim 2: the best configuration for the smaller volumes is 8 GPUs.
	for _, edge := range sc.Edges {
		if edge == maxEdge {
			continue
		}
		series, ok := byEdge[edge]
		if !ok {
			continue
		}
		bestGPUs, best := 0, sim.Time(1<<62)
		for g, r := range series {
			if r.Runtime < best {
				best, bestGPUs = r.Runtime, g
			}
		}
		t.Add(fmt.Sprintf("best GPU count for %d³", edge), "8",
			fmt.Sprint(bestGPUs), fmt.Sprint(bestGPUs == 8))
	}
	// Claim 3: for the largest volume, 32 GPUs beat 16.
	if r16, ok := byEdge[maxEdge][16]; ok {
		if r32, ok := byEdge[maxEdge][32]; ok {
			t.Add(fmt.Sprintf("%d³: 32 GPUs faster than 16", maxEdge), "yes",
				fmt.Sprintf("16→%s, 32→%s", report.Sec(r16.Runtime), report.Sec(r32.Runtime)),
				fmt.Sprint(r32.Runtime < r16.Runtime))
		}
	}
	return t
}

// InOutOfCore compares in-core, out-of-core (disk-streamed), and in-situ
// (§7) rendering of the same volume. The paper's §6.3 observes that
// "reading bricks from disk can take several orders of magnitude more
// time than the entire MapReduce process", and proposes in-situ delivery
// over the interconnect as the remedy — both effects are measured here.
func InOutOfCore(sc Scale) (*report.Table, error) {
	t := report.New("In-core vs out-of-core vs in-situ (abstract + §6.3/§7)",
		"mode", "volume", "GPUs", "runtime(s)", "MVPS")
	dims := volume.Cube(sc.Edges[len(sc.Edges)-1])
	gpus := 2
	modes := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"in-core", func(o *core.Options) {}},
		{"out-of-core (disk)", func(o *core.Options) { o.FromDisk = true }},
		{"in-situ (interconnect hand-off)", func(o *core.Options) { o.InSitu = true }},
	}
	for _, m := range modes {
		res, err := RenderConfig(dataset.Skull, dims, gpus, sc.ImageSize, sc.mutate(m.mutate))
		if err != nil {
			return nil, err
		}
		t.Add(m.name, dims.String(), fmt.Sprint(gpus), report.Sec(res.Runtime), report.F0(res.VPSMillions))
	}
	return t, nil
}
