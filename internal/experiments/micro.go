package experiments

import (
	"fmt"

	"gvmr/internal/baseline"
	"gvmr/internal/cluster"
	"gvmr/internal/composite"
	"gvmr/internal/core"
	"gvmr/internal/report"
	"gvmr/internal/sim"
	"gvmr/internal/transfer"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

// Micro reproduces the §3 micro-cost claims: a 64³ brick loads from disk
// in ≈20 ms, transfers to the GPU in <0.2 ms (<1% overhead), and a 512²
// image's worth of ray fragments reads back in <2 ms.
func Micro() (*report.Table, error) {
	t := report.New("§3 micro-costs (paper → measured)",
		"operation", "paper", "measured", "holds")
	env := sim.NewEnv()
	cl, err := cluster.New(env, cluster.AC(1))
	if err != nil {
		return nil, err
	}
	brickBytes := int64(64 * 64 * 64 * 4)
	fragBytes := int64(512*512) * composite.FragmentBytes
	var disk, h2d, d2h sim.Time
	env.Go("micro", func(p *sim.Proc) {
		start := p.Now()
		cl.Nodes[0].ReadDisk(p, brickBytes)
		disk = p.Now() - start

		bd := &volume.BrickData{Data: make([]float32, brickBytes/4)}
		start = p.Now()
		tex, err := cl.Device(0).UploadTexture3D(p, bd)
		if err != nil {
			panic(err)
		}
		h2d = p.Now() - start
		tex.Free()

		start = p.Now()
		cl.Device(0).Download(p, fragBytes)
		d2h = p.Now() - start
	})
	if err := env.Run(); err != nil {
		return nil, err
	}
	t.Add("64³ brick from disk", "≈20 ms", report.Ms(disk)+" ms",
		fmt.Sprint(disk > 15*sim.Millisecond && disk < 25*sim.Millisecond))
	t.Add("64³ brick to GPU (PCIe)", "<0.2 ms", report.Ms(h2d)+" ms",
		fmt.Sprint(h2d < 200*sim.Microsecond))
	t.Add("512² ray fragments GPU→CPU", "<2 ms", report.Ms(d2h)+" ms",
		fmt.Sprint(d2h < 2*sim.Millisecond))
	t.Add("PCIe overhead vs 20 ms disk load", "<1%", report.F2(float64(h2d)/float64(disk)*100)+" %",
		fmt.Sprint(float64(h2d)/float64(disk) < 0.01))
	return t, nil
}

// BaselineCmp reproduces footnote 1: the CPU-cluster reference renderer
// (ParaView stand-in) vs the MapReduce GPU renderer. The paper reports
// ParaView at 346 MVPS on 512 processes and the GPU renderer at more than
// double that with 16 GPUs.
func BaselineCmp(sc Scale) (*report.Table, error) {
	t := report.New("Footnote 1 — CPU-cluster baseline vs multi-GPU MapReduce",
		"renderer", "resources", "volume", "runtime(s)", "MVPS")
	dims := volume.Cube(sc.BaselineEdge)

	src, err := dataset.New(dataset.Skull, dims)
	if err != nil {
		return nil, err
	}
	tf, err := transfer.Preset(dataset.Skull)
	if err != nil {
		return nil, err
	}
	env := sim.NewEnv()
	cpuRes, err := baseline.Render(env, sc.BaselineRanks, sc.BaselineRanksPerNode, core.Options{
		Source: src, TF: tf, Width: sc.ImageSize, Height: sc.ImageSize,
	})
	if err != nil {
		return nil, err
	}
	t.Add("CPU cluster (ParaView stand-in)",
		fmt.Sprintf("%d ranks", sc.BaselineRanks), dims.String(),
		report.Sec(cpuRes.Runtime), report.F0(cpuRes.VPSMillions))

	gpuRes, err := RenderConfig(dataset.Skull, dims, sc.BaselineGPUs, sc.ImageSize, sc.mutate(nil))
	if err != nil {
		return nil, err
	}
	t.Add("MapReduce multi-GPU",
		fmt.Sprintf("%d GPUs", sc.BaselineGPUs), dims.String(),
		report.Sec(gpuRes.Runtime), report.F0(gpuRes.VPSMillions))

	ratio := gpuRes.VPSMillions / cpuRes.VPSMillions
	t.Add("same-volume speedup", "", "", "", report.F2(ratio)+"x")

	// The paper's footnote compares its best measured rate against
	// ParaView's published 346 MVPS; peak VPS comes from the largest
	// volume (Figure 4).
	peakDims := volume.Cube(sc.BaselineGPUEdge)
	peakRes, err := RenderConfig(dataset.Skull, peakDims, sc.BaselineGPUs, sc.ImageSize, sc.mutate(nil))
	if err != nil {
		return nil, err
	}
	t.Add("MapReduce multi-GPU (peak volume)",
		fmt.Sprintf("%d GPUs", sc.BaselineGPUs), peakDims.String(),
		report.Sec(peakRes.Runtime), report.F0(peakRes.VPSMillions))
	t.Add("peak speedup (paper: >2x vs 346 MVPS)", "", "", "",
		report.F2(peakRes.VPSMillions/cpuRes.VPSMillions)+"x")
	return t, nil
}
