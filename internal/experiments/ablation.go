package experiments

import (
	"fmt"

	"gvmr/internal/core"
	"gvmr/internal/gpu"
	"gvmr/internal/mapreduce"
	"gvmr/internal/report"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

// Ablations runs the §6.1/§7 design-choice experiments: the compositing
// topology, the sampling technique, reduce placement, chunk scheduling,
// partitioning, and the 0-copy emission estimate. Each row is one full
// frame render at the ablation scale.
func Ablations(sc Scale) (*report.Table, error) {
	t := report.New(fmt.Sprintf("§6.1/§7 ablations — %d³ skull, %d GPUs, %d² image",
		sc.AblationEdge, 8, sc.ImageSize),
		"variant", "runtime(s)", "MVPS", "notes")
	dims := volume.Cube(sc.AblationEdge)
	gpus := 8

	run := func(name, notes string, mutate func(*core.Options)) error {
		res, err := RenderConfig(dataset.Skull, dims, gpus, sc.ImageSize, sc.mutate(mutate))
		if err != nil {
			return fmt.Errorf("ablation %q: %w", name, err)
		}
		t.Add(name, report.Sec(res.Runtime), report.F0(res.VPSMillions), notes)
		return nil
	}

	cases := []struct {
		name   string
		notes  string
		mutate func(*core.Options)
	}{
		{"direct-send (paper)", "baseline", nil},
		{"binary-swap compositing", "§6.1 alternative topology",
			func(o *core.Options) { o.Compositor = core.BinarySwap }},
		{"slicing sampler", "§6.1: only the map phase changes",
			func(o *core.Options) { o.Sampler = core.Slicing }},
		{"reduce on GPU", "§3.1.2: paper found CPU faster",
			func(o *core.Options) { o.ReduceOn = mapreduce.OnGPU; o.SortOn = mapreduce.OnGPU }},
		{"dynamic chunk queue", "paper omits advanced scheduling",
			func(o *core.Options) { o.Assign = mapreduce.AssignDynamic }},
		{"image-block partitioning", "§6: blocked distribution",
			func(o *core.Options) {
				o.Partitioner = mapreduce.Blocked{KeyRange: int32(sc.ImageSize * sc.ImageSize)}
			}},
		{"striped partitioning", "§6: striped distribution",
			func(o *core.Options) {
				o.Partitioner = mapreduce.Striped{Width: sc.ImageSize, StripeHeight: 8}
			}},
		{"checkerboard partitioning", "§6: checkerboard distribution",
			func(o *core.Options) {
				o.Partitioner = mapreduce.Checkerboard{Width: sc.ImageSize, Tile: 16}
			}},
		{"4 bricks per GPU", "paper: bricks within ~4x of GPUs",
			func(o *core.Options) { o.BricksPerGPU = 4 }},
		{"gradient shading", "§2 shading; 6 extra fetches/sample",
			func(o *core.Options) { o.Shading = true }},
	}
	for _, c := range cases {
		if err := run(c.name, c.notes, c.mutate); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ZeroCopy estimates the §7 0-copy emission idea with the kernel cost
// model: the same ray-cast kernel stats with fragments emitted to
// host-mapped memory instead of VRAM. The paper's caveat is about the
// memory itself — "0-copy memory is orders of magnitude slower than GPU
// VRAM" — so the table shows both the isolated emission cost (where the
// slowdown is stark) and the whole-kernel effect (where sampling hides
// most of it, which is why §7 still calls it "a research topic" with
// "potential for significant overlap").
func ZeroCopy(sc Scale) *report.Table {
	t := report.New("§7 — 0-copy emission estimate (kernel cost model)",
		"emission target", "emission(ms)", "emission slowdown", "whole kernel(ms)", "kernel slowdown")
	spec := gpu.TeslaC1060()
	// A representative brick kernel: 512² threads, ~128 samples per
	// hitting ray, one emission per thread.
	stats := gpu.Stats{
		Threads: 512 * 512,
		Samples: 512 * 512 * 128 / 2,
		Emitted: 512 * 512,
	}
	emitOnly := gpu.Stats{Emitted: stats.Emitted}
	emitVRAM := gpu.KernelCost(&spec, emitOnly, false) - spec.LaunchOverhead
	emitZC := gpu.KernelCost(&spec, emitOnly, true) - spec.LaunchOverhead
	vram := gpu.KernelCost(&spec, stats, false)
	zc := gpu.KernelCost(&spec, stats, true)
	t.Add("VRAM (paper's design)", report.Ms(emitVRAM), "1.00x", report.Ms(vram), "1.00x")
	t.Add("0-copy host memory", report.Ms(emitZC),
		report.F2(float64(emitZC)/float64(emitVRAM))+"x",
		report.Ms(zc), report.F2(float64(zc)/float64(vram))+"x")
	return t
}
