package core

import (
	"fmt"
	"sort"
	"sync"

	"gvmr/internal/mapreduce"
	"gvmr/internal/volume"
)

// Partition assigns bricks to map units. The default (nil) is the
// paper's convex regime: one unit per brick, so a ray crosses each unit
// at most once and every (unit, pixel) cell holds at most one fragment.
// A non-nil Partition groups bricks into arbitrary — possibly
// non-convex — units: a ray may then re-enter a unit once per connected
// span, and its (unit, pixel) cell carries a fragment *list*, one
// fragment per span (Sahistan et al., arXiv 2209.14537). The compositing
// fold is unchanged either way because surviving entry depths stay
// strictly distinct per pixel (DESIGN.md §12).
type Partition interface {
	// Name identifies the assignment for stats, request keys and wire
	// specs (e.g. "interleave:2").
	Name() string
	// Parts returns the number of units the grid is split into.
	Parts(g *volume.Grid) int
	// Assign maps a brick to its unit in [0, Parts(g)).
	Assign(b volume.Brick, g *volume.Grid) int
}

// Interleaved is the deliberately adversarial builtin: bricks are
// assigned by the parity sum of their grid index, (ix+iy+iz) mod
// NumParts — a 3D checkerboard. Every axis-aligned step between
// neighbouring bricks changes the unit, so any ray crossing k bricks
// re-enters its units ~k/NumParts times: the worst case for a renderer
// that assumes convex partitions, and exactly the case the non-convex
// golden battery pins.
type Interleaved struct {
	NumParts int
}

// Name implements Partition.
func (ip Interleaved) Name() string { return fmt.Sprintf("interleave:%d", ip.NumParts) }

// Parts implements Partition.
func (ip Interleaved) Parts(*volume.Grid) int { return ip.NumParts }

// Assign implements Partition.
func (ip Interleaved) Assign(b volume.Brick, _ *volume.Grid) int {
	return (b.Index[0] + b.Index[1] + b.Index[2]) % ip.NumParts
}

// partitionRegistry maps scheme names to builders so remote job specs
// and HTTP requests can name partitions without shipping code.
var partitionRegistry = struct {
	sync.Mutex
	m map[string]func(parts int) (Partition, error)
}{m: map[string]func(parts int) (Partition, error){}}

func init() {
	RegisterPartition("interleave", func(parts int) (Partition, error) {
		return Interleaved{NumParts: parts}, nil
	})
}

// RegisterPartition registers a named partition scheme. The builder
// receives the requested unit count. Registering a taken name panics:
// scheme names are part of the wire contract between coordinators and
// workers, so silent replacement would let two daemons disagree on what
// a name means.
func RegisterPartition(scheme string, build func(parts int) (Partition, error)) {
	if scheme == "" || build == nil {
		panic("core: RegisterPartition with empty scheme or nil builder")
	}
	partitionRegistry.Lock()
	defer partitionRegistry.Unlock()
	if _, dup := partitionRegistry.m[scheme]; dup {
		panic(fmt.Sprintf("core: partition scheme %q registered twice", scheme))
	}
	partitionRegistry.m[scheme] = build
}

// BuildPartition constructs a registered scheme with the given unit
// count. parts must be in [2, 4096]: 1 is the convex default (pass nil
// instead) and the upper bound keeps hostile requests from planning
// absurd unit tables.
func BuildPartition(scheme string, parts int) (Partition, error) {
	if parts < 2 || parts > 4096 {
		return nil, fmt.Errorf("core: partition parts %d outside [2, 4096]", parts)
	}
	partitionRegistry.Lock()
	build := partitionRegistry.m[scheme]
	partitionRegistry.Unlock()
	if build == nil {
		return nil, fmt.Errorf("core: unknown partition scheme %q", scheme)
	}
	return build(parts)
}

// PartitionSchemes returns the registered scheme names, sorted.
func PartitionSchemes() []string {
	partitionRegistry.Lock()
	defer partitionRegistry.Unlock()
	names := make([]string, 0, len(partitionRegistry.m))
	for name := range partitionRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// planUnits groups the grid's bricks into map units under p: units[u]
// lists unit u's bricks ascending by brick ID (the canonical in-unit
// order every layer folds in). Every unit must be non-empty — an empty
// unit would make unit counts ambiguous across layers — and every
// assignment must land in [0, Parts).
func planUnits(g *volume.Grid, p Partition) ([][]volume.Brick, error) {
	n := p.Parts(g)
	if n < 1 {
		return nil, fmt.Errorf("core: partition %q has %d units", p.Name(), n)
	}
	units := make([][]volume.Brick, n)
	for _, b := range g.Bricks {
		u := p.Assign(b, g)
		if u < 0 || u >= n {
			return nil, fmt.Errorf("core: partition %q assigns brick %d to unit %d of %d",
				p.Name(), b.ID, u, n)
		}
		units[u] = append(units[u], b)
	}
	for u, bricks := range units {
		if len(bricks) == 0 {
			return nil, fmt.Errorf("core: partition %q leaves unit %d of %d empty on a %d-brick grid",
				p.Name(), u, n, g.NumBricks())
		}
	}
	return units, nil
}

// NumUnits returns the number of map units a job with these options has
// on the given grid: the partition's unit count, or one per brick for
// the convex default. Coordinators and workers both call this so their
// placement, completion counting and stripe validation agree.
func NumUnits(g *volume.Grid, p Partition) (int, error) {
	if p == nil {
		return g.NumBricks(), nil
	}
	units, err := planUnits(g, p)
	if err != nil {
		return 0, err
	}
	return len(units), nil
}

// jobUnits returns the job's unit table: planUnits under a Partition,
// one singleton unit per brick (unit ID = brick ID) otherwise.
func jobUnits(g *volume.Grid, p Partition) ([][]volume.Brick, error) {
	if p == nil {
		units := make([][]volume.Brick, g.NumBricks())
		for i, b := range g.Bricks {
			units[i] = []volume.Brick{b}
		}
		return units, nil
	}
	return planUnits(g, p)
}

// unitChunk adapts one map unit — one brick in the convex default,
// several under a Partition — to the MapReduce Chunk interface. Chunk
// IDs are unit IDs; for singleton units they coincide with brick IDs,
// which keeps the convex path's placement, charges and stats identical
// to the pre-partition code.
type unitChunk struct {
	id     int
	bricks []volume.Brick // ascending by brick ID
}

// ID implements mapreduce.Chunk.
func (c unitChunk) ID() int { return c.id }

// Bytes implements mapreduce.Chunk: the ghost-region payload that moves
// from disk to host memory to VRAM, summed over the unit's bricks.
func (c unitChunk) Bytes() int64 {
	var n int64
	for _, b := range c.bricks {
		n += b.Bytes()
	}
	return n
}

// unitChunks builds the engine chunk list for the given units.
func unitChunks(units [][]volume.Brick) []mapreduce.Chunk {
	chunks := make([]mapreduce.Chunk, 0, len(units))
	for id, bricks := range units {
		chunks = append(chunks, unitChunk{id: id, bricks: bricks})
	}
	return chunks
}
