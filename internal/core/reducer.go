package core

import (
	"gvmr/internal/composite"
	"gvmr/internal/vec"
)

// pixelResult is one finished pixel produced by a reducer, gathered during
// stitching.
type pixelResult struct {
	Key   int32
	Color vec.V4
}

// imageReducer is the direct-send Reducer: for each pixel key it
// ascending-depth sorts the ray fragments, composites front to back and
// blends the background (§3.2). It accumulates its shard of final pixels
// for the (untimed) stitch.
type imageReducer struct {
	background vec.V4
	pixels     []pixelResult
}

// Reduce implements mapreduce.Reducer.
func (r *imageReducer) Reduce(key int32, frags []composite.Fragment) {
	c := composite.CompositePixel(frags, r.background)
	r.pixels = append(r.pixels, pixelResult{Key: key, Color: c})
}

// fragmentCollector is the binary-swap Reducer: it keeps each pixel's
// fragments (depth-sorted but uncomposited) as this node's "partial
// image"; the swap rounds exchange and merge these lists before a final
// local composite. Keeping fragments rather than pre-blended pixels keeps
// compositing exact even when bricks from different nodes interleave in
// depth.
type fragmentCollector struct {
	pixels map[int32][]composite.Fragment
}

// Reduce implements mapreduce.Reducer.
func (r *fragmentCollector) Reduce(key int32, frags []composite.Fragment) {
	sorted := append([]composite.Fragment(nil), frags...)
	composite.SortByDepth(sorted)
	r.pixels[key] = sorted
}
