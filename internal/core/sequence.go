package core

import (
	"fmt"
	"math"

	"gvmr/internal/camera"
	"gvmr/internal/cluster"
	"gvmr/internal/img"
	"gvmr/internal/mapreduce"
	"gvmr/internal/schedule"
	"gvmr/internal/sim"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
)

// SequenceStats sums the per-frame MapReduce statistics of a sequence in
// frame order. Serial and parallel execution produce bit-identical
// values — the scheduler's determinism contract, locked down by the
// golden-image test suite.
type SequenceStats struct {
	// Stage is the per-frame MeanStage decomposition summed over frames.
	Stage mapreduce.StageTimes
	// MapCompute/MapComm sum the §6.3 map-phase decomposition.
	MapCompute sim.Time
	MapComm    sim.Time
	// Wire traffic totals.
	TotalEmitted  int64
	TotalReceived int64
	BytesOnWire   int64
	Messages      int64
}

func aggregateStats(frames []*mapreduce.JobStats) SequenceStats {
	var agg SequenceStats
	for _, s := range frames {
		if s == nil {
			continue
		}
		agg.Stage.Map += s.MeanStage.Map
		agg.Stage.PartitionIO += s.MeanStage.PartitionIO
		agg.Stage.Sort += s.MeanStage.Sort
		agg.Stage.Reduce += s.MeanStage.Reduce
		agg.MapCompute += s.MapCompute
		agg.MapComm += s.MapComm
		agg.TotalEmitted += s.TotalEmitted
		agg.TotalReceived += s.TotalReceived
		agg.BytesOnWire += s.BytesOnWire
		agg.Messages += s.Messages
	}
	return agg
}

// SequenceResult summarises a multi-frame animation render: the
// interactive-visualization use the paper motivates (§4.2: "scientists
// care about the frame rate of their visualization").
type SequenceResult struct {
	Frames    int
	Total     sim.Time
	PerFrame  []sim.Time
	MeanFPS   float64
	LastImage *img.Image
	// FrameStats are each frame's full MapReduce statistics, in frame
	// order.
	FrameStats []*mapreduce.JobStats
	// Agg sums the per-frame statistics in frame order.
	Agg SequenceStats
	// Workers is the scheduler pool width the render used (1 means the
	// frames executed one at a time).
	Workers int
}

// OrbitCameras builds `frames` cameras orbiting the volume's fitted
// default view around its vertical axis by orbitDegrees in total —
// the camera path RenderSequence renders and the public RenderFrames
// API accepts verbatim.
//
// A partial orbit reaches its endpoint: the last camera sits at exactly
// orbitDegrees (a 90° sweep over 8 frames spaces them 90/7° apart). A
// full-turn orbit (any multiple of 360°) instead spaces frames
// orbit/frames apart, so the would-be final frame — a duplicate of frame
// zero — is not rendered twice. With frames == 1 the single camera is
// the fitted base view regardless of orbitDegrees; use OrbitCamera for
// one frame at a specific angle.
func OrbitCameras(src volume.Source, width, height, frames int, orbitDegrees float64) ([]*camera.Camera, error) {
	if frames < 1 {
		return nil, fmt.Errorf("core: %d frames", frames)
	}
	base, err := fitOrbit(src, width, height)
	if err != nil {
		return nil, err
	}
	denom := float64(frames)
	if frames > 1 && math.Mod(orbitDegrees, 360) != 0 {
		denom = float64(frames - 1)
	}
	cams := make([]*camera.Camera, frames)
	for f := 0; f < frames; f++ {
		cams[f], err = base.at(orbitDegrees * math.Pi / 180 * float64(f) / denom)
		if err != nil {
			return nil, err
		}
	}
	return cams, nil
}

// OrbitCamera builds the single camera at `degrees` along the fitted
// orbit — the view OrbitCameras(…, frames, orbit) places its cameras on.
// It is the per-request camera constructor the render service uses.
func OrbitCamera(src volume.Source, width, height int, degrees float64) (*camera.Camera, error) {
	base, err := fitOrbit(src, width, height)
	if err != nil {
		return nil, err
	}
	return base.at(degrees * math.Pi / 180)
}

// orbitBase is the shared geometry of a fitted orbit: one definition of
// the camera path, so sequence frames and the render service's
// single-frame requests at equal angles are the same view bit for bit.
type orbitBase struct {
	fovY          float64
	width, height int
	center, rel   vec.V3
}

func fitOrbit(src volume.Source, width, height int) (orbitBase, error) {
	sp := volume.NewSpace(src.Dims())
	base, err := camera.Fit(sp.Bounds(), width, height)
	if err != nil {
		return orbitBase{}, err
	}
	center := sp.Bounds().Center()
	return orbitBase{
		fovY: base.FovY, width: width, height: height,
		center: center, rel: base.Eye.Sub(center),
	}, nil
}

// at builds the camera `angle` radians along the orbit.
func (b orbitBase) at(angle float64) (*camera.Camera, error) {
	eye := b.center.Add(vec.RotateY(angle).MulPoint(b.rel))
	return camera.New(eye, b.center, vec.New3(0, 1, 0), b.fovY, b.width, b.height)
}

// RenderSequence renders `frames` frames while orbiting the camera around
// the volume by orbitDegrees in total, and returns per-frame virtual
// times and the sustained frame rate. Virtual time accumulates on the
// caller's cluster across frames, as a real interactive session would.
// The per-frame images are rendered fully; only the last is retained.
//
// Frames are independent simulations, so by default they execute
// concurrently across host cores (the internal/schedule worker pool):
// each frame renders on a fresh instance of the cluster's spec and the
// per-frame virtual times are stitched back into serial accounting —
// images, per-frame times and aggregated statistics are bit-identical
// to serial execution. Set Options.SequenceSerial to force the
// one-frame-at-a-time path; a non-nil Options.Trace also forces it, so
// a trace stays a single coherent timeline.
func RenderSequence(cl *cluster.Cluster, opt Options, frames int, orbitDegrees float64) (*SequenceResult, error) {
	if err := opt.fillDefaults(); err != nil {
		return nil, err
	}
	// Cross-frame staging reuse needs no wiring here: Render routes every
	// frame's source through the process-wide staging cache (keyed by
	// source identity), so the field is evaluated once and every frame
	// stages out of the same materialised volume — in parallel mode the
	// first frame to arrive fills the cache while the rest block briefly,
	// then all stage concurrently (the cache was built for exactly this).
	cams, err := OrbitCameras(opt.Source, opt.Width, opt.Height, frames, orbitDegrees)
	if err != nil {
		return nil, err
	}
	if opt.SequenceSerial || opt.Trace != nil {
		return renderSequenceSerial(cl, opt, cams)
	}
	return renderSequenceParallel(cl, opt, cams)
}

// renderSequenceSerial is the pre-scheduler path: every frame renders on
// the caller's cluster, back to back on its single virtual clock.
func renderSequenceSerial(cl *cluster.Cluster, opt Options, cams []*camera.Camera) (*SequenceResult, error) {
	res := &SequenceResult{Frames: len(cams), Workers: 1}
	start := cl.Env.Now()
	for f, cam := range cams {
		frameOpt := opt
		frameOpt.Camera = cam
		frameStart := cl.Env.Now()
		r, err := Render(cl, frameOpt)
		if err != nil {
			return nil, fmt.Errorf("core: frame %d: %w", f, err)
		}
		res.PerFrame = append(res.PerFrame, cl.Env.Now()-frameStart)
		res.FrameStats = append(res.FrameStats, r.Stats)
		res.LastImage = r.Image
	}
	res.Total = cl.Env.Now() - start
	finishSequence(res)
	return res, nil
}

// renderSequenceParallel fans the frames out over the worker pool, one
// fresh cluster instance per frame, and stitches the per-frame virtual
// times back into the serial accounting: PerFrame[f] is frame f's
// simulated duration, Total is their sum (frames run back to back in
// virtual time, exactly as the serial path schedules them), and the
// caller's cluster clock advances by Total.
func renderSequenceParallel(cl *cluster.Cluster, opt Options, cams []*camera.Camera) (*SequenceResult, error) {
	workers := schedule.Workers(opt.SequenceWorkers, len(cams))
	devWorkers := schedule.DeviceWorkers(workers)
	outs, err := schedule.Map(workers, len(cams), func(f int) (Frame, error) {
		fr, err := renderFrameJob(cl, opt, cams, devWorkers, f)
		if err == nil && f != len(cams)-1 {
			// Only the last image is retained (as in the serial path);
			// don't hold every frame's framebuffer until the join.
			fr.Result.Image = nil
		}
		return fr, err
	})
	if err != nil {
		return nil, err
	}
	res := &SequenceResult{Frames: len(cams), Workers: workers}
	for _, o := range outs {
		res.PerFrame = append(res.PerFrame, o.Time)
		res.FrameStats = append(res.FrameStats, o.Result.Stats)
		res.Total += o.Time
		res.LastImage = o.Result.Image
	}
	// The caller's session clock advances as if it had rendered the
	// frames itself.
	if err := cl.Env.RunUntil(cl.Env.Now() + res.Total); err != nil {
		return nil, err
	}
	finishSequence(res)
	return res, nil
}

func finishSequence(res *SequenceResult) {
	res.Agg = aggregateStats(res.FrameStats)
	if res.Total > 0 {
		res.MeanFPS = float64(res.Frames) / res.Total.Seconds()
	}
}
