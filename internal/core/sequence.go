package core

import (
	"fmt"
	"math"

	"gvmr/internal/camera"
	"gvmr/internal/cluster"
	"gvmr/internal/img"
	"gvmr/internal/mapreduce"
	"gvmr/internal/schedule"
	"gvmr/internal/sim"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
)

// SequenceStats sums the per-frame MapReduce statistics of a sequence in
// frame order. Serial and parallel execution produce bit-identical
// values — the scheduler's determinism contract, locked down by the
// golden-image test suite.
type SequenceStats struct {
	// Stage is the per-frame MeanStage decomposition summed over frames.
	Stage mapreduce.StageTimes
	// MapCompute/MapComm sum the §6.3 map-phase decomposition.
	MapCompute sim.Time
	MapComm    sim.Time
	// Wire traffic totals.
	TotalEmitted  int64
	TotalReceived int64
	BytesOnWire   int64
	Messages      int64
}

func aggregateStats(frames []*mapreduce.JobStats) SequenceStats {
	var agg SequenceStats
	for _, s := range frames {
		if s == nil {
			continue
		}
		agg.Stage.Map += s.MeanStage.Map
		agg.Stage.PartitionIO += s.MeanStage.PartitionIO
		agg.Stage.Sort += s.MeanStage.Sort
		agg.Stage.Reduce += s.MeanStage.Reduce
		agg.MapCompute += s.MapCompute
		agg.MapComm += s.MapComm
		agg.TotalEmitted += s.TotalEmitted
		agg.TotalReceived += s.TotalReceived
		agg.BytesOnWire += s.BytesOnWire
		agg.Messages += s.Messages
	}
	return agg
}

// SequenceResult summarises a multi-frame animation render: the
// interactive-visualization use the paper motivates (§4.2: "scientists
// care about the frame rate of their visualization").
type SequenceResult struct {
	Frames    int
	Total     sim.Time
	PerFrame  []sim.Time
	MeanFPS   float64
	LastImage *img.Image
	// FrameStats are each frame's full MapReduce statistics, in frame
	// order.
	FrameStats []*mapreduce.JobStats
	// Agg sums the per-frame statistics in frame order.
	Agg SequenceStats
	// Workers is the scheduler pool width the render used (1 means the
	// frames executed one at a time).
	Workers int
}

// OrbitCameras builds `frames` cameras orbiting the volume's fitted
// default view around its vertical axis by orbitDegrees in total —
// the camera path RenderSequence renders and the public RenderFrames
// API accepts verbatim.
func OrbitCameras(src volume.Source, width, height, frames int, orbitDegrees float64) ([]*camera.Camera, error) {
	if frames < 1 {
		return nil, fmt.Errorf("core: %d frames", frames)
	}
	sp := volume.NewSpace(src.Dims())
	base, err := camera.Fit(sp.Bounds(), width, height)
	if err != nil {
		return nil, err
	}
	center := sp.Bounds().Center()
	rel := base.Eye.Sub(center)
	cams := make([]*camera.Camera, frames)
	for f := 0; f < frames; f++ {
		angle := orbitDegrees * math.Pi / 180 * float64(f) / float64(frames)
		rot := vec.RotateY(angle)
		eye := center.Add(rot.MulPoint(rel))
		cams[f], err = camera.New(eye, center, vec.New3(0, 1, 0), base.FovY, width, height)
		if err != nil {
			return nil, err
		}
	}
	return cams, nil
}

// RenderSequence renders `frames` frames while orbiting the camera around
// the volume by orbitDegrees in total, and returns per-frame virtual
// times and the sustained frame rate. Virtual time accumulates on the
// caller's cluster across frames, as a real interactive session would.
// The per-frame images are rendered fully; only the last is retained.
//
// Frames are independent simulations, so by default they execute
// concurrently across host cores (the internal/schedule worker pool):
// each frame renders on a fresh instance of the cluster's spec and the
// per-frame virtual times are stitched back into serial accounting —
// images, per-frame times and aggregated statistics are bit-identical
// to serial execution. Set Options.SequenceSerial to force the
// one-frame-at-a-time path; a non-nil Options.Trace also forces it, so
// a trace stays a single coherent timeline.
func RenderSequence(cl *cluster.Cluster, opt Options, frames int, orbitDegrees float64) (*SequenceResult, error) {
	if err := opt.fillDefaults(); err != nil {
		return nil, err
	}
	// Cross-frame staging reuse needs no wiring here: Render routes every
	// frame's source through the process-wide staging cache (keyed by
	// source identity), so the field is evaluated once and every frame
	// stages out of the same materialised volume — in parallel mode the
	// first frame to arrive fills the cache while the rest block briefly,
	// then all stage concurrently (the cache was built for exactly this).
	cams, err := OrbitCameras(opt.Source, opt.Width, opt.Height, frames, orbitDegrees)
	if err != nil {
		return nil, err
	}
	if opt.SequenceSerial || opt.Trace != nil {
		return renderSequenceSerial(cl, opt, cams)
	}
	return renderSequenceParallel(cl, opt, cams)
}

// renderSequenceSerial is the pre-scheduler path: every frame renders on
// the caller's cluster, back to back on its single virtual clock.
func renderSequenceSerial(cl *cluster.Cluster, opt Options, cams []*camera.Camera) (*SequenceResult, error) {
	res := &SequenceResult{Frames: len(cams), Workers: 1}
	start := cl.Env.Now()
	for f, cam := range cams {
		frameOpt := opt
		frameOpt.Camera = cam
		frameStart := cl.Env.Now()
		r, err := Render(cl, frameOpt)
		if err != nil {
			return nil, fmt.Errorf("core: frame %d: %w", f, err)
		}
		res.PerFrame = append(res.PerFrame, cl.Env.Now()-frameStart)
		res.FrameStats = append(res.FrameStats, r.Stats)
		res.LastImage = r.Image
	}
	res.Total = cl.Env.Now() - start
	finishSequence(res)
	return res, nil
}

// renderSequenceParallel fans the frames out over the worker pool, one
// fresh cluster instance per frame, and stitches the per-frame virtual
// times back into the serial accounting: PerFrame[f] is frame f's
// simulated duration, Total is their sum (frames run back to back in
// virtual time, exactly as the serial path schedules them), and the
// caller's cluster clock advances by Total.
func renderSequenceParallel(cl *cluster.Cluster, opt Options, cams []*camera.Camera) (*SequenceResult, error) {
	workers := schedule.Workers(opt.SequenceWorkers, len(cams))
	devWorkers := schedule.DeviceWorkers(workers)
	outs, err := schedule.Map(workers, len(cams), func(f int) (Frame, error) {
		fr, err := renderFrameJob(cl, opt, cams, devWorkers, f)
		if err == nil && f != len(cams)-1 {
			// Only the last image is retained (as in the serial path);
			// don't hold every frame's framebuffer until the join.
			fr.Result.Image = nil
		}
		return fr, err
	})
	if err != nil {
		return nil, err
	}
	res := &SequenceResult{Frames: len(cams), Workers: workers}
	for _, o := range outs {
		res.PerFrame = append(res.PerFrame, o.Time)
		res.FrameStats = append(res.FrameStats, o.Result.Stats)
		res.Total += o.Time
		res.LastImage = o.Result.Image
	}
	// The caller's session clock advances as if it had rendered the
	// frames itself.
	if err := cl.Env.RunUntil(cl.Env.Now() + res.Total); err != nil {
		return nil, err
	}
	finishSequence(res)
	return res, nil
}

func finishSequence(res *SequenceResult) {
	res.Agg = aggregateStats(res.FrameStats)
	if res.Total > 0 {
		res.MeanFPS = float64(res.Frames) / res.Total.Seconds()
	}
}
