package core

import (
	"fmt"
	"math"

	"gvmr/internal/camera"
	"gvmr/internal/cluster"
	"gvmr/internal/img"
	"gvmr/internal/sim"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
)

// SequenceResult summarises a multi-frame animation render: the
// interactive-visualization use the paper motivates (§4.2: "scientists
// care about the frame rate of their visualization").
type SequenceResult struct {
	Frames    int
	Total     sim.Time
	PerFrame  []sim.Time
	MeanFPS   float64
	LastImage *img.Image
}

// RenderSequence renders `frames` frames while orbiting the camera around
// the volume by orbitDegrees in total, on one cluster (virtual time
// accumulates across frames, as a real interactive session would). It
// returns per-frame times and the sustained frame rate. The per-frame
// images are rendered fully; only the last is retained.
func RenderSequence(cl *cluster.Cluster, opt Options, frames int, orbitDegrees float64) (*SequenceResult, error) {
	if frames < 1 {
		return nil, fmt.Errorf("core: %d frames", frames)
	}
	if err := opt.fillDefaults(); err != nil {
		return nil, err
	}
	// Cross-frame staging reuse needs no wiring here: Render routes every
	// frame's source through the process-wide staging cache (keyed by
	// source identity), so the field is evaluated for frame 0 and frames
	// 1..n-1 stage out of the same materialised volume — see
	// TestRenderSequenceMaterialisesSourceOnce.
	sp := volume.NewSpace(opt.Source.Dims())
	base, err := camera.Fit(sp.Bounds(), opt.Width, opt.Height)
	if err != nil {
		return nil, err
	}
	center := sp.Bounds().Center()
	rel := base.Eye.Sub(center)

	res := &SequenceResult{Frames: frames}
	start := cl.Env.Now()
	for f := 0; f < frames; f++ {
		angle := orbitDegrees * math.Pi / 180 * float64(f) / float64(frames)
		rot := vec.RotateY(angle)
		eye := center.Add(rot.MulPoint(rel))
		cam, err := camera.New(eye, center, vec.New3(0, 1, 0), base.FovY, opt.Width, opt.Height)
		if err != nil {
			return nil, err
		}
		frameOpt := opt
		frameOpt.Camera = cam
		frameStart := cl.Env.Now()
		r, err := Render(cl, frameOpt)
		if err != nil {
			return nil, fmt.Errorf("core: frame %d: %w", f, err)
		}
		res.PerFrame = append(res.PerFrame, cl.Env.Now()-frameStart)
		res.LastImage = r.Image
	}
	res.Total = cl.Env.Now() - start
	if res.Total > 0 {
		res.MeanFPS = float64(frames) / res.Total.Seconds()
	}
	return res, nil
}
