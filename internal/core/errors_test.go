package core

import (
	"math"
	"strings"
	"testing"

	"gvmr/internal/camera"
	"gvmr/internal/mapreduce"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
)

func TestCameraSizeMismatchRejected(t *testing.T) {
	opt := skullOptions(t, 16, 32, 2)
	cam, err := camera.New(vec.New3(0, 0, 2), vec.New3(0, 0, 0), vec.New3(0, 1, 0),
		math.Pi/4, 64, 64) // camera 64², options 32²
	if err != nil {
		t.Fatal(err)
	}
	opt.Camera = cam
	if _, err := Render(newCluster(t, 2), opt); err == nil ||
		!strings.Contains(err.Error(), "camera image") {
		t.Errorf("mismatched camera accepted: %v", err)
	}
}

func TestPlanBricksImpossible(t *testing.T) {
	// A volume that cannot be cut small enough: 2³ voxels but 1-byte
	// usable VRAM.
	if _, err := planBricks(volume.Cube(2), 1, 1, 1, 1.0); err == nil {
		t.Error("impossible bricking accepted")
	}
}

func TestRenderStageBreakdownConsistency(t *testing.T) {
	res, err := Render(newCluster(t, 4), skullOptions(t, 32, 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats.MeanStage
	// The stacked stage decomposition must be positive in map and
	// bounded by a small multiple of the makespan (stages overlap but
	// per-worker busy time cannot exceed the frame many times over).
	if st.Map <= 0 {
		t.Error("no map time")
	}
	if st.Total() > 3*res.Runtime {
		t.Errorf("stacked stages %v >> makespan %v", st.Total(), res.Runtime)
	}
	// §6.3 decomposition is populated.
	if res.Stats.MapCompute <= 0 || res.Stats.MapComm <= 0 {
		t.Error("map compute/comm decomposition empty")
	}
}

func TestFlushBytesAffectsMessageCount(t *testing.T) {
	coarse := skullOptions(t, 32, 40, 4)
	coarse.BricksPerGPU = 2
	resCoarse, err := Render(newCluster(t, 4), coarse)
	if err != nil {
		t.Fatal(err)
	}
	fine := skullOptions(t, 32, 40, 4)
	fine.BricksPerGPU = 2
	fine.FlushBytes = 512 // absurdly small threshold: many tiny batches
	resFine, err := Render(newCluster(t, 4), fine)
	if err != nil {
		t.Fatal(err)
	}
	if resFine.Stats.Messages <= resCoarse.Stats.Messages {
		t.Errorf("tiny flush threshold sent %d messages vs %d",
			resFine.Stats.Messages, resCoarse.Stats.Messages)
	}
	if resFine.Stats.TotalReceived != resCoarse.Stats.TotalReceived {
		t.Errorf("payload changed with flush size: %d vs %d",
			resFine.Stats.TotalReceived, resCoarse.Stats.TotalReceived)
	}
}

func TestGPUReducePlacement(t *testing.T) {
	opt := skullOptions(t, 32, 40, 4)
	opt.ReduceOn = mapreduce.OnGPU
	opt.SortOn = mapreduce.OnGPU
	res, err := Render(newCluster(t, 4), opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Render(newCluster(t, 4), skullOptions(t, 32, 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Same image regardless of placement.
	for i := range res.Image.Pix {
		if res.Image.Pix[i] != ref.Image.Pix[i] {
			t.Fatal("GPU reduce changed the image")
		}
	}
}

func TestUnknownCompositorRejected(t *testing.T) {
	opt := skullOptions(t, 16, 24, 2)
	opt.Compositor = Compositor(99)
	if _, err := Render(newCluster(t, 2), opt); err == nil {
		t.Error("unknown compositor accepted")
	}
}
