package core

import (
	"fmt"

	"gvmr/internal/volume"
)

// planBricks implements the bricking policy: the brick count is the larger
// of (GPUs × BricksPerGPU) and the VRAM floor (how many pieces the volume
// must be cut into so one brick fits in a device's usable memory). The
// paper's renderer "works well for configurations where the number of
// bricks is close (roughly within a factor of four) to the number of
// GPUs" (§6) — BricksPerGPU dials exactly that factor.
func planBricks(d volume.Dims, gpus, bricksPerGPU int, vramBytes int64, vramFraction float64) (*volume.Grid, error) {
	if gpus < 1 {
		return nil, fmt.Errorf("core: %d GPUs", gpus)
	}
	usable := int64(float64(vramBytes) * vramFraction)
	if usable <= 0 {
		return nil, fmt.Errorf("core: no usable VRAM")
	}
	floor := int((d.Bytes() + usable - 1) / usable)
	want := gpus * bricksPerGPU
	if floor > want {
		want = floor
	}
	// Grow the count until a factorisation yields bricks that actually
	// fit (ghost layers add a little, and integer splits are uneven).
	for n := want; ; n++ {
		counts := volume.FactorBricks(d, n)
		if counts[0]*counts[1]*counts[2] < n {
			continue // no usable factorisation at this n
		}
		g, err := volume.MakeGrid(d, counts)
		if err != nil {
			// Counts exceeded dims: volumes too small to split further.
			if n > d.X*d.Y*d.Z {
				return nil, fmt.Errorf("core: cannot brick %v into %d pieces", d, n)
			}
			continue
		}
		if g.MaxBrickBytes() <= usable {
			return g, nil
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("core: volume %v cannot be bricked to fit %d bytes", d, usable)
		}
	}
}
