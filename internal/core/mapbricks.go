package core

import (
	"fmt"
	"sort"
	"sync"

	"gvmr/internal/camera"
	"gvmr/internal/cluster"
	"gvmr/internal/composite"
	"gvmr/internal/mapreduce"
	"gvmr/internal/render"
	"gvmr/internal/sim"
	"gvmr/internal/volume"
)

// PlanGrid runs the bricking policy for a render job without rendering:
// the brick grid a job with these options would use on a cluster of this
// spec. It is deterministic in (spec.GPU, options), which is what lets a
// distributed coordinator and its remote workers agree on the grid
// without shipping it — both plan locally and verify the factorisation
// matches (internal/dist does exactly that).
func PlanGrid(spec cluster.Spec, opt Options) (*volume.Grid, error) {
	if err := opt.fillDefaults(); err != nil {
		return nil, err
	}
	gpus := opt.GPUs
	if gpus == 0 {
		gpus = spec.Nodes * spec.GPUsPerNode
	}
	if gpus < 1 {
		return nil, fmt.Errorf("core: %d GPUs", gpus)
	}
	return planBricks(opt.Source.Dims(), gpus, opt.BricksPerGPU,
		spec.GPU.VRAMBytes, opt.VRAMFraction)
}

// BrickStripe is one map unit's surviving (non-placeholder) fragments in
// kernel emission order — the depth-tagged stripe a distributed map
// worker returns for one of its units. Brick is the unit ID: the brick
// ID itself in the convex default (one unit per brick), the partition's
// unit index when Options.Partition groups bricks. The order within a
// stripe is a pure function of (unit, camera, params, source): the
// unit's bricks ascending by brick ID, each in thread order over the
// brick's screen footprint. It does not depend on which worker or node
// produced it, which is what makes distributed compositing deterministic
// under re-placement, retries and hedging. Under a non-convex partition
// one pixel may appear several times in a stripe — once per brick the
// ray crossed — forming that pixel's fragment list.
type BrickStripe struct {
	Brick int
	Frags []composite.Fragment
}

// MapResult is the outcome of a map-phase-only job over a subset of a
// render's bricks.
type MapResult struct {
	// Stripes holds one entry per requested brick, ascending by brick ID.
	// Bricks whose footprint misses the screen (or whose rays all emit
	// placeholders) appear with an empty fragment slice.
	Stripes []BrickStripe
	// Runtime is the virtual makespan of the local job: staging, texture
	// uploads, kernels, fragment read-back, partition and the local
	// stripe preparation, on a fresh instance of the spec.
	Runtime sim.Time
	// Stats are the underlying engine statistics.
	Stats *mapreduce.JobStats
	Grid  *volume.Grid
}

// FragmentCount sums the surviving fragments across stripes.
func (m *MapResult) FragmentCount() int {
	n := 0
	for _, s := range m.Stripes {
		n += len(s.Frags)
	}
	return n
}

// stripeRecorder captures each chunk's surviving fragments as the mapper
// emits them. The mutex serialises recording across worker processes; the
// per-chunk order is emission order, so the recorded stripes are
// deterministic regardless of how the engine schedules workers.
type stripeRecorder struct {
	mu      sync.Mutex
	stripes map[int]*BrickStripe
}

// recordingMapper forwards to the real ray-cast mapper while teeing every
// surviving fragment into the recorder. Placeholders still flow to the
// engine so worker statistics (emitted/discarded) stay comparable to a
// single-process render of the same bricks.
type recordingMapper struct {
	inner *rayCastMapper
	rec   *stripeRecorder
}

func (m *recordingMapper) Init(p mapreduce.Ctx, w *mapreduce.Worker) error {
	return m.inner.Init(p, w)
}

func (m *recordingMapper) Stage(p mapreduce.Ctx, w *mapreduce.Worker, c mapreduce.Chunk) ([]*volume.BrickData, error) {
	return m.inner.Stage(p, w, c)
}

func (m *recordingMapper) Map(p mapreduce.Ctx, w *mapreduce.Worker, c mapreduce.Chunk,
	bd []*volume.BrickData, emit func(mapreduce.KV[composite.Fragment])) error {
	m.rec.mu.Lock()
	stripe := m.rec.stripes[c.ID()]
	m.rec.mu.Unlock()
	tee := func(kv mapreduce.KV[composite.Fragment]) {
		if kv.Key >= 0 {
			stripe.Frags = append(stripe.Frags, kv.Val)
		}
		emit(kv)
	}
	return m.inner.Map(p, w, c, bd, tee)
}

// discardReducer sinks the engine-side pairs: MapBricks callers composite
// elsewhere (the distributed coordinator), so the local reduce is only a
// cost-model charge for preparing the stripe batch.
type discardReducer struct{}

func (discardReducer) Reduce(int32, []composite.Fragment) {}

// MapBricks runs the map phase of a render job for the given unit IDs on
// a fresh instance of spec and returns the per-unit fragment stripes plus
// the job's virtual makespan. It is the remote half of the distributed
// direct-send pipeline: a coordinator plans the full grid, shards the
// unit IDs across nodes, and each node calls MapBricks for its share.
// Without Options.Partition a unit is a brick and the IDs are brick IDs;
// with a Partition they index the partition's units.
//
// The grid is planned from opt exactly as Render plans it, so the
// fragments of unit i here are bit-identical to the fragments unit i
// produces inside a single-process Render of the same options — the
// invariant the distributed golden tests pin down. spec may be a smaller
// machine than the one the grid was planned for (opt.GPUs bricks spread
// over a node with fewer local GPUs run in series); only the planning
// inputs (GPU VRAM) must match, which PlanGrid documents.
//
// devWorkers caps the host cores the instance's simulated devices use, as
// in RenderOn.
func MapBricks(spec cluster.Spec, opt Options, brickIDs []int, devWorkers int) (*MapResult, error) {
	if err := opt.fillDefaults(); err != nil {
		return nil, err
	}
	if len(brickIDs) == 0 {
		return nil, fmt.Errorf("core: no bricks to map")
	}
	grid, err := PlanGrid(spec, opt)
	if err != nil {
		return nil, err
	}
	units, err := jobUnits(grid, opt.Partition)
	if err != nil {
		return nil, err
	}
	cam := opt.Camera
	if cam == nil {
		cam, err = camera.Fit(grid.Space.Bounds(), opt.Width, opt.Height)
		if err != nil {
			return nil, err
		}
	}
	if cam.Width != opt.Width || cam.Height != opt.Height {
		return nil, fmt.Errorf("core: camera image %dx%d != options %dx%d",
			cam.Width, cam.Height, opt.Width, opt.Height)
	}

	rec := &stripeRecorder{stripes: map[int]*BrickStripe{}}
	chunks := make([]mapreduce.Chunk, 0, len(brickIDs))
	for _, id := range brickIDs {
		if id < 0 || id >= len(units) {
			return nil, fmt.Errorf("core: unit %d outside job of %d units", id, len(units))
		}
		if _, dup := rec.stripes[id]; dup {
			return nil, fmt.Errorf("core: unit %d requested twice", id)
		}
		rec.stripes[id] = &BrickStripe{Brick: id}
		chunks = append(chunks, unitChunk{id: id, bricks: units[id]})
	}

	inst, err := spec.Instance()
	if err != nil {
		return nil, err
	}
	if devWorkers > 0 {
		inst.SetDeviceWorkers(devWorkers)
	}
	src := opt.Source
	if !opt.NoStagingCache {
		src = volume.Cached(src)
	}
	var sampler render.SampleFn
	if opt.Sampler == Slicing {
		sampler = render.CastRaySlicing
	}
	mapper := &recordingMapper{
		inner: &rayCastMapper{
			src:     src,
			grid:    grid,
			cam:     cam,
			prm:     opt.renderParams(),
			sampler: sampler,
		},
		rec: rec,
	}
	if err := mapper.inner.prm.Validate(); err != nil {
		return nil, err
	}
	workers := inst.TotalGPUs()
	if len(chunks) < workers {
		workers = len(chunks)
	}
	cfg := mapreduce.Config[composite.Fragment, []*volume.BrickData]{
		Cluster:             inst,
		Workers:             workers,
		Mapper:              mapper,
		MakeReducer:         func(int) mapreduce.Reducer[composite.Fragment] { return discardReducer{} },
		Partitioner:         opt.Partitioner,
		KeyRange:            int32(opt.Width * opt.Height),
		ValueBytes:          composite.FragmentBytes - 4,
		Chunks:              chunks,
		Assign:              opt.Assign,
		FlushBytes:          opt.FlushBytes,
		FromDisk:            opt.FromDisk,
		ReduceOn:            opt.ReduceOn,
		SortOn:              opt.SortOn,
		ChargeFixedOverhead: opt.chargeOverhead(),
		Trace:               opt.Trace,
	}
	t0 := inst.Env.Now()
	stats, err := mapreduce.Run(cfg)
	if err != nil {
		return nil, err
	}
	res := &MapResult{
		Runtime: inst.Env.Now() - t0,
		Stats:   stats,
		Grid:    grid,
	}
	for _, s := range rec.stripes {
		res.Stripes = append(res.Stripes, *s)
	}
	sort.Slice(res.Stripes, func(i, j int) bool { return res.Stripes[i].Brick < res.Stripes[j].Brick })
	return res, nil
}
