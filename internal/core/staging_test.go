package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"gvmr/internal/transfer"
	"gvmr/internal/volume"
)

// tagSeq makes every test source's cache identity unique, so repeated
// runs in one process (go test -count=N) never hit a stale entry in the
// process-wide staging cache.
var tagSeq atomic.Int64

// fillCounter wraps a FuncSource and counts how many times the underlying
// field is actually evaluated (Fill calls reaching the source).
type fillCounter struct {
	*volume.FuncSource
	fills atomic.Int64
}

func (s *fillCounter) Fill(r volume.Region, dst []float32) error {
	s.fills.Add(1)
	return s.FuncSource.Fill(r, dst)
}

func countedOptions(t *testing.T, tag string, n, imgSize, gpus int) (Options, *fillCounter) {
	t.Helper()
	tag = fmt.Sprintf("%s-%d", tag, tagSeq.Add(1))
	src := &fillCounter{FuncSource: volume.NewFuncSource(tag, volume.Cube(n),
		func(x, y, z float64) float32 { return float32((x + y + z) / 3) })}
	return Options{
		Source: src,
		TF:     transfer.SkullPreset(),
		Width:  imgSize,
		Height: imgSize,
		GPUs:   gpus,
	}, src
}

// TestRenderSequenceMaterialisesSourceOnce is the staging-cache contract
// for animation: across all frames (and all bricks of each frame) the
// analytic source is evaluated exactly once; every later stage is served
// from the cached dense volume.
func TestRenderSequenceMaterialisesSourceOnce(t *testing.T) {
	cl := newCluster(t, 4)
	opt, counter := countedOptions(t, "seq-materialise-once", 32, 40, 4)
	seq, err := RenderSequence(cl, opt, 3, 90)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Frames != 3 {
		t.Fatalf("frames = %d", seq.Frames)
	}
	if n := counter.fills.Load(); n != 1 {
		t.Errorf("source filled %d times across 3 frames, want exactly 1", n)
	}
}

// TestRenderCachesAcrossConfigurations checks the cross-configuration
// reuse a scaling sweep depends on: rendering the same source identity on
// fresh clusters with different GPU counts still materialises once.
func TestRenderCachesAcrossConfigurations(t *testing.T) {
	opt, counter := countedOptions(t, "sweep-materialise-once", 32, 40, 0)
	for _, gpus := range []int{1, 2, 4} {
		cl := newCluster(t, gpus)
		o := opt
		o.GPUs = gpus
		if _, err := Render(cl, o); err != nil {
			t.Fatal(err)
		}
	}
	if n := counter.fills.Load(); n != 1 {
		t.Errorf("source filled %d times across 3 cluster sizes, want exactly 1", n)
	}
}

// TestRenderNoStagingCacheOptOut verifies the explicit opt-out: every
// brick stage evaluates the source directly, and the image matches the
// cached render exactly.
func TestRenderNoStagingCacheOptOut(t *testing.T) {
	optA, counterA := countedOptions(t, "optout-a", 32, 40, 4)
	optA.NoStagingCache = true
	clA := newCluster(t, 4)
	resA, err := Render(clA, optA)
	if err != nil {
		t.Fatal(err)
	}
	if n := counterA.fills.Load(); n < 2 {
		t.Errorf("opt-out render filled source %d times; want one per brick (>1)", n)
	}
	optB, _ := countedOptions(t, "optout-b", 32, 40, 4)
	clB := newCluster(t, 4)
	resB, err := Render(clB, optB)
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Image.Pix) != len(resB.Image.Pix) {
		t.Fatal("image size mismatch")
	}
	for i := range resA.Image.Pix {
		if resA.Image.Pix[i] != resB.Image.Pix[i] {
			t.Fatalf("pixel %d differs between cached and uncached render", i)
		}
	}
}
