package core

import (
	"fmt"

	"gvmr/internal/camera"
	"gvmr/internal/cluster"
	"gvmr/internal/composite"
	"gvmr/internal/img"
	"gvmr/internal/mapreduce"
	"gvmr/internal/render"
	"gvmr/internal/sim"
	"gvmr/internal/volume"
)

// Result is one rendered frame plus everything the evaluation reports
// about it.
type Result struct {
	Image *img.Image
	// Stats are the MapReduce engine statistics (stage breakdown, wire
	// traffic, §6.3 decomposition).
	Stats *mapreduce.JobStats
	Grid  *volume.Grid
	GPUs  int
	// Runtime is the full-frame virtual time: the MapReduce job plus,
	// for binary swap, the exchange rounds. Bricking and stitching are
	// excluded, as in the paper's §5.
	Runtime sim.Time
	// SwapTime is the binary-swap exchange duration (zero for direct
	// send).
	SwapTime sim.Time
	// Voxels is the volume size; FPS and VPS are the paper's figures of
	// merit (Figure 4).
	Voxels      int64
	FPS         float64
	VPSMillions float64
}

// Render renders one frame of the source volume on the cluster and
// returns the image plus full statistics. It drives the cluster's
// simulation environment to completion.
func Render(cl *cluster.Cluster, opt Options) (*Result, error) {
	if err := opt.fillDefaults(); err != nil {
		return nil, err
	}
	gpus := opt.GPUs
	if gpus == 0 {
		gpus = cl.TotalGPUs()
	}
	if gpus < 1 || gpus > cl.TotalGPUs() {
		return nil, fmt.Errorf("core: %d GPUs requested, cluster has %d", gpus, cl.TotalGPUs())
	}
	grid, err := planBricks(opt.Source.Dims(), gpus, opt.BricksPerGPU,
		cl.Params.GPU.VRAMBytes, opt.VRAMFraction)
	if err != nil {
		return nil, err
	}
	cam := opt.Camera
	if cam == nil {
		cam, err = camera.Fit(grid.Space.Bounds(), opt.Width, opt.Height)
		if err != nil {
			return nil, err
		}
	}
	if cam.Width != opt.Width || cam.Height != opt.Height {
		return nil, fmt.Errorf("core: camera image %dx%d != options %dx%d",
			cam.Width, cam.Height, opt.Width, opt.Height)
	}

	// Brick staging reads through the process-wide staging cache: the
	// source is materialised at most once per identity and every Stage
	// call becomes a row-wise copy (virtual disk/PCIe time is still
	// charged by the engine as configured).
	src := opt.Source
	if !opt.NoStagingCache {
		src = volume.Cached(src)
	}
	var sampler render.SampleFn
	if opt.Sampler == Slicing {
		sampler = render.CastRaySlicing
	}
	mapper := &rayCastMapper{
		src:     src,
		grid:    grid,
		cam:     cam,
		prm:     opt.renderParams(),
		sampler: sampler,
	}
	if err := mapper.prm.Validate(); err != nil {
		return nil, err
	}
	units, err := jobUnits(grid, opt.Partition)
	if err != nil {
		return nil, err
	}
	chunks := unitChunks(units)

	charge := opt.chargeOverhead()
	cfg := mapreduce.Config[composite.Fragment, []*volume.BrickData]{
		Cluster:             cl,
		Workers:             gpus,
		Mapper:              mapper,
		Partitioner:         opt.Partitioner,
		KeyRange:            int32(opt.Width * opt.Height),
		ValueBytes:          composite.FragmentBytes - 4,
		Chunks:              chunks,
		Assign:              opt.Assign,
		FlushBytes:          opt.FlushBytes,
		FromDisk:            opt.FromDisk,
		ReduceOn:            opt.ReduceOn,
		SortOn:              opt.SortOn,
		ChargeFixedOverhead: charge,
		Trace:               opt.Trace,
	}
	if opt.InSitu {
		if opt.FromDisk {
			return nil, fmt.Errorf("core: InSitu and FromDisk are mutually exclusive")
		}
		// A co-located simulation leaves brick i on node i mod N; render
		// workers follow the data.
		nodes := len(cl.Nodes)
		cfg.Assign = mapreduce.AssignAffinity
		cfg.Home = func(c mapreduce.Chunk) int { return c.ID() % nodes }
	}

	res := &Result{
		Grid:   grid,
		GPUs:   gpus,
		Voxels: opt.Source.Dims().Voxels(),
	}
	background := composite.Finalize(composite.Fragment{}.Color(), opt.Background)
	res.Image = img.New(opt.Width, opt.Height, background)

	switch opt.Compositor {
	case DirectSend:
		reducers := make([]*imageReducer, 0, gpus)
		cfg.MakeReducer = func(int) mapreduce.Reducer[composite.Fragment] {
			r := &imageReducer{background: opt.Background}
			reducers = append(reducers, r)
			return r
		}
		stats, err := mapreduce.Run(cfg)
		if err != nil {
			return nil, err
		}
		res.Stats = stats
		res.Runtime = stats.Makespan
		// Stitch (excluded from timings, as in the paper).
		for _, r := range reducers {
			for _, px := range r.pixels {
				res.Image.SetKey(px.Key, px.Color)
			}
		}

	case BinarySwap:
		if gpus&(gpus-1) != 0 {
			return nil, fmt.Errorf("core: binary swap needs a power-of-two GPU count, got %d", gpus)
		}
		collectors := make([]*fragmentCollector, 0, gpus)
		cfg.LocalReduce = true
		cfg.MakeReducer = func(int) mapreduce.Reducer[composite.Fragment] {
			r := &fragmentCollector{pixels: map[int32][]composite.Fragment{}}
			collectors = append(collectors, r)
			return r
		}
		stats, err := mapreduce.Run(cfg)
		if err != nil {
			return nil, err
		}
		res.Stats = stats
		swap, err := binarySwap(cl, cam, collectors, opt.Background, res.Image)
		if err != nil {
			return nil, err
		}
		res.SwapTime = swap
		res.Runtime = stats.Makespan + swap

	default:
		return nil, fmt.Errorf("core: unknown compositor %d", opt.Compositor)
	}

	if res.Runtime > 0 {
		res.FPS = 1 / res.Runtime.Seconds()
		res.VPSMillions = float64(res.Voxels) / res.Runtime.Seconds() / 1e6
	}
	return res, nil
}
