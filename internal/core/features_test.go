package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"gvmr/internal/img"
	"gvmr/internal/trace"
)

func TestInSituMatchesInCoreImage(t *testing.T) {
	inCore := skullOptions(t, 32, 40, 4)
	resIC, err := Render(newCluster(t, 4), inCore)
	if err != nil {
		t.Fatal(err)
	}
	inSitu := skullOptions(t, 32, 40, 4)
	inSitu.InSitu = true
	resIS, err := Render(newCluster(t, 4), inSitu)
	if err != nil {
		t.Fatal(err)
	}
	maxErr, _ := img.Diff(resIC.Image, resIS.Image)
	if maxErr > 1e-6 {
		t.Errorf("in-situ image differs by %.6f", maxErr)
	}
}

func TestInSituFarCheaperThanDisk(t *testing.T) {
	// §6.3/§7: disk streaming dwarfs everything; in-situ hand-off over
	// the interconnect avoids it.
	disk := skullOptions(t, 64, 40, 2)
	disk.FromDisk = true
	resDisk, err := Render(newCluster(t, 2), disk)
	if err != nil {
		t.Fatal(err)
	}
	situ := skullOptions(t, 64, 40, 2)
	situ.InSitu = true
	resSitu, err := Render(newCluster(t, 2), situ)
	if err != nil {
		t.Fatal(err)
	}
	if resSitu.Runtime >= resDisk.Runtime {
		t.Errorf("in-situ %v should beat disk streaming %v", resSitu.Runtime, resDisk.Runtime)
	}
}

func TestInSituExcludesFromDisk(t *testing.T) {
	opt := skullOptions(t, 32, 40, 2)
	opt.InSitu = true
	opt.FromDisk = true
	if _, err := Render(newCluster(t, 2), opt); err == nil {
		t.Error("InSitu+FromDisk accepted")
	}
}

func TestTraceCollectsSpans(t *testing.T) {
	opt := skullOptions(t, 32, 40, 4)
	log := &trace.Log{}
	opt.Trace = log
	if _, err := Render(newCluster(t, 4), opt); err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	cats := map[string]bool{}
	lanes := map[string]bool{}
	for _, s := range log.Spans() {
		cats[s.Cat] = true
		lanes[s.Lane] = true
		if s.End < s.Start {
			t.Fatalf("negative span %+v", s)
		}
	}
	for _, want := range []string{"map", "partition+io", "sort", "reduce", "net"} {
		if !cats[want] {
			t.Errorf("no %q spans recorded", want)
		}
	}
	if len(lanes) < 4 {
		t.Errorf("only %d lanes; want one per GPU at least", len(lanes))
	}
	// The export is valid Chrome trace JSON.
	var buf bytes.Buffer
	if err := log.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(events) < log.Len() {
		t.Errorf("trace JSON has %d events for %d spans", len(events), log.Len())
	}
}

func TestRenderSequence(t *testing.T) {
	cl := newCluster(t, 4)
	opt := skullOptions(t, 32, 40, 4)
	seq, err := RenderSequence(cl, opt, 3, 90)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Frames != 3 || len(seq.PerFrame) != 3 {
		t.Fatalf("frames = %d / %d", seq.Frames, len(seq.PerFrame))
	}
	if seq.Total <= 0 || seq.MeanFPS <= 0 {
		t.Error("sequence totals empty")
	}
	var sum int64
	for _, f := range seq.PerFrame {
		if f <= 0 {
			t.Error("zero frame time")
		}
		sum += int64(f)
	}
	if int64(seq.Total) != sum {
		t.Errorf("total %v != sum of frames %v", seq.Total, sum)
	}
	if seq.LastImage == nil || seq.LastImage.MeanLuminance() <= 0 {
		t.Error("last frame empty")
	}
}

func TestRenderSequenceOrbitChangesView(t *testing.T) {
	// A quarter-orbit must produce a different image than frame zero.
	cl1 := newCluster(t, 2)
	opt := skullOptions(t, 32, 40, 2)
	seq1, err := RenderSequence(cl1, opt, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl2 := newCluster(t, 2)
	seq2, err := RenderSequence(cl2, opt, 2, 180)
	if err != nil {
		t.Fatal(err)
	}
	maxErr, _ := img.Diff(seq1.LastImage, seq2.LastImage)
	if maxErr < 0.01 {
		t.Errorf("orbited frame identical to frame 0 (diff %.4f)", maxErr)
	}
}

func TestRenderSequenceValidation(t *testing.T) {
	cl := newCluster(t, 2)
	if _, err := RenderSequence(cl, skullOptions(t, 16, 24, 2), 0, 90); err == nil {
		t.Error("zero frames accepted")
	}
}
