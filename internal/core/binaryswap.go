package core

import (
	"fmt"
	"math/bits"

	"gvmr/internal/camera"
	"gvmr/internal/cluster"
	"gvmr/internal/composite"
	"gvmr/internal/img"
	"gvmr/internal/sim"
	"gvmr/internal/vec"
)

// swapBatch is one half-image's worth of fragments exchanged in a round.
type swapBatch struct {
	round int
	// pixels carries the sender's fragments for the receiver's key range.
	pixels map[int32][]composite.Fragment
}

// binarySwap runs the classic binary-swap exchange (Ma et al. [16]) over
// the per-node partial images the LocalReduce job produced: log2(W)
// synchronous rounds in which partners split their current key range,
// exchange the halves they are giving up, and merge. Each node ends up
// owning 1/W of the image fully composited. Unlike the classic algorithm
// this exchanges fragment lists, not pre-blended pixels, so compositing
// stays exact when bricks from different nodes interleave in depth (the
// cost model charges the actual larger payload).
//
// The returned time is the virtual duration of the exchange plus the
// final local composite; writing into the output image is the untimed
// stitch.
func binarySwap(cl *cluster.Cluster, cam *camera.Camera,
	collectors []*fragmentCollector, background vec.V4, out *img.Image) (sim.Time, error) {
	w := len(collectors)
	rounds := bits.TrailingZeros(uint(w))
	env := cl.Env
	start := env.Now()

	// One inbox per (worker, round): a fast node may race ahead and send
	// its round-k batch before a slower third node has delivered round
	// k-1, so messages must be matched by round, not arrival order.
	inboxes := make([][]*sim.Chan[swapBatch], w)
	for i := range inboxes {
		inboxes[i] = make([]*sim.Chan[swapBatch], rounds)
		for r := range inboxes[i] {
			inboxes[i][r] = sim.NewChan[swapBatch](env, fmt.Sprintf("swap%d.inbox%d", i, r), 1)
		}
	}
	type owned struct {
		lo, hi int32
		pixels map[int32][]composite.Fragment
	}
	finals := make([]map[int32]vec.V4, w)
	keyRange := int32(cam.Width * cam.Height)

	for i := 0; i < w; i++ {
		i := i
		st := owned{lo: 0, hi: keyRange, pixels: collectors[i].pixels}
		env.Go(fmt.Sprintf("swap%d", i), func(p *sim.Proc) {
			node := cl.NodeOf(i)
			for r := 0; r < rounds; r++ {
				partner := i ^ (1 << r)
				mid := st.lo + (st.hi-st.lo)/2
				var keepLo, keepHi int32
				var sendLo, sendHi int32
				if i&(1<<r) == 0 {
					keepLo, keepHi = st.lo, mid
					sendLo, sendHi = mid, st.hi
				} else {
					keepLo, keepHi = mid, st.hi
					sendLo, sendHi = st.lo, mid
				}
				give := map[int32][]composite.Fragment{}
				var giveFrags int64
				for k, fr := range st.pixels {
					if k >= sendLo && k < sendHi {
						give[k] = fr
						giveFrags += int64(len(fr))
						delete(st.pixels, k)
					}
				}
				cl.Transfer(p, node, cl.NodeOf(partner), giveFrags*composite.FragmentBytes)
				inboxes[partner][r].Send(p, swapBatch{round: r, pixels: give})
				got, ok := inboxes[i][r].Recv(p)
				if !ok || got.round != r {
					panic(fmt.Sprintf("swap%d: round mismatch", i))
				}
				var gotFrags int64
				for k, fr := range got.pixels {
					st.pixels[k] = append(st.pixels[k], fr...)
					gotFrags += int64(len(fr))
				}
				// Merging received fragments into the kept half is host
				// CPU work.
				node.CPUWork(p, float64(gotFrags), cl.Params.CompositeRate)
				st.lo, st.hi = keepLo, keepHi
			}
			// Final local composite of the owned slice.
			final := make(map[int32]vec.V4, len(st.pixels))
			var n int64
			for k, fr := range st.pixels {
				final[k] = composite.CompositePixel(fr, background)
				n += int64(len(fr))
			}
			node.CPUWork(p, float64(n), cl.Params.CompositeRate)
			finals[i] = final
		})
	}
	if err := env.Run(); err != nil {
		return 0, fmt.Errorf("core: binary swap failed: %w", err)
	}
	for _, final := range finals {
		for k, c := range final {
			out.SetKey(k, c)
		}
	}
	return env.Now() - start, nil
}
