package core

import (
	"gvmr/internal/camera"
	"gvmr/internal/composite"
	"gvmr/internal/mapreduce"
	"gvmr/internal/render"
	"gvmr/internal/volume"
)

// brickChunk adapts a volume brick to the MapReduce Chunk interface.
type brickChunk struct {
	brick volume.Brick
}

// ID implements mapreduce.Chunk.
func (c brickChunk) ID() int { return c.brick.ID }

// Bytes implements mapreduce.Chunk: the ghost-region payload that moves
// from disk to host memory to VRAM.
func (c brickChunk) Bytes() int64 { return c.brick.Bytes() }

// rayCastMapper is the renderer's Mapper: stage a brick from the source,
// upload it as a 3D texture, run the ray-casting (or slicing) kernel over
// its footprint, read the fragments back and emit them.
type rayCastMapper struct {
	src     volume.Source
	grid    *volume.Grid
	cam     *camera.Camera
	prm     render.Params
	sampler render.SampleFn
}

var _ mapreduce.Mapper[composite.Fragment, *volume.BrickData] = (*rayCastMapper)(nil)

// Init implements mapreduce.Mapper. Static per-worker state (view matrix,
// transfer-function texture) is tiny; its upload cost is charged here.
func (m *rayCastMapper) Init(p mapreduce.Ctx, w *mapreduce.Worker) error {
	w.Download(p, 0) // touch the link once: models the TF/texture setup
	return nil
}

// Stage implements mapreduce.Mapper: materialise the brick's ghost region.
// The engine charges disk time separately when configured FromDisk; the
// real data production happens here (array copy, analytic evaluation, or
// file read).
func (m *rayCastMapper) Stage(p mapreduce.Ctx, w *mapreduce.Worker, c mapreduce.Chunk) (*volume.BrickData, error) {
	return volume.StageBrick(m.src, c.(brickChunk).brick)
}

// Map implements mapreduce.Mapper.
func (m *rayCastMapper) Map(p mapreduce.Ctx, w *mapreduce.Worker, c mapreduce.Chunk,
	bd *volume.BrickData, emit func(mapreduce.KV[composite.Fragment])) error {
	tex, err := w.UploadTexture(p, bd)
	if err != nil {
		return err
	}
	defer tex.Free()
	k := render.NewKernel(m.cam, m.grid.Space, tex, m.prm)
	if k == nil {
		return nil // brick off screen: nothing to do
	}
	k.Sampler = m.sampler
	w.RunKernel(p, k)
	// Fragment read-back over PCIe: the paper measures <2 ms for a 512²
	// image's worth (§3); the model charges the actual buffer size.
	w.Download(p, k.OutBytes())
	for _, f := range k.Out {
		if f.IsPlaceholder() {
			// Every thread emitted; contributions of zero are the
			// "later-discarded place holders" — keyed -1 so the
			// partition drops them.
			emit(mapreduce.KV[composite.Fragment]{Key: -1})
			continue
		}
		emit(mapreduce.KV[composite.Fragment]{Key: f.Key, Val: f})
	}
	return nil
}
