package core

import (
	"gvmr/internal/camera"
	"gvmr/internal/composite"
	"gvmr/internal/mapreduce"
	"gvmr/internal/render"
	"gvmr/internal/volume"
)

// rayCastMapper is the renderer's Mapper: stage a unit's bricks from the
// source, upload each as a 3D texture, run the ray-casting (or slicing)
// kernel over its footprint, read the fragment lists back and emit them.
// A convex unit holds one brick; a partitioned unit emits its bricks in
// ascending brick order, which is the canonical in-unit fragment order
// every downstream fold assumes.
type rayCastMapper struct {
	src     volume.Source
	grid    *volume.Grid
	cam     *camera.Camera
	prm     render.Params
	sampler render.SampleFn
}

var _ mapreduce.Mapper[composite.Fragment, []*volume.BrickData] = (*rayCastMapper)(nil)

// Init implements mapreduce.Mapper. Static per-worker state (view matrix,
// transfer-function texture) is tiny; its upload cost is charged here.
func (m *rayCastMapper) Init(p mapreduce.Ctx, w *mapreduce.Worker) error {
	w.Download(p, 0) // touch the link once: models the TF/texture setup
	return nil
}

// Stage implements mapreduce.Mapper: materialise the ghost regions of the
// unit's bricks. The engine charges disk time separately when configured
// FromDisk; the real data production happens here (array copy, analytic
// evaluation, or file read). Sources that persist per-brick min/max (the
// v2 demand pager) can prove a brick invisible under the transfer
// function before any of that happens — such bricks stage as payload-free
// empties the kernel leaps over.
func (m *rayCastMapper) Stage(p mapreduce.Ctx, w *mapreduce.Worker, c mapreduce.Chunk) ([]*volume.BrickData, error) {
	bricks := c.(unitChunk).bricks
	tfEmpty := m.tfEmpty()
	staged := make([]*volume.BrickData, 0, len(bricks))
	for _, b := range bricks {
		bd, err := volume.StageBrickSkip(m.src, b, tfEmpty)
		if err != nil {
			return nil, err
		}
		staged = append(staged, bd)
	}
	return staged, nil
}

// tfEmpty returns the invisibility predicate StageBrickSkip needs — "is
// every scalar in [lo, hi] mapped to zero opacity?" — or nil when
// empty-space skipping is disabled, which must also disable min/max
// staging skips so NoEmptySkip renders remain exact reference runs.
func (m *rayCastMapper) tfEmpty() func(lo, hi float32) bool {
	if m.prm.NoEmptySkip || m.prm.TF == nil {
		return nil
	}
	tf := m.prm.TF
	return func(lo, hi float32) bool { return tf.MaxAlphaInRange(lo, hi) == 0 }
}

// Map implements mapreduce.Mapper: per brick of the unit, upload, run the
// kernel, read back, and emit every thread's fragment list. A thread
// whose list is empty (padding, miss, zero opacity) emits one key -1
// placeholder pair — the §3.1.1 "later-discarded place holders" — so the
// engine's emitted/discarded statistics stay comparable to the classic
// one-fragment-per-thread contract.
func (m *rayCastMapper) Map(p mapreduce.Ctx, w *mapreduce.Worker, c mapreduce.Chunk,
	staged []*volume.BrickData, emit func(mapreduce.KV[composite.Fragment])) error {
	for _, bd := range staged {
		tex, err := w.UploadTexture(p, bd)
		if err != nil {
			return err
		}
		k := render.NewKernel(m.cam, m.grid.Space, tex, m.prm)
		if k == nil {
			tex.Free()
			continue // brick off screen: nothing to do
		}
		k.Sampler = m.sampler
		w.RunKernel(p, k)
		// Fragment read-back over PCIe: the paper measures <2 ms for a 512²
		// image's worth (§3); the model charges the actual buffer size
		// (per-thread counts plus packed fragments).
		w.Download(p, k.OutBytes())
		k.ForEachThread(func(_ int, frags []composite.Fragment) {
			if len(frags) == 0 {
				emit(mapreduce.KV[composite.Fragment]{Key: -1})
				return
			}
			for _, f := range frags {
				emit(mapreduce.KV[composite.Fragment]{Key: f.Key, Val: f})
			}
		})
		tex.Free()
	}
	return nil
}
