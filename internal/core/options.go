// Package core is the paper's volume renderer built on the MapReduce
// library: bricked ray casting in the Map phase, per-pixel round-robin
// partitioning, counting sort, and direct-send compositing in the Reduce
// phase (§3.2), with binary-swap compositing and a slicing sampler as the
// pluggable alternatives §6.1 describes.
package core

import (
	"fmt"

	"gvmr/internal/camera"
	"gvmr/internal/mapreduce"
	"gvmr/internal/render"
	"gvmr/internal/trace"
	"gvmr/internal/transfer"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
)

// Compositor selects the fragment-combination topology.
type Compositor int

// Compositors.
const (
	DirectSend Compositor = iota // paper's choice (§6: overlap + MapReduce fit)
	BinarySwap                   // §6.1 alternative
)

// String renders the compositor name.
func (c Compositor) String() string {
	if c == BinarySwap {
		return "binary-swap"
	}
	return "direct-send"
}

// Sampler selects the volume-sampling technique of the map phase.
type Sampler int

// Samplers.
const (
	RayCast Sampler = iota
	Slicing
)

// String renders the sampler name.
func (s Sampler) String() string {
	if s == Slicing {
		return "slicing"
	}
	return "raycast"
}

// Options configures a render.
type Options struct {
	// Source provides the volume data (in-core array, analytic dataset,
	// or file).
	Source volume.Source
	// TF is the transfer function.
	TF *transfer.Func
	// Width and Height are the image size (the paper evaluates at 512²).
	Width, Height int
	// GPUs is the number of devices used; zero means all in the cluster.
	GPUs int
	// Camera overrides the default fit view when non-nil.
	Camera *camera.Camera
	// Background is the color composited behind the volume.
	Background vec.V4

	// StepVoxels and TerminationAlpha parameterise the kernel.
	StepVoxels       float32
	TerminationAlpha float32
	// Shading enables gradient (central-difference) diffuse shading —
	// the "shading calculations" of the §2 ray-casting description —
	// at six extra texture fetches per contributing sample.
	Shading bool

	// BricksPerGPU scales the bricking policy: brick count =
	// max(GPUs·BricksPerGPU, VRAM floor). Default 1, the paper's
	// "number of bricks close to the number of GPUs" regime.
	BricksPerGPU int
	// VRAMFraction is the fraction of device memory a single brick may
	// occupy (working buffers need the rest). Default 0.75.
	VRAMFraction float64

	// FromDisk streams bricks through the simulated disk (out-of-core).
	FromDisk bool

	// NoStagingCache disables the process-wide volume staging cache for
	// this render: every brick stage re-evaluates the source (the pre-cache
	// behavior, useful for benchmarking synthesis itself).
	NoStagingCache bool

	// NoEmptySkip disables macrocell empty-space skipping in the ray
	// caster: every lattice sample is fetched and classified like the
	// paper's original §3.2 kernel. Images are bit-identical either way
	// (skipping is conservative — see DESIGN.md §8); the flag exists for
	// A/B benchmarks of the acceleration structure.
	NoEmptySkip bool

	// InSitu models the §7 in-situ pipeline: bricks are already resident
	// on the cluster's nodes (produced by a co-located simulation,
	// distributed round-robin across nodes), workers are scheduled with
	// node affinity, and any brick mapped off its home node costs an
	// interconnect hand-off instead of a disk read.
	InSitu bool

	// SequenceSerial forces RenderSequence and RenderFrames to execute
	// one frame at a time on the caller's cluster (the pre-scheduler
	// behavior). The default renders independent frames concurrently
	// across host cores, each on a fresh instance of the cluster's spec;
	// images, per-frame virtual times and aggregated statistics are
	// bit-identical either way.
	SequenceSerial bool
	// SequenceWorkers caps the frame scheduler's pool width (0 means
	// GOMAXPROCS). Values above GOMAXPROCS are honored, which forces
	// real concurrency even on small machines — the determinism tests
	// use that.
	SequenceWorkers int

	// Trace, when non-nil, collects per-operation activity spans (see
	// internal/trace) for timeline export. A non-nil Trace forces
	// serial sequence execution so the log stays one coherent timeline.
	Trace *trace.Log

	Compositor Compositor
	Sampler    Sampler

	// Partition groups bricks into map units. nil is the paper's convex
	// regime (one unit per brick). A non-nil Partition — e.g.
	// Interleaved, or a custom scheme registered via RegisterPartition —
	// may be non-convex: rays re-enter a unit once per connected span
	// and each (unit, pixel) cell carries a fragment list instead of a
	// single fragment. Convex digests are byte-identical with or without
	// this machinery; see DESIGN.md §12.
	Partition Partition

	// Partitioner overrides the default per-pixel round-robin (used by
	// the volume/image partitioning ablation).
	Partitioner mapreduce.Partitioner

	ReduceOn mapreduce.Placement
	SortOn   mapreduce.Placement
	Assign   mapreduce.AssignMode

	// FlushBytes is the streaming emission threshold (default 256 KiB).
	FlushBytes int64

	// ChargeFixedOverhead includes the per-job fixed cost in timings
	// (default true — the paper's runtimes include full frame setup).
	ChargeFixedOverhead *bool
}

func (o *Options) fillDefaults() error {
	if o.Source == nil {
		return fmt.Errorf("core: nil volume source")
	}
	if o.TF == nil {
		return fmt.Errorf("core: nil transfer function")
	}
	if o.Width <= 0 || o.Height <= 0 {
		return fmt.Errorf("core: invalid image size %dx%d", o.Width, o.Height)
	}
	if o.StepVoxels == 0 {
		o.StepVoxels = 1
	}
	if o.TerminationAlpha == 0 {
		o.TerminationAlpha = 0.98
	}
	if o.BricksPerGPU == 0 {
		o.BricksPerGPU = 1
	}
	if o.VRAMFraction == 0 {
		o.VRAMFraction = 0.75
	}
	if o.FlushBytes == 0 {
		o.FlushBytes = 256 << 10
	}
	if o.Background.W == 0 {
		o.Background = vec.V4{X: 0, Y: 0, Z: 0, W: 1}
	}
	return nil
}

func (o *Options) chargeOverhead() bool {
	if o.ChargeFixedOverhead == nil {
		return true
	}
	return *o.ChargeFixedOverhead
}

// renderParams builds the kernel parameters.
func (o *Options) renderParams() render.Params {
	return render.Params{
		TF:               o.TF,
		StepVoxels:       o.StepVoxels,
		TerminationAlpha: o.TerminationAlpha,
		Shading:          o.Shading,
		// The slicing sampler ignores the skip structure; disabling it
		// spares slicing kernels the macrocell build they'd never read.
		NoEmptySkip: o.NoEmptySkip || o.Sampler == Slicing,
	}
}
