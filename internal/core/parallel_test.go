package core

import (
	"reflect"
	"testing"

	"gvmr/internal/cluster"
	"gvmr/internal/transfer"
	"gvmr/internal/volume/dataset"
)

func seqOptions(t *testing.T) Options {
	t.Helper()
	src, err := dataset.New(dataset.Skull, dataset.PaperDims(dataset.Skull, 24))
	if err != nil {
		t.Fatal(err)
	}
	tf, err := transfer.Preset(dataset.Skull)
	if err != nil {
		t.Fatal(err)
	}
	return Options{Source: src, TF: tf, Width: 48, Height: 48}
}

func renderSeq(t *testing.T, opt Options) *SequenceResult {
	t.Helper()
	cl, err := cluster.AC(2).Instance()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RenderSequence(cl, opt, 4, 180)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSequenceParallelMatchesSerial is the scheduler's core contract:
// fanning the frames of a sequence out across real goroutines, each on a
// fresh cluster instance, must reproduce the serial path bit for bit —
// images, per-frame virtual times, and the full per-frame JobStats.
func TestSequenceParallelMatchesSerial(t *testing.T) {
	serialOpt := seqOptions(t)
	serialOpt.SequenceSerial = true
	serial := renderSeq(t, serialOpt)

	parOpt := seqOptions(t)
	parOpt.SequenceWorkers = 4 // force a real pool even on one core
	par := renderSeq(t, parOpt)

	if par.Workers != 4 || serial.Workers != 1 {
		t.Fatalf("pool widths = %d serial / %d parallel", serial.Workers, par.Workers)
	}
	if serial.Total != par.Total {
		t.Errorf("total: serial %v != parallel %v", serial.Total, par.Total)
	}
	if !reflect.DeepEqual(serial.PerFrame, par.PerFrame) {
		t.Errorf("per-frame times differ:\nserial   %v\nparallel %v", serial.PerFrame, par.PerFrame)
	}
	if serial.LastImage.Digest() != par.LastImage.Digest() {
		t.Error("last images differ between serial and parallel execution")
	}
	if !reflect.DeepEqual(serial.FrameStats, par.FrameStats) {
		t.Error("per-frame JobStats differ between serial and parallel execution")
	}
	if serial.Agg != par.Agg {
		t.Errorf("aggregated stats differ:\nserial   %+v\nparallel %+v", serial.Agg, par.Agg)
	}
	if serial.MeanFPS != par.MeanFPS {
		t.Errorf("mean FPS: serial %v != parallel %v", serial.MeanFPS, par.MeanFPS)
	}
}

// TestSequenceParallelDeterministic: repeated parallel runs with the same
// options produce identical JobStats (stage breakdown, wire bytes),
// per-frame times and images, at different pool widths. Runs under -race
// in CI.
func TestSequenceParallelDeterministic(t *testing.T) {
	opt := seqOptions(t)
	opt.SequenceWorkers = 3
	a := renderSeq(t, opt)
	for run := 0; run < 2; run++ {
		opt := seqOptions(t)
		opt.SequenceWorkers = 2 + run*4 // 2 then 6 workers
		b := renderSeq(t, opt)
		if !reflect.DeepEqual(a.FrameStats, b.FrameStats) {
			t.Errorf("run %d: JobStats differ across parallel runs", run)
		}
		if !reflect.DeepEqual(a.PerFrame, b.PerFrame) {
			t.Errorf("run %d: per-frame times differ across parallel runs", run)
		}
		if a.LastImage.Digest() != b.LastImage.Digest() {
			t.Errorf("run %d: images differ across parallel runs", run)
		}
		if a.Agg != b.Agg {
			t.Errorf("run %d: aggregated stats differ across parallel runs", run)
		}
	}
}

// TestSequenceAdvancesSessionClock: parallel execution still accumulates
// virtual time on the caller's cluster, as an interactive session would.
func TestSequenceAdvancesSessionClock(t *testing.T) {
	opt := seqOptions(t)
	opt.SequenceWorkers = 2
	cl, err := cluster.AC(2).Instance()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RenderSequence(cl, opt, 3, 90)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Env.Now() != res.Total {
		t.Errorf("session clock at %v after a %v sequence", cl.Env.Now(), res.Total)
	}
}

// TestRenderFramesMatchesSequence: the public frame API renders the same
// orbit cameras to the same images and durations as RenderSequence.
func TestRenderFramesMatchesSequence(t *testing.T) {
	opt := seqOptions(t)
	opt.SequenceWorkers = 3
	seq := renderSeq(t, opt)

	cams, err := OrbitCameras(opt.Source, opt.Width, opt.Height, 4, 180)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.AC(2).Instance()
	if err != nil {
		t.Fatal(err)
	}
	results, err := RenderFrames(cl, opt, cams)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	if results[3].Image.Digest() != seq.LastImage.Digest() {
		t.Error("RenderFrames last image differs from RenderSequence")
	}
	if !reflect.DeepEqual(results[3].Stats, seq.FrameStats[3]) {
		t.Error("RenderFrames stats differ from RenderSequence")
	}
	if cl.Env.Now() != seq.Total {
		t.Errorf("session clock %v != sequence total %v", cl.Env.Now(), seq.Total)
	}
}

// TestRenderFramesAsyncStreamsInOrder: the async API delivers every
// frame, in index order, with the same content as the synchronous API.
func TestRenderFramesAsyncStreamsInOrder(t *testing.T) {
	opt := seqOptions(t)
	opt.SequenceWorkers = 3
	cams, err := OrbitCameras(opt.Source, opt.Width, opt.Height, 5, 360)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.AC(2).Instance()
	if err != nil {
		t.Fatal(err)
	}
	sync, err := RenderFrames(cl, opt, cams)
	if err != nil {
		t.Fatal(err)
	}
	cl2, err := cl.Clone()
	if err != nil {
		t.Fatal(err)
	}
	ch, stop, err := RenderFramesAsync(cl2, opt, cams)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	i := 0
	for fr := range ch {
		if fr.Err != nil {
			t.Fatalf("frame %d: %v", fr.Index, fr.Err)
		}
		if fr.Index != i {
			t.Fatalf("frame %d delivered at position %d", fr.Index, i)
		}
		if fr.Result.Image.Digest() != sync[i].Image.Digest() {
			t.Errorf("frame %d image differs from synchronous render", i)
		}
		if fr.Time <= 0 {
			t.Errorf("frame %d has no duration", i)
		}
		i++
	}
	if i != len(cams) {
		t.Fatalf("stream delivered %d of %d frames", i, len(cams))
	}
}

// TestSequenceSerialErrorsMatchParallel: both modes report the failure of
// the lowest-index failing frame, identically wrapped.
func TestSequenceErrorFirstFrame(t *testing.T) {
	opt := seqOptions(t)
	opt.GPUs = 99 // more GPUs than the cluster has: every frame fails
	opt.SequenceSerial = true
	cl, err := cluster.AC(2).Instance()
	if err != nil {
		t.Fatal(err)
	}
	_, serialErr := RenderSequence(cl, opt, 3, 90)
	opt.SequenceSerial = false
	opt.SequenceWorkers = 3
	cl2, _ := cl.Clone()
	_, parErr := RenderSequence(cl2, opt, 3, 90)
	if serialErr == nil || parErr == nil {
		t.Fatal("expected errors")
	}
	if serialErr.Error() != parErr.Error() {
		t.Errorf("error text differs:\nserial   %v\nparallel %v", serialErr, parErr)
	}
}
