package core

import (
	"testing"

	"gvmr/internal/cluster"
	"gvmr/internal/volume"
)

// adversarialOptions is the non-convex battery's configuration: enough
// bricks (2 GPUs × 8 bricks/GPU = 16 on a 32³ skull) that a ray crossing
// the volume under the interleaved checkerboard re-enters each unit
// several times.
func adversarialOptions(t *testing.T) Options {
	t.Helper()
	opt := skullOptions(t, 32, 64, 2)
	opt.Shading = true
	opt.BricksPerGPU = 8
	return opt
}

// TestPartitionBitIdentity is the heart of the §12 claim: grouping
// bricks into non-convex units changes only where fragments accumulate
// (per-unit lists instead of per-brick cells), never the rendered bits.
// The convex default and adversarial interleavings of every width must
// digest identically.
func TestPartitionBitIdentity(t *testing.T) {
	opt := adversarialOptions(t)
	base, err := Render(newCluster(t, 2), opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Image.MeanLuminance() <= 0 {
		t.Fatal("black reference image")
	}
	for _, parts := range []int{2, 3, 4} {
		o := opt
		o.Partition = Interleaved{NumParts: parts}
		res, err := Render(newCluster(t, 2), o)
		if err != nil {
			t.Fatalf("interleave:%d: %v", parts, err)
		}
		if got, want := res.Image.Digest(), base.Image.Digest(); got != want {
			t.Errorf("interleave:%d: digest %s != convex %s", parts, got, want)
		}
	}
}

// TestInterleavedRayReentry pins the premise that makes the battery
// adversarial: under the interleaved checkerboard, some ray actually
// re-enters a unit at least twice, i.e. some (unit, pixel) fragment
// list has length ≥ 3. Without this, the partition goldens would
// silently degenerate into convex coverage.
func TestInterleavedRayReentry(t *testing.T) {
	opt := adversarialOptions(t)
	opt.Partition = Interleaved{NumParts: 2}
	res, err := MapBricks(cluster.AC(2), opt, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	longest := 0
	for _, s := range res.Stripes {
		perPixel := map[int32]int{}
		for _, f := range s.Frags {
			perPixel[f.Key]++
			if perPixel[f.Key] > longest {
				longest = perPixel[f.Key]
			}
		}
	}
	if longest < 3 {
		t.Fatalf("longest (unit, pixel) fragment list is %d, want ≥ 3 — partition not adversarial", longest)
	}
}

func TestNumUnits(t *testing.T) {
	opt := adversarialOptions(t)
	if err := opt.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	grid, err := PlanGrid(cluster.AC(2), opt)
	if err != nil {
		t.Fatal(err)
	}
	if grid.NumBricks() != 16 {
		t.Fatalf("planned %d bricks, want 16", grid.NumBricks())
	}
	n, err := NumUnits(grid, nil)
	if err != nil || n != grid.NumBricks() {
		t.Errorf("convex NumUnits = %d, %v; want %d", n, err, grid.NumBricks())
	}
	n, err = NumUnits(grid, Interleaved{NumParts: 2})
	if err != nil || n != 2 {
		t.Errorf("interleave:2 NumUnits = %d, %v; want 2", n, err)
	}
	// 17 parts on a 16-brick grid must leave a unit empty — ambiguous
	// unit counts across layers, so planning rejects it.
	if _, err := NumUnits(grid, Interleaved{NumParts: 17}); err == nil {
		t.Error("empty unit accepted")
	}
}

func TestBuildPartition(t *testing.T) {
	p, err := BuildPartition("interleave", 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "interleave:3" {
		t.Errorf("Name() = %q", p.Name())
	}
	if p.Assign(volume.Brick{Index: [3]int{1, 1, 2}}, nil) != 1 {
		t.Error("interleave assignment is not index-parity")
	}
	if _, err := BuildPartition("no-such-scheme", 2); err == nil {
		t.Error("unknown scheme accepted")
	}
	for _, parts := range []int{1, 0, -1, 5000} {
		if _, err := BuildPartition("interleave", parts); err == nil {
			t.Errorf("parts=%d accepted", parts)
		}
	}
}
