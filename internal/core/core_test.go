package core

import (
	"path/filepath"
	"testing"

	"gvmr/internal/camera"
	"gvmr/internal/cluster"
	"gvmr/internal/img"
	"gvmr/internal/mapreduce"
	"gvmr/internal/render"
	"gvmr/internal/sim"
	"gvmr/internal/transfer"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

func newCluster(t *testing.T, gpus int) *cluster.Cluster {
	t.Helper()
	env := sim.NewEnv()
	cl, err := cluster.New(env, cluster.AC(gpus))
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func skullOptions(t *testing.T, n, imgSize, gpus int) Options {
	t.Helper()
	src, err := dataset.New(dataset.Skull, volume.Cube(n))
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Source: src,
		TF:     transfer.SkullPreset(),
		Width:  imgSize,
		Height: imgSize,
		GPUs:   gpus,
	}
}

func referenceImage(t *testing.T, opt Options) *img.Image {
	t.Helper()
	sp := volume.NewSpace(opt.Source.Dims())
	cam := opt.Camera
	if cam == nil {
		var err error
		cam, err = camera.Fit(sp.Bounds(), opt.Width, opt.Height)
		if err != nil {
			t.Fatal(err)
		}
	}
	pix, err := render.Reference(cam, opt.Source, render.Params{
		TF: opt.TF, StepVoxels: 1, TerminationAlpha: 0.98,
	}, vec.V4{X: 0, Y: 0, Z: 0, W: 1})
	if err != nil {
		t.Fatal(err)
	}
	im := img.New(opt.Width, opt.Height, vec.V4{})
	copy(im.Pix, pix)
	return im
}

func TestRenderMatchesReference(t *testing.T) {
	cl := newCluster(t, 4)
	opt := skullOptions(t, 32, 48, 4)
	res, err := Render(cl, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceImage(t, opt)
	maxErr, meanErr := img.Diff(res.Image, ref)
	if maxErr > 0.05 || meanErr > 0.002 {
		t.Errorf("distributed render differs from reference: max %.4f mean %.5f", maxErr, meanErr)
	}
	if res.Image.MeanLuminance() < 0.01 {
		t.Error("image is black")
	}
}

func TestGPUCountImageInvariance(t *testing.T) {
	base := skullOptions(t, 32, 40, 1)
	resBase, err := Render(newCluster(t, 1), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, gpus := range []int{2, 4, 8} {
		opt := skullOptions(t, 32, 40, gpus)
		res, err := Render(newCluster(t, gpus), opt)
		if err != nil {
			t.Fatalf("%d GPUs: %v", gpus, err)
		}
		maxErr, _ := img.Diff(res.Image, resBase.Image)
		if maxErr > 0.05 {
			t.Errorf("%d GPUs: image differs from 1-GPU image by %.4f", gpus, maxErr)
		}
		if res.Grid.NumBricks() < gpus {
			t.Errorf("%d GPUs: only %d bricks", gpus, res.Grid.NumBricks())
		}
	}
}

func TestBinarySwapMatchesDirectSend(t *testing.T) {
	optDS := skullOptions(t, 32, 40, 4)
	resDS, err := Render(newCluster(t, 4), optDS)
	if err != nil {
		t.Fatal(err)
	}
	optBS := skullOptions(t, 32, 40, 4)
	optBS.Compositor = BinarySwap
	resBS, err := Render(newCluster(t, 4), optBS)
	if err != nil {
		t.Fatal(err)
	}
	maxErr, _ := img.Diff(resDS.Image, resBS.Image)
	if maxErr > 1e-4 {
		t.Errorf("binary swap image differs from direct send by %.5f", maxErr)
	}
	if resBS.SwapTime <= 0 {
		t.Error("binary swap charged no exchange time")
	}
}

func TestBinarySwapRequiresPowerOfTwo(t *testing.T) {
	opt := skullOptions(t, 32, 40, 3)
	opt.Compositor = BinarySwap
	if _, err := Render(newCluster(t, 3), opt); err == nil {
		t.Error("binary swap on 3 GPUs accepted")
	}
}

func TestSlicingSamplerRendersComparableImage(t *testing.T) {
	optRC := skullOptions(t, 32, 40, 4)
	resRC, err := Render(newCluster(t, 4), optRC)
	if err != nil {
		t.Fatal(err)
	}
	optSL := skullOptions(t, 32, 40, 4)
	optSL.Sampler = Slicing
	resSL, err := Render(newCluster(t, 4), optSL)
	if err != nil {
		t.Fatal(err)
	}
	lumRC := resRC.Image.MeanLuminance()
	lumSL := resSL.Image.MeanLuminance()
	if lumSL < lumRC*0.7 || lumSL > lumRC*1.3 {
		t.Errorf("slicing luminance %.4f too far from ray casting %.4f", lumSL, lumRC)
	}
}

func TestOutOfCoreMatchesInCore(t *testing.T) {
	// Write the dataset to a file, render from disk, compare to in-core.
	src, err := dataset.New(dataset.Supernova, volume.Cube(24))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sn.gvmr")
	if err := volume.WriteFile(path, src); err != nil {
		t.Fatal(err)
	}
	fileSrc, err := volume.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fileSrc.Close()

	inCore := Options{
		Source: src, TF: transfer.SupernovaPreset(),
		Width: 32, Height: 32, GPUs: 2,
	}
	resIC, err := Render(newCluster(t, 2), inCore)
	if err != nil {
		t.Fatal(err)
	}
	outCore := Options{
		Source: fileSrc, TF: transfer.SupernovaPreset(),
		Width: 32, Height: 32, GPUs: 2, FromDisk: true,
	}
	resOOC, err := Render(newCluster(t, 2), outCore)
	if err != nil {
		t.Fatal(err)
	}
	maxErr, _ := img.Diff(resIC.Image, resOOC.Image)
	if maxErr > 1e-6 {
		t.Errorf("out-of-core image differs by %.6f", maxErr)
	}
	if resOOC.Runtime <= resIC.Runtime {
		t.Errorf("out-of-core %v should be slower than in-core %v", resOOC.Runtime, resIC.Runtime)
	}
}

func TestResultFiguresOfMerit(t *testing.T) {
	cl := newCluster(t, 4)
	res, err := Render(cl, skullOptions(t, 32, 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 {
		t.Fatal("no runtime")
	}
	if res.FPS <= 0 || res.VPSMillions <= 0 {
		t.Error("FPS/VPS not computed")
	}
	wantVPS := float64(res.Voxels) / res.Runtime.Seconds() / 1e6
	if diff := res.VPSMillions - wantVPS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("VPS inconsistent: %v vs %v", res.VPSMillions, wantVPS)
	}
	if res.Stats.MeanStage.Map <= 0 {
		t.Error("no map time recorded")
	}
	if res.Stats.TotalEmitted == 0 {
		t.Error("no fragments emitted")
	}
}

func TestDeterministicRuntime(t *testing.T) {
	r1, err := Render(newCluster(t, 4), skullOptions(t, 32, 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Render(newCluster(t, 4), skullOptions(t, 32, 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Runtime != r2.Runtime {
		t.Errorf("runtimes differ: %v vs %v", r1.Runtime, r2.Runtime)
	}
	maxErr, _ := img.Diff(r1.Image, r2.Image)
	if maxErr != 0 {
		t.Errorf("images differ across identical runs: %.6f", maxErr)
	}
}

func TestOptionValidation(t *testing.T) {
	cl := newCluster(t, 2)
	good := skullOptions(t, 16, 24, 2)
	bad := good
	bad.Source = nil
	if _, err := Render(cl, bad); err == nil {
		t.Error("nil source accepted")
	}
	bad = good
	bad.TF = nil
	if _, err := Render(cl, bad); err == nil {
		t.Error("nil TF accepted")
	}
	bad = good
	bad.Width = 0
	if _, err := Render(cl, bad); err == nil {
		t.Error("zero width accepted")
	}
	bad = good
	bad.GPUs = 99
	if _, err := Render(cl, bad); err == nil {
		t.Error("too many GPUs accepted")
	}
}

func TestPlanBricksVRAMFloor(t *testing.T) {
	// A volume bigger than one device's usable VRAM must be split even on
	// one GPU (the out-of-core regime).
	d := volume.Cube(64)      // 1 MiB
	vram := int64(300 * 1024) // tiny VRAM: forces >= 4 bricks
	g, err := planBricks(d, 1, 1, vram, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumBricks() < 4 {
		t.Errorf("VRAM floor ignored: %d bricks", g.NumBricks())
	}
	if g.MaxBrickBytes() > vram {
		t.Errorf("brick %d bytes exceeds usable VRAM %d", g.MaxBrickBytes(), vram)
	}
}

func TestPlanBricksMatchesGPUs(t *testing.T) {
	g, err := planBricks(volume.Cube(64), 8, 1, 4<<30, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumBricks() != 8 {
		t.Errorf("bricks = %d, want 8 (one per GPU)", g.NumBricks())
	}
	g, err = planBricks(volume.Cube(64), 8, 2, 4<<30, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumBricks() != 16 {
		t.Errorf("bricks = %d, want 16 (two per GPU)", g.NumBricks())
	}
}

func TestVolumePartitionerAblation(t *testing.T) {
	// Blocked (image-block) partitioning still renders the right image.
	opt := skullOptions(t, 32, 40, 4)
	opt.Partitioner = mapreduce.Blocked{KeyRange: 40 * 40}
	res, err := Render(newCluster(t, 4), opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Render(newCluster(t, 4), skullOptions(t, 32, 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	maxErr, _ := img.Diff(res.Image, ref.Image)
	if maxErr > 1e-6 {
		t.Errorf("blocked partitioning changed the image by %.6f", maxErr)
	}
}
