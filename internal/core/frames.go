package core

import (
	"fmt"
	"sync"

	"gvmr/internal/camera"
	"gvmr/internal/cluster"
	"gvmr/internal/schedule"
	"gvmr/internal/sim"
)

// Frame is one delivered frame of a multi-frame render: the full Result
// plus the frame's virtual duration. Err is set instead of Result when
// the frame failed.
type Frame struct {
	Index  int
	Result *Result
	// Time is the frame's simulated duration on its own cluster
	// instance — the value RenderSequence reports in PerFrame.
	Time sim.Time
	Err  error
}

// RenderOn renders one frame on a fresh instance of spec and returns the
// result plus the frame's virtual duration — the single-frame job API:
// every call is an independent, deterministic simulation, safe to issue
// concurrently from any number of goroutines. devWorkers caps the host
// cores the instance's simulated devices use for kernel blocks (≤ 0
// means all of GOMAXPROCS); callers running many jobs at once split the
// machine with schedule.DeviceWorkers. The render service calls this
// once per admitted request.
func RenderOn(spec cluster.Spec, opt Options, devWorkers int) (*Result, sim.Time, error) {
	inst, err := spec.Instance()
	if err != nil {
		return nil, 0, err
	}
	if devWorkers > 0 {
		inst.SetDeviceWorkers(devWorkers)
	}
	start := inst.Env.Now()
	r, err := Render(inst, opt)
	if err != nil {
		return nil, 0, err
	}
	return r, inst.Env.Now() - start, nil
}

// renderFrameJob renders cams[f] on a fresh instance of cl's spec and
// returns the result plus the frame's virtual duration. It is the unit
// of work both RenderFrames and RenderFramesAsync schedule.
func renderFrameJob(cl *cluster.Cluster, opt Options, cams []*camera.Camera, devWorkers, f int) (Frame, error) {
	frameOpt := opt
	frameOpt.Camera = cams[f]
	r, dur, err := RenderOn(cl.Params, frameOpt, devWorkers)
	if err != nil {
		return Frame{Index: f}, fmt.Errorf("core: frame %d: %w", f, err)
	}
	return Frame{Index: f, Result: r, Time: dur}, nil
}

func validateFrames(opt *Options, cams []*camera.Camera) error {
	if err := opt.fillDefaults(); err != nil {
		return err
	}
	if len(cams) == 0 {
		return fmt.Errorf("core: no cameras")
	}
	for i, cam := range cams {
		if cam == nil {
			return fmt.Errorf("core: nil camera %d", i)
		}
	}
	return nil
}

// RenderFrames renders one frame per camera — an animation path, a
// turntable, a stereo pair — concurrently across host cores, each frame
// on a fresh instance of the cluster's spec, and returns the results in
// camera order. Options.SequenceSerial and Options.SequenceWorkers
// control the pool exactly as in RenderSequence (a non-nil Options.Trace
// also forces serial, and the serial path renders on the caller's
// cluster itself, so a trace stays one coherent timeline); output is
// bit-identical at any pool width. The caller's cluster clock advances
// by the summed frame durations, as if it had rendered the frames back
// to back.
func RenderFrames(cl *cluster.Cluster, opt Options, cams []*camera.Camera) ([]*Result, error) {
	if err := validateFrames(&opt, cams); err != nil {
		return nil, err
	}
	if opt.SequenceSerial || opt.Trace != nil {
		// Pre-scheduler behavior: frames back to back on the caller's
		// cluster, its clock advancing with each render.
		out := make([]*Result, len(cams))
		for f, cam := range cams {
			frameOpt := opt
			frameOpt.Camera = cam
			r, err := Render(cl, frameOpt)
			if err != nil {
				return nil, fmt.Errorf("core: frame %d: %w", f, err)
			}
			out[f] = r
		}
		return out, nil
	}
	workers := schedule.Workers(opt.SequenceWorkers, len(cams))
	devWorkers := schedule.DeviceWorkers(workers)
	frames, err := schedule.Map(workers, len(cams), func(f int) (Frame, error) {
		return renderFrameJob(cl, opt, cams, devWorkers, f)
	})
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(frames))
	var total sim.Time
	for i, fr := range frames {
		out[i] = fr.Result
		total += fr.Time
	}
	if err := cl.Env.RunUntil(cl.Env.Now() + total); err != nil {
		return nil, err
	}
	return out, nil
}

// RenderFramesAsync renders one frame per camera concurrently and
// streams the frames on the returned channel in camera order, each as
// soon as it and all its predecessors are done. The stream applies
// backpressure: rendering runs only a small window ahead of the
// consumer, so undelivered framebuffers stay bounded. A failed frame is
// delivered in-stream with Err set; remaining frames still render. The
// channel closes after the last frame.
//
// The returned stop function cancels the stream: frames already
// rendering finish, no new frames start, and the channel closes early.
// A consumer that stops reading before the channel closes MUST call
// stop (or keep draining) — abandoning the channel otherwise blocks the
// render goroutines forever. Calling stop after completion is a no-op;
// it is safe to `defer stop()`.
//
// Every frame renders on a fresh instance of the cluster's spec — the
// caller's cluster clock is not advanced (consumers that want session
// accounting sum Frame.Time themselves), and a non-nil Options.Trace
// only serialises execution; its spans come from per-frame instances
// that each start at virtual time zero. Use RenderFrames with
// SequenceSerial for a single coherent timeline.
func RenderFramesAsync(cl *cluster.Cluster, opt Options, cams []*camera.Camera) (<-chan Frame, func(), error) {
	if err := validateFrames(&opt, cams); err != nil {
		return nil, nil, err
	}
	workers := 1
	if !opt.SequenceSerial && opt.Trace == nil {
		workers = schedule.Workers(opt.SequenceWorkers, len(cams))
	}
	devWorkers := schedule.DeviceWorkers(workers)
	done := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(done) }) }
	items := schedule.Stream(workers, len(cams), func(f int) (Frame, error) {
		return renderFrameJob(cl, opt, cams, devWorkers, f)
	}, done)
	out := make(chan Frame)
	go func() {
		defer close(out)
		for item := range items {
			fr := item.Value
			fr.Index = item.Index
			if item.Err != nil {
				fr.Err = item.Err
			}
			select {
			case out <- fr:
			case <-done:
				return
			}
		}
	}()
	return out, stop, nil
}
