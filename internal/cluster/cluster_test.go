package cluster

import (
	"strings"
	"testing"

	"gvmr/internal/sim"
)

func TestACPreset(t *testing.T) {
	cases := []struct {
		gpus      int
		nodes     int
		perNode   int
		totalGPUs int
	}{
		{1, 1, 1, 1},
		{2, 1, 2, 2},
		{4, 1, 4, 4},
		{8, 2, 4, 8},
		{16, 4, 4, 16},
		{32, 8, 4, 32},
	}
	for _, c := range cases {
		p := AC(c.gpus)
		if p.Nodes != c.nodes || p.GPUsPerNode != c.perNode {
			t.Errorf("AC(%d) = %d nodes × %d GPUs, want %d × %d",
				c.gpus, p.Nodes, p.GPUsPerNode, c.nodes, c.perNode)
		}
		env := sim.NewEnv()
		cl, err := New(env, p)
		if err != nil {
			t.Fatal(err)
		}
		if cl.TotalGPUs() != c.totalGPUs {
			t.Errorf("AC(%d) built %d GPUs", c.gpus, cl.TotalGPUs())
		}
	}
}

func TestValidate(t *testing.T) {
	p := AC(4)
	p.Nodes = 0
	if _, err := New(sim.NewEnv(), p); err == nil {
		t.Error("zero nodes accepted")
	}
	p = AC(4)
	p.CPUCores = 0
	if _, err := New(sim.NewEnv(), p); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestDeviceIndexing(t *testing.T) {
	env := sim.NewEnv()
	cl, err := New(env, AC(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cl.TotalGPUs(); i++ {
		d := cl.Device(i)
		if d.ID != i {
			t.Errorf("Device(%d).ID = %d", i, d.ID)
		}
		n := cl.NodeOf(i)
		if n.ID != i/4 {
			t.Errorf("GPU %d on node %d, want %d", i, n.ID, i/4)
		}
	}
}

func TestDiskReadMatchesPaperMicroCost(t *testing.T) {
	// The paper: loading a 64³ brick from disk ≈ 20 ms.
	env := sim.NewEnv()
	cl, err := New(env, AC(1))
	if err != nil {
		t.Fatal(err)
	}
	brickBytes := int64(64 * 64 * 64 * 4)
	env.Go("reader", func(p *sim.Proc) {
		cl.Nodes[0].ReadDisk(p, brickBytes)
		ms := p.Now().Millis()
		if ms < 15 || ms > 25 {
			t.Errorf("64³ disk read = %.2fms, paper says ≈20ms", ms)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskSerialises(t *testing.T) {
	env := sim.NewEnv()
	cl, err := New(env, AC(1))
	if err != nil {
		t.Fatal(err)
	}
	var last sim.Time
	for i := 0; i < 3; i++ {
		env.Go("r", func(p *sim.Proc) {
			cl.Nodes[0].ReadDisk(p, 1<<20)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	one := sim.Millisecond + sim.BytesTime(1<<20, float64(52<<20))
	if last != 3*one {
		t.Errorf("3 serialized reads finished at %v, want %v", last, 3*one)
	}
}

func TestTransferRemoteVsLocal(t *testing.T) {
	env := sim.NewEnv()
	cl, err := New(env, AC(8)) // 2 nodes
	if err != nil {
		t.Fatal(err)
	}
	var remote, local sim.Time
	env.Go("x", func(p *sim.Proc) {
		remote = cl.Transfer(p, cl.Nodes[0], cl.Nodes[1], 1<<20)
		local = cl.Transfer(p, cl.Nodes[0], cl.Nodes[0], 1<<20)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if local >= remote {
		t.Errorf("local transfer %v should be cheaper than remote %v", local, remote)
	}
	// Remote: 2×(overhead + ser) + latency.
	p := cl.Params
	ser := p.MsgOverhead + sim.BytesTime(1<<20, p.NICBandwidth)
	want := 2*ser + p.NICLatency
	if remote != want {
		t.Errorf("remote transfer = %v, want %v", remote, want)
	}
}

func TestTransferContendsOnSenderNIC(t *testing.T) {
	env := sim.NewEnv()
	cl, err := New(env, AC(12)) // 3 nodes
	if err != nil {
		t.Fatal(err)
	}
	var done []sim.Time
	// Two concurrent sends from node 0 to different destinations must
	// serialise on node 0's NIC-out.
	for i := 1; i <= 2; i++ {
		dst := cl.Nodes[i]
		env.Go("s", func(p *sim.Proc) {
			cl.Transfer(p, cl.Nodes[0], dst, 1<<20)
			done = append(done, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	p := cl.Params
	ser := p.MsgOverhead + sim.BytesTime(1<<20, p.NICBandwidth)
	first := 2*ser + p.NICLatency
	second := ser + ser + ser + p.NICLatency // queued one extra ser on out
	if done[0] != first {
		t.Errorf("first transfer done at %v, want %v", done[0], first)
	}
	if done[1] != second {
		t.Errorf("second transfer done at %v, want %v", done[1], second)
	}
}

func TestCPUWorkPool(t *testing.T) {
	env := sim.NewEnv()
	cl, err := New(env, AC(1))
	if err != nil {
		t.Fatal(err)
	}
	// 8 unit tasks on 4 cores at rate 1: two waves of 1s each.
	for i := 0; i < 8; i++ {
		env.Go("w", func(p *sim.Proc) {
			cl.Nodes[0].CPUWork(p, 1, 1)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 2*sim.Second {
		t.Errorf("8 tasks on 4 cores took %v, want 2s", env.Now())
	}
}

func TestGPUsSharePCIePerNode(t *testing.T) {
	env := sim.NewEnv()
	cl, err := New(env, AC(8))
	if err != nil {
		t.Fatal(err)
	}
	n0 := cl.Nodes[0]
	if len(n0.GPUs) != 4 {
		t.Fatalf("node 0 has %d GPUs", len(n0.GPUs))
	}
	// All four GPUs must reference the same PCIe resource.
	for _, d := range n0.GPUs {
		if d.PCIe.Link != n0.PCIe {
			t.Error("GPU not wired to its node's PCIe link")
		}
	}
	// And GPUs on different nodes must not share.
	if cl.Device(0).PCIe.Link == cl.Device(4).PCIe.Link {
		t.Error("GPUs on different nodes share a PCIe link")
	}
}

func TestResourceNamesAreDistinct(t *testing.T) {
	env := sim.NewEnv()
	cl, err := New(env, AC(8))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, n := range cl.Nodes {
		for _, r := range []*sim.Resource{n.PCIe, n.Disk, n.NICOut, n.NICIn, n.CPU} {
			if seen[r.Name()] {
				t.Errorf("duplicate resource name %q", r.Name())
			}
			seen[r.Name()] = true
			if !strings.Contains(r.Name(), "node") {
				t.Errorf("resource name %q should identify its node", r.Name())
			}
		}
	}
}

func TestSpecInstanceIndependence(t *testing.T) {
	spec := AC(4)
	a, err := spec.Instance()
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if a.Env == b.Env {
		t.Fatal("clone shares the simulation environment")
	}
	if a.Params != b.Params {
		t.Error("clone spec differs from source spec")
	}
	// Advancing one instance's clock must not move the other's.
	a.Env.Go("tick", func(p *sim.Proc) { p.Sleep(sim.Second) })
	if err := a.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Env.Now() != 0 {
		t.Errorf("clone clock moved to %v", b.Env.Now())
	}
	// No shared resources or devices.
	for i := 0; i < a.TotalGPUs(); i++ {
		if a.Device(i) == b.Device(i) {
			t.Errorf("instances share device %d", i)
		}
	}
	for i := range a.Nodes {
		if a.Nodes[i].PCIe == b.Nodes[i].PCIe || a.Nodes[i].CPU == b.Nodes[i].CPU {
			t.Errorf("instances share node %d resources", i)
		}
	}
}

func TestSetDeviceWorkers(t *testing.T) {
	cl, err := AC(4).Instance()
	if err != nil {
		t.Fatal(err)
	}
	cl.SetDeviceWorkers(2)
	for i := 0; i < cl.TotalGPUs(); i++ {
		if cl.Device(i).Workers != 2 {
			t.Errorf("device %d workers = %d", i, cl.Device(i).Workers)
		}
	}
	cl.SetDeviceWorkers(0)
	if cl.Device(0).Workers != 0 {
		t.Error("workers cap not cleared")
	}
}

func TestInstanceValidates(t *testing.T) {
	bad := AC(4)
	bad.Nodes = 0
	if _, err := bad.Instance(); err == nil {
		t.Error("invalid spec instantiated")
	}
}
