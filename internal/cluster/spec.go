package cluster

import "gvmr/internal/sim"

// Spec is the immutable hardware description of a cluster. It is the
// vocabulary type of the spec/instance split: a Spec carries only value
// data (node counts, bandwidths, rates — no simulation state), so it can
// be instantiated any number of times, each instance binding a fresh
// simulation environment with its clock at zero. Params predates the
// split and remains the underlying struct; Spec is the name to use when
// a value describes hardware rather than a live machine.
type Spec = Params

// Instance builds a live cluster from the spec on a fresh simulation
// environment. Every call returns a fully independent machine: separate
// virtual clock, separate resources, separate devices — the unit the
// parallel frame scheduler (internal/schedule) hands to each concurrent
// render job.
func (p Params) Instance() (*Cluster, error) {
	return New(sim.NewEnv(), p)
}

// Clone instantiates a fresh cluster of this cluster's spec, with its
// virtual clock at zero and no accumulated device statistics. The
// receiver is not touched.
func (c *Cluster) Clone() (*Cluster, error) {
	return c.Params.Instance()
}

// SetDeviceWorkers caps the host-side parallelism every device in the
// cluster uses to execute kernel blocks (zero restores the GOMAXPROCS
// default). The cap changes only wall-clock behavior: per-block results
// are summed in block order, so virtual times and images are identical
// at any setting. The frame scheduler uses it to split host cores
// between concurrent frames and the blocks within each frame's kernels.
func (c *Cluster) SetDeviceWorkers(n int) {
	for _, d := range c.gpus {
		d.Workers = n
	}
}
