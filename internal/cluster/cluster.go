// Package cluster simulates the paper's testbed: the NCSA Accelerator
// Cluster — nodes with a quad-core CPU, a disk, one QDR InfiniBand NIC and
// four Tesla-class GPUs sharing a PCIe complex — plus the network
// connecting them. All constants are calibrated against the costs the
// paper reports; see DESIGN.md §6.
package cluster

import (
	"fmt"

	"gvmr/internal/gpu"
	"gvmr/internal/sim"
)

// Params describes the modeled hardware.
type Params struct {
	Nodes       int
	GPUsPerNode int
	GPU         gpu.Spec

	// Host↔device link, shared by all GPUs of a node.
	PCIeBandwidth float64
	PCIeLatency   sim.Time

	// Per-node disk (bricked volumes live here).
	DiskBandwidth float64
	DiskLatency   sim.Time

	// Network. MsgOverhead is the per-message software cost (MPI-style
	// stack, staging, matching) charged as NIC occupancy on both sides —
	// it is what makes many small fragment messages expensive and drives
	// the paper's communication blow-up beyond 8 GPUs.
	NICBandwidth float64
	NICLatency   sim.Time
	MsgOverhead  sim.Time
	// MemBandwidth models intra-node hand-off (no NIC involved).
	MemBandwidth float64

	// Host CPU.
	CPUCores         int
	CompositeRate    float64 // fragment blends/s per core (reduce phase)
	SortRate         float64 // keys/s per core (counting sort)
	PartitionRate    float64 // fragments/s per core (partition phase)
	JobFixedOverhead sim.Time
}

// AC returns the calibrated Accelerator Cluster model sized for the given
// total GPU count (4 GPUs per node, like the paper's S1070 nodes).
func AC(totalGPUs int) Params {
	if totalGPUs < 1 {
		totalGPUs = 1
	}
	gpusPerNode := 4
	if totalGPUs < gpusPerNode {
		gpusPerNode = totalGPUs
	}
	nodes := (totalGPUs + gpusPerNode - 1) / gpusPerNode
	return Params{
		Nodes:       nodes,
		GPUsPerNode: gpusPerNode,
		GPU:         gpu.TeslaC1060(),

		PCIeBandwidth: 6.2e9,
		PCIeLatency:   15 * sim.Microsecond,

		DiskBandwidth: 52 << 20, // 64³ brick (1 MiB + ghost) ≈ 20 ms with latency
		DiskLatency:   sim.Millisecond,

		// The paper's effective fragment-exchange throughput is far below
		// QDR line rate (its §6.3 reports ~0.5 s to move ~10 MB of
		// fragments at 8 GPUs): a 2010 sockets/staging messaging layer.
		// These constants model that layer, not the raw fabric.
		NICBandwidth: 28e6,
		NICLatency:   20 * sim.Microsecond,
		MsgOverhead:  1500 * sim.Microsecond,
		MemBandwidth: 4e9,

		CPUCores:         4,
		CompositeRate:    45e6,
		SortRate:         120e6,
		PartitionRate:    150e6,
		JobFixedOverhead: 250 * sim.Millisecond,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.Nodes < 1:
		return fmt.Errorf("cluster: need at least 1 node")
	case p.GPUsPerNode < 0:
		return fmt.Errorf("cluster: negative GPUs per node")
	case p.CPUCores < 1:
		return fmt.Errorf("cluster: need at least 1 CPU core per node")
	}
	return nil
}

// Node is one simulated machine.
type Node struct {
	ID   int
	PCIe *sim.Resource
	Disk *sim.Resource
	// NICOut/NICIn serialise sends and receives separately (full duplex).
	NICOut *sim.Resource
	NICIn  *sim.Resource
	CPU    *sim.Resource
	GPUs   []*gpu.Device

	params *Params
}

// Cluster is the full machine.
type Cluster struct {
	Env    *sim.Env
	Params Params
	Nodes  []*Node
	gpus   []*gpu.Device // flat, by global ID
}

// New builds a cluster in the environment.
func New(env *sim.Env, params Params) (*Cluster, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{Env: env, Params: params}
	gpuID := 0
	for i := 0; i < params.Nodes; i++ {
		n := &Node{
			ID:     i,
			PCIe:   sim.NewResource(env, fmt.Sprintf("node%d.pcie", i), 1),
			Disk:   sim.NewResource(env, fmt.Sprintf("node%d.disk", i), 1),
			NICOut: sim.NewResource(env, fmt.Sprintf("node%d.nic.out", i), 1),
			NICIn:  sim.NewResource(env, fmt.Sprintf("node%d.nic.in", i), 1),
			CPU:    sim.NewResource(env, fmt.Sprintf("node%d.cpu", i), params.CPUCores),
			params: &c.Params,
		}
		link := gpu.PCIe{
			Link:      n.PCIe,
			Bandwidth: params.PCIeBandwidth,
			Latency:   params.PCIeLatency,
		}
		for g := 0; g < params.GPUsPerNode; g++ {
			dev := gpu.NewDevice(env, gpuID, i, params.GPU, link)
			n.GPUs = append(n.GPUs, dev)
			c.gpus = append(c.gpus, dev)
			gpuID++
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c, nil
}

// TotalGPUs returns the number of devices in the cluster.
func (c *Cluster) TotalGPUs() int { return len(c.gpus) }

// Device returns the device with the given global index.
func (c *Cluster) Device(i int) *gpu.Device { return c.gpus[i] }

// NodeOf returns the node hosting global GPU index i.
func (c *Cluster) NodeOf(i int) *Node { return c.Nodes[c.gpus[i].NodeID] }

// ReadDisk charges a disk read of n bytes (seek latency + serialisation)
// against the node's disk arm.
func (n *Node) ReadDisk(p *sim.Proc, bytes int64) sim.Time {
	t := n.params.DiskLatency + sim.BytesTime(bytes, n.params.DiskBandwidth)
	n.Disk.Use(p, t)
	return t
}

// CPUWork charges `work` abstract units at `ratePerCore` on one of the
// node's cores (FIFO across the core pool) and returns the service time.
func (n *Node) CPUWork(p *sim.Proc, work, ratePerCore float64) sim.Time {
	t := sim.WorkTime(work, ratePerCore)
	n.CPU.Use(p, t)
	return t
}

// Transfer moves n bytes from node a to node b, blocking p for the whole
// exchange: per-message overhead and serialisation occupy the sender's
// NIC-out, propagation latency passes, then the same occupies the
// receiver's NIC-in (which is where direct-send incast contention shows
// up). Intra-node transfers cost only a memory hand-off.
func (c *Cluster) Transfer(p *sim.Proc, a, b *Node, bytes int64) sim.Time {
	start := p.Now()
	if a.ID == b.ID {
		p.Sleep(sim.BytesTime(bytes, c.Params.MemBandwidth))
		return p.Now() - start
	}
	ser := c.Params.MsgOverhead + sim.BytesTime(bytes, c.Params.NICBandwidth)
	a.NICOut.Use(p, ser)
	p.Sleep(c.Params.NICLatency)
	b.NICIn.Use(p, ser)
	return p.Now() - start
}
