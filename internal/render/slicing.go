package render

import (
	"math"

	"gvmr/internal/camera"
	"gvmr/internal/composite"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
)

// CastPixelSlicing adapts CastRaySlicing to the classic single-fragment
// contract, mirroring CastPixel.
func CastPixelSlicing(cam *camera.Camera, sp volume.Space, bd *volume.BrickData, prm Params, px, py int) (composite.Fragment, SampleStats) {
	return SampleOne(CastRaySlicing, cam, sp, bd, prm, px, py)
}

// CastRaySlicing is the object-aligned slicing sampler: the §6.1
// pluggability alternative ("if the user wished to use splatting or
// slicing instead of ray casting, the map phase is all that would need to
// be changed"). Instead of a fixed arc-length step along the ray, samples
// are taken where the ray crosses the volume's voxel slab planes along
// the axis most aligned with the view direction — exactly what compositing
// object-aligned textured slices computes.
func CastRaySlicing(cam *camera.Camera, sp volume.Space, bd *volume.BrickData, prm Params, px, py int, emit func(composite.Fragment)) SampleStats {
	var st SampleStats
	key := int32(py*cam.Width + px)
	ray := cam.Ray(px, py)
	t0, t1, ok := bd.Brick.Bounds.Intersect(ray)
	if !ok || t1 <= 0 {
		return st
	}
	if t0 < 0 {
		t0 = 0
	}
	// Dominant axis of the view direction chooses the slice stack.
	dir := [3]float32{ray.Dir.X, ray.Dir.Y, ray.Dir.Z}
	axis := 0
	for a := 1; a < 3; a++ {
		if abs32(dir[a]) > abs32(dir[axis]) {
			axis = a
		}
	}
	if dir[axis] == 0 {
		return st
	}
	org := [3]float32{ray.Origin.X, ray.Origin.Y, ray.Origin.Z}

	// Slab planes sit at voxel centers along the axis, spaced one slice
	// (StepVoxels voxels) apart in world units.
	sliceStep := sp.VoxelSize() * prm.StepVoxels
	// World coordinate of plane k along the axis: planes fill the volume
	// bounds; plane positions w_k = axisMin + (k+0.5)·sliceStep relative
	// to the whole volume so neighbouring bricks share the same stack.
	bounds := sp.Bounds()
	axisMin := [3]float32{bounds.Min.X, bounds.Min.Y, bounds.Min.Z}[axis]

	// Ray parameter of plane k: t = (w_k - org)/dir.
	tOfPlane := func(k int64) float32 {
		w := axisMin + (float32(k)+0.5)*sliceStep
		return (w - org[axis]) / dir[axis]
	}
	// Find the first plane with t >= t0 (direction-dependent ordering).
	invDt := dir[axis] / sliceStep // planes per unit t (signed)
	kf := (t0*dir[axis] + org[axis] - axisMin) / sliceStep
	k := int64(math.Ceil(float64(kf) - 0.5))
	dk := int64(1)
	if invDt < 0 {
		k = int64(math.Floor(float64(kf) - 0.5))
		dk = -1
	}

	prm = prm.Prepare()
	tf := prm.lookupTF()
	acc := vec.V4{}
	entry := float32(-1) // no contributing sample yet; t ≥ 0 on this path
	maxPlanes := int64(4 * (sp.Dims.X + sp.Dims.Y + sp.Dims.Z))
	for iter := int64(0); ; iter++ {
		if iter > maxPlanes {
			break // safety net against degenerate geometry
		}
		t := tOfPlane(k)
		if t < t0 {
			k += dk
			continue
		}
		if t >= t1 {
			break
		}
		pos := sp.WorldToVoxel(ray.At(t))
		s := bd.Sample(pos.X, pos.Y, pos.Z)
		st.Samples++
		c := tf.Lookup(s)
		if c.W > 0 {
			if entry < 0 {
				entry = t
			}
			a := c.W
			acc = composite.Under(acc, vec.V4{X: c.X * a, Y: c.Y * a, Z: c.Z * a, W: a})
			if acc.W >= prm.TerminationAlpha {
				break
			}
		}
		k += dk
	}
	if acc.W == 0 {
		return st
	}
	if entry < 0 {
		entry = t0
	}
	emit(composite.Fragment{Key: key, R: acc.X, G: acc.Y, B: acc.Z, A: acc.W, Depth: entry})
	return st
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
