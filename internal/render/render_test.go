package render

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gvmr/internal/camera"
	"gvmr/internal/composite"
	"gvmr/internal/gpu"
	"gvmr/internal/transfer"
	"gvmr/internal/vec"
	"gvmr/internal/volume"
	"gvmr/internal/volume/dataset"
)

// testScene builds a small skull scene with a camera fit to it.
func testScene(t *testing.T, n int, imgSize int) (volume.Source, *camera.Camera, Params) {
	t.Helper()
	src, err := dataset.New(dataset.Skull, volume.Cube(n))
	if err != nil {
		t.Fatal(err)
	}
	sp := volume.NewSpace(src.Dims())
	cam, err := camera.Fit(sp.Bounds(), imgSize, imgSize)
	if err != nil {
		t.Fatal(err)
	}
	return src, cam, DefaultParams(transfer.SkullPreset())
}

func wholeBrick(t *testing.T, src volume.Source) (*volume.BrickData, volume.Space) {
	t.Helper()
	g, err := volume.MakeGrid(src.Dims(), [3]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	bd, err := volume.FillBrick(src, g.Bricks[0])
	if err != nil {
		t.Fatal(err)
	}
	return bd, g.Space
}

func TestParamsValidate(t *testing.T) {
	tf := transfer.Gray()
	good := DefaultParams(tf)
	if err := good.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := good
	bad.TF = nil
	if bad.Validate() == nil {
		t.Error("nil TF accepted")
	}
	bad = good
	bad.StepVoxels = 0
	if bad.Validate() == nil {
		t.Error("zero step accepted")
	}
	bad = good
	bad.TerminationAlpha = 1.5
	if bad.Validate() == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestMissingRayEmitsPlaceholder(t *testing.T) {
	src, cam, prm := testScene(t, 16, 64)
	bd, sp := wholeBrick(t, src)
	// Corner pixel: ray misses the centered volume under the Fit camera.
	frag, samples := CastPixel(cam, sp, bd, prm, 0, 0)
	if !frag.IsPlaceholder() {
		t.Error("corner ray should emit placeholder")
	}
	if samples != (SampleStats{}) {
		t.Errorf("missing ray did work: %+v", samples)
	}
	if frag.Key != 0 {
		t.Errorf("placeholder key = %d, want pixel index 0", frag.Key)
	}
}

func TestCenterRayHits(t *testing.T) {
	src, cam, prm := testScene(t, 32, 64)
	bd, sp := wholeBrick(t, src)
	frag, samples := CastPixel(cam, sp, bd, prm, 32, 32)
	if frag.IsPlaceholder() {
		t.Fatal("center ray should hit the skull")
	}
	if samples.Samples == 0 {
		t.Error("hit ray took no samples")
	}
	if frag.A <= 0 || frag.A > 1 {
		t.Errorf("alpha = %v", frag.A)
	}
	if frag.Depth <= 0 || math.IsInf(float64(frag.Depth), 0) {
		t.Errorf("depth = %v", frag.Depth)
	}
	// Premultiplied invariants: channel <= alpha (colors in [0,1]).
	if frag.R > frag.A+1e-5 || frag.G > frag.A+1e-5 || frag.B > frag.A+1e-5 {
		t.Errorf("premultiplied channels exceed alpha: %+v", frag)
	}
}

func TestEarlyTerminationReducesSamples(t *testing.T) {
	src, cam, _ := testScene(t, 32, 64)
	bd, sp := wholeBrick(t, src)
	// Opaque transfer function: terminate almost immediately.
	opaque, err := transfer.FromPoints([]transfer.Point{
		{S: 0, C: vec.New4(1, 1, 1, 1)},
		{S: 1, C: vec.New4(1, 1, 1, 1)},
	}, 16)
	if err != nil {
		t.Fatal(err)
	}
	translucent := transfer.Gray()
	_, stOpaque := CastPixel(cam, sp, bd, DefaultParams(opaque), 32, 32)
	_, stTrans := CastPixel(cam, sp, bd, DefaultParams(translucent), 32, 32)
	sOpaque, sTrans := stOpaque.Samples, stTrans.Samples
	if sOpaque >= sTrans {
		t.Errorf("opaque TF took %d samples, translucent %d: early termination broken",
			sOpaque, sTrans)
	}
	if sOpaque > 3 {
		t.Errorf("opaque TF should terminate within ~1 sample, took %d", sOpaque)
	}
}

// The fundamental distributed-rendering invariant: per-brick fragments,
// depth-sorted and composited, equal the monolithic reference image.
func TestBrickCountInvariance(t *testing.T) {
	src, cam, prm := testScene(t, 32, 48)
	ref, err := Reference(cam, src, prm, vec.V4{})
	if err != nil {
		t.Fatal(err)
	}
	for _, counts := range [][3]int{{2, 1, 1}, {2, 2, 2}, {3, 2, 1}, {1, 1, 4}} {
		g, err := volume.MakeGrid(src.Dims(), counts)
		if err != nil {
			t.Fatal(err)
		}
		// Gather fragments per pixel across all bricks.
		perPixel := make(map[int32][]composite.Fragment)
		for _, b := range g.Bricks {
			bd, err := volume.FillBrick(src, b)
			if err != nil {
				t.Fatal(err)
			}
			fp, ok := cam.ProjectAABB(b.Bounds)
			if !ok {
				continue
			}
			for py := fp.Y0; py <= fp.Y1; py++ {
				for px := fp.X0; px <= fp.X1; px++ {
					frag, _ := CastPixel(cam, g.Space, bd, prm, px, py)
					if !frag.IsPlaceholder() {
						perPixel[frag.Key] = append(perPixel[frag.Key], frag)
					}
				}
			}
		}
		var worst float64
		for py := 0; py < cam.Height; py++ {
			for px := 0; px < cam.Width; px++ {
				key := int32(py*cam.Width + px)
				got := composite.CompositePixel(perPixel[key], vec.V4{})
				want := ref[key]
				for _, d := range []float32{got.X - want.X, got.Y - want.Y, got.Z - want.Z} {
					if v := math.Abs(float64(d)); v > worst {
						worst = v
					}
				}
			}
		}
		// Early termination cuts rays at slightly different points when a
		// brick boundary intervenes, so allow a small tolerance.
		if worst > 0.03 {
			t.Errorf("bricking %v: worst channel error %.4f vs reference", counts, worst)
		}
	}
}

// Property: with early termination disabled, splitting a ray at a brick
// boundary takes exactly the same lattice samples as the monolithic march.
func TestGlobalLatticeSampleCountProperty(t *testing.T) {
	src, err := dataset.New(dataset.Supernova, volume.Cube(24))
	if err != nil {
		t.Fatal(err)
	}
	sp := volume.NewSpace(src.Dims())
	cam, err := camera.Fit(sp.Bounds(), 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	prm := DefaultParams(transfer.SupernovaPreset())
	prm.TerminationAlpha = 1.0 // never terminate early

	whole, spw := wholeBrick(t, src)
	g, err := volume.MakeGrid(src.Dims(), [3]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	bricks := make([]*volume.BrickData, 0, 8)
	for _, b := range g.Bricks {
		bd, err := volume.FillBrick(src, b)
		if err != nil {
			t.Fatal(err)
		}
		bricks = append(bricks, bd)
	}
	r := rand.New(rand.NewSource(101))
	f := func() bool {
		px, py := r.Intn(40), r.Intn(40)
		_, st := CastPixel(cam, spw, whole, prm, px, py)
		// Samples + Skipped is the dense-lattice count, which is what the
		// global-lattice property governs (per-brick macrocell grids may
		// skip different spans than the monolithic grid does).
		mono := st.Samples + st.Skipped
		var split int64
		for _, bd := range bricks {
			_, s := CastPixel(cam, g.Space, bd, prm, px, py)
			split += s.Samples + s.Skipped
		}
		// Identical lattices; boundary samples may fall on either side of
		// a brick seam within float error.
		d := mono - split
		if d < 0 {
			d = -d
		}
		return d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKernelCoversFootprintWithPadding(t *testing.T) {
	src, cam, prm := testScene(t, 32, 64)
	bd, sp := wholeBrick(t, src)
	tex := &gpu.Texture3D{Data: bd}
	k := NewKernel(cam, sp, tex, prm)
	if k == nil {
		t.Fatal("on-screen brick produced nil kernel")
	}
	grid := k.Grid()
	if grid.X*BlockDim < k.FP.Width() || grid.Y*BlockDim < k.FP.Height() {
		t.Errorf("grid %v too small for footprint %+v", grid, k.FP)
	}
	if (grid.X-1)*BlockDim >= k.FP.Width() {
		t.Errorf("grid %v overshoots footprint %+v by more than one block", grid, k.FP)
	}
	// Execute all blocks serially and check the offset/count layout: every
	// thread has a (possibly empty) fragment list, every fragment's key is
	// a footprint pixel, and the stats agree with the layout.
	var stats gpu.Stats
	for by := 0; by < grid.Y; by++ {
		for bx := 0; bx < grid.X; bx++ {
			stats.Add(k.RunBlock(bx, by))
		}
	}
	if stats.Threads != int64(k.Threads()) {
		t.Errorf("threads %d != slots %d", stats.Threads, k.Threads())
	}
	// With the convex ray caster each thread emits 0 or 1 fragments, and
	// an empty list still writes one placeholder-sized record, so the
	// emission charge stays one per thread (§3.1.1 cost parity).
	if stats.Emitted != stats.Threads {
		t.Errorf("emitted %d, want one per thread (%d)", stats.Emitted, stats.Threads)
	}
	var frags, hitThreads int64
	lastSlot := -1
	k.ForEachThread(func(slot int, list []composite.Fragment) {
		if slot != lastSlot+1 {
			t.Fatalf("ForEachThread slot %d after %d: not global row-major order", slot, lastSlot)
		}
		lastSlot = slot
		if int32(len(list)) != k.Counts[slot] {
			t.Fatalf("slot %d: list length %d != Counts %d", slot, len(list), k.Counts[slot])
		}
		if len(list) > 0 {
			hitThreads++
		}
		for _, f := range list {
			frags++
			px := int(f.Key) % cam.Width
			py := int(f.Key) / cam.Width
			if px < k.FP.X0 || px > k.FP.X1 || py < k.FP.Y0 || py > k.FP.Y1 {
				t.Fatalf("fragment key (%d,%d) outside footprint %+v", px, py, k.FP)
			}
			if f.IsPlaceholder() {
				t.Fatal("emitted fragment carries the placeholder sentinel")
			}
		}
	})
	if lastSlot != k.Threads()-1 {
		t.Errorf("ForEachThread visited %d slots, want %d", lastSlot+1, k.Threads())
	}
	if stats.RaysHit == 0 {
		t.Error("no rays hit the volume")
	}
	if stats.RaysHit != hitThreads {
		t.Errorf("RaysHit %d != threads with fragments %d", stats.RaysHit, hitThreads)
	}
	if hitThreads > int64(k.FP.Pixels()) {
		t.Errorf("%d hit threads exceed footprint pixels %d", hitThreads, k.FP.Pixels())
	}
	if want := int64(k.Threads())*4 + frags*composite.FragmentBytes; k.OutBytes() != want {
		t.Errorf("OutBytes %d, want %d (counts + packed fragments)", k.OutBytes(), want)
	}
}

func TestKernelOffScreenIsNil(t *testing.T) {
	src, _, prm := testScene(t, 16, 64)
	bd, sp := wholeBrick(t, src)
	// Camera looking away from the volume.
	cam, err := camera.New(vec.New3(0, 0, 5), vec.New3(0, 0, 10), vec.New3(0, 1, 0),
		math.Pi/4, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if k := NewKernel(cam, sp, &gpu.Texture3D{Data: bd}, prm); k != nil {
		t.Error("off-screen brick produced a kernel")
	}
}

func TestOpacityCorrectionStability(t *testing.T) {
	// Halving the step size must not wildly change the image: opacity
	// correction compensates. Compare mean luminance.
	src, cam, prm := testScene(t, 24, 32)
	fine := prm
	fine.StepVoxels = 0.5
	imgA, err := Reference(cam, src, prm, vec.V4{})
	if err != nil {
		t.Fatal(err)
	}
	imgB, err := Reference(cam, src, fine, vec.V4{})
	if err != nil {
		t.Fatal(err)
	}
	var lumA, lumB float64
	for i := range imgA {
		lumA += float64(imgA[i].X + imgA[i].Y + imgA[i].Z)
		lumB += float64(imgB[i].X + imgB[i].Y + imgB[i].Z)
	}
	ratio := lumB / lumA
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("half-step changed mean luminance by %.2fx; opacity correction broken", ratio)
	}
}

func TestReferenceDeterministic(t *testing.T) {
	src, cam, prm := testScene(t, 16, 24)
	a, err := Reference(cam, src, prm, vec.V4{X: 0.1, Y: 0.1, Z: 0.1, W: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reference(cam, src, prm, vec.V4{X: 0.1, Y: 0.1, Z: 0.1, W: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pixel %d differs between identical renders", i)
		}
	}
}

func TestShadingChangesImageAndCost(t *testing.T) {
	src, cam, prm := testScene(t, 32, 48)
	bd, sp := wholeBrick(t, src)
	_, plain := CastPixel(cam, sp, bd, prm, 24, 24)
	shaded := prm
	shaded.Shading = true
	fragS, sCount := CastPixel(cam, sp, bd, shaded, 24, 24)
	if sCount.Samples <= plain.Samples {
		t.Errorf("shading should cost extra fetches: %+v vs %+v", sCount, plain)
	}
	fragP, _ := CastPixel(cam, sp, bd, prm, 24, 24)
	if fragS.R == fragP.R && fragS.G == fragP.G && fragS.B == fragP.B {
		t.Error("shading changed nothing")
	}
	// Shaded channels stay premultiplied-valid.
	if fragS.R > fragS.A+1e-5 || fragS.G > fragS.A+1e-5 || fragS.B > fragS.A+1e-5 {
		t.Errorf("shaded fragment breaks premultiplication: %+v", fragS)
	}
	// Alpha is untouched by shading.
	if fragS.A != fragP.A {
		t.Errorf("shading changed opacity: %v vs %v", fragS.A, fragP.A)
	}
}

func TestShadeAtHomogeneousRegion(t *testing.T) {
	v := volume.New(volume.Dims{X: 8, Y: 8, Z: 8})
	for i := range v.Data {
		v.Data[i] = 0.5 // constant field: zero gradient
	}
	g, err := volume.MakeGrid(v.Dims, [3]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	bd, err := volume.FillBrick(volume.NewVolumeSource(v, "t"), g.Bricks[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := shadeAt(bd, vec.New3(4, 4, 4), vec.New3(0, 1, 0)); got != 1 {
		t.Errorf("homogeneous shade = %v, want 1 (no surface)", got)
	}
}

func TestPrepareDetectsMutation(t *testing.T) {
	// Mutating a prepared Params (copy) must re-derive the hoisted
	// constants instead of silently reusing stale ones.
	src, cam, prm := testScene(t, 16, 24)
	bd, sp := wholeBrick(t, src)
	coarse := prm.Prepare()
	fine := coarse
	fine.StepVoxels = 0.25
	fragMutated, sMutated := CastPixel(cam, sp, bd, fine, 12, 12)
	fresh := prm
	fresh.StepVoxels = 0.25
	fragFresh, sFresh := CastPixel(cam, sp, bd, fresh, 12, 12)
	if sMutated != sFresh {
		t.Fatalf("mutated-after-Prepare did %+v work, fresh params %+v", sMutated, sFresh)
	}
	if fragMutated != fragFresh {
		t.Fatalf("mutated-after-Prepare fragment %+v != fresh %+v", fragMutated, fragFresh)
	}
	// And the finer step must actually differ from the coarse one.
	fragCoarse, sCoarse := CastPixel(cam, sp, bd, coarse, 12, 12)
	if sCoarse.Samples >= sFresh.Samples {
		t.Fatalf("fine step took %d samples, coarse %d; mutation ignored?", sFresh.Samples, sCoarse.Samples)
	}
	_ = fragCoarse
}
