package render

import (
	"gvmr/internal/camera"
	"gvmr/internal/composite"
	"gvmr/internal/gpu"
	"gvmr/internal/volume"
)

// Kernel is the ray-casting map kernel for one brick, implementing
// gpu.Kernel. The grid covers the brick's screen footprint padded to 16×16
// blocks (§3.2: "the grid is made to match the size of the sub-image
// (with a potentially small amount of padding) onto which the current
// chunk projects"). Each thread emits a variable-length fragment list —
// zero fragments for misses and padding threads — stored in a per-pixel
// offset/count layout instead of the paper's fixed one-slot-per-thread
// array, which is what lets a ray contribute one fragment per partition
// re-entry span under non-convex partitions (DESIGN.md §12).
type Kernel struct {
	Cam   *camera.Camera
	Space volume.Space
	Tex   *gpu.Texture3D
	Prm   Params
	FP    camera.Footprint
	// Sampler is the per-pixel sampling routine; nil means ray casting
	// (CastRay). Swapping in CastRaySlicing is the §6.1 map-phase
	// pluggability demonstration.
	Sampler SampleFn
	// Counts is the per-thread fragment count, indexed by global thread
	// slot (gy*rowThreads + gx): the "count" half of the emission layout.
	Counts []int32

	// Per-block emission buffers and intra-block thread offsets; together
	// with Counts they form the offset/count layout. Blocks write only
	// their own entry, which keeps RunBlock's disjoint-writes discipline.
	blockFrags [][]composite.Fragment
	blockOffs  [][]int32

	grid gpu.Dim2
}

// SampleFn is a pluggable per-pixel volume sampler: it marches pixel
// (px,py) through the brick and emits zero or more fragments. Convex
// bricks yield at most one fragment per ray; emit exists so a sampler
// can cut a ray at partition re-entry boundaries and emit one fragment
// per traversal span. A ray that contributes nothing emits nothing (the
// old per-thread placeholder is now an empty list).
type SampleFn func(cam *camera.Camera, sp volume.Space, bd *volume.BrickData, prm Params, px, py int, emit func(composite.Fragment)) SampleStats

// SampleOne adapts an emit-based sampler to the classic single-fragment
// contract: the fragment if the sampler emitted one, else a placeholder
// keyed by the pixel index. It is the bridge for callers (reference
// renderer, tests) that consume one fragment per (brick, pixel).
func SampleOne(fn SampleFn, cam *camera.Camera, sp volume.Space, bd *volume.BrickData, prm Params, px, py int) (composite.Fragment, SampleStats) {
	frag := composite.Placeholder(int32(py*cam.Width + px))
	st := fn(cam, sp, bd, prm, px, py, func(f composite.Fragment) { frag = f })
	return frag, st
}

// NewKernel plans a kernel for one brick; it returns nil (no work) when
// the brick is off screen.
func NewKernel(cam *camera.Camera, sp volume.Space, tex *gpu.Texture3D, prm Params) *Kernel {
	fp, ok := cam.ProjectAABB(tex.Data.Brick.Bounds)
	if !ok {
		return nil
	}
	grid := gpu.Dim2{
		X: (fp.Width() + BlockDim - 1) / BlockDim,
		Y: (fp.Height() + BlockDim - 1) / BlockDim,
	}
	return &Kernel{
		Cam:        cam,
		Space:      sp,
		Tex:        tex,
		Prm:        prm.PrepareBrick(tex.Data),
		FP:         fp,
		Counts:     make([]int32, grid.Count()*BlockDim*BlockDim),
		blockFrags: make([][]composite.Fragment, grid.Count()),
		blockOffs:  make([][]int32, grid.Count()),
		grid:       grid,
	}
}

// Name implements gpu.Kernel.
func (k *Kernel) Name() string { return "raycast" }

// Grid implements gpu.Kernel.
func (k *Kernel) Grid() gpu.Dim2 { return k.grid }

// Block implements gpu.Kernel.
func (k *Kernel) Block() gpu.Dim2 { return gpu.Dim2{X: BlockDim, Y: BlockDim} }

// Threads returns the total thread count (one per padded-footprint pixel).
func (k *Kernel) Threads() int { return len(k.Counts) }

// OutBytes returns the modeled size of the emission buffer: the per-thread
// count table plus the packed fragments. Call after the kernel ran.
func (k *Kernel) OutBytes() int64 {
	var frags int64
	for _, b := range k.blockFrags {
		frags += int64(len(b))
	}
	return int64(len(k.Counts))*4 + frags*composite.FragmentBytes
}

// ForEachThread visits every thread's fragment list in global slot order
// (row-major over the padded footprint — the same order the fixed
// per-thread array was read in, so per-brick emission order and with it
// the wire's canonical stripe order are unchanged). frags is empty for
// padding threads and rays that contributed nothing; it aliases the
// kernel's buffers and must not be retained across calls that mutate it.
func (k *Kernel) ForEachThread(fn func(slot int, frags []composite.Fragment)) {
	rowThreads := k.grid.X * BlockDim
	for slot := range k.Counts {
		gx := slot % rowThreads
		gy := slot / rowThreads
		b := (gy/BlockDim)*k.grid.X + gx/BlockDim
		ti := (gy%BlockDim)*BlockDim + gx%BlockDim
		offs := k.blockOffs[b]
		if offs == nil {
			fn(slot, nil) // block never ran
			continue
		}
		fn(slot, k.blockFrags[b][offs[ti]:offs[ti+1]])
	}
}

// RunBlock implements gpu.Kernel: 256 threads, one pixel each.
func (k *Kernel) RunBlock(bx, by int) gpu.Stats {
	var st gpu.Stats
	sample := k.Sampler
	if sample == nil {
		sample = CastRay
	}
	rowThreads := k.grid.X * BlockDim
	bi := by*k.grid.X + bx
	frags := make([]composite.Fragment, 0, BlockDim*BlockDim)
	offs := make([]int32, BlockDim*BlockDim+1)
	for ty := 0; ty < BlockDim; ty++ {
		for tx := 0; tx < BlockDim; tx++ {
			st.Threads++
			ti := ty*BlockDim + tx
			offs[ti] = int32(len(frags))
			gx := bx*BlockDim + tx
			gy := by*BlockDim + ty
			slot := gy*rowThreads + gx
			px := k.FP.X0 + gx
			py := k.FP.Y0 + gy
			if px > k.FP.X1 || py > k.FP.Y1 {
				// Padding thread: emits nothing, but still writes one
				// placeholder-sized record (§3.1.1 cost parity).
				st.Emitted++
				k.Counts[slot] = 0
				continue
			}
			before := len(frags)
			samples := sample(k.Cam, k.Space, k.Tex.Data, k.Prm, px, py, func(f composite.Fragment) {
				frags = append(frags, f)
			})
			st.Samples += samples.Samples
			st.SamplesSkipped += samples.Skipped
			st.Cells += samples.Cells
			n := len(frags) - before
			k.Counts[slot] = int32(n)
			if n > 0 {
				st.RaysHit++
				st.Emitted += int64(n)
			} else {
				st.Emitted++ // empty list still writes a placeholder record
			}
		}
	}
	offs[BlockDim*BlockDim] = int32(len(frags))
	k.blockFrags[bi] = frags
	k.blockOffs[bi] = offs
	return st
}
